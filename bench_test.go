// Benchmarks regenerating every table and figure of the paper, one
// Benchmark* per artifact (see DESIGN.md §4 for the experiment index).
// Each benchmark mines the synthetic dataset with the table's
// algorithm/representation and reports, alongside Go's usual ns/op, the
// simulated 256-thread speedup on the Blacklight machine model — the
// figure's headline number — as the custom metric "simSpeedup256".
//
// Dataset scales are reduced relative to cmd/fimbench so the whole suite
// runs in minutes; fimbench remains the reference generator for the
// full-size tables in EXPERIMENTS.md.
package fim

import (
	"testing"

	"repro/internal/apriori"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/horizontal"
	"repro/internal/ptrie"
	"repro/internal/sched"
)

// benchScale shrinks each dataset's experiment scale for benchmarking.
const benchScale = 0.4

var benchThreads = []int{1, 16, 32, 64, 128, 256}

// mineBench runs one instrumented mining configuration b.N times and
// reports the simulated speedup at 256 threads.
func mineBench(b *testing.B, d datasets.Def, algo Algorithm, rep Representation) {
	b.Helper()
	db := d.Build(d.ExperimentScale * benchScale)
	support := d.DefaultSupport
	cfg := Blacklight()
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace := &Trace{}
		_, err := Mine(db, support, Options{
			Algorithm:      algo,
			Representation: rep,
			Workers:        1,
			Trace:          trace,
		})
		if err != nil {
			b.Fatal(err)
		}
		sp := SimulateSpeedup(trace, benchThreads, cfg)
		speedup = sp[len(sp)-1]
	}
	b.ReportMetric(speedup, "simSpeedup256")
}

func benchAllDatasets(b *testing.B, algo Algorithm, rep Representation) {
	b.Helper()
	for _, d := range datasets.Dense() {
		b.Run(d.Name, func(b *testing.B) { mineBench(b, d, algo, rep) })
	}
}

// BenchmarkTableI regenerates the dataset summary (paper Table I):
// full-scale generation plus the statistics pass.
func BenchmarkTableI(b *testing.B) {
	for _, d := range datasets.Dense() {
		b.Run(d.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := d.Build(1).ComputeStats()
				if st.NumTransactions == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

// BenchmarkTable2Fig5_AprioriDiffset regenerates Table II / Figure 5.
func BenchmarkTable2Fig5_AprioriDiffset(b *testing.B) {
	benchAllDatasets(b, Apriori, Diffset)
}

// BenchmarkAprioriTidset regenerates the §V-A negative result for
// tidsets (no table in the paper: "due to limited space, we do not
// report them").
func BenchmarkAprioriTidset(b *testing.B) {
	benchAllDatasets(b, Apriori, Tidset)
}

// BenchmarkAprioriBitvector regenerates the §V-A negative result for
// bitvectors.
func BenchmarkAprioriBitvector(b *testing.B) {
	benchAllDatasets(b, Apriori, Bitvector)
}

// BenchmarkTable3Fig6_EclatTidset regenerates Table III / Figure 6.
func BenchmarkTable3Fig6_EclatTidset(b *testing.B) {
	benchAllDatasets(b, Eclat, Tidset)
}

// BenchmarkTable6Fig7_EclatBitvector regenerates Table VI / Figure 7.
func BenchmarkTable6Fig7_EclatBitvector(b *testing.B) {
	benchAllDatasets(b, Eclat, Bitvector)
}

// BenchmarkTable5Fig8_EclatDiffset regenerates Table V / Figure 8.
func BenchmarkTable5Fig8_EclatDiffset(b *testing.B) {
	benchAllDatasets(b, Eclat, Diffset)
}

// BenchmarkSparseLimit regenerates experiment E6: the sparse datasets
// whose frequent-item count caps scalability (§V's reason for omitting
// T40I10D100K and accidents).
func BenchmarkSparseLimit(b *testing.B) {
	for _, d := range datasets.All() {
		if d.Dense {
			continue
		}
		b.Run(d.Name, func(b *testing.B) { mineBench(b, d, Eclat, Diffset) })
	}
}

// BenchmarkScheduleAblation regenerates ablation A1: the three OpenMP
// loop schedules under Eclat/diffset on chess, with the simulated
// 256-thread time as the metric of interest.
func BenchmarkScheduleAblation(b *testing.B) {
	d, err := datasets.Get("chess")
	if err != nil {
		b.Fatal(err)
	}
	db := d.Build(d.ExperimentScale * benchScale)
	cfg := Blacklight()
	for _, pol := range []SchedulePolicy{Static, Dynamic, Guided} {
		b.Run(pol.String(), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				trace := &Trace{}
				_, err := Mine(db, d.DefaultSupport, Options{
					Algorithm:      Eclat,
					Representation: Diffset,
					Workers:        1,
					SchedulePolicy: pol,
					ScheduleChunk:  1,
					SetSchedule:    true,
					Trace:          trace,
				})
				if err != nil {
					b.Fatal(err)
				}
				sim = Simulate(trace, 256, cfg)
			}
			b.ReportMetric(sim*1e6, "simMicrosec256")
		})
	}
}

// BenchmarkChunkAblation regenerates ablation A3: Eclat's dynamic
// chunk-size sensitivity ("we choose the chunksize to as small as
// possible").
func BenchmarkChunkAblation(b *testing.B) {
	d, err := datasets.Get("chess")
	if err != nil {
		b.Fatal(err)
	}
	db := d.Build(d.ExperimentScale * benchScale)
	cfg := Blacklight()
	for _, chunk := range []int{1, 4, 16} {
		b.Run(sched.Schedule{Policy: sched.Dynamic, Chunk: chunk}.String(), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				trace := &Trace{}
				_, err := Mine(db, d.DefaultSupport, Options{
					Algorithm:      Eclat,
					Representation: Diffset,
					Workers:        1,
					SchedulePolicy: Dynamic,
					ScheduleChunk:  chunk,
					SetSchedule:    true,
					Trace:          trace,
				})
				if err != nil {
					b.Fatal(err)
				}
				sim = Simulate(trace, 256, cfg)
			}
			b.ReportMetric(sim*1e6, "simMicrosec256")
		})
	}
}

// BenchmarkMemoryFootprint regenerates ablation A2: per-representation
// allocation volume under Apriori (run with -benchmem; the allocated
// bytes are the paper's §V-A footprint argument).
func BenchmarkMemoryFootprint(b *testing.B) {
	d, err := datasets.Get("mushroom")
	if err != nil {
		b.Fatal(err)
	}
	db := d.Build(d.ExperimentScale * benchScale)
	for _, rep := range []Representation{Tidset, Bitvector, Diffset} {
		b.Run(rep.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Mine(db, d.DefaultSupport, Options{
					Algorithm:      Apriori,
					Representation: rep,
					Workers:        1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRealParallelEclat measures real (not simulated) wall-clock of
// the goroutine-parallel Eclat at several worker counts on this host —
// the library's practical mining path.
func BenchmarkRealParallelEclat(b *testing.B) {
	d, err := datasets.Get("chess")
	if err != nil {
		b.Fatal(err)
	}
	db := d.Build(benchScale)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("w"+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Mine(db, d.DefaultSupport, DefaultOptions(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRules measures association-rule generation over a mined
// result.
func BenchmarkRules(b *testing.B) {
	d, _ := datasets.Get("chess")
	db := d.Build(benchScale)
	res, err := Mine(db, d.DefaultSupport, DefaultOptions(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rules(res, 0.8)
	}
}

// BenchmarkFPGrowthBaseline measures the survey baseline on chess.
func BenchmarkFPGrowthBaseline(b *testing.B) {
	d, _ := datasets.Get("chess")
	db := d.Build(benchScale)
	for i := 0; i < b.N; i++ {
		if _, err := Mine(db, d.DefaultSupport, Options{Algorithm: FPGrowth}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkBaselines regenerates ablation A5/A6: horizontal-scan and
// pointer-trie Apriori against the vertical miners, on a reduced chess.
func BenchmarkBaselines(b *testing.B) {
	d, _ := datasets.Get("chess")
	db := d.Build(0.1)
	rec := db.Recode(db.AbsoluteSupport(d.DefaultSupport))
	b.Run("vertical-diffset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := apriori.Mine(rec, rec.MinSup, core.DefaultOptions(Diffset, 1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("horizontal-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			horizontal.Mine(rec, rec.MinSup, 1, horizontal.Partial, nil)
		}
	})
	b.Run("pointer-trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ptrie.Mine(rec, rec.MinSup, 1)
		}
	})
}

// BenchmarkEclatHybrid regenerates extension A7: Eclat over the hybrid
// tidset→diffset representation.
func BenchmarkEclatHybrid(b *testing.B) {
	benchAllDatasets(b, Eclat, Hybrid)
}
