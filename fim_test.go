package fim

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/verify"
)

const classic = `1 2 5
2 4
2 3
1 2 4
1 3
2 3
1 3
1 2 3 5
1 2 3
`

func classicDB(t *testing.T) *DB {
	t.Helper()
	db, err := ReadFIMI("classic", strings.NewReader(classic))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestMineFacade(t *testing.T) {
	db := classicDB(t)
	for _, algo := range []Algorithm{Apriori, Eclat, FPGrowth} {
		for _, rep := range []Representation{Tidset, Bitvector, Diffset} {
			res, err := Mine(db, 2.0/9.0, Options{Algorithm: algo, Representation: rep, Workers: 2})
			if err != nil {
				t.Fatalf("%v/%v: %v", algo, rep, err)
			}
			if res.Len() != 13 {
				t.Errorf("%v/%v: %d itemsets, want 13", algo, rep, res.Len())
			}
		}
	}
}

func TestMineValidation(t *testing.T) {
	db := classicDB(t)
	if _, err := Mine(nil, 0.5, Options{}); err == nil {
		t.Error("nil DB accepted")
	}
	if _, err := Mine(db, -0.1, Options{}); err == nil {
		t.Error("negative support accepted")
	}
	if _, err := Mine(db, 1.5, Options{}); err == nil {
		t.Error("support > 1 accepted")
	}
	if _, err := MineAbsolute(db, 0, Options{}); err == nil {
		t.Error("absolute support 0 accepted")
	}
	if _, err := Mine(db, 0.5, Options{Algorithm: Algorithm(42)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestMineAgainstReference(t *testing.T) {
	db := classicDB(t)
	rec := db.Recode(2)
	ref := verify.Reference(rec, 2)
	res, err := Mine(db, 2.0/9.0, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(ref) {
		t.Errorf("facade result differs:\n%s", verify.Diff(res, ref))
	}
}

func TestRulesFacade(t *testing.T) {
	db := classicDB(t)
	res, err := Mine(db, 2.0/9.0, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	rules := Rules(res, 0.6)
	if len(rules) == 0 {
		t.Fatal("no rules")
	}
	for _, r := range rules {
		if r.Confidence < 0.6 {
			t.Errorf("rule %v below confidence threshold", r)
		}
	}
	top := TopRulesByLift(rules, 2)
	if len(top) != 2 {
		t.Errorf("TopRulesByLift = %d", len(top))
	}
	d := DecodeRule(res, rules[0])
	if d.Support != rules[0].Support {
		t.Error("decode changed support")
	}
}

func TestCondensationFacade(t *testing.T) {
	db := classicDB(t)
	res, _ := Mine(db, 2.0/9.0, DefaultOptions(1))
	cl := ClosedItemsets(res)
	mx := MaximalItemsets(res)
	if len(mx) > len(cl) || len(cl) > res.Len() {
		t.Errorf("condensation ordering violated: %d maximal, %d closed, %d all",
			len(mx), len(cl), res.Len())
	}
}

func TestDatasetFacade(t *testing.T) {
	names := DatasetNames()
	if len(names) != 6 {
		t.Fatalf("DatasetNames = %v", names)
	}
	db, err := Dataset("chess", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumTransactions() == 0 {
		t.Error("empty chess build")
	}
	if _, err := Dataset("nope", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestSimulateFacade(t *testing.T) {
	db := classicDB(t)
	trace := &Trace{}
	if _, err := Mine(db, 2.0/9.0, Options{Algorithm: Eclat, Representation: Diffset, Workers: 1, Trace: trace}); err != nil {
		t.Fatal(err)
	}
	if len(trace.Phases) == 0 {
		t.Fatal("trace empty")
	}
	cfg := Blacklight()
	one := Simulate(trace, 1, cfg)
	many := Simulate(trace, 64, cfg)
	if one <= 0 || many <= 0 || many > one {
		t.Errorf("simulated times: 1->%v 64->%v", one, many)
	}
	sp := SimulateSpeedup(trace, []int{1, 16}, cfg)
	if sp[0] < 0.99 || sp[0] > 1.01 || sp[1] <= 1 {
		t.Errorf("speedups = %v", sp)
	}
}

func TestFIMIRoundTripFacade(t *testing.T) {
	db := classicDB(t)
	var buf bytes.Buffer
	if err := WriteFIMI(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFIMI("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTransactions() != db.NumTransactions() {
		t.Error("round trip changed size")
	}
}

func TestReadFIMIFile(t *testing.T) {
	path := t.TempDir() + "/mini.dat"
	if err := writeFile(path, "1 2\n2 3\n"); err != nil {
		t.Fatal(err)
	}
	db, err := ReadFIMIFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumTransactions() != 2 {
		t.Errorf("transactions = %d", db.NumTransactions())
	}
	if _, err := ReadFIMIFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestOrderByFrequencyAgrees(t *testing.T) {
	db := classicDB(t)
	base, err := Mine(db, 2.0/9.0, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(2)
	opt.OrderByFrequency = true
	reord, err := Mine(db, 2.0/9.0, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Dense codes differ; decoded itemsets must be identical.
	a, b := base.Decoded(), reord.Decoded()
	if len(a) != len(b) {
		t.Fatalf("itemset counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Items.Equal(b[i].Items) || a[i].Support != b[i].Support {
			t.Errorf("mismatch at %d: %v/%d vs %v/%d", i, a[i].Items, a[i].Support, b[i].Items, b[i].Support)
		}
	}
}
