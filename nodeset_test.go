package fim

// Miner-level equivalence harness for the nodeset (DiffNodeset)
// representation: full mines over the real dataset comparing nodeset
// against the flat tidset representation across algorithms, worker
// counts, flattening depths, loop schedules and batch modes. The
// kernel-level legs (support/list correctness per merge) live in
// internal/nodeset; here the property is end-to-end — byte-identical
// results — because nodeset mines under frequency order with deferred
// 2-itemset lists, and none of that may be observable in the output.

import (
	"testing"
)

// TestNodesetMatchesFlatMining: every (algorithm, workers, depth,
// schedule, batch) cell mines the identical result under the nodeset
// and flat tidset representations. Run under -race this also exercises
// the single-owner discipline of deferred 2-itemset materialization
// across stealing workers.
func TestNodesetMatchesFlatMining(t *testing.T) {
	db := runctlDB(t)
	steal, err := ParseSchedulePolicy("steal")
	if err != nil {
		t.Fatal(err)
	}
	type cell struct {
		algo     Algorithm
		workers  int
		depth    int
		steal    bool
		batchOff bool
	}
	var cells []cell
	for _, w := range []int{1, 4} {
		for _, batchOff := range []bool{false, true} {
			cells = append(cells, cell{Apriori, w, 0, false, batchOff})
			for _, depth := range []int{0, 2} {
				cells = append(cells, cell{Eclat, w, depth, false, batchOff})
			}
			cells = append(cells, cell{Eclat, w, 0, true, batchOff})
		}
	}
	for _, c := range cells {
		opt := Options{
			Algorithm:    c.algo,
			Workers:      c.workers,
			EclatDepth:   c.depth,
			DisableBatch: c.batchOff,
		}
		if c.steal {
			opt.SchedulePolicy, opt.SetSchedule = steal, true
		}
		optFlat, optNode := opt, opt
		optFlat.Representation = Tidset
		optNode.Representation = Nodeset
		flat, err := Mine(db, 0.5, optFlat)
		if err != nil {
			t.Fatalf("%+v flat: %v", c, err)
		}
		node, err := Mine(db, 0.5, optNode)
		if err != nil {
			t.Fatalf("%+v nodeset: %v", c, err)
		}
		// Nodeset mines under frequency order, so the runs disagree on
		// dense codes (Result.Equal would compare coded forms); the
		// decoded views must be identical.
		a, b := flat.Decoded(), node.Decoded()
		if len(a) != len(b) {
			t.Fatalf("%+v: itemset counts differ: flat %d vs nodeset %d", c, len(a), len(b))
		}
		for i := range a {
			if !a[i].Items.Equal(b[i].Items) || a[i].Support != b[i].Support {
				t.Errorf("%+v: mismatch at %d: flat %v/%d vs nodeset %v/%d",
					c, i, a[i].Items, a[i].Support, b[i].Items, b[i].Support)
				break
			}
		}
	}
}
