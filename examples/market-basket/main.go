// Market-basket analysis: the paper's §II motivating application. Mines
// a synthetic retail dataset (IBM-Quest style, like T40I10D100K), derives
// association rules, and prints the highest-lift recommendations — the
// "customers who bought diapers also bought beer" workflow.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro"
)

func main() {
	// A sparse basket dataset: 25k baskets over ~1000 products.
	db, err := fim.Dataset("T40I10D100K", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	st := db.ComputeStats()
	fmt.Printf("dataset: %d baskets, %d products, avg basket size %.1f\n\n",
		st.NumTransactions, st.NumItems, st.AvgLength)

	// Mine itemsets appearing in at least 5%% of baskets.
	res, err := fim.Mine(db, 0.05, fim.Options{
		Algorithm:      fim.Eclat,
		Representation: fim.Diffset,
		Workers:        runtime.NumCPU(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequent itemsets at 5%% support: %d (largest has %d products)\n\n",
		res.Len(), res.MaxK)

	// Rules with at least 40% confidence, ranked by lift.
	rules := fim.Rules(res, 0.40)
	fmt.Printf("association rules at 40%% confidence: %d\n", len(rules))
	fmt.Println("top recommendations by lift (product codes):")
	for _, r := range fim.TopRulesByLift(rules, 10) {
		d := fim.DecodeRule(res, r)
		fmt.Printf("  customers with %v also buy %v  (conf %.0f%%, lift %.2f, %d baskets)\n",
			d.Antecedent, d.Consequent, d.Confidence*100, d.Lift, d.Support)
	}
}
