// Scaling study: the paper's core experiment in miniature. Mines the
// chess dataset with Apriori and Eclat over all three vertical
// representations, records each run's parallel structure, and replays it
// on the simulated Blacklight machine from 1 to 256 threads — printing a
// speedup table like the paper's Figures 5–8.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	db, err := fim.Dataset("chess", 1)
	if err != nil {
		log.Fatal(err)
	}
	const support = 0.34
	threads := []int{1, 16, 32, 64, 128, 256}
	machine := fim.Blacklight()

	fmt.Printf("chess @ %.0f%% support on a simulated %d-core NUMA machine\n",
		support*100, 256)
	fmt.Printf("speedup relative to one thread:\n\n")
	fmt.Printf("%-22s", "configuration")
	for _, t := range threads {
		fmt.Printf("%8d", t)
	}
	fmt.Println()

	for _, algo := range []fim.Algorithm{fim.Apriori, fim.Eclat} {
		for _, rep := range []fim.Representation{fim.Tidset, fim.Bitvector, fim.Diffset} {
			trace := &fim.Trace{}
			if _, err := fim.Mine(db, support, fim.Options{
				Algorithm:      algo,
				Representation: rep,
				Workers:        1,
				Trace:          trace,
			}); err != nil {
				log.Fatal(err)
			}
			speedups := fim.SimulateSpeedup(trace, threads, machine)
			fmt.Printf("%-22s", fmt.Sprintf("%v/%v", algo, rep))
			for _, s := range speedups {
				fmt.Printf("%8.1f", s)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nThe paper's result in one table: Apriori only keeps scaling with")
	fmt.Println("diffsets; Eclat scales with every representation and is fastest")
	fmt.Println("with diffsets.")
}
