// Representation tour: walks through the three vertical representations
// of the paper's §II on the mushroom dataset — comparing serial mining
// time, memory traffic, and output condensation (closed/maximal
// itemsets) so the trade-offs are visible side by side.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	db, err := fim.Dataset("mushroom", 1)
	if err != nil {
		log.Fatal(err)
	}
	const support = 0.45
	fmt.Printf("mushroom: %d transactions @ %.0f%% support\n\n",
		db.NumTransactions(), support*100)

	fmt.Printf("%-11s %-10s %12s %14s %14s\n",
		"algorithm", "repr", "time", "bytes moved", "bytes alloc")
	var last *fim.Result
	for _, algo := range []fim.Algorithm{fim.Apriori, fim.Eclat} {
		for _, rep := range []fim.Representation{fim.Tidset, fim.Bitvector, fim.Diffset} {
			trace := &fim.Trace{}
			start := time.Now()
			res, err := fim.Mine(db, support, fim.Options{
				Algorithm:      algo,
				Representation: rep,
				Workers:        1,
				Trace:          trace,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-11v %-10v %12v %12.1fMB %12.1fMB\n",
				algo, rep, time.Since(start).Round(time.Millisecond),
				float64(trace.TotalWork())/(1<<20),
				float64(trace.TotalAlloc())/(1<<20))
			last = res
		}
	}

	fmt.Printf("\nall configurations find the same %d frequent itemsets (maxK=%d)\n",
		last.Len(), last.MaxK)
	cl := fim.ClosedItemsets(last)
	mx := fim.MaximalItemsets(last)
	fmt.Printf("condensed representations: %d closed, %d maximal\n", len(cl), len(mx))
	fmt.Println("\nlargest maximal itemsets (original item codes):")
	shown := 0
	for _, c := range mx {
		if len(c.Items) == last.MaxK && shown < 5 {
			fmt.Printf("  %v #%d\n", last.Rec.Decode(c.Items), c.Support)
			shown++
		}
	}
}
