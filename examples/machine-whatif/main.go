// Machine what-if: uses the NUMA machine model to ask questions the
// paper's fixed testbed could not — how would the same mining run scale
// with bigger blades, a faster interconnect, larger caches, or
// hyperthreading enabled? One instrumented run of Apriori/tidset on
// pumsb (the paper's least scalable configuration) is replayed on five
// hypothetical machines.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	db, err := fim.Dataset("pumsb", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	const support = 0.65

	// One instrumented run; every machine below replays the same trace.
	trace := &fim.Trace{}
	if _, err := fim.Mine(db, support, fim.Options{
		Algorithm:      fim.Apriori,
		Representation: fim.Tidset,
		Workers:        1,
		Trace:          trace,
	}); err != nil {
		log.Fatal(err)
	}

	base := fim.Blacklight()
	bigBlades := base
	bigBlades.CoresPerBlade = 64 // fewer NUMA crossings for the same threads
	fastLink := base
	fastLink.BisectionBPS *= 8 // NUMAlink upgraded 8x
	bigCache := base
	bigCache.CacheBytes *= 16 // candidate levels become cache-resident
	ht := base.WithHyperthreading(1.05)

	machines := []struct {
		name string
		cfg  fim.MachineConfig
	}{
		{"Blacklight (paper's machine)", base},
		{"64-core blades", bigBlades},
		{"8x interconnect", fastLink},
		{"16x blade cache", bigCache},
		{"hyperthreading on", ht},
	}

	threads := []int{16, 64, 256}
	fmt.Println("Apriori/tidset on pumsb — the paper's least scalable configuration.")
	fmt.Println("Simulated speedup of the same run on hypothetical machines:")
	fmt.Println()
	fmt.Printf("%-30s", "machine")
	for _, t := range threads {
		fmt.Printf("%10d", t)
	}
	fmt.Println()
	for _, m := range machines {
		sp := fim.SimulateSpeedup(trace, threads, m.cfg)
		fmt.Printf("%-30s", m.name)
		for _, s := range sp {
			fmt.Printf("%10.1f", s)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Reading: bigger blades and a faster interconnect relieve the NUMA")
	fmt.Println("wall somewhat; only cache large enough to hold the candidate level")
	fmt.Println("restores real scaling — which is precisely what the diffset")
	fmt.Println("representation achieves in software on the original machine.")
}
