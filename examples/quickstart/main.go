// Quickstart: mine a small market-basket database with the library's
// default configuration (parallel Eclat over diffsets, the paper's best
// performer) and print every frequent itemset.
package main

import (
	"fmt"
	"log"
	"runtime"
	"strings"

	"repro"
)

// Nine supermarket receipts over five products:
// 1=bread 2=milk 3=diapers 4=beer 5=eggs.
const receipts = `1 2 5
2 4
2 3
1 2 4
1 3
2 3
1 3
1 2 3 5
1 2 3
`

var names = map[uint32]string{1: "bread", 2: "milk", 3: "diapers", 4: "beer", 5: "eggs"}

func main() {
	db, err := fim.ReadFIMI("receipts", strings.NewReader(receipts))
	if err != nil {
		log.Fatal(err)
	}

	// Find every itemset bought together in at least 2 of the 9 receipts.
	res, err := fim.Mine(db, 2.0/9.0, fim.DefaultOptions(runtime.NumCPU()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d frequent itemsets (support >= 2 of %d receipts):\n\n",
		res.Len(), db.NumTransactions())
	for _, c := range res.Decoded() {
		var parts []string
		for _, it := range c.Items {
			parts = append(parts, names[it])
		}
		fmt.Printf("  {%s} bought together %d times\n", strings.Join(parts, ", "), c.Support)
	}
}
