// Quickstart: mine a small market-basket database with the library's
// default configuration (parallel Eclat over diffsets, the paper's best
// performer) and print every frequent itemset. The run goes through
// MineContext with a deadline — the recommended entry point: on real
// workloads a cancelled or expired context stops mining cooperatively
// and still returns the partial result with exact supports.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	"repro"
)

// Nine supermarket receipts over five products:
// 1=bread 2=milk 3=diapers 4=beer 5=eggs.
const receipts = `1 2 5
2 4
2 3
1 2 4
1 3
2 3
1 3
1 2 3 5
1 2 3
`

var names = map[uint32]string{1: "bread", 2: "milk", 3: "diapers", 4: "beer", 5: "eggs"}

func main() {
	db, err := fim.ReadFIMI("receipts", strings.NewReader(receipts))
	if err != nil {
		log.Fatal(err)
	}

	// Find every itemset bought together in at least 2 of the 9 receipts.
	// The deadline is far beyond what this toy database needs; if it did
	// fire, res would still hold the completed levels with exact supports.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := fim.MineContext(ctx, db, 2.0/9.0, fim.DefaultOptions(runtime.NumCPU()))
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && res != nil {
			log.Printf("deadline hit; %d itemsets mined before the stop", res.Len())
		} else {
			log.Fatal(err)
		}
	}

	fmt.Printf("%d frequent itemsets (support >= 2 of %d receipts):\n\n",
		res.Len(), db.NumTransactions())
	for _, c := range res.Decoded() {
		var parts []string
		for _, it := range c.Items {
			parts = append(parts, names[it])
		}
		fmt.Printf("  {%s} bought together %d times\n", strings.Join(parts, ", "), c.Support)
	}
}
