package fim

// Acceptance tests for the observability layer: the structured event
// stream emitted through Options.Observer, driven end-to-end through
// MineContext on all three miners, including the terminal events of the
// cancel/budget/degrade/panic paths (extending the PR 1 fault-injection
// suite to assert on the stream).

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/sched"
)

// mineRecorded runs one observed mine and returns the result, the error
// and the recorded stream.
func mineRecorded(t *testing.T, db *DB, opt Options) (*Result, error, []Event) {
	t.Helper()
	rec := &EventRecorder{}
	opt.Observer = rec
	res, err := MineContext(context.Background(), db, 0.5, opt)
	if res == nil {
		t.Fatalf("nil result (err=%v)", err)
	}
	return res, err, rec.Events()
}

// assertStream checks the structural invariants every stream must hold:
// run_start first, run_end last, each exactly once, every level opened
// exactly once before it closes, and every phase_end's per-worker task
// counts summing to the loop's iteration count.
func assertStream(t *testing.T, label string, events []Event) {
	t.Helper()
	if err := export.ValidateEvents(events); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	for _, e := range events {
		if e.Type != EventPhaseEnd || len(e.Load) == 0 {
			continue
		}
		var tasks int64
		for _, w := range e.Load {
			tasks += w.Tasks
		}
		if tasks > int64(e.Candidates) {
			t.Errorf("%s: phase %q worker tasks %d exceed loop n %d",
				label, e.Phase, tasks, e.Candidates)
		}
	}
}

// countType returns how many events of each type the stream holds.
func countType(events []Event, ty EventType) int {
	n := 0
	for _, e := range events {
		if e.Type == ty {
			n++
		}
	}
	return n
}

// TestObserverEventOrder: a complete run on each miner emits run_start,
// ordered level_start/level_end pairs with consistent counts, one
// phase_end per scheduler loop, and a run_end whose totals match the
// Result — with the stream identical in shape under -race at 4 workers.
func TestObserverEventOrder(t *testing.T) {
	db := runctlDB(t)
	for _, algo := range []Algorithm{Apriori, Eclat, FPGrowth} {
		res, err, events := mineRecorded(t, db, Options{
			Algorithm: algo, Representation: Diffset, Workers: 4,
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		assertStream(t, algo.String(), events)

		first, last := events[0], events[len(events)-1]
		if first.Algorithm != algo.String() || first.Workers != 4 || first.Transactions != db.NumTransactions() {
			t.Errorf("%v: run_start = %+v", algo, first)
		}
		if first.MinSupport < 1 {
			t.Errorf("%v: run_start min_support = %d", algo, first.MinSupport)
		}
		if last.Itemsets != int64(res.Len()) || last.MaxK != res.MaxK {
			t.Errorf("%v: run_end totals (%d, %d) disagree with result (%d, %d)",
				algo, last.Itemsets, last.MaxK, res.Len(), res.MaxK)
		}
		if last.Incomplete || last.DegradedRun {
			t.Errorf("%v: complete run marked incomplete/degraded in run_end", algo)
		}
		if last.PeakLiveBytes <= 0 {
			t.Errorf("%v: run_end peak_live_bytes = %d", algo, last.PeakLiveBytes)
		}

		starts, ends := countType(events, EventLevelStart), countType(events, EventLevelEnd)
		if starts == 0 || starts != ends {
			t.Errorf("%v: %d level_start vs %d level_end", algo, starts, ends)
		}
		if countType(events, EventPhaseEnd) == 0 {
			t.Errorf("%v: no phase_end events", algo)
		}
		if countType(events, EventStop)+countType(events, EventBudgetWarning)+countType(events, EventDegraded) != 0 {
			t.Errorf("%v: control-plane events on a clean run", algo)
		}

		// Levels arrive in search order: Apriori generations strictly
		// ascending, Eclat's flattened stages non-descending.
		lastLevel := 0
		for _, e := range events {
			if e.Type != EventLevelEnd || e.Level == 0 {
				continue
			}
			if algo == Apriori && e.Level != lastLevel+1 {
				t.Errorf("apriori: level %d after %d", e.Level, lastLevel)
			}
			if e.Level < lastLevel {
				t.Errorf("%v: level %d after %d", algo, e.Level, lastLevel)
			}
			lastLevel = e.Level
		}

		// Frequent counts per level sum to the result (Eclat's stream
		// omits the size-1 roots, which the recode pass already counted).
		sum := 0
		for _, e := range events {
			if e.Type == EventLevelEnd {
				sum += e.Frequent
			}
		}
		want := res.Len()
		if algo == Eclat {
			want -= len(res.Rec.Items)
		}
		if sum != want {
			t.Errorf("%v: level frequent counts sum to %d, result has %d", algo, sum, want)
		}
	}
}

// TestObserverAprioriCandidates: Apriori's level events carry the
// generated/pruned candidate split, and pruning shows up in the stream.
func TestObserverAprioriCandidates(t *testing.T) {
	db := runctlDB(t)
	_, err, events := mineRecorded(t, db, Options{
		Algorithm: Apriori, Representation: Diffset, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sawCandidates := false
	for _, e := range events {
		if e.Type == EventLevelStart && e.Level >= 2 {
			if e.Candidates <= 0 {
				t.Errorf("level %d start without candidate count", e.Level)
			}
			sawCandidates = true
		}
	}
	if !sawCandidates {
		t.Error("no level_start with candidates past level 1")
	}
}

// TestObserverCancelEmitsStop: a cancelled run's stream still closes
// properly — a stop event with reason "canceled" and a final run_end
// marked incomplete.
func TestObserverCancelEmitsStop(t *testing.T) {
	defer sched.SetFaultHook(nil)
	db := runctlDB(t)
	for _, algo := range []Algorithm{Apriori, Eclat, FPGrowth} {
		ctx, cancel := context.WithCancel(context.Background())
		sched.SetFaultHook(func(fc sched.FaultContext) {
			if fc.Seq == 3 {
				cancel()
				for !fc.Control.Stopped() {
					time.Sleep(10 * time.Microsecond)
				}
			}
		})
		rec := &EventRecorder{}
		res, _ := MineContext(ctx, db, 0.5, Options{
			Algorithm: algo, Representation: Tidset, Workers: 2, Observer: rec,
		})
		cancel()
		sched.SetFaultHook(nil)

		events := rec.Events()
		assertStream(t, algo.String(), events)
		stops := rec.ByType(EventStop)
		if len(stops) != 1 || stops[0].Reason != "canceled" {
			t.Fatalf("%v: stop events = %+v, want one with reason canceled", algo, stops)
		}
		last := events[len(events)-1]
		if !last.Incomplete {
			t.Errorf("%v: run_end not marked incomplete", algo)
		}
		if res == nil || !res.Incomplete {
			t.Errorf("%v: result not marked incomplete", algo)
		}
	}
}

// TestObserverBudgetWarningsAndStop: an itemsets budget emits ascending
// threshold warnings before the terminal budget stop.
func TestObserverBudgetWarningsAndStop(t *testing.T) {
	db := runctlDB(t)
	_, err, events := mineRecorded(t, db, Options{
		Algorithm: Apriori, Representation: Diffset, Workers: 2,
		MaxItemsets: 200,
	})
	if err == nil {
		t.Fatal("itemsets budget did not bind")
	}
	assertStream(t, "itemsets-budget", events)
	var warns []Event
	for _, e := range events {
		if e.Type == EventBudgetWarning {
			warns = append(warns, e)
		}
	}
	if len(warns) == 0 {
		t.Fatal("no budget_warning before the stop")
	}
	lastFrac := 0.0
	for _, w := range warns {
		if w.Resource != "itemsets" {
			t.Errorf("warning resource = %q", w.Resource)
		}
		if w.Fraction <= lastFrac {
			t.Errorf("warning fractions not ascending: %v after %v", w.Fraction, lastFrac)
		}
		if w.Limit != 200 || w.Used <= 0 {
			t.Errorf("warning used/limit = %d/%d", w.Used, w.Limit)
		}
		lastFrac = w.Fraction
	}
	stops := 0
	for _, e := range events {
		if e.Type == EventStop {
			stops++
			if e.Reason != "budget:itemsets" {
				t.Errorf("stop reason = %q, want budget:itemsets", e.Reason)
			}
		}
	}
	if stops != 1 {
		t.Errorf("stop events = %d, want 1", stops)
	}
}

// TestObserverMemoryBudgetStop: a memory breach without degradation
// warns on the memory resource and stops with budget:memory.
func TestObserverMemoryBudgetStop(t *testing.T) {
	db := runctlDB(t)
	_, err, events := mineRecorded(t, db, Options{
		Algorithm: Apriori, Representation: Tidset, Workers: 2,
		MaxMemoryBytes: 100 << 10,
	})
	if err == nil {
		t.Fatal("memory budget did not bind")
	}
	assertStream(t, "memory-budget", events)
	sawMemWarn := false
	for _, e := range events {
		if e.Type == EventBudgetWarning && e.Resource == "memory" {
			sawMemWarn = true
		}
	}
	if !sawMemWarn {
		t.Error("no memory budget_warning")
	}
	stops := 0
	for _, e := range events {
		if e.Type == EventStop {
			stops++
			if e.Reason != "budget:memory" {
				t.Errorf("stop reason = %q, want budget:memory", e.Reason)
			}
		}
	}
	if stops != 1 {
		t.Errorf("stop events = %d, want 1", stops)
	}
}

// TestObserverDegradeEmitsEvent: the mid-run diffset switch appears as
// exactly one degraded event, the run completes with no stop event, and
// run_end carries the degraded flag.
func TestObserverDegradeEmitsEvent(t *testing.T) {
	db := runctlDB(t)
	for _, algo := range []Algorithm{Apriori, Eclat} {
		res, err, events := mineRecorded(t, db, Options{
			Algorithm: algo, Representation: Tidset, Workers: 2,
			MaxMemoryBytes: 100 << 10, DegradeToDiffset: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !res.Degraded {
			t.Fatalf("%v: budget no longer binds", algo)
		}
		assertStream(t, algo.String(), events)
		degs := 0
		for _, e := range events {
			if e.Type == EventDegraded {
				degs++
				if e.Representation != "diffset" {
					t.Errorf("%v: degraded to %q", algo, e.Representation)
				}
			}
		}
		if degs != 1 {
			t.Errorf("%v: degraded events = %d, want 1", algo, degs)
		}
		if countType(events, EventStop) != 0 {
			t.Errorf("%v: stop event on a completed degraded run", algo)
		}
		if !events[len(events)-1].DegradedRun {
			t.Errorf("%v: run_end missing degraded flag", algo)
		}
	}
}

// TestObserverPanicEmitsStop: a contained worker panic surfaces in the
// stream as a worker-panic stop, and the stream still ends in run_end.
func TestObserverPanicEmitsStop(t *testing.T) {
	defer sched.SetFaultHook(nil)
	db := runctlDB(t)
	for _, algo := range []Algorithm{Apriori, Eclat, FPGrowth} {
		sched.SetFaultHook(func(fc sched.FaultContext) {
			if fc.Seq == 2 {
				panic("injected worker fault")
			}
		})
		rec := &EventRecorder{}
		_, err := MineContext(context.Background(), db, 0.5, Options{
			Algorithm: algo, Representation: Tidset, Workers: 4, Observer: rec,
		})
		sched.SetFaultHook(nil)
		if err == nil {
			t.Fatalf("%v: injected panic did not surface", algo)
		}
		events := rec.Events()
		assertStream(t, algo.String(), events)
		stops := rec.ByType(EventStop)
		if len(stops) != 1 || stops[0].Reason != "worker-panic" {
			t.Fatalf("%v: stop events = %+v, want one worker-panic", algo, stops)
		}
	}
}

// TestObserverDeadlineReason: a context deadline classifies as
// "deadline", distinct from explicit cancellation.
func TestObserverDeadlineReason(t *testing.T) {
	defer sched.SetFaultHook(nil)
	sched.SetFaultHook(func(sched.FaultContext) { time.Sleep(5 * time.Millisecond) })
	db := runctlDB(t)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	rec := &EventRecorder{}
	_, err := MineContext(ctx, db, 0.5, Options{
		Algorithm: Eclat, Representation: Tidset, Workers: 2, Observer: rec,
	})
	sched.SetFaultHook(nil)
	if err == nil {
		t.Fatal("deadline did not bind")
	}
	stops := rec.ByType(EventStop)
	if len(stops) != 1 || stops[0].Reason != "deadline" {
		t.Fatalf("stop events = %+v, want one with reason deadline", stops)
	}
}

// TestObserverResultUnchanged: observing a run must not change its
// answer.
func TestObserverResultUnchanged(t *testing.T) {
	db := runctlDB(t)
	for _, algo := range []Algorithm{Apriori, Eclat, FPGrowth} {
		ref, err := Mine(db, 0.5, Options{Algorithm: algo, Representation: Diffset, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err, _ := mineRecorded(t, db, Options{Algorithm: algo, Representation: Diffset, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(ref) {
			t.Errorf("%v: observed run disagrees with unobserved reference", algo)
		}
	}
}

// TestMultiObserver: fan-out delivers every event to every sink, and
// the nil/single fast paths collapse correctly.
func TestMultiObserver(t *testing.T) {
	if MultiObserver() != nil || MultiObserver(nil, nil) != nil {
		t.Error("MultiObserver of no live sinks != nil")
	}
	r := &EventRecorder{}
	if MultiObserver(nil, r) != Observer(r) {
		t.Error("single live sink not unwrapped")
	}
	r2 := &EventRecorder{}
	m := MultiObserver(r, r2)
	m.Event(obs.Event{Type: EventRunStart})
	if len(r.Events()) != 1 || len(r2.Events()) != 1 {
		t.Error("fan-out missed a sink")
	}
}

// TestStopReason covers the classifier's stable strings.
func TestStopReason(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{context.Canceled, "canceled"},
		{context.DeadlineExceeded, "deadline"},
		{&BudgetError{Resource: "memory"}, "budget:memory"},
		{&BudgetError{Resource: "duration"}, "budget:duration"},
		{&WorkerPanicError{Value: "x"}, "worker-panic"},
		{context.Background().Err(), ""},
	}
	for _, c := range cases {
		if got := StopReason(c.err); got != c.want {
			t.Errorf("StopReason(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestStopReasonGoldenList freezes the complete reason vocabulary.
// Report and event consumers switch on these strings (stop events,
// fim-run-report/v1 stop_reason), so adding a reason is fine but
// renaming one is a breaking schema change — update consumers and this
// list together.
func TestStopReasonGoldenList(t *testing.T) {
	golden := map[string]bool{
		"":                     true,
		"worker-panic":         true,
		"budget:memory":        true,
		"budget:itemsets":      true,
		"budget:duration":      true,
		"budget:shared-memory": true,
		"canceled":             true,
		"deadline":             true,
		"error":                true,
	}
	produced := []string{
		StopReason(nil),
		StopReason(&WorkerPanicError{Value: "x"}),
		StopReason(&BudgetError{Resource: "memory"}),
		StopReason(&BudgetError{Resource: "itemsets"}),
		StopReason(&BudgetError{Resource: "duration"}),
		StopReason(&BudgetError{Resource: "shared-memory"}),
		StopReason(context.Canceled),
		StopReason(context.DeadlineExceeded),
		StopReason(errors.New("disk on fire")),
	}
	seen := map[string]bool{}
	for _, r := range produced {
		if !golden[r] {
			t.Errorf("StopReason produced %q, not in the golden list", r)
		}
		seen[r] = true
	}
	for r := range golden {
		if !seen[r] {
			t.Errorf("golden reason %q no longer produced", r)
		}
	}
}
