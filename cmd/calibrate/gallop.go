package main

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"repro/internal/tidset"
)

// calibrateGallop re-times the merge-vs-gallop intersection crossover
// on this host: the short side is held at a fixed dense-data-typical
// length while the long side grows, and both strategies run on the
// same operands. The recommended threshold is the smallest swept ratio
// from which galloping wins at every larger ratio — the value
// tidset.gallopRatio should hold for this machine. Output is meant to
// be committed (results/CALIBRATE_gallop.txt) so the constant's
// provenance is on record.
func calibrateGallop() {
	const shortLen = 2048
	const minTime = 20 * time.Millisecond
	r := rand.New(rand.NewSource(1))
	fmt.Printf("# tidset merge-vs-gallop crossover, short side %d TIDs\n", shortLen)
	fmt.Printf("%6s %12s %12s %8s\n", "ratio", "merge ns/op", "gallop ns/op", "winner")
	ratios := []int{2, 4, 8, 12, 16, 24, 32, 48, 64}
	var gallopWins []bool
	for _, ratio := range ratios {
		long := randomSet(r, shortLen*ratio, shortLen*ratio*4)
		short := randomSet(r, shortLen, shortLen*ratio*4)
		mergeNs := timeIntersect(tidset.MergeIntersectInto, short, long, minTime)
		gallopNs := timeIntersect(tidset.GallopIntersectInto, short, long, minTime)
		winner := "merge"
		if gallopNs < mergeNs {
			winner = "gallop"
		}
		gallopWins = append(gallopWins, gallopNs < mergeNs)
		fmt.Printf("%6d %12.0f %12.0f %8s\n", ratio, mergeNs, gallopNs, winner)
	}
	rec := 0
	for i := len(ratios) - 1; i >= 0; i-- {
		if !gallopWins[i] {
			break
		}
		rec = ratios[i]
	}
	if rec == 0 {
		fmt.Println("# galloping never won in the swept range; keep a high threshold")
		return
	}
	fmt.Printf("# recommended gallopRatio: %d (gallop wins from this ratio up)\n", rec)
}

// randomSet draws n distinct sorted TIDs from [0, universe).
func randomSet(r *rand.Rand, n, universe int) tidset.Set {
	seen := make(map[tidset.TID]bool, n)
	s := make(tidset.Set, 0, n)
	for len(s) < n {
		v := tidset.TID(r.Intn(universe))
		if !seen[v] {
			seen[v] = true
			s = append(s, v)
		}
	}
	slices.Sort(s)
	return s
}

// timeIntersect runs fn(short, long) repeatedly for at least minTime
// and returns the mean nanoseconds per call.
func timeIntersect(fn func(s, t, dst tidset.Set) tidset.Set, short, long tidset.Set, minTime time.Duration) float64 {
	dst := make(tidset.Set, 0, len(short))
	// Warm up once so first-touch page faults stay out of the timing.
	dst = fn(short, long, dst)
	iters := 0
	start := time.Now()
	for time.Since(start) < minTime {
		dst = fn(short, long, dst)
		iters++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}
