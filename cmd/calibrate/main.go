// Command calibrate sweeps supports and Eclat flattening depths for each
// dense dataset and prints the quantities the experiment design cares
// about: itemset counts, per-generation payload pools by representation,
// and simulated 256-thread speedups. A development aid for fixing the
// experiment operating points.
package main

import (
	"flag"
	"fmt"

	"repro/internal/apriori"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/eclat"
	"repro/internal/machine"
	"repro/internal/perf"
	"repro/internal/vertical"
)

// mustMine unwraps a miner's (result, error) pair; calibration runs set
// no budget, so errors are bugs.
func mustMine(res *core.Result, err error) *core.Result {
	if err != nil {
		panic(err)
	}
	return res
}

func main() {
	only := flag.String("only", "", "restrict to one dataset")
	gallop := flag.Bool("gallop", false, "re-time the tidset merge-vs-gallop crossover on this host and exit")
	tiles := flag.Bool("tiles", false, "re-time the tiled layout's sparse/dense crossover and tile-width kernels on this host and exit")
	nodesetSweep := flag.Bool("nodeset", false, "re-time the nodeset-vs-tiled density crossover on this host and exit")
	write := flag.String("write", "", "with -tiles or -nodeset: also write the derived calibration JSON to this path (load via -calibration or FIM_CALIBRATION)")
	flag.Parse()
	if *gallop {
		calibrateGallop()
		return
	}
	if *tiles {
		calibrateTiles(*write)
		return
	}
	if *nodesetSweep {
		calibrateNodeset(*write)
		return
	}
	cfg := machine.Blacklight()
	threads := []int{16, 256}
	for _, d := range datasets.Dense() {
		if *only != "" && d.Name != *only {
			continue
		}
		db := d.Build(d.ExperimentScale)
		for _, mult := range []float64{1.25, 1.0, 0.85} {
			sup := d.DefaultSupport * mult
			rec := db.Recode(db.AbsoluteSupport(sup))
			if len(rec.Items) < 3 {
				continue
			}
			// Apriori pools per representation.
			fmt.Printf("%s@%.3f freqItems=%d\n", d.Name, sup, len(rec.Items))
			for _, rep := range []vertical.Kind{vertical.Tidset, vertical.Diffset, vertical.Bitvector} {
				col := &perf.Collector{}
				opt := core.DefaultOptions(rep, 1)
				opt.Collector = col
				res := mustMine(apriori.Mine(rec, rec.MinSup, opt))
				var maxPool int64
				for _, p := range col.Phases {
					if p.UniqueParent > maxPool {
						maxPool = p.UniqueParent
					}
				}
				_, sp := machine.Speedup(col, threads, cfg)
				fmt.Printf("  apriori/%-10v itemsets=%-7d maxPool=%6.2fMB  speedup16=%6.1f speedup256=%6.1f\n",
					rep, res.Len(), float64(maxPool)/(1<<20), sp[0], sp[1])
			}
			for _, rep := range []vertical.Kind{vertical.Tidset, vertical.Diffset} {
				for _, depth := range []int{3, 4} {
					col := &perf.Collector{}
					opt := core.DefaultOptions(rep, 1)
					opt.Collector = col
					opt.EclatDepth = depth
					mustMine(eclat.Mine(rec, rec.MinSup, opt))
					_, sp := machine.Speedup(col, threads, cfg)
					fmt.Printf("  eclat/%-7v d=%d speedup16=%6.1f speedup256=%6.1f\n", rep, depth, sp[0], sp[1])
				}
			}
		}
	}
}
