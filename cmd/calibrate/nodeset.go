package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eclat"
	"repro/internal/gen"
	"repro/internal/tidset"
	"repro/internal/vertical"
)

// calibrateNodeset times the nodeset (DiffNodeset) representation
// against tiled tidsets across database densities and reports the
// crossover. The sweep walks the categorical generator's conformity
// knob — the same generator behind the chess/mushroom/pumsb replicas —
// from nearly uncorrelated rows to tightly clustered ones, because the
// quantity the PPC tree monetizes is co-occurrence: conformist rows
// share long prefixes (few tree nodes, short N-lists, cheap merges),
// while uncorrelated rows degenerate toward one tree path per
// transaction, where the tree is pure overhead over a flat tidset.
// Each cell reports its measured fill density — average recoded
// transaction length over the frequent-item universe — which is the
// axis the recommendation is stated on: on uncorrelated data density
// stays low and tiled keeps winning, exactly as it should.
//
// Each cell mines the same synthetic database end to end with
// single-threaded Eclat under both representations in their production
// configurations — tiled under code order, nodeset under the frequency
// order fim.go forces for it — and the PPC build is charged to nodeset,
// the tile build to tiled: the crossover must price the encodings, not
// just the kernels. The recommended nodeset_density_min is the smallest
// measured density from which nodeset wins contiguously through the top
// of the sweep; with -write it lands in the calibration JSON that
// FIM_CALIBRATION feeds to every binary. Advisory: representations are
// caller-chosen, so the knob informs the choice and changes no kernel
// behavior.
func calibrateNodeset(writePath string) {
	const (
		nTrans = 1600
		minRel = 0.40 // relative support per cell, chess-like
	)
	conformities := []float64{0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}

	fmt.Printf("# nodeset-vs-tiled crossover, %d categorical rows, minsup %.2f, eclat x1\n",
		nTrans, minRel)
	fmt.Printf("%8s %8s %8s %12s %12s %8s %8s\n",
		"conform", "density", "items", "tiled ms", "nodeset ms", "ratio", "winner")
	densities := make([]float64, len(conformities))
	nodesetWins := make([]bool, len(conformities))
	for i, cf := range conformities {
		byCode, byFreq := syntheticRecoded(int64(100+i), nTrans, cf, minRel)
		densities[i] = fillDensity(byCode)
		if len(byCode.Items) < 3 {
			fmt.Printf("%8.2f %8.2f %8d %12s %12s %8s %8s\n",
				cf, densities[i], len(byCode.Items), "-", "-", "-", "skip")
			continue
		}
		tiledMs := timeMine(byCode, vertical.Tiled)
		nodeMs := timeMine(byFreq, vertical.Nodeset)
		winner := "tiled"
		if nodeMs < tiledMs {
			winner = "nodeset"
			nodesetWins[i] = true
		}
		fmt.Printf("%8.2f %8.2f %8d %12.3f %12.3f %7.2fx %8s\n",
			cf, densities[i], len(byCode.Items), tiledMs, nodeMs, nodeMs/tiledMs, winner)
	}

	rec := 0.0
	for i := len(conformities) - 1; i >= 0; i-- {
		if !nodesetWins[i] {
			break
		}
		rec = densities[i]
	}
	if rec == 0 {
		fmt.Println("# nodeset never won contiguously from the top; keeping the current calibration")
	} else {
		fmt.Printf("# recommended nodeset_density_min: %.2f (nodeset wins from this measured density up)\n", rec)
	}

	if writePath != "" {
		c := tidset.CurrentCalibration()
		if rec != 0 {
			c.NodesetDensityMin = rec
		}
		if err := tidset.WriteCalibrationFile(writePath, c); err != nil {
			panic(err)
		}
		fmt.Printf("# wrote calibration to %s\n", writePath)
	}
}

// syntheticRecoded builds a deterministic chess-shaped categorical
// database — 30 binary attributes plus two wider ones, two latent
// groups — at the given conformist fraction, and returns it recoded
// both by code order and by frequency order.
func syntheticRecoded(seed int64, nTrans int, conformist, minRel float64) (byCode, byFreq *dataset.Recoded) {
	attrs := make([]gen.AttrSpec, 0, 32)
	for i := 0; i < 30; i++ {
		attrs = append(attrs, gen.AttrSpec{Domain: 2})
	}
	attrs = append(attrs, gen.AttrSpec{Domain: 3}, gen.AttrSpec{Domain: 2})
	db := gen.Categorical(gen.CategoricalConfig{
		Name:            "calib",
		Seed:            seed,
		NumTransactions: nTrans,
		Attributes:      attrs,
		NumGroups:       2,
		SharedFrac:      0.6,
		ConformistFrac:  conformist,
		WHi:             0.95,
		WLo:             0.45,
		Spread:          1.5,
		NonConfFactor:   0.5,
	})
	minSup := db.AbsoluteSupport(minRel)
	return db.Recode(minSup), db.RecodeOrdered(minSup, dataset.ByFrequency)
}

// fillDensity measures a recoded database's fill ratio: average
// transaction length over the frequent-item universe.
func fillDensity(rec *dataset.Recoded) float64 {
	if len(rec.Items) == 0 || len(rec.DB.Transactions) == 0 {
		return 0
	}
	total := 0
	for _, tr := range rec.DB.Transactions {
		total += tr.Len()
	}
	return float64(total) / float64(len(rec.DB.Transactions)) / float64(len(rec.Items))
}

// timeMine mines rec end to end under kind and returns the best-of-runs
// wall milliseconds, repeating until 80ms of total work (at least twice)
// so fast cells aren't timer noise.
func timeMine(rec *dataset.Recoded, kind vertical.Kind) float64 {
	const minTotal = 80 * time.Millisecond
	best := time.Duration(0)
	var total time.Duration
	for runs := 0; total < minTotal || runs < 2; runs++ {
		start := time.Now()
		mustMine(eclat.Mine(rec, rec.MinSup, core.DefaultOptions(kind, 1)))
		el := time.Since(start)
		if best == 0 || el < best {
			best = el
		}
		total += el
	}
	return float64(best.Nanoseconds()) / 1e6
}
