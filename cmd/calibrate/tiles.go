package main

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"repro/internal/tidset"
)

// calibrateTiles re-times the tiled layout's two host-dependent choices
// and (optionally) writes the resulting calibration file.
//
// Sweep 1 — sparse/dense crossover: every tile of both operands holds
// exactly c TIDs, and the same intersection is timed with the tiles
// forced sparse (sorted u8 offsets) and forced dense (128-bit bitmaps)
// via ApplyCalibration. The recommended tile_sparse_max is the largest
// cardinality up to which the sparse form wins contiguously from the
// bottom — the value the kernels should use on this machine.
//
// Sweep 2 — tile width: the width is compile-time (u8 offsets and
// 2-word bitmaps assume 128), so this sweep times self-contained local
// summary-AND kernels at 64/128/256 bits per tile over the same
// synthetic occupancy patterns. It cannot retune the build; it puts on
// record whether 128 remains the right width for this host, and the
// calibration file carries tile_bits only so a mismatched file is
// rejected instead of misapplied.
func calibrateTiles(writePath string) {
	const minTime = 20 * time.Millisecond
	r := rand.New(rand.NewSource(1))

	fmt.Printf("# tiled sparse-vs-dense per-tile crossover, %d-TID tiles\n", tidset.TileBits)
	fmt.Printf("%6s %12s %12s %8s\n", "card", "sparse ns/op", "dense ns/op", "winner")
	cards := []int{2, 4, 8, 12, 16, 20, 24, 32, 48, 64, 96}
	const nTiles = 2048
	var sparseWins []bool
	for _, card := range cards {
		a, b := uniformCardPair(r, nTiles, card)
		sparseNs := timeTiledIntersect(a, b, tidset.TileBits, minTime) // card ≤ 128 ⇒ all sparse
		denseNs := timeTiledIntersect(a, b, 1, minTime)                // card > 1 ⇒ all dense
		winner := "dense"
		if sparseNs < denseNs {
			winner = "sparse"
		}
		sparseWins = append(sparseWins, sparseNs < denseNs)
		fmt.Printf("%6d %12.0f %12.0f %8s\n", card, sparseNs, denseNs, winner)
	}
	rec := 0
	for i, card := range cards {
		if !sparseWins[i] {
			break
		}
		rec = card
	}
	if rec == 0 {
		rec = 1 // dense always won; keep only singleton tiles sparse
		fmt.Println("# sparse never won in the swept range; recommended tile_sparse_max: 1")
	} else {
		fmt.Printf("# recommended tile_sparse_max: %d (sparse wins up to this cardinality)\n", rec)
	}

	fmt.Printf("\n# tile-width simulation: summary-AND prefilter + dense AND, local kernels\n")
	fmt.Printf("%6s %10s %12s %12s %12s\n", "width", "occupancy", "ns/op", "ns/KTID", "skip%")
	for _, words := range []int{1, 2, 4} { // 64-, 128-, 256-bit tiles
		for _, occ := range []float64{0.10, 0.50, 0.90} {
			ns, skip := timeWidthKernel(r, words, occ, minTime)
			universe := float64(simTiles * words * 64)
			fmt.Printf("%6d %9.0f%% %12.0f %12.2f %11.1f%%\n",
				words*64, occ*100, ns, ns/(universe/1000), skip*100)
		}
	}
	fmt.Printf("# this build's width is fixed at %d bits; the sweep documents the choice\n", tidset.TileBits)

	if writePath != "" {
		c := tidset.CurrentCalibration()
		c.TileSparseMax = rec
		if err := tidset.WriteCalibrationFile(writePath, c); err != nil {
			panic(err)
		}
		fmt.Printf("# wrote calibration to %s\n", writePath)
	}
}

// uniformCardPair builds two TID sets in which every one of nTiles
// consecutive tiles holds exactly card distinct offsets, so the forced
// sparse/dense forms are uniform across the whole operand.
func uniformCardPair(r *rand.Rand, nTiles, card int) (a, b tidset.Set) {
	build := func() tidset.Set {
		s := make(tidset.Set, 0, nTiles*card)
		offs := make([]int, tidset.TileBits)
		for i := range offs {
			offs[i] = i
		}
		for t := 0; t < nTiles; t++ {
			r.Shuffle(len(offs), func(i, j int) { offs[i], offs[j] = offs[j], offs[i] })
			pick := slices.Clone(offs[:card])
			slices.Sort(pick)
			base := tidset.TID(t * tidset.TileBits)
			for _, o := range pick {
				s = append(s, base+tidset.TID(o))
			}
		}
		return s
	}
	return build(), build()
}

// timeTiledIntersect builds both operands under the forced
// tile_sparse_max (form is chosen at build time), restores the previous
// calibration afterwards, and returns mean ns per IntersectInto call.
func timeTiledIntersect(a, b tidset.Set, forcedSparseMax int, minTime time.Duration) float64 {
	prev, err := tidset.ApplyCalibration(tidset.Calibration{TileSparseMax: forcedSparseMax})
	if err != nil {
		panic(err)
	}
	defer tidset.ApplyCalibration(prev)
	ta, tb := tidset.FromSet(a), tidset.FromSet(b)
	dst := &tidset.Tiled{}
	ta.IntersectInto(tb, dst) // warm-up: page in the destination
	iters := 0
	start := time.Now()
	for time.Since(start) < minTime {
		ta.IntersectInto(tb, dst)
		iters++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

const simTiles = 4096

// timeWidthKernel times a self-contained tile intersection at the given
// words-per-tile: one summary bit per tile (exact nonzero-ness), AND
// the summaries, AND the tile words only where the summary survived.
// Returns mean ns per pass and the fraction of tile ANDs skipped.
func timeWidthKernel(r *rand.Rand, wordsPerTile int, occupancy float64, minTime time.Duration) (ns float64, skipFrac float64) {
	build := func() ([]uint64, []uint64) {
		tiles := make([]uint64, simTiles*wordsPerTile)
		summary := make([]uint64, (simTiles+63)/64)
		for t := 0; t < simTiles; t++ {
			if r.Float64() >= occupancy {
				continue
			}
			for w := 0; w < wordsPerTile; w++ {
				tiles[t*wordsPerTile+w] = r.Uint64()
			}
			summary[t/64] |= 1 << (t % 64)
		}
		return tiles, summary
	}
	ta, sa := build()
	tb, sb := build()
	dst := make([]uint64, simTiles*wordsPerTile)
	kept, skipped := 0, 0
	pass := func() {
		for sw := range sa {
			live := sa[sw] & sb[sw]
			for bit := 0; bit < 64; bit++ {
				t := sw*64 + bit
				if t >= simTiles {
					break
				}
				if live&(1<<bit) == 0 {
					skipped++
					continue
				}
				kept++
				base := t * wordsPerTile
				for w := 0; w < wordsPerTile; w++ {
					dst[base+w] = ta[base+w] & tb[base+w]
				}
			}
		}
	}
	pass() // warm-up
	kept, skipped = 0, 0
	iters := 0
	start := time.Now()
	for time.Since(start) < minTime {
		pass()
		iters++
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(iters),
		float64(skipped) / float64(kept+skipped)
}
