// Command fimserve is the multi-tenant mining service daemon: an HTTP
// server around the library's miners with admission control,
// backpressure and graceful degradation (see internal/serve).
//
//	fimserve -addr :8080 -workers 4 -queue 16 -global-memory-mb 2048
//
// API:
//
//	POST /mine?dataset=chess&support=0.6&algo=eclat&rep=diffset
//	POST /mine?support=0.1            (FIMI text in the request body)
//	GET  /runs            live and recent runs with stop causes
//	GET  /runs/{id}       one run's record
//	GET  /runs/{id}/events   the run's event stream as SSE
//	GET  /healthz /readyz /stats
//	GET  /metrics         Prometheus text exposition (admission, cache,
//	                      queue/run/request histograms, pool, kernel
//	                      roll-ups, SLO burn state)
//	GET  /debug/flight    the flight recorder's last-runs dump
//	GET  /debug/incidents      captured incident bundles (summaries)
//	GET  /debug/incidents/{id} one full fimserve-incident/v1 bundle
//
// A continuous CPU profiler runs always-on in fixed windows
// (-prof-window), and every mining run executes under pprof labels
// (fim_run_id, fim_tenant, fim_algo, fim_rep, fim_phase), so any CPU
// profile taken from the daemon attributes samples to runs and phases.
// When the SLO watchdog transitions into warn or page, a worker
// panics, or the shared pool stops a run, the incident engine bundles
// the flight dump, paired /metrics scrapes, the covering CPU window, a
// goroutine dump and a heap profile (rate-limited by
// -incident-cooldown, persisted to -incident-dir).
//
// Requests carry a tenant in the X-Tenant header ("anon" if absent).
// On SIGTERM/SIGINT the daemon stops admitting, drains in-flight runs
// (budget-stopping stragglers after the grace period), optionally
// writes a shutdown report and the flight-recorder dump (-flight), and
// exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 2, "concurrent mining runs")
		queue       = flag.Int("queue", 8, "admission queue depth (full queue sheds with 429)")
		perTenant   = flag.Int("per-tenant", 4, "per-tenant in-flight request quota")
		mineWorkers = flag.Int("mine-workers", 2, "worker team size per run")
		runMemMB    = flag.Int64("max-run-memory-mb", 256, "per-run live payload cap (MiB)")
		globalMemMB = flag.Int64("global-memory-mb", 1024, "shared live payload cap across all runs (MiB)")
		runTimeout  = flag.Duration("max-run-duration", 60*time.Second, "per-run wall clock cap")
		cacheMB     = flag.Int64("cache-mb", 64, "result cache budget (MiB, -1 disables)")
		drainGrace  = flag.Duration("drain-grace", 10*time.Second, "how long drain lets runs finish before stopping them")
		report      = flag.String("report", "", "write a JSON shutdown report (stats + recent runs) to this file on exit")
		flight      = flag.String("flight", "", "write the flight-recorder dump (fimserve-flight/v1) to this file on drain, and <file>.panic on a worker panic")
		tenantCard  = flag.Int("tenant-series", 32, "distinct tenant label values in /metrics before folding into \"other\"")
		profWindow  = flag.Duration("prof-window", time.Minute, "continuous profiler window length (negative disables)")
		incCooldown = flag.Duration("incident-cooldown", 5*time.Minute, "minimum spacing between incident bundles")
		incDir      = flag.String("incident-dir", "", "persist each incident bundle to <dir>/incident-<id>.json")
	)
	flag.Parse()

	cacheBytes := *cacheMB << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}
	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		PerTenant:      *perTenant,
		MineWorkers:    *mineWorkers,
		MaxRunMemory:   *runMemMB << 20,
		GlobalMemory:   *globalMemMB << 20,
		MaxRunDuration: *runTimeout,
		CacheBytes:     cacheBytes,
		DrainGrace:     *drainGrace,
		TenantSeries:   *tenantCard,
		FlightPath:     *flight,

		ProfileWindow:    *profWindow,
		IncidentCooldown: *incCooldown,
		IncidentDir:      *incDir,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("fimserve: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	log.Printf("fimserve: listening on %s (%d workers, queue %d, pool %d MiB)",
		ln.Addr(), *workers, *queue, *globalMemMB)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("fimserve: %v: draining (grace %s)", s, *drainGrace)
	case err := <-errCh:
		log.Fatalf("fimserve: serve: %v", err)
	}

	// Drain: stop admitting, let in-flight runs finish, budget-stop
	// stragglers after the grace period. The hard deadline below only
	// bounds a run that ignores its stop signal — it should never fire.
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace*2+5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("fimserve: drain incomplete: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("fimserve: shutdown: %v", err)
	}

	if *report != "" {
		if err := writeReport(*report, srv); err != nil {
			log.Printf("fimserve: report: %v", err)
			os.Exit(1)
		}
		log.Printf("fimserve: report written to %s", *report)
	}
	if *flight != "" {
		log.Printf("fimserve: flight dump written to %s", *flight)
	}
	log.Printf("fimserve: drained, exiting")
}

// writeReport dumps the server's terminal state: aggregate stats plus
// the recent-run records, so a drained daemon leaves an audit trail of
// what it served and why each run ended.
func writeReport(path string, srv *serve.Server) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(srv.ShutdownReport()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", path, err)
	}
	return nil
}
