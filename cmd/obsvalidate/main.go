// Command obsvalidate checks observability artifacts against their
// schemas: a JSON-lines event stream (fimmine -events), a run report
// (fimmine -report, fim-run-report/v1), and a benchmark result file
// (fimbench -json, fim-bench/v1). CI runs it over the artifacts of a
// short instrumented mine; exit status is non-zero on the first
// violation.
//
// Usage:
//
//	obsvalidate -events run.jsonl -report run.json -bench results/BENCH_bench.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/export"
)

func main() {
	eventsPath := flag.String("events", "", "JSON-lines event stream to validate")
	reportPath := flag.String("report", "", "fim-run-report/v1 document to validate")
	benchPath := flag.String("bench", "", "fim-bench/v1 document to validate")
	flag.Parse()

	if *eventsPath == "" && *reportPath == "" && *benchPath == "" {
		fmt.Fprintln(os.Stderr, "obsvalidate: nothing to validate (pass -events, -report and/or -bench)")
		os.Exit(2)
	}
	checked := 0
	if *eventsPath != "" {
		f, err := os.Open(*eventsPath)
		if err != nil {
			fatal(err)
		}
		events, err := export.DecodeLines(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("obsvalidate: %s: %w", *eventsPath, err))
		}
		if err := export.ValidateEvents(events); err != nil {
			fatal(fmt.Errorf("obsvalidate: %s: %w", *eventsPath, err))
		}
		fmt.Printf("%s: %d events, stream valid\n", *eventsPath, len(events))
		checked++
	}
	if *reportPath != "" {
		f, err := os.Open(*reportPath)
		if err != nil {
			fatal(err)
		}
		rep, err := export.ReadReport(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("obsvalidate: %s: %w", *reportPath, err))
		}
		fmt.Printf("%s: %s %s x%d, %d levels, %d itemsets, report valid\n",
			*reportPath, rep.Schema, rep.Algorithm, rep.Workers, len(rep.Levels), rep.Itemsets)
		checked++
	}
	if *benchPath != "" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal(err)
		}
		bf, err := export.ReadBenchFile(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("obsvalidate: %s: %w", *benchPath, err))
		}
		fmt.Printf("%s: %s, %d results, bench file valid\n", *benchPath, bf.Schema, len(bf.Results))
		checked++
	}
	fmt.Printf("obsvalidate: %d artifact(s) valid\n", checked)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
