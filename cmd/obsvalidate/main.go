// Command obsvalidate checks observability artifacts against their
// schemas: a JSON-lines event stream (fimmine -events), a run report
// (fimmine -report, fim-run-report/v1), a benchmark result file
// (fimbench -json, fim-bench/v1), a span timeline (fimmine -trace,
// Chrome trace-event JSON), Prometheus text-exposition scrapes
// (fimserve GET /metrics), and incident bundles (fimserve
// GET /debug/incidents/{id} or -incident-dir files,
// fimserve-incident/v1). When both -events and -trace are given, it
// also cross-checks the trace's per-worker chunk-span totals against
// the event stream's phase_end load metrics (within 5%); when both
// -metrics and -metrics2 are given (two scrapes of the same target, in
// order), it additionally checks counter monotonicity between them. CI
// runs it over the artifacts of a short instrumented mine and a served
// smoke load.
//
// Every failure names the offending artifact path on stderr; each
// validator class has a distinct exit code so CI logs identify the
// broken layer without parsing messages:
//
//	0  all artifacts valid
//	1  I/O error opening or reading an artifact
//	2  usage error (no artifacts requested)
//	3  event stream invalid
//	4  run report invalid
//	5  bench file invalid
//	6  trace file invalid
//	7  trace/events busy-time cross-check failed
//	8  metrics scrape invalid (parse, histogram consistency, or
//	   counter monotonicity between -metrics and -metrics2)
//	9  incident bundle invalid (envelope, embedded flight dump,
//	   paired scrapes, goroutine dump, or pprof profiles)
//
// Usage:
//
//	obsvalidate -events run.jsonl -report run.json -trace run.trace.json -bench results/BENCH_bench.json
//	obsvalidate -metrics scrape1.prom -metrics2 scrape2.prom
//	obsvalidate -incident incident-1.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/metrics"
	"repro/internal/serve"
)

// Exit codes, one per validator class.
const (
	exitOK       = 0
	exitIO       = 1
	exitUsage    = 2
	exitEvents   = 3
	exitReport   = 4
	exitBench    = 5
	exitTrace    = 6
	exitCrossChk = 7
	exitMetrics  = 8
	exitIncident = 9
)

// crossCheckTol matches the acceptance bound: span totals and
// sched.Metrics busy time derive from the same chunk timings, so 5%
// covers only encoding rounding.
const crossCheckTol = 0.05

func main() {
	eventsPath := flag.String("events", "", "JSON-lines event stream to validate")
	reportPath := flag.String("report", "", "fim-run-report/v1 document to validate")
	benchPath := flag.String("bench", "", "fim-bench/v1 document to validate")
	tracePath := flag.String("trace", "", "Chrome trace-event JSON timeline to validate")
	metricsPath := flag.String("metrics", "", "Prometheus text-exposition scrape to validate")
	metrics2Path := flag.String("metrics2", "", "later scrape of the same target, checked monotone against -metrics")
	incidentPath := flag.String("incident", "", "fimserve-incident/v1 bundle to validate")
	flag.Parse()

	if *eventsPath == "" && *reportPath == "" && *benchPath == "" && *tracePath == "" && *metricsPath == "" && *incidentPath == "" {
		fmt.Fprintln(os.Stderr, "obsvalidate: nothing to validate (pass -events, -report, -bench, -trace, -metrics and/or -incident)")
		os.Exit(exitUsage)
	}
	if *metrics2Path != "" && *metricsPath == "" {
		fmt.Fprintln(os.Stderr, "obsvalidate: -metrics2 requires -metrics (the earlier scrape)")
		os.Exit(exitUsage)
	}

	checked := 0
	var events []obs.Event
	if *eventsPath != "" {
		f, err := os.Open(*eventsPath)
		if err != nil {
			fail(exitIO, *eventsPath, err)
		}
		events, err = export.DecodeLines(f)
		f.Close()
		if err != nil {
			fail(exitEvents, *eventsPath, err)
		}
		if err := export.ValidateEvents(events); err != nil {
			fail(exitEvents, *eventsPath, err)
		}
		fmt.Printf("%s: %d events, stream valid\n", *eventsPath, len(events))
		checked++
	}
	if *reportPath != "" {
		f, err := os.Open(*reportPath)
		if err != nil {
			fail(exitIO, *reportPath, err)
		}
		rep, err := export.ReadReport(f)
		f.Close()
		if err != nil {
			fail(exitReport, *reportPath, err)
		}
		fmt.Printf("%s: %s %s x%d, %d levels, %d itemsets, report valid\n",
			*reportPath, rep.Schema, rep.Algorithm, rep.Workers, len(rep.Levels), rep.Itemsets)
		checked++
	}
	if *benchPath != "" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fail(exitIO, *benchPath, err)
		}
		bf, err := export.ReadBenchFile(f)
		f.Close()
		if err != nil {
			fail(exitBench, *benchPath, err)
		}
		fmt.Printf("%s: %s, %d results, bench file valid\n", *benchPath, bf.Schema, len(bf.Results))
		checked++
	}
	var trace *export.TraceFile
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fail(exitIO, *tracePath, err)
		}
		trace, err = export.ReadTraceFile(f)
		f.Close()
		if err != nil {
			fail(exitTrace, *tracePath, err)
		}
		fmt.Printf("%s: %d trace events, %d worker row(s), trace valid\n",
			*tracePath, len(trace.TraceEvents), len(trace.WorkerRows()))
		checked++
	}
	if trace != nil && events != nil {
		if err := export.CrossCheckTrace(trace, events, crossCheckTol); err != nil {
			fail(exitCrossChk, *tracePath, err)
		}
		fmt.Printf("%s: busy time agrees with %s phase_end metrics within %.0f%%\n",
			*tracePath, *eventsPath, crossCheckTol*100)
	}
	if *metricsPath != "" {
		first := readScrape(*metricsPath)
		fmt.Printf("%s: %d series across %d families, scrape valid\n",
			*metricsPath, len(first.Values), len(first.Types))
		checked++
		if *metrics2Path != "" {
			second := readScrape(*metrics2Path)
			if err := metrics.CheckMonotonic(first, second); err != nil {
				fail(exitMetrics, *metrics2Path, err)
			}
			fmt.Printf("%s: %d series, counters monotone against %s\n",
				*metrics2Path, len(second.Values), *metricsPath)
			checked++
		}
	}
	if *incidentPath != "" {
		data, err := os.ReadFile(*incidentPath)
		if err != nil {
			fail(exitIO, *incidentPath, err)
		}
		var b serve.IncidentBundle
		if err := json.Unmarshal(data, &b); err != nil {
			fail(exitIncident, *incidentPath, err)
		}
		if err := serve.ValidateIncident(b); err != nil {
			fail(exitIncident, *incidentPath, err)
		}
		profNote := fmt.Sprintf("%d-byte cpu window", len(b.CPUProfile))
		if len(b.CPUProfile) == 0 {
			profNote = "no cpu window (profiler disabled or skipped)"
		}
		fmt.Printf("%s: %s #%d reason %q, %d flight runs, %s, bundle valid\n",
			*incidentPath, b.Schema, b.ID, b.Reason, len(b.Flight.Runs), profNote)
		checked++
	}
	fmt.Printf("obsvalidate: %d artifact(s) valid\n", checked)
}

// readScrape parses and validates one text-exposition file.
func readScrape(path string) *metrics.Scrape {
	f, err := os.Open(path)
	if err != nil {
		fail(exitIO, path, err)
	}
	sc, err := metrics.ParseText(f)
	f.Close()
	if err != nil {
		fail(exitMetrics, path, err)
	}
	if err := sc.Validate(); err != nil {
		fail(exitMetrics, path, err)
	}
	return sc
}

// fail reports the offending artifact and exits with the validator
// class's code.
func fail(code int, path string, err error) {
	fmt.Fprintf(os.Stderr, "obsvalidate: %s: %v\n", path, err)
	os.Exit(code)
}
