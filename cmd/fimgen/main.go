// Command fimgen writes one of the built-in synthetic datasets to a
// FIMI-format file, so the miners (and any external FIM tool) can consume
// it.
//
// Usage:
//
//	fimgen -dataset chess > chess.dat
//	fimgen -dataset pumsb -scale 0.1 -o pumsb_small.dat -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	dsName := flag.String("dataset", "", "dataset name (see fim.DatasetNames)")
	scale := flag.Float64("scale", 1, "transaction-count scale factor")
	out := flag.String("o", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print dataset statistics to stderr")
	list := flag.Bool("list", false, "list available datasets and exit")
	flag.Parse()

	if *list {
		for _, n := range fim.DatasetNames() {
			fmt.Println(n)
		}
		return
	}
	if *dsName == "" {
		fmt.Fprintln(os.Stderr, "fimgen: -dataset is required (try -list)")
		os.Exit(2)
	}
	db, err := fim.Dataset(*dsName, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := fim.WriteFIMI(w, db); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *stats {
		st := db.ComputeStats()
		fmt.Fprintf(os.Stderr, "%s: %d transactions, %d items, avg length %.1f, %d KB\n",
			st.Name, st.NumTransactions, st.NumItems, st.AvgLength, st.SizeBytes/1024)
	}
}
