// Command benchdiff compares fim-bench/v1 benchmark files cell by cell
// and gates CI on regressions. The first file is the baseline; every
// later file is diffed against it in order. A cell (dataset, algorithm,
// representation, schedule, threads) regresses when its best wall time grows past
// -tolerance (new/old ratio); itemset-count disagreement is always a
// hard error regardless of tolerance, because the miners are
// deterministic. Cells present in only one file are reported but never
// fail the gate, so a CI run over a dataset subset can diff against the
// full committed baseline.
//
// Usage:
//
//	benchdiff results/BENCH_bench.json new.json
//	benchdiff -tolerance 3 -history results/BENCH_history.jsonl baseline.json new.json
//	benchdiff -ignore-sched dynamic.json steal.json
//	benchdiff -ignore-batch batched.json pairwise.json
//	benchdiff -ignore-layout flat.json tiled.json
//	benchdiff -ignore-rep tidset.json nodeset.json
//
// -ignore-sched strips the schedule from every cell before diffing, so
// a file measured under one schedule (fimbench -json ... -sched steal)
// compares cell-for-cell against a default-schedule baseline.
// -ignore-batch does the same for the batch mode, so a pairwise file
// (fimbench -json ... -batch off) compares cell-for-cell against a
// batched baseline — the exact-itemset check then proves the two
// combine paths mine identical sets. -ignore-layout does the same for
// the tidset memory layout, so a tiled file (fimbench -json ...
// -layout tiled) compares cell-for-cell against a flat baseline.
// -ignore-rep strips the representation, so a file mined under one
// representation (fimbench -json ... -rep nodeset) compares
// cell-for-cell against a baseline of another — the exact-itemset
// check proving the representations mine identical sets.
//
// With -history, the newest file's cells are appended as one line of the
// append-only fim-bench-history/v1 JSONL log (written even when the gate
// fails, so regressions are part of the record).
//
// Exit status: 0 within tolerance, 1 wall-time regression, 2 usage or
// I/O error, 3 itemset-count mismatch.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/export"
)

func main() {
	tol := flag.Float64("tolerance", 1.5, "max allowed new/old wall-time ratio per cell")
	historyPath := flag.String("history", "", "append the newest file's cells to this fim-bench-history/v1 JSONL log")
	label := flag.String("label", "", "label for the history entry (e.g. a git ref)")
	ignoreSched := flag.Bool("ignore-sched", false, "collapse schedule variants onto their base cells before diffing (e.g. steal file vs default baseline)")
	ignoreBatch := flag.Bool("ignore-batch", false, "collapse batch-mode variants onto their base cells before diffing (e.g. -batch off file vs batched baseline)")
	ignoreLayout := flag.Bool("ignore-layout", false, "collapse tidset-layout variants onto their base cells before diffing (e.g. -layout tiled file vs flat baseline)")
	ignoreRep := flag.Bool("ignore-rep", false, "collapse representations onto their (dataset, algorithm, threads) cells before diffing (e.g. -rep nodeset file vs tidset baseline)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance R] [-history FILE] [-label S] [-ignore-sched] [-ignore-batch] [-ignore-layout] [-ignore-rep] baseline.json new.json...")
		flag.PrintDefaults()
	}
	flag.Parse()

	if flag.NArg() < 2 {
		flag.Usage()
		os.Exit(2)
	}
	if *tol <= 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: -tolerance %v must be positive\n", *tol)
		os.Exit(2)
	}

	files := make([]*export.BenchFile, flag.NArg())
	for i, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		files[i], err = export.ReadBenchFile(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("benchdiff: %s: %w", path, err))
		}
		if *ignoreSched {
			export.StripSchedule(files[i])
		}
		if *ignoreBatch {
			export.StripBatch(files[i])
		}
		if *ignoreLayout {
			export.StripLayout(files[i])
		}
		if *ignoreRep {
			export.StripRepresentation(files[i])
		}
	}

	exit := 0
	baseline := files[0]
	for i := 1; i < len(files); i++ {
		d, err := export.DiffBench(baseline, files[i])
		if err != nil {
			fatal(fmt.Errorf("benchdiff: %s vs %s: %w", flag.Arg(0), flag.Arg(i), err))
		}
		fmt.Printf("== %s vs %s (tolerance %.2fx) ==\n", flag.Arg(0), flag.Arg(i), *tol)
		export.FormatBenchDiff(os.Stdout, d, *tol)
		if mm := d.ItemsetMismatches(); len(mm) > 0 {
			for _, c := range mm {
				fmt.Fprintf(os.Stderr, "benchdiff: %s: itemset count changed %d -> %d (correctness regression)\n",
					c.Key, c.OldItemsets, c.NewItemsets)
			}
			exit = 3
		}
		if regs := d.Regressions(*tol); len(regs) > 0 && exit == 0 {
			for _, c := range regs {
				fmt.Fprintf(os.Stderr, "benchdiff: %s: wall time %.3fs -> %.3fs (%.2fx > %.2fx tolerance)\n",
					c.Key, c.OldWall, c.NewWall, c.WallRatio, *tol)
			}
			exit = 1
		}
	}

	if *historyPath != "" {
		newest := files[len(files)-1]
		e, err := export.NewHistoryEntry(newest, *label)
		if err != nil {
			fatal(fmt.Errorf("benchdiff: %w", err))
		}
		if err := export.AppendHistory(*historyPath, e); err != nil {
			fatal(fmt.Errorf("benchdiff: %w", err))
		}
		fmt.Printf("benchdiff: appended %d cell(s) to %s\n", len(e.Cells), *historyPath)
	}
	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
