package main

import (
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/datasets"
	"repro/internal/obs/export"
)

// benchConfigs is the standardized real-hardware benchmark matrix: the
// paper's two dense datasets at their default supports, the preferred
// configuration of each algorithm family, plus Eclat under the
// work-stealing schedule and the tidset cells under the tiled layout
// (variant cells carry schedule "steal" / layout "tiled", so they
// never collide with the default cells). Frozen so BENCH_*.json files
// from different commits stay comparable.
var benchConfigs = []struct {
	algo   fim.Algorithm
	rep    fim.Representation
	sched  string // "" = the algorithm's default schedule
	layout string // "" = the representation's flat default
}{
	{fim.Apriori, fim.Diffset, "", ""},
	{fim.Apriori, fim.Tidset, "", ""},
	{fim.Apriori, fim.Bitvector, "", ""},
	{fim.Eclat, fim.Diffset, "", ""},
	{fim.Eclat, fim.Tidset, "", ""},
	{fim.FPGrowth, fim.Diffset, "", ""},
	{fim.Eclat, fim.Diffset, "steal", ""},
	{fim.Eclat, fim.Tidset, "", "tiled"},
	{fim.Apriori, fim.Tidset, "", "tiled"},
	{fim.Eclat, fim.Nodeset, "", ""},
	{fim.Apriori, fim.Nodeset, "", ""},
}

var benchDatasets = []string{"chess", "mushroom"}

// loadCalibration applies the kernel calibration file named by the
// -calibration flag, falling back to the FIM_CALIBRATION environment
// variable, falling back to the compiled-in defaults. Calibration is
// speed-only — it never changes which itemsets are mined — so bench
// cells stay comparable across calibrated hosts.
func loadCalibration(path string) error {
	if path != "" {
		return fim.LoadCalibration(path)
	}
	if env := os.Getenv(fim.CalibrationEnv); env != "" {
		return fim.LoadCalibration(env)
	}
	return nil
}

// runBenchJSON runs the standardized suite on the host (real wall
// clock, not the simulator) and writes a fim-bench/v1 document to path.
// Peak live payload bytes come from the run's observer stream; each
// (dataset, config, threads) cell runs reps times and every rep is
// recorded, so consumers can aggregate however they like. names
// restricts the dataset set (CI benches mushroom only against the
// full committed baseline; benchdiff compares the common cells).
//
// A non-empty schedOverride runs only the default-schedule configs,
// each under that schedule, with the schedule recorded per cell — the
// way to produce a steal-mode file to diff against a default baseline
// (benchdiff -ignore-sched).
//
// batchOff disables the prefix-blocked batched combine kernels and
// records batch "off" per cell; diffing such a file against a default
// baseline (benchdiff -ignore-batch) is the batching A/B, with the
// exact-itemset check proving the two modes mine identical sets.
//
// A non-empty layoutOverride runs only the default-layout configs,
// each under that tidset layout where it applies (configs whose
// representation has no such layout are skipped), with the layout
// recorded per cell — the way to produce a tiled-layout file to diff
// against a flat baseline (benchdiff -ignore-layout), whose
// exact-itemset check proves the two layouts mine identical sets.
//
// A non-empty repOverride runs every algorithm of the default matrix
// once under that representation — variant cells are dropped, the rep
// dimension collapses (an algorithm appearing with several reps runs
// once), and FP-growth is skipped because it mines from its own tree
// and the representation is inert there. The override name is recorded
// per cell, so diffing such a file against a baseline (benchdiff
// -ignore-rep) is the representation A/B with the exact-itemset check
// proving both reps mine identical sets.
func runBenchJSON(path string, names []string, threads []int, scale float64, reps int, schedOverride string, batchOff bool, layoutOverride, repOverride string) error {
	if len(threads) == 0 {
		threads = []int{1, 2, 4}
	}
	if reps < 1 {
		reps = 1
	}
	if len(names) == 0 {
		names = benchDatasets
	}
	var repK fim.Representation
	if repOverride != "" {
		var rerr error
		if repK, rerr = fim.ParseRepresentation(repOverride); rerr != nil {
			return fmt.Errorf("fimbench: %w", rerr)
		}
	}
	var results []export.Bench
	for _, name := range names {
		ds, err := datasets.Get(name)
		if err != nil {
			return err
		}
		db := ds.Build(scale * ds.ExperimentScale)
		seenAlgo := map[fim.Algorithm]bool{}
		for _, c := range benchConfigs {
			effRep, repName := c.rep, c.rep.String()
			if repOverride != "" {
				if c.sched != "" || c.layout != "" {
					continue // override replaces the variant cells
				}
				if c.algo == fim.FPGrowth {
					continue // FP-growth mines from its own tree; the rep is inert
				}
				if seenAlgo[c.algo] {
					continue // the rep dimension collapses under the override
				}
				seenAlgo[c.algo] = true
				effRep, repName = repK, repK.String()
			}
			schedName := c.sched
			if schedOverride != "" {
				if c.sched != "" {
					continue // override replaces the variant cells
				}
				schedName = schedOverride
			}
			layoutName := c.layout
			if layoutOverride != "" {
				if c.layout != "" {
					continue // override replaces the variant cells
				}
				layoutName = layoutOverride
			}
			if layoutName != "" {
				var lerr error
				effRep, lerr = fim.ApplyLayout(effRep, layoutName)
				if lerr != nil {
					if layoutOverride != "" {
						continue // override only applies where the layout exists
					}
					return fmt.Errorf("fimbench: %w", lerr)
				}
			}
			for _, th := range threads {
				for rep := 1; rep <= reps; rep++ {
					b := export.NewReportBuilder()
					opt := fim.Options{
						Algorithm:      c.algo,
						Representation: effRep,
						Workers:        th,
						Observer:       b,
						DisableBatch:   batchOff,
					}
					if schedName != "" {
						if opt.SchedulePolicy, err = fim.ParseSchedulePolicy(schedName); err != nil {
							return fmt.Errorf("fimbench: %w", err)
						}
						opt.SetSchedule = true
					}
					start := time.Now()
					res, err := fim.Mine(db, ds.DefaultSupport, opt)
					if err != nil {
						return fmt.Errorf("fimbench: %s/%s x%d: %w", name, c.algo, th, err)
					}
					wall := time.Since(start)
					report := b.Report()
					batchName := ""
					if batchOff {
						batchName = "off"
					}
					results = append(results, export.Bench{
						Schema:         export.BenchSchema,
						Dataset:        name,
						Algorithm:      c.algo.String(),
						Representation: repName,
						Schedule:       schedName,
						Batch:          batchName,
						Layout:         layoutName,
						Threads:        th,
						Rep:            rep,
						WallSeconds:    wall.Seconds(),
						PeakBytes:      report.PeakLiveBytes,
						Itemsets:       int64(res.Len()),
					})
					sm := ""
					if schedName != "" {
						sm = "@" + schedName
					}
					if layoutName != "" {
						sm += "%" + layoutName
					}
					fmt.Fprintf(os.Stderr, "bench %s %s/%s%s x%d rep%d: %.3fs peak=%d itemsets=%d\n",
						name, c.algo, repName, sm, th, rep, wall.Seconds(), report.PeakLiveBytes, res.Len())
				}
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export.WriteBenchFile(f, export.NewBenchFile(results)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
