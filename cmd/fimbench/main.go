// Command fimbench regenerates every table and figure of the paper's
// evaluation, plus the DESIGN.md ablations, from the synthetic datasets
// and the simulated Blacklight machine.
//
// Usage:
//
//	fimbench -exp all
//	fimbench -exp table2+fig5 -scale 0.25
//	fimbench -exp eclat-tidset -threads 1,16,64,256
//	fimbench -json results/BENCH_bench.json -scale 0.4
//
// -json skips the simulator entirely: it times the standardized suite
// (chess and mushroom at their default supports, Apriori/Eclat over
// diffsets plus FP-growth, across -threads) on the host and writes the
// fim-bench/v1 result document, the format future commits diff against.
//
// Experiments: table1, table2+fig5 (apriori-diffset), table3+fig6
// (eclat-tidset), table6+fig7 (eclat-bitvector), table5+fig8
// (eclat-diffset), apriori-flat, sparse-limit, schedule-ablation,
// chunk-ablation, depth-ablation, baselines, ht-ablation,
// memory-footprint, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/vertical"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see doc comment)")
	csv := flag.Bool("csv", false, "emit scalability tables as plot-ready CSV")
	scale := flag.Float64("scale", experiments.DefaultScale, "dataset scale factor")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default 1,16,32,64,128,256; 1,2,4 for -json)")
	jsonPath := flag.String("json", "", "run the standardized real-hardware bench suite and write fim-bench/v1 JSON to this file (e.g. results/BENCH_bench.json)")
	benchReps := flag.Int("reps", 1, "repetitions per -json bench cell")
	benchDatasetsFlag := flag.String("datasets", strings.Join(benchDatasets, ","), "comma-separated datasets for the -json suite")
	benchSched := flag.String("sched", "", "force every -json cell onto this loop schedule (static, dynamic, guided, steal); variant cells are dropped")
	benchBatch := flag.String("batch", "on", "prefix-blocked batched combine kernels for the -json suite: on, off (off records batch \"off\" per cell)")
	benchLayout := flag.String("layout", "", "force every -json cell onto this tidset memory layout (tiled, flat); variant cells are dropped, configs without the layout are skipped")
	benchRep := flag.String("rep", "", "force every -json cell onto this representation (tidset, bitvector, diffset, hybrid, tiled, nodeset); variant cells and FP-growth are dropped, each algorithm runs once")
	calibPath := flag.String("calibration", "", "kernel calibration JSON file (default: the FIM_CALIBRATION environment variable)")
	flag.Parse()

	if err := loadCalibration(*calibPath); err != nil {
		fmt.Fprintf(os.Stderr, "fimbench: %v\n", err)
		os.Exit(2)
	}

	cfg := experiments.Config{Scale: *scale}
	if *threadsFlag != "" {
		for _, f := range strings.Split(*threadsFlag, ",") {
			t, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || t < 1 {
				fmt.Fprintf(os.Stderr, "fimbench: bad thread count %q\n", f)
				os.Exit(2)
			}
			cfg.Threads = append(cfg.Threads, t)
		}
	}

	if *jsonPath != "" {
		var names []string
		for _, n := range strings.Split(*benchDatasetsFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		batchOff := false
		switch *benchBatch {
		case "on":
		case "off":
			batchOff = true
		default:
			fmt.Fprintf(os.Stderr, "fimbench: -batch must be on or off, got %q\n", *benchBatch)
			os.Exit(2)
		}
		if err := runBenchJSON(*jsonPath, names, cfg.Threads, *scale, *benchReps, *benchSched, batchOff, *benchLayout, *benchRep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	printTable := func(t *experiments.Table) {
		if *csv {
			fmt.Print(t.CSV())
			return
		}
		fmt.Print(t.Format())
	}
	run := func(id string) bool {
		switch id {
		case "table1":
			fmt.Print(experiments.FormatTableI(experiments.TableI()))
		case "table2+fig5", "apriori-diffset":
			t := experiments.Scalability(core.Apriori, vertical.Diffset, cfg)
			t.ID, t.Title = "table2+fig5", "Running time and speedup for Apriori with Diffset"
			printTable(t)
		case "table3+fig6", "eclat-tidset":
			t := experiments.Scalability(core.Eclat, vertical.Tidset, cfg)
			t.ID, t.Title = "table3+fig6", "Running time and speedup for Eclat with Tidset"
			printTable(t)
		case "table6+fig7", "eclat-bitvector":
			t := experiments.Scalability(core.Eclat, vertical.Bitvector, cfg)
			t.ID, t.Title = "table6+fig7", "Running time and speedup for Eclat with Bitvector"
			printTable(t)
		case "table5+fig8", "eclat-diffset":
			t := experiments.Scalability(core.Eclat, vertical.Diffset, cfg)
			t.ID, t.Title = "table5+fig8", "Running time and speedup for Eclat with Diffset"
			printTable(t)
		case "eclat-hybrid":
			t := experiments.Scalability(core.Eclat, vertical.Hybrid, cfg)
			t.ID, t.Title = "eclat-hybrid", "Eclat with the Hybrid (dEclat switch-over) extension"
			printTable(t)
		case "apriori-flat":
			for _, t := range experiments.AprioriFlat(cfg) {
				printTable(t)
				fmt.Println()
			}
		case "sparse-limit":
			fmt.Print(experiments.FormatSparse(experiments.SparseLimit(cfg)))
		case "schedule-ablation":
			fmt.Print(experiments.FormatSchedule(experiments.ScheduleAblation(cfg)))
		case "chunk-ablation":
			fmt.Print(experiments.FormatChunk(experiments.ChunkAblation(cfg)))
		case "depth-ablation":
			fmt.Print(experiments.FormatDepth(experiments.DepthAblation(cfg)))
		case "baselines":
			fmt.Print(experiments.FormatBaselines(experiments.Baselines(cfg)))
		case "ht-ablation":
			fmt.Print(experiments.FormatHT(experiments.HTAblation(cfg)))
		case "order-ablation":
			fmt.Print(experiments.FormatOrder(experiments.OrderAblation(cfg)))
		case "lazy-ablation":
			fmt.Print(experiments.FormatLazy(experiments.LazyAblation(cfg)))
		case "memory-footprint":
			fmt.Print(experiments.FormatFootprint(experiments.MemoryFootprint(cfg)))
		default:
			return false
		}
		return true
	}

	if *exp == "all" {
		for _, id := range []string{
			"table1", "table2+fig5", "apriori-flat", "table3+fig6",
			"table6+fig7", "table5+fig8", "eclat-hybrid", "sparse-limit",
			"schedule-ablation", "chunk-ablation", "depth-ablation", "baselines",
			"ht-ablation", "order-ablation", "lazy-ablation", "memory-footprint",
		} {
			run(id)
			fmt.Println()
		}
		return
	}
	if !run(*exp) {
		fmt.Fprintf(os.Stderr, "fimbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
