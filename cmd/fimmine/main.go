// Command fimmine mines frequent itemsets from a FIMI-format file or one
// of the built-in synthetic datasets.
//
// Usage:
//
//	fimmine -dataset chess -support 0.5
//	fimmine -file retail.dat -support 0.01 -algo apriori -rep tidset -workers 8
//	fimmine -dataset mushroom -support 0.4 -rules 0.8
//	fimmine -dataset chess -support 0.5 -closed
//	fimmine -dataset pumsb -support 0.8 -timeout 10s -max-memory-mb 256 -degrade
//
// The run is cancellable: SIGINT/SIGTERM (or an expired -timeout, or a
// breached -max-memory-mb/-max-itemsets budget) stops mining at the next
// chunk boundary and the command prints whatever complete levels were
// mined, a summary marked INCOMPLETE, and the stop reason, exiting 1.
//
// Observability: -progress prints live level-by-level progress,
// -events writes the structured JSON-lines event stream, -report writes
// the final fim-run-report/v1 JSON document, -trace writes the span
// timeline as Chrome trace-event JSON (load in ui.perfetto.dev: one row
// per worker, one bar per scheduler chunk), and -metrics-addr serves
// the live report and trace snapshots plus expvar and pprof. Itemsets
// and rules are the only stdout output; every diagnostic (summary,
// progress, stop reason, metrics address) goes to stderr, so piped
// stdout stays clean.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro"
	"repro/internal/obs/export"
)

func main() {
	file := flag.String("file", "", "FIMI-format input file")
	dsName := flag.String("dataset", "", "built-in synthetic dataset (chess, mushroom, pumsb, pumsb_star, T40I10D100K, accidents)")
	scale := flag.Float64("scale", 1, "synthetic dataset scale factor")
	support := flag.Float64("support", 0.5, "relative minimum support (0..1]")
	algoName := flag.String("algo", "eclat", "algorithm: apriori, eclat, fpgrowth")
	repName := flag.String("rep", "diffset", "representation: tidset, bitvector, diffset, hybrid, tiled, nodeset")
	layout := flag.String("layout", "", "tidset memory layout: tiled, flat (default: the representation as given)")
	calibPath := flag.String("calibration", "", "per-host kernel calibration file from `calibrate -write` (default: $"+fim.CalibrationEnv+", else compiled-in)")
	workers := flag.Int("workers", 1, "parallel workers")
	freqOrder := flag.Bool("freq-order", false, "recode items in ascending support order")
	depth := flag.Int("depth", 0, "Eclat flattening depth (0 = default)")
	schedName := flag.String("sched", "", "override the loop schedule: static, dynamic, guided, steal (default: the algorithm's choice)")
	schedChunk := flag.Int("sched-chunk", 0, "chunk size for -sched (0 = the policy's default)")
	lazy := flag.Bool("lazy", false, "Apriori: count supports before materializing payloads")
	batch := flag.String("batch", "on", "prefix-blocked batched combine kernels: on, off")
	rules := flag.Float64("rules", 0, "also emit association rules at this confidence (0 = off)")
	closedOnly := flag.Bool("closed", false, "print only closed itemsets")
	maximalOnly := flag.Bool("maximal", false, "print only maximal itemsets")
	quiet := flag.Bool("quiet", false, "print summary only, not the itemsets")
	maxMemMB := flag.Float64("max-memory-mb", 0, "stop (or degrade) when mining payloads exceed this many MB (0 = unlimited)")
	maxItemsets := flag.Int64("max-itemsets", 0, "stop after emitting this many itemsets (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "stop after this long (0 = unlimited)")
	degrade := flag.Bool("degrade", false, "on memory-budget breach, degrade tidset/bitvector runs to diffsets instead of stopping")
	progress := flag.Bool("progress", false, "print live level-by-level progress to stderr")
	eventsPath := flag.String("events", "", "write the run's JSON-lines event stream to this file")
	reportPath := flag.String("report", "", "write the machine-readable run report (fim-run-report/v1) to this file")
	tracePath := flag.String("trace", "", "write the run's span timeline as Chrome trace-event JSON to this file (open in ui.perfetto.dev)")
	metricsAddr := flag.String("metrics-addr", "", "serve the live report, expvar and pprof over HTTP on this address (e.g. :8080; :0 picks a port)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
	flag.Parse()

	if err := loadCalibration(*calibPath); err != nil {
		fatal(err)
	}

	db, err := loadDB(*file, *dsName, *scale)
	if err != nil {
		fatal(err)
	}

	var opt fim.Options
	if opt.Algorithm, err = parseAlgo(*algoName); err != nil {
		fatal(err)
	}
	if opt.Representation, err = fim.ParseRepresentation(*repName); err != nil {
		fatal(err)
	}
	if opt.Representation, err = fim.ApplyLayout(opt.Representation, *layout); err != nil {
		fatal(err)
	}
	opt.Workers = *workers
	opt.OrderByFrequency = *freqOrder
	opt.EclatDepth = *depth
	opt.LazyMaterialize = *lazy
	switch *batch {
	case "on":
	case "off":
		opt.DisableBatch = true
	default:
		fatal(fmt.Errorf("fimmine: -batch must be on or off, got %q", *batch))
	}
	if *schedName != "" {
		if opt.SchedulePolicy, err = fim.ParseSchedulePolicy(*schedName); err != nil {
			fatal(err)
		}
		opt.ScheduleChunk = *schedChunk
		opt.SetSchedule = true
	}
	opt.MaxMemoryBytes = int64(*maxMemMB * (1 << 20))
	opt.MaxItemsets = *maxItemsets
	opt.MaxDuration = *timeout
	opt.DegradeToDiffset = *degrade
	// When profiling, label the run's samples (fim_algo, fim_rep,
	// fim_phase) so `go tool pprof -tagfocus` can slice by phase.
	opt.ProfileLabels = *cpuProfile != ""

	// Observer sinks: progress printer (stderr), JSON-lines event file,
	// and a report builder feeding -report and the HTTP endpoint.
	var sinks []fim.Observer
	if *progress {
		sinks = append(sinks, export.NewProgress(os.Stderr))
	}
	var events *export.JSONLines
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		events = export.NewJSONLines(f)
		sinks = append(sinks, events)
	}
	var builder *export.ReportBuilder
	if *reportPath != "" || *metricsAddr != "" {
		builder = export.NewReportBuilder()
		sinks = append(sinks, builder)
	}
	opt.Observer = fim.MultiObserver(sinks...)
	var tracer *fim.SpanRecorder
	if *tracePath != "" || *metricsAddr != "" {
		tracer = fim.NewSpanRecorder()
		opt.SpanTrace = tracer
	}
	if *metricsAddr != "" {
		srv, err := export.Serve(*metricsAddr, builder, tracer)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "fimmine: serving metrics on http://%s/\n", srv.Addr())
	}

	// SIGINT/SIGTERM cancel the mining context; the miners drain at the
	// next chunk boundary and return the partial result.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Profiles bracket only the mining call, so dataset synthesis and
	// output formatting stay out of the picture.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	start := time.Now()
	res, err := fim.MineContext(ctx, db, *support, opt)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		if perr := writeMemProfile(*memProfile); perr != nil {
			fatal(perr)
		}
	}
	if res == nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	counts := res.Decoded()
	switch {
	case *closedOnly:
		counts = decodeAll(res, fim.ClosedItemsets(res))
	case *maximalOnly:
		counts = decodeAll(res, fim.MaximalItemsets(res))
	}
	if !*quiet {
		// Itemsets stream buffered to stdout; diagnostics stay on stderr.
		out := bufio.NewWriter(os.Stdout)
		for _, c := range counts {
			fmt.Fprintf(out, "%v #%d\n", c.Items, c.Support)
		}
		if err := out.Flush(); err != nil {
			fatal(err)
		}
	}
	status := ""
	if res.Incomplete {
		status = " INCOMPLETE"
	}
	if res.Degraded {
		status += " degraded-to-diffset"
	}
	fmt.Fprintf(os.Stderr, "%s: %d transactions, support %.3g -> %d itemsets (maxK=%d) in %v [%v/%v x%d]%s\n",
		db.Name, db.NumTransactions(), *support, len(counts), res.MaxK, elapsed,
		opt.Algorithm, opt.Representation, opt.Workers, status)
	if res.Incomplete {
		fmt.Fprintf(os.Stderr, "fimmine: stopped early: %v; the %d itemsets above are complete levels with exact supports\n",
			res.StopCause, len(counts))
	}

	if *rules > 0 {
		for _, r := range fim.Rules(res, *rules) {
			fmt.Println(fim.DecodeRule(res, r))
		}
	}
	if events != nil && events.Err() != nil {
		fmt.Fprintf(os.Stderr, "fimmine: writing -events file: %v\n", events.Err())
	}
	if *reportPath != "" {
		if err := writeReportFile(*reportPath, builder); err != nil {
			fatal(err)
		}
	}
	if *tracePath != "" {
		if err := writeTraceFile(*tracePath, tracer); err != nil {
			fatal(err)
		}
		if n := tracer.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "fimmine: trace span cap hit, %d spans dropped\n", n)
		}
	}
	if res.Incomplete {
		os.Exit(1)
	}
}

// writeMemProfile records the post-run allocation profile (allocs,
// which includes live heap plus everything freed — the combine arena's
// figure of merit) at path.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // settle the heap so the live portion is accurate
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraceFile renders the recorded span timeline as Chrome
// trace-event JSON at path.
func writeTraceFile(path string, tr *fim.SpanRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export.WriteTrace(f, export.BuildTrace(tr)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeReportFile finalizes the builder's report and writes it to path.
func writeReportFile(path string, b *export.ReportBuilder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export.WriteReport(f, b.Report()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadDB(file, dsName string, scale float64) (*fim.DB, error) {
	switch {
	case file != "" && dsName != "":
		return nil, fmt.Errorf("fimmine: -file and -dataset are mutually exclusive")
	case file != "":
		return fim.ReadFIMIFile(file)
	case dsName != "":
		return fim.Dataset(dsName, scale)
	}
	return nil, fmt.Errorf("fimmine: one of -file or -dataset is required")
}

func parseAlgo(s string) (fim.Algorithm, error) {
	switch s {
	case "apriori":
		return fim.Apriori, nil
	case "eclat":
		return fim.Eclat, nil
	case "fpgrowth":
		return fim.FPGrowth, nil
	}
	return 0, fmt.Errorf("fimmine: unknown algorithm %q", s)
}

// loadCalibration installs per-host kernel knobs: the -calibration flag
// wins, else the FIM_CALIBRATION env var, else compiled-in defaults.
func loadCalibration(path string) error {
	if path != "" {
		return fim.LoadCalibration(path)
	}
	if env := os.Getenv(fim.CalibrationEnv); env != "" {
		return fim.LoadCalibration(env)
	}
	return nil
}

func decodeAll(res *fim.Result, cs []fim.ItemsetCount) []fim.ItemsetCount {
	out := make([]fim.ItemsetCount, len(cs))
	for i, c := range cs {
		out[i] = fim.ItemsetCount{Items: res.Rec.Decode(c.Items), Support: c.Support}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
