package fim

// Miner-level legs of the tiled×flat equivalence harness: ApplyLayout
// plumbing, then full mines over the real dataset comparing the tiled
// layout against the flat tidset representation across algorithms,
// worker counts, flattening depths, loop schedules and batch modes.
// The vertical-level legs (payload equality per combine) live in
// internal/vertical; here the property is end-to-end — byte-identical
// results — because everything above the representation is supposed to
// be layout-oblivious.

import (
	"testing"
)

func TestApplyLayout(t *testing.T) {
	cases := []struct {
		rep    Representation
		layout string
		want   Representation
		ok     bool
	}{
		{Tidset, "", Tidset, true},
		{Tidset, "tiled", Tiled, true},
		{Tiled, "tiled", Tiled, true},
		{Tiled, "flat", Tidset, true},
		{Diffset, "flat", Diffset, true},
		{Diffset, "", Diffset, true},
		{Diffset, "tiled", 0, false},
		{Bitvector, "tiled", 0, false},
		{Tidset, "mosaic", 0, false},
	}
	for _, c := range cases {
		got, err := ApplyLayout(c.rep, c.layout)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ApplyLayout(%v, %q) = %v, %v; want %v", c.rep, c.layout, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ApplyLayout(%v, %q) succeeded, want error", c.rep, c.layout)
		}
	}
}

// TestTiledMatchesFlatMining: every (algorithm, workers, depth,
// schedule, batch) cell mines the identical result under the tiled and
// flat layouts.
func TestTiledMatchesFlatMining(t *testing.T) {
	db := runctlDB(t)
	steal, err := ParseSchedulePolicy("steal")
	if err != nil {
		t.Fatal(err)
	}
	type cell struct {
		algo     Algorithm
		workers  int
		depth    int
		steal    bool
		batchOff bool
	}
	var cells []cell
	for _, w := range []int{1, 4} {
		for _, batchOff := range []bool{false, true} {
			cells = append(cells, cell{Apriori, w, 0, false, batchOff})
			for _, depth := range []int{0, 2} {
				cells = append(cells, cell{Eclat, w, depth, false, batchOff})
			}
			cells = append(cells, cell{Eclat, w, 0, true, batchOff})
		}
	}
	for _, c := range cells {
		opt := Options{
			Algorithm:    c.algo,
			Workers:      c.workers,
			EclatDepth:   c.depth,
			DisableBatch: c.batchOff,
		}
		if c.steal {
			opt.SchedulePolicy, opt.SetSchedule = steal, true
		}
		optFlat, optTiled := opt, opt
		optFlat.Representation = Tidset
		optTiled.Representation = Tiled
		flat, err := Mine(db, 0.5, optFlat)
		if err != nil {
			t.Fatalf("%+v flat: %v", c, err)
		}
		tiled, err := Mine(db, 0.5, optTiled)
		if err != nil {
			t.Fatalf("%+v tiled: %v", c, err)
		}
		if !tiled.Equal(flat) {
			t.Errorf("%+v: tiled layout mined a different result than flat", c)
		}
	}
}
