package fim

// Re-entrancy under concurrency: many MineContext calls in flight at
// once — mixed algorithms and representations, some cancelled, some
// budget-stopped, some sharing a memory pool — must not corrupt each
// other. Every completed run's itemsets must match its serial ground
// truth exactly, and every stopped run must return a classified,
// well-formed partial result. Run with -race.

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestMineContextConcurrentReentrant runs a mixed fleet of concurrent
// mining runs against per-run serial baselines.
func TestMineContextConcurrentReentrant(t *testing.T) {
	db, err := Dataset("chess", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	mush, err := Dataset("mushroom", 0.2)
	if err != nil {
		t.Fatal(err)
	}

	type job struct {
		name string
		db   *DB
		rel  float64
		opt  Options
		// mode: "complete" runs to the end; "cancel" is cancelled
		// mid-run; "budget" is stopped by a tiny itemsets budget.
		mode string
	}
	jobs := []job{
		{"eclat-tidset", db, 0.6, Options{Algorithm: Eclat, Representation: Tidset, Workers: 2}, "complete"},
		{"eclat-diffset", db, 0.62, Options{Algorithm: Eclat, Representation: Diffset, Workers: 3}, "complete"},
		{"eclat-hybrid", mush, 0.3, Options{Algorithm: Eclat, Representation: Hybrid, Workers: 2}, "complete"},
		{"apriori-bitvector", db, 0.64, Options{Algorithm: Apriori, Representation: Bitvector, Workers: 2}, "complete"},
		{"apriori-tidset", mush, 0.35, Options{Algorithm: Apriori, Representation: Tidset, Workers: 2}, "complete"},
		{"fpgrowth", db, 0.66, Options{Algorithm: FPGrowth, Workers: 2}, "complete"},
		{"eclat-cancelled", db, 0.55, Options{Algorithm: Eclat, Representation: Tidset, Workers: 2}, "cancel"},
		{"apriori-budget", db, 0.6, Options{Algorithm: Apriori, Representation: Tidset, Workers: 2, MaxItemsets: 50}, "budget"},
		{"eclat-budget", mush, 0.3, Options{Algorithm: Eclat, Representation: Diffset, Workers: 2, MaxItemsets: 80}, "budget"},
	}

	// Serial ground truth: full results for the completing runs, and
	// decoded support maps for checking budget-stopped partials.
	serial := make(map[string]*Result)
	truthKeys := make(map[string]map[string]int)
	for _, j := range jobs {
		if j.mode == "cancel" {
			continue
		}
		opt := Options{Algorithm: j.opt.Algorithm, Representation: j.opt.Representation}
		res, err := Mine(j.db, j.rel, opt)
		if err != nil {
			t.Fatalf("%s serial baseline: %v", j.name, err)
		}
		serial[j.name] = res
		byKey := make(map[string]int, res.Len())
		for _, c := range res.Decoded() {
			byKey[c.Items.Key()] = c.Support
		}
		truthKeys[j.name] = byKey
	}

	// A shared pool spanning some of the fleet, generous enough never to
	// stop anyone — concurrent charge/refund traffic is what it adds.
	pool := NewSharedPool(2 << 30)

	const rounds = 3
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for i, j := range jobs {
			wg.Add(1)
			go func(j job, shared bool) {
				defer wg.Done()
				opt := j.opt
				if shared {
					opt.SharedPool = pool
				}
				ctx := context.Background()
				var cancel context.CancelFunc
				switch j.mode {
				case "cancel":
					ctx, cancel = context.WithTimeout(ctx, 3*time.Millisecond)
					defer cancel()
				}
				res, err := MineContext(ctx, j.db, j.rel, opt)
				switch j.mode {
				case "complete":
					if err != nil {
						t.Errorf("%s: %v", j.name, err)
						return
					}
					if !res.Equal(serial[j.name]) {
						t.Errorf("%s: concurrent run diverged from serial baseline (%d vs %d itemsets)",
							j.name, res.Len(), serial[j.name].Len())
					}
				case "cancel":
					// The run either finished before the deadline (tiny
					// machines) or stopped with a classified reason and a
					// well-formed partial result.
					if err != nil {
						if got := StopReason(err); got != "deadline" && got != "canceled" {
							t.Errorf("%s: stop reason %q, err %v", j.name, got, err)
						}
						if res == nil || !res.Incomplete {
							t.Errorf("%s: cancelled run without well-formed partial result", j.name)
						}
					}
				case "budget":
					if got := StopReason(err); got != "budget:itemsets" {
						t.Errorf("%s: stop reason %q, want budget:itemsets (err %v)", j.name, got, err)
						return
					}
					if res == nil || !res.Incomplete {
						t.Errorf("%s: budget-stopped run without partial result", j.name)
						return
					}
					// Partial results carry exact supports: every reported
					// itemset must agree with the serial world.
					byKey := truthKeys[j.name]
					for _, c := range res.Decoded() {
						if s, ok := byKey[c.Items.Key()]; !ok || s != c.Support {
							t.Errorf("%s: partial itemset %v support %d disagrees with truth %d",
								j.name, c.Items, c.Support, s)
							break
						}
					}
				}
			}(j, i%2 == 0)
		}
	}
	wg.Wait()

	// Every pooled run refunded its bytes on the way out.
	if used := pool.Used(); used != 0 {
		t.Fatalf("shared pool holds %d bytes after all runs closed", used)
	}
}
