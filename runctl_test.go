package fim

// Acceptance tests for the run-control layer: cooperative cancellation,
// resource budgets with degradation, and panic containment, driven
// end-to-end through MineContext on all three miners.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// runctlDB builds the dense chess workload the run-control tests share:
// big enough for several Apriori generations and many scheduler chunks,
// small enough to mine in milliseconds.
func runctlDB(t *testing.T) *DB {
	t.Helper()
	db, err := Dataset("chess", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// assertExactSupports recounts every reported itemset against the raw
// database: a stopped or degraded run may be missing itemsets, but
// everything it does report must carry its true support.
func assertExactSupports(t *testing.T, db *DB, res *Result) {
	t.Helper()
	counts := res.Decoded()
	if len(counts) > 300 {
		counts = counts[:300] // recounting is quadratic; a sample suffices
	}
	for _, c := range counts {
		got := 0
		for _, tr := range db.Transactions {
			if c.Items.IsSubsetOf(tr) {
				got++
			}
		}
		if got != c.Support {
			t.Fatalf("itemset %v: reported support %d, true support %d", c.Items, c.Support, got)
		}
	}
}

// TestMineContextCancelPromptly cancels the context at the third
// scheduler chunk and asserts the run unwinds within the workers'
// in-flight chunks, returning context.Canceled and a well-formed partial
// Result.
func TestMineContextCancelPromptly(t *testing.T) {
	defer sched.SetFaultHook(nil)
	db := runctlDB(t)
	for _, algo := range []Algorithm{Apriori, Eclat, FPGrowth} {
		ctx, cancel := context.WithCancel(context.Background())
		var after atomic.Int64
		sched.SetFaultHook(func(fc sched.FaultContext) {
			if fc.Control.Stopped() {
				after.Add(1)
				return
			}
			if fc.Seq == 3 {
				cancel()
				// The context watcher raises the stop flag from its own
				// goroutine; wait for it so the count below is exact.
				for !fc.Control.Stopped() {
					time.Sleep(10 * time.Microsecond)
				}
			}
		})

		opt := Options{Algorithm: algo, Representation: Tidset, Workers: 2}
		res, err := MineContext(ctx, db, 0.5, opt)
		cancel()
		sched.SetFaultHook(nil)

		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", algo, err)
		}
		if res == nil {
			t.Fatalf("%v: nil partial result", algo)
		}
		if !res.Incomplete {
			t.Errorf("%v: Incomplete not set on cancelled run", algo)
		}
		if !errors.Is(res.StopCause, context.Canceled) {
			t.Errorf("%v: StopCause = %v", algo, res.StopCause)
		}
		// "Promptly": once the stop flag is up, each worker may already
		// have one chunk in flight, but no more than that.
		if a := after.Load(); a > int64(opt.Workers) {
			t.Errorf("%v: %d chunks started after cancellation", algo, a)
		}
		assertExactSupports(t, db, res)
	}
}

// TestWorkerPanicContained injects a panic at a scheduler chunk boundary
// in each of the three miners and asserts the process survives: the team
// drains, and MineContext returns a *WorkerPanicError plus the partial
// result.
func TestWorkerPanicContained(t *testing.T) {
	defer sched.SetFaultHook(nil)
	db := runctlDB(t)
	for _, algo := range []Algorithm{Apriori, Eclat, FPGrowth} {
		sched.SetFaultHook(func(fc sched.FaultContext) {
			if fc.Seq == 2 {
				panic("injected worker fault")
			}
		})
		res, err := MineContext(context.Background(), db, 0.5,
			Options{Algorithm: algo, Representation: Tidset, Workers: 4})
		sched.SetFaultHook(nil)

		var perr *WorkerPanicError
		if !errors.As(err, &perr) {
			t.Fatalf("%v: err = %v, want *WorkerPanicError", algo, err)
		}
		if perr.Value != "injected worker fault" {
			t.Errorf("%v: panic value = %v", algo, perr.Value)
		}
		if len(perr.Stack) == 0 {
			t.Errorf("%v: no stack captured", algo)
		}
		if res == nil || !res.Incomplete {
			t.Fatalf("%v: partial result missing or not marked Incomplete", algo)
		}
		assertExactSupports(t, db, res)
	}
}

// TestDegradeToDiffsetCompletes is the headline budget scenario: an
// Apriori tidset run on dense data whose level payloads blow past the
// memory budget must switch to diffsets mid-run and still produce the
// complete, exact answer.
func TestDegradeToDiffsetCompletes(t *testing.T) {
	db := runctlDB(t)
	ref, err := Mine(db, 0.5, Options{Algorithm: Apriori, Representation: Diffset})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		res, err := MineContext(context.Background(), db, 0.5, Options{
			Algorithm:        Apriori,
			Representation:   Tidset,
			Workers:          workers,
			MaxMemoryBytes:   100 << 10, // well under the tidset level footprint
			DegradeToDiffset: true,
		})
		if err != nil {
			t.Fatalf("x%d: err = %v", workers, err)
		}
		if !res.Degraded {
			t.Fatalf("x%d: run fit in 100KB without degrading; budget no longer binds", workers)
		}
		if res.Incomplete {
			t.Fatalf("x%d: degraded run did not complete: %v", workers, res.StopCause)
		}
		if !res.Equal(ref) {
			t.Errorf("x%d: degraded run disagrees with diffset reference", workers)
		}
	}
}

// TestDegradeBitvector: on this small dense database diffsets are
// *larger* than the 80-byte bitvectors, so a tight budget must still
// trigger the switch, and the run either completes or stops with a
// typed *BudgetError — with exact supports for everything emitted
// either way.
func TestDegradeBitvector(t *testing.T) {
	db := runctlDB(t)
	res, err := MineContext(context.Background(), db, 0.5, Options{
		Algorithm:        Apriori,
		Representation:   Bitvector,
		Workers:          2,
		MaxMemoryBytes:   10 << 10,
		DegradeToDiffset: true,
	})
	if res == nil || !res.Degraded {
		t.Fatalf("run fit in 10KB without degrading (err=%v); budget no longer binds", err)
	}
	if err != nil {
		var berr *BudgetError
		if !errors.As(err, &berr) || berr.Resource != "memory" {
			t.Fatalf("err = %v, want nil or memory *BudgetError", err)
		}
		if !res.Incomplete {
			t.Error("budget-stopped run not marked Incomplete")
		}
	}
	assertExactSupports(t, db, res)
}

// TestDegradeToDiffsetEclat: the same mid-run switch through Eclat's
// class-by-class miner.
func TestDegradeToDiffsetEclat(t *testing.T) {
	db := runctlDB(t)
	ref, err := Mine(db, 0.5, Options{Algorithm: Eclat, Representation: Diffset})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineContext(context.Background(), db, 0.5, Options{
		Algorithm:        Eclat,
		Representation:   Tidset,
		Workers:          2,
		MaxMemoryBytes:   100 << 10,
		DegradeToDiffset: true,
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if !res.Degraded {
		t.Fatal("run fit in 100KB without degrading; budget no longer binds")
	}
	if !res.Equal(ref) {
		t.Error("degraded eclat run disagrees with diffset reference")
	}
}

// TestMemoryBudgetStops: the same breach without DegradeToDiffset fails
// with a typed *BudgetError and a partial result whose supports are
// exact.
func TestMemoryBudgetStops(t *testing.T) {
	db := runctlDB(t)
	res, err := MineContext(context.Background(), db, 0.5, Options{
		Algorithm:      Apriori,
		Representation: Tidset,
		Workers:        2,
		MaxMemoryBytes: 100 << 10,
	})
	var berr *BudgetError
	if !errors.As(err, &berr) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if berr.Resource != "memory" {
		t.Errorf("Resource = %q, want memory", berr.Resource)
	}
	if berr.Used <= berr.Limit {
		t.Errorf("BudgetError reports used %d within limit %d", berr.Used, berr.Limit)
	}
	if res == nil || !res.Incomplete || res.Len() == 0 {
		t.Fatal("partial result missing, empty, or not marked Incomplete")
	}
	assertExactSupports(t, db, res)
}

// TestMaxItemsetsStops across all three miners.
func TestMaxItemsetsStops(t *testing.T) {
	db := runctlDB(t)
	for _, algo := range []Algorithm{Apriori, Eclat, FPGrowth} {
		res, err := MineContext(context.Background(), db, 0.5, Options{
			Algorithm:      algo,
			Representation: Diffset,
			MaxItemsets:    20,
		})
		var berr *BudgetError
		if !errors.As(err, &berr) || berr.Resource != "itemsets" {
			t.Fatalf("%v: err = %v, want itemsets *BudgetError", algo, err)
		}
		if res == nil || !res.Incomplete {
			t.Fatalf("%v: partial result missing or not marked Incomplete", algo)
		}
		assertExactSupports(t, db, res)
	}
}

// TestMaxDurationStops uses an injected per-chunk delay so the deadline
// reliably lands mid-run regardless of host speed.
func TestMaxDurationStops(t *testing.T) {
	defer sched.SetFaultHook(nil)
	sched.SetFaultHook(func(sched.FaultContext) { time.Sleep(5 * time.Millisecond) })
	db := runctlDB(t)
	res, err := MineContext(context.Background(), db, 0.5, Options{
		Algorithm:      Apriori,
		Representation: Tidset,
		Workers:        2,
		MaxDuration:    15 * time.Millisecond,
	})
	sched.SetFaultHook(nil)
	var berr *BudgetError
	if !errors.As(err, &berr) || berr.Resource != "duration" {
		t.Fatalf("err = %v, want duration *BudgetError", err)
	}
	if res == nil || !res.Incomplete {
		t.Fatal("partial result missing or not marked Incomplete")
	}
	assertExactSupports(t, db, res)
}

// TestMineContextDeadline: a context deadline behaves like cancellation,
// surfacing context.DeadlineExceeded.
func TestMineContextDeadline(t *testing.T) {
	defer sched.SetFaultHook(nil)
	sched.SetFaultHook(func(sched.FaultContext) { time.Sleep(5 * time.Millisecond) })
	db := runctlDB(t)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	res, err := MineContext(ctx, db, 0.5, Options{
		Algorithm:      Eclat,
		Representation: Tidset,
		Workers:        2,
	})
	sched.SetFaultHook(nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || !res.Incomplete {
		t.Fatal("partial result missing or not marked Incomplete")
	}
	assertExactSupports(t, db, res)
}

// TestMineContextCompleteRunUnaffected: a run that fits its budgets is
// byte-for-byte the same as an uncontrolled one.
func TestMineContextCompleteRunUnaffected(t *testing.T) {
	db := runctlDB(t)
	ref, err := Mine(db, 0.5, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(2)
	opt.MaxMemoryBytes = 1 << 30
	opt.MaxItemsets = 1 << 30
	opt.MaxDuration = time.Hour
	res, err := MineContext(context.Background(), db, 0.5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete || res.Degraded {
		t.Fatal("in-budget run marked Incomplete or Degraded")
	}
	if !res.Equal(ref) {
		t.Error("budgeted run disagrees with unbudgeted reference")
	}
}
