package eclat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/perf"
	"repro/internal/sched"
	"repro/internal/verify"
	"repro/internal/vertical"
)

const classic = `1 2 5
2 4
2 3
1 2 4
1 3
2 3
1 3
1 2 3 5
1 2 3
`

func classicRecoded(t *testing.T, minSup int) *dataset.Recoded {
	t.Helper()
	db, err := dataset.ReadFIMI("classic", strings.NewReader(classic))
	if err != nil {
		t.Fatal(err)
	}
	return db.Recode(minSup)
}

func TestMineClassicExample(t *testing.T) {
	rec := classicRecoded(t, 2)
	res := mine(rec, 2, core.DefaultOptions(vertical.Tidset, 1))
	ref := verify.Reference(rec, 2)
	if !res.Equal(ref) {
		t.Fatalf("eclat disagrees with reference:\n%s", verify.Diff(res, ref))
	}
	if res.MaxK != 3 || res.Len() != 13 {
		t.Errorf("MaxK=%d Len=%d, want 3, 13", res.MaxK, res.Len())
	}
}

func TestMineAllRepresentationsAgree(t *testing.T) {
	rec := classicRecoded(t, 2)
	ref := verify.Reference(rec, 2)
	for _, kind := range vertical.AllKinds() {
		res := mine(rec, 2, core.DefaultOptions(kind, 1))
		if !res.Equal(ref) {
			t.Errorf("%v disagrees with reference:\n%s", kind, verify.Diff(res, ref))
		}
	}
}

func TestMineParallelMatchesSerial(t *testing.T) {
	rec := classicRecoded(t, 2)
	serial := mine(rec, 2, core.DefaultOptions(vertical.Diffset, 1))
	for _, workers := range []int{2, 3, 8, 64} {
		for _, schedule := range []sched.Schedule{
			{Policy: sched.Dynamic, Chunk: 1}, {Policy: sched.Static}, {Policy: sched.Guided},
		} {
			for _, kind := range vertical.Kinds() {
				opt := core.DefaultOptions(kind, workers)
				opt.Schedule, opt.HasSchedule = schedule, true
				res := mine(rec, 2, opt)
				if !res.Equal(serial) {
					t.Errorf("workers=%d %v %v disagrees with serial:\n%s",
						workers, schedule, kind, verify.Diff(res, serial))
				}
			}
		}
	}
}

func TestMineEdgeCases(t *testing.T) {
	// No frequent items.
	db, _ := dataset.ReadFIMI("t", strings.NewReader("1 2\n3 4\n"))
	rec := db.Recode(2)
	res := mine(rec, 2, core.DefaultOptions(vertical.Tidset, 2))
	if res.Len() != 0 {
		t.Errorf("found %d itemsets", res.Len())
	}
	// Single frequent item: just the 1-itemset.
	db2, _ := dataset.ReadFIMI("t", strings.NewReader("1\n1\n1 2\n"))
	rec2 := db2.Recode(2)
	res2 := mine(rec2, 2, core.DefaultOptions(vertical.Diffset, 4))
	if res2.Len() != 1 || res2.MaxK != 1 {
		t.Errorf("Len=%d MaxK=%d, want 1, 1", res2.Len(), res2.MaxK)
	}
	// Everything identical: full lattice.
	db3, _ := dataset.ReadFIMI("t", strings.NewReader("1 2 3 4\n1 2 3 4\n"))
	rec3 := db3.Recode(2)
	res3 := mine(rec3, 2, core.DefaultOptions(vertical.Bitvector, 3))
	if res3.Len() != 15 { // 2^4 - 1
		t.Errorf("full lattice: %d itemsets, want 15", res3.Len())
	}
	// Empty database.
	rec4 := (&dataset.DB{}).Recode(1)
	if got := mine(rec4, 1, core.DefaultOptions(vertical.Tidset, 2)); got.Len() != 0 {
		t.Errorf("empty DB produced %d itemsets", got.Len())
	}
}

func TestEclatMatchesApriorisBehaviourDeepLattice(t *testing.T) {
	// A database with a deep frequent lattice (7 items always together)
	// exercises the recursion well beyond level 2.
	var sb strings.Builder
	for i := 0; i < 5; i++ {
		sb.WriteString("1 2 3 4 5 6 7\n")
	}
	sb.WriteString("1 2\n")
	db, _ := dataset.ReadFIMI("deep", strings.NewReader(sb.String()))
	rec := db.Recode(5)
	res := mine(rec, 5, core.DefaultOptions(vertical.Diffset, 3))
	if res.Len() != 127 { // 2^7 - 1 subsets
		t.Errorf("deep lattice: %d itemsets, want 127", res.Len())
	}
	for _, c := range res.Counts {
		if len(c.Items) == 7 && c.Support != 5 {
			t.Errorf("7-itemset support = %d, want 5", c.Support)
		}
	}
}

func TestCollectorPhaseDepth1(t *testing.T) {
	rec := classicRecoded(t, 2)
	col := &perf.Collector{}
	opt := core.DefaultOptions(vertical.Tidset, 2)
	opt.Collector = col
	opt.EclatDepth = 1
	mine(rec, 2, opt)
	if len(col.Phases) != 1 {
		t.Fatalf("recorded %d phases, want 1", len(col.Phases))
	}
	p := col.Phases[0]
	if p.Name != "eclat/classes" || p.Schedule.Policy != sched.Dynamic {
		t.Errorf("phase = %q %v", p.Name, p.Schedule)
	}
	if p.Tasks() != len(rec.Items) {
		t.Errorf("tasks = %d, want %d", p.Tasks(), len(rec.Items))
	}
	if p.TotalWork() == 0 {
		t.Error("no work recorded")
	}
	// Eclat's remote traffic is only the first-level reads, so it must
	// be well below total work on this deep dataset.
	if p.TotalRemote() >= p.TotalWork() {
		t.Error("eclat remote not below total work")
	}
	// The last class (highest item) joins nothing: its work is zero.
	if p.Work[p.Tasks()-1] != 0 {
		t.Errorf("last class recorded work %d", p.Work[p.Tasks()-1])
	}
	if p.UniqueParent == 0 {
		t.Error("UniqueParent not recorded")
	}
}

func TestCollectorPhasesDepth2(t *testing.T) {
	rec := classicRecoded(t, 2)
	col := &perf.Collector{}
	opt := core.DefaultOptions(vertical.Tidset, 2)
	opt.Collector = col
	opt.EclatDepth = 2
	mine(rec, 2, opt)
	if len(col.Phases) != 2 {
		t.Fatalf("recorded %d phases, want 2", len(col.Phases))
	}
	pairs, subs := col.Phases[0], col.Phases[1]
	if pairs.Name != "eclat/pairs" || subs.Name != "eclat/subtrees" {
		t.Fatalf("phases = %q, %q", pairs.Name, subs.Name)
	}
	n := len(rec.Items)
	if pairs.Tasks() != n*(n-1)/2 {
		t.Errorf("pair tasks = %d, want %d", pairs.Tasks(), n*(n-1)/2)
	}
	if pairs.TotalWork() == 0 {
		t.Error("no pair work recorded")
	}
	if pairs.UniqueParent == 0 || subs.UniqueParent == 0 {
		t.Error("UniqueParent not recorded")
	}
}

func TestCollectorPhasesDefaultDepth(t *testing.T) {
	rec := classicRecoded(t, 2)
	col := &perf.Collector{}
	opt := core.DefaultOptions(vertical.Tidset, 2)
	opt.Collector = col
	mine(rec, 2, opt)
	// Default depth 4: pairs, expand3, expand4, subtrees.
	if len(col.Phases) != 4 {
		t.Fatalf("recorded %d phases, want 4", len(col.Phases))
	}
	want := []string{"eclat/pairs", "eclat/expand3", "eclat/expand4", "eclat/subtrees"}
	for i, name := range want {
		if col.Phases[i].Name != name {
			t.Errorf("phase %d = %q, want %q", i, col.Phases[i].Name, name)
		}
	}
}

func TestAllDepthsAgree(t *testing.T) {
	rec := classicRecoded(t, 2)
	for _, kind := range vertical.Kinds() {
		var results []*core.Result
		for _, depth := range []int{1, 2, 3, 4, 8} {
			opt := core.DefaultOptions(kind, 3)
			opt.EclatDepth = depth
			results = append(results, mine(rec, 2, opt))
		}
		for i := 1; i < len(results); i++ {
			if !results[0].Equal(results[i]) {
				t.Errorf("%v: depth variants disagree:\n%s", kind, verify.Diff(results[0], results[i]))
			}
		}
	}
}

// Property: Eclat agrees with the reference on random databases for all
// representations and worker counts.
func TestQuickAgainstReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &dataset.DB{Name: "rand"}
		nTrans := 5 + r.Intn(40)
		nItems := 3 + r.Intn(7)
		for i := 0; i < nTrans; i++ {
			var items []itemset.Item
			for it := 0; it < nItems; it++ {
				if r.Intn(3) > 0 {
					items = append(items, itemset.Item(it))
				}
			}
			if len(items) == 0 {
				items = append(items, 0)
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		minSup := 1 + r.Intn(nTrans/2+1)
		rec := db.Recode(minSup)
		ref := verify.Reference(rec, minSup)
		kind := vertical.Kinds()[r.Intn(3)]
		workers := []int{1, 4}[r.Intn(2)]
		opt := core.DefaultOptions(kind, workers)
		opt.EclatDepth = 1 + r.Intn(4)
		res := mine(rec, minSup, opt)
		return res.Equal(ref)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("eclat vs reference: %v", err)
	}
}

// mine wraps Mine for the test call sites that expect an error-free
// run: no budget or cancellation is in play, so an error is a failure.
func mine(rec *dataset.Recoded, minSup int, opt core.Options) *core.Result {
	res, err := Mine(rec, minSup, opt)
	if err != nil {
		panic(err)
	}
	return res
}
