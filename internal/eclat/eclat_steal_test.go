// Steal-mode Eclat: result parity with the chunked schedules, subtree
// spawn accounting, and the metrics invariant tasks = roots + spawned.

package eclat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/sched"
	"repro/internal/verify"
	"repro/internal/vertical"
)

func stealOptions(kind vertical.Kind, workers int) core.Options {
	opt := core.DefaultOptions(kind, workers)
	opt.Schedule, opt.HasSchedule = sched.Schedule{Policy: sched.Steal}, true
	return opt
}

func TestStealMatchesSerial(t *testing.T) {
	rec := classicRecoded(t, 2)
	serial := mine(rec, 2, core.DefaultOptions(vertical.Diffset, 1))
	for _, workers := range []int{1, 2, 3, 8} {
		for _, depth := range []int{1, 2, 4} {
			for _, kind := range vertical.Kinds() {
				opt := stealOptions(kind, workers)
				opt.EclatDepth = depth
				res := mine(rec, 2, opt)
				if !res.Equal(serial) {
					t.Errorf("steal workers=%d depth=%d %v disagrees with serial:\n%s",
						workers, depth, kind, verify.Diff(res, serial))
				}
			}
		}
	}
}

// deepDB is a database with a deep frequent lattice: nine items always
// together, so every first-level class roots a fat subtree.
func deepRecoded(t *testing.T, minSup int) *dataset.Recoded {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < minSup; i++ {
		sb.WriteString("1 2 3 4 5 6 7 8 9\n")
	}
	db, err := dataset.ReadFIMI("deep", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return db.Recode(minSup)
}

// TestStealSpawnsAndAgrees forces the spawn threshold to fire on every
// eligible subclass and checks that (a) the mined itemsets still match
// the serial run exactly and (b) the recorded loop satisfies
// TotalTasks == N + TotalSpawned with at least one spawn.
func TestStealSpawnsAndAgrees(t *testing.T) {
	old := stealSpawnWork
	stealSpawnWork = 1
	defer func() { stealSpawnWork = old }()

	rec := deepRecoded(t, 5)
	serial := mine(rec, 5, core.DefaultOptions(vertical.Tidset, 1))
	if serial.Len() != 511 { // 2^9 - 1
		t.Fatalf("deep lattice: %d itemsets, want 511", serial.Len())
	}
	for _, depth := range []int{1, 4} {
		met := sched.NewMetrics()
		opt := stealOptions(vertical.Tidset, 4)
		opt.EclatDepth = depth
		opt.Metrics = met
		res := mine(rec, 5, opt)
		if !res.Equal(serial) {
			t.Errorf("depth=%d: steal run disagrees with serial:\n%s",
				depth, verify.Diff(res, serial))
		}
		// The recursion stage is the last recorded loop at either depth.
		last := met.Last()
		if last == nil {
			t.Fatalf("depth=%d: no loop recorded", depth)
		}
		if last.Schedule.Policy != sched.Steal {
			t.Fatalf("depth=%d: last loop schedule = %v", depth, last.Schedule)
		}
		if last.TotalSpawned() == 0 {
			t.Errorf("depth=%d: no subtrees spawned on a deep lattice with threshold 1", depth)
		}
		if got, want := last.TotalTasks(), int64(last.N)+last.TotalSpawned(); got != want {
			t.Errorf("depth=%d: TotalTasks = %d, want N + TotalSpawned = %d", depth, got, want)
		}
	}
}

// Property: steal mode agrees with the reference on random databases
// for all representations and depths, with spawning forced on.
func TestStealQuickAgainstReference(t *testing.T) {
	old := stealSpawnWork
	stealSpawnWork = 1
	defer func() { stealSpawnWork = old }()

	cfg := &quick.Config{MaxCount: 20}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &dataset.DB{Name: "rand"}
		nTrans := 5 + r.Intn(40)
		nItems := 3 + r.Intn(7)
		for i := 0; i < nTrans; i++ {
			var items []itemset.Item
			for it := 0; it < nItems; it++ {
				if r.Intn(3) > 0 {
					items = append(items, itemset.Item(it))
				}
			}
			if len(items) == 0 {
				items = append(items, 0)
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		minSup := 1 + r.Intn(nTrans/2+1)
		rec := db.Recode(minSup)
		ref := verify.Reference(rec, minSup)
		opt := stealOptions(vertical.Kinds()[r.Intn(3)], 1+r.Intn(4))
		opt.EclatDepth = 1 + r.Intn(4)
		res := mine(rec, minSup, opt)
		return res.Equal(ref)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("steal eclat vs reference: %v", err)
	}
}
