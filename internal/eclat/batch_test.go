// Batch on/off equivalence: the prefix-blocked combine path must emit
// exactly the same itemsets with the same supports as the pairwise
// loop, for every representation, decomposition depth, and schedule.
package eclat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/sched"
	"repro/internal/verify"
	"repro/internal/vertical"
)

func TestBatchMatchesPairwise(t *testing.T) {
	rec := classicRecoded(t, 2)
	for _, kind := range vertical.AllKinds() {
		for _, depth := range []int{1, 2, 3, 0} {
			for _, workers := range []int{1, 4} {
				on := core.DefaultOptions(kind, workers)
				on.EclatDepth = depth
				off := on
				off.Batch = false
				a, b := mine(rec, 2, on), mine(rec, 2, off)
				if !a.Equal(b) {
					t.Errorf("%v depth=%d workers=%d: batch != pairwise:\n%s",
						kind, depth, workers, verify.Diff(a, b))
				}
			}
		}
	}
}

func TestBatchMatchesPairwiseSteal(t *testing.T) {
	// Force aggressive subtree spawning so batched combines run on
	// stolen subtrees (thief-owned arenas) too.
	old := stealSpawnWork
	stealSpawnWork = 1
	defer func() { stealSpawnWork = old }()
	rec := classicRecoded(t, 2)
	for _, kind := range vertical.Kinds() {
		on := core.DefaultOptions(kind, 4)
		on.Schedule, on.HasSchedule = sched.Schedule{Policy: sched.Steal}, true
		off := on
		off.Batch = false
		a, b := mine(rec, 2, on), mine(rec, 2, off)
		if !a.Equal(b) {
			t.Errorf("%v steal: batch != pairwise:\n%s", kind, verify.Diff(a, b))
		}
	}
}

func TestQuickBatchMatchesPairwise(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &dataset.DB{Name: "rand"}
		nTrans := 5 + r.Intn(40)
		nItems := 3 + r.Intn(7)
		for i := 0; i < nTrans; i++ {
			var items []itemset.Item
			for it := 0; it < nItems; it++ {
				if r.Intn(3) > 0 {
					items = append(items, itemset.Item(it))
				}
			}
			if len(items) == 0 {
				items = append(items, 0)
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		minSup := 1 + r.Intn(nTrans/2+1)
		rec := db.Recode(minSup)
		on := core.DefaultOptions(vertical.AllKinds()[r.Intn(4)], []int{1, 4}[r.Intn(2)])
		on.EclatDepth = 1 + r.Intn(4)
		off := on
		off.Batch = false
		return mine(rec, minSup, on).Equal(mine(rec, minSup, off))
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("batch vs pairwise: %v", err)
	}
}
