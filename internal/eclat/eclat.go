// Package eclat implements Algorithm 2 of the paper: depth-first
// equivalence-class frequent itemset mining over any of the three
// vertical representations, parallelized with dynamic scheduling and the
// smallest possible chunk (§IV: "we choose the chunksize to as small as
// possible. The scheduler is set to dynamic so that the load imbalance
// can be minimized").
//
// The parallel decomposition is selected by core.Options.EclatDepth:
//
//   - Depth 1 parallelizes the literal outer loop of Algorithm 2: one
//     task per first-level equivalence class (one frequent item and
//     everything joinable to its right). This is the paper's text
//     reading; its parallelism is capped by the frequent-item count,
//     a limit the paper itself notes ("poses a limit on the possible
//     number of threads").
//   - Depth k ≥ 2 flattens the first k−1 levels breadth-first (each
//     expansion stays class-local and runs as its own task), then runs
//     one depth-first recursion task per frequent k-itemset subtree.
//     Each extra level multiplies the task count and divides the
//     largest task. The default is DefaultDepth (4), the shallowest
//     flattening whose task counts and balance support the speedups the
//     paper reports on datasets with fewer frequent items than threads.
//
// In both forms, a worker that claims a subtree materializes every
// intermediate payload itself, so after the initial reads of shared data
// there is no cross-worker memory traffic — the data-independence
// property the paper credits for Eclat's scalability.
//
// Two optimizations beyond the paper close the remaining gaps:
//
//   - Work stealing (schedule "steal", sched.Steal): the recursion
//     spawns a stealable task for any subclass whose estimated work
//     clears stealSpawnWork, so an idle worker can take the far half of
//     a fat subtree instead of watching one worker grind it. Root
//     hand-out stays dynamic, results are identical, and stolen
//     subtrees appear marked in the span trace.
//   - Zero-allocation combine: every recursion-scoped payload comes
//     from a per-worker vertical.Arena and returns to it when its
//     subtree is mined, so the depth-first hot loop stops paying the Go
//     allocator per candidate (hit/miss rates are visible as the
//     arena_hits/arena_misses kernel counters).
package eclat

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/runctl"
	"repro/internal/sched"
	"repro/internal/vertical"
)

// DefaultSchedule is the paper's choice for Eclat's parallel loops:
// dynamic scheduling with chunk size 1.
var DefaultSchedule = sched.Schedule{Policy: sched.Dynamic, Chunk: 1}

// DefaultDepth is the flattening depth used when Options.EclatDepth is 0:
// the search is expanded breadth-first (class-local, in parallel) down to
// itemset size 4 before switching to per-subtree depth-first recursion.
// Deeper flattening trades a little shared traffic for far smaller
// maximum task size — the load-balance knob the A4 ablation sweeps.
const DefaultDepth = 4

// atom is one member of an equivalence class: the last item of the
// itemset plus its vertical payload relative to the class prefix.
type atom struct {
	item itemset.Item
	node vertical.Node
}

// Mine runs Eclat over the recoded database with the given absolute
// minimum support.
//
// When opt.Control is set, the run is cancellable and budgeted: every
// parallel stage drains at chunk boundaries, the recursion checks the
// stop flag at each class descent, and live payloads are charged
// against the memory budget per materialized level (flattening stages)
// and per class (recursion). On a breach, a tidset/bitvector run with
// DegradeToDiffset set rewrites the newest flattened level as diffsets
// relative to each atom's parent and continues; otherwise the run stops
// with a *runctl.BudgetError. A stopped run returns the partial Result
// (Incomplete set, all emitted supports exact) with the stop cause.
func Mine(rec *dataset.Recoded, minSup int, opt core.Options) (*core.Result, error) {
	if minSup < 1 {
		minSup = 1
	}
	rep := vertical.New(opt.Representation)
	schedule := DefaultSchedule
	if opt.HasSchedule {
		schedule = opt.Schedule
	}
	team := sched.NewTeam(opt.Workers)
	col := opt.Collector
	rc := opt.Control
	o := opt.Observer
	met := opt.Metrics
	team.SetMetrics(met)

	res := &core.Result{
		Algorithm:      core.Eclat,
		Representation: opt.Representation,
		MinSup:         minSup,
		Rec:            rec,
	}

	roots := rep.Roots(rec)
	n := len(roots)
	// Level-1 itemsets are frequent by construction of the recode pass.
	for i := 0; i < n; i++ {
		res.Counts = append(res.Counts, core.ItemsetCount{
			Items:   itemset.New(itemset.Item(i)),
			Support: roots[i].Support(),
		})
	}
	if n > 0 {
		res.MaxK = 1
	}
	finish := func(err error) (*core.Result, error) {
		if err != nil {
			res.Incomplete = true
			res.StopCause = err
		}
		return res, err
	}
	if n < 2 {
		return finish(rc.AddItemsets(n))
	}

	rc.ChargeMem(vertical.NodesBytes(roots))
	if err := rc.AddItemsets(n); err != nil {
		return finish(err)
	}
	if rc.OverMemory() && rc.Budget().DegradeToDiffset && vertical.Degradable(rep.Kind()) {
		before := vertical.NodesBytes(roots)
		for i, r := range roots {
			roots[i] = vertical.DegradeRoot(r, rec.Universe)
		}
		rc.ChargeMem(vertical.NodesBytes(roots) - before)
		rep = vertical.New(vertical.Diffset)
		res.Degraded = true
		obs.Emit(o, obs.Event{Type: obs.Degraded, Level: 1,
			Representation: vertical.Diffset.String(), LiveBytes: rc.MemUsed()})
	}
	if err := rc.Err(); err != nil {
		return finish(err)
	}

	var rootBytes int64
	for _, r := range roots {
		rootBytes += int64(r.Bytes())
	}

	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	private := make([][]core.ItemsetCount, workers)
	arenas := make([]*vertical.Arena, workers)
	for i := range arenas {
		arenas[i] = vertical.NewArena()
	}

	depth := opt.EclatDepth
	if depth == 0 {
		depth = DefaultDepth
	}
	var err error
	if depth == 1 {
		err = mineDepth1(rep, roots, rootBytes, minSup, opt.Batch, team, schedule, col, rc, o, met, private, arenas)
	} else {
		m := &flattenedMiner{rep: rep, minSup: minSup, depth: depth, batch: opt.Batch,
			team: team, schedule: schedule, col: col, rc: rc, o: o, met: met, res: res,
			private: private, arenas: arenas}
		err = m.run(roots, rootBytes)
	}
	// Tallies from the flattening stages (whose tasks do not run through
	// finishMiner) land in kcount here.
	for _, a := range arenas {
		a.Flush()
	}

	for _, p := range private {
		for _, c := range p {
			res.Counts = append(res.Counts, c)
			if len(c.Items) > res.MaxK {
				res.MaxK = len(c.Items)
			}
		}
	}
	return finish(err)
}

// mineDepth1 runs the paper-literal decomposition: one task per
// first-level class.
func mineDepth1(rep vertical.Representation, roots []vertical.Node, rootBytes int64,
	minSup int, batch bool, team *sched.Team, schedule sched.Schedule, col *perf.Collector,
	rc *runctl.Control, o obs.Observer, met *sched.Metrics,
	private [][]core.ItemsetCount, arenas []*vertical.Arena) error {

	n := len(roots)
	start := time.Now()
	obs.Emit(o, obs.Event{Type: obs.LevelStart, Phase: "eclat/classes", Candidates: n})
	met.Label("eclat/classes")
	phase := col.NewPhase("eclat/classes", schedule, true, n)
	if phase != nil {
		phase.UniqueParent = rootBytes
	}
	// Shared read-only atom view of the roots, so the batched path can
	// hand class i the sibling run roots[i+1:] without per-task copies.
	rootAtoms := make([]atom, n)
	for j := range roots {
		rootAtoms[j] = atom{item: itemset.Item(j), node: roots[j]}
	}
	cc := &classCtx{rep: rep, minSup: minSup, batch: batch, phase: phase, rc: rc,
		arenas: arenas, private: private}
	mineClass := func(w, i int, sp sched.SpawnFunc) {
		m := cc.newMiner(w, i, sp)
		// The first-level combines read globally shared root data; the
		// recursion below reads only worker-local payloads.
		prefix := itemset.New(itemset.Item(i))
		var class []atom
		if batch {
			class = m.batchCombine(prefix, roots[i], rootAtoms[i+1:], false)
		} else {
			for j := i + 1; j < n; j++ {
				if m.rc.Stopped() {
					break
				}
				child := m.combine(roots[i], roots[j])
				cost := int64(vertical.CombineCost(roots[i], roots[j]))
				m.add(cost+int64(child.Bytes()), cost, int64(child.Bytes()))
				if child.Support() >= minSup {
					m.emit(prefix.Extend(itemset.Item(j)), child.Support())
					m.rc.ChargeMem(int64(child.Bytes()))
					class = append(class, atom{item: itemset.Item(j), node: child})
				} else {
					m.arena.Release(child)
				}
			}
		}
		m.recurse(prefix, class)
		m.releaseAtoms(class)
		cc.finishMiner(w, m)
	}
	var err error
	if schedule.Policy == sched.Steal {
		err = team.ForTreeCtx(rc, n, mineClass)
	} else {
		err = team.ForCtx(rc, n, schedule, func(w, i int) { mineClass(w, i, nil) })
	}
	core.EmitPhases(o, met)
	if err == nil {
		obs.Emit(o, obs.Event{Type: obs.LevelEnd, Phase: "eclat/classes",
			Candidates: n, Frequent: int(cc.emitted.Load()),
			LiveBytes: rc.MemUsed(), ElapsedNS: int64(time.Since(start))})
	}
	return err
}

// eqClass is one equivalence class of the flattened search: a shared
// prefix and the payload-carrying atoms that extend it. Its members are
// itemsets of size len(prefix)+1.
type eqClass struct {
	prefix itemset.Itemset
	atoms  []atom
}

// expansion is one (class, atom-position) work unit.
type expansion struct {
	class int32
	pos   int32
}

// expansions enumerates every (class, pos) pair with at least one later
// sibling to join (the last atom of a class roots an empty subtree).
func expansions(classes []eqClass) []expansion {
	var out []expansion
	for c := range classes {
		for pos := 0; pos+1 < len(classes[c].atoms); pos++ {
			out = append(out, expansion{class: int32(c), pos: int32(pos)})
		}
	}
	return out
}

// maxClassBytes returns the largest per-class payload footprint — the
// working set one expansion task reads. This stays class-local however
// large the whole level is: Eclat's locality advantage over Apriori.
func maxClassBytes(classes []eqClass) int64 {
	var mx int64
	for _, c := range classes {
		var b int64
		for _, a := range c.atoms {
			b += int64(a.node.Bytes())
		}
		if b > mx {
			mx = b
		}
	}
	return mx
}

// flattenedMiner carries the state of one flattened Eclat run: the
// (possibly degrading) representation, run control, and output sinks.
type flattenedMiner struct {
	rep      vertical.Representation
	minSup   int
	depth    int
	batch    bool
	team     *sched.Team
	schedule sched.Schedule
	col      *perf.Collector
	rc       *runctl.Control
	o        obs.Observer
	met      *sched.Metrics
	res      *core.Result
	private  [][]core.ItemsetCount
	arenas   []*vertical.Arena
}

// degradeClasses rewrites every atom of the freshly built classes as a
// diffset relative to its parent node (parentOf indexes the task that
// produced the class) and switches the representation for the remaining
// stages — the memory-budget cure, applied at a level boundary where
// every class is homogeneous.
func (f *flattenedMiner) degradeClasses(classes []eqClass, parentOf func(c int) vertical.Node) {
	var before, after int64
	for ci := range classes {
		parent := parentOf(ci)
		for ai, a := range classes[ci].atoms {
			before += int64(a.node.Bytes())
			d := vertical.DegradeChild(parent, a.node)
			classes[ci].atoms[ai].node = d
			after += int64(d.Bytes())
		}
	}
	f.rc.ChargeMem(after - before)
	f.rep = vertical.New(vertical.Diffset)
	f.res.Degraded = true
	obs.Emit(f.o, obs.Event{Type: obs.Degraded,
		Representation: vertical.Diffset.String(), LiveBytes: f.rc.MemUsed()})
}

// maybeDegrade applies the memory-budget policy at a level boundary:
// degrade when allowed, otherwise stop the run on a breach.
func (f *flattenedMiner) maybeDegrade(classes []eqClass, parentOf func(c int) vertical.Node) error {
	if !f.rc.OverMemory() {
		return nil
	}
	if f.rc.Budget().DegradeToDiffset && !f.res.Degraded && vertical.Degradable(f.rep.Kind()) {
		f.degradeClasses(classes, parentOf)
		return nil
	}
	return f.rc.CheckMemory()
}

// run expands the search breadth-first (class-local, parallel) down to
// itemsets of size `depth`, then runs one depth-first recursion task per
// size-`depth` subtree. Depth 2 parallelizes over frequent 2-itemset
// subtrees; each extra level multiplies the task count and divides the
// largest task, at the cost of materializing one more level of shared
// intermediate payloads.
func (f *flattenedMiner) run(roots []vertical.Node, rootBytes int64) error {
	n := len(roots)
	// Stage A: every pair combine is one (perfectly balanced) task.
	nPairs := n * (n - 1) / 2
	pi := make([]int32, nPairs)
	pj := make([]int32, nPairs)
	p := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pi[p], pj[p] = int32(i), int32(j)
			p++
		}
	}
	startA := time.Now()
	obs.Emit(f.o, obs.Event{Type: obs.LevelStart, Level: 2, Phase: "eclat/pairs",
		Candidates: nPairs})
	f.met.Label("eclat/pairs")
	phaseA := f.col.NewPhase("eclat/pairs", f.schedule, true, nPairs)
	if phaseA != nil {
		phaseA.UniqueParent = rootBytes
	}
	rep := f.rep
	pairNodes := make([]vertical.Node, nPairs)
	err := f.team.ForCtx(f.rc, nPairs, f.schedule, func(w, t int) {
		i, j := pi[t], pj[t]
		child := vertical.CombineWith(rep, f.arenas[w], roots[i], roots[j])
		cost := int64(vertical.CombineCost(roots[i], roots[j]))
		phaseA.Add(t, cost+int64(child.Bytes()), cost, int64(child.Bytes()))
		if child.Support() >= f.minSup {
			pairNodes[t] = child
			f.rc.ChargeMem(int64(child.Bytes()))
			f.private[w] = append(f.private[w], core.ItemsetCount{
				Items:   itemset.New(itemset.Item(i), itemset.Item(j)),
				Support: child.Support(),
			})
		} else {
			f.arenas[w].Release(child)
		}
	})
	core.EmitPhases(f.o, f.met)
	if err != nil {
		return err
	}
	var nFreqPairs int
	for _, nd := range pairNodes {
		if nd != nil {
			nFreqPairs++
		}
	}
	if err := f.rc.AddItemsets(nFreqPairs); err != nil {
		return err
	}
	obs.Emit(f.o, obs.Event{Type: obs.LevelEnd, Level: 2, Phase: "eclat/pairs",
		Candidates: nPairs, Frequent: nFreqPairs,
		LiveBytes: f.rc.MemUsed(), ElapsedNS: int64(time.Since(startA))})

	// Group the frequent pairs into classes, prefix {i}, atoms ascending.
	byPrefix := make([][]atom, n)
	for t := 0; t < nPairs; t++ {
		if pairNodes[t] != nil {
			byPrefix[pi[t]] = append(byPrefix[pi[t]], atom{item: itemset.Item(pj[t]), node: pairNodes[t]})
		}
	}
	var classes []eqClass
	classParent := make([]vertical.Node, 0, n) // pair classes: parent is the prefix root
	for i := 0; i < n; i++ {
		if len(byPrefix[i]) > 0 {
			classes = append(classes, eqClass{prefix: itemset.New(itemset.Item(i)), atoms: byPrefix[i]})
			classParent = append(classParent, roots[i])
		}
	}
	if err := f.maybeDegrade(classes, func(c int) vertical.Node { return classParent[c] }); err != nil {
		return err
	}
	f.rc.ChargeMem(-rootBytes) // the roots retire once the pair level is live

	// Intermediate expansions: materialize one more level per step,
	// until the class members reach the subtree-root size.
	for memberSize := 2; memberSize < f.depth; memberSize++ {
		classes, err = f.expandLevel(classes, memberSize+1)
		if err != nil {
			return err
		}
	}

	// Final stage: one depth-first recursion task per subtree.
	tasks := expansions(classes)
	startS := time.Now()
	obs.Emit(f.o, obs.Event{Type: obs.LevelStart, Level: f.depth, Phase: "eclat/subtrees",
		Candidates: len(tasks)})
	f.met.Label("eclat/subtrees")
	phase := f.col.NewPhase("eclat/subtrees", f.schedule, true, len(tasks))
	if phase != nil {
		phase.UniqueParent = maxClassBytes(classes)
	}
	rep = f.rep
	cc := &classCtx{rep: rep, minSup: f.minSup, batch: f.batch, phase: phase,
		rc: f.rc, arenas: f.arenas, private: f.private}
	mineSubtree := func(w, t int, sp sched.SpawnFunc) {
		e := tasks[t]
		class := classes[e.class]
		m := cc.newMiner(w, t, sp)
		sub := m.expandOne(class, int(e.pos))
		m.recurse(class.prefix.Extend(class.atoms[e.pos].item), sub)
		m.releaseAtoms(sub)
		cc.finishMiner(w, m)
	}
	if f.schedule.Policy == sched.Steal {
		err = f.team.ForTreeCtx(f.rc, len(tasks), mineSubtree)
	} else {
		err = f.team.ForCtx(f.rc, len(tasks), f.schedule, func(w, t int) { mineSubtree(w, t, nil) })
	}
	core.EmitPhases(f.o, f.met)
	f.rc.ChargeMem(-levelBytes(classes))
	if err == nil {
		obs.Emit(f.o, obs.Event{Type: obs.LevelEnd, Level: f.depth, Phase: "eclat/subtrees",
			Candidates: len(tasks), Frequent: int(cc.emitted.Load()),
			LiveBytes: f.rc.MemUsed(), ElapsedNS: int64(time.Since(startS))})
	}
	return err
}

// levelBytes sums the payload footprint of a whole flattened level.
func levelBytes(classes []eqClass) int64 {
	var b int64
	for _, c := range classes {
		for _, a := range c.atoms {
			b += int64(a.node.Bytes())
		}
	}
	return b
}

// expandLevel runs one parallel breadth step: every (class, pos) task
// joins its atom with the later siblings, records the frequent results
// (itemsets of size memberSize), and emits the subclass for the next
// level. The previous level's payloads are released once the new level
// is live, and the memory-budget policy runs at the boundary.
func (f *flattenedMiner) expandLevel(classes []eqClass, memberSize int) ([]eqClass, error) {
	tasks := expansions(classes)
	start := time.Now()
	phaseName := fmt.Sprintf("eclat/expand%d", memberSize)
	obs.Emit(f.o, obs.Event{Type: obs.LevelStart, Level: memberSize, Phase: phaseName,
		Candidates: len(tasks)})
	f.met.Label(phaseName)
	phase := f.col.NewPhase(phaseName, f.schedule, true, len(tasks))
	if phase != nil {
		phase.UniqueParent = maxClassBytes(classes)
	}
	rep := f.rep
	next := make([]eqClass, len(tasks))
	err := f.team.ForCtx(f.rc, len(tasks), f.schedule, func(w, t int) {
		e := tasks[t]
		class := classes[e.class]
		// Frequent children become the next flattened level and stay
		// live past this stage, so they are never released back; only
		// the infrequent majority recycles through the arena.
		m := &minerState{rep: rep, minSup: f.minSup, batch: f.batch, phase: phase,
			task: t, rc: f.rc, arena: f.arenas[w]}
		sub := m.expandOne(class, int(e.pos))
		if len(sub) > 0 {
			next[t] = eqClass{prefix: class.prefix.Extend(class.atoms[e.pos].item), atoms: sub}
		}
		f.private[w] = append(f.private[w], m.out...)
	})
	core.EmitPhases(f.o, f.met)
	if err != nil {
		return nil, err
	}
	prevBytes := levelBytes(classes)
	out := make([]eqClass, 0, len(next))
	parentOf := make([]vertical.Node, 0, len(next))
	for t, c := range next {
		if len(c.atoms) > 0 {
			out = append(out, c)
			e := tasks[t]
			parentOf = append(parentOf, classes[e.class].atoms[e.pos].node)
		}
	}
	if err := f.maybeDegrade(out, func(c int) vertical.Node { return parentOf[c] }); err != nil {
		return nil, err
	}
	f.rc.ChargeMem(-prevBytes)
	freq := 0
	for _, c := range out {
		freq += len(c.atoms)
	}
	obs.Emit(f.o, obs.Event{Type: obs.LevelEnd, Level: memberSize, Phase: phaseName,
		Candidates: len(tasks), Frequent: freq,
		LiveBytes: f.rc.MemUsed(), ElapsedNS: int64(time.Since(start))})
	return out, nil
}

// expandOne joins class.atoms[pos] with every later sibling, recording
// frequent results into m.out and returning the surviving subclass atoms.
// Each distinct shared parent is charged remotely once; the task's own
// atom stays local after the first touch.
func (m *minerState) expandOne(class eqClass, pos int) []atom {
	a := class.atoms[pos]
	newPrefix := class.prefix.Extend(a.item)
	if m.batch {
		return m.batchCombine(newPrefix, a.node, class.atoms[pos+1:], false)
	}
	var sub []atom
	for k := pos + 1; k < len(class.atoms); k++ {
		if m.rc.Stopped() {
			break
		}
		b := class.atoms[k]
		child := m.combine(a.node, b.node)
		cost := int64(vertical.CombineCost(a.node, b.node))
		remote := int64(b.node.Bytes())
		if k == pos+1 {
			remote += int64(a.node.Bytes())
		}
		m.add(cost+int64(child.Bytes()), remote, int64(child.Bytes()))
		if child.Support() >= m.minSup {
			m.emit(newPrefix.Extend(b.item), child.Support())
			m.rc.ChargeMem(int64(child.Bytes()))
			sub = append(sub, atom{item: b.item, node: child})
		} else {
			m.arena.Release(child)
		}
	}
	return sub
}

// classCtx carries the per-stage state shared by every recursion task
// of one parallel mining stage — including tasks spawned onto the
// stealing deques mid-stage, which may run (and must be re-equipped
// with an arena and output slot) on whichever worker takes them.
type classCtx struct {
	rep     vertical.Representation
	minSup  int
	batch   bool
	phase   *perf.Phase
	rc      *runctl.Control
	arenas  []*vertical.Arena
	private [][]core.ItemsetCount
	emitted atomic.Int64
}

// newMiner equips a task running on worker w with that worker's arena
// and, in steal mode, the spawn hook. task is the perf-phase slot the
// task's modelled work is charged to — a spawned subtree keeps its
// originating task's slot (Phase.Add is atomic, so concurrent charges
// to one slot are safe).
func (cc *classCtx) newMiner(w, task int, sp sched.SpawnFunc) *minerState {
	return &minerState{rep: cc.rep, minSup: cc.minSup, batch: cc.batch,
		phase: cc.phase, task: task, rc: cc.rc, arena: cc.arenas[w], spawn: sp, cc: cc}
}

// finishMiner publishes a completed task's results into the stage
// totals and worker w's private output, and flushes the arena tallies.
func (cc *classCtx) finishMiner(w int, m *minerState) {
	m.arena.Flush()
	cc.emitted.Add(int64(len(m.out)))
	cc.private[w] = append(cc.private[w], m.out...)
}

// stealSpawnWork is the estimated-work threshold — subclass size times
// payload bytes — above which recurse offloads a subclass to the
// stealing deques instead of descending inline. Around 64 KiB·members,
// tiny subtrees stay inline (a deque round-trip costs more than mining
// them) while the fat near-root subclasses that pin a worker under
// dynamic scheduling become stealable. A variable so the tests can
// force aggressive spawning on small databases.
var stealSpawnWork int64 = 1 << 16

// minerState carries one task's recursion context: its output buffer,
// run control, and instrumentation coordinates.
type minerState struct {
	rep    vertical.Representation
	minSup int
	batch  bool
	phase  *perf.Phase
	task   int
	rc     *runctl.Control
	arena  *vertical.Arena
	spawn  sched.SpawnFunc
	cc     *classCtx
	out    []core.ItemsetCount
}

// combine is the miners' single combine entry point: arena-backed when
// the representation supports recycling, allocating otherwise.
func (m *minerState) combine(px, py vertical.Node) vertical.Node {
	return vertical.CombineWith(m.rep, m.arena, px, py)
}

// batchCombine is the prefix-blocked form of the class-extension loop:
// one CombineManyInto call joins base against the entire sibling run, so
// the resident base payload streams once per class instead of once per
// sibling. Results, emissions and arena recycling are identical to the
// pairwise loop; only the kernel call structure (and the remote-traffic
// model, which now charges base once per class) changes. Cancellation
// coarsens to whole-class granularity: the stop flag is checked before
// the kernel call, not between siblings.
//
// The gather/output slices come from the arena's NodeScratch and are
// reused across recursion depths — safe because every surviving child is
// copied into the returned subclass before the recursion descends and
// calls batchCombine again.
func (m *minerState) batchCombine(newPrefix itemset.Itemset, base vertical.Node,
	sibs []atom, local bool) []atom {
	if len(sibs) == 0 || m.rc.Stopped() {
		return nil
	}
	n := len(sibs)
	pys, out := m.arena.NodeScratch(n)
	for k, s := range sibs {
		pys[k] = s.node
	}
	m.rep.CombineManyInto(base, pys, out, m.arena)
	remoteBase := int64(base.Bytes()) // streamed once per class
	var sub []atom
	for k, s := range sibs {
		child := out[k]
		cost := int64(vertical.CombineCost(base, s.node))
		cb := int64(child.Bytes())
		if local {
			m.addLocal(cost+cb, cb)
		} else {
			m.add(cost+cb, remoteBase+int64(s.node.Bytes()), cb)
			remoteBase = 0
		}
		if child.Support() >= m.minSup {
			m.emit(newPrefix.Extend(s.item), child.Support())
			m.rc.ChargeMem(cb)
			sub = append(sub, atom{item: s.item, node: child})
		} else {
			m.arena.Release(child)
		}
	}
	return sub
}

func (m *minerState) add(work, remote, alloc int64) {
	m.phase.Add(m.task, work, remote, alloc)
}

// addLocal records recursion-internal combines, which never cross the
// interconnect: the worker that produced the parents consumes them.
func (m *minerState) addLocal(work, alloc int64) {
	m.phase.Add(m.task, work, 0, alloc)
}

// emit records one frequent itemset and accounts it against the
// itemsets budget (AddItemsets stops the run on breach; the recursion
// then unwinds at its next Stopped check).
func (m *minerState) emit(items itemset.Itemset, support int) {
	m.out = append(m.out, core.ItemsetCount{Items: items, Support: support})
	m.rc.AddItemsets(1)
}

// atomsBytes sums a class's payload footprint.
func atomsBytes(class []atom) int64 {
	var b int64
	for _, a := range class {
		b += int64(a.node.Bytes())
	}
	return b
}

// releaseAtoms returns a class's payload bytes to the memory budget and
// its nodes to the task's arena when the recursion scope ends. The
// nodes are dead here by construction: the subtree below the class is
// fully mined, and spawned subtrees only ever reference their own
// class's nodes (combine results never alias their parents).
func (m *minerState) releaseAtoms(class []atom) {
	m.rc.ChargeMem(-atomsBytes(class))
	for _, a := range class {
		m.arena.Release(a.node)
	}
}

// recurse explores the class rooted at prefix (Algorithm 2 lines 3–11):
// for every atom, join it with every later atom of the same class; record
// the frequent joins and descend into the new class. The stop flag is
// checked at every class descent, so a cancelled or over-budget run
// unwinds without finishing the subtree.
//
// In steal mode (m.spawn non-nil), a subclass whose estimated work
// clears stealSpawnWork is handed to the deques instead of descended
// inline; ownership of its payloads transfers with it.
func (m *minerState) recurse(prefix itemset.Itemset, class []atom) {
	for i := 0; i+1 < len(class); i++ {
		if m.rc.Stopped() {
			return
		}
		newPrefix := prefix.Extend(class[i].item)
		var sub []atom
		if m.batch {
			sub = m.batchCombine(newPrefix, class[i].node, class[i+1:], true)
		} else {
			for j := i + 1; j < len(class); j++ {
				child := m.combine(class[i].node, class[j].node)
				cost := int64(vertical.CombineCost(class[i].node, class[j].node))
				m.addLocal(cost+int64(child.Bytes()), int64(child.Bytes()))
				if child.Support() >= m.minSup {
					m.emit(newPrefix.Extend(class[j].item), child.Support())
					m.rc.ChargeMem(int64(child.Bytes()))
					sub = append(sub, atom{item: class[j].item, node: child})
				} else {
					m.arena.Release(child)
				}
			}
		}
		if m.spawn != nil && len(sub) > 1 &&
			int64(len(sub))*atomsBytes(sub) >= stealSpawnWork {
			m.spawnSubtree(newPrefix, sub)
			continue
		}
		if len(sub) > 0 {
			m.recurse(newPrefix, sub)
		}
		m.releaseAtoms(sub)
	}
}

// spawnSubtree enqueues the class rooted at prefix as a stealable task.
// The task rebuilds a miner on whichever worker runs it — possibly a
// thief on the far side of the machine — which mines the subtree with
// its own arena, releases the class, and publishes its results. The
// subtree's modelled work stays charged to the originating perf task.
func (m *minerState) spawnSubtree(prefix itemset.Itemset, sub []atom) {
	cc, task := m.cc, m.task
	m.spawn(func(w int, sp sched.SpawnFunc) {
		sm := cc.newMiner(w, task, sp)
		sm.recurse(prefix, sub)
		sm.releaseAtoms(sub)
		cc.finishMiner(w, sm)
	})
}
