// Package eclat implements Algorithm 2 of the paper: depth-first
// equivalence-class frequent itemset mining over any of the three
// vertical representations, parallelized with dynamic scheduling and the
// smallest possible chunk (§IV: "we choose the chunksize to as small as
// possible. The scheduler is set to dynamic so that the load imbalance
// can be minimized").
//
// The parallel decomposition is selected by core.Options.EclatDepth:
//
//   - Depth 1 parallelizes the literal outer loop of Algorithm 2: one
//     task per first-level equivalence class (one frequent item and
//     everything joinable to its right). This is the paper's text
//     reading; its parallelism is capped by the frequent-item count,
//     a limit the paper itself notes ("poses a limit on the possible
//     number of threads").
//   - Depth k ≥ 2 flattens the first k−1 levels breadth-first (each
//     expansion stays class-local and runs as its own task), then runs
//     one depth-first recursion task per frequent k-itemset subtree.
//     Each extra level multiplies the task count and divides the
//     largest task. The default is DefaultDepth (4), the shallowest
//     flattening whose task counts and balance support the speedups the
//     paper reports on datasets with fewer frequent items than threads.
//
// In both forms, a worker that claims a subtree materializes every
// intermediate payload itself, so after the initial reads of shared data
// there is no cross-worker memory traffic — the data-independence
// property the paper credits for Eclat's scalability.
package eclat

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/perf"
	"repro/internal/sched"
	"repro/internal/vertical"
)

// DefaultSchedule is the paper's choice for Eclat's parallel loops:
// dynamic scheduling with chunk size 1.
var DefaultSchedule = sched.Schedule{Policy: sched.Dynamic, Chunk: 1}

// DefaultDepth is the flattening depth used when Options.EclatDepth is 0:
// the search is expanded breadth-first (class-local, in parallel) down to
// itemset size 4 before switching to per-subtree depth-first recursion.
// Deeper flattening trades a little shared traffic for far smaller
// maximum task size — the load-balance knob the A4 ablation sweeps.
const DefaultDepth = 4

// atom is one member of an equivalence class: the last item of the
// itemset plus its vertical payload relative to the class prefix.
type atom struct {
	item itemset.Item
	node vertical.Node
}

// Mine runs Eclat over the recoded database with the given absolute
// minimum support.
func Mine(rec *dataset.Recoded, minSup int, opt core.Options) *core.Result {
	if minSup < 1 {
		minSup = 1
	}
	rep := vertical.New(opt.Representation)
	schedule := DefaultSchedule
	if opt.HasSchedule {
		schedule = opt.Schedule
	}
	team := sched.NewTeam(opt.Workers)
	col := opt.Collector

	res := &core.Result{
		Algorithm:      core.Eclat,
		Representation: opt.Representation,
		MinSup:         minSup,
		Rec:            rec,
	}

	roots := rep.Roots(rec)
	n := len(roots)
	// Level-1 itemsets are frequent by construction of the recode pass.
	for i := 0; i < n; i++ {
		res.Counts = append(res.Counts, core.ItemsetCount{
			Items:   itemset.New(itemset.Item(i)),
			Support: roots[i].Support(),
		})
	}
	if n > 0 {
		res.MaxK = 1
	}
	if n < 2 {
		return res
	}

	var rootBytes int64
	for _, r := range roots {
		rootBytes += int64(r.Bytes())
	}

	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	private := make([][]core.ItemsetCount, workers)

	depth := opt.EclatDepth
	if depth == 0 {
		depth = DefaultDepth
	}
	if depth == 1 {
		mineDepth1(rep, roots, rootBytes, minSup, team, schedule, col, private)
	} else {
		mineFlattened(rep, roots, rootBytes, minSup, depth, team, schedule, col, private)
	}

	for _, p := range private {
		for _, c := range p {
			res.Counts = append(res.Counts, c)
			if len(c.Items) > res.MaxK {
				res.MaxK = len(c.Items)
			}
		}
	}
	return res
}

// mineDepth1 runs the paper-literal decomposition: one task per
// first-level class.
func mineDepth1(rep vertical.Representation, roots []vertical.Node, rootBytes int64,
	minSup int, team *sched.Team, schedule sched.Schedule, col *perf.Collector,
	private [][]core.ItemsetCount) {

	n := len(roots)
	phase := col.NewPhase("eclat/classes", schedule, true, n)
	if phase != nil {
		phase.UniqueParent = rootBytes
	}
	team.For(n, schedule, func(w, i int) {
		m := &minerState{rep: rep, minSup: minSup, phase: phase, task: i}
		// The first-level combines read globally shared root data; the
		// recursion below reads only worker-local payloads.
		prefix := itemset.New(itemset.Item(i))
		var class []atom
		for j := i + 1; j < n; j++ {
			child := rep.Combine(roots[i], roots[j])
			cost := int64(vertical.CombineCost(roots[i], roots[j]))
			m.add(cost+int64(child.Bytes()), cost, int64(child.Bytes()))
			if child.Support() >= minSup {
				m.out = append(m.out, core.ItemsetCount{
					Items:   prefix.Extend(itemset.Item(j)),
					Support: child.Support(),
				})
				class = append(class, atom{item: itemset.Item(j), node: child})
			}
		}
		m.recurse(prefix, class)
		private[w] = append(private[w], m.out...)
	})
}

// eqClass is one equivalence class of the flattened search: a shared
// prefix and the payload-carrying atoms that extend it. Its members are
// itemsets of size len(prefix)+1.
type eqClass struct {
	prefix itemset.Itemset
	atoms  []atom
}

// expansion is one (class, atom-position) work unit.
type expansion struct {
	class int32
	pos   int32
}

// expansions enumerates every (class, pos) pair with at least one later
// sibling to join (the last atom of a class roots an empty subtree).
func expansions(classes []eqClass) []expansion {
	var out []expansion
	for c := range classes {
		for pos := 0; pos+1 < len(classes[c].atoms); pos++ {
			out = append(out, expansion{class: int32(c), pos: int32(pos)})
		}
	}
	return out
}

// maxClassBytes returns the largest per-class payload footprint — the
// working set one expansion task reads. This stays class-local however
// large the whole level is: Eclat's locality advantage over Apriori.
func maxClassBytes(classes []eqClass) int64 {
	var mx int64
	for _, c := range classes {
		var b int64
		for _, a := range c.atoms {
			b += int64(a.node.Bytes())
		}
		if b > mx {
			mx = b
		}
	}
	return mx
}

// mineFlattened expands the search breadth-first (class-local, parallel)
// down to itemsets of size `depth`, then runs one depth-first recursion
// task per size-`depth` subtree. Depth 2 parallelizes over frequent
// 2-itemset subtrees; each extra level multiplies the task count and
// divides the largest task, at the cost of materializing one more level
// of shared intermediate payloads.
func mineFlattened(rep vertical.Representation, roots []vertical.Node, rootBytes int64,
	minSup, depth int, team *sched.Team, schedule sched.Schedule, col *perf.Collector,
	private [][]core.ItemsetCount) {

	n := len(roots)
	// Stage A: every pair combine is one (perfectly balanced) task.
	nPairs := n * (n - 1) / 2
	pi := make([]int32, nPairs)
	pj := make([]int32, nPairs)
	p := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pi[p], pj[p] = int32(i), int32(j)
			p++
		}
	}
	phaseA := col.NewPhase("eclat/pairs", schedule, true, nPairs)
	if phaseA != nil {
		phaseA.UniqueParent = rootBytes
	}
	pairNodes := make([]vertical.Node, nPairs)
	team.For(nPairs, schedule, func(w, t int) {
		i, j := pi[t], pj[t]
		child := rep.Combine(roots[i], roots[j])
		cost := int64(vertical.CombineCost(roots[i], roots[j]))
		phaseA.Add(t, cost+int64(child.Bytes()), cost, int64(child.Bytes()))
		if child.Support() >= minSup {
			pairNodes[t] = child
			private[w] = append(private[w], core.ItemsetCount{
				Items:   itemset.New(itemset.Item(i), itemset.Item(j)),
				Support: child.Support(),
			})
		}
	})

	// Group the frequent pairs into classes, prefix {i}, atoms ascending.
	byPrefix := make([][]atom, n)
	for t := 0; t < nPairs; t++ {
		if pairNodes[t] != nil {
			byPrefix[pi[t]] = append(byPrefix[pi[t]], atom{item: itemset.Item(pj[t]), node: pairNodes[t]})
		}
	}
	var classes []eqClass
	for i := 0; i < n; i++ {
		if len(byPrefix[i]) > 0 {
			classes = append(classes, eqClass{prefix: itemset.New(itemset.Item(i)), atoms: byPrefix[i]})
		}
	}

	// Intermediate expansions: materialize one more level per step,
	// until the class members reach the subtree-root size.
	for memberSize := 2; memberSize < depth; memberSize++ {
		classes = expandLevel(rep, classes, memberSize+1, minSup, team, schedule, col, private)
	}

	// Final stage: one depth-first recursion task per subtree.
	tasks := expansions(classes)
	phase := col.NewPhase("eclat/subtrees", schedule, true, len(tasks))
	if phase != nil {
		phase.UniqueParent = maxClassBytes(classes)
	}
	team.For(len(tasks), schedule, func(w, t int) {
		e := tasks[t]
		class := classes[e.class]
		m := &minerState{rep: rep, minSup: minSup, phase: phase, task: t}
		sub := m.expandOne(class, int(e.pos))
		m.recurse(class.prefix.Extend(class.atoms[e.pos].item), sub)
		private[w] = append(private[w], m.out...)
	})
}

// expandLevel runs one parallel breadth step: every (class, pos) task
// joins its atom with the later siblings, records the frequent results
// (itemsets of size memberSize), and emits the subclass for the next
// level.
func expandLevel(rep vertical.Representation, classes []eqClass, memberSize, minSup int,
	team *sched.Team, schedule sched.Schedule, col *perf.Collector,
	private [][]core.ItemsetCount) []eqClass {

	tasks := expansions(classes)
	phase := col.NewPhase(fmt.Sprintf("eclat/expand%d", memberSize), schedule, true, len(tasks))
	if phase != nil {
		phase.UniqueParent = maxClassBytes(classes)
	}
	next := make([]eqClass, len(tasks))
	team.For(len(tasks), schedule, func(w, t int) {
		e := tasks[t]
		class := classes[e.class]
		m := &minerState{rep: rep, minSup: minSup, phase: phase, task: t}
		sub := m.expandOne(class, int(e.pos))
		if len(sub) > 0 {
			next[t] = eqClass{prefix: class.prefix.Extend(class.atoms[e.pos].item), atoms: sub}
		}
		private[w] = append(private[w], m.out...)
	})
	out := next[:0]
	for _, c := range next {
		if len(c.atoms) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// expandOne joins class.atoms[pos] with every later sibling, recording
// frequent results into m.out and returning the surviving subclass atoms.
// Each distinct shared parent is charged remotely once; the task's own
// atom stays local after the first touch.
func (m *minerState) expandOne(class eqClass, pos int) []atom {
	a := class.atoms[pos]
	newPrefix := class.prefix.Extend(a.item)
	var sub []atom
	for k := pos + 1; k < len(class.atoms); k++ {
		b := class.atoms[k]
		child := m.rep.Combine(a.node, b.node)
		cost := int64(vertical.CombineCost(a.node, b.node))
		remote := int64(b.node.Bytes())
		if k == pos+1 {
			remote += int64(a.node.Bytes())
		}
		m.add(cost+int64(child.Bytes()), remote, int64(child.Bytes()))
		if child.Support() >= m.minSup {
			m.out = append(m.out, core.ItemsetCount{
				Items:   newPrefix.Extend(b.item),
				Support: child.Support(),
			})
			sub = append(sub, atom{item: b.item, node: child})
		}
	}
	return sub
}

// minerState carries one task's recursion context: its output buffer and
// instrumentation coordinates.
type minerState struct {
	rep    vertical.Representation
	minSup int
	phase  *perf.Phase
	task   int
	out    []core.ItemsetCount
}

func (m *minerState) add(work, remote, alloc int64) {
	m.phase.Add(m.task, work, remote, alloc)
}

// addLocal records recursion-internal combines, which never cross the
// interconnect: the worker that produced the parents consumes them.
func (m *minerState) addLocal(work, alloc int64) {
	m.phase.Add(m.task, work, 0, alloc)
}

// recurse explores the class rooted at prefix (Algorithm 2 lines 3–11):
// for every atom, join it with every later atom of the same class; record
// the frequent joins and descend into the new class.
func (m *minerState) recurse(prefix itemset.Itemset, class []atom) {
	for i := 0; i+1 < len(class); i++ {
		newPrefix := prefix.Extend(class[i].item)
		var sub []atom
		for j := i + 1; j < len(class); j++ {
			child := m.rep.Combine(class[i].node, class[j].node)
			cost := int64(vertical.CombineCost(class[i].node, class[j].node))
			m.addLocal(cost+int64(child.Bytes()), int64(child.Bytes()))
			if child.Support() >= m.minSup {
				m.out = append(m.out, core.ItemsetCount{
					Items:   newPrefix.Extend(class[j].item),
					Support: child.Support(),
				})
				sub = append(sub, atom{item: class[j].item, node: child})
			}
		}
		if len(sub) > 0 {
			m.recurse(newPrefix, sub)
		}
	}
}
