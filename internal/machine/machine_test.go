package machine

import (
	"math"
	"testing"

	"repro/internal/perf"
	"repro/internal/sched"
)

// tracePhase builds a single-phase trace with uniform tasks.
func tracePhase(n int, work, remote, unique int64, shared bool, s sched.Schedule) *perf.Collector {
	col := &perf.Collector{}
	p := col.NewPhase("test", s, shared, n)
	p.UniqueParent = unique
	for i := 0; i < n; i++ {
		p.Add(i, work, remote, 0)
	}
	return col
}

func TestSimulateSerialBaseline(t *testing.T) {
	cfg := Blacklight()
	col := tracePhase(100, 1e6, 0, 0, true, sched.Schedule{Policy: sched.Static})
	rt := Simulate(col, 1, cfg)
	want := 100 * (1e6/cfg.ComputeBPS + cfg.TaskOverheadSec)
	if math.Abs(rt.Seconds-want) > 1e-9 {
		t.Errorf("serial time = %v, want %v", rt.Seconds, want)
	}
	if rt.RemoteBytes != 0 || rt.BandwidthBound {
		t.Error("serial run reported remote traffic")
	}
}

func TestPerfectScalingWithinOneBlade(t *testing.T) {
	// Below CoresPerBlade everything is local: uniform tasks must give
	// near-linear speedup regardless of the remote fields.
	cfg := Blacklight()
	col := tracePhase(1600, 1e6, 5e5, 1<<30, true, sched.Schedule{Policy: sched.Static})
	one := Simulate(col, 1, cfg)
	sixteen := Simulate(col, 16, cfg)
	got := one.Seconds / sixteen.Seconds
	if got < 15.5 || got > 16.01 {
		t.Errorf("speedup at 16 threads = %v, want ~16", got)
	}
	if sixteen.RemoteBytes != 0 {
		t.Errorf("one blade produced %v remote bytes", sixteen.RemoteBytes)
	}
}

func TestBigSharedPoolStopsScaling(t *testing.T) {
	// A huge shared parent pool (far beyond cache) with heavy per-task
	// remote reads must flatten beyond one blade — the Apriori
	// tidset/bitvector signature.
	cfg := Blacklight()
	col := tracePhase(100000, 1e4, 8e3, 1<<31, true, sched.Schedule{Policy: sched.Static})
	_, speedups := Speedup(col, []int{16, 32, 64, 128, 256}, cfg)
	if speedups[0] < 14 {
		t.Errorf("speedup at 16 = %v, want near-linear", speedups[0])
	}
	// Past one blade the curve must be essentially flat (within 2x of
	// the 16-thread point while the thread count grows 16x).
	if speedups[4] > speedups[0]*3 {
		t.Errorf("256-thread speedup %v did not flatten vs 16-thread %v", speedups[4], speedups[0])
	}
}

func TestSmallSharedPoolKeepsScaling(t *testing.T) {
	// A tiny parent pool stays cache-resident: the same task structure
	// must keep scaling to 256 threads — the diffset signature.
	cfg := Blacklight()
	col := tracePhase(100000, 1e4, 8e3, 1<<18, true, sched.Schedule{Policy: sched.Static})
	_, speedups := Speedup(col, []int{16, 256}, cfg)
	if speedups[1] < speedups[0]*8 {
		t.Errorf("small-pool speedup did not grow: 16→%v, 256→%v", speedups[0], speedups[1])
	}
	if speedups[1] < 150 {
		t.Errorf("256-thread speedup = %v, want > 150 for cache-resident pool", speedups[1])
	}
}

func TestPrivateDataNeverPaysRemote(t *testing.T) {
	cfg := Blacklight()
	shared := tracePhase(10000, 1e4, 1e4, 1<<31, true, sched.Schedule{Policy: sched.Dynamic, Chunk: 1})
	private := tracePhase(10000, 1e4, 1e4, 1<<31, false, sched.Schedule{Policy: sched.Dynamic, Chunk: 1})
	st := Simulate(shared, 256, cfg)
	pt := Simulate(private, 256, cfg)
	if pt.RemoteBytes != 0 {
		t.Errorf("private phase produced remote traffic %v", pt.RemoteBytes)
	}
	if st.Seconds <= pt.Seconds {
		t.Error("shared phase not slower than private at 256 threads")
	}
}

func TestLoadImbalanceDynamicBeatsStaticChunked(t *testing.T) {
	// One giant task at the front, many small ones: static block
	// assignment lands the giant plus a full block on worker 0, while
	// dynamic chunk-1 gives the giant worker nothing else.
	cfg := Blacklight()
	build := func(s sched.Schedule) *perf.Collector {
		col := &perf.Collector{}
		p := col.NewPhase("imbalanced", s, false, 64)
		p.Add(0, 64e6, 0, 0)
		for i := 1; i < 64; i++ {
			p.Add(i, 1e6, 0, 0)
		}
		return col
	}
	stat := Simulate(build(sched.Schedule{Policy: sched.Static}), 4, cfg)
	dyn := Simulate(build(sched.Schedule{Policy: sched.Dynamic, Chunk: 1}), 4, cfg)
	if dyn.Seconds >= stat.Seconds {
		t.Errorf("dynamic (%v) not faster than static (%v) on skewed tasks", dyn.Seconds, stat.Seconds)
	}
	// Dynamic's makespan is bounded below by the giant task.
	if dyn.Seconds < 64e6/cfg.ComputeBPS {
		t.Errorf("dynamic makespan %v below the giant task's own duration", dyn.Seconds)
	}
}

func TestSerialSectionBoundsSpeedup(t *testing.T) {
	cfg := Blacklight()
	col := tracePhase(1000, 1e6, 0, 0, true, sched.Schedule{Policy: sched.Static})
	col.Phases[0].AddSerial(500e6) // serial half as big as the parallel work
	one := Simulate(col, 1, cfg)
	many := Simulate(col, 256, cfg)
	// Amdahl: speedup <= (1 + 0.5)/0.5 = 3.
	if got := one.Seconds / many.Seconds; got > 3.01 {
		t.Errorf("speedup %v exceeds Amdahl bound 3", got)
	}
}

func TestBandwidthBoundFlag(t *testing.T) {
	cfg := Blacklight()
	col := tracePhase(100000, 1e3, 1e5, 1<<33, true, sched.Schedule{Policy: sched.Static})
	rt := Simulate(col, 256, cfg)
	if !rt.BandwidthBound {
		t.Error("massively remote run not flagged bandwidth-bound")
	}
	if rt.RemoteBytes == 0 {
		t.Error("no remote bytes recorded")
	}
}

func TestThreadScalingInvariants(t *testing.T) {
	cfg := Blacklight()
	for _, s := range []sched.Schedule{
		{Policy: sched.Static}, {Policy: sched.Dynamic, Chunk: 1}, {Policy: sched.Guided},
	} {
		// Private data: no remote penalty, so more threads is never
		// slower.
		col := tracePhase(5000, 1e5, 3e4, 1<<26, false, s)
		prev := math.Inf(1)
		for _, threads := range []int{1, 2, 4, 16, 64, 256} {
			rt := Simulate(col, threads, cfg)
			if rt.Seconds > prev*1.0001 {
				t.Errorf("%v private: time grew from %v to %v at %d threads", s, prev, rt.Seconds, threads)
			}
			prev = rt.Seconds
		}
		// Shared data: crossing a blade boundary may degrade (remote
		// penalty — the paper's own observation for Apriori tidset),
		// but never by more than the full remote factor.
		shared := tracePhase(5000, 1e5, 3e4, 1<<26, true, s)
		base := Simulate(shared, 16, cfg).Seconds
		for _, threads := range []int{32, 64, 128, 256} {
			rt := Simulate(shared, threads, cfg)
			if rt.Seconds > base*cfg.RemoteFactor {
				t.Errorf("%v shared: %d-thread time %v exceeds remote-factor bound of the 16-thread time %v",
					s, threads, rt.Seconds, base)
			}
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	if rt := Simulate(&perf.Collector{}, 64, Blacklight()); rt.Seconds != 0 {
		t.Errorf("empty trace took %v", rt.Seconds)
	}
	if rt := Simulate(nil, 64, Blacklight()); rt.Seconds != 0 {
		t.Errorf("nil trace took %v", rt.Seconds)
	}
}

func TestSpeedupBaselineIsOne(t *testing.T) {
	col := tracePhase(100, 1e6, 0, 0, true, sched.Schedule{Policy: sched.Static})
	_, speedups := Speedup(col, []int{1}, Blacklight())
	if math.Abs(speedups[0]-1) > 1e-9 {
		t.Errorf("speedup at 1 thread = %v", speedups[0])
	}
}

func TestDescribe(t *testing.T) {
	if Blacklight().Describe() == "" {
		t.Error("empty description")
	}
}

// TestScheduleReplayMatchesRealExecution: the simulated makespan of a
// static schedule must equal the max of per-worker sums computed directly
// from the chunker — i.e. the DES agrees with first-principles math.
func TestScheduleReplayMatchesRealExecution(t *testing.T) {
	durations := make([]float64, 103)
	for i := range durations {
		durations[i] = float64(i%7+1) * 1e-3
	}
	s := sched.Schedule{Policy: sched.Static}
	got := runSchedule(durations, 4, s)
	// First-principles: static,0 gives contiguous blocks.
	ch := sched.NewChunker(103, 4, s)
	want := 0.0
	for w := 0; w < 4; w++ {
		sum := 0.0
		for {
			lo, hi, ok := ch.Next(w)
			if !ok {
				break
			}
			for i := lo; i < hi; i++ {
				sum += durations[i]
			}
		}
		if sum > want {
			want = sum
		}
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("replay makespan %v != direct computation %v", got, want)
	}
}

// TestHyperthreadingDoesNotHelp reproduces the paper's §V observation:
// doubling the thread count via SMT (threads share core throughput) does
// not improve a memory-bound mining run.
func TestHyperthreadingDoesNotHelp(t *testing.T) {
	base := Blacklight()
	ht := base.WithHyperthreading(1.05)
	if ht.CoresPerBlade != 2*base.CoresPerBlade {
		t.Fatalf("HT cores/blade = %d", ht.CoresPerBlade)
	}
	col := tracePhase(4096, 1e6, 3e5, 1<<23, true, sched.Schedule{Policy: sched.Static})
	noHT := Simulate(col, 256, base)
	shared := Simulate(col, 512, ht) // same 16 blades, 2x threads
	// A core running one busy thread keeps full throughput, so effective
	// HT time is the better of idling the siblings or sharing the cores.
	withHT := shared.Seconds
	if noHT.Seconds < withHT {
		withHT = noHT.Seconds
	}
	ratio := noHT.Seconds / withHT
	// "Does not improve": no more than a few percent either way.
	if ratio < 0.99 || ratio > 1.15 {
		t.Errorf("HT changed runtime by %vx (noHT=%v, HT=%v)", ratio, noHT.Seconds, withHT)
	}
}

func TestWithHyperthreadingValidatesGain(t *testing.T) {
	c := Blacklight().WithHyperthreading(0)
	if c.ComputeBPS != Blacklight().ComputeBPS/2 {
		t.Errorf("zero gain not clamped: %v", c.ComputeBPS)
	}
}

// TestSimulationIsDeterministic: identical traces and configurations must
// produce bit-identical simulated times, including under dynamic
// scheduling (the DES breaks clock ties by worker id).
func TestSimulationIsDeterministic(t *testing.T) {
	cfg := Blacklight()
	for _, s := range []sched.Schedule{
		{Policy: sched.Static}, {Policy: sched.Dynamic, Chunk: 1}, {Policy: sched.Guided},
	} {
		col := tracePhase(3000, 1e5, 4e4, 1<<24, true, s)
		for _, threads := range []int{7, 64, 256} {
			a := Simulate(col, threads, cfg)
			b := Simulate(col, threads, cfg)
			if a.Seconds != b.Seconds || a.RemoteBytes != b.RemoteBytes {
				t.Errorf("%v threads=%d: nondeterministic simulation", s, threads)
			}
		}
	}
}
