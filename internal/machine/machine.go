// Package machine models a large NUMA shared-memory system in the mold
// of the paper's testbed — the SGI Altix UV "Blacklight" (blades of 16
// Nehalem-EX cores, 128 GB local memory per blade, NUMAlink5
// interconnect) — and replays instrumented mining runs (perf.Collector
// traces) on it with a deterministic discrete-event simulation.
//
// Why simulate: the paper's experiments sweep 16–256 hardware threads;
// this host exposes a single CPU to the runtime, so wall-clock speedup at
// those scales is physically unobservable. The miners' parallel structure
// is fully recorded per task (bytes of combine work, bytes read from
// shared parent payloads, bytes allocated, loop schedule), which is
// everything the paper's scalability argument depends on; the machine
// model adds only the geometry (blades, interconnect, caches).
//
// Cost model, per phase of a trace:
//
//   - A task's compute time is Overhead + Work/ComputeBPS.
//   - Remote penalty: with B = ceil(T/CoresPerBlade) blades, a read of
//     shared parent data lands on a remote blade with probability
//     f = (B−1)/B. Whether it actually crosses the interconnect depends
//     on whether the task's parent working set stays cache-resident: the
//     miss ratio follows a Hill-type capacity curve (see missRatio).
//     Small working sets (diffset levels, Eclat classes) are fetched
//     once and hit thereafter; working sets far beyond capacity
//     (tidset/bitvector candidate levels) miss on every combine. Missed
//     bytes cost RemoteFactor× the local rate.
//   - The iteration→worker assignment replays the same sched.Chunker the
//     real implementation uses (static / dynamic / guided), so load
//     imbalance is simulated faithfully: a dynamic worker grabs the next
//     chunk when its clock is earliest, exactly like the OpenMP runtime.
//   - Two floors bound each phase: the machine-wide interconnect
//     bisection (total missed remote bytes / BisectionBPS), and the
//     phase's serial bookkeeping (Serial/ComputeBPS) which runs on one
//     core before the loop.
//
// The model is calibrated for shape, not absolute seconds: who scales,
// where the knee falls, and by roughly what factor — the claims of the
// paper's §V.
package machine

import (
	"container/heap"
	"fmt"

	"repro/internal/perf"
	"repro/internal/sched"
)

// Config is the simulated machine geometry.
type Config struct {
	// CoresPerBlade is the thread count that shares one local memory
	// (Blacklight: 16).
	CoresPerBlade int
	// ComputeBPS is the per-core set-combine processing rate in bytes/s.
	ComputeBPS float64
	// TaskOverheadSec is the fixed per-iteration cost (scheduling, trie
	// bookkeeping, allocator fast path).
	TaskOverheadSec float64
	// RemoteFactor multiplies the per-byte cost of interconnect-crossing
	// reads relative to local ones.
	RemoteFactor float64
	// CacheBytes is the effective per-blade capacity for hot shared
	// data; parent pools beyond it miss to the interconnect.
	CacheBytes float64
	// BisectionBPS is the machine-wide interconnect bandwidth available
	// to one job, a fixed resource that does not grow with blade count.
	BisectionBPS float64
}

// Blacklight returns the default configuration used by all experiments:
// geometry from the paper's §V, rates calibrated to the class of
// hardware (2.27 GHz Nehalem-EX, NUMAlink5).
func Blacklight() Config {
	return Config{
		CoresPerBlade:   16,
		ComputeBPS:      1e9,
		TaskOverheadSec: 2e-7,
		RemoteFactor:    4,
		CacheBytes:      4.5 * (1 << 20),
		BisectionBPS:    8e9,
	}
}

// WithHyperthreading returns the configuration with two hardware
// threads per core enabled: twice the threads share each blade, and each
// thread gets half a core's throughput scaled by smtGain (the modest SMT
// benefit two contexts extract from one memory-bound pipeline; ~1.0–1.1
// for streaming set kernels). The paper tried hyperthreading and
// found "it does not improve our program performance" — ablation A8
// reproduces that by comparing T threads on the base machine against 2T
// threads on this one.
func (c Config) WithHyperthreading(smtGain float64) Config {
	if smtGain <= 0 {
		smtGain = 1
	}
	c.CoresPerBlade *= 2
	c.ComputeBPS *= smtGain / 2
	return c
}

// RunTime is the simulated outcome of one run at a thread count.
type RunTime struct {
	Threads int
	// Seconds is the simulated wall-clock of the whole run.
	Seconds float64
	// RemoteBytes is the total traffic that crossed the interconnect.
	RemoteBytes float64
	// BandwidthBound reports whether any phase was limited by the
	// bisection floor rather than its workers.
	BandwidthBound bool
}

// Simulate replays a recorded trace on cfg with the given thread count.
func Simulate(trace *perf.Collector, threads int, cfg Config) RunTime {
	if threads < 1 {
		threads = 1
	}
	out := RunTime{Threads: threads}
	if trace == nil {
		return out
	}
	for _, p := range trace.Phases {
		pt := simulatePhase(p, threads, cfg)
		out.Seconds += pt.seconds
		out.RemoteBytes += pt.remoteBytes
		out.BandwidthBound = out.BandwidthBound || pt.bandwidthBound
	}
	return out
}

// Speedup simulates the trace at every requested thread count and
// returns times plus speedups relative to the 1-thread simulation, the
// paper's figures' y-axis.
func Speedup(trace *perf.Collector, threadCounts []int, cfg Config) ([]RunTime, []float64) {
	base := Simulate(trace, 1, cfg)
	times := make([]RunTime, len(threadCounts))
	speedups := make([]float64, len(threadCounts))
	for i, t := range threadCounts {
		times[i] = Simulate(trace, t, cfg)
		if times[i].Seconds > 0 {
			speedups[i] = base.Seconds / times[i].Seconds
		}
	}
	return times, speedups
}

type phaseTime struct {
	seconds        float64
	remoteBytes    float64
	bandwidthBound bool
}

// missRatio maps a task's parent working set U against cache capacity C
// with a Hill-type threshold curve, U³/(U³+C³): working sets well under
// capacity stay essentially resident (miss → 0), working sets well past
// it miss on essentially every access (miss → 1), with the knee at C.
// Caching is a capacity cliff, not a linear blend — a sharp curve is
// what lets a 3× footprint difference between representations produce
// the order-of-magnitude scalability split the paper reports.
func missRatio(u, c float64) float64 {
	if u <= 0 {
		return 0
	}
	u3 := u * u * u
	c3 := c * c * c
	return u3 / (u3 + c3)
}

func simulatePhase(p *perf.Phase, threads int, cfg Config) phaseTime {
	n := p.Tasks()
	serial := float64(p.Serial) / cfg.ComputeBPS
	if n == 0 {
		return phaseTime{seconds: serial}
	}
	blades := (threads + cfg.CoresPerBlade - 1) / cfg.CoresPerBlade
	remoteFrac := float64(blades-1) / float64(blades)
	missRatio := missRatio(float64(p.UniqueParent), cfg.CacheBytes)
	if !p.Shared {
		remoteFrac = 0
	}

	// Per-task simulated durations and total missed traffic.
	durations := make([]float64, n)
	var missedBytes float64
	for i := 0; i < n; i++ {
		miss := float64(p.Remote[i]) * remoteFrac * missRatio
		missedBytes += miss
		durations[i] = cfg.TaskOverheadSec +
			float64(p.Work[i])/cfg.ComputeBPS +
			miss*(cfg.RemoteFactor-1)/cfg.ComputeBPS
	}

	span := runSchedule(durations, threads, p.Schedule)
	floor := missedBytes / cfg.BisectionBPS
	pt := phaseTime{remoteBytes: missedBytes}
	if floor > span {
		pt.seconds = floor + serial
		pt.bandwidthBound = true
	} else {
		pt.seconds = span + serial
	}
	return pt
}

// workerHeap orders simulated workers by their next-free time, breaking
// ties by id for determinism.
type workerHeap []workerClock

type workerClock struct {
	id   int
	free float64
}

func (h workerHeap) Len() int { return len(h) }
func (h workerHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].id < h[j].id
}
func (h workerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x any)   { *h = append(*h, x.(workerClock)) }
func (h *workerHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// runSchedule replays the loop's chunk hand-out on simulated worker
// clocks and returns the makespan. It uses the very same Chunker the
// real Team uses, so schedule semantics cannot drift between execution
// and simulation.
func runSchedule(durations []float64, threads int, s sched.Schedule) float64 {
	n := len(durations)
	p := threads
	if p > n {
		p = n
	}
	if p == 1 {
		total := 0.0
		for _, d := range durations {
			total += d
		}
		return total
	}
	ch := sched.NewChunker(n, p, s)
	h := make(workerHeap, p)
	for w := 0; w < p; w++ {
		h[w] = workerClock{id: w}
	}
	heap.Init(&h)
	makespan := 0.0
	for {
		wc := heap.Pop(&h).(workerClock)
		lo, hi, ok := ch.Next(wc.id)
		if !ok {
			// This worker is done; if every other worker is also
			// drained the loop ends when the heap can make no progress.
			if wc.free > makespan {
				makespan = wc.free
			}
			if h.Len() == 0 {
				return makespan
			}
			continue
		}
		for i := lo; i < hi; i++ {
			wc.free += durations[i]
		}
		heap.Push(&h, wc)
	}
}

// Describe formats the machine configuration for report headers.
func (c Config) Describe() string {
	return fmt.Sprintf("blades of %d cores, %.1f GB/s/core combine rate, remote×%.1f, %.0f MB blade cache, %.1f GB/s bisection",
		c.CoresPerBlade, c.ComputeBPS/1e9, c.RemoteFactor, c.CacheBytes/(1<<20), c.BisectionBPS/1e9)
}
