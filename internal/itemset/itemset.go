// Package itemset defines items and itemsets, the basic vocabulary of
// frequent itemset mining, together with the ordering and prefix operations
// that candidate generation in both Apriori and Eclat rely on.
//
// An Item is a dense non-negative integer code. Databases recode their raw
// item identifiers to this dense space (see package dataset), which keeps
// itemsets small and lets vertical representations be indexed by item.
//
// An Itemset is always kept sorted ascending; every constructor and
// operation in this package preserves that invariant. Sortedness is what
// makes prefix sharing — the generation rule of both miners — a O(k)
// comparison instead of a set operation.
package itemset

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// Item is a dense item code. Items are compared by their integer value;
// the mining algorithms assume candidates are generated in this order.
type Item = uint32

// Itemset is a sorted, duplicate-free set of items.
type Itemset []Item

// New returns a sorted, deduplicated itemset built from items.
// The input slice is not modified.
func New(items ...Item) Itemset {
	if len(items) == 0 {
		return Itemset{}
	}
	s := make(Itemset, len(items))
	copy(s, items)
	slices.Sort(s)
	// Deduplicate in place.
	w := 1
	for r := 1; r < len(s); r++ {
		if s[r] != s[w-1] {
			s[w] = s[r]
			w++
		}
	}
	return s[:w]
}

// Clone returns an independent copy of s.
func (s Itemset) Clone() Itemset {
	c := make(Itemset, len(s))
	copy(c, s)
	return c
}

// Len returns the number of items; a k-itemset has Len() == k.
func (s Itemset) Len() int { return len(s) }

// Contains reports whether item x is a member of s, by binary search.
func (s Itemset) Contains(x Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// IsSorted reports whether s satisfies the package invariant
// (strictly ascending). Intended for tests and debug assertions.
func (s Itemset) IsSorted() bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same items.
func (s Itemset) Equal(t Itemset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Compare orders itemsets lexicographically, shorter-prefix first.
// It returns -1, 0, or +1.
func (s Itemset) Compare(t Itemset) int {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		switch {
		case s[i] < t[i]:
			return -1
		case s[i] > t[i]:
			return 1
		}
	}
	switch {
	case len(s) < len(t):
		return -1
	case len(s) > len(t):
		return 1
	}
	return 0
}

// SharesPrefix reports whether s and t have identical first k items.
// Both must have at least k items.
func (s Itemset) SharesPrefix(t Itemset, k int) bool {
	if len(s) < k || len(t) < k {
		return false
	}
	for i := 0; i < k; i++ {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Join merges two k-itemsets that share a (k-1)-prefix into the (k+1)
// candidate, per the classic Apriori/Eclat generation rule. It returns
// ok=false when the precondition does not hold (different lengths, prefix
// mismatch, or equal last items).
func (s Itemset) Join(t Itemset) (Itemset, bool) {
	k := len(s)
	if k == 0 || len(t) != k || !s.SharesPrefix(t, k-1) || s[k-1] == t[k-1] {
		return nil, false
	}
	c := make(Itemset, k+1)
	copy(c, s[:k-1])
	if s[k-1] < t[k-1] {
		c[k-1], c[k] = s[k-1], t[k-1]
	} else {
		c[k-1], c[k] = t[k-1], s[k-1]
	}
	return c, true
}

// Extend returns a new itemset with x appended. x must be greater than the
// last item of s; Extend panics otherwise, since a violation means the
// caller has broken the candidate-generation order invariant.
func (s Itemset) Extend(x Item) Itemset {
	if len(s) > 0 && x <= s[len(s)-1] {
		panic(fmt.Sprintf("itemset: Extend(%d) violates ascending order (last=%d)", x, s[len(s)-1]))
	}
	c := make(Itemset, len(s)+1)
	copy(c, s)
	c[len(s)] = x
	return c
}

// Union returns the set union of s and t as a new itemset.
func (s Itemset) Union(t Itemset) Itemset {
	c := make(Itemset, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			c = append(c, s[i])
			i++
		case s[i] > t[j]:
			c = append(c, t[j])
			j++
		default:
			c = append(c, s[i])
			i++
			j++
		}
	}
	c = append(c, s[i:]...)
	c = append(c, t[j:]...)
	return c
}

// Intersect returns the set intersection of s and t as a new itemset.
func (s Itemset) Intersect(t Itemset) Itemset {
	var c Itemset
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			c = append(c, s[i])
			i++
			j++
		}
	}
	return c
}

// Minus returns s \ t as a new itemset.
func (s Itemset) Minus(t Itemset) Itemset {
	var c Itemset
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			c = append(c, s[i])
			i++
		case s[i] > t[j]:
			j++
		default:
			i++
			j++
		}
	}
	c = append(c, s[i:]...)
	return c
}

// IsSubsetOf reports whether every item of s is in t.
func (s Itemset) IsSubsetOf(t Itemset) bool {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			i++
			j++
		case s[i] > t[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s)
}

// Subsets of size k-1: for a k-itemset, AllButOne calls f with each
// (k-1)-subset, reusing a single scratch buffer. f must not retain the
// slice past the call. Used by Apriori's subset-pruning step.
func (s Itemset) AllButOne(f func(Itemset)) {
	if len(s) == 0 {
		return
	}
	buf := make(Itemset, len(s)-1)
	for skip := range s {
		w := 0
		for i, x := range s {
			if i == skip {
				continue
			}
			buf[w] = x
			w++
		}
		f(buf)
	}
}

// Key returns a canonical string encoding of s, usable as a map key.
// The encoding is compact and unambiguous (little-endian varint-free:
// fixed 4-byte big-endian per item).
func (s Itemset) Key() string {
	b := make([]byte, 4*len(s))
	for i, x := range s {
		b[4*i] = byte(x >> 24)
		b[4*i+1] = byte(x >> 16)
		b[4*i+2] = byte(x >> 8)
		b[4*i+3] = byte(x)
	}
	return string(b)
}

// FromKey decodes an itemset previously encoded with Key.
func FromKey(k string) (Itemset, error) {
	if len(k)%4 != 0 {
		return nil, fmt.Errorf("itemset: malformed key of length %d", len(k))
	}
	s := make(Itemset, len(k)/4)
	for i := range s {
		s[i] = uint32(k[4*i])<<24 | uint32(k[4*i+1])<<16 | uint32(k[4*i+2])<<8 | uint32(k[4*i+3])
	}
	if !s.IsSorted() {
		return nil, fmt.Errorf("itemset: key decodes to unsorted itemset %v", s)
	}
	return s, nil
}

// String renders the itemset in the conventional {a, b, c} form.
func (s Itemset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, x := range s {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(strconv.FormatUint(uint64(x), 10))
	}
	sb.WriteByte('}')
	return sb.String()
}

// Sort sorts a slice of itemsets into the canonical Compare order.
// Useful for making mining output deterministic regardless of the
// parallel schedule that produced it.
func Sort(sets []Itemset) {
	slices.SortFunc(sets, Itemset.Compare)
}
