package itemset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDeduplicates(t *testing.T) {
	cases := []struct {
		in   []Item
		want Itemset
	}{
		{nil, Itemset{}},
		{[]Item{5}, Itemset{5}},
		{[]Item{3, 1, 2}, Itemset{1, 2, 3}},
		{[]Item{2, 2, 2}, Itemset{2}},
		{[]Item{9, 1, 9, 1, 5}, Itemset{1, 5, 9}},
	}
	for _, c := range cases {
		got := New(c.in...)
		if !got.Equal(c.want) {
			t.Errorf("New(%v) = %v, want %v", c.in, got, c.want)
		}
		if !got.IsSorted() {
			t.Errorf("New(%v) = %v is not sorted", c.in, got)
		}
	}
}

func TestNewDoesNotModifyInput(t *testing.T) {
	in := []Item{3, 1, 2}
	New(in...)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("New modified its input: %v", in)
	}
}

func TestContains(t *testing.T) {
	s := New(2, 4, 6, 8)
	for _, x := range []Item{2, 4, 6, 8} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false, want true", x)
		}
	}
	for _, x := range []Item{0, 1, 3, 5, 7, 9, 100} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true, want false", x)
		}
	}
	if (Itemset{}).Contains(0) {
		t.Error("empty set Contains(0) = true")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Itemset
		want int
	}{
		{New(), New(), 0},
		{New(1), New(), 1},
		{New(), New(1), -1},
		{New(1, 2), New(1, 2), 0},
		{New(1, 2), New(1, 3), -1},
		{New(1, 3), New(1, 2), 1},
		{New(1), New(1, 2), -1},
		{New(1, 2, 3), New(2), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestJoin(t *testing.T) {
	a := New(1, 2, 5)
	b := New(1, 2, 7)
	got, ok := a.Join(b)
	if !ok || !got.Equal(New(1, 2, 5, 7)) {
		t.Errorf("Join = %v, %v; want {1,2,5,7}, true", got, ok)
	}
	// Order of operands must not matter.
	got2, ok2 := b.Join(a)
	if !ok2 || !got2.Equal(got) {
		t.Errorf("Join not symmetric: %v vs %v", got, got2)
	}
	// Prefix mismatch.
	if _, ok := New(1, 2, 5).Join(New(1, 3, 7)); ok {
		t.Error("Join accepted mismatched prefix")
	}
	// Same last item.
	if _, ok := New(1, 2, 5).Join(New(1, 2, 5)); ok {
		t.Error("Join accepted identical itemsets")
	}
	// Length mismatch.
	if _, ok := New(1, 2).Join(New(1, 2, 3)); ok {
		t.Error("Join accepted different lengths")
	}
	// Empty.
	if _, ok := New().Join(New()); ok {
		t.Error("Join accepted empty itemsets")
	}
	// 1-itemsets share the empty prefix.
	c, ok := New(4).Join(New(2))
	if !ok || !c.Equal(New(2, 4)) {
		t.Errorf("Join of 1-itemsets = %v, %v", c, ok)
	}
}

func TestExtend(t *testing.T) {
	s := New(1, 3)
	e := s.Extend(7)
	if !e.Equal(New(1, 3, 7)) {
		t.Errorf("Extend = %v", e)
	}
	if !s.Equal(New(1, 3)) {
		t.Errorf("Extend modified receiver: %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Error("Extend with out-of-order item did not panic")
		}
	}()
	s.Extend(2)
}

func TestSetAlgebra(t *testing.T) {
	a := New(1, 2, 3, 5, 8)
	b := New(2, 3, 5, 7)
	if got := a.Union(b); !got.Equal(New(1, 2, 3, 5, 7, 8)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New(2, 3, 5)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(New(1, 8)) {
		t.Errorf("Minus = %v", got)
	}
	if got := b.Minus(a); !got.Equal(New(7)) {
		t.Errorf("Minus = %v", got)
	}
}

func TestIsSubsetOf(t *testing.T) {
	cases := []struct {
		a, b Itemset
		want bool
	}{
		{New(), New(), true},
		{New(), New(1, 2), true},
		{New(1), New(1, 2), true},
		{New(2), New(1, 2), true},
		{New(1, 2), New(1, 2), true},
		{New(1, 3), New(1, 2), false},
		{New(1, 2, 3), New(1, 2), false},
		{New(0), New(1, 2), false},
	}
	for _, c := range cases {
		if got := c.a.IsSubsetOf(c.b); got != c.want {
			t.Errorf("%v.IsSubsetOf(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAllButOne(t *testing.T) {
	s := New(1, 2, 3)
	var got []Itemset
	s.AllButOne(func(sub Itemset) { got = append(got, sub.Clone()) })
	want := []Itemset{New(2, 3), New(1, 3), New(1, 2)}
	if len(got) != len(want) {
		t.Fatalf("AllButOne produced %d subsets, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("subset %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Empty set yields nothing.
	calls := 0
	New().AllButOne(func(Itemset) { calls++ })
	if calls != 0 {
		t.Errorf("AllButOne on empty set made %d calls", calls)
	}
	// Singleton yields the empty subset once.
	calls = 0
	New(9).AllButOne(func(sub Itemset) {
		calls++
		if len(sub) != 0 {
			t.Errorf("singleton subset = %v, want empty", sub)
		}
	})
	if calls != 1 {
		t.Errorf("AllButOne on singleton made %d calls, want 1", calls)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	sets := []Itemset{New(), New(0), New(1, 2, 3), New(0, 1<<31, 1<<31+5)}
	for _, s := range sets {
		got, err := FromKey(s.Key())
		if err != nil {
			t.Fatalf("FromKey(%v.Key()): %v", s, err)
		}
		if !got.Equal(s) {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
	if _, err := FromKey("abc"); err == nil {
		t.Error("FromKey accepted malformed key")
	}
	// Key of an unsorted encoding must be rejected.
	bad := string([]byte{0, 0, 0, 2, 0, 0, 0, 1})
	if _, err := FromKey(bad); err == nil {
		t.Error("FromKey accepted unsorted key")
	}
}

func TestString(t *testing.T) {
	if got := New(3, 1).String(); got != "{1, 3}" {
		t.Errorf("String = %q", got)
	}
	if got := New().String(); got != "{}" {
		t.Errorf("String = %q", got)
	}
}

func TestSortItemsets(t *testing.T) {
	sets := []Itemset{New(2), New(1, 5), New(1), New(1, 2)}
	Sort(sets)
	want := []Itemset{New(1), New(1, 2), New(1, 5), New(2)}
	for i := range want {
		if !sets[i].Equal(want[i]) {
			t.Errorf("Sort[%d] = %v, want %v", i, sets[i], want[i])
		}
	}
}

// randomSet builds a random itemset with items below n.
func randomSet(r *rand.Rand, n int) Itemset {
	k := r.Intn(8)
	items := make([]Item, k)
	for i := range items {
		items[i] = Item(r.Intn(n))
	}
	return New(items...)
}

func TestQuickSetLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	// |A ∩ B| + |A ∪ B| = |A| + |B|
	law := func(seedA, seedB int64) bool {
		a := randomSet(rand.New(rand.NewSource(seedA)), 30)
		b := randomSet(rand.New(rand.NewSource(seedB)), 30)
		return a.Intersect(b).Len()+a.Union(b).Len() == a.Len()+b.Len()
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("inclusion-exclusion law: %v", err)
	}
	// A \ B is disjoint from B and a subset of A; (A\B) ∪ (A∩B) = A.
	law2 := func(seedA, seedB int64) bool {
		a := randomSet(rand.New(rand.NewSource(seedA)), 30)
		b := randomSet(rand.New(rand.NewSource(seedB)), 30)
		d := a.Minus(b)
		if d.Intersect(b).Len() != 0 || !d.IsSubsetOf(a) {
			return false
		}
		return d.Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(law2, cfg); err != nil {
		t.Errorf("difference law: %v", err)
	}
	// Union commutative, intersect commutative.
	law3 := func(seedA, seedB int64) bool {
		a := randomSet(rand.New(rand.NewSource(seedA)), 30)
		b := randomSet(rand.New(rand.NewSource(seedB)), 30)
		return a.Union(b).Equal(b.Union(a)) && a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(law3, cfg); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	// Key round trip for arbitrary sets.
	law4 := func(seed int64) bool {
		a := randomSet(rand.New(rand.NewSource(seed)), 1000)
		got, err := FromKey(a.Key())
		return err == nil && got.Equal(a)
	}
	if err := quick.Check(law4, cfg); err != nil {
		t.Errorf("key round trip: %v", err)
	}
	// Join of sibling extensions reproduces Union.
	law5 := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomSet(r, 20)
		var x, y Item = Item(21 + r.Intn(10)), Item(32 + r.Intn(10))
		a, b := p.Extend(x), p.Extend(y)
		j, ok := a.Join(b)
		return ok && j.Equal(a.Union(b))
	}
	if err := quick.Check(law5, cfg); err != nil {
		t.Errorf("join/union law: %v", err)
	}
}

func BenchmarkIntersect(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomSet(r, 10000)
	for len(a) < 6 {
		a = randomSet(r, 10000)
	}
	c := randomSet(r, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Intersect(c)
	}
}
