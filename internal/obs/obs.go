// Package obs is the engine's structured observability layer: a typed
// event stream emitted live by the miners, the run-control layer, and
// the public facade, describing what the run is doing while it does it —
// run start/end, level/class boundaries with candidate and frequent
// counts, live payload bytes, budget warnings, degrade-to-diffset
// transitions, per-worker scheduler load, and the terminal stop cause.
//
// The quantities mirror the paper's analysis: per-level live payload
// bytes are the §V-A memory-footprint argument (why tidset/bitvector
// Apriori dies past one blade), per-worker busy-time imbalance is the
// §IV static-vs-dynamic scheduling argument, and candidate/frequent
// counts per level are the Table IV series — but measured on a real run
// instead of replayed post-hoc from a perf trace.
//
// An Observer is any sink for the stream. A nil Observer is valid
// everywhere and disables observation; emit sites go through Emit, which
// performs the nil check, mirroring perf.Collector's nil idiom so the
// hot paths pay a single branch when observation is off. Observer
// implementations must be safe for concurrent use: level events come
// from the mining coordinator, but budget warnings fire from whichever
// worker goroutine crossed the threshold.
//
// The package depends only on the standard library; sinks that encode,
// serve, or aggregate the stream live in obs/export.
package obs

import "sync"

// Type names an event kind. The values are the wire names used by the
// JSON-lines sink (obs/export), so they are part of the event schema.
type Type string

// The event kinds, in the order a complete run emits them: one
// run_start; per level/class a level_start, the phase_end of each
// scheduler loop it ran, and a level_end; interleaved budget_warning,
// degraded and stop events as the run's control plane acts; one run_end.
const (
	// RunStart opens the stream: algorithm, representation, workers,
	// dataset and absolute support of the run.
	RunStart Type = "run_start"
	// LevelStart announces one level/class expansion: the level (itemset
	// size being produced, 0 when the stage spans sizes), the phase name,
	// and the candidate count about to be evaluated (with the number
	// already removed by subset pruning, for Apriori).
	LevelStart Type = "level_start"
	// LevelEnd closes a level: frequent survivors, live payload bytes
	// after the level committed, and the level's wall time.
	LevelEnd Type = "level_end"
	// PhaseEnd reports one scheduler loop's per-worker load: busy time,
	// tasks executed and chunks claimed per worker, plus the max/mean
	// busy-time imbalance — the paper's load-balance quantity, measured.
	PhaseEnd Type = "phase_end"
	// BudgetWarning fires once per configured threshold fraction as the
	// memory or itemsets budget fills.
	BudgetWarning Type = "budget_warning"
	// Degraded marks the mid-run tidset/bitvector→diffset switch.
	Degraded Type = "degraded"
	// Stop reports why an incomplete run ended: "canceled", "deadline",
	// "budget:memory", "budget:itemsets", "budget:duration",
	// "worker-panic", or "error".
	Stop Type = "stop"
	// KernelCounters reports the run's per-kernel operation totals
	// (internal/kcount: tidset merge/gallop steps, bitvector word
	// ANDs/popcounts, nodes and bytes materialized per representation,
	// hybrid flips) as a flat name→count map. Emitted once, before
	// run_end, when an observer is attached.
	KernelCounters Type = "kernel_counters"
	// RunEnd closes the stream with the run's totals, peak live payload
	// bytes, and completion status. It is emitted for complete and
	// incomplete runs alike.
	RunEnd Type = "run_end"
)

// WorkerLoad is one worker's share of a scheduler loop.
type WorkerLoad struct {
	// Worker is the team-local worker index.
	Worker int `json:"worker"`
	// BusyNS is the time the worker spent executing chunk bodies, in
	// nanoseconds (hand-out waits excluded).
	BusyNS int64 `json:"busy_ns"`
	// Tasks is the number of loop iterations the worker executed.
	Tasks int64 `json:"tasks"`
	// Chunks is the number of chunks the worker claimed.
	Chunks int64 `json:"chunks"`
	// Spawned is the number of stealable subtasks the worker enqueued
	// during a work-stealing loop; zero in chunked loops.
	Spawned int64 `json:"spawned,omitempty"`
	// Stolen is the number of tasks the worker ran after taking them
	// from another worker's deque; zero in chunked loops.
	Stolen int64 `json:"stolen,omitempty"`
}

// Event is one observation. It is a flat union: Type says which fields
// are meaningful, unused fields stay zero and are omitted on the wire.
// Events are values; sinks may retain them.
type Event struct {
	Type Type `json:"type"`
	// TimeUnixNS is a wall-clock stamp. Emit sites leave it zero; the
	// encoding sinks stamp it on write.
	TimeUnixNS int64 `json:"time_unix_ns,omitempty"`
	// RunID is the run correlation identifier: the serving layer's
	// registry run ID (fim.Options.RunID), stamped onto every event of
	// the run by WithRunID so a metrics anomaly, an SSE stream, a run
	// report and a flight-recorder entry can all be joined on one key.
	// Zero when the run has no external identity (one-shot fimmine).
	RunID int64 `json:"run_id,omitempty"`

	// Run identity (run_start).
	Dataset        string `json:"dataset,omitempty"`
	Algorithm      string `json:"algorithm,omitempty"`
	Representation string `json:"representation,omitempty"`
	Workers        int    `json:"workers,omitempty"`
	MinSupport     int    `json:"min_support,omitempty"`
	Transactions   int    `json:"transactions,omitempty"`

	// Level and scheduler-phase coordinates (level_*, phase_end).
	Level      int          `json:"level,omitempty"`
	Phase      string       `json:"phase,omitempty"`
	Schedule   string       `json:"schedule,omitempty"`
	Candidates int          `json:"candidates,omitempty"`
	Pruned     int          `json:"pruned,omitempty"`
	Frequent   int          `json:"frequent,omitempty"`
	LiveBytes  int64        `json:"live_bytes,omitempty"`
	ElapsedNS  int64        `json:"elapsed_ns,omitempty"`
	Load       []WorkerLoad `json:"load,omitempty"`
	Imbalance  float64      `json:"imbalance,omitempty"`

	// Budget accounting (budget_warning).
	Resource string  `json:"resource,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
	Used     int64   `json:"used,omitempty"`
	Limit    int64   `json:"limit,omitempty"`

	// Counters carries the kernel operation totals (kernel_counters),
	// keyed by the wire names of kcount.Stats.Map.
	Counters map[string]int64 `json:"counters,omitempty"`

	// Outcome (stop, run_end).
	Reason        string `json:"reason,omitempty"`
	Err           string `json:"error,omitempty"`
	Itemsets      int64  `json:"itemsets,omitempty"`
	MaxK          int    `json:"max_k,omitempty"`
	PeakLiveBytes int64  `json:"peak_live_bytes,omitempty"`
	Incomplete    bool   `json:"incomplete,omitempty"`
	DegradedRun   bool   `json:"degraded,omitempty"`
}

// Observer receives the event stream of one mining run. Implementations
// must be safe for concurrent use; Event must not block for long, since
// budget warnings fire from mining workers.
type Observer interface {
	Event(Event)
}

// Emit sends e to o if o is non-nil — the single-branch no-op path the
// miners use, mirroring the nil-*perf.Collector idiom.
func Emit(o Observer, e Event) {
	if o != nil {
		o.Event(e)
	}
}

// Recorder is an Observer that retains every event in order of arrival.
// It is safe for concurrent use; tests and the report builder use it.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Event appends e.
func (r *Recorder) Event(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// ByType returns the recorded events of one kind, in arrival order.
func (r *Recorder) ByType(t Type) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// runIDTagger stamps a run correlation ID onto every event passing
// through it.
type runIDTagger struct {
	o  Observer
	id int64
}

func (t *runIDTagger) Event(e Event) {
	if e.RunID == 0 {
		e.RunID = t.id
	}
	t.o.Event(e)
}

// WithRunID wraps o so every event it receives carries the run
// correlation ID id (events already tagged keep their own). A nil o or
// zero id returns o unchanged.
func WithRunID(o Observer, id int64) Observer {
	if o == nil || id == 0 {
		return o
	}
	return &runIDTagger{o: o, id: id}
}

// multi fans events out to several observers.
type multi struct{ obs []Observer }

func (m *multi) Event(e Event) {
	for _, o := range m.obs {
		o.Event(e)
	}
}

// Multi combines observers into one. Nil entries are skipped; with zero
// or one live observer it returns nil or that observer unwrapped, so the
// no-op and single-sink paths stay as cheap as before.
func Multi(os ...Observer) Observer {
	var live []Observer
	for _, o := range os {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multi{obs: live}
}
