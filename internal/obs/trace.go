// The span spine of the observability layer: where obs.Event is a
// point-in-time record, a Span is an interval — the run, one
// level/class stage, or one scheduler chunk executed by one worker.
// Spans are what make the paper's §IV scheduling argument visible as a
// picture: one timeline row per worker, chunks laid end to end, the
// static-schedule straggler tail appearing as one long bar while the
// dynamic rows stay dense. obs/export renders a recorded run as Chrome
// trace-event JSON loadable in Perfetto.

package obs

import (
	"sync"
	"time"
)

// Span categories. Cat says which coordinates of a Span are meaningful.
const (
	// SpanRun covers the whole mining run (coordinator row).
	SpanRun = "run"
	// SpanLevel covers one level/class stage, bounded by its
	// level_start/level_end events (coordinator row).
	SpanLevel = "level"
	// SpanChunk covers one scheduler chunk executed by one worker
	// (worker row); Lo/Hi are the chunk's iteration range.
	SpanChunk = "chunk"
)

// Span is one recorded interval. Worker is the team-local worker index
// for chunk spans and -1 for coordinator-row spans (run, level).
type Span struct {
	Name   string `json:"name"`
	Cat    string `json:"cat"`
	Worker int    `json:"worker"`
	// StartNS is a wall-clock stamp (unix nanoseconds); DurNS the
	// span's duration.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Lo, Hi carry a chunk span's iteration range; Tasks its iteration
	// count (Hi-Lo for a completed chunk, less for one cut short by a
	// stop check).
	Lo    int   `json:"lo,omitempty"`
	Hi    int   `json:"hi,omitempty"`
	Tasks int64 `json:"tasks,omitempty"`
}

// DefaultSpanLimit bounds a TraceRecorder's retained spans. A chunk
// span is ~80 bytes, so the cap holds the trace near 100 MB worst
// case; past it new spans are counted but dropped, keeping a
// pathological run (dynamic chunk 1 over millions of tasks) from
// exhausting memory to observe itself.
const DefaultSpanLimit = 1 << 20

// TraceRecorder records the span timeline of one mining run, race-free:
// chunk spans arrive concurrently from the scheduler's workers (it
// implements sched's chunk-tracer hook), run and level spans from the
// coordinator's event stream (it implements Observer, so it composes
// with other sinks through Multi). A nil *TraceRecorder is valid
// everywhere and records nothing.
type TraceRecorder struct {
	mu      sync.Mutex
	limit   int
	spans   []Span
	dropped int64
	workers int // max worker index seen + 1
	opened  map[string]levelOpen
	runOpen bool
	runAt   time.Time
	run     Event // run_start identity, for labeling
}

type levelOpen struct {
	at    time.Time
	level int
}

// NewTraceRecorder returns an empty recorder with DefaultSpanLimit.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{limit: DefaultSpanLimit, opened: map[string]levelOpen{}}
}

// SetLimit caps retained spans (0 or negative restores the default).
// Call before the run starts.
func (t *TraceRecorder) SetLimit(n int) {
	if n <= 0 {
		n = DefaultSpanLimit
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// add appends s, honoring the span cap.
func (t *TraceRecorder) add(s Span) {
	if len(t.spans) >= t.limit {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// Event folds the run's event stream into coordinator-row spans: a
// level_start/level_end pair becomes one SpanLevel, the run_start/
// run_end pair one SpanRun. Timestamps are stamped at arrival, which
// is exact enough for the millisecond-scale stages the timeline shows.
func (t *TraceRecorder) Event(e Event) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	switch e.Type {
	case RunStart:
		t.runOpen = true
		t.runAt = now
		t.run = e
	case LevelStart:
		t.opened[e.Phase] = levelOpen{at: now, level: e.Level}
	case LevelEnd:
		if o, ok := t.opened[e.Phase]; ok {
			delete(t.opened, e.Phase)
			start := o.at
			// Prefer the miner's own wall-time measurement when the
			// event carries one: it brackets the stage exactly.
			if e.ElapsedNS > 0 {
				start = now.Add(-time.Duration(e.ElapsedNS))
			}
			t.add(Span{Name: e.Phase, Cat: SpanLevel, Worker: -1,
				StartNS: start.UnixNano(), DurNS: now.Sub(start).Nanoseconds()})
		}
	case RunEnd:
		if t.runOpen {
			t.runOpen = false
			name := t.run.Algorithm
			if name == "" {
				name = e.Algorithm
			}
			if name == "" {
				name = "run"
			}
			start := t.runAt
			if e.ElapsedNS > 0 {
				start = now.Add(-time.Duration(e.ElapsedNS))
			}
			t.add(Span{Name: name, Cat: SpanRun, Worker: -1,
				StartNS: start.UnixNano(), DurNS: now.Sub(start).Nanoseconds()})
		}
	}
}

// ChunkSpan records one scheduler chunk [lo, hi) executed by worker w —
// the sched.ChunkTracer hook, called from worker goroutines with the
// same start time and busy duration the load metrics account.
func (t *TraceRecorder) ChunkSpan(phase string, w, lo, hi int, tasks int64, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if w >= t.workers {
		t.workers = w + 1
	}
	t.add(Span{Name: phase, Cat: SpanChunk, Worker: w,
		StartNS: start.UnixNano(), DurNS: dur.Nanoseconds(),
		Lo: lo, Hi: hi, Tasks: tasks})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans, in arrival order.
func (t *TraceRecorder) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Workers returns the number of worker rows the timeline needs (max
// worker index seen across chunk spans, plus one).
func (t *TraceRecorder) Workers() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.workers
}

// Dropped returns how many spans the cap discarded.
func (t *TraceRecorder) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Run returns the run_start event the recorder saw (zero Event if the
// run never started), for labeling exported timelines.
func (t *TraceRecorder) Run() Event {
	if t == nil {
		return Event{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.run
}

// BusyByWorker sums chunk-span durations per worker row — the
// timeline's own account of per-worker busy time, which the export
// validator cross-checks against the phase_end load metrics.
func (t *TraceRecorder) BusyByWorker() []time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]time.Duration, t.workers)
	for _, s := range t.spans {
		if s.Cat == SpanChunk && s.Worker >= 0 && s.Worker < len(out) {
			out[s.Worker] += time.Duration(s.DurNS)
		}
	}
	return out
}
