package obs

import (
	"sync"
	"testing"
	"time"
)

// TestTraceRecorderSpans: the event stream yields run/level coordinator
// spans, chunk calls yield worker spans, and the per-worker busy sums
// match the recorded durations.
func TestTraceRecorderSpans(t *testing.T) {
	tr := NewTraceRecorder()
	tr.Event(Event{Type: RunStart, Algorithm: "eclat", Workers: 2})
	tr.Event(Event{Type: LevelStart, Level: 2, Phase: "eclat/pairs"})
	tr.ChunkSpan("eclat/pairs", 0, 0, 4, 4, time.Now(), 3*time.Millisecond)
	tr.ChunkSpan("eclat/pairs", 1, 4, 8, 4, time.Now(), 5*time.Millisecond)
	tr.ChunkSpan("eclat/pairs", 0, 8, 10, 2, time.Now(), 1*time.Millisecond)
	tr.Event(Event{Type: LevelEnd, Level: 2, Phase: "eclat/pairs", ElapsedNS: int64(9 * time.Millisecond)})
	tr.Event(Event{Type: RunEnd, Algorithm: "eclat", ElapsedNS: int64(12 * time.Millisecond)})

	spans := tr.Spans()
	var runs, levels, chunks int
	for _, s := range spans {
		switch s.Cat {
		case SpanRun:
			runs++
			if s.Worker != -1 || s.Name != "eclat" {
				t.Errorf("run span = %+v", s)
			}
			if s.DurNS < int64(12*time.Millisecond) {
				t.Errorf("run span duration %d below the event's ElapsedNS", s.DurNS)
			}
		case SpanLevel:
			levels++
			if s.Worker != -1 || s.Name != "eclat/pairs" {
				t.Errorf("level span = %+v", s)
			}
		case SpanChunk:
			chunks++
			if s.Worker < 0 || s.Hi <= s.Lo {
				t.Errorf("chunk span = %+v", s)
			}
		}
	}
	if runs != 1 || levels != 1 || chunks != 3 {
		t.Fatalf("spans: %d run, %d level, %d chunk; want 1/1/3", runs, levels, chunks)
	}
	if tr.Workers() != 2 {
		t.Errorf("Workers() = %d, want 2", tr.Workers())
	}
	busy := tr.BusyByWorker()
	if len(busy) != 2 || busy[0] != 4*time.Millisecond || busy[1] != 5*time.Millisecond {
		t.Errorf("BusyByWorker() = %v", busy)
	}
	if tr.Run().Algorithm != "eclat" {
		t.Errorf("Run() = %+v", tr.Run())
	}
}

// TestTraceRecorderUnpaired: a level_end without a level_start, or a
// run_end without a run_start, records nothing rather than garbage.
func TestTraceRecorderUnpaired(t *testing.T) {
	tr := NewTraceRecorder()
	tr.Event(Event{Type: LevelEnd, Phase: "ghost"})
	tr.Event(Event{Type: RunEnd})
	if n := len(tr.Spans()); n != 0 {
		t.Fatalf("unpaired ends produced %d spans", n)
	}
}

// TestTraceRecorderLimit: past the cap, spans are counted as dropped,
// not retained.
func TestTraceRecorderLimit(t *testing.T) {
	tr := NewTraceRecorder()
	tr.SetLimit(2)
	for i := 0; i < 5; i++ {
		tr.ChunkSpan("p", 0, i, i+1, 1, time.Now(), time.Microsecond)
	}
	if n := len(tr.Spans()); n != 2 {
		t.Errorf("retained %d spans past a cap of 2", n)
	}
	if d := tr.Dropped(); d != 3 {
		t.Errorf("Dropped() = %d, want 3", d)
	}
}

// TestTraceRecorderNil: every method is a safe no-op on a nil receiver.
func TestTraceRecorderNil(t *testing.T) {
	var tr *TraceRecorder
	tr.Event(Event{Type: RunStart})
	tr.ChunkSpan("p", 0, 0, 1, 1, time.Now(), 0)
	if tr.Spans() != nil || tr.Workers() != 0 || tr.Dropped() != 0 || tr.BusyByWorker() != nil {
		t.Error("nil recorder returned non-zero state")
	}
}

// TestTraceRecorderConcurrent exercises chunk recording from many
// goroutines against the coordinator's event stream (run with -race).
func TestTraceRecorderConcurrent(t *testing.T) {
	tr := NewTraceRecorder()
	tr.Event(Event{Type: RunStart, Algorithm: "eclat"})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.ChunkSpan("p", w, i, i+1, 1, time.Now(), time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	tr.Event(Event{Type: RunEnd, ElapsedNS: 1})
	if n := len(tr.Spans()); n != 4*200+1 {
		t.Fatalf("recorded %d spans, want %d", n, 4*200+1)
	}
	if tr.Workers() != 4 {
		t.Errorf("Workers() = %d, want 4", tr.Workers())
	}
}
