// Package metrics is the service-telemetry layer: a dependency-free
// metrics registry — atomic counters, gauges and fixed-bucket
// histograms, optionally labeled — with Prometheus text-exposition
// v0.0.4 rendering (WriteText) and a matching scrape parser/validator
// (ParseText) for CI and obsvalidate.
//
// Where internal/obs observes one run from the inside (events, spans,
// kernel counters), this package observes the *service* over time: the
// serving stack registers its admission, cache, queue, pool and SLO
// instruments here and exposes them at GET /metrics, turning the
// paper's per-run scalability quantities into continuously scrapeable
// time series.
//
// Label cardinality is bounded by construction: every labeled family
// carries a series cap, and once it is reached new label tuples are
// folded into the FoldValue ("other") series — on the designated fold
// label (Vec.Fold) or on every label — so a tenant explosion cannot
// turn the registry into an allocation attack on its own observer.
// Folding is deterministic: the first cap distinct tuples get their own
// series, every later tuple lands in the same overflow series.
//
// All instruments are safe for concurrent use and lock-free on the hot
// path (one atomic add per counter increment or histogram observation);
// the registry lock is taken only when a new series is materialized and
// when the exposition is rendered. Rendering is byte-stable for a fixed
// state: families sort by name, series by label tuple.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// FoldValue is the label value that overflow series are folded into
// once a family reaches its series cap.
const FoldValue = "other"

// DefaultSeriesCap bounds the distinct label tuples of one family when
// the registry has no explicit cap.
const DefaultSeriesCap = 256

// kind is a family's metric type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing count. The zero value is ready
// to use (a registered counter comes from Registry.Counter).
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are dropped: a counter is monotone by
// contract, and the scrape validator enforces it across scrapes.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat is a float64 accumulated with CAS — the histogram sum.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram counts observations into fixed buckets. Bounds are the
// inclusive upper edges (le semantics), ascending; observations above
// the last bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var t int64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// cumulative returns the per-bound cumulative counts plus the total.
func (h *Histogram) cumulative() (cum []int64, total int64) {
	cum = make([]int64, len(h.bounds))
	for i := range h.counts {
		total += h.counts[i].Load()
		if i < len(cum) {
			cum[i] = total
		}
	}
	return cum, total
}

// DefBuckets are general-purpose latency bounds in seconds.
var DefBuckets = []float64{.001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60}

// child is one materialized series of a family.
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric: type, help, label schema and its series.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	foldIdx int // label index folded at the cap; -1 folds every label
	cap     int
	buckets []float64 // histogram bounds

	fn func() float64 // func-backed single series (nil otherwise)

	mu       sync.Mutex
	children map[string]*child
}

const keySep = "\xff"

// getChild returns (materializing if needed) the series for values,
// folding into the overflow series once the cap is reached.
func (f *family) getChild(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, keySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	if len(f.labels) > 0 && f.cap > 0 && len(f.children) >= f.cap {
		folded := make([]string, len(values))
		copy(folded, values)
		if f.foldIdx >= 0 {
			folded[f.foldIdx] = FoldValue
		} else {
			for i := range folded {
				folded[i] = FoldValue
			}
		}
		key = strings.Join(folded, keySep)
		if c, ok := f.children[key]; ok {
			return c
		}
		values = folded // the overflow series itself may materialize past the cap
	}
	vals := make([]string, len(values))
	copy(vals, values)
	c := &child{values: vals}
	switch f.kind {
	case kindCounter:
		c.c = &Counter{}
	case kindGauge:
		c.g = &Gauge{}
	case kindHistogram:
		c.h = &Histogram{bounds: f.buckets, counts: make([]atomic.Int64, len(f.buckets)+1)}
	}
	f.children[key] = c
	return c
}

// snapshotChildren returns the family's series sorted by label tuple.
func (f *family) snapshotChildren() []*child {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*child, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	f.mu.Unlock()
	return out
}

// Registry holds a process- or server-scoped set of metric families.
// Construct with NewRegistry; one Registry per served component (the
// fimserve Server owns one).
type Registry struct {
	mu        sync.Mutex
	fams      map[string]*family
	seriesCap int
}

// NewRegistry returns an empty registry with DefaultSeriesCap.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family), seriesCap: DefaultSeriesCap}
}

// SetSeriesCap bounds the distinct label tuples per labeled family
// registered *after* the call (n <= 0 restores the default). Existing
// families keep their cap.
func (r *Registry) SetSeriesCap(n int) {
	if n <= 0 {
		n = DefaultSeriesCap
	}
	r.mu.Lock()
	r.seriesCap = n
	r.mu.Unlock()
}

// register returns the named family, creating it on first use. A
// re-registration with a different type or label schema panics: metric
// names are a schema, and two callers disagreeing on one is a bug.
func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64, fn func() float64) *family {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %s re-registered as %s/%d labels (was %s/%d)",
				name, k, len(labels), f.kind, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: %s re-registered with label %q (was %q)", name, labels[i], f.labels[i]))
			}
		}
		return f
	}
	if k == kindHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("metrics: %s histogram bounds not ascending", name))
		}
	}
	f := &family{
		name: name, help: help, kind: k,
		labels: append([]string(nil), labels...), foldIdx: -1,
		cap: r.seriesCap, buckets: append([]float64(nil), buckets...),
		fn: fn, children: make(map[string]*child),
	}
	r.fams[name] = f
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil, nil).getChild(nil).c
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil, nil).getChild(nil).g
}

// Histogram registers (or returns) an unlabeled histogram over the
// given ascending upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, buckets, nil).getChild(nil).h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotone sources that already keep their own atomic (e.g.
// runctl.Pool breach counts).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounter, nil, nil, fn)
}

// GaugeFunc registers a gauge read from fn at scrape time — for live
// quantities owned elsewhere (queue depth, pool bytes).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil, fn)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil, nil)}
}

// Fold designates the label whose value is replaced by FoldValue when
// the series cap is reached (instead of folding every label). Returns
// the vec for chaining; an unknown label name panics.
func (v *CounterVec) Fold(label string) *CounterVec {
	v.f.setFold(label)
	return v
}

// With returns the counter for the given label values (one per label,
// in registration order), materializing or folding as needed.
func (v *CounterVec) With(values ...string) *Counter { return v.f.getChild(values).c }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil, nil)}
}

// Fold designates the fold label, as for CounterVec.Fold.
func (v *GaugeVec) Fold(label string) *GaugeVec {
	v.f.setFold(label)
	return v
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.getChild(values).g }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labels, buckets, nil)}
}

// Fold designates the fold label, as for CounterVec.Fold.
func (v *HistogramVec) Fold(label string) *HistogramVec {
	v.f.setFold(label)
	return v
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.getChild(values).h }

func (f *family) setFold(label string) {
	for i, l := range f.labels {
		if l == label {
			f.mu.Lock()
			f.foldIdx = i
			f.mu.Unlock()
			return
		}
	}
	panic(fmt.Sprintf("metrics: %s has no label %q to fold on", f.name, label))
}

// families returns the registered families sorted by name.
func (r *Registry) families() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
