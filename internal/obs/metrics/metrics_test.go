package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentExactSums: a worker fleet hammering counters, gauges
// and a histogram concurrently loses nothing — the totals are exact.
// Run under -race this is also the registry's data-race proof.
func TestConcurrentExactSums(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	cv := r.CounterVec("byk_total", "by k", "k")
	g := r.Gauge("live", "live")
	h := r.Histogram("lat_seconds", "lat", []float64{0.5, 1, 2})

	const workers = 16
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := fmt.Sprintf("k%d", w%4)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				cv.With(k).Add(2)
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%4) + 0.25) // 0.25, 1.25, 2.25, 3.25
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	var vecSum int64
	for i := 0; i < 4; i++ {
		vecSum += cv.With(fmt.Sprintf("k%d", i)).Value()
	}
	if want := int64(workers * perWorker * 2); vecSum != want {
		t.Fatalf("vec sum = %d, want %d", vecSum, want)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	cum, total := h.cumulative()
	// Observations cycle evenly over {0.25, 1.25, 2.25, 3.25}: one
	// quarter lands at or under each bound 0.5 / 1 / 2, the rest in +Inf.
	q := int64(workers * perWorker / 4)
	if cum[0] != q || cum[1] != q || cum[2] != 2*q || total != 4*q {
		t.Fatalf("cumulative = %v total %d, want [%d %d %d] %d", cum, total, q, q, 2*q, 4*q)
	}
	wantSum := float64(workers*perWorker/4) * (0.25 + 1.25 + 2.25 + 3.25)
	if got := h.Sum(); got < wantSum-0.01 || got > wantSum+0.01 {
		t.Fatalf("histogram sum = %g, want %g", got, wantSum)
	}
}

// TestCardinalityFold: past the series cap, new tuples fold into the
// "other" series deterministically — on the designated label when one
// is set, on every label otherwise.
func TestCardinalityFold(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesCap(3)
	cv := r.CounterVec("tenant_total", "per tenant", "tenant", "outcome").Fold("tenant")

	cv.With("a", "ok").Inc()
	cv.With("b", "ok").Inc()
	cv.With("c", "ok").Inc()
	// Cap reached: every later tenant folds into tenant="other", keeping
	// its own outcome value.
	cv.With("d", "ok").Inc()
	cv.With("e", "ok").Inc()
	cv.With("f", "shed").Inc()

	if got := cv.With("d", "ok").Value(); got != 2 {
		t.Fatalf("folded {other,ok} = %d, want 2 (d and e)", got)
	}
	if got := cv.With("zzz", "shed").Value(); got != 1 {
		t.Fatalf("folded {other,shed} = %d, want 1 (f)", got)
	}
	if got := cv.With("a", "ok").Value(); got != 1 {
		t.Fatalf("pre-cap series {a,ok} = %d, want 1", got)
	}
	// The fold is visible in the exposition as the literal label value.
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `tenant_total{tenant="other",outcome="ok"} 2`) {
		t.Fatalf("exposition missing folded series:\n%s", buf.String())
	}

	// Concurrent folding is deterministic too: hammer one past-cap
	// tenant from many goroutines; everything lands in the same series.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				cv.With(fmt.Sprintf("hot%d", w), "ok").Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := cv.With("whatever", "ok").Value(); got != 2+8*1000 {
		t.Fatalf("folded {other,ok} after hammer = %d, want %d", got, 2+8*1000)
	}
}

// TestFoldAllLabels: without a designated fold label every label of an
// overflow tuple becomes "other".
func TestFoldAllLabels(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesCap(1)
	cv := r.CounterVec("x_total", "x", "a", "b")
	cv.With("1", "1").Inc()
	cv.With("2", "2").Inc()
	cv.With("3", "3").Inc()
	if got := cv.With("other", "other").Value(); got != 2 {
		t.Fatalf("fold-all overflow = %d, want 2", got)
	}
}

// TestExpositionByteStable: rendering a fixed state twice produces
// identical bytes, and the output matches the format exactly.
func TestExpositionByteStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a").Add(7)
	r.Gauge("b_bytes", "gauge b").Set(42)
	cv := r.CounterVec("c_total", "labeled", "op")
	cv.With("x").Add(3)
	cv.With("y").Inc()
	h := r.Histogram("d_seconds", "hist", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(9)
	r.GaugeFunc("e_live", "func gauge", func() float64 { return 1.5 })

	var b1, b2 bytes.Buffer
	if err := r.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("two renders of a fixed state differ:\n%s\n----\n%s", b1.String(), b2.String())
	}

	want := `# HELP a_total counts a
# TYPE a_total counter
a_total 7
# HELP b_bytes gauge b
# TYPE b_bytes gauge
b_bytes 42
# HELP c_total labeled
# TYPE c_total counter
c_total{op="x"} 3
c_total{op="y"} 1
# HELP d_seconds hist
# TYPE d_seconds histogram
d_seconds_bucket{le="0.5"} 1
d_seconds_bucket{le="1"} 2
d_seconds_bucket{le="+Inf"} 3
d_seconds_sum 10
d_seconds_count 3
# HELP e_live func gauge
# TYPE e_live gauge
e_live 1.5
`
	if b1.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", b1.String(), want)
	}
}

// TestParseRoundTrip: the parser accepts and faithfully reconstructs
// the renderer's output, and the result validates.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(5)
	cv := r.CounterVec("t_total", "t", "tenant")
	cv.With("alice").Add(2)
	cv.With(`we"ird\`).Inc()
	h := r.Histogram("lat_seconds", "lat", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	r.GaugeFunc("g", "g", func() float64 { return -3.25 })

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if sc.Types["lat_seconds"] != "histogram" || sc.Types["a_total"] != "counter" {
		t.Fatalf("types = %v", sc.Types)
	}
	if v := sc.Values[`a_total`]; v != 5 {
		t.Fatalf("a_total = %g", v)
	}
	if v := sc.Values[`t_total{tenant="alice"}`]; v != 2 {
		t.Fatalf("t_total{alice} = %g (have %v)", v, sc.Values)
	}
	found := false
	for _, sm := range sc.Series {
		if sm.Labels["tenant"] == `we"ird\` {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped label value did not round-trip: %v", sc.Values)
	}
	if v := sc.Values["g"]; v != -3.25 {
		t.Fatalf("gauge func = %g", v)
	}
	if v := sc.Values[`lat_seconds_bucket{le="+Inf"}`]; v != 2 {
		t.Fatalf("+Inf bucket = %g", v)
	}
}

// TestCheckMonotonic: a counter that goes backwards between scrapes is
// an error; gauges may move freely.
func TestCheckMonotonic(t *testing.T) {
	scrape := func(c int64, g int64) *Scrape {
		r := NewRegistry()
		r.Counter("a_total", "a").Add(c)
		r.Gauge("b", "b").Set(g)
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		sc, err := ParseText(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	if err := CheckMonotonic(scrape(3, 9), scrape(5, 1)); err != nil {
		t.Fatalf("monotonic pair rejected: %v", err)
	}
	if err := CheckMonotonic(scrape(5, 1), scrape(3, 9)); err == nil {
		t.Fatal("backwards counter accepted")
	}
}

// TestValidateCatchesCorruptHistogram: hand-corrupted exposition fails
// bucket/count consistency.
func TestValidateCatchesCorruptHistogram(t *testing.T) {
	const good = `# TYPE h_seconds histogram
h_seconds_bucket{le="1"} 2
h_seconds_bucket{le="+Inf"} 3
h_seconds_sum 4.5
h_seconds_count 3
`
	sc, err := ParseText(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("good histogram rejected: %v", err)
	}

	for name, corrupt := range map[string]string{
		"count mismatch": strings.Replace(good, "h_seconds_count 3", "h_seconds_count 4", 1),
		"non-cumulative": strings.Replace(good, `h_seconds_bucket{le="+Inf"} 3`, `h_seconds_bucket{le="+Inf"} 1`, 1),
		"missing sum":    strings.Replace(good, "h_seconds_sum 4.5\n", "", 1),
	} {
		sc, err := ParseText(strings.NewReader(corrupt))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := sc.Validate(); err == nil {
			t.Fatalf("%s: corrupt histogram accepted:\n%s", name, corrupt)
		}
	}
}

// TestParseRejects: structural violations fail at parse time.
func TestParseRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"sample before TYPE": "a_total 1\n# TYPE a_total counter\n",
		"duplicate series":   "# TYPE a_total counter\na_total 1\na_total 2\n",
		"bad value":          "# TYPE a_total counter\na_total x\n",
		"empty":              "\n",
	} {
		if _, err := ParseText(strings.NewReader(doc)); err == nil {
			t.Fatalf("%s: accepted:\n%s", name, doc)
		}
	}
}

// TestRegisterConflictPanics: re-registering a name with a different
// shape is a programmer error and panics.
func TestRegisterConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("a_total", "a")
}

// TestRegisterIdempotent: same-shape re-registration returns the same
// underlying instrument.
func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(2)
	r.Counter("a_total", "a").Add(3)
	if got := r.Counter("a_total", "a").Value(); got != 5 {
		t.Fatalf("re-registered counter = %d, want 5", got)
	}
}
