package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format v0.0.4, which WriteText renders.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders the registry in Prometheus text exposition format
// v0.0.4: families sorted by name, each with its # HELP and # TYPE
// lines followed by its series sorted by label tuple; histograms render
// cumulative le buckets plus _sum and _count. The output is byte-stable
// for a fixed registry state.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		if f.fn != nil {
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(f.fn()))
			bw.WriteByte('\n')
			continue
		}
		for _, c := range f.snapshotChildren() {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, "", f.labels, c.values, "", formatInt(c.c.Value()))
			case kindGauge:
				writeSample(bw, f.name, "", f.labels, c.values, "", formatInt(c.g.Value()))
			case kindHistogram:
				cum, total := c.h.cumulative()
				for i, b := range f.buckets {
					writeSample(bw, f.name, "_bucket", f.labels, c.values, formatFloat(b), formatInt(cum[i]))
				}
				writeSample(bw, f.name, "_bucket", f.labels, c.values, "+Inf", formatInt(total))
				writeSample(bw, f.name, "_sum", f.labels, c.values, "", formatFloat(c.h.Sum()))
				writeSample(bw, f.name, "_count", f.labels, c.values, "", formatInt(total))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one sample line: name+suffix, the label pairs (plus
// le when non-empty), and the value.
func writeSample(bw *bufio.Writer, name, suffix string, labels, values []string, le, val string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(val)
	bw.WriteByte('\n')
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Handler returns an http.Handler serving the exposition — the
// GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WriteText(w)
	})
}
