package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Scrape is one parsed text exposition: the family types declared by
// # TYPE lines and every sample keyed by its canonical series identity
// (name plus sorted label pairs). ParseText produces it; Validate and
// CheckMonotonic consume it — the obsvalidate `metrics` class and the
// registry's own tests run scrapes through both.
type Scrape struct {
	// Types maps family name -> declared type ("counter", "gauge",
	// "histogram", "untyped").
	Types map[string]string
	// Values maps canonical series identity -> sample value.
	Values map[string]float64
	// Series maps canonical identity -> parsed sample, for structured
	// access (histogram grouping).
	Series map[string]Sample
}

// Sample is one parsed sample line.
type Sample struct {
	// Name is the sample's metric name as written (histogram samples
	// keep their _bucket/_sum/_count suffix).
	Name string
	// Labels are the sample's label pairs.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// FamilyOf returns the family name owning a sample name: histogram
// samples map their _bucket/_sum/_count suffix back to the declared
// family, everything else owns its own name.
func (s *Scrape) FamilyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if ok && s.Types[base] == "histogram" {
			return base
		}
	}
	return name
}

// canonicalID renders a sample's identity: name plus its label pairs
// sorted by key, so identity is stable across writers.
func canonicalID(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Value returns the sample value for name carrying exactly the given
// labels (nil for an unlabeled series).
func (s *Scrape) Value(name string, labels map[string]string) (float64, bool) {
	v, ok := s.Values[canonicalID(name, labels)]
	return v, ok
}

// Samples returns every parsed sample whose metric name is exactly
// name (label sets vary), in unspecified order.
func (s *Scrape) Samples(name string) []Sample {
	var out []Sample
	for _, sm := range s.Series {
		if sm.Name == name {
			out = append(out, sm)
		}
	}
	return out
}

// ParseText parses a Prometheus text-exposition v0.0.4 document. It
// enforces the structural rules a scraper relies on: a family's # TYPE
// precedes its samples, no series appears twice, and every line parses.
func ParseText(r io.Reader) (*Scrape, error) {
	s := &Scrape{
		Types:  map[string]string{},
		Values: map[string]float64{},
		Series: map[string]Sample{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				name, typ := fields[2], "untyped"
				if len(fields) == 4 {
					typ = fields[3]
				}
				if _, dup := s.Types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate # TYPE for %s", lineNo, name)
				}
				s.Types[name] = typ
			}
			continue
		}
		sm, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := s.FamilyOf(sm.Name)
		if _, ok := s.Types[fam]; !ok {
			return nil, fmt.Errorf("line %d: sample %s before its # TYPE line", lineNo, sm.Name)
		}
		id := canonicalID(sm.Name, sm.Labels)
		if _, dup := s.Values[id]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, id)
		}
		s.Values[id] = sm.Value
		s.Series[id] = sm
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Values) == 0 {
		return nil, fmt.Errorf("metrics: empty exposition")
	}
	return s, nil
}

// parseSample parses `name{l="v",...} value` (labels optional).
func parseSample(line string) (Sample, error) {
	sm := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return sm, fmt.Errorf("malformed sample %q", line)
	} else {
		sm.Name = rest[:i]
		rest = rest[i:]
	}
	if sm.Name == "" {
		return sm, fmt.Errorf("malformed sample %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, esc := false, false
		for i := 1; i < len(rest); i++ {
			ch := rest[i]
			switch {
			case esc:
				esc = false
			case inQuote && ch == '\\':
				esc = true
			case ch == '"':
				inQuote = !inQuote
			case !inQuote && ch == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return sm, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		sm.Labels, err = parseLabels(rest[1:end])
		if err != nil {
			return sm, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	if i := strings.IndexByte(valStr, ' '); i >= 0 {
		// An optional timestamp may follow the value; ignore it.
		valStr = valStr[:i]
	}
	v, err := parseValue(valStr)
	if err != nil {
		return sm, fmt.Errorf("bad value %q in %q", valStr, line)
	}
	sm.Value = v
	return sm, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `k1="v1",k2="v2"`.
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair")
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			ch := s[i]
			if ch == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if ch == '"' {
				break
			}
			val.WriteByte(ch)
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("duplicate label %q", key)
		}
		out[key] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// histKey identifies one histogram series group: family name plus its
// labels minus le.
func histKey(fam string, labels map[string]string) string {
	rest := make(map[string]string, len(labels))
	for k, v := range labels {
		if k != "le" {
			rest[k] = v
		}
	}
	return canonicalID(fam, rest)
}

// Validate checks the internal consistency of one scrape: counters are
// non-negative, and every histogram group has ascending le bounds with
// non-decreasing cumulative counts, a +Inf bucket equal to its _count,
// and a _sum.
func (s *Scrape) Validate() error {
	type bucket struct{ le, cum float64 }
	groups := map[string][]bucket{}
	counts := map[string]float64{}
	sums := map[string]bool{}

	for id, sm := range s.Series {
		fam := s.FamilyOf(sm.Name)
		switch s.Types[fam] {
		case "counter":
			if sm.Value < 0 {
				return fmt.Errorf("metrics: counter %s negative (%g)", id, sm.Value)
			}
		case "histogram":
			key := histKey(fam, sm.Labels)
			switch {
			case strings.HasSuffix(sm.Name, "_bucket"):
				le, ok := sm.Labels["le"]
				if !ok {
					return fmt.Errorf("metrics: %s bucket without le label", id)
				}
				b, err := parseValue(le)
				if err != nil {
					return fmt.Errorf("metrics: %s has bad le %q", id, le)
				}
				groups[key] = append(groups[key], bucket{le: b, cum: sm.Value})
			case strings.HasSuffix(sm.Name, "_count"):
				counts[key] = sm.Value
			case strings.HasSuffix(sm.Name, "_sum"):
				sums[key] = true
			}
		}
	}
	for key, bs := range groups {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		if len(bs) == 0 || !math.IsInf(bs[len(bs)-1].le, 1) {
			return fmt.Errorf("metrics: histogram %s missing +Inf bucket", key)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].cum < bs[i-1].cum {
				return fmt.Errorf("metrics: histogram %s buckets not cumulative at le=%g (%g < %g)",
					key, bs[i].le, bs[i].cum, bs[i-1].cum)
			}
		}
		cnt, ok := counts[key]
		if !ok {
			return fmt.Errorf("metrics: histogram %s missing _count", key)
		}
		if inf := bs[len(bs)-1].cum; inf != cnt {
			return fmt.Errorf("metrics: histogram %s +Inf bucket %g != count %g", key, inf, cnt)
		}
		if !sums[key] {
			return fmt.Errorf("metrics: histogram %s missing _sum", key)
		}
	}
	return nil
}

// CheckMonotonic verifies counter monotonicity between two scrapes of
// the same target: every counter series (and histogram bucket, count
// and sum — observations are non-negative here) present in both must
// not decrease. Gauges are exempt.
func CheckMonotonic(prev, cur *Scrape) error {
	for id, pv := range prev.Values {
		sm := prev.Series[id]
		fam := prev.FamilyOf(sm.Name)
		switch prev.Types[fam] {
		case "counter", "histogram":
		default:
			continue
		}
		cv, ok := cur.Values[id]
		if !ok {
			return fmt.Errorf("metrics: series %s disappeared between scrapes", id)
		}
		if cv < pv {
			return fmt.Errorf("metrics: %s went backwards: %g -> %g", id, pv, cv)
		}
	}
	return nil
}
