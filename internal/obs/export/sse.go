package export

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// EncodeSSE writes one event as a Server-Sent-Events frame: an `event:`
// line carrying the event type and a `data:` line carrying the event's
// JSON encoding (the same object the JSON-lines sink writes, so a
// client that strips the framing can feed the stream straight into the
// obsvalidate event checker).
func EncodeSSE(w io.Writer, e obs.Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
	return err
}

// DefaultBroadcastCap bounds how many events a Broadcast retains for
// replay to late subscribers. A mining run's stream is small (levels,
// phases, control-plane events), so the cap exists only to bound a
// pathological run's memory.
const DefaultBroadcastCap = 8192

// Broadcast is an Observer that retains the run's events for replay and
// fans them out live to any number of SSE subscribers. Late subscribers
// first receive everything retained so far, then the live tail, so a
// client attaching mid-run still sees a stream that starts with
// run_start. It is safe for concurrent use and never blocks the mining
// run: a subscriber that stops draining its channel loses events (its
// drop count is the subscriber's problem, not the miner's).
type Broadcast struct {
	mu      sync.Mutex
	events  []obs.Event
	dropped int
	subs    map[chan obs.Event]struct{}
	closed  bool
	cap     int
}

// NewBroadcast returns an empty hub retaining up to capEvents events
// (<= 0 means DefaultBroadcastCap).
func NewBroadcast(capEvents int) *Broadcast {
	if capEvents <= 0 {
		capEvents = DefaultBroadcastCap
	}
	return &Broadcast{subs: make(map[chan obs.Event]struct{}), cap: capEvents}
}

// Event stamps, retains and fans out e. When retention is full the
// oldest event after run_start is evicted, so a replayed stream keeps
// its opening frame; Dropped reports how many were evicted.
func (b *Broadcast) Event(e obs.Event) {
	e.TimeUnixNS = time.Now().UnixNano()
	b.mu.Lock()
	if !b.closed {
		if len(b.events) >= b.cap {
			// Evict the second event: position 0 is run_start, which
			// replay must keep so late subscribers see a well-formed
			// stream opening.
			b.events = append(b.events[:1], b.events[2:]...)
			b.dropped++
		}
		b.events = append(b.events, e)
	}
	for ch := range b.subs {
		select {
		case ch <- e:
		default:
			// Slow subscriber: drop rather than stall the mining run.
		}
	}
	b.mu.Unlock()
}

// Subscribe returns the retained replay so far and a channel carrying
// the live tail (buffered at buf, <= 0 means 256). cancel detaches the
// subscriber and closes the channel; it is safe to call more than once.
func (b *Broadcast) Subscribe(buf int) (replay []obs.Event, ch <-chan obs.Event, cancel func()) {
	if buf <= 0 {
		buf = 256
	}
	c := make(chan obs.Event, buf)
	b.mu.Lock()
	replay = append([]obs.Event(nil), b.events...)
	closed := b.closed
	if !closed {
		b.subs[c] = struct{}{}
	}
	b.mu.Unlock()
	if closed {
		close(c)
		return replay, c, func() {}
	}
	cancel = func() {
		// Whoever removes the channel from the map closes it — exactly
		// one of cancel and CloseStream wins, so no double close.
		b.mu.Lock()
		_, live := b.subs[c]
		delete(b.subs, c)
		b.mu.Unlock()
		if live {
			close(c)
		}
	}
	return replay, c, cancel
}

// CloseStream marks the run over: live subscriber channels are closed
// (after the events already sent drain) and future subscribers get the
// retained replay with an immediately closed tail. Call once, after the
// run's run_end event has been delivered.
func (b *Broadcast) CloseStream() {
	b.mu.Lock()
	subs := b.subs
	b.subs = make(map[chan obs.Event]struct{})
	b.closed = true
	b.mu.Unlock()
	for ch := range subs {
		close(ch)
	}
}

// Events returns a copy of the retained stream.
func (b *Broadcast) Events() []obs.Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]obs.Event(nil), b.events...)
}

// Dropped reports how many retained events were evicted by the cap.
func (b *Broadcast) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// ServeSSE streams a Broadcast over one HTTP response as Server-Sent
// Events: the retained replay first, then the live tail until the run
// ends (CloseStream) or the client disconnects. It sets the SSE headers
// and flushes after every frame.
func ServeSSE(w http.ResponseWriter, r *http.Request, b *Broadcast) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	replay, live, cancel := b.Subscribe(0)
	defer cancel()
	for _, e := range replay {
		if err := EncodeSSE(w, e); err != nil {
			return
		}
	}
	fl.Flush()
	for {
		select {
		case e, ok := <-live:
			if !ok {
				return
			}
			if err := EncodeSSE(w, e); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
