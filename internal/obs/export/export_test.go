package export

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// sampleStream is a well-formed run's event sequence.
func sampleStream() []obs.Event {
	return []obs.Event{
		{Type: obs.RunStart, Dataset: "chess", Algorithm: "apriori", Representation: "tidset",
			Workers: 4, MinSupport: 100, Transactions: 1000},
		{Type: obs.LevelStart, Level: 2, Phase: "apriori/gen2", Candidates: 50, Pruned: 5},
		{Type: obs.PhaseEnd, Phase: "apriori/gen2", Schedule: "static", Candidates: 50,
			ElapsedNS: 1000, Imbalance: 1.5,
			Load: []obs.WorkerLoad{{Worker: 0, BusyNS: 400, Tasks: 30, Chunks: 2},
				{Worker: 1, BusyNS: 200, Tasks: 20, Chunks: 2}}},
		{Type: obs.BudgetWarning, Resource: "memory", Fraction: 0.5, Used: 512, Limit: 1024},
		{Type: obs.Degraded, Level: 2, Representation: "diffset", LiveBytes: 600},
		{Type: obs.LevelEnd, Level: 2, Phase: "apriori/gen2", Candidates: 50, Pruned: 5,
			Frequent: 20, LiveBytes: 600, ElapsedNS: 2000},
		{Type: obs.RunEnd, Algorithm: "apriori", Itemsets: 120, MaxK: 2,
			PeakLiveBytes: 900, ElapsedNS: 5000, DegradedRun: true},
	}
}

// TestJSONLinesRoundTrip: encode, stamp, decode — same stream back.
func TestJSONLinesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLines(&buf)
	in := sampleStream()
	for _, e := range in {
		s.Event(e)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if n := strings.Count(buf.String(), "\n"); n != len(in) {
		t.Fatalf("wrote %d lines, want %d", n, len(in))
	}
	out, err := DecodeLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range out {
		if out[i].TimeUnixNS == 0 {
			t.Errorf("event %d not timestamped", i)
		}
		out[i].TimeUnixNS = 0
		// Event holds slices, so compare canonical JSON forms.
		got, _ := json.Marshal(out[i])
		want, _ := json.Marshal(in[i])
		if !bytes.Equal(got, want) {
			t.Errorf("event %d round-trip:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestJSONLinesWriteError: a failing writer latches its first error and
// drops later events instead of wedging the run.
func TestJSONLinesWriteError(t *testing.T) {
	s := NewJSONLines(failWriter{})
	s.Event(obs.Event{Type: obs.RunStart})
	if s.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	s.Event(obs.Event{Type: obs.RunEnd}) // must not panic
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

// TestReportBuilder folds the sample stream into a valid report.
func TestReportBuilder(t *testing.T) {
	b := NewReportBuilder()
	for _, e := range sampleStream() {
		b.Event(e)
	}
	r := b.Report()
	if err := ValidateReport(r); err != nil {
		t.Fatal(err)
	}
	if r.Dataset != "chess" || r.Algorithm != "apriori" || r.Workers != 4 {
		t.Errorf("identity = %s/%s x%d", r.Dataset, r.Algorithm, r.Workers)
	}
	if len(r.Levels) != 1 || r.Levels[0].Frequent != 20 || r.Levels[0].Pruned != 5 {
		t.Errorf("levels = %+v", r.Levels)
	}
	if len(r.Phases) != 1 || r.Phases[0].Imbalance != 1.5 || len(r.Phases[0].Workers) != 2 {
		t.Errorf("phases = %+v", r.Phases)
	}
	if len(r.Warnings) != 1 || r.Warnings[0].Resource != "memory" {
		t.Errorf("warnings = %+v", r.Warnings)
	}
	if !r.Degraded || r.DegradedAtLevel != 2 {
		t.Errorf("degraded = %v at %d", r.Degraded, r.DegradedAtLevel)
	}
	if r.Itemsets != 120 || r.PeakLiveBytes != 900 || r.GeneratedUnixNS == 0 {
		t.Errorf("totals = %+v", r)
	}
	if got := r.MaxImbalance(); got != 1.5 {
		t.Errorf("MaxImbalance = %v", got)
	}
	// Round-trip through the writer.
	var buf bytes.Buffer
	if err := WriteReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Itemsets != r.Itemsets || len(back.Levels) != len(r.Levels) {
		t.Error("report did not round-trip")
	}
}

// TestValidateReportRejects the schema violations it is meant to catch.
func TestValidateReportRejects(t *testing.T) {
	good := func() *Report {
		b := NewReportBuilder()
		for _, e := range sampleStream() {
			b.Event(e)
		}
		return b.Report()
	}
	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"schema", func(r *Report) { r.Schema = "nope/v0" }},
		{"algorithm", func(r *Report) { r.Algorithm = "" }},
		{"min-support", func(r *Report) { r.MinSupport = 0 }},
		{"level-phase", func(r *Report) { r.Levels[0].Phase = "" }},
		{"negative-level", func(r *Report) { r.Levels[0].Frequent = -1 }},
		{"imbalance", func(r *Report) { r.Phases[0].Imbalance = 0.5 }},
		{"task-sum", func(r *Report) { r.Phases[0].Workers[0].Tasks++ }},
		{"negative-spawned", func(r *Report) { r.Phases[0].Workers[0].Spawned = -1 }},
		{"stop-coherence", func(r *Report) { r.Stop = &StopInfo{Reason: "canceled"} }},
		{"incomplete-coherence", func(r *Report) { r.Incomplete = true }},
	}
	for _, c := range cases {
		r := good()
		c.mutate(r)
		if err := ValidateReport(r); err == nil {
			t.Errorf("%s: violation not caught", c.name)
		}
	}

	// A work-stealing phase executes n roots plus every spawned subtask;
	// tasks == n + spawned must validate, one off must not.
	r := good()
	r.Phases[0].Workers[0].Spawned = 7
	r.Phases[0].Workers[1].Tasks += 4
	r.Phases[0].Workers[1].Stolen = 4
	r.Phases[0].Workers[0].Tasks += 3
	if err := ValidateReport(r); err != nil {
		t.Errorf("steal-mode task sum rejected: %v", err)
	}
	r.Phases[0].Workers[0].Spawned--
	if err := ValidateReport(r); err == nil {
		t.Error("spawned/tasks mismatch not caught")
	}
}

// TestValidateEventsRejects malformed streams.
func TestValidateEventsRejects(t *testing.T) {
	ok := sampleStream()
	if err := ValidateEvents(ok); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		events []obs.Event
	}{
		{"empty", nil},
		{"no-run-start", ok[1:]},
		{"no-run-end", ok[:len(ok)-1]},
		{"double-open", append(append([]obs.Event{}, ok[:2]...),
			obs.Event{Type: obs.LevelStart, Phase: "apriori/gen2"}, ok[len(ok)-1])},
		{"end-without-start", []obs.Event{ok[0],
			{Type: obs.LevelEnd, Phase: "ghost"}, ok[len(ok)-1]}},
	}
	for _, c := range cases {
		if err := ValidateEvents(c.events); err == nil {
			t.Errorf("%s: violation not caught", c.name)
		}
	}
}

// TestProgressWritesLines: every event type renders one line.
func TestProgressWritesLines(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	stream := sampleStream()
	stream = append(stream[:len(stream)-1],
		obs.Event{Type: obs.Stop, Reason: "canceled", Err: "context canceled"},
		stream[len(stream)-1])
	for _, e := range stream {
		p.Event(e)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(stream) {
		t.Fatalf("%d lines for %d events:\n%s", lines, len(stream), buf.String())
	}
	for _, want := range []string{"apriori/tidset", "candidates=50", "memory budget at 50%",
		"degraded to diffset", "stopped: canceled", "done"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("progress output missing %q", want)
		}
	}
}

// TestServeEndpoints: the HTTP exposition serves the report snapshot,
// expvar, and pprof with 200s on a :0 listener.
func TestServeEndpoints(t *testing.T) {
	b := NewReportBuilder()
	for _, e := range sampleStream() {
		b.Event(e)
	}
	tr := obs.NewTraceRecorder()
	for _, e := range sampleStream() {
		tr.Event(e)
	}
	tr.ChunkSpan("eclat/pairs", 0, 0, 8, 8, time.Now(), time.Millisecond)
	srv, err := Serve("127.0.0.1:0", b, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/", "/report", "/trace", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("%s: empty body", path)
		}
	}
	resp, err := http.Get("http://" + srv.Addr() + "/report")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReport(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/report did not validate: %v", err)
	}
	if rep.Itemsets != 120 {
		t.Errorf("/report itemsets = %d", rep.Itemsets)
	}
	respT, err := http.Get("http://" + srv.Addr() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tf, err := ReadTraceFile(respT.Body)
	respT.Body.Close()
	if err != nil {
		t.Fatalf("/trace did not validate: %v", err)
	}
	if rows := tf.WorkerRows(); len(rows) != 1 || rows[0] != 1 {
		t.Errorf("/trace worker rows = %v, want [1]", rows)
	}
	if resp2, err := http.Get("http://" + srv.Addr() + "/nope"); err == nil {
		if resp2.StatusCode != http.StatusNotFound {
			t.Errorf("/nope: status %d, want 404", resp2.StatusCode)
		}
		resp2.Body.Close()
	}
}

// TestBenchFileRoundTrip and schema rejection.
func TestBenchFileRoundTrip(t *testing.T) {
	f := NewBenchFile([]Bench{{
		Schema: BenchSchema, Dataset: "chess", Algorithm: "eclat",
		Representation: "diffset", Threads: 4, Rep: 1,
		WallSeconds: 0.5, PeakBytes: 1 << 20, Itemsets: 1000,
	}})
	var buf bytes.Buffer
	if err := WriteBenchFile(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || back.Results[0].Dataset != "chess" {
		t.Errorf("round-trip = %+v", back)
	}

	bad := []func(*BenchFile){
		func(f *BenchFile) { f.Schema = "x" },
		func(f *BenchFile) { f.Results = nil },
		func(f *BenchFile) { f.Results[0].Dataset = "" },
		func(f *BenchFile) { f.Results[0].Threads = 0 },
		func(f *BenchFile) { f.Results[0].WallSeconds = -1 },
	}
	for i, brk := range bad {
		g := NewBenchFile([]Bench{f.Results[0]})
		brk(g)
		if err := ValidateBenchFile(g); err == nil {
			t.Errorf("case %d: violation not caught", i)
		}
	}
}
