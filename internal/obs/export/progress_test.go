package export

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestProgressNonTerminal: piped output is plain newline-terminated
// lines — one per rendered event, no carriage returns or escapes.
func TestProgressNonTerminal(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	for _, e := range sampleStream() {
		p.Event(e)
	}
	out := buf.String()
	if strings.ContainsAny(out, "\r\x1b") {
		t.Errorf("non-terminal output carries control sequences:\n%q", out)
	}
	if n := strings.Count(out, "\n"); n != len(sampleStream()) {
		t.Errorf("%d lines for %d events:\n%s", n, len(sampleStream()), out)
	}
}

// TestProgressTerminalTicker: on a terminal the phase_end lines render
// as a self-overwriting ticker, and the next durable line clears it.
func TestProgressTerminalTicker(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.setTerminal(true)
	p.Event(obs.Event{Type: obs.PhaseEnd, Phase: "eclat/pairs", Schedule: "dynamic", Candidates: 10})
	mid := buf.String()
	if !strings.HasPrefix(mid, "\r") || !strings.HasSuffix(mid, "\x1b[K") {
		t.Errorf("tick not rendered transiently: %q", mid)
	}
	if strings.Contains(mid, "\n") {
		t.Errorf("tick terminated the line: %q", mid)
	}
	p.Event(obs.Event{Type: obs.PhaseEnd, Phase: "eclat/expand3", Schedule: "dynamic", Candidates: 5})
	p.Event(obs.Event{Type: obs.LevelEnd, Phase: "eclat/expand3", Frequent: 5})
	out := buf.String()
	if !strings.Contains(out, "\r\x1b[K  << ") {
		t.Errorf("durable line did not clear the ticker:\n%q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("durable line not newline-terminated:\n%q", out)
	}
}

// TestProgressTerminalEarlyStop: a run stopped mid-ticker still ends
// with full stop and done lines, not a half-overwritten tick.
func TestProgressTerminalEarlyStop(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.setTerminal(true)
	p.Event(obs.Event{Type: obs.RunStart, Algorithm: "eclat", Representation: "diffset", Workers: 4})
	p.Event(obs.Event{Type: obs.PhaseEnd, Phase: "eclat/classes", Schedule: "dynamic", Candidates: 64})
	p.Event(obs.Event{Type: obs.Stop, Reason: "budget:memory", Err: "memory budget exceeded"})
	p.Event(obs.Event{Type: obs.RunEnd, Algorithm: "eclat", Itemsets: 42, Incomplete: true})
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("early-stop output not newline-terminated:\n%q", out)
	}
	final := out[strings.LastIndex(strings.TrimRight(out, "\n"), "\r\x1b[K")+len("\r\x1b[K"):]
	if !strings.Contains(final, "stopped: budget:memory") || !strings.Contains(final, "done incomplete itemsets=42") {
		t.Errorf("final lines missing stop reason or summary:\n%q", out)
	}
}
