package export

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/obs"
)

// Trace-file export: renders an obs.TraceRecorder's span timeline as
// Chrome trace-event JSON (the "JSON Object Format" of the Trace Event
// spec), loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// The layout puts the run and level/class spans on a "coordinator" row
// (tid 0) and each worker's scheduler chunks on its own row (tid
// worker+1), so schedule imbalance — the paper's §IV static-vs-dynamic
// argument — is visible directly: under schedule(static) one row's bar
// runs long past the others; under dynamic chunk-1 the rows end
// together.

// TracePID is the single process id all rows share.
const TracePID = 1

// TraceEvent is one Chrome trace-event object. Only the "X" (complete
// event) and "M" (metadata) phases are emitted; ts and dur are
// microseconds, as the format requires.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the exported document.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// BuildTrace converts a recorded span timeline into a trace file.
// Timestamps are re-based so the earliest span starts at ts 0; a
// thread_name metadata event labels every row; kernel counters (when
// the caller has them, e.g. from the run report) may be attached to
// the run span by the caller via the returned file's first "run" span.
func BuildTrace(t *obs.TraceRecorder) *TraceFile {
	spans := t.Spans()
	tf := &TraceFile{DisplayTimeUnit: "ms"}

	// Row labels: coordinator plus one row per worker, present even for
	// workers whose chunks were all dropped by the span cap.
	tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
		Name: "thread_name", Ph: "M", PID: TracePID, TID: 0,
		Args: map[string]any{"name": "coordinator"},
	})
	for w := 0; w < t.Workers(); w++ {
		tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
			Name: "thread_name", Ph: "M", PID: TracePID, TID: w + 1,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", w)},
		})
	}

	var base int64 = math.MaxInt64
	for _, s := range spans {
		if s.StartNS < base {
			base = s.StartNS
		}
	}
	for _, s := range spans {
		ev := TraceEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.StartNS-base) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			PID:  TracePID,
			TID:  s.Worker + 1, // coordinator spans carry Worker -1
		}
		if s.Cat == obs.SpanChunk {
			ev.Args = map[string]any{"lo": s.Lo, "hi": s.Hi, "tasks": s.Tasks}
		}
		if run := t.Run(); s.Cat == obs.SpanRun && run.Algorithm != "" {
			ev.Args = map[string]any{
				"algorithm":      run.Algorithm,
				"representation": run.Representation,
				"workers":        run.Workers,
				"dataset":        run.Dataset,
			}
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
	}
	if d := t.Dropped(); d > 0 {
		tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
			Name: "spans_dropped", Ph: "M", PID: TracePID, TID: 0,
			Args: map[string]any{"count": d},
		})
	}
	return tf
}

// WriteTrace JSON-encodes tf to w.
func WriteTrace(w io.Writer, tf *TraceFile) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// ReadTraceFile decodes and schema-validates one trace document.
func ReadTraceFile(r io.Reader) (*TraceFile, error) {
	var tf TraceFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return nil, err
	}
	if err := ValidateTrace(&tf); err != nil {
		return nil, err
	}
	return &tf, nil
}

// ValidateTrace checks the Chrome trace-event schema invariants the
// exporter guarantees: only X/M phases, named events, non-negative
// timestamps and durations, one pid, a thread_name metadata row for
// every tid used by a span, and chunk spans only on worker rows (tid
// >= 1).
func ValidateTrace(tf *TraceFile) error {
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("export: empty trace")
	}
	named := map[int]bool{}
	used := map[int]bool{}
	for i, e := range tf.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("export: trace event %d unnamed", i)
		}
		if e.PID != TracePID {
			return fmt.Errorf("export: trace event %d pid %d, want %d", i, e.PID, TracePID)
		}
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				named[e.TID] = true
			}
		case "X":
			if e.TS < 0 || e.Dur < 0 {
				return fmt.Errorf("export: trace event %d (%s) negative ts/dur", i, e.Name)
			}
			if e.TID < 0 {
				return fmt.Errorf("export: trace event %d (%s) negative tid", i, e.Name)
			}
			if e.Cat == obs.SpanChunk && e.TID < 1 {
				return fmt.Errorf("export: chunk span %q on non-worker row %d", e.Name, e.TID)
			}
			if (e.Cat == obs.SpanRun || e.Cat == obs.SpanLevel) && e.TID != 0 {
				return fmt.Errorf("export: %s span %q off the coordinator row (tid %d)", e.Cat, e.Name, e.TID)
			}
			used[e.TID] = true
		default:
			return fmt.Errorf("export: trace event %d (%s) unsupported phase %q", i, e.Name, e.Ph)
		}
	}
	for tid := range used {
		if !named[tid] {
			return fmt.Errorf("export: row tid %d has spans but no thread_name metadata", tid)
		}
	}
	return nil
}

// WorkerRows returns the worker tids (>= 1) that carry chunk spans,
// ascending — the timeline rows the acceptance check counts.
func (tf *TraceFile) WorkerRows() []int {
	set := map[int]bool{}
	for _, e := range tf.TraceEvents {
		if e.Ph == "X" && e.Cat == obs.SpanChunk {
			set[e.TID] = true
		}
	}
	rows := make([]int, 0, len(set))
	for tid := range set {
		rows = append(rows, tid)
	}
	sort.Ints(rows)
	return rows
}

// chunkBusyByWorker sums chunk-span durations (ns) per worker index.
func (tf *TraceFile) chunkBusyByWorker() map[int]int64 {
	busy := map[int]int64{}
	for _, e := range tf.TraceEvents {
		if e.Ph == "X" && e.Cat == obs.SpanChunk {
			busy[e.TID-1] += int64(e.Dur * 1e3)
		}
	}
	return busy
}

// CrossCheckTrace verifies that the trace's per-worker chunk-span
// totals agree with the event stream's phase_end load metrics
// (sched.Metrics busy time) within tol (fractional, e.g. 0.05 = 5%).
// Both derive from the same per-chunk timing, so on a complete trace
// they match to rounding; a slack floor absorbs microsecond
// quantization on near-idle workers. A trace whose span cap dropped
// chunks cannot be cross-checked and fails with a distinct error.
func CrossCheckTrace(tf *TraceFile, events []obs.Event, tol float64) error {
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" && e.Name == "spans_dropped" {
			return fmt.Errorf("export: trace dropped spans; busy-time cross-check impossible")
		}
	}
	metric := map[int]int64{}
	for _, e := range events {
		if e.Type != obs.PhaseEnd {
			continue
		}
		for _, l := range e.Load {
			metric[l.Worker] += l.BusyNS
		}
	}
	span := tf.chunkBusyByWorker()
	// The slack floor: timestamps quantize to microseconds in the trace
	// file, so totals below ~1ms per worker compare loosely.
	const floorNS = 2e6
	workers := map[int]bool{}
	for w := range metric {
		workers[w] = true
	}
	for w := range span {
		workers[w] = true
	}
	for w := range workers {
		m, s := metric[w], span[w]
		diff := m - s
		if diff < 0 {
			diff = -diff
		}
		limit := int64(tol * float64(m))
		if limit < floorNS {
			limit = floorNS
		}
		if diff > limit {
			return fmt.Errorf("export: worker %d busy time disagrees: spans %dns vs metrics %dns (tolerance %.0f%%)",
				w, s, m, tol*100)
		}
	}
	return nil
}
