// Package export holds the ready-made sinks for the obs event stream:
// a JSON-lines encoder, a human-readable live progress printer, a
// machine-readable run-report builder with schema validation, an HTTP
// exposition endpoint (report snapshot + expvar + pprof), and the
// standardized benchmark-result schema fimbench emits.
//
// Everything here is an obs.Observer (or consumes one run's events), so
// sinks compose through obs.Multi and attach to a run via
// fim.Options.Observer. The package depends only on the standard
// library.
package export

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// JSONLines is an Observer that writes each event as one JSON object
// per line to w, stamping TimeUnixNS at write time. It is safe for
// concurrent use; writes are serialized by an internal mutex.
//
// The line format is the obs.Event JSON encoding with zero fields
// omitted — the event schema documented in README's Observability
// section. A decode loop over the output with DecodeLines round-trips
// the stream.
type JSONLines struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLines returns a JSON-lines sink writing to w.
func NewJSONLines(w io.Writer) *JSONLines {
	return &JSONLines{enc: json.NewEncoder(w)}
}

// Event encodes e on its own line. The first write error is retained
// (Err) and later events are dropped, so a broken pipe cannot wedge or
// crash the mining run.
func (s *JSONLines) Event(e obs.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	e.TimeUnixNS = time.Now().UnixNano()
	s.err = s.enc.Encode(e)
}

// Err returns the first write error, or nil.
func (s *JSONLines) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// DecodeLines reads a JSON-lines event stream back into events,
// stopping at EOF. Used by tests and the validation tool.
func DecodeLines(r io.Reader) ([]obs.Event, error) {
	dec := json.NewDecoder(r)
	var out []obs.Event
	for {
		var e obs.Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, e)
	}
}
