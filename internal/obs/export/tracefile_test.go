package export

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// sampleRecorder builds a recorder with a run span, one level span and
// chunk spans on two workers with known durations.
func sampleRecorder() *obs.TraceRecorder {
	tr := obs.NewTraceRecorder()
	t0 := time.Now()
	tr.Event(obs.Event{Type: obs.RunStart, Algorithm: "eclat", Representation: "tidset",
		Workers: 2, Dataset: "chess"})
	tr.Event(obs.Event{Type: obs.LevelStart, Level: 2, Phase: "eclat/pairs"})
	tr.ChunkSpan("eclat/pairs", 0, 0, 4, 4, t0, 4*time.Millisecond)
	tr.ChunkSpan("eclat/pairs", 1, 4, 8, 4, t0.Add(time.Millisecond), 6*time.Millisecond)
	tr.Event(obs.Event{Type: obs.LevelEnd, Level: 2, Phase: "eclat/pairs",
		ElapsedNS: int64(7 * time.Millisecond)})
	tr.Event(obs.Event{Type: obs.RunEnd, Algorithm: "eclat",
		ElapsedNS: int64(10 * time.Millisecond)})
	return tr
}

// matchingEvents is the phase_end stream whose load metrics agree with
// sampleRecorder's chunk spans exactly.
func matchingEvents() []obs.Event {
	return []obs.Event{
		{Type: obs.PhaseEnd, Phase: "eclat/pairs", Load: []obs.WorkerLoad{
			{Worker: 0, BusyNS: int64(4 * time.Millisecond), Tasks: 4, Chunks: 1},
			{Worker: 1, BusyNS: int64(6 * time.Millisecond), Tasks: 4, Chunks: 1},
		}},
	}
}

// TestBuildTraceShape: rebased timestamps, labeled rows, chunk args,
// run args, and schema validity.
func TestBuildTraceShape(t *testing.T) {
	tf := BuildTrace(sampleRecorder())
	if err := ValidateTrace(tf); err != nil {
		t.Fatal(err)
	}
	if rows := tf.WorkerRows(); len(rows) != 2 || rows[0] != 1 || rows[1] != 2 {
		t.Errorf("WorkerRows() = %v, want [1 2]", rows)
	}
	names := map[int]string{}
	var sawZeroTS bool
	var runArgs map[string]any
	for _, e := range tf.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			names[e.TID] = e.Args["name"].(string)
		case e.Ph == "X":
			if e.TS == 0 {
				sawZeroTS = true
			}
			if e.Cat == obs.SpanChunk && e.Args["lo"] == nil {
				t.Errorf("chunk span %q missing lo/hi args", e.Name)
			}
			if e.Cat == obs.SpanRun {
				runArgs = e.Args
			}
		}
	}
	if names[0] != "coordinator" || names[1] != "worker 0" || names[2] != "worker 1" {
		t.Errorf("row names = %v", names)
	}
	if !sawZeroTS {
		t.Error("no span rebased to ts 0")
	}
	if runArgs == nil || runArgs["algorithm"] != "eclat" || runArgs["dataset"] != "chess" {
		t.Errorf("run span args = %v", runArgs)
	}
}

// TestTraceRoundTrip: write, read back, validate.
func TestTraceRoundTrip(t *testing.T) {
	tf := BuildTrace(sampleRecorder())
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.TraceEvents) != len(tf.TraceEvents) {
		t.Errorf("round trip kept %d of %d events", len(back.TraceEvents), len(tf.TraceEvents))
	}
}

// TestValidateTraceRejects: each schema violation is caught with a
// pointed error.
func TestValidateTraceRejects(t *testing.T) {
	base := func() *TraceFile { return BuildTrace(sampleRecorder()) }
	cases := []struct {
		name   string
		mutate func(*TraceFile)
		want   string
	}{
		{"empty", func(tf *TraceFile) { tf.TraceEvents = nil }, "empty"},
		{"unnamed", func(tf *TraceFile) { tf.TraceEvents[3].Name = "" }, "unnamed"},
		{"bad pid", func(tf *TraceFile) { tf.TraceEvents[3].PID = 9 }, "pid"},
		{"bad phase", func(tf *TraceFile) { tf.TraceEvents[3].Ph = "B" }, "phase"},
		{"negative ts", func(tf *TraceFile) {
			for i := range tf.TraceEvents {
				if tf.TraceEvents[i].Ph == "X" {
					tf.TraceEvents[i].TS = -1
					return
				}
			}
		}, "negative"},
		{"chunk off worker row", func(tf *TraceFile) {
			for i := range tf.TraceEvents {
				if tf.TraceEvents[i].Cat == obs.SpanChunk {
					tf.TraceEvents[i].TID = 0
					return
				}
			}
		}, "non-worker"},
		{"level off coordinator", func(tf *TraceFile) {
			for i := range tf.TraceEvents {
				if tf.TraceEvents[i].Cat == obs.SpanLevel {
					tf.TraceEvents[i].TID = 1
					return
				}
			}
		}, "coordinator"},
		{"unlabeled row", func(tf *TraceFile) {
			kept := tf.TraceEvents[:0]
			for _, e := range tf.TraceEvents {
				if !(e.Ph == "M" && e.TID == 2) {
					kept = append(kept, e)
				}
			}
			tf.TraceEvents = kept
		}, "thread_name"},
	}
	for _, c := range cases {
		tf := base()
		c.mutate(tf)
		err := ValidateTrace(tf)
		if err == nil {
			t.Errorf("%s: violation not caught", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestCrossCheckTrace: agreement passes, a 2x busy-time disagreement
// fails, and a capped trace refuses the check.
func TestCrossCheckTrace(t *testing.T) {
	tf := BuildTrace(sampleRecorder())
	if err := CrossCheckTrace(tf, matchingEvents(), 0.05); err != nil {
		t.Errorf("matching totals rejected: %v", err)
	}

	skewed := matchingEvents()
	skewed[0].Load[1].BusyNS *= 2
	if err := CrossCheckTrace(tf, skewed, 0.05); err == nil {
		t.Error("2x busy-time disagreement not caught")
	} else if !strings.Contains(err.Error(), "worker 1") {
		t.Errorf("disagreement error does not name the worker: %v", err)
	}

	capped := obs.NewTraceRecorder()
	capped.SetLimit(1)
	capped.ChunkSpan("p", 0, 0, 1, 1, time.Now(), time.Millisecond)
	capped.ChunkSpan("p", 0, 1, 2, 1, time.Now(), time.Millisecond)
	if err := CrossCheckTrace(BuildTrace(capped), nil, 0.05); err == nil {
		t.Error("capped trace cross-checked despite dropped spans")
	}
}
