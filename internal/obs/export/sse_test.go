package export

import (
	"bufio"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// sseDataLines strips SSE framing back to the JSON payload lines.
func sseDataLines(t *testing.T, body string) []string {
	t.Helper()
	var out []string
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			out = append(out, rest)
		}
	}
	return out
}

// TestEncodeSSEFrame: one event renders as an event/data frame whose
// data line is the event's JSON encoding.
func TestEncodeSSEFrame(t *testing.T) {
	var sb strings.Builder
	if err := EncodeSSE(&sb, obs.Event{Type: obs.RunStart, Dataset: "chess"}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "event: run_start\ndata: {") || !strings.HasSuffix(got, "}\n\n") {
		t.Fatalf("frame = %q", got)
	}
	if !strings.Contains(got, `"dataset":"chess"`) {
		t.Fatalf("data payload missing fields: %q", got)
	}
}

// TestBroadcastReplayAndLive: a late subscriber receives the retained
// replay plus the live tail, in order, and the stream round-trips
// through the event validator.
func TestBroadcastReplayAndLive(t *testing.T) {
	b := NewBroadcast(0)
	b.Event(obs.Event{Type: obs.RunStart})
	b.Event(obs.Event{Type: obs.LevelStart, Phase: "gen2"})

	replay, live, cancel := b.Subscribe(8)
	defer cancel()
	if len(replay) != 2 || replay[0].Type != obs.RunStart {
		t.Fatalf("replay = %+v", replay)
	}

	b.Event(obs.Event{Type: obs.LevelEnd, Phase: "gen2"})
	b.Event(obs.Event{Type: obs.RunEnd})
	b.CloseStream()

	var tail []obs.Event
	for e := range live {
		tail = append(tail, e)
	}
	all := append(replay, tail...)
	if err := ValidateEvents(all); err != nil {
		t.Fatalf("replayed+live stream invalid: %v", err)
	}
	if all[len(all)-1].Type != obs.RunEnd {
		t.Fatalf("stream does not end with run_end: %+v", all)
	}
}

// TestBroadcastSubscribeAfterClose: subscribing after the run ended
// yields the full replay and an already-closed tail.
func TestBroadcastSubscribeAfterClose(t *testing.T) {
	b := NewBroadcast(0)
	b.Event(obs.Event{Type: obs.RunStart})
	b.Event(obs.Event{Type: obs.RunEnd})
	b.CloseStream()
	replay, live, cancel := b.Subscribe(1)
	defer cancel()
	if len(replay) != 2 {
		t.Fatalf("post-close replay has %d events", len(replay))
	}
	if _, ok := <-live; ok {
		t.Fatal("post-close tail channel not closed")
	}
}

// TestBroadcastCapKeepsRunStart: overflowing the retention cap evicts
// middle events but never the opening run_start.
func TestBroadcastCapKeepsRunStart(t *testing.T) {
	b := NewBroadcast(4)
	b.Event(obs.Event{Type: obs.RunStart})
	for i := 0; i < 10; i++ {
		b.Event(obs.Event{Type: obs.PhaseEnd, Phase: "p"})
	}
	ev := b.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, cap 4", len(ev))
	}
	if ev[0].Type != obs.RunStart {
		t.Fatalf("run_start evicted; head is %v", ev[0].Type)
	}
	if b.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", b.Dropped())
	}
}

// TestBroadcastConcurrent: hammer publish/subscribe/cancel/close under
// -race; no panics, no deadlocks, no double closes.
func TestBroadcastConcurrent(t *testing.T) {
	b := NewBroadcast(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Event(obs.Event{Type: obs.PhaseEnd})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, live, cancel := b.Subscribe(4)
				select {
				case <-live: // an event, if one lands in time
				default:
				}
				cancel()
				cancel() // idempotent
			}
		}()
	}
	wg.Wait()
	b.CloseStream()
	b.Event(obs.Event{Type: obs.PhaseEnd}) // post-close publish is a no-op
}

// TestServeSSE: the HTTP handler emits well-formed frames whose data
// lines decode back into the original stream.
func TestServeSSE(t *testing.T) {
	b := NewBroadcast(0)
	b.Event(obs.Event{Type: obs.RunStart, Dataset: "t"})
	b.Event(obs.Event{Type: obs.RunEnd})
	b.CloseStream()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/events", nil)
	ServeSSE(rec, req, b)

	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines := sseDataLines(t, rec.Body.String())
	if len(lines) != 2 {
		t.Fatalf("got %d data lines: %q", len(lines), rec.Body.String())
	}
	events, err := DecodeLines(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatalf("decoding data lines: %v", err)
	}
	if err := ValidateEvents(events); err != nil {
		t.Fatalf("SSE-decoded stream invalid: %v", err)
	}
}
