package export

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
)

// Bench-regression observatory: compare fim-bench/v1 files cell by
// cell, where a cell is one (dataset, algorithm, representation,
// threads) configuration. Wall time compares as a ratio against a
// tolerance; itemset counts must match exactly — the miners are
// deterministic, so a count drift is a correctness bug, never noise.

// BenchKey identifies one benchmark cell.
type BenchKey struct {
	Dataset        string `json:"dataset"`
	Algorithm      string `json:"algorithm"`
	Representation string `json:"representation,omitempty"`
	Schedule       string `json:"schedule,omitempty"`
	Batch          string `json:"batch,omitempty"`
	Layout         string `json:"layout,omitempty"`
	Threads        int    `json:"threads"`
}

func (k BenchKey) String() string {
	rep := k.Representation
	if rep == "" {
		rep = "-"
	}
	s := fmt.Sprintf("%s/%s/%s/t%d", k.Dataset, k.Algorithm, rep, k.Threads)
	if k.Schedule != "" {
		s += "@" + k.Schedule
	}
	if k.Batch != "" {
		s += "#" + k.Batch
	}
	if k.Layout != "" {
		s += "%" + k.Layout
	}
	return s
}

// BenchCell is one cell's aggregate over its repetitions: best (min)
// wall time, worst (max) peak bytes, and the itemset count, which
// every rep of a cell must agree on.
type BenchCell struct {
	Wall     float64 `json:"wall_seconds"`
	Peak     int64   `json:"peak_bytes"`
	Itemsets int64   `json:"itemsets"`
	Reps     int     `json:"reps"`
}

// BenchCells aggregates a file's results into cells. A file whose reps
// disagree on itemset count for the same cell is internally
// inconsistent and rejected.
func BenchCells(f *BenchFile) (map[BenchKey]BenchCell, error) {
	cells := map[BenchKey]BenchCell{}
	for _, b := range f.Results {
		k := BenchKey{Dataset: b.Dataset, Algorithm: b.Algorithm,
			Representation: b.Representation, Schedule: b.Schedule,
			Batch: b.Batch, Layout: b.Layout, Threads: b.Threads}
		c, ok := cells[k]
		if !ok {
			cells[k] = BenchCell{Wall: b.WallSeconds, Peak: b.PeakBytes, Itemsets: b.Itemsets, Reps: 1}
			continue
		}
		if b.Itemsets != c.Itemsets {
			return nil, fmt.Errorf("export: cell %s reps disagree on itemsets (%d vs %d)", k, c.Itemsets, b.Itemsets)
		}
		if b.WallSeconds < c.Wall {
			c.Wall = b.WallSeconds
		}
		if b.PeakBytes > c.Peak {
			c.Peak = b.PeakBytes
		}
		c.Reps++
		cells[k] = c
	}
	return cells, nil
}

// BenchDelta is one cell's old-vs-new comparison.
type BenchDelta struct {
	Key             BenchKey `json:"key"`
	OldWall         float64  `json:"old_wall_seconds"`
	NewWall         float64  `json:"new_wall_seconds"`
	WallRatio       float64  `json:"wall_ratio"` // new/old; >1 slower
	OldPeak         int64    `json:"old_peak_bytes"`
	NewPeak         int64    `json:"new_peak_bytes"`
	PeakRatio       float64  `json:"peak_ratio"`
	OldItemsets     int64    `json:"old_itemsets"`
	NewItemsets     int64    `json:"new_itemsets"`
	ItemsetMismatch bool     `json:"itemset_mismatch,omitempty"`
}

// BenchDiff is the comparison of two files over their common cells.
type BenchDiff struct {
	Cells   []BenchDelta `json:"cells"`
	OnlyOld []BenchKey   `json:"only_old,omitempty"`
	OnlyNew []BenchKey   `json:"only_new,omitempty"`
}

func sortKeys(ks []BenchKey) {
	slices.SortFunc(ks, func(a, b BenchKey) int { return strings.Compare(a.String(), b.String()) })
}

// StripSchedule clears the schedule of every result, collapsing each
// schedule variant onto its base cell. It lets a file measured under a
// non-default schedule diff against a default-schedule baseline — the
// steal-vs-dynamic comparison. Only meaningful when the file holds one
// schedule per base cell; otherwise variants merge into one cell.
func StripSchedule(f *BenchFile) {
	for i := range f.Results {
		f.Results[i].Schedule = ""
	}
}

// StripBatch clears the batch mode of every result, collapsing each
// batch variant onto its base cell — the batched-vs-pairwise A/B
// comparison (-batch=off against a default baseline). DiffBench's
// exact-itemset check then proves the two modes mine identical sets.
func StripBatch(f *BenchFile) {
	for i := range f.Results {
		f.Results[i].Batch = ""
	}
}

// StripLayout clears the tidset layout of every result, collapsing
// each layout variant onto its base cell — the tiled-vs-flat A/B
// comparison (-layout=tiled against a flat baseline). DiffBench's
// exact-itemset check then proves the two layouts mine byte-identical
// itemset counts on every shared cell.
func StripLayout(f *BenchFile) {
	for i := range f.Results {
		f.Results[i].Layout = ""
	}
}

// StripRepresentation clears the representation of every result,
// collapsing each representation onto its (dataset, algorithm,
// threads) base cell — the cross-representation A/B comparison
// (-rep=nodeset against a flat-tidset or tiled baseline). DiffBench's
// exact-itemset check then proves the two representations mine
// identical sets on every shared cell. Only meaningful when each file
// holds one representation per base cell.
func StripRepresentation(f *BenchFile) {
	for i := range f.Results {
		f.Results[i].Representation = ""
	}
}

// DiffBench compares old against new cell by cell. Cells present in
// only one file are listed, not compared — CI runs a dataset subset of
// the committed baseline, so one-sided cells are expected there.
func DiffBench(oldF, newF *BenchFile) (*BenchDiff, error) {
	oc, err := BenchCells(oldF)
	if err != nil {
		return nil, fmt.Errorf("old file: %w", err)
	}
	nc, err := BenchCells(newF)
	if err != nil {
		return nil, fmt.Errorf("new file: %w", err)
	}
	d := &BenchDiff{}
	for k, o := range oc {
		n, ok := nc[k]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, k)
			continue
		}
		delta := BenchDelta{
			Key:     k,
			OldWall: o.Wall, NewWall: n.Wall,
			OldPeak: o.Peak, NewPeak: n.Peak,
			OldItemsets: o.Itemsets, NewItemsets: n.Itemsets,
			ItemsetMismatch: o.Itemsets != n.Itemsets,
		}
		if o.Wall > 0 {
			delta.WallRatio = n.Wall / o.Wall
		}
		if o.Peak > 0 {
			delta.PeakRatio = float64(n.Peak) / float64(o.Peak)
		}
		d.Cells = append(d.Cells, delta)
	}
	for k := range nc {
		if _, ok := oc[k]; !ok {
			d.OnlyNew = append(d.OnlyNew, k)
		}
	}
	slices.SortFunc(d.Cells, func(a, b BenchDelta) int { return strings.Compare(a.Key.String(), b.Key.String()) })
	sortKeys(d.OnlyOld)
	sortKeys(d.OnlyNew)
	if len(d.Cells) == 0 {
		return nil, fmt.Errorf("export: bench files share no cells")
	}
	return d, nil
}

// Regressions returns the cells whose wall time grew past tol
// (new/old ratio, e.g. 1.5 = 50% slower). Cells faster than old never
// regress regardless of magnitude.
func (d *BenchDiff) Regressions(tol float64) []BenchDelta {
	var out []BenchDelta
	for _, c := range d.Cells {
		if c.WallRatio > tol {
			out = append(out, c)
		}
	}
	return out
}

// ItemsetMismatches returns the cells whose itemset counts disagree —
// always a hard error for the caller, independent of any tolerance.
func (d *BenchDiff) ItemsetMismatches() []BenchDelta {
	var out []BenchDelta
	for _, c := range d.Cells {
		if c.ItemsetMismatch {
			out = append(out, c)
		}
	}
	return out
}

// FormatBenchDiff renders a fixed-width cell table with regression
// markers to w.
func FormatBenchDiff(w io.Writer, d *BenchDiff, tol float64) {
	fmt.Fprintf(w, "%-38s %10s %10s %7s %10s %8s\n",
		"cell", "old wall", "new wall", "ratio", "peak Δ", "itemsets")
	for _, c := range d.Cells {
		mark := ""
		switch {
		case c.ItemsetMismatch:
			mark = "  COUNT MISMATCH"
		case c.WallRatio > tol:
			mark = "  REGRESSION"
		}
		items := fmt.Sprintf("%d", c.NewItemsets)
		if c.ItemsetMismatch {
			items = fmt.Sprintf("%d!=%d", c.OldItemsets, c.NewItemsets)
		}
		fmt.Fprintf(w, "%-38s %9.3fs %9.3fs %6.2fx %9.2fx %8s%s\n",
			c.Key, c.OldWall, c.NewWall, c.WallRatio, c.PeakRatio, items, mark)
	}
	for _, k := range d.OnlyOld {
		fmt.Fprintf(w, "%-38s only in old file\n", k)
	}
	for _, k := range d.OnlyNew {
		fmt.Fprintf(w, "%-38s only in new file\n", k)
	}
}

// HistorySchema identifies the append-only benchmark history record.
const HistorySchema = "fim-bench-history/v1"

// HistoryEntry is one line of results/BENCH_history.jsonl: the cells
// of one benchmark run plus its provenance, so trends plot without
// re-reading every archived bench file.
type HistoryEntry struct {
	Schema          string               `json:"schema"`
	GeneratedUnixNS int64                `json:"generated_unix_ns,omitempty"`
	Label           string               `json:"label,omitempty"`
	Provenance      Provenance           `json:"provenance,omitempty"`
	Cells           map[string]BenchCell `json:"cells"`
}

// NewHistoryEntry summarizes a bench file into a history line.
func NewHistoryEntry(f *BenchFile, label string) (*HistoryEntry, error) {
	cells, err := BenchCells(f)
	if err != nil {
		return nil, err
	}
	e := &HistoryEntry{
		Schema:          HistorySchema,
		GeneratedUnixNS: f.GeneratedUnixNS,
		Label:           label,
		Provenance:      f.Provenance,
		Cells:           make(map[string]BenchCell, len(cells)),
	}
	for k, c := range cells {
		e.Cells[k.String()] = c
	}
	return e, nil
}

// AppendHistory appends one JSONL line to path, creating the file if
// absent. Append-only: existing lines are never rewritten.
func AppendHistory(path string, e *HistoryEntry) error {
	if e.Schema != HistorySchema {
		return fmt.Errorf("export: history entry schema %q, want %q", e.Schema, HistorySchema)
	}
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(b, '\n'))
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// ReadHistory decodes a history JSONL stream, validating each line's
// schema tag.
func ReadHistory(r io.Reader) ([]HistoryEntry, error) {
	var out []HistoryEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("export: history line %d: %w", line, err)
		}
		if e.Schema != HistorySchema {
			return nil, fmt.Errorf("export: history line %d schema %q, want %q", line, e.Schema, HistorySchema)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
