package export

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureBench builds a fim-bench/v1 file with the given per-cell wall
// times, keyed "dataset/algorithm" with fixed rep/threads.
func fixtureBench(walls map[string]float64, itemsets int64) *BenchFile {
	var results []Bench
	for cell, wall := range walls {
		parts := strings.SplitN(cell, "/", 2)
		results = append(results, Bench{
			Schema: BenchSchema, Dataset: parts[0], Algorithm: parts[1],
			Representation: "diffset", Threads: 2, Rep: 1,
			WallSeconds: wall, PeakBytes: 1 << 20, Itemsets: itemsets,
		})
	}
	return &BenchFile{Schema: BenchSchema, Results: results}
}

// TestDiffBenchDetectsSlowdown: the acceptance fixture — an injected 2x
// slowdown trips a 1.5x tolerance and passes a 3x one.
func TestDiffBenchDetectsSlowdown(t *testing.T) {
	oldF := fixtureBench(map[string]float64{"chess/eclat": 1.0, "mushroom/eclat": 0.5}, 100)
	newF := fixtureBench(map[string]float64{"chess/eclat": 2.0, "mushroom/eclat": 0.5}, 100)
	d, err := DiffBench(oldF, newF)
	if err != nil {
		t.Fatal(err)
	}
	regs := d.Regressions(1.5)
	if len(regs) != 1 || regs[0].Key.Dataset != "chess" {
		t.Fatalf("Regressions(1.5) = %+v, want the 2x chess cell", regs)
	}
	if r := regs[0].WallRatio; r < 1.99 || r > 2.01 {
		t.Errorf("wall ratio = %v, want 2.0", r)
	}
	if regs := d.Regressions(3); len(regs) != 0 {
		t.Errorf("Regressions(3) = %+v, want none", regs)
	}
	if mm := d.ItemsetMismatches(); len(mm) != 0 {
		t.Errorf("ItemsetMismatches() = %+v, want none", mm)
	}
}

// TestDiffBenchItemsetMismatch: a count drift is flagged on the cell.
func TestDiffBenchItemsetMismatch(t *testing.T) {
	oldF := fixtureBench(map[string]float64{"chess/eclat": 1.0}, 100)
	newF := fixtureBench(map[string]float64{"chess/eclat": 1.0}, 99)
	d, err := DiffBench(oldF, newF)
	if err != nil {
		t.Fatal(err)
	}
	mm := d.ItemsetMismatches()
	if len(mm) != 1 || mm[0].OldItemsets != 100 || mm[0].NewItemsets != 99 {
		t.Fatalf("ItemsetMismatches() = %+v", mm)
	}
	var buf strings.Builder
	FormatBenchDiff(&buf, d, 1.5)
	if !strings.Contains(buf.String(), "COUNT MISMATCH") {
		t.Errorf("formatted diff does not flag the mismatch:\n%s", buf.String())
	}
}

// TestDiffBenchSubset: cells on one side only are reported, never
// compared; disjoint files are an error.
func TestDiffBenchSubset(t *testing.T) {
	full := fixtureBench(map[string]float64{"chess/eclat": 1.0, "mushroom/eclat": 0.5}, 100)
	sub := fixtureBench(map[string]float64{"mushroom/eclat": 0.5}, 100)
	d, err := DiffBench(full, sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 1 || len(d.OnlyOld) != 1 || d.OnlyOld[0].Dataset != "chess" {
		t.Errorf("subset diff: cells=%d onlyOld=%v", len(d.Cells), d.OnlyOld)
	}
	disjoint := fixtureBench(map[string]float64{"pumsb/apriori": 1.0}, 7)
	if _, err := DiffBench(full, disjoint); err == nil {
		t.Error("disjoint files did not error")
	}
}

// TestBenchCellsAggregates: min wall, max peak, rep counting, and
// rejection of itemset disagreement between reps of one cell.
func TestBenchCellsAggregates(t *testing.T) {
	f := &BenchFile{Schema: BenchSchema, Results: []Bench{
		{Schema: BenchSchema, Dataset: "chess", Algorithm: "eclat", Representation: "diffset",
			Threads: 2, Rep: 1, WallSeconds: 1.0, PeakBytes: 100, Itemsets: 10},
		{Schema: BenchSchema, Dataset: "chess", Algorithm: "eclat", Representation: "diffset",
			Threads: 2, Rep: 2, WallSeconds: 0.8, PeakBytes: 300, Itemsets: 10},
	}}
	cells, err := BenchCells(f)
	if err != nil {
		t.Fatal(err)
	}
	c := cells[BenchKey{Dataset: "chess", Algorithm: "eclat", Representation: "diffset", Threads: 2}]
	if c.Wall != 0.8 || c.Peak != 300 || c.Reps != 2 || c.Itemsets != 10 {
		t.Errorf("aggregated cell = %+v", c)
	}
	f.Results[1].Itemsets = 11
	if _, err := BenchCells(f); err == nil {
		t.Error("itemset disagreement between reps not rejected")
	}
}

// TestScheduleCellsDistinct: a schedule variant is its own cell (keyed
// with an @sched suffix), and StripSchedule collapses it onto the base
// cell so a steal-mode file diffs against a default-schedule baseline.
func TestScheduleCellsDistinct(t *testing.T) {
	f := &BenchFile{Schema: BenchSchema, Results: []Bench{
		{Schema: BenchSchema, Dataset: "chess", Algorithm: "eclat", Representation: "diffset",
			Threads: 2, Rep: 1, WallSeconds: 1.0, PeakBytes: 100, Itemsets: 10},
		{Schema: BenchSchema, Dataset: "chess", Algorithm: "eclat", Representation: "diffset",
			Schedule: "steal", Threads: 2, Rep: 1, WallSeconds: 0.7, PeakBytes: 100, Itemsets: 10},
	}}
	cells, err := BenchCells(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %+v, want the steal variant kept distinct", cells)
	}
	k := BenchKey{Dataset: "chess", Algorithm: "eclat", Representation: "diffset",
		Schedule: "steal", Threads: 2}
	if k.String() != "chess/eclat/diffset/t2@steal" {
		t.Errorf("key string = %q", k.String())
	}
	if c, ok := cells[k]; !ok || c.Wall != 0.7 {
		t.Errorf("steal cell = %+v ok=%v", c, ok)
	}

	// Stripping the schedule merges the variant into the base cell: the
	// steal results now aggregate as extra reps of the default cell.
	StripSchedule(f)
	cells, err = BenchCells(f)
	if err != nil {
		t.Fatal(err)
	}
	base := BenchKey{Dataset: "chess", Algorithm: "eclat", Representation: "diffset", Threads: 2}
	if len(cells) != 1 {
		t.Fatalf("post-strip cells = %+v, want one merged cell", cells)
	}
	if c := cells[base]; c.Wall != 0.7 || c.Reps != 2 {
		t.Errorf("merged cell = %+v, want min wall 0.7 over 2 reps", c)
	}
}

// TestHistoryAppendRead: entries append as JSONL and read back in
// order; a second append does not disturb the first.
func TestHistoryAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	f1 := fixtureBench(map[string]float64{"chess/eclat": 1.0}, 100)
	f1.GeneratedUnixNS = 111
	f2 := fixtureBench(map[string]float64{"chess/eclat": 1.1}, 100)
	f2.GeneratedUnixNS = 222
	for i, f := range []*BenchFile{f1, f2} {
		e, err := NewHistoryEntry(f, "run")
		if err != nil {
			t.Fatal(err)
		}
		if err := AppendHistory(path, e); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	r, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	entries, err := ReadHistory(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].GeneratedUnixNS != 111 || entries[1].GeneratedUnixNS != 222 {
		t.Fatalf("history = %+v", entries)
	}
	c, ok := entries[1].Cells["chess/eclat/diffset/t2"]
	if !ok || c.Wall != 1.1 {
		t.Errorf("entry cells = %+v", entries[1].Cells)
	}
}

// TestProvenanceStamped: NewBenchFile records build facts, and files
// written before the provenance fields existed still validate.
func TestProvenanceStamped(t *testing.T) {
	f := NewBenchFile([]Bench{{
		Schema: BenchSchema, Dataset: "chess", Algorithm: "eclat",
		Representation: "diffset", Threads: 1, Rep: 1, Itemsets: 1,
	}})
	if f.GoVersion == "" || f.GOMAXPROCS < 1 {
		t.Errorf("provenance = %+v", f.Provenance)
	}
	legacy := strings.NewReader(`{"schema":"fim-bench/v1","results":[
		{"schema":"fim-bench/v1","dataset":"chess","algorithm":"eclat",
		 "threads":1,"rep":1,"wall_seconds":0.1,"peak_bytes":1,"itemsets":1}]}`)
	if _, err := ReadBenchFile(legacy); err != nil {
		t.Errorf("pre-provenance file rejected: %v", err)
	}
}

// TestBatchCellsDistinct: a batch-mode variant is its own cell (keyed
// with a #batch suffix), and StripBatch collapses it onto the base cell
// so a -batch=off file diffs against a batched baseline.
func TestBatchCellsDistinct(t *testing.T) {
	f := &BenchFile{Schema: BenchSchema, Results: []Bench{
		{Schema: BenchSchema, Dataset: "chess", Algorithm: "apriori", Representation: "tidset",
			Threads: 2, Rep: 1, WallSeconds: 1.0, PeakBytes: 100, Itemsets: 10},
		{Schema: BenchSchema, Dataset: "chess", Algorithm: "apriori", Representation: "tidset",
			Batch: "off", Threads: 2, Rep: 1, WallSeconds: 1.4, PeakBytes: 100, Itemsets: 10},
	}}
	cells, err := BenchCells(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %+v, want the batch-off variant kept distinct", cells)
	}
	k := BenchKey{Dataset: "chess", Algorithm: "apriori", Representation: "tidset",
		Batch: "off", Threads: 2}
	if k.String() != "chess/apriori/tidset/t2#off" {
		t.Errorf("key string = %q", k.String())
	}
	if c, ok := cells[k]; !ok || c.Wall != 1.4 {
		t.Errorf("batch-off cell = %+v ok=%v", c, ok)
	}

	StripBatch(f)
	cells, err = BenchCells(f)
	if err != nil {
		t.Fatal(err)
	}
	base := BenchKey{Dataset: "chess", Algorithm: "apriori", Representation: "tidset", Threads: 2}
	if len(cells) != 1 {
		t.Fatalf("post-strip cells = %+v, want one merged cell", cells)
	}
	if c := cells[base]; c.Wall != 1.0 || c.Reps != 2 {
		t.Errorf("merged cell = %+v, want min wall 1.0 over 2 reps", c)
	}
}
