package export

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// Progress is an Observer that prints a human-readable line per event
// to w — the sink behind fimmine -progress. It writes diagnostics only
// (no itemsets), so pointing it at stderr keeps piped stdout clean. It
// is safe for concurrent use.
type Progress struct {
	mu sync.Mutex
	w  io.Writer
}

// NewProgress returns a progress printer writing to w.
func NewProgress(w io.Writer) *Progress { return &Progress{w: w} }

func (p *Progress) Event(e obs.Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch e.Type {
	case obs.RunStart:
		fmt.Fprintf(p.w, "run  %s/%s workers=%d dataset=%s minsup=%d transactions=%d\n",
			e.Algorithm, e.Representation, e.Workers, e.Dataset, e.MinSupport, e.Transactions)
	case obs.LevelStart:
		if e.Pruned > 0 {
			fmt.Fprintf(p.w, "  >> %-24s candidates=%d (pruned %d)\n", e.Phase, e.Candidates, e.Pruned)
		} else {
			fmt.Fprintf(p.w, "  >> %-24s candidates=%d\n", e.Phase, e.Candidates)
		}
	case obs.LevelEnd:
		fmt.Fprintf(p.w, "  << %-24s frequent=%d live=%s elapsed=%v\n",
			e.Phase, e.Frequent, fmtBytes(e.LiveBytes), time.Duration(e.ElapsedNS).Round(time.Microsecond))
	case obs.PhaseEnd:
		fmt.Fprintf(p.w, "     %-24s loop n=%d sched=%s wall=%v imbalance=%.2f\n",
			e.Phase, e.Candidates, e.Schedule, time.Duration(e.ElapsedNS).Round(time.Microsecond), e.Imbalance)
	case obs.BudgetWarning:
		fmt.Fprintf(p.w, "  !! %s budget at %.0f%% (%d of %d)\n",
			e.Resource, e.Fraction*100, e.Used, e.Limit)
	case obs.Degraded:
		fmt.Fprintf(p.w, "  !! degraded to %s at level %d (live=%s)\n",
			e.Representation, e.Level, fmtBytes(e.LiveBytes))
	case obs.Stop:
		fmt.Fprintf(p.w, "  xx stopped: %s (%s)\n", e.Reason, e.Err)
	case obs.RunEnd:
		status := "complete"
		if e.Incomplete {
			status = "incomplete"
		}
		fmt.Fprintf(p.w, "done %s itemsets=%d maxk=%d peak=%s elapsed=%v\n",
			status, e.Itemsets, e.MaxK, fmtBytes(e.PeakLiveBytes),
			time.Duration(e.ElapsedNS).Round(time.Millisecond))
	}
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
