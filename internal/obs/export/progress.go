package export

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// Progress is an Observer that prints a human-readable line per event
// to w — the sink behind fimmine -progress. It writes diagnostics only
// (no itemsets), so pointing it at stderr keeps piped stdout clean. It
// is safe for concurrent use.
//
// When w is a terminal, the per-loop phase_end lines (the chatty ones —
// one per scheduler loop) render transiently: each overwrites the last
// with a carriage return, and the next durable line clears them, so a
// long run shows a live ticker instead of scrolling loop spam. A run
// that stops early still ends with full final lines (the stop reason
// and the done summary), never a half-overwritten ticker. Piped or
// file output gets plain newline-terminated lines for every event.
type Progress struct {
	mu  sync.Mutex
	w   io.Writer
	tty bool
	// transient reports whether the last write was an unterminated
	// ticker line that the next write must clear.
	transient bool
}

// NewProgress returns a progress printer writing to w, with terminal
// rendering when w is a character device.
func NewProgress(w io.Writer) *Progress {
	p := &Progress{w: w}
	if f, ok := w.(*os.File); ok {
		if st, err := f.Stat(); err == nil && st.Mode()&os.ModeCharDevice != 0 {
			p.tty = true
		}
	}
	return p
}

// setTerminal forces terminal rendering on or off (tests and callers
// that know better than the fd probe).
func (p *Progress) setTerminal(on bool) {
	p.mu.Lock()
	p.tty = on
	p.mu.Unlock()
}

// line prints one durable, newline-terminated line, clearing any
// pending ticker first.
func (p *Progress) line(format string, args ...any) {
	if p.transient {
		fmt.Fprint(p.w, "\r\x1b[K")
		p.transient = false
	}
	fmt.Fprintf(p.w, format+"\n", args...)
}

// tick prints a transient ticker line on a terminal (overwriting the
// previous tick); off-terminal it is an ordinary line.
func (p *Progress) tick(format string, args ...any) {
	if !p.tty {
		p.line(format, args...)
		return
	}
	fmt.Fprintf(p.w, "\r"+format+"\x1b[K", args...)
	p.transient = true
}

func (p *Progress) Event(e obs.Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch e.Type {
	case obs.RunStart:
		p.line("run  %s/%s workers=%d dataset=%s minsup=%d transactions=%d",
			e.Algorithm, e.Representation, e.Workers, e.Dataset, e.MinSupport, e.Transactions)
	case obs.LevelStart:
		if e.Pruned > 0 {
			p.line("  >> %-24s candidates=%d (pruned %d)", e.Phase, e.Candidates, e.Pruned)
		} else {
			p.line("  >> %-24s candidates=%d", e.Phase, e.Candidates)
		}
	case obs.LevelEnd:
		p.line("  << %-24s frequent=%d live=%s elapsed=%v",
			e.Phase, e.Frequent, fmtBytes(e.LiveBytes), time.Duration(e.ElapsedNS).Round(time.Microsecond))
	case obs.PhaseEnd:
		p.tick("     %-24s loop n=%d sched=%s wall=%v imbalance=%.2f",
			e.Phase, e.Candidates, e.Schedule, time.Duration(e.ElapsedNS).Round(time.Microsecond), e.Imbalance)
	case obs.BudgetWarning:
		p.line("  !! %s budget at %.0f%% (%d of %d)",
			e.Resource, e.Fraction*100, e.Used, e.Limit)
	case obs.Degraded:
		p.line("  !! degraded to %s at level %d (live=%s)",
			e.Representation, e.Level, fmtBytes(e.LiveBytes))
	case obs.KernelCounters:
		// Silent on the ticker: counter dumps are for the report/events
		// sinks, not the human progress feed.
	case obs.Stop:
		p.line("  xx stopped: %s (%s)", e.Reason, e.Err)
	case obs.RunEnd:
		status := "complete"
		if e.Incomplete {
			status = "incomplete"
		}
		p.line("done %s itemsets=%d maxk=%d peak=%s elapsed=%v",
			status, e.Itemsets, e.MaxK, fmtBytes(e.PeakLiveBytes),
			time.Duration(e.ElapsedNS).Round(time.Millisecond))
	}
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
