package export

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// Server exposes a live run over HTTP — the fimmine -metrics-addr
// endpoint. Routes:
//
//	/              index with links
//	/report        the ReportBuilder's current snapshot as JSON
//	/trace         the span timeline so far, as Chrome trace-event JSON
//	/debug/vars    expvar (memstats, cmdline)
//	/debug/pprof/  net/http/pprof profiles
//
// It binds its own listener and mux (never the defaults), so ":0"
// works for tests and multiple servers can coexist in one process.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an exposition server for b on addr (host:port; ":0"
// picks a free port — read it back with Addr). tr, when non-nil, backs
// a live /trace snapshot: each GET renders the spans recorded so far,
// so a long mine can be inspected in Perfetto mid-run. It returns once
// the listener is bound; serving continues in a background goroutine
// until Close.
func Serve(addr string, b *ReportBuilder, tr *obs.TraceRecorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "<html><body><h1>fim run</h1><ul>"+
			"<li><a href=\"/report\">/report</a> — run report snapshot</li>"+
			"<li><a href=\"/trace\">/trace</a> — span timeline (Chrome trace-event JSON)</li>"+
			"<li><a href=\"/debug/vars\">/debug/vars</a> — expvar</li>"+
			"<li><a href=\"/debug/pprof/\">/debug/pprof/</a> — profiles</li>"+
			"</ul></body></html>")
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := WriteReport(w, b.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.Error(w, "no trace recorder attached (run fimmine with -trace)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := WriteTrace(w, BuildTrace(tr)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
