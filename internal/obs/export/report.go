package export

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// ReportSchema identifies the run-report JSON layout. Consumers should
// reject documents whose schema field differs.
const ReportSchema = "fim-run-report/v1"

// LevelReport is one level/class stage of the search, as reported by
// its level_start/level_end event pair.
type LevelReport struct {
	// Level is the itemset size the stage produced (0 when the stage
	// spans sizes, e.g. a whole depth-first recursion).
	Level int `json:"level,omitempty"`
	// Phase is the stage name ("apriori/gen3", "eclat/pairs", ...).
	Phase string `json:"phase"`
	// Candidates and Pruned count the stage's input: candidates
	// evaluated, and how many subset pruning removed before evaluation.
	Candidates int `json:"candidates"`
	Pruned     int `json:"pruned,omitempty"`
	// Frequent counts the stage's surviving (emitted) itemsets.
	Frequent int `json:"frequent"`
	// LiveBytes is the accounted live payload footprint after the stage
	// committed — the paper's Table IV per-level memory series.
	LiveBytes int64 `json:"live_bytes"`
	// ElapsedNS is the stage's wall time.
	ElapsedNS int64 `json:"elapsed_ns"`
}

// PhaseReport is one scheduler loop's load-balance record.
type PhaseReport struct {
	Phase    string `json:"phase"`
	Schedule string `json:"schedule"`
	// N is the loop's iteration count.
	N int `json:"n"`
	// WallNS is the loop's wall time; Imbalance is max/mean per-worker
	// busy time (1.0 = perfectly balanced) — the paper's
	// static-vs-dynamic scheduling quantity, measured.
	WallNS    int64   `json:"wall_ns"`
	Imbalance float64 `json:"imbalance"`
	// Workers is the per-worker breakdown.
	Workers []obs.WorkerLoad `json:"workers,omitempty"`
}

// Warning is one budget_warning occurrence.
type Warning struct {
	Resource string  `json:"resource"`
	Fraction float64 `json:"fraction"`
	Used     int64   `json:"used"`
	Limit    int64   `json:"limit"`
}

// StopInfo describes why an incomplete run ended.
type StopInfo struct {
	// Reason is the stable classification ("canceled", "deadline",
	// "budget:memory", "budget:itemsets", "budget:duration",
	// "worker-panic", "error").
	Reason string `json:"reason"`
	// Error is the stop cause's Error() text.
	Error string `json:"error,omitempty"`
}

// Report is the machine-readable summary of one mining run, assembled
// from its event stream by ReportBuilder and emitted by fimmine
// -report. Schema is always ReportSchema.
type Report struct {
	Schema string `json:"schema"`

	// RunID is the run correlation identifier carried by the event
	// stream (obs.Event.RunID), present when the run was served under an
	// external identity — it joins this report to the service's
	// /metrics, flight-recorder and SSE views of the same run.
	RunID int64 `json:"run_id,omitempty"`

	// Run configuration (from run_start).
	Dataset        string `json:"dataset,omitempty"`
	Algorithm      string `json:"algorithm"`
	Representation string `json:"representation,omitempty"`
	Workers        int    `json:"workers"`
	MinSupport     int    `json:"min_support"`
	Transactions   int    `json:"transactions"`

	// Levels is the per-level series; Phases the per-scheduler-loop
	// load-balance series.
	Levels []LevelReport `json:"levels"`
	Phases []PhaseReport `json:"phases,omitempty"`

	// Control-plane history.
	Warnings        []Warning `json:"warnings,omitempty"`
	Degraded        bool      `json:"degraded,omitempty"`
	DegradedAtLevel int       `json:"degraded_at_level,omitempty"`
	Stop            *StopInfo `json:"stop,omitempty"`

	// KernelCounters holds the run's per-kernel operation totals
	// (kernel_counters event), keyed by kcount's wire names. Optional:
	// absent from reports of runs predating the counter layer.
	KernelCounters map[string]int64 `json:"kernel_counters,omitempty"`

	// Totals (from run_end).
	Itemsets      int64 `json:"itemsets"`
	MaxK          int   `json:"max_k"`
	PeakLiveBytes int64 `json:"peak_live_bytes"`
	Incomplete    bool  `json:"incomplete,omitempty"`
	ElapsedNS     int64 `json:"elapsed_ns"`

	// GeneratedUnixNS stamps when the report was finalized.
	GeneratedUnixNS int64 `json:"generated_unix_ns,omitempty"`
}

// MaxImbalance returns the worst scheduler-loop imbalance in the run
// (0 when no phases were recorded).
func (r *Report) MaxImbalance() float64 {
	var mx float64
	for _, p := range r.Phases {
		if p.Imbalance > mx {
			mx = p.Imbalance
		}
	}
	return mx
}

// ReportBuilder is an Observer that folds the event stream into a
// Report as it arrives. It is safe for concurrent use; Snapshot may be
// called at any time (the HTTP endpoint does), Report after the run
// returns.
type ReportBuilder struct {
	mu     sync.Mutex
	r      Report
	opened map[string]obs.Event // phase -> pending level_start
}

// NewReportBuilder returns an empty builder.
func NewReportBuilder() *ReportBuilder {
	return &ReportBuilder{r: Report{Schema: ReportSchema}, opened: map[string]obs.Event{}}
}

// Event folds e into the report.
func (b *ReportBuilder) Event(e obs.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.r.RunID == 0 && e.RunID != 0 {
		b.r.RunID = e.RunID
	}
	switch e.Type {
	case obs.RunStart:
		b.r.Dataset = e.Dataset
		b.r.Algorithm = e.Algorithm
		b.r.Representation = e.Representation
		b.r.Workers = e.Workers
		b.r.MinSupport = e.MinSupport
		b.r.Transactions = e.Transactions
	case obs.LevelStart:
		b.opened[e.Phase] = e
	case obs.LevelEnd:
		lr := LevelReport{
			Level:      e.Level,
			Phase:      e.Phase,
			Candidates: e.Candidates,
			Pruned:     e.Pruned,
			Frequent:   e.Frequent,
			LiveBytes:  e.LiveBytes,
			ElapsedNS:  e.ElapsedNS,
		}
		// The opening event carries the candidate/pruned counts for
		// stages whose level_end omits them.
		if s, ok := b.opened[e.Phase]; ok {
			if lr.Candidates == 0 {
				lr.Candidates = s.Candidates
			}
			if lr.Pruned == 0 {
				lr.Pruned = s.Pruned
			}
			delete(b.opened, e.Phase)
		}
		b.r.Levels = append(b.r.Levels, lr)
	case obs.PhaseEnd:
		b.r.Phases = append(b.r.Phases, PhaseReport{
			Phase:     e.Phase,
			Schedule:  e.Schedule,
			N:         e.Candidates,
			WallNS:    e.ElapsedNS,
			Imbalance: e.Imbalance,
			Workers:   append([]obs.WorkerLoad(nil), e.Load...),
		})
	case obs.BudgetWarning:
		b.r.Warnings = append(b.r.Warnings, Warning{
			Resource: e.Resource, Fraction: e.Fraction, Used: e.Used, Limit: e.Limit,
		})
	case obs.Degraded:
		b.r.Degraded = true
		if b.r.DegradedAtLevel == 0 {
			b.r.DegradedAtLevel = e.Level
		}
	case obs.Stop:
		if b.r.Stop == nil {
			b.r.Stop = &StopInfo{Reason: e.Reason, Error: e.Err}
		}
	case obs.KernelCounters:
		if len(e.Counters) > 0 {
			b.r.KernelCounters = make(map[string]int64, len(e.Counters))
			for k, v := range e.Counters {
				b.r.KernelCounters[k] = v
			}
		}
	case obs.RunEnd:
		if b.r.Algorithm == "" {
			b.r.Algorithm = e.Algorithm
		}
		b.r.Itemsets = e.Itemsets
		b.r.MaxK = e.MaxK
		b.r.PeakLiveBytes = e.PeakLiveBytes
		b.r.Incomplete = e.Incomplete
		b.r.Degraded = b.r.Degraded || e.DegradedRun
		b.r.ElapsedNS = e.ElapsedNS
	}
}

// Snapshot returns a deep copy of the report as built so far — valid
// mid-run, which is what the HTTP /report endpoint serves.
func (b *ReportBuilder) Snapshot() *Report {
	b.mu.Lock()
	defer b.mu.Unlock()
	cp := b.r
	cp.Levels = append([]LevelReport(nil), b.r.Levels...)
	cp.Phases = make([]PhaseReport, len(b.r.Phases))
	for i, p := range b.r.Phases {
		cp.Phases[i] = p
		cp.Phases[i].Workers = append([]obs.WorkerLoad(nil), p.Workers...)
	}
	cp.Warnings = append([]Warning(nil), b.r.Warnings...)
	if b.r.Stop != nil {
		s := *b.r.Stop
		cp.Stop = &s
	}
	if b.r.KernelCounters != nil {
		cp.KernelCounters = make(map[string]int64, len(b.r.KernelCounters))
		for k, v := range b.r.KernelCounters {
			cp.KernelCounters[k] = v
		}
	}
	return &cp
}

// Report finalizes and returns the report, stamping GeneratedUnixNS.
func (b *ReportBuilder) Report() *Report {
	r := b.Snapshot()
	r.GeneratedUnixNS = time.Now().UnixNano()
	return r
}

// WriteReport JSON-encodes r (indented) to w.
func WriteReport(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport decodes and validates one report document.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	if err := ValidateReport(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// ValidateReport checks a report document against the fim-run-report/v1
// schema invariants: schema tag, required identity fields, per-level
// count sanity, phase imbalance bounds, and stop/incomplete coherence.
func ValidateReport(r *Report) error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("export: schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.Algorithm == "" {
		return fmt.Errorf("export: report missing algorithm")
	}
	if r.MinSupport < 1 {
		return fmt.Errorf("export: min_support %d below 1", r.MinSupport)
	}
	if r.Transactions < 0 || r.Itemsets < 0 || r.MaxK < 0 || r.PeakLiveBytes < 0 || r.ElapsedNS < 0 {
		return fmt.Errorf("export: negative totals")
	}
	for i, l := range r.Levels {
		if l.Phase == "" {
			return fmt.Errorf("export: level %d missing phase name", i)
		}
		if l.Candidates < 0 || l.Pruned < 0 || l.Frequent < 0 || l.LiveBytes < 0 || l.ElapsedNS < 0 {
			return fmt.Errorf("export: level %q has negative counts", l.Phase)
		}
		// No frequent<=candidates invariant: Eclat's expansion stages
		// count tasks as candidates, and one task can emit many itemsets.
	}
	for _, p := range r.Phases {
		if p.Phase == "" {
			return fmt.Errorf("export: phase record missing name")
		}
		if p.Imbalance != 0 && p.Imbalance < 1 {
			return fmt.Errorf("export: phase %q imbalance %v below 1", p.Phase, p.Imbalance)
		}
		var tasks, spawned int64
		for _, w := range p.Workers {
			if w.BusyNS < 0 || w.Tasks < 0 || w.Chunks < 0 || w.Spawned < 0 || w.Stolen < 0 {
				return fmt.Errorf("export: phase %q worker %d has negative counters", p.Phase, w.Worker)
			}
			tasks += w.Tasks
			spawned += w.Spawned
		}
		// A work-stealing loop executes its n roots plus every spawned
		// subtask; chunked loops have spawned == 0 and reduce to tasks == n.
		if len(p.Workers) > 0 && tasks != int64(p.N)+spawned {
			return fmt.Errorf("export: phase %q worker tasks sum %d != n %d + spawned %d", p.Phase, tasks, p.N, spawned)
		}
	}
	for k, v := range r.KernelCounters {
		if v < 0 {
			return fmt.Errorf("export: kernel counter %q negative (%d)", k, v)
		}
	}
	if r.Stop != nil && !r.Incomplete {
		return fmt.Errorf("export: stop recorded but run not marked incomplete")
	}
	if r.Incomplete && r.Stop == nil {
		return fmt.Errorf("export: incomplete run without stop record")
	}
	return nil
}

// ValidateEvents checks the ordering invariants of one run's event
// stream: exactly one run_start first and one run_end last, every
// level_end preceded by its phase's level_start, and no phase opened
// twice without closing. The fault-injection tests and the obsvalidate
// tool run this over captured streams.
func ValidateEvents(events []obs.Event) error {
	if len(events) == 0 {
		return fmt.Errorf("export: empty event stream")
	}
	if events[0].Type != obs.RunStart {
		return fmt.Errorf("export: stream starts with %q, want run_start", events[0].Type)
	}
	if events[len(events)-1].Type != obs.RunEnd {
		return fmt.Errorf("export: stream ends with %q, want run_end", events[len(events)-1].Type)
	}
	open := map[string]bool{}
	seenEnd := map[string]int{}
	for i, e := range events {
		switch e.Type {
		case obs.RunStart:
			if i != 0 {
				return fmt.Errorf("export: run_start at position %d", i)
			}
		case obs.RunEnd:
			if i != len(events)-1 {
				return fmt.Errorf("export: run_end at position %d of %d", i, len(events)-1)
			}
		case obs.LevelStart:
			if open[e.Phase] {
				return fmt.Errorf("export: level %q opened twice", e.Phase)
			}
			open[e.Phase] = true
		case obs.LevelEnd:
			if !open[e.Phase] {
				return fmt.Errorf("export: level_end %q without level_start", e.Phase)
			}
			open[e.Phase] = false
			seenEnd[e.Phase]++
			if seenEnd[e.Phase] > 1 {
				return fmt.Errorf("export: level %q closed %d times", e.Phase, seenEnd[e.Phase])
			}
		case obs.PhaseEnd, obs.BudgetWarning, obs.Degraded, obs.Stop, obs.KernelCounters:
			// Interleaved control-plane events carry no ordering
			// obligation beyond being inside the run.
		default:
			return fmt.Errorf("export: unknown event type %q at position %d", e.Type, i)
		}
	}
	return nil
}
