package export

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// BenchSchema identifies the fimbench result JSON layout (one document
// per run, an array of them per experiment file). Future PRs diff perf
// against committed BENCH_*.json baselines, so the field set is frozen
// per schema version.
const BenchSchema = "fim-bench/v1"

// Bench is one benchmark measurement: a single (dataset, algorithm,
// representation, threads) run.
type Bench struct {
	Schema         string `json:"schema"`
	Dataset        string `json:"dataset"`
	Algorithm      string `json:"algorithm"`
	Representation string `json:"representation,omitempty"`
	// Schedule names a non-default loop schedule (e.g. "steal"); empty
	// means the algorithm's own default. Files written before the field
	// existed decode with it empty, so the v1 schema is unchanged.
	Schedule string `json:"schedule,omitempty"`
	// Batch names a non-default combine-batching mode ("off" when the
	// prefix-blocked batched kernels are disabled); empty means the
	// default (batched). Same backward-compatibility story as Schedule:
	// files written before the field existed decode with it empty.
	Batch string `json:"batch,omitempty"`
	// Layout names a non-default tidset memory layout ("tiled" for the
	// tile-partitioned kernels); empty means the representation's flat
	// default. Same backward-compatibility story as Schedule: files
	// written before the field existed decode with it empty.
	Layout      string  `json:"layout,omitempty"`
	Threads     int     `json:"threads"`
	Rep         int     `json:"rep"`
	WallSeconds float64 `json:"wall_seconds"`
	PeakBytes   int64   `json:"peak_bytes"`
	Itemsets    int64   `json:"itemsets"`
}

// Provenance records where a benchmark file came from, so a regression
// flagged months later can be traced to a commit and a machine. All
// fields are optional in the schema: files written before this stamp
// existed still validate, and comparisons never key on provenance.
type Provenance struct {
	GitCommit  string `json:"git_commit,omitempty"`
	GoVersion  string `json:"go_version,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	Hostname   string `json:"hostname,omitempty"`
}

// CollectProvenance stamps the running binary's build and host facts:
// the vcs revision embedded by the Go linker (empty for non-VCS
// builds and plain `go run`), the toolchain version, GOMAXPROCS, and
// the hostname.
func CollectProvenance() Provenance {
	p := Provenance{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if h, err := os.Hostname(); err == nil {
		p.Hostname = h
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				p.GitCommit = s.Value
			}
		}
	}
	return p
}

// BenchFile is the document fimbench -json writes: the schema tag, a
// generation stamp, provenance, and the measurements.
type BenchFile struct {
	Schema          string `json:"schema"`
	GeneratedUnixNS int64  `json:"generated_unix_ns,omitempty"`
	Provenance
	Results []Bench `json:"results"`
}

// NewBenchFile wraps results in a stamped document.
func NewBenchFile(results []Bench) *BenchFile {
	return &BenchFile{
		Schema:          BenchSchema,
		GeneratedUnixNS: time.Now().UnixNano(),
		Provenance:      CollectProvenance(),
		Results:         results,
	}
}

// WriteBenchFile JSON-encodes f (indented) to w.
func WriteBenchFile(w io.Writer, f *BenchFile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadBenchFile decodes and validates one benchmark document.
func ReadBenchFile(r io.Reader) (*BenchFile, error) {
	var f BenchFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	if err := ValidateBenchFile(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// ValidateBenchFile checks a benchmark document against the
// fim-bench/v1 schema invariants.
func ValidateBenchFile(f *BenchFile) error {
	if f.Schema != BenchSchema {
		return fmt.Errorf("export: bench schema %q, want %q", f.Schema, BenchSchema)
	}
	if len(f.Results) == 0 {
		return fmt.Errorf("export: bench file has no results")
	}
	for i, b := range f.Results {
		if b.Schema != BenchSchema {
			return fmt.Errorf("export: result %d schema %q, want %q", i, b.Schema, BenchSchema)
		}
		if b.Dataset == "" || b.Algorithm == "" {
			return fmt.Errorf("export: result %d missing dataset or algorithm", i)
		}
		if b.Threads < 1 {
			return fmt.Errorf("export: result %d threads %d below 1", i, b.Threads)
		}
		if b.Rep < 1 {
			return fmt.Errorf("export: result %d rep %d below 1", i, b.Rep)
		}
		if b.WallSeconds < 0 || b.PeakBytes < 0 || b.Itemsets < 0 {
			return fmt.Errorf("export: result %d has negative measurements", i)
		}
	}
	return nil
}
