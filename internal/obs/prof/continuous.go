// The continuous profiler: an always-on background loop that keeps a
// small ring of fixed-window CPU profiles, so a profile *covering* an
// incident already exists when the incident is noticed — no "reproduce
// it with profiling on" step. The cost model is the standard one for
// continuous profiling: Go's CPU profiler samples at a fixed 100 Hz
// regardless of how long the window is, so the steady-state overhead is
// the sampling cost (single-digit percent at worst, gated <2% in CI
// like the metrics event tap), and the retention cost is bounded by the
// ring.
package prof

import (
	"bytes"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// ContinuousConfig tunes the continuous profiler. Zero fields get
// defaults.
type ContinuousConfig struct {
	// Window is one profile's duration. Default 60s; floored at 10ms.
	Window time.Duration
	// Ring is how many completed windows are retained. Default 4.
	Ring int
}

func (c ContinuousConfig) withDefaults() ContinuousConfig {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Window < 10*time.Millisecond {
		c.Window = 10 * time.Millisecond
	}
	if c.Ring <= 0 {
		c.Ring = 4
	}
	return c
}

// Window is one completed (or cut-short) profile window: the covered
// interval and the gzipped pprof protobuf bytes.
type Window struct {
	StartUnixNS int64  `json:"start_unix_ns"`
	EndUnixNS   int64  `json:"end_unix_ns"`
	Profile     []byte `json:"profile"`
}

// Continuous is the profiler. Construct with NewContinuous, call Start
// once, Stop on the way out. The process-wide CPU profiler is exclusive:
// if something else (another Continuous, a -cpuprofile flag) holds it, a
// window is skipped and counted rather than failing the owner — the
// profiler degrades to "no coverage" instead of taking the process down
// with it.
type Continuous struct {
	cfg ContinuousConfig

	mu   sync.Mutex
	ring []Window
	next int
	full bool

	cutCh               chan chan Window
	stopCh              chan struct{}
	doneCh              chan struct{}
	started             atomic.Bool
	startOnce, stopOnce sync.Once
	skipped             atomic.Int64
}

// NewContinuous returns a stopped profiler.
func NewContinuous(cfg ContinuousConfig) *Continuous {
	cfg = cfg.withDefaults()
	return &Continuous{
		cfg:    cfg,
		ring:   make([]Window, cfg.Ring),
		cutCh:  make(chan chan Window),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
}

// Start launches the background window loop. Safe to call once; later
// calls are no-ops.
func (c *Continuous) Start() {
	c.startOnce.Do(func() {
		c.started.Store(true)
		go c.loop()
	})
}

// Stop ends the loop, discarding the in-flight partial window, and
// releases the process CPU profiler. Idempotent; safe before Start.
func (c *Continuous) Stop() {
	c.stopOnce.Do(func() {
		if !c.started.Load() {
			close(c.doneCh)
			return
		}
		close(c.stopCh)
		<-c.doneCh
	})
}

// Cut ends the current window early, files it into the ring, and
// returns it — the incident engine's "give me the profile covering
// right now". The second return is false when no profile is available
// (profiler not started, or every recent window was skipped because the
// process profiler was held elsewhere); the caller then falls back to
// the newest retained window, if any.
func (c *Continuous) Cut() (Window, bool) {
	if !c.started.Load() {
		return c.latest()
	}
	reply := make(chan Window, 1)
	select {
	case c.cutCh <- reply:
		w := <-reply
		if len(w.Profile) == 0 {
			return c.latest()
		}
		return w, true
	case <-c.doneCh:
		return c.latest()
	}
}

// latest returns the newest retained window.
func (c *Continuous) latest() (Window, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := c.next - 1
	if idx < 0 {
		if !c.full {
			return Window{}, false
		}
		idx = len(c.ring) - 1
	}
	w := c.ring[idx]
	return w, len(w.Profile) > 0
}

// Windows returns the retained windows, oldest first.
func (c *Continuous) Windows() []Window {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Window
	if c.full {
		out = append(out, c.ring[c.next:]...)
	}
	for _, w := range c.ring[:c.next] {
		if len(w.Profile) > 0 {
			out = append(out, w)
		}
	}
	return out
}

// Skipped reports how many windows could not start because the process
// CPU profiler was held by someone else.
func (c *Continuous) Skipped() int64 { return c.skipped.Load() }

// file puts a completed window into the ring.
func (c *Continuous) file(w Window) {
	c.mu.Lock()
	c.ring[c.next] = w
	c.next++
	if c.next == len(c.ring) {
		c.next, c.full = 0, true
	}
	c.mu.Unlock()
}

// loop runs fixed windows back to back: start the profiler into a
// buffer, wait out the window (or a cut, or stop), rotate. A failed
// StartCPUProfile — the profiler is process-exclusive — skips that
// window but keeps the loop alive, so coverage resumes as soon as the
// other holder lets go.
func (c *Continuous) loop() {
	defer close(c.doneCh)
	timer := time.NewTimer(c.cfg.Window)
	defer timer.Stop()
	for {
		var buf bytes.Buffer
		running := pprof.StartCPUProfile(&buf) == nil
		if !running {
			c.skipped.Add(1)
		}
		start := time.Now().UnixNano()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(c.cfg.Window)

		select {
		case <-c.stopCh:
			if running {
				pprof.StopCPUProfile()
				c.file(Window{StartUnixNS: start, EndUnixNS: time.Now().UnixNano(), Profile: buf.Bytes()})
			}
			return
		case reply := <-c.cutCh:
			var w Window
			if running {
				pprof.StopCPUProfile()
				w = Window{StartUnixNS: start, EndUnixNS: time.Now().UnixNano(), Profile: buf.Bytes()}
				c.file(w)
			}
			reply <- w
		case <-timer.C:
			if running {
				pprof.StopCPUProfile()
				c.file(Window{StartUnixNS: start, EndUnixNS: time.Now().UnixNano(), Profile: buf.Bytes()})
			}
		}
	}
}
