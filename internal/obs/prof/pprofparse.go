// A dependency-free reader for the slice of the pprof protobuf format
// the incident machinery needs: enough to verify that a profile parses
// and to enumerate the label key→values present on its samples. The
// full profile schema lives in github.com/google/pprof; pulling that in
// for two assertions would be the tail wagging the dog, and the wire
// format is stable (proto3: Profile.sample = 2, Profile.string_table =
// 6; Sample.label = 3; Label.key = 1, Label.str = 2, both indices into
// the string table).
package prof

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// protoField is one decoded field: its number, wire type, varint value
// (wire type 0) or bytes (wire type 2).
type protoField struct {
	num  int
	wire int
	vi   uint64
	b    []byte
}

// protoFields walks one protobuf message, calling fn per field. It
// understands just enough of the wire format to skip what it does not
// care about.
func protoFields(buf []byte, fn func(protoField) error) error {
	for len(buf) > 0 {
		key, n := uvarint(buf)
		if n <= 0 {
			return errors.New("pprof: bad field key")
		}
		buf = buf[n:]
		f := protoField{num: int(key >> 3), wire: int(key & 7)}
		switch f.wire {
		case 0: // varint
			v, n := uvarint(buf)
			if n <= 0 {
				return errors.New("pprof: bad varint")
			}
			f.vi = v
			buf = buf[n:]
		case 1: // 64-bit
			if len(buf) < 8 {
				return errors.New("pprof: short fixed64")
			}
			buf = buf[8:]
		case 2: // length-delimited
			l, n := uvarint(buf)
			if n <= 0 || uint64(len(buf)-n) < l {
				return errors.New("pprof: bad length")
			}
			f.b = buf[n : n+int(l)]
			buf = buf[n+int(l):]
		case 5: // 32-bit
			if len(buf) < 4 {
				return errors.New("pprof: short fixed32")
			}
			buf = buf[4:]
		default:
			return fmt.Errorf("pprof: unsupported wire type %d", f.wire)
		}
		if err := fn(f); err != nil {
			return err
		}
	}
	return nil
}

// uvarint decodes a varint; n <= 0 means malformed.
func uvarint(buf []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(buf) && i < 10; i++ {
		b := buf[i]
		v |= uint64(b&0x7f) << (7 * i)
		if b < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

// gunzipProfile undoes pprof's gzip framing; raw (already-inflated)
// bytes pass through.
func gunzipProfile(b []byte) ([]byte, error) {
	if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		return b, nil
	}
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}

// LabelValues returns the string-label sets present on a profile's
// samples: key → the set of values observed, e.g.
// LabelValues(p)["fim_run_id"]["17"]. The profile may be gzipped (as
// runtime/pprof writes it) or raw.
func LabelValues(profile []byte) (map[string]map[string]bool, error) {
	raw, err := gunzipProfile(profile)
	if err != nil {
		return nil, fmt.Errorf("pprof: gunzip: %w", err)
	}
	var strings []string
	type ref struct{ key, str uint64 }
	var refs []ref
	err = protoFields(raw, func(f protoField) error {
		switch {
		case f.num == 6 && f.wire == 2: // string_table
			strings = append(strings, string(f.b))
		case f.num == 2 && f.wire == 2: // sample
			return protoFields(f.b, func(sf protoField) error {
				if sf.num != 3 || sf.wire != 2 { // label
					return nil
				}
				var r ref
				if err := protoFields(sf.b, func(lf protoField) error {
					switch lf.num {
					case 1:
						r.key = lf.vi
					case 2:
						r.str = lf.vi
					}
					return nil
				}); err != nil {
					return err
				}
				if r.key != 0 && r.str != 0 {
					refs = append(refs, r)
				}
				return nil
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string]bool)
	for _, r := range refs {
		if r.key >= uint64(len(strings)) || r.str >= uint64(len(strings)) {
			return nil, fmt.Errorf("pprof: label string index out of range (%d, %d of %d)", r.key, r.str, len(strings))
		}
		k, v := strings[r.key], strings[r.str]
		if out[k] == nil {
			out[k] = make(map[string]bool)
		}
		out[k][v] = true
	}
	return out, nil
}

// CheckProfile verifies that b parses as a pprof profile (gzipped or
// raw): the validator's "is this really a profile" check for incident
// bundles. Works for CPU and heap profiles alike.
func CheckProfile(b []byte) error {
	if len(b) == 0 {
		return errors.New("pprof: empty profile")
	}
	raw, err := gunzipProfile(b)
	if err != nil {
		return fmt.Errorf("pprof: gunzip: %w", err)
	}
	fields := 0
	if err := protoFields(raw, func(protoField) error { fields++; return nil }); err != nil {
		return err
	}
	if fields == 0 {
		return errors.New("pprof: no fields decoded")
	}
	return nil
}
