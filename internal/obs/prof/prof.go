// Package prof is the engine's CPU-attribution layer: pprof goroutine
// labels that slice a service profile by mining run and search phase,
// an always-on continuous profiler keeping a ring of recent CPU-profile
// windows, and goroutine/heap snapshot helpers for incident bundles.
//
// Labels answer the question the paper's scalability analysis keeps
// asking — *where* does the CPU time go when the machine saturates —
// per run and per phase instead of per process. Do wraps a run's
// coordinator in pprof.Do with the run identity (fim_run_id, tenant,
// algorithm, representation); a PhaseLabeler riding the run's event
// stream re-labels the coordinator at every level_start, and because
// the scheduler spawns its worker goroutines fresh for each loop (see
// internal/sched), workers inherit the coordinator's label set at spawn
// — phase attribution costs the engine zero plumbing.
//
// The package depends only on the standard library.
package prof

import (
	"bytes"
	"context"
	"runtime/pprof"
	"strconv"
	"sync/atomic"

	"repro/internal/obs"
)

// The profile label keys. `go tool pprof -tagshow` / tagfocus address
// samples by these names, so they are part of the profile schema.
const (
	// LabelRunID carries the serving layer's registry run ID (decimal),
	// the same correlation key stamped on events, traces and reports.
	LabelRunID = "fim_run_id"
	// LabelTenant carries the requesting tenant.
	LabelTenant = "fim_tenant"
	// LabelAlgo carries the algorithm name ("apriori", "eclat", ...).
	LabelAlgo = "fim_algo"
	// LabelRep carries the vertical representation name.
	LabelRep = "fim_rep"
	// LabelPhase carries the current search phase — the Phase string of
	// the run's level_start events ("eclat/classes", "apriori/gen2", ...)
	// — or PhaseSetup before the first level opens.
	LabelPhase = "fim_phase"
)

// PhaseSetup is the phase label before the first level_start: recode,
// vertical build, and every other cost the per-level accounting misses.
const PhaseSetup = "setup"

// RunLabels is the run identity stamped onto every CPU sample of a
// labeled run. Empty fields are omitted; a zero RunID is omitted too
// (one-shot CLI runs without an external identity keep algo/phase
// attribution only).
type RunLabels struct {
	RunID  int64
	Tenant string
	Algo   string
	Rep    string
}

// Do runs f with the run-identity labels (plus fim_phase=setup) applied
// to the current goroutine for the duration, restoring the previous
// label set afterwards. Goroutines started inside f — the scheduler's
// worker teams included — inherit the labels current at their spawn.
func Do(ctx context.Context, l RunLabels, f func(context.Context)) {
	kv := make([]string, 0, 10)
	if l.RunID != 0 {
		kv = append(kv, LabelRunID, strconv.FormatInt(l.RunID, 10))
	}
	if l.Tenant != "" {
		kv = append(kv, LabelTenant, l.Tenant)
	}
	if l.Algo != "" {
		kv = append(kv, LabelAlgo, l.Algo)
	}
	if l.Rep != "" {
		kv = append(kv, LabelRep, l.Rep)
	}
	kv = append(kv, LabelPhase, PhaseSetup)
	pprof.Do(ctx, pprof.Labels(kv...), f)
}

// PhaseLabeler is the Observer leg that keeps fim_phase current: on
// every level_start it re-labels the calling goroutine (the mining
// coordinator) with the event's Phase, merged over the run labels Do
// installed. Workers spawned for that level's scheduler loops inherit
// the updated set. It must be Armed from inside Do's function with Do's
// context before the run starts; events arriving unarmed are ignored.
type PhaseLabeler struct {
	ctx atomic.Pointer[context.Context]
}

// NewPhaseLabeler returns an unarmed labeler.
func NewPhaseLabeler() *PhaseLabeler { return &PhaseLabeler{} }

// Arm gives the labeler the labeled context to merge phase updates
// onto. Call it first inside Do's function, on the run's coordinator
// goroutine.
func (p *PhaseLabeler) Arm(ctx context.Context) {
	p.ctx.Store(&ctx)
}

// Event implements obs.Observer: level_start re-labels the current
// goroutine with the new phase. Other event kinds are ignored — and so
// are events on goroutines other than the one that will spawn workers;
// level_start is emitted by the coordinator before each expansion, so
// the label lands exactly where inheritance needs it.
func (p *PhaseLabeler) Event(e obs.Event) {
	if e.Type != obs.LevelStart || e.Phase == "" {
		return
	}
	ctxp := p.ctx.Load()
	if ctxp == nil {
		return
	}
	pprof.SetGoroutineLabels(pprof.WithLabels(*ctxp, pprof.Labels(LabelPhase, e.Phase)))
}

// GoroutineDump returns the full-stack goroutine dump (the debug=2 text
// form of /debug/pprof/goroutine) — the incident bundle's "what was
// everyone doing" snapshot.
func GoroutineDump() []byte {
	var buf bytes.Buffer
	_ = pprof.Lookup("goroutine").WriteTo(&buf, 2)
	return buf.Bytes()
}

// HeapProfile returns the heap allocation profile in pprof protobuf
// format (gzipped), as /debug/pprof/heap would serve it.
func HeapProfile() ([]byte, error) {
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
