package prof_test

// Tests drive the profiler through the public mining facade: a labeled
// run's CPU samples must actually carry the run identity, end to end
// through fim.Options → pprof.Do → scheduler worker inheritance →
// profile protobuf. The CPU profiler is process-exclusive, so no test
// here uses t.Parallel.

import (
	"context"
	"os"
	"testing"
	"time"

	fim "repro"
	"repro/internal/obs/prof"
)

// mineLabeled runs one labeled mushroom mine — heavy enough to land
// tens of CPU samples at the profiler's 100 Hz.
func mineLabeled(t *testing.T, runID int64, tenant string) {
	t.Helper()
	db, err := fim.Dataset("mushroom", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := fim.Options{
		Algorithm:      fim.Eclat,
		Representation: fim.Tidset,
		Workers:        2,
		ProfileLabels:  true,
		RunID:          runID,
		Tenant:         tenant,
	}
	if _, err := fim.MineAbsolute(db, db.AbsoluteSupport(0.25), opt); err != nil {
		t.Fatal(err)
	}
}

// TestRunLabelsInProfile is the tentpole's core claim: a continuous-
// profiler window covering a labeled run contains samples carrying the
// run's fim_run_id, fim_tenant, fim_algo and fim_phase labels.
func TestRunLabelsInProfile(t *testing.T) {
	c := prof.NewContinuous(prof.ContinuousConfig{Window: 30 * time.Second, Ring: 2})
	c.Start()
	defer c.Stop()

	const runID = 424242
	// The profiler samples at 100 Hz; a short mine can in principle land
	// few enough samples to miss. Mine again (same window) before giving
	// up rather than flaking.
	var labels map[string]map[string]bool
	for attempt := 0; attempt < 4; attempt++ {
		mineLabeled(t, runID, "unit-prof")
		w, ok := c.Cut()
		if !ok {
			if c.Skipped() > 0 {
				t.Skipf("CPU profiler held elsewhere (%d windows skipped)", c.Skipped())
			}
			t.Fatal("continuous profiler returned no window")
		}
		if w.StartUnixNS == 0 || w.EndUnixNS <= w.StartUnixNS {
			t.Fatalf("window interval [%d, %d] not sane", w.StartUnixNS, w.EndUnixNS)
		}
		if err := prof.CheckProfile(w.Profile); err != nil {
			t.Fatalf("window profile does not parse: %v", err)
		}
		lv, err := prof.LabelValues(w.Profile)
		if err != nil {
			t.Fatalf("reading profile labels: %v", err)
		}
		if lv[prof.LabelRunID]["424242"] {
			labels = lv
			break
		}
	}
	if labels == nil {
		t.Fatalf("no samples labeled %s=424242 after 4 labeled mines", prof.LabelRunID)
	}
	if !labels[prof.LabelTenant]["unit-prof"] {
		t.Errorf("no %s=unit-prof samples; saw %v", prof.LabelTenant, labels[prof.LabelTenant])
	}
	if !labels[prof.LabelAlgo]["eclat"] {
		t.Errorf("no %s=eclat samples; saw %v", prof.LabelAlgo, labels[prof.LabelAlgo])
	}
	if !labels[prof.LabelRep]["tidset"] {
		t.Errorf("no %s=tidset samples; saw %v", prof.LabelRep, labels[prof.LabelRep])
	}
	if len(labels[prof.LabelPhase]) == 0 {
		t.Error("no fim_phase labels at all")
	}
}

// TestContinuousRotationAndStop: windows rotate on their own, the ring
// keeps the newest, every retained profile parses, and Stop is
// idempotent (and safe before Start).
func TestContinuousRotationAndStop(t *testing.T) {
	c := prof.NewContinuous(prof.ContinuousConfig{Window: 20 * time.Millisecond, Ring: 2})
	c.Start()

	// Burn CPU while several windows elapse so the profiles hold samples.
	deadline := time.Now().Add(150 * time.Millisecond)
	x := 0
	for time.Now().Before(deadline) {
		x += x*31 + 1
	}
	_ = x
	c.Stop()
	c.Stop() // idempotent

	ws := c.Windows()
	if c.Skipped() > 0 && len(ws) == 0 {
		t.Skipf("CPU profiler held elsewhere (%d windows skipped)", c.Skipped())
	}
	if len(ws) == 0 || len(ws) > 2 {
		t.Fatalf("retained %d windows, want 1..2 (ring 2)", len(ws))
	}
	for i, w := range ws {
		if err := prof.CheckProfile(w.Profile); err != nil {
			t.Fatalf("window %d does not parse: %v", i, err)
		}
		if i > 0 && ws[i-1].StartUnixNS > w.StartUnixNS {
			t.Fatalf("windows out of order: %d then %d", ws[i-1].StartUnixNS, w.StartUnixNS)
		}
	}

	// Cut after Stop falls back to the newest retained window.
	if w, ok := c.Cut(); !ok || len(w.Profile) == 0 {
		t.Fatalf("Cut after Stop: ok=%v len=%d, want the retained window", ok, len(w.Profile))
	}

	// Stop before Start must not hang or panic.
	never := prof.NewContinuous(prof.ContinuousConfig{})
	never.Stop()
	if _, ok := never.Cut(); ok {
		t.Fatal("never-started profiler produced a window")
	}
}

// TestExclusivitySkips: while one profiler holds the process CPU
// profiler, a second one skips windows instead of erroring, and counts
// them.
func TestExclusivitySkips(t *testing.T) {
	a := prof.NewContinuous(prof.ContinuousConfig{Window: time.Second, Ring: 1})
	a.Start()
	defer a.Stop()
	time.Sleep(10 * time.Millisecond) // let a grab the profiler
	if a.Skipped() > 0 {
		t.Skip("CPU profiler held outside the test; exclusivity not observable")
	}

	b := prof.NewContinuous(prof.ContinuousConfig{Window: 15 * time.Millisecond, Ring: 1})
	b.Start()
	defer b.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for b.Skipped() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if b.Skipped() == 0 {
		t.Fatal("second profiler never recorded a skipped window")
	}
	if _, ok := b.Cut(); ok {
		t.Fatal("second profiler produced a window while the first held the profiler")
	}
}

// TestPhaseLabelerUnarmed: events before Arm are ignored, not a panic.
func TestPhaseLabelerUnarmed(t *testing.T) {
	p := prof.NewPhaseLabeler()
	p.Event(fim.Event{Type: fim.EventLevelStart, Phase: "eclat/classes"})
	p.Arm(context.Background())
	p.Event(fim.Event{Type: fim.EventLevelStart, Phase: "eclat/classes"})
	p.Event(fim.Event{Type: fim.EventRunEnd}) // non-level events ignored
}

// TestProfileParsersRejectGarbage: the validator helpers fail loudly on
// non-profiles instead of vacuously passing incident bundles.
func TestProfileParsersRejectGarbage(t *testing.T) {
	if err := prof.CheckProfile(nil); err == nil {
		t.Error("CheckProfile accepted an empty profile")
	}
	if err := prof.CheckProfile([]byte{0x1f, 0x8b, 0xff, 0xff}); err == nil {
		t.Error("CheckProfile accepted a truncated gzip header")
	}
	if _, err := prof.LabelValues([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Error("LabelValues accepted garbage")
	}
	// Snapshot helpers produce parseable output.
	if hp, err := prof.HeapProfile(); err != nil || prof.CheckProfile(hp) != nil {
		t.Errorf("heap profile: err=%v, parse=%v", err, prof.CheckProfile(hp))
	}
	if gd := prof.GoroutineDump(); len(gd) == 0 {
		t.Error("goroutine dump empty")
	}
}

// TestProfilerOverhead is the CI gate extension for the continuous
// profiler: with FIMSERVE_OVERHEAD_GATE=1 it asserts that mining under
// an active profile window (labels included) costs < 2% wall time.
// Reps interleave base and profiled runs so machine drift lands on both
// sides.
func TestProfilerOverhead(t *testing.T) {
	if os.Getenv("FIMSERVE_OVERHEAD_GATE") == "" {
		t.Skip("set FIMSERVE_OVERHEAD_GATE=1 to run the overhead gate")
	}
	db, err := fim.Dataset("mushroom", 1)
	if err != nil {
		t.Fatal(err)
	}
	abs := db.AbsoluteSupport(0.2)

	// Stop is terminal per Continuous, so each profiled rep runs under a
	// fresh instance — that is what lets base and profiled reps
	// interleave at all.
	var skipped int64
	mineOnce := func(profiled bool) time.Duration {
		opt := fim.Options{Algorithm: fim.Eclat, Workers: 2}
		var c *prof.Continuous
		if profiled {
			c = prof.NewContinuous(prof.ContinuousConfig{Window: 10 * time.Second, Ring: 1})
			c.Start()
			opt.ProfileLabels = true
			opt.RunID = 7
			opt.Tenant = "gate"
		}
		start := time.Now()
		if _, err := fim.MineAbsolute(db, abs, opt); err != nil {
			t.Fatal(err)
		}
		d := time.Since(start)
		if c != nil {
			c.Stop()
			skipped += c.Skipped()
		}
		return d
	}
	// Warm the caches once before timing.
	mineOnce(false)

	best := func(a, b time.Duration) time.Duration {
		if b < a {
			return b
		}
		return a
	}
	base, profiled := time.Duration(1<<63-1), time.Duration(1<<63-1)
	for rep := 0; rep < 5; rep++ {
		if rep%2 == 0 {
			base = best(base, mineOnce(false))
			profiled = best(profiled, mineOnce(true))
		} else {
			profiled = best(profiled, mineOnce(true))
			base = best(base, mineOnce(false))
		}
	}
	if skipped > 0 {
		t.Skipf("CPU profiler held elsewhere (%d windows skipped); overhead not measurable", skipped)
	}
	ratio := float64(profiled) / float64(base)
	t.Logf("base %v, profiled %v, ratio %.4f", base, profiled, ratio)
	if ratio > 1.02 {
		t.Fatalf("continuous profiler overhead %.2f%% exceeds the 2%% gate (base %v, profiled %v)",
			(ratio-1)*100, base, profiled)
	}
}
