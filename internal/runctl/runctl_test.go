package runctl

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestNilControl: every method of a nil *Control is a safe no-op, the
// contract that lets miners run without run control for free.
func TestNilControl(t *testing.T) {
	var c *Control
	c.Close()
	c.Stop(errors.New("ignored"))
	if c.Stopped() {
		t.Error("nil control reports stopped")
	}
	if c.Cause() != nil || c.Err() != nil {
		t.Error("nil control reports a cause")
	}
	c.ChargeMem(1 << 30)
	if c.MemUsed() != 0 || c.OverMemory() {
		t.Error("nil control accounts memory")
	}
	if err := c.CheckMemory(); err != nil {
		t.Errorf("CheckMemory = %v", err)
	}
	if err := c.AddItemsets(1 << 20); err != nil {
		t.Errorf("AddItemsets = %v", err)
	}
	if c.Itemsets() != 0 {
		t.Error("nil control counts itemsets")
	}
	if c.Budget() != (Budget{}) {
		t.Error("nil control has a budget")
	}
}

// TestStopFirstCauseWins: concurrent stop reasons race; the first one
// recorded is the one reported, and later stops are no-ops.
func TestStopFirstCauseWins(t *testing.T) {
	c := New(context.Background(), Budget{})
	defer c.Close()
	first := errors.New("first")
	c.Stop(first)
	c.Stop(errors.New("second"))
	if !c.Stopped() {
		t.Fatal("not stopped")
	}
	if c.Cause() != first {
		t.Errorf("Cause = %v, want first", c.Cause())
	}
	if c.Err() != first {
		t.Errorf("Err = %v, want first", c.Err())
	}
	c.Stop(nil) // nil is ignored, not a reset
	if c.Cause() != first {
		t.Errorf("Cause after Stop(nil) = %v", c.Cause())
	}
}

// TestContextCancellation: cancelling the parent context raises the stop
// flag with context.Canceled, asynchronously via the watcher.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, Budget{})
	defer c.Close()
	if c.Stopped() {
		t.Fatal("stopped before cancel")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !c.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("stop flag never raised after cancel")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(c.Err(), context.Canceled) {
		t.Errorf("Err = %v, want context.Canceled", c.Err())
	}
}

// TestDeadlineContext: a context deadline surfaces as
// context.DeadlineExceeded.
func TestDeadlineContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	c := New(ctx, Budget{})
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !c.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("stop flag never raised after deadline")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(c.Err(), context.DeadlineExceeded) {
		t.Errorf("Err = %v, want context.DeadlineExceeded", c.Err())
	}
}

// TestDurationBudget: MaxDuration stops the run with a typed
// *BudgetError naming the duration resource.
func TestDurationBudget(t *testing.T) {
	c := New(context.Background(), Budget{MaxDuration: 5 * time.Millisecond})
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !c.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("stop flag never raised after duration budget")
		}
		time.Sleep(time.Millisecond)
	}
	var berr *BudgetError
	if !errors.As(c.Err(), &berr) || berr.Resource != "duration" {
		t.Errorf("Err = %v, want duration *BudgetError", c.Err())
	}
}

// TestMemoryBudget covers the charge/release accounting and the two
// enforcement points: CheckMemory (hard stop) and Err (which defers to
// the miner when degradation is possible).
func TestMemoryBudget(t *testing.T) {
	c := New(context.Background(), Budget{MaxMemoryBytes: 1000})
	defer c.Close()
	c.ChargeMem(800)
	if c.OverMemory() {
		t.Fatal("over budget at 800/1000")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err below budget = %v", err)
	}
	c.ChargeMem(800)
	c.ChargeMem(-200) // release: 1400 live
	if got := c.MemUsed(); got != 1400 {
		t.Fatalf("MemUsed = %d, want 1400", got)
	}
	if !c.OverMemory() {
		t.Fatal("not over budget at 1400/1000")
	}
	err := c.CheckMemory()
	var berr *BudgetError
	if !errors.As(err, &berr) || berr.Resource != "memory" || berr.Limit != 1000 || berr.Used != 1400 {
		t.Fatalf("CheckMemory = %v, want memory *BudgetError 1400/1000", err)
	}
	if !c.Stopped() {
		t.Error("CheckMemory breach did not stop the run")
	}
}

// TestErrSkipsMemoryWhenDegradable: with DegradeToDiffset set, Err does
// not hard-stop on a memory breach — the miner decides at its next level
// boundary whether to degrade instead. OverMemory still reports it.
func TestErrSkipsMemoryWhenDegradable(t *testing.T) {
	c := New(context.Background(), Budget{MaxMemoryBytes: 100, DegradeToDiffset: true})
	defer c.Close()
	c.ChargeMem(500)
	if err := c.Err(); err != nil {
		t.Fatalf("Err = %v, want nil under DegradeToDiffset", err)
	}
	if !c.OverMemory() {
		t.Fatal("OverMemory = false at 500/100")
	}
	// A miner with no degrade path enforces explicitly.
	if err := c.CheckMemory(); err == nil {
		t.Fatal("CheckMemory = nil at 500/100")
	}
}

// TestUnlimitedMemoryIsFree: with no memory budget, ChargeMem does not
// account at all (the hot path stays allocation- and contention-free).
func TestUnlimitedMemoryIsFree(t *testing.T) {
	c := New(context.Background(), Budget{})
	defer c.Close()
	c.ChargeMem(1 << 40)
	if c.MemUsed() != 0 || c.OverMemory() {
		t.Error("unbudgeted control accounted memory")
	}
}

// TestItemsetsBudget: AddItemsets trips exactly when the running total
// crosses the cap, and reports the totals in the error.
func TestItemsetsBudget(t *testing.T) {
	c := New(context.Background(), Budget{MaxItemsets: 10})
	defer c.Close()
	if err := c.AddItemsets(10); err != nil {
		t.Fatalf("AddItemsets(10) = %v at the cap", err)
	}
	err := c.AddItemsets(3)
	var berr *BudgetError
	if !errors.As(err, &berr) || berr.Resource != "itemsets" || berr.Limit != 10 || berr.Used != 13 {
		t.Fatalf("AddItemsets over cap = %v, want itemsets *BudgetError 13/10", err)
	}
	if !c.Stopped() {
		t.Error("itemsets breach did not stop the run")
	}
	if c.Itemsets() != 13 {
		t.Errorf("Itemsets = %d, want 13", c.Itemsets())
	}
}

// TestCloseReleasesWatchers: after Close, neither the context watcher
// nor the duration timer can stop the control anymore, and the control
// stays readable.
func TestCloseReleasesWatchers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := New(ctx, Budget{MaxDuration: 10 * time.Millisecond})
	c.Close()
	cancel()
	time.Sleep(30 * time.Millisecond) // would fire both watchers if live
	if c.Stopped() {
		t.Errorf("control stopped after Close: %v", c.Cause())
	}
}

// TestWorkerPanicErrorUnwrap: an error panic value is exposed through
// errors.Is/As via Unwrap.
func TestWorkerPanicErrorUnwrap(t *testing.T) {
	inner := errors.New("inner")
	perr := &WorkerPanicError{Value: inner, Worker: 2}
	if !errors.Is(perr, inner) {
		t.Error("errors.Is does not see the wrapped panic error")
	}
	plain := &WorkerPanicError{Value: "not an error"}
	if plain.Unwrap() != nil {
		t.Error("Unwrap of a non-error panic value is not nil")
	}
}

// TestBudgetErrorMessages: the messages name the resource and totals.
func TestBudgetErrorMessages(t *testing.T) {
	mem := &BudgetError{Resource: "memory", Limit: 100, Used: 150}
	if got := mem.Error(); got != "runctl: memory budget exhausted (used 150 of 100)" {
		t.Errorf("memory message = %q", got)
	}
	dur := &BudgetError{Resource: "duration", Limit: int64(time.Second), Used: int64(time.Second)}
	if got := dur.Error(); got != "runctl: duration budget exhausted (limit 1s)" {
		t.Errorf("duration message = %q", got)
	}
}
