package runctl

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestPoolSharedAccounting: two attached runs' charges sum in the pool,
// and each run's own ledger stays per-run.
func TestPoolSharedAccounting(t *testing.T) {
	p := NewPool(1000)
	a := New(context.Background(), Budget{})
	b := New(context.Background(), Budget{})
	a.AttachPool(p)
	b.AttachPool(p)
	a.ChargeMem(300)
	b.ChargeMem(400)
	if got := p.Used(); got != 700 {
		t.Fatalf("pool used = %d, want 700", got)
	}
	if a.MemUsed() != 300 || b.MemUsed() != 400 {
		t.Fatalf("per-run ledgers corrupted: a=%d b=%d", a.MemUsed(), b.MemUsed())
	}
	a.ChargeMem(-100)
	if got := p.Used(); got != 600 {
		t.Fatalf("pool used after release = %d, want 600", got)
	}
	if p.Peak() != 700 {
		t.Fatalf("pool peak = %d, want 700", p.Peak())
	}
	a.Close()
	b.Close()
	if got := p.Used(); got != 0 {
		t.Fatalf("pool not refunded on Close: used = %d", got)
	}
}

// TestPoolBreachStopsChargingRun: the pool breach surfaces as a typed
// shared-memory BudgetError at the chunk-boundary check of a run whose
// own budget is fine.
func TestPoolBreachStopsChargingRun(t *testing.T) {
	p := NewPool(500)
	a := New(context.Background(), Budget{})
	b := New(context.Background(), Budget{MaxMemoryBytes: 1 << 30})
	a.AttachPool(p)
	b.AttachPool(p)
	defer a.Close()
	defer b.Close()
	a.ChargeMem(400)
	b.ChargeMem(200) // pool now 600 > 500; b's own budget untouched
	err := b.Err()
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "shared-memory" {
		t.Fatalf("Err() = %v, want shared-memory BudgetError", err)
	}
	if be.Used != 600 || be.Limit != 500 {
		t.Fatalf("breach error carries used=%d limit=%d, want 600/500", be.Used, be.Limit)
	}
	// The other run also sees the breach at its next boundary check.
	if err := a.Err(); err == nil {
		t.Fatal("co-resident run passed its boundary check with the pool over capacity")
	}
}

// TestPoolUncapped: capBytes <= 0 tracks but never breaches.
func TestPoolUncapped(t *testing.T) {
	p := NewPool(0)
	c := New(context.Background(), Budget{})
	c.AttachPool(p)
	defer c.Close()
	c.ChargeMem(1 << 40)
	if err := c.Err(); err != nil {
		t.Fatalf("uncapped pool breached: %v", err)
	}
	if p.Fraction() != 0 {
		t.Fatalf("uncapped pool fraction = %v, want 0", p.Fraction())
	}
}

// TestPoolConcurrentChargeRefund: hammer the shared ledger from many
// runs under -race; the pool must return to zero after all Closes.
func TestPoolConcurrentChargeRefund(t *testing.T) {
	p := NewPool(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := New(context.Background(), Budget{})
				c.AttachPool(p)
				c.ChargeMem(64)
				c.ChargeMem(128)
				c.ChargeMem(-64)
				c.Close()
			}
		}()
	}
	wg.Wait()
	if got := p.Used(); got != 0 {
		t.Fatalf("pool used = %d after all runs closed, want 0", got)
	}
	if p.Peak() <= 0 {
		t.Fatal("pool peak not recorded")
	}
}
