// Shared-capacity accounting: a Pool is one machine-wide live-payload
// byte budget that several concurrent runs draw from. Each run keeps its
// own Control (per-run budget, cancellation, stop cause); attaching the
// Control to a Pool makes every ChargeMem also move the run's delta
// into the shared ledger, so the sum of all live payloads — not just
// any single run's — is what the breach check sees. This is the
// admission-control primitive the serving layer builds on: per-request
// budgets bound the tenant, the Pool bounds the machine.
package runctl

import "sync/atomic"

// Pool is a shared live-payload byte budget across concurrent runs.
// The zero Pool is unusable; construct with NewPool. A nil *Pool is
// valid everywhere and disables shared accounting.
type Pool struct {
	capBytes int64
	used     atomic.Int64
	peak     atomic.Int64
	breaches atomic.Int64
}

// NewPool returns a shared budget of capBytes live payload bytes across
// all attached runs. capBytes <= 0 means "track but never breach" —
// useful for pressure probes without a hard cap.
func NewPool(capBytes int64) *Pool {
	return &Pool{capBytes: capBytes}
}

// Cap returns the pool's byte capacity (0 = uncapped).
func (p *Pool) Cap() int64 {
	if p == nil {
		return 0
	}
	return p.capBytes
}

// Used returns the live payload bytes currently accounted across all
// attached runs.
func (p *Pool) Used() int64 {
	if p == nil {
		return 0
	}
	return p.used.Load()
}

// Peak returns the high-water mark of shared accounted bytes.
func (p *Pool) Peak() int64 {
	if p == nil {
		return 0
	}
	return p.peak.Load()
}

// Breaches returns how many runs the pool has stopped with a
// shared-memory budget breach since construction — a monotone counter
// the serving layer exposes as a time series.
func (p *Pool) Breaches() int64 {
	if p == nil {
		return 0
	}
	return p.breaches.Load()
}

// Fraction returns Used/Cap, or 0 for a nil or uncapped pool — the
// serving layer's memory-pressure probe.
func (p *Pool) Fraction() float64 {
	if p == nil || p.capBytes <= 0 {
		return 0
	}
	return float64(p.used.Load()) / float64(p.capBytes)
}

// charge moves delta bytes into the shared ledger and returns the new
// total, updating the peak on growth.
func (p *Pool) charge(delta int64) int64 {
	v := p.used.Add(delta)
	if delta > 0 {
		for {
			pk := p.peak.Load()
			if v <= pk || p.peak.CompareAndSwap(pk, v) {
				break
			}
		}
	}
	return v
}

// over reports whether the pool is past its capacity.
func (p *Pool) over() bool {
	return p != nil && p.capBytes > 0 && p.used.Load() > p.capBytes
}

// AttachPool joins this run to a shared capacity pool: every ChargeMem
// delta is mirrored into the pool, the chunk-boundary check (Err /
// CheckMemory) also fails when the *pool* is over capacity (resource
// "shared-memory"), and Close refunds whatever the run still holds.
// Attaching implies TrackMemory. Call before mining starts; attaching
// mid-run would leak the bytes charged before the attach.
func (c *Control) AttachPool(p *Pool) {
	if c == nil || p == nil {
		return
	}
	c.pool = p
	c.trackMem = true
}

// Pool returns the attached shared pool, or nil.
func (c *Control) Pool() *Pool {
	if c == nil {
		return nil
	}
	return c.pool
}

// releasePool refunds the run's outstanding shared-pool bytes; called by
// Close so a finished (or killed) run cannot pin shared capacity.
func (c *Control) releasePool() {
	if c.pool == nil {
		return
	}
	if held := c.mem.Load(); held != 0 {
		c.pool.charge(-held)
	}
	c.pool = nil
}

// checkPool stops the run with a shared-memory BudgetError when the
// attached pool is over capacity. The run that observes the breach is
// the one stopped — under concurrent runs that is whichever charged
// last, which is the degrade-don't-die behaviour the server wants: one
// victim, not a machine-wide OOM.
func (c *Control) checkPool() error {
	if c == nil || c.pool == nil || !c.pool.over() {
		return nil
	}
	err := &BudgetError{Resource: "shared-memory", Limit: c.pool.Cap(), Used: c.pool.Used()}
	if c.Stop(err) {
		// This run lost the capacity race and is the one being stopped:
		// count the breach once, on the stop that actually took.
		c.pool.breaches.Add(1)
	}
	return c.Cause()
}
