// Package runctl is the engine's run-control layer: cooperative
// cancellation, resource budgets, and typed stop reasons, threaded
// through every miner and checked by the scheduler at chunk boundaries.
//
// A Control is created per mining run (by fim.MineContext) from a
// context.Context and a Budget. The hot-path primitive is Stopped(), a
// single atomic load: context cancellation and the duration budget are
// turned into the same stop flag by background watchers, so workers
// never call time.Now or poll the context themselves. Err() is the
// chunk-boundary check: it additionally enforces the memory budget and
// records the first stop cause.
//
// A nil *Control is valid everywhere and disables all run control, so
// call sites pay one nil check when the feature is off.
package runctl

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Budget bounds a mining run's resource use. Zero fields mean
// "unlimited".
type Budget struct {
	// MaxMemoryBytes caps the live payload bytes (tidset/bitvector/
	// diffset sets) the miner accounts via ChargeMem. On breach the run
	// stops with a *BudgetError — unless DegradeToDiffset is set, in
	// which case the miner may switch representation instead.
	MaxMemoryBytes int64
	// MaxItemsets caps the number of frequent itemsets emitted.
	MaxItemsets int64
	// MaxDuration caps the run's wall-clock time.
	MaxDuration time.Duration
	// DegradeToDiffset lets Apriori/Eclat respond to a memory-budget
	// breach by converting the live payloads to diffsets (the paper's
	// own cure for the tidset/bitvector footprint blow-up, applied
	// adaptively) instead of stopping.
	DegradeToDiffset bool
}

// BudgetError reports that a run exceeded one of its Budget limits.
type BudgetError struct {
	// Resource names the exhausted budget: "memory", "itemsets" or
	// "duration".
	Resource string
	// Limit and Used are in the resource's unit (bytes, itemsets,
	// nanoseconds).
	Limit, Used int64
}

func (e *BudgetError) Error() string {
	switch e.Resource {
	case "duration":
		return fmt.Sprintf("runctl: duration budget exhausted (limit %v)", time.Duration(e.Limit))
	default:
		return fmt.Sprintf("runctl: %s budget exhausted (used %d of %d)", e.Resource, e.Used, e.Limit)
	}
}

// WorkerPanicError reports a panic recovered inside a scheduler worker.
// The panic is contained: the remaining chunks are cancelled, the team
// drains, and the miner returns this error instead of crashing the
// process.
type WorkerPanicError struct {
	// Value is the recovered panic value.
	Value any
	// Worker is the team-local index of the worker that panicked.
	Worker int
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("runctl: worker %d panicked: %v", e.Worker, e.Value)
}

// Unwrap exposes a panic value that was itself an error.
func (e *WorkerPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Control is one run's cancellation and budget state. Construct with
// New and release with Close; a nil *Control disables run control.
type Control struct {
	budget   Budget
	trackMem bool
	stopped  atomic.Bool
	mem      atomic.Int64
	peak     atomic.Int64
	items    atomic.Int64

	mu    sync.Mutex
	cause error

	// Warning thresholds (SetWarnFunc): warnFracs is ascending budget
	// fractions; memWarnIdx/itemWarnIdx count thresholds already fired,
	// so each fires exactly once. warnMu serializes the (rare) firing.
	warnFn      func(resource string, frac float64, used, limit int64)
	warnFracs   []float64
	warnMu      sync.Mutex
	memWarnIdx  atomic.Int32
	itemWarnIdx atomic.Int32

	stopCtxWatch func() bool
	timer        *time.Timer

	// pool, when non-nil, is the shared capacity ledger this run's
	// memory deltas are mirrored into (AttachPool).
	pool *Pool
}

// New builds a Control for one run. ctx cancellation and the duration
// budget are propagated to the stop flag by watchers that Close
// releases; callers must Close the Control when the run returns.
func New(ctx context.Context, b Budget) *Control {
	c := &Control{budget: b}
	if ctx != nil && ctx.Done() != nil {
		c.stopCtxWatch = context.AfterFunc(ctx, func() { c.Stop(ctx.Err()) })
	}
	if b.MaxDuration > 0 {
		c.timer = time.AfterFunc(b.MaxDuration, func() {
			c.Stop(&BudgetError{Resource: "duration", Limit: int64(b.MaxDuration), Used: int64(b.MaxDuration)})
		})
	}
	return c
}

// Close releases the Control's watchers. The Control remains readable
// (Err, Stopped) after Close.
func (c *Control) Close() {
	if c == nil {
		return
	}
	if c.stopCtxWatch != nil {
		c.stopCtxWatch()
	}
	if c.timer != nil {
		c.timer.Stop()
	}
	c.releasePool()
}

// Budget returns the run's budget (zero value for a nil Control).
func (c *Control) Budget() Budget {
	if c == nil {
		return Budget{}
	}
	return c.budget
}

// Stop records err as the run's stop cause and raises the stop flag.
// Only the first cause is kept; later calls are no-ops. A nil err is
// ignored. It reports whether this call recorded the cause — the
// winner of a racing stop, which accounting sites (the shared pool's
// breach counter) use to count each stopped run exactly once.
func (c *Control) Stop(err error) bool {
	if c == nil || err == nil {
		return false
	}
	c.mu.Lock()
	first := c.cause == nil
	if first {
		c.cause = err
	}
	c.mu.Unlock()
	c.stopped.Store(true)
	return first
}

// Stopped reports whether the run should unwind. It is a single atomic
// load, cheap enough for inner-loop checks.
func (c *Control) Stopped() bool {
	return c != nil && c.stopped.Load()
}

// Cause returns the recorded stop cause, or nil.
func (c *Control) Cause() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cause
}

// Err is the chunk-boundary check: it returns the stop cause if the run
// was stopped, and additionally enforces the memory budget for runs that
// cannot degrade (degradable runs handle memory at level boundaries via
// OverMemory, because switching representation can cure the breach).
func (c *Control) Err() error {
	if c == nil {
		return nil
	}
	if c.stopped.Load() {
		return c.Cause()
	}
	if !c.budget.DegradeToDiffset {
		if err := c.CheckMemory(); err != nil {
			return err
		}
	}
	return c.checkPool()
}

// TrackMemory enables live-payload accounting (and peak tracking) even
// without a memory budget, for observers that report footprint on
// unbudgeted runs. Call before mining starts.
func (c *Control) TrackMemory() {
	if c != nil {
		c.trackMem = true
	}
}

// SetWarnFunc arms budget warnings: fn fires once per fraction in fracs
// (ascending, each in (0, 1)) as the memory or itemsets budget fills,
// with the resource name, the fraction crossed, and the used/limit pair.
// fn is called from whichever mining goroutine crossed the threshold, so
// it must be safe for concurrent use with the rest of the run. Call
// before mining starts.
func (c *Control) SetWarnFunc(fracs []float64, fn func(resource string, frac float64, used, limit int64)) {
	if c == nil || fn == nil || len(fracs) == 0 {
		return
	}
	c.warnFracs = fracs
	c.warnFn = fn
}

// maybeWarn fires the not-yet-fired thresholds that used has crossed for
// one resource. The fast path (threshold not reached) is one atomic load
// and a float compare; firing serializes under warnMu.
func (c *Control) maybeWarn(resource string, idx *atomic.Int32, used, limit int64) {
	i := int(idx.Load())
	if i >= len(c.warnFracs) || float64(used) < c.warnFracs[i]*float64(limit) {
		return
	}
	c.warnMu.Lock()
	defer c.warnMu.Unlock()
	for int(idx.Load()) < len(c.warnFracs) {
		f := c.warnFracs[idx.Load()]
		if float64(used) < f*float64(limit) {
			return
		}
		idx.Add(1)
		c.warnFn(resource, f, used, limit)
	}
}

// ChargeMem accounts delta bytes of live payload (negative to release).
// Accounting runs when a memory budget is set or TrackMemory was called;
// otherwise this is a nil-check no-op.
func (c *Control) ChargeMem(delta int64) {
	if c == nil || (c.budget.MaxMemoryBytes <= 0 && !c.trackMem) {
		return
	}
	v := c.mem.Add(delta)
	if c.pool != nil {
		c.pool.charge(delta)
	}
	if delta <= 0 {
		return
	}
	for {
		p := c.peak.Load()
		if v <= p || c.peak.CompareAndSwap(p, v) {
			break
		}
	}
	if c.warnFn != nil && c.budget.MaxMemoryBytes > 0 {
		c.maybeWarn("memory", &c.memWarnIdx, v, c.budget.MaxMemoryBytes)
	}
}

// PeakMem returns the high-water mark of accounted live payload bytes.
func (c *Control) PeakMem() int64 {
	if c == nil {
		return 0
	}
	return c.peak.Load()
}

// MemUsed returns the currently accounted live payload bytes.
func (c *Control) MemUsed() int64 {
	if c == nil {
		return 0
	}
	return c.mem.Load()
}

// OverMemory reports whether the accounted payload exceeds the memory
// budget. Miners that can degrade consult this at level boundaries.
func (c *Control) OverMemory() bool {
	if c == nil || c.budget.MaxMemoryBytes <= 0 {
		return false
	}
	return c.mem.Load() > c.budget.MaxMemoryBytes
}

// CheckMemory stops the run with a memory BudgetError when the budget is
// breached, returning the error; otherwise nil.
func (c *Control) CheckMemory() error {
	if !c.OverMemory() {
		return nil
	}
	err := &BudgetError{Resource: "memory", Limit: c.budget.MaxMemoryBytes, Used: c.mem.Load()}
	c.Stop(err)
	return c.Cause()
}

// AddItemsets accounts n newly emitted frequent itemsets, stopping the
// run with an itemsets BudgetError when the budget is breached.
func (c *Control) AddItemsets(n int) error {
	if c == nil || n == 0 {
		return nil
	}
	total := c.items.Add(int64(n))
	if c.budget.MaxItemsets > 0 {
		if c.warnFn != nil {
			c.maybeWarn("itemsets", &c.itemWarnIdx, total, c.budget.MaxItemsets)
		}
		if total > c.budget.MaxItemsets {
			err := &BudgetError{Resource: "itemsets", Limit: c.budget.MaxItemsets, Used: total}
			c.Stop(err)
			return c.Cause()
		}
	}
	return nil
}

// Itemsets returns the number of itemsets accounted so far.
func (c *Control) Itemsets() int64 {
	if c == nil {
		return 0
	}
	return c.items.Load()
}
