// Package runctl is the engine's run-control layer: cooperative
// cancellation, resource budgets, and typed stop reasons, threaded
// through every miner and checked by the scheduler at chunk boundaries.
//
// A Control is created per mining run (by fim.MineContext) from a
// context.Context and a Budget. The hot-path primitive is Stopped(), a
// single atomic load: context cancellation and the duration budget are
// turned into the same stop flag by background watchers, so workers
// never call time.Now or poll the context themselves. Err() is the
// chunk-boundary check: it additionally enforces the memory budget and
// records the first stop cause.
//
// A nil *Control is valid everywhere and disables all run control, so
// call sites pay one nil check when the feature is off.
package runctl

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Budget bounds a mining run's resource use. Zero fields mean
// "unlimited".
type Budget struct {
	// MaxMemoryBytes caps the live payload bytes (tidset/bitvector/
	// diffset sets) the miner accounts via ChargeMem. On breach the run
	// stops with a *BudgetError — unless DegradeToDiffset is set, in
	// which case the miner may switch representation instead.
	MaxMemoryBytes int64
	// MaxItemsets caps the number of frequent itemsets emitted.
	MaxItemsets int64
	// MaxDuration caps the run's wall-clock time.
	MaxDuration time.Duration
	// DegradeToDiffset lets Apriori/Eclat respond to a memory-budget
	// breach by converting the live payloads to diffsets (the paper's
	// own cure for the tidset/bitvector footprint blow-up, applied
	// adaptively) instead of stopping.
	DegradeToDiffset bool
}

// BudgetError reports that a run exceeded one of its Budget limits.
type BudgetError struct {
	// Resource names the exhausted budget: "memory", "itemsets" or
	// "duration".
	Resource string
	// Limit and Used are in the resource's unit (bytes, itemsets,
	// nanoseconds).
	Limit, Used int64
}

func (e *BudgetError) Error() string {
	switch e.Resource {
	case "duration":
		return fmt.Sprintf("runctl: duration budget exhausted (limit %v)", time.Duration(e.Limit))
	default:
		return fmt.Sprintf("runctl: %s budget exhausted (used %d of %d)", e.Resource, e.Used, e.Limit)
	}
}

// WorkerPanicError reports a panic recovered inside a scheduler worker.
// The panic is contained: the remaining chunks are cancelled, the team
// drains, and the miner returns this error instead of crashing the
// process.
type WorkerPanicError struct {
	// Value is the recovered panic value.
	Value any
	// Worker is the team-local index of the worker that panicked.
	Worker int
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("runctl: worker %d panicked: %v", e.Worker, e.Value)
}

// Unwrap exposes a panic value that was itself an error.
func (e *WorkerPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Control is one run's cancellation and budget state. Construct with
// New and release with Close; a nil *Control disables run control.
type Control struct {
	budget  Budget
	stopped atomic.Bool
	mem     atomic.Int64
	items   atomic.Int64

	mu    sync.Mutex
	cause error

	stopCtxWatch func() bool
	timer        *time.Timer
}

// New builds a Control for one run. ctx cancellation and the duration
// budget are propagated to the stop flag by watchers that Close
// releases; callers must Close the Control when the run returns.
func New(ctx context.Context, b Budget) *Control {
	c := &Control{budget: b}
	if ctx != nil && ctx.Done() != nil {
		c.stopCtxWatch = context.AfterFunc(ctx, func() { c.Stop(ctx.Err()) })
	}
	if b.MaxDuration > 0 {
		c.timer = time.AfterFunc(b.MaxDuration, func() {
			c.Stop(&BudgetError{Resource: "duration", Limit: int64(b.MaxDuration), Used: int64(b.MaxDuration)})
		})
	}
	return c
}

// Close releases the Control's watchers. The Control remains readable
// (Err, Stopped) after Close.
func (c *Control) Close() {
	if c == nil {
		return
	}
	if c.stopCtxWatch != nil {
		c.stopCtxWatch()
	}
	if c.timer != nil {
		c.timer.Stop()
	}
}

// Budget returns the run's budget (zero value for a nil Control).
func (c *Control) Budget() Budget {
	if c == nil {
		return Budget{}
	}
	return c.budget
}

// Stop records err as the run's stop cause and raises the stop flag.
// Only the first cause is kept; later calls are no-ops. A nil err is
// ignored.
func (c *Control) Stop(err error) {
	if c == nil || err == nil {
		return
	}
	c.mu.Lock()
	if c.cause == nil {
		c.cause = err
	}
	c.mu.Unlock()
	c.stopped.Store(true)
}

// Stopped reports whether the run should unwind. It is a single atomic
// load, cheap enough for inner-loop checks.
func (c *Control) Stopped() bool {
	return c != nil && c.stopped.Load()
}

// Cause returns the recorded stop cause, or nil.
func (c *Control) Cause() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cause
}

// Err is the chunk-boundary check: it returns the stop cause if the run
// was stopped, and additionally enforces the memory budget for runs that
// cannot degrade (degradable runs handle memory at level boundaries via
// OverMemory, because switching representation can cure the breach).
func (c *Control) Err() error {
	if c == nil {
		return nil
	}
	if c.stopped.Load() {
		return c.Cause()
	}
	if !c.budget.DegradeToDiffset {
		if err := c.CheckMemory(); err != nil {
			return err
		}
	}
	return nil
}

// ChargeMem accounts delta bytes of live payload (negative to release).
func (c *Control) ChargeMem(delta int64) {
	if c == nil || c.budget.MaxMemoryBytes <= 0 {
		return
	}
	c.mem.Add(delta)
}

// MemUsed returns the currently accounted live payload bytes.
func (c *Control) MemUsed() int64 {
	if c == nil {
		return 0
	}
	return c.mem.Load()
}

// OverMemory reports whether the accounted payload exceeds the memory
// budget. Miners that can degrade consult this at level boundaries.
func (c *Control) OverMemory() bool {
	if c == nil || c.budget.MaxMemoryBytes <= 0 {
		return false
	}
	return c.mem.Load() > c.budget.MaxMemoryBytes
}

// CheckMemory stops the run with a memory BudgetError when the budget is
// breached, returning the error; otherwise nil.
func (c *Control) CheckMemory() error {
	if !c.OverMemory() {
		return nil
	}
	err := &BudgetError{Resource: "memory", Limit: c.budget.MaxMemoryBytes, Used: c.mem.Load()}
	c.Stop(err)
	return c.Cause()
}

// AddItemsets accounts n newly emitted frequent itemsets, stopping the
// run with an itemsets BudgetError when the budget is breached.
func (c *Control) AddItemsets(n int) error {
	if c == nil || n == 0 {
		return nil
	}
	total := c.items.Add(int64(n))
	if c.budget.MaxItemsets > 0 && total > c.budget.MaxItemsets {
		err := &BudgetError{Resource: "itemsets", Limit: c.budget.MaxItemsets, Used: total}
		c.Stop(err)
		return c.Cause()
	}
	return nil
}

// Itemsets returns the number of itemsets accounted so far.
func (c *Control) Itemsets() int64 {
	if c == nil {
		return 0
	}
	return c.items.Load()
}
