// The Deng linear-merge kernels. Every kernel is a single forward pass
// over already-sorted node lists — no galloping, no summaries, no
// per-element branching beyond the merge comparison — because the PPC
// ranks make both the 2-itemset ancestor test and the k-itemset
// difference order-compatible with the lists' sort order:
//
//	2-itemset:  DN(xy)  = { n ∈ N(x) : no ancestor of n in N(y) }
//	            support(xy) = support(x) − Σ count(DN(xy))
//	k-itemset:  DN(PXY) = DN(PY) \ DN(PX)       (set difference on Pre)
//	            support(PXY) = support(PX) − Σ count(DN(PXY))
//
// The k-item recurrence is structurally the diffset recurrence
// d(PXY) = d(PY) − d(PX) with tree nodes in place of transactions, so
// the representation drops into the miners' existing combine order
// unchanged; the lists are just shorter by the tree's co-occurrence
// compression. All kernels charge the nlist_nodes_merged counter with
// the entries they actually touched, the nodeset analogue of
// tids_compared.

package nodeset

import (
	"slices"

	"repro/internal/kcount"
)

// DiffL1Into builds the 2-itemset DiffNodeset of {x, y} (codes x < y)
// from the level-1 N-lists N(x) and N(y): the nodes of N(x) with no
// ancestor in N(y), appended to dst[:0]. Returns the list and its
// count sum, so support(xy) = support(x) − sum.
//
// The merge is driven from the short side. Within one item's N-list
// the Pre and Post orders agree (an antichain), so for each m ∈ ny, in
// order, the surviving prefix of nx — entries with Pre < m.Pre and
// Post < m.Post — is emitted (nothing later in ny can contain them:
// later Pre ranks are larger still), and then the covered run —
// entries with Post < m.Post, which necessarily have Pre > m.Pre and
// sit under m — is skipped by a galloping seek rather than touched
// element-wise. On the compressed trees this representation targets, a
// frequent item's node near the root covers whole subtrees of the
// deeper item's nodes, so the seek turns the dominant case from
// O(|nx|) into O(|ny| log |nx| + output).
func DiffL1Into(nx, ny []L1Entry, dst List) (List, int) {
	dst = dst[:0]
	sum, i, steps := 0, 0, 0
	for j := 0; j < len(ny) && i < len(nx); j++ {
		yPre, yPost := ny[j].Pre, ny[j].Post
		for i < len(nx) && nx[i].Pre < yPre && nx[i].Post < yPost {
			dst = append(dst, Entry{Pre: nx[i].Pre, Count: nx[i].Count})
			sum += int(nx[i].Count)
			i++
			steps++
		}
		i, steps = seekPost(nx, i, yPost, steps)
	}
	for ; i < len(nx); i++ {
		dst = append(dst, Entry{Pre: nx[i].Pre, Count: nx[i].Count})
		sum += int(nx[i].Count)
		steps++
	}
	kcount.AddNListMerge(steps + len(ny))
	return dst, sum
}

// DiffL1Size returns DiffL1Into's count sum without materializing the
// list — the SupportOnly form of the 2-itemset kernel.
func DiffL1Size(nx, ny []L1Entry) int {
	sum, i, steps := 0, 0, 0
	for j := 0; j < len(ny) && i < len(nx); j++ {
		yPre, yPost := ny[j].Pre, ny[j].Post
		for i < len(nx) && nx[i].Pre < yPre && nx[i].Post < yPost {
			sum += int(nx[i].Count)
			i++
			steps++
		}
		i, steps = seekPost(nx, i, yPost, steps)
	}
	for ; i < len(nx); i++ {
		sum += int(nx[i].Count)
		steps++
	}
	kcount.AddNListMerge(steps + len(ny))
	return sum
}

// seekPost returns the first index ≥ i whose Post rank reaches limit,
// by exponential probing then bisection — O(log run) probes to skip a
// covered run of any length. steps is advanced by the probe count so
// the merge counters reflect entries actually touched.
func seekPost(nx []L1Entry, i int, limit uint32, steps int) (int, int) {
	if i >= len(nx) || nx[i].Post >= limit {
		return i, steps
	}
	lo, step := i, 1 // nx[lo].Post < limit
	hi := len(nx)
	for probe := lo + step; probe < hi; probe = lo + step {
		steps++
		if nx[probe].Post >= limit {
			hi = probe
			break
		}
		lo = probe
		step <<= 1
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		steps++
		if nx[mid].Post < limit {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, steps + 1
}

// DiffInto computes the k-itemset DiffNodeset src \ sub (DN(PY) \
// DN(PX)) by a linear merge on Pre, appended to dst[:0]. Returns the
// list and its count sum, so support(PXY) = support(PX) − sum. Counts
// need no arithmetic: both lists reference nodes of one tree, so a
// shared Pre carries the same Count on both sides.
// The pass is driven by the subtrahend: for each b ∈ sub, the run of
// src entries below b is emitted in a two-term loop (branch-predictable
// on the common long-run case), then a single comparison cancels the
// shared node if present. Everything after the last subtrahend entry
// is appended wholesale.
func DiffInto(src, sub, dst List) (List, int) {
	dst = dst[:0]
	sum, i := 0, 0
	for j := 0; j < len(sub) && i < len(src); j++ {
		b := sub[j].Pre
		for i < len(src) && src[i].Pre < b {
			dst = append(dst, src[i])
			sum += int(src[i].Count)
			i++
		}
		if i < len(src) && src[i].Pre == b {
			i++
		}
	}
	for ; i < len(src); i++ {
		dst = append(dst, src[i])
		sum += int(src[i].Count)
	}
	kcount.AddNListMerge(len(src) + len(sub))
	return dst, sum
}

// DiffSize returns DiffInto's count sum without materializing the list.
func DiffSize(src, sub List) int {
	sum, i := 0, 0
	for j := 0; j < len(sub) && i < len(src); j++ {
		b := sub[j].Pre
		for i < len(src) && src[i].Pre < b {
			sum += int(src[i].Count)
			i++
		}
		if i < len(src) && src[i].Pre == b {
			i++
		}
	}
	for ; i < len(src); i++ {
		sum += int(src[i].Count)
	}
	kcount.AddNListMerge(len(src) + len(sub))
	return sum
}

// DiffL1ManyInto is the prefix-blocked form of DiffL1Into: one resident
// N-list nx (the block's shared parent x) against every sibling's
// N-list, storing child i's DiffNodeset in dsts[i] (appended to
// dsts[i][:0]) and its count sum in sums[i]. Charges the batch
// counters with nx's payload words as the parent traffic saved.
func DiffL1ManyInto(nx []L1Entry, nys [][]L1Entry, dsts []List, sums []int) {
	m := len(nys)
	if m == 0 {
		return
	}
	steps := 0
	for bi, ny := range nys {
		dst := dsts[bi][:0]
		sum, i := 0, 0
		for j := 0; j < len(ny) && i < len(nx); j++ {
			yPre, yPost := ny[j].Pre, ny[j].Post
			for i < len(nx) && nx[i].Pre < yPre && nx[i].Post < yPost {
				dst = append(dst, Entry{Pre: nx[i].Pre, Count: nx[i].Count})
				sum += int(nx[i].Count)
				i++
				steps++
			}
			i, steps = seekPost(nx, i, yPost, steps)
		}
		for ; i < len(nx); i++ {
			dst = append(dst, Entry{Pre: nx[i].Pre, Count: nx[i].Count})
			sum += int(nx[i].Count)
			steps++
		}
		dsts[bi], sums[bi] = dst, sum
		steps += len(ny)
	}
	kcount.AddNListMerge(steps)
	kcount.AddBatch(m, len(nx)*L1EntryBytes/4)
}

// DiffManyInto is the prefix-blocked form of DiffInto: the block's
// shared parent contributes the subtrahend sub = DN(PX), subtracted
// from every sibling's srcs[i] = DN(PY_i). Like tidset.DiffManyInto,
// the resident subtrahend is trimmed to each source's Pre window
// before the merge.
func DiffManyInto(sub List, srcs []List, dsts []List, sums []int) {
	m := len(srcs)
	if m == 0 {
		return
	}
	for i, src := range srcs {
		t := sub
		if len(src) > 0 && len(t) > 0 {
			t = trimList(t, src[0].Pre, src[len(src)-1].Pre)
		}
		dsts[i], sums[i] = DiffInto(src, t, dsts[i])
	}
	kcount.AddBatch(m, len(sub)*EntryBytes/4)
}

// trimList returns the sub-slice of l whose Pre ranks lie in the closed
// window [lo, hi], located by binary search: entries outside it cannot
// cancel an element of a list bounded by [lo, hi].
func trimList(l List, lo, hi uint32) List {
	a, _ := slices.BinarySearchFunc(l, lo, func(e Entry, limit uint32) int {
		if e.Pre < limit {
			return -1
		}
		if e.Pre > limit {
			return 1
		}
		return 0
	})
	b, _ := slices.BinarySearchFunc(l[a:], hi, func(e Entry, limit uint32) int {
		if e.Pre <= limit {
			return -1
		}
		return 1
	})
	return l[a : a+b]
}
