package nodeset

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

// paperExample mirrors the vertical package's 6-item example database.
const paperExample = `1 3 4 5
1 2 3 5
3 5
1 3 4
1 2 3 5
2 3 5
1 2 5 6
`

func exampleRecoded(t *testing.T, minSup int) *dataset.Recoded {
	t.Helper()
	db, err := dataset.ReadFIMI("paper", strings.NewReader(paperExample))
	if err != nil {
		t.Fatal(err)
	}
	return db.Recode(minSup)
}

// randomRecoded builds a deterministic random database: item i appears
// in a transaction with probability falling with i, giving the skewed
// supports the dense benchmarks have.
func randomRecoded(tb testing.TB, seed int64, nTrans, nItems, minSup int) *dataset.Recoded {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	for t := 0; t < nTrans; t++ {
		wrote := false
		for i := 0; i < nItems; i++ {
			p := 0.9 - 0.8*float64(i)/float64(nItems)
			if rng.Float64() < p {
				fmt.Fprintf(&sb, "%d ", i+1)
				wrote = true
			}
		}
		if !wrote {
			fmt.Fprintf(&sb, "%d ", 1+rng.Intn(nItems))
		}
		sb.WriteByte('\n')
	}
	db, err := dataset.ReadFIMI("rand", strings.NewReader(sb.String()))
	if err != nil {
		tb.Fatal(err)
	}
	return db.Recode(minSup)
}

// horizontalSupport counts the transactions of rec containing every
// dense code in items — the ground truth the kernels are checked
// against.
func horizontalSupport(rec *dataset.Recoded, items []int) int {
	sup := 0
	for _, tr := range rec.DB.Transactions {
		ok := true
		for _, want := range items {
			if !tr.Contains(itemset.Item(want)) {
				ok = false
				break
			}
		}
		if ok {
			sup++
		}
	}
	return sup
}

// materialize expands a DiffNodeset to its sorted relabeled TID set via
// the encoding's interval table — the degrade shim's kernel.
func materialize(enc *Encoding, l List) []uint32 {
	var out []uint32
	for _, e := range l {
		lo := enc.Lo[e.Pre]
		for k := uint32(0); k < e.Count; k++ {
			out = append(out, lo+k)
		}
	}
	return out
}

func l1Materialize(enc *Encoding, l []L1Entry) []uint32 {
	dn := make(List, len(l))
	for i, e := range l {
		dn[i] = Entry{Pre: e.Pre, Count: e.Count}
	}
	return materialize(enc, dn)
}

func TestEncodeInvariants(t *testing.T) {
	for name, rec := range map[string]*dataset.Recoded{
		"paper": exampleRecoded(t, 1),
		"rand":  randomRecoded(t, 7, 80, 12, 2),
	} {
		enc := Build(rec)
		if enc.Nodes != len(enc.Lo) {
			t.Fatalf("%s: Nodes %d != len(Lo) %d", name, enc.Nodes, len(enc.Lo))
		}
		covered := make([]int, enc.Total)
		for i, nl := range enc.NLists {
			sum := 0
			for k, e := range nl {
				sum += int(e.Count)
				if k > 0 {
					prev := nl[k-1]
					if e.Pre <= prev.Pre || e.Post <= prev.Post {
						t.Fatalf("%s item %d: N-list not ascending at %d", name, i, k)
					}
					if prev.Pre < e.Pre && prev.Post > e.Post {
						t.Fatalf("%s item %d: N-list is not an antichain", name, i)
					}
				}
			}
			if sum != rec.Items[i].Support {
				t.Errorf("%s item %d: N-list count sum %d, want support %d",
					name, i, sum, rec.Items[i].Support)
			}
			// The item's relabeled tidset: intervals must be disjoint,
			// in-range, and |t(i)| = support(i).
			tids := l1Materialize(enc, nl)
			for k, tid := range tids {
				if k > 0 && tids[k-1] >= tid {
					t.Fatalf("%s item %d: materialized TIDs not strictly ascending", name, i)
				}
				if int(tid) >= enc.Total {
					t.Fatalf("%s item %d: TID %d outside [0, %d)", name, i, tid, enc.Total)
				}
				covered[tid]++
			}
		}
		// Every relabeled transaction carries at least one frequent item
		// (empty ones never enter the tree), so every label is covered.
		for tid, c := range covered {
			if c == 0 {
				t.Errorf("%s: relabeled TID %d not covered by any item", name, tid)
			}
		}
	}
}

// TestKernelSupportsMatchHorizontal drives the full combine discipline
// the miners use — ascending-code equivalence classes, 2-itemset
// construction from N-lists, then k-itemset differences — and checks
// every support against a horizontal count, and every materialized
// DiffNodeset against the parent/child relabeled-tidset difference
// (the degrade shim's exactness).
func TestKernelSupportsMatchHorizontal(t *testing.T) {
	for name, rec := range map[string]*dataset.Recoded{
		"paper": exampleRecoded(t, 1),
		"rand":  randomRecoded(t, 11, 60, 10, 2),
	} {
		enc := Build(rec)
		type member struct {
			items []int
			dn    List
			sup   int
			tids  []uint32 // relabeled t(itemset), maintained as ground truth
		}
		var recurse func(class []member, depth int)
		recurse = func(class []member, depth int) {
			if depth > 4 {
				return
			}
			for i := 0; i < len(class); i++ {
				var next []member
				for j := i + 1; j < len(class); j++ {
					px, py := class[i], class[j]
					dn, sum := DiffInto(py.dn, px.dn, nil)
					child := member{
						items: append(append([]int{}, px.items...), py.items[len(py.items)-1]),
						dn:    dn,
						sup:   px.sup - sum,
					}
					if want := horizontalSupport(rec, child.items); child.sup != want {
						t.Fatalf("%s %v: support %d, want %d", name, child.items, child.sup, want)
					}
					if got := DiffSize(py.dn, px.dn); got != sum {
						t.Fatalf("%s %v: DiffSize %d != DiffInto sum %d", name, child.items, got, sum)
					}
					// Degrade exactness: trans(DN(X)) = t(PX) \ t(X).
					mat := materialize(enc, dn)
					child.tids = diffU32(px.tids, mat)
					if len(child.tids) != child.sup {
						t.Fatalf("%s %v: materialized diff has %d TIDs, support %d",
							name, child.items, len(child.tids), child.sup)
					}
					if child.sup >= rec.MinSup {
						next = append(next, child)
					}
				}
				recurse(next, depth+1)
			}
		}
		// Level 1 → 2: the L1 ancestor-merge kernel seeds each class.
		for x := range rec.Items {
			xTids := l1Materialize(enc, enc.NLists[x])
			var class []member
			for y := x + 1; y < len(rec.Items); y++ {
				dn, sum := DiffL1Into(enc.NLists[x], enc.NLists[y], nil)
				sup := rec.Items[x].Support - sum
				if want := horizontalSupport(rec, []int{x, y}); sup != want {
					t.Fatalf("%s {%d,%d}: support %d, want %d", name, x, y, sup, want)
				}
				if got := rec.Items[x].Support - DiffL1Size(enc.NLists[x], enc.NLists[y]); got != sup {
					t.Fatalf("%s {%d,%d}: DiffL1Size disagrees with DiffL1Into", name, x, y)
				}
				tids := diffU32(xTids, materialize(enc, dn))
				if len(tids) != sup {
					t.Fatalf("%s {%d,%d}: materialized diff %d TIDs, support %d",
						name, x, y, len(tids), sup)
				}
				if sup >= rec.MinSup {
					class = append(class, member{items: []int{x, y}, dn: dn, sup: sup, tids: tids})
				}
			}
			recurse(class, 2)
		}
	}
}

func diffU32(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return append(out, a[i:]...)
}

// TestBatchedMatchesPairwise: the Many kernels are semantically m
// pairwise calls.
func TestBatchedMatchesPairwise(t *testing.T) {
	rec := randomRecoded(t, 3, 70, 11, 2)
	enc := Build(rec)
	n := len(rec.Items)
	for x := 0; x < n-1; x++ {
		var (
			nys  [][]L1Entry
			want []List
			sums []int
		)
		for y := x + 1; y < n; y++ {
			nys = append(nys, enc.NLists[y])
			dn, sum := DiffL1Into(enc.NLists[x], enc.NLists[y], nil)
			want = append(want, dn)
			sums = append(sums, sum)
		}
		dsts := make([]List, len(nys))
		gotSums := make([]int, len(nys))
		DiffL1ManyInto(enc.NLists[x], nys, dsts, gotSums)
		for i := range nys {
			if gotSums[i] != sums[i] || !listsEqual(dsts[i], want[i]) {
				t.Fatalf("DiffL1ManyInto block %d child %d disagrees with pairwise", x, i)
			}
		}
		// k-item batch: subtract the first pair's list from the others.
		if len(want) > 1 {
			sub := want[0]
			srcs := want[1:]
			dsts := make([]List, len(srcs))
			gotSums := make([]int, len(srcs))
			DiffManyInto(sub, srcs, dsts, gotSums)
			for i, src := range srcs {
				pw, sum := DiffInto(src, sub, nil)
				if gotSums[i] != sum || !listsEqual(dsts[i], pw) {
					t.Fatalf("DiffManyInto block %d child %d disagrees with pairwise", x, i)
				}
			}
		}
	}
}

func listsEqual(a, b List) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConditionalSharedTree guards the fpgrowth-shared tree surface:
// Conditional must reproduce the prefix paths with occurrence counts.
func TestConditionalSharedTree(t *testing.T) {
	tr := NewTree()
	tr.Insert([]int32{3, 2, 1}, 2)
	tr.Insert([]int32{3, 1}, 1)
	tr.Insert([]int32{2, 1}, 1)
	cond := tr.Conditional(1)
	if cond.Count(3) != 3 || cond.Count(2) != 3 {
		t.Fatalf("conditional counts = %d/%d, want 3 for items 2 and 3", cond.Count(2), cond.Count(3))
	}
	if tr.NNodes() != 6 {
		t.Fatalf("tree has %d nodes, want 6", tr.NNodes())
	}
	if tr.Bytes() != 6*TreeNodeBytes {
		t.Fatalf("Bytes() = %d, want %d", tr.Bytes(), 6*TreeNodeBytes)
	}
}
