package nodeset

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/tidset"
)

// benchRecoded is a dense chess-like database: few items, high
// per-item density, heavy co-occurrence — the regime DiffNodesets
// target.
func benchRecoded(b *testing.B) *dataset.Recoded {
	b.Helper()
	return randomRecoded(b, 42, 3000, 40, 2)
}

func BenchmarkPPCBuild(b *testing.B) {
	rec := benchRecoded(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := Build(rec)
		if enc.Total == 0 {
			b.Fatal("empty encoding")
		}
	}
}

// benchOperands returns the densest item's N-list, a sibling's, and
// two k-item DiffNodesets derived from them, plus the items' flat
// tidsets for the apples-to-apples comparison benchmarks below.
func benchOperands(b *testing.B) (nx, ny []L1Entry, dnA, dnB List, tx, ty tidset.Set) {
	b.Helper()
	rec := benchRecoded(b)
	enc := Build(rec)
	nx, ny = enc.NLists[0], enc.NLists[1]
	dnA, _ = DiffL1Into(nx, enc.NLists[2], nil)
	dnB, _ = DiffL1Into(nx, enc.NLists[3], nil)
	sets := rec.TidsetOf()
	return nx, ny, dnA, dnB, sets[0], sets[1]
}

// BenchmarkDiffL1Into: the 2-itemset DiffNodeset construction (the
// ancestor merge over two level-1 N-lists).
func BenchmarkDiffL1Into(b *testing.B) {
	nx, ny, _, _, _, _ := benchOperands(b)
	dst := make(List, 0, len(nx))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = DiffL1Into(nx, ny, dst)
	}
}

// BenchmarkDiffInto: the k-itemset difference merge — the steady-state
// combine kernel of the representation.
func BenchmarkDiffInto(b *testing.B) {
	_, _, dnA, dnB, _, _ := benchOperands(b)
	dst := make(List, 0, len(dnB))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = DiffInto(dnB, dnA, dst)
	}
}

// BenchmarkFlatIntersectIntoSameData: tidset.IntersectInto over the
// same two items' flat tidsets — the work the tidset representation
// does for the combine BenchmarkDiffL1Into performs on N-lists. The
// per-op gap is the co-occurrence compression.
func BenchmarkFlatIntersectIntoSameData(b *testing.B) {
	_, _, _, _, tx, ty := benchOperands(b)
	dst := make(tidset.Set, 0, len(tx))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tx.IntersectInto(ty, dst)
	}
}

// BenchmarkTiledIntersectIntoSameData: the tiled layout's kernel over
// the same operands, completing the flat vs tiled vs nodeset triangle
// of results/MICRO_nodeset.txt.
func BenchmarkTiledIntersectIntoSameData(b *testing.B) {
	_, _, _, _, tx, ty := benchOperands(b)
	a, c := tidset.FromSet(tx), tidset.FromSet(ty)
	dst := &tidset.Tiled{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.IntersectInto(c, dst)
	}
}

func BenchmarkDiffL1ManyInto(b *testing.B) {
	rec := benchRecoded(b)
	enc := Build(rec)
	nx := enc.NLists[0]
	m := len(enc.NLists) - 1
	nys := make([][]L1Entry, m)
	dsts := make([]List, m)
	sums := make([]int, m)
	for i := 0; i < m; i++ {
		nys[i] = enc.NLists[i+1]
		dsts[i] = make(List, 0, len(nx))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiffL1ManyInto(nx, nys, dsts, sums)
	}
}

func BenchmarkDiffManyInto(b *testing.B) {
	rec := benchRecoded(b)
	enc := Build(rec)
	nx := enc.NLists[0]
	m := len(enc.NLists) - 2
	sub, _ := DiffL1Into(nx, enc.NLists[1], nil)
	srcs := make([]List, m)
	dsts := make([]List, m)
	sums := make([]int, m)
	for i := 0; i < m; i++ {
		srcs[i], _ = DiffL1Into(nx, enc.NLists[i+2], nil)
		dsts[i] = make(List, 0, len(srcs[i]))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiffManyInto(sub, srcs, dsts, sums)
	}
}
