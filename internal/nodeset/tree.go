// Package nodeset implements the PPC-tree-encoded vertical
// representation of Deng's DiffNodesets (PAPERS.md, arXiv:1507.01345):
// the prefix tree of transactions is annotated with pre/post-order
// ranks, each frequent item's occurrences become a sorted N-list of
// {pre, post, count} triples, and itemset supports are computed by
// linear merges over those lists. Because the tree collapses
// co-occurring transactions into single nodes, the lists — and the
// merges — are shorter than the equivalent tidset or diffset work on
// exactly the dense datasets the paper targets.
//
// The prefix tree itself is shared with package fpgrowth: an FP-tree
// and a PPC-tree are the same structure under different item orders,
// so fpgrowth builds its trees through Tree/Insert/Conditional here
// and this package adds the Encode pass on top.
package nodeset

// TreeNode is one prefix-tree node. Nodes live in the tree's slab and
// reference each other by slab index (-1 = none): the build path is
// the hot loop of both FP-growth and the nodeset Roots, and a slab of
// index-linked nodes costs one allocation per doubling instead of one
// node plus one children map per prefix, with no pointer graph for the
// collector to trace.
type TreeNode struct {
	Item    int32 // dense item code, -1 at the root
	Count   int32
	Parent  int32
	Child   int32 // first child (most recently used: Insert front-moves)
	Sibling int32 // next child of Parent
	Next    int32 // header-chain link
}

// Tree is a prefix tree of transactions with a per-item header table:
// fpgrowth's FP-tree, and — once Encode has run over it — the PPC-tree
// of the DiffNodeset representation. Nodes[0] is the root.
type Tree struct {
	Nodes  []TreeNode
	heads  []int32 // item -> first node of its header chain, -1 if absent
	counts []int   // item -> total count in this tree
	items  []int32 // items present, in first-appearance order
}

// TreeNodeBytes approximates one prefix-tree node's heap footprint: the
// 24-byte slab entry plus its share of the header/count tables. Used
// only for run-control memory accounting.
const TreeNodeBytes = 32

// Bytes estimates the tree's live heap footprint for the memory budget.
func (t *Tree) Bytes() int64 { return int64(t.NNodes()) * TreeNodeBytes }

// NNodes is the number of item nodes (the pre/post rank space; the
// root is not counted).
func (t *Tree) NNodes() int { return len(t.Nodes) - 1 }

// Items returns the item codes present in the tree, in first-appearance
// order. Shared storage — callers must not mutate it.
func (t *Tree) Items() []int32 { return t.items }

// Count returns item it's total transaction count in this tree.
func (t *Tree) Count(it int32) int {
	if int(it) >= len(t.counts) {
		return 0
	}
	return t.counts[it]
}

// NewTree returns an empty tree; tables grow on demand as items are
// inserted.
func NewTree() *Tree { return NewTreeSized(0) }

// NewTreeSized returns an empty tree with its per-item tables presized
// for dense codes in [0, nItems).
func NewTreeSized(nItems int) *Tree {
	t := &Tree{
		Nodes:  make([]TreeNode, 1, 64),
		heads:  make([]int32, nItems),
		counts: make([]int, nItems),
		items:  make([]int32, 0, nItems),
	}
	t.Nodes[0] = TreeNode{Item: -1, Parent: -1, Child: -1, Sibling: -1, Next: -1}
	for i := range t.heads {
		t.heads[i] = -1
	}
	return t
}

func (t *Tree) ensure(it int32) {
	for int(it) >= len(t.heads) {
		t.heads = append(t.heads, -1)
		t.counts = append(t.counts, 0)
	}
}

// Insert adds a path of items (already ordered) with the given count.
// The matched or created child is moved to the front of its sibling
// list, so the shared prefixes that dominate dense databases hit on
// the first probe.
func (t *Tree) Insert(items []int32, count int) {
	cur := int32(0)
	for _, it := range items {
		t.ensure(it)
		prev, c := int32(-1), t.Nodes[cur].Child
		for c != -1 && t.Nodes[c].Item != it {
			prev, c = c, t.Nodes[c].Sibling
		}
		if c == -1 {
			c = int32(len(t.Nodes))
			t.Nodes = append(t.Nodes, TreeNode{
				Item: it, Parent: cur, Child: -1,
				Sibling: t.Nodes[cur].Child, Next: t.heads[it],
			})
			t.heads[it] = c
			t.Nodes[cur].Child = c
		} else if prev != -1 {
			t.Nodes[prev].Sibling = t.Nodes[c].Sibling
			t.Nodes[c].Sibling = t.Nodes[cur].Child
			t.Nodes[cur].Child = c
		}
		t.Nodes[c].Count += int32(count)
		if t.counts[it] == 0 {
			t.items = append(t.items, it)
		}
		t.counts[it] += count
		cur = c
	}
}

// Conditional builds the conditional tree of item it: the prefix paths
// of every occurrence, with the occurrence counts.
func (t *Tree) Conditional(it int32) *Tree {
	cond := NewTreeSized(len(t.heads))
	if int(it) >= len(t.heads) {
		return cond
	}
	var path []int32
	for link := t.heads[it]; link != -1; link = t.Nodes[link].Next {
		path = path[:0]
		for p := t.Nodes[link].Parent; p > 0; p = t.Nodes[p].Parent {
			path = append(path, t.Nodes[p].Item)
		}
		for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
			path[l], path[r] = path[r], path[l]
		}
		if len(path) > 0 {
			cond.Insert(path, int(t.Nodes[link].Count))
		}
	}
	return cond
}
