// The PPC encoding pass: transactions are sorted so equal prefixes are
// adjacent, and one streaming walk over the sorted order plays the
// prefix tree's DFS without ever materializing tree nodes — each
// prefix-stack push is a pre-order visit, each pop a post-order one.
// The walk assigns every implicit node a pre-order rank, a post-order
// rank, and a contiguous interval of relabeled TIDs, gathers each
// item's nodes into its N-list, and tallies the all-pairs co-occurrence
// matrix. Ancestry in the tree — which is exactly set containment
// between the root paths — becomes a constant-time test on the ranks:
//
//	m is an ancestor of n  ⟺  m.Pre < n.Pre && m.Post > n.Post
//
// so the merge kernels (kernel.go) need nothing but the N-lists.

package nodeset

import (
	"slices"

	"repro/internal/dataset"
	"repro/internal/kcount"
)

// L1Entry is one element of a level-1 N-list: a PPC-tree node carrying
// the item, identified by its pre/post-order ranks, with the number of
// transactions whose paths pass through it.
type L1Entry struct {
	Pre, Post, Count uint32
}

// L1EntryBytes is the wire footprint of one N-list element.
const L1EntryBytes = 12

// Entry is one element of a DiffNodeset: a PPC-tree node reference (its
// pre-order rank) plus the node's transaction count. DiffNodesets never
// need the post rank — their merges are plain sorted-set differences —
// so dropping it keeps k-itemset payloads at 8 bytes per node.
type Entry struct {
	Pre, Count uint32
}

// EntryBytes is the wire footprint of one DiffNodeset element.
const EntryBytes = 8

// List is a DiffNodeset: entries with strictly ascending Pre.
type List []Entry

// CountSum returns the total transaction count of the list's nodes.
func (l List) CountSum() int {
	s := 0
	for _, e := range l {
		s += int(e.Count)
	}
	return s
}

// maxPairItems bounds the all-pairs support matrix at 512² × 4 bytes
// (1 MiB). Dense databases — the ones this representation is for —
// have a few dozen to a few hundred frequent items; past the bound the
// matrix is dropped and 2-itemset supports fall back to the merge
// kernels.
const maxPairItems = 512

// Encoding is the PPC-encoded database: per-item N-lists plus the
// interval table that maps tree nodes back to (relabeled) transaction
// identifiers for the mid-run degrade shim.
type Encoding struct {
	// NLists holds each dense item code's N-list, sorted by ascending
	// Pre (equivalently ascending Post: an item's nodes are an
	// antichain, where the two orders agree).
	NLists [][]L1Entry
	// Lo maps a node's pre-order rank to the first of its relabeled
	// TIDs: the DFS assigns every node a contiguous interval
	// [Lo[pre], Lo[pre]+count) covering exactly the transactions whose
	// paths pass through it. Disjoint nodes get disjoint intervals, so
	// any DiffNodeset materializes to an exact sorted TID set — the
	// degrade path's bridge back to the diffset representation.
	Lo []uint32
	// Nodes is the tree's node count (the pre/post rank space).
	Nodes int
	// Total is the number of transactions inserted into the tree — the
	// size of the relabeled TID space. Transactions emptied by the
	// frequent-item filter never reach the tree; they occupy
	// [Total, universe) of the original space and belong to no item's
	// tidset, which the degrade complement accounts for.
	Total int

	// pairs is the flat co-occurrence matrix: pairs[x*nItems+y] for
	// x < y is support({x, y}), tallied during the encoding walk from
	// each node's ancestor items (a node of x lies under a node of y
	// exactly when some transaction carries both, and its count says
	// how many). Nil when nItems exceeds maxPairItems.
	pairs  []uint32
	nItems int
}

// HasPairs reports whether the encoding carries the pair-support
// matrix (it does unless the frequent-item universe exceeded
// maxPairItems).
func (e *Encoding) HasPairs() bool { return e.pairs != nil }

// PairSupport returns support({x, y}) for two dense item codes and
// true, or false when the encoding carries no pair matrix. O(1): the
// matrix turns every 2-itemset support — the widest level of the
// search, where most candidates die — into a lookup, so the merge
// kernels run only for the survivors whose DiffNodesets are actually
// extended (Deng's PrePost trick of counting 2-itemsets from the tree).
func (e *Encoding) PairSupport(x, y int) (int, bool) {
	if e.pairs == nil {
		return 0, false
	}
	if x > y {
		x, y = y, x
	}
	return int(e.pairs[x*e.nItems+y]), true
}

// Build constructs the PPC encoding of a recoded database. Every
// transaction is ordered by descending dense code — so the deepest
// tree item of any itemset mined in ascending code order is its first
// item, giving every equivalence class one shared node universe — and
// the implicit prefix tree is encoded in a single streaming pass.
//
// The pass is the sorted-prefix form: transactions are flattened into
// an arena and their index windows sorted lexicographically (shorter
// prefixes first), which makes equal prefixes adjacent, so the walk
// keeps one stack of open tree nodes — pop to the shared prefix
// (assigning post-order ranks and flushing N-list entries), push the
// tail (assigning pre-order ranks and TID intervals) — and never
// searches for, or allocates, a tree node.
func Build(rec *dataset.Recoded) *Encoding {
	nItems := len(rec.Items)
	enc := &Encoding{
		NLists: make([][]L1Entry, nItems),
		nItems: nItems,
	}
	if nItems <= maxPairItems {
		enc.pairs = make([]uint32, nItems*nItems)
	}

	// Flatten the non-empty transactions, reversed into descending code
	// order, into one arena, and sort their index windows
	// lexicographically. Almost all of the ordering is decided by a
	// packed prefix key — the first few items, code-shifted so that
	// "transaction ends" (0) sorts below every item, packed into one
	// uint64 — so the comparator rarely touches the arena: only
	// transactions agreeing on the whole packed prefix fall through to
	// the element-wise tail compare.
	type span struct {
		key    uint64
		lo, hi int32
	}
	bits := uint(1)
	for 1<<bits < nItems+1 {
		bits++
	}
	packed := int(64 / bits) // items per key
	arena := make([]int32, 0, 1024)
	spans := make([]span, 0, len(rec.DB.Transactions))
	for _, tr := range rec.DB.Transactions {
		if len(tr) == 0 {
			continue
		}
		lo := int32(len(arena))
		for i := len(tr) - 1; i >= 0; i-- {
			arena = append(arena, int32(tr[i]))
		}
		var key uint64
		for i := 0; i < packed; i++ {
			key <<= bits
			if int(lo)+i < len(arena) {
				key |= uint64(arena[int(lo)+i] + 1)
			}
		}
		spans = append(spans, span{key, lo, int32(len(arena))})
	}
	slices.SortFunc(spans, func(a, b span) int {
		if a.key != b.key {
			if a.key < b.key {
				return -1
			}
			return 1
		}
		x, y := arena[a.lo:a.hi], arena[b.lo:b.hi]
		if len(x) > packed && len(y) > packed {
			x, y = x[packed:], y[packed:]
			for i := 0; i < len(x) && i < len(y); i++ {
				if x[i] != y[i] {
					return int(x[i]) - int(y[i])
				}
			}
		}
		return len(x) - len(y)
	})
	enc.Total = len(spans)

	// The streaming DFS. open[d] is the node at depth d of the current
	// path; a node's count is final when it is popped, which is when
	// its N-list entry and its ancestor-pair tallies are flushed.
	type openNode struct {
		item  int32
		pre   uint32
		count uint32
	}
	var (
		open  = make([]openNode, 0, 64)
		preN  uint32
		postN uint32
		tid   uint32
	)
	// Lo grows with the pre ranks; sized for the worst (uncompressed)
	// case lazily via append.
	lo := make([]uint32, 0, 1024)
	pop := func() {
		n := open[len(open)-1]
		open = open[:len(open)-1]
		// Pop order is post order; within one item's antichain it
		// coincides with pre order, so appends keep N-lists sorted.
		enc.NLists[n.item] = append(enc.NLists[n.item],
			L1Entry{Pre: n.pre, Post: postN, Count: n.count})
		postN++
		if enc.pairs != nil {
			// Every open ancestor's item co-occurs with n.item in
			// exactly n.count transactions of this subtree.
			row := enc.pairs[int(n.item)*nItems : (int(n.item)+1)*nItems]
			for _, anc := range open {
				row[anc.item] += n.count
			}
		}
	}
	for _, sp := range spans {
		tr := arena[sp.lo:sp.hi]
		common := 0
		for common < len(open) && common < len(tr) && open[common].item == tr[common] {
			common++
		}
		for len(open) > common {
			pop()
		}
		for i := range open {
			open[i].count++
		}
		for _, it := range tr[common:] {
			open = append(open, openNode{item: it, pre: preN, count: 1})
			preN++
			lo = append(lo, tid)
		}
		// The span itself ends at the top of the stack; shorter-first
		// sorting put it ahead of every longer transaction in the
		// subtree, so the interval head is the enders' slot.
		tid++
	}
	for len(open) > 0 {
		pop()
	}
	enc.Lo = lo
	enc.Nodes = int(preN)
	kcount.AddPPCNodes(enc.Nodes)
	return enc
}
