// Package fpgrowth implements the FP-growth algorithm, the third of the
// "three popular algorithms for frequent itemset mining" the paper's
// introduction surveys (Apriori, Eclat, FP-growth). It serves as an
// independent baseline: a pattern-growth miner with no candidate
// generation at all, against which the vertical miners are cross-checked
// and benchmarked.
//
// The implementation is the classic Han/Pei/Yin design: an FP-tree
// (prefix tree of transactions with items in descending frequency order,
// with per-item header chains), mined by recursively building conditional
// pattern bases and conditional trees. The tree structure itself lives
// in package nodeset — the PPC-tree of the DiffNodeset representation
// is the same prefix tree under a different item order — and is shared
// through nodeset.Tree. Parallelism follows the same
// pattern as the paper's Eclat: the top-level loop over header items is
// a set of independent tasks (each conditional tree is private to its
// worker), scheduled dynamically.
package fpgrowth

import (
	"cmp"
	"slices"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/nodeset"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/sched"
)

// DefaultSchedule mirrors Eclat's choice: dynamic, chunk 1 — conditional
// tree sizes are skewed.
var DefaultSchedule = sched.Schedule{Policy: sched.Dynamic, Chunk: 1}

// Mine runs FP-growth over the recoded database with the given absolute
// minimum support. Options.Workers parallelizes the top-level header
// loop; Representation is recorded but unused (FP-growth is horizontal).
//
// When opt.Control is set the run is cancellable and budgeted: the
// header loop drains at chunk boundaries, the recursion checks the stop
// flag per conditional tree, the global and conditional FP-trees are
// charged against the memory budget (estimated at nodeset.TreeNodeBytes per
// node — FP-growth has no diffset form, so a breach always stops with a
// *runctl.BudgetError rather than degrading), and emitted itemsets are
// counted against MaxItemsets.
func Mine(rec *dataset.Recoded, minSup int, opt core.Options) (*core.Result, error) {
	if minSup < 1 {
		minSup = 1
	}
	rc := opt.Control
	res := &core.Result{
		Algorithm:      core.FPGrowth,
		Representation: opt.Representation,
		MinSup:         minSup,
		Rec:            rec,
	}
	finish := func(err error) (*core.Result, error) {
		if err != nil {
			res.Incomplete = true
			res.StopCause = err
		}
		return res, err
	}

	// Global frequency order: descending support, ties by ascending code.
	// The recode pass already filtered to frequent items.
	n := len(rec.Items)
	if n == 0 {
		return finish(nil)
	}
	order := make([]int32, n) // rank -> item
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortStableFunc(order, func(a, b int32) int {
		return cmp.Compare(rec.Items[b].Support, rec.Items[a].Support)
	})
	rank := make([]int32, n) // item -> rank
	for r, it := range order {
		rank[it] = int32(r)
	}

	// Build the global tree serially: items within a transaction sorted
	// by rank. The stop flag is polled every insertStride transactions so
	// a cancelled run does not first pay for the whole tree.
	const insertStride = 1024
	t := nodeset.NewTreeSized(n)
	buf := make([]int32, 0, 64)
	for tid, tr := range rec.DB.Transactions {
		if tid%insertStride == 0 && rc.Stopped() {
			return finish(rc.Cause())
		}
		buf = buf[:0]
		for _, it := range tr {
			buf = append(buf, int32(it))
		}
		slices.SortFunc(buf, func(a, b int32) int { return cmp.Compare(rank[a], rank[b]) })
		t.Insert(buf, 1)
	}
	rc.ChargeMem(t.Bytes())
	// FP-growth cannot degrade to diffsets, so enforce the memory budget
	// directly even on runs that requested degradation.
	if err := rc.CheckMemory(); err != nil {
		return finish(err)
	}
	if err := rc.Err(); err != nil {
		return finish(err)
	}

	schedule := DefaultSchedule
	if opt.HasSchedule {
		schedule = opt.Schedule
	}
	team := sched.NewTeam(opt.Workers)
	workers := team.Workers()
	o := opt.Observer
	met := opt.Metrics
	team.SetMetrics(met)
	start := time.Now()
	obs.Emit(o, obs.Event{Type: obs.LevelStart, Phase: "fpgrowth/items", Candidates: n})
	met.Label("fpgrowth/items")
	phase := opt.Collector.NewPhase("fpgrowth/items", schedule, false, n)

	// Top-level parallel loop: one task per frequent item, growing its
	// conditional subtree privately.
	private := make([][]core.ItemsetCount, workers)
	var emitted atomic.Int64
	err := team.ForCtx(rc, n, schedule, func(w, i int) {
		it := int32(i)
		m := &grower{rank: rank, minSup: minSup, rc: rc}
		pattern := itemset.New(itemset.Item(it))
		m.emit(pattern, rec.Items[it].Support)
		cond := t.Conditional(it)
		m.work += int64(4 * len(cond.Items()))
		if len(cond.Items()) > 0 {
			rc.ChargeMem(cond.Bytes())
			m.grow(cond, pattern)
			rc.ChargeMem(-cond.Bytes())
		}
		phase.Add(i, m.work, 0, m.work)
		emitted.Add(int64(len(m.out)))
		private[w] = append(private[w], m.out...)
	})
	core.EmitPhases(o, met)
	if err == nil {
		obs.Emit(o, obs.Event{Type: obs.LevelEnd, Phase: "fpgrowth/items",
			Candidates: n, Frequent: int(emitted.Load()),
			LiveBytes: rc.MemUsed(), ElapsedNS: int64(time.Since(start))})
	}
	for _, p := range private {
		for _, c := range p {
			res.Counts = append(res.Counts, c)
			if len(c.Items) > res.MaxK {
				res.MaxK = len(c.Items)
			}
		}
	}
	return finish(err)
}

// grower carries one top-level task's recursion state.
type grower struct {
	rank   []int32
	minSup int
	rc     *runctl.Control
	out    []core.ItemsetCount
	work   int64
}

// emit records one frequent itemset and accounts it against the
// itemsets budget.
func (g *grower) emit(items itemset.Itemset, support int) {
	g.out = append(g.out, core.ItemsetCount{Items: items, Support: support})
	g.rc.AddItemsets(1)
}

// grow recursively mines a conditional tree under the given suffix,
// checking the stop flag per conditional tree and charging each one
// against the memory budget for its lifetime.
func (g *grower) grow(t *nodeset.Tree, suffix itemset.Itemset) {
	// Visit items in reverse frequency order (deepest first).
	items := slices.Clone(t.Items())
	slices.SortFunc(items, func(a, b int32) int { return cmp.Compare(g.rank[b], g.rank[a]) })
	for _, it := range items {
		if g.rc.Stopped() {
			return
		}
		support := t.Count(it)
		if support < g.minSup {
			continue
		}
		pattern := itemset.New(append(suffix.Clone(), itemset.Item(it))...)
		g.emit(pattern, support)
		cond := t.Conditional(it)
		g.work += int64(8 * len(cond.Items()))
		if len(cond.Items()) > 0 {
			g.rc.ChargeMem(cond.Bytes())
			g.rc.CheckMemory() // no degrade path; Stopped unwinds the recursion
			g.grow(cond, pattern)
			g.rc.ChargeMem(-cond.Bytes())
		}
	}
}
