package fpgrowth

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/apriori"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eclat"
	"repro/internal/itemset"
	"repro/internal/perf"
	"repro/internal/verify"
	"repro/internal/vertical"
)

const classic = `1 2 5
2 4
2 3
1 2 4
1 3
2 3
1 3
1 2 3 5
1 2 3
`

func classicRecoded(t *testing.T, minSup int) *dataset.Recoded {
	t.Helper()
	db, err := dataset.ReadFIMI("classic", strings.NewReader(classic))
	if err != nil {
		t.Fatal(err)
	}
	return db.Recode(minSup)
}

func TestMineClassicExample(t *testing.T) {
	rec := classicRecoded(t, 2)
	res := mine(rec, 2, core.DefaultOptions(vertical.Tidset, 1))
	ref := verify.Reference(rec, 2)
	if !res.Equal(ref) {
		t.Fatalf("fpgrowth disagrees with reference:\n%s", verify.Diff(res, ref))
	}
	if res.Algorithm != core.FPGrowth {
		t.Errorf("Algorithm = %v", res.Algorithm)
	}
}

func TestMineAgreesWithVerticalMiners(t *testing.T) {
	rec := classicRecoded(t, 2)
	fp := mine(rec, 2, core.DefaultOptions(vertical.Tidset, 1))
	ap := must(apriori.Mine(rec, 2, core.DefaultOptions(vertical.Diffset, 2)))
	ec := must(eclat.Mine(rec, 2, core.DefaultOptions(vertical.Bitvector, 2)))
	if !fp.Equal(ap) {
		t.Errorf("fpgrowth vs apriori:\n%s", verify.Diff(fp, ap))
	}
	if !fp.Equal(ec) {
		t.Errorf("fpgrowth vs eclat:\n%s", verify.Diff(fp, ec))
	}
}

func TestMineEdgeCases(t *testing.T) {
	// Empty database.
	rec := (&dataset.DB{}).Recode(1)
	if res := mine(rec, 1, core.DefaultOptions(vertical.Tidset, 1)); res.Len() != 0 {
		t.Errorf("empty DB produced %d itemsets", res.Len())
	}
	// Single transaction: full powerset.
	db, _ := dataset.ReadFIMI("t", strings.NewReader("3 1 2\n"))
	rec2 := db.Recode(1)
	res := mine(rec2, 1, core.DefaultOptions(vertical.Tidset, 1))
	if res.Len() != 7 {
		t.Errorf("single transaction: %d itemsets, want 7", res.Len())
	}
	// Duplicate transactions exercise path-count accumulation.
	db2, _ := dataset.ReadFIMI("t", strings.NewReader("1 2\n1 2\n1 2\n2 3\n"))
	rec3 := db2.Recode(2)
	res2 := mine(rec3, 2, core.DefaultOptions(vertical.Tidset, 1))
	ref := verify.Reference(rec3, 2)
	if !res2.Equal(ref) {
		t.Errorf("duplicate paths:\n%s", verify.Diff(res2, ref))
	}
}

func TestDeepLattice(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 4; i++ {
		sb.WriteString("1 2 3 4 5 6\n")
	}
	db, _ := dataset.ReadFIMI("deep", strings.NewReader(sb.String()))
	rec := db.Recode(4)
	res := mine(rec, 4, core.DefaultOptions(vertical.Tidset, 1))
	if res.Len() != 63 { // 2^6 - 1
		t.Errorf("deep lattice: %d itemsets, want 63", res.Len())
	}
	if res.MaxK != 6 {
		t.Errorf("MaxK = %d", res.MaxK)
	}
}

// Property: FP-growth agrees with the reference on random databases.
func TestQuickAgainstReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &dataset.DB{Name: "rand"}
		nTrans := 5 + r.Intn(40)
		nItems := 3 + r.Intn(7)
		for i := 0; i < nTrans; i++ {
			var items []itemset.Item
			for it := 0; it < nItems; it++ {
				if r.Intn(3) > 0 {
					items = append(items, itemset.Item(it))
				}
			}
			if len(items) == 0 {
				items = append(items, 0)
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		minSup := 1 + r.Intn(nTrans/2+1)
		rec := db.Recode(minSup)
		ref := verify.Reference(rec, minSup)
		res := mine(rec, minSup, core.DefaultOptions(vertical.Tidset, 1))
		return res.Equal(ref)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("fpgrowth vs reference: %v", err)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rec := classicRecoded(t, 2)
	serial := mine(rec, 2, core.DefaultOptions(vertical.Tidset, 1))
	for _, workers := range []int{2, 4, 16} {
		res := mine(rec, 2, core.DefaultOptions(vertical.Tidset, workers))
		if !res.Equal(serial) {
			t.Errorf("workers=%d disagrees with serial:\n%s", workers, verify.Diff(res, serial))
		}
	}
}

func TestCollectorPhase(t *testing.T) {
	rec := classicRecoded(t, 2)
	col := &perf.Collector{}
	opt := core.DefaultOptions(vertical.Tidset, 2)
	opt.Collector = col
	mine(rec, 2, opt)
	if len(col.Phases) != 1 || col.Phases[0].Name != "fpgrowth/items" {
		t.Fatalf("phases = %v", col.Phases)
	}
	if col.Phases[0].Tasks() != len(rec.Items) {
		t.Errorf("tasks = %d", col.Phases[0].Tasks())
	}
	if col.Phases[0].Shared {
		t.Error("fpgrowth tasks marked shared (conditional trees are private)")
	}
}

// mine wraps Mine for the test call sites that expect an error-free
// run: no budget or cancellation is in play, so an error is a failure.
func mine(rec *dataset.Recoded, minSup int, opt core.Options) *core.Result {
	res, err := Mine(rec, minSup, opt)
	if err != nil {
		panic(err)
	}
	return res
}

// must unwraps a cross-package miner's (result, error) pair.
func must(res *core.Result, err error) *core.Result {
	if err != nil {
		panic(err)
	}
	return res
}
