// Package dataset implements the horizontal transaction database: the raw
// input of frequent itemset mining, as read from FIMI-repository-format
// files (one transaction per line, space-separated integer items).
//
// The package also provides the first mining pass that every algorithm in
// the paper shares: counting 1-item supports, selecting frequent items,
// and recoding the database onto a dense item space so the vertical
// representations (package vertical) can index by item.
package dataset

import (
	"bufio"
	"cmp"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"

	"repro/internal/itemset"
	"repro/internal/tidset"
)

// Transaction is one basket: a sorted set of items.
type Transaction = itemset.Itemset

// DB is a horizontal transaction database.
type DB struct {
	// Name identifies the dataset in reports (e.g. "chess").
	Name string
	// Transactions holds the baskets in file order; the index of a
	// transaction is its TID.
	Transactions []Transaction
}

// NumTransactions returns |D|.
func (d *DB) NumTransactions() int { return len(d.Transactions) }

// AbsoluteSupport converts a relative support threshold (fraction of
// transactions, e.g. 0.2 for "chess@0.2") into an absolute transaction
// count, rounding up so that rel*|D| is always sufficient. A relative
// threshold of 0 maps to 1: an itemset must occur at least once.
//
// A threshold that is exactly k/|D| maps to k: the product is nudged
// down by a relative epsilon before the ceiling so that the one-ulp
// error of computing k/|D| in floating point cannot push the result to
// k+1 (which would silently drop every itemset of support exactly k).
func (d *DB) AbsoluteSupport(rel float64) int {
	if rel <= 0 {
		return 1
	}
	x := rel * float64(len(d.Transactions))
	abs := int(math.Ceil(x - x*1e-12))
	if abs < 1 {
		abs = 1
	}
	return abs
}

// Stats summarizes a database the way the paper's Table I does.
type Stats struct {
	Name            string
	NumItems        int     // distinct items appearing in D
	AvgLength       float64 // average transaction length
	NumTransactions int
	SizeBytes       int // size of the FIMI text encoding
	MaxItem         itemset.Item
	Density         float64 // avg length / distinct items: 1.0 means every item in every transaction
}

// ComputeStats scans the database once and fills a Stats.
func (d *DB) ComputeStats() Stats {
	seen := make(map[itemset.Item]struct{})
	totalLen := 0
	size := 0
	var maxItem itemset.Item
	for _, tr := range d.Transactions {
		totalLen += len(tr)
		for _, it := range tr {
			seen[it] = struct{}{}
			if it > maxItem {
				maxItem = it
			}
			// digits + separator, matching the FIMI text encoding
			size += len(strconv.FormatUint(uint64(it), 10)) + 1
		}
	}
	s := Stats{
		Name:            d.Name,
		NumItems:        len(seen),
		NumTransactions: len(d.Transactions),
		SizeBytes:       size,
		MaxItem:         maxItem,
	}
	if len(d.Transactions) > 0 {
		s.AvgLength = float64(totalLen) / float64(len(d.Transactions))
	}
	if s.NumItems > 0 {
		s.Density = s.AvgLength / float64(s.NumItems)
	}
	return s
}

// ItemCounts returns the support of every item, as a map.
func (d *DB) ItemCounts() map[itemset.Item]int {
	counts := make(map[itemset.Item]int)
	for _, tr := range d.Transactions {
		for _, it := range tr {
			counts[it]++
		}
	}
	return counts
}

// FrequentItem describes one frequent item discovered by the first pass.
type FrequentItem struct {
	Original itemset.Item // item code in the raw database
	Support  int
}

// Recoded is a database restricted to its frequent items and recoded onto
// the dense item space 0..len(Items)-1, in ascending original-item order.
// Both miners operate on a Recoded database: its TIDs and dense item codes
// are what the vertical representations are built from.
type Recoded struct {
	DB       *DB            // filtered, recoded transactions
	Items    []FrequentItem // dense code -> original item + support
	MinSup   int            // absolute threshold used
	Universe int            // number of transactions in the original DB
}

// ItemOrder selects how Recode assigns dense item codes. The mining
// result is the same set of itemsets either way (modulo decoding); the
// order changes the shape of the search tree, which the A9 ablation
// measures.
type ItemOrder int

const (
	// ByCode preserves the original item-code order (the paper's
	// "items in the itemset are sorted according to item number").
	ByCode ItemOrder = iota
	// ByFrequency assigns codes in ascending support order, the classic
	// Eclat/FP-growth optimization: rare items first keeps equivalence
	// classes small near the root, where the fan-out is widest.
	ByFrequency
)

// Recode performs the shared first mining pass: count item supports, keep
// items with support >= minSup (absolute), sort them by original item
// code, and rewrite every transaction onto the dense code space with
// infrequent items dropped. Transactions that become empty are kept (they
// still occupy a TID) so that supports remain counts over the original
// transaction universe.
func (d *DB) Recode(minSup int) *Recoded {
	return d.RecodeOrdered(minSup, ByCode)
}

// RecodeOrdered is Recode with an explicit dense-code order.
func (d *DB) RecodeOrdered(minSup int, order ItemOrder) *Recoded {
	if minSup < 1 {
		minSup = 1
	}
	counts := d.ItemCounts()
	var keep []itemset.Item
	for it, c := range counts {
		if c >= minSup {
			keep = append(keep, it)
		}
	}
	switch order {
	case ByFrequency:
		slices.SortFunc(keep, func(a, b itemset.Item) int {
			if c := cmp.Compare(counts[a], counts[b]); c != 0 {
				return c
			}
			return cmp.Compare(a, b)
		})
	default:
		slices.Sort(keep)
	}
	code := make(map[itemset.Item]itemset.Item, len(keep))
	items := make([]FrequentItem, len(keep))
	for i, it := range keep {
		code[it] = itemset.Item(i)
		items[i] = FrequentItem{Original: it, Support: counts[it]}
	}
	out := &DB{Name: d.Name, Transactions: make([]Transaction, len(d.Transactions))}
	for tid, tr := range d.Transactions {
		nt := make(Transaction, 0, len(tr))
		for _, it := range tr {
			if c, ok := code[it]; ok {
				nt = append(nt, c)
			}
		}
		if order != ByCode {
			// Frequency order permutes the codes; restore sortedness.
			slices.Sort(nt)
		}
		out.Transactions[tid] = nt
	}
	return &Recoded{DB: out, Items: items, MinSup: minSup, Universe: len(d.Transactions)}
}

// Decode maps a dense-coded itemset back to original item codes.
func (r *Recoded) Decode(s itemset.Itemset) itemset.Itemset {
	out := make(itemset.Itemset, len(s))
	for i, c := range s {
		out[i] = r.Items[c].Original
	}
	// Under ByCode recoding out is already sorted; frequency order
	// permutes the codes, so normalize.
	return itemset.New(out...)
}

// TidsetOf returns the tidset of each dense item: the inverted index that
// seeds every vertical representation.
func (r *Recoded) TidsetOf() []tidset.Set {
	sets := make([]tidset.Set, len(r.Items))
	for i := range sets {
		sets[i] = make(tidset.Set, 0, r.Items[i].Support)
	}
	for tid, tr := range r.DB.Transactions {
		for _, it := range tr {
			sets[it] = append(sets[it], tidset.TID(tid))
		}
	}
	return sets
}

// ParseError describes a malformed FIMI input — where it was found
// (1-based line number) and the offending token — or a Limits breach,
// in which case Token is empty and Msg names the exceeded limit.
// ReadFIMI returns it wrapped in nothing, so errors.As(&ParseError{})
// works directly.
type ParseError struct {
	Name  string // input name as passed to ReadFIMI
	Line  int    // 1-based line number
	Token string // the offending token, verbatim
	Msg   string // what was wrong with it
}

func (e *ParseError) Error() string {
	if e.Token == "" {
		// Limit breaches have no offending token, only a location.
		return fmt.Sprintf("dataset: %s line %d: %s", e.Name, e.Line, e.Msg)
	}
	return fmt.Sprintf("dataset: %s line %d: %s %q", e.Name, e.Line, e.Msg, e.Token)
}

// Limits bounds what ReadFIMILimits accepts from an untrusted reader,
// so a hostile or corrupt upload cannot balloon the process: a single
// enormous line, an endless stream of transactions, or a database whose
// item count alone exhausts memory all fail fast with a *ParseError
// instead of an OOM. Zero fields mean "no limit on this axis".
type Limits struct {
	// MaxLineBytes caps the byte length of one input line (one
	// transaction). Longer lines fail with a *ParseError naming the
	// line, not bufio's generic token-too-long error.
	MaxLineBytes int
	// MaxTransactions caps the number of non-empty transactions.
	MaxTransactions int
	// MaxTotalItems caps the total item occurrences across the whole
	// database (counted before per-transaction deduplication, i.e. as
	// the attacker pays for them).
	MaxTotalItems int64
}

// ReadFIMI parses the FIMI repository text format: one transaction per
// line, items as whitespace-separated non-negative integers. Blank lines
// are skipped. Items within a transaction are sorted and deduplicated.
// Malformed tokens — negative items included — are rejected with a
// *ParseError carrying the 1-based line number and the token.
//
// ReadFIMI applies no size limits and is for trusted inputs (local
// files, the synthetic generators); untrusted uploads go through
// ReadFIMILimits.
func ReadFIMI(name string, r io.Reader) (*DB, error) {
	return ReadFIMILimits(name, r, Limits{})
}

// ReadFIMILimits is ReadFIMI under explicit input limits; any breach
// returns a typed *ParseError locating the offending line.
func ReadFIMILimits(name string, r io.Reader, lim Limits) (*DB, error) {
	db := &DB{Name: name}
	sc := bufio.NewScanner(r)
	maxLine := 1 << 24
	if lim.MaxLineBytes > 0 && lim.MaxLineBytes < maxLine {
		maxLine = lim.MaxLineBytes
	}
	initBuf := 1 << 20
	if maxLine < initBuf {
		initBuf = maxLine
	}
	// +1 so the scanner has room for the newline that terminates a line
	// of exactly maxLine bytes; content one byte past the limit still
	// overflows the buffer and fails.
	sc.Buffer(make([]byte, 0, initBuf), maxLine+1)
	lineNo := 0
	var totalItems int64
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		var items []itemset.Item
		i := 0
		for i < len(line) {
			// skip whitespace
			for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
				i++
			}
			if i >= len(line) {
				break
			}
			start := i
			for i < len(line) && line[i] != ' ' && line[i] != '\t' && line[i] != '\r' {
				i++
			}
			tok := string(line[start:i])
			if tok[0] == '-' {
				return nil, &ParseError{Name: name, Line: lineNo, Token: tok, Msg: "negative item"}
			}
			v, err := strconv.ParseUint(tok, 10, 32)
			if err != nil {
				msg := "bad item"
				if ne, ok := err.(*strconv.NumError); ok && ne.Err == strconv.ErrRange {
					msg = "item out of range"
				}
				return nil, &ParseError{Name: name, Line: lineNo, Token: tok, Msg: msg}
			}
			items = append(items, itemset.Item(v))
		}
		if len(items) == 0 {
			continue
		}
		totalItems += int64(len(items))
		if lim.MaxTotalItems > 0 && totalItems > lim.MaxTotalItems {
			return nil, &ParseError{Name: name, Line: lineNo,
				Msg: fmt.Sprintf("total item count exceeds limit %d", lim.MaxTotalItems)}
		}
		if lim.MaxTransactions > 0 && len(db.Transactions) >= lim.MaxTransactions {
			return nil, &ParseError{Name: name, Line: lineNo,
				Msg: fmt.Sprintf("transaction count exceeds limit %d", lim.MaxTransactions)}
		}
		db.Transactions = append(db.Transactions, itemset.New(items...))
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			// The scanner stops before yielding the oversized line, so it
			// is the one after the last line delivered.
			return nil, &ParseError{Name: name, Line: lineNo + 1,
				Msg: fmt.Sprintf("line exceeds %d bytes", maxLine)}
		}
		return nil, fmt.Errorf("dataset: %s: %v", name, err)
	}
	return db, nil
}

// WriteFIMI writes the database in FIMI text format.
func WriteFIMI(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	for _, tr := range db.Transactions {
		for i, it := range tr {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(it), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
