package dataset

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/itemset"
	"repro/internal/tidset"
)

const sample = `1 2 5
2 4
2 3
1 2 4
1 3
2 3
1 3
1 2 3 5
1 2 3
`

func sampleDB(t *testing.T) *DB {
	t.Helper()
	db, err := ReadFIMI("sample", strings.NewReader(sample))
	if err != nil {
		t.Fatalf("ReadFIMI: %v", err)
	}
	return db
}

func TestReadFIMI(t *testing.T) {
	db := sampleDB(t)
	if db.NumTransactions() != 9 {
		t.Fatalf("NumTransactions = %d, want 9", db.NumTransactions())
	}
	if !db.Transactions[0].Equal(itemset.New(1, 2, 5)) {
		t.Errorf("transaction 0 = %v", db.Transactions[0])
	}
	if !db.Transactions[7].Equal(itemset.New(1, 2, 3, 5)) {
		t.Errorf("transaction 7 = %v", db.Transactions[7])
	}
}

func TestReadFIMIMessyInput(t *testing.T) {
	in := "  3   1  2 \r\n\n\t5 5 5\n"
	db, err := ReadFIMI("messy", strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadFIMI: %v", err)
	}
	if db.NumTransactions() != 2 {
		t.Fatalf("NumTransactions = %d, want 2", db.NumTransactions())
	}
	if !db.Transactions[0].Equal(itemset.New(1, 2, 3)) {
		t.Errorf("transaction 0 = %v", db.Transactions[0])
	}
	if !db.Transactions[1].Equal(itemset.New(5)) {
		t.Errorf("transaction 1 = %v (duplicates not removed?)", db.Transactions[1])
	}
}

func TestReadFIMIRejectsGarbage(t *testing.T) {
	for _, in := range []string{"1 x 3\n", "-4\n", "99999999999999999999\n"} {
		if _, err := ReadFIMI("bad", strings.NewReader(in)); err == nil {
			t.Errorf("ReadFIMI(%q) accepted garbage", in)
		}
	}
}

// TestReadFIMIParseErrors pins the diagnostic contract: a malformed
// token yields a *ParseError carrying the 1-based line number, the
// offending token verbatim, and a message naming the failure class.
func TestReadFIMIParseErrors(t *testing.T) {
	cases := []struct {
		in    string
		line  int
		token string
		msg   string
	}{
		{"1 2\n3 oops 4\n", 2, "oops", "bad item"},
		{"-7\n", 1, "-7", "negative item"},
		{"1\n2\n3 -0\n", 3, "-0", "negative item"},
		{"5 99999999999999999999\n", 1, "99999999999999999999", "item out of range"},
		{"\n\n1 2.5\n", 3, "2.5", "bad item"},
	}
	for _, c := range cases {
		_, err := ReadFIMI("in", strings.NewReader(c.in))
		if err == nil {
			t.Errorf("ReadFIMI(%q): no error", c.in)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("ReadFIMI(%q): error %T is not a *ParseError", c.in, err)
			continue
		}
		if pe.Line != c.line || pe.Token != c.token || pe.Msg != c.msg {
			t.Errorf("ReadFIMI(%q) = line %d token %q msg %q, want line %d token %q msg %q",
				c.in, pe.Line, pe.Token, pe.Msg, c.line, c.token, c.msg)
		}
		if !strings.Contains(err.Error(), c.token) {
			t.Errorf("ReadFIMI(%q): message %q omits the offending token", c.in, err)
		}
	}
}

// TestReadFIMILimits: each Limits axis fails fast with a typed
// *ParseError locating the breach, and inputs inside the limits parse
// identically to the unlimited reader.
func TestReadFIMILimits(t *testing.T) {
	cases := []struct {
		name string
		in   string
		lim  Limits
		line int
		msg  string
	}{
		{"line too long", "1 2 3\n" + strings.Repeat("7 ", 600) + "\n",
			Limits{MaxLineBytes: 64}, 2, "line exceeds 64 bytes"},
		{"too many transactions", "1\n2\n3\n4\n",
			Limits{MaxTransactions: 3}, 4, "transaction count exceeds limit 3"},
		{"too many items", "1 2 3\n4 5 6\n7 8 9\n",
			Limits{MaxTotalItems: 7}, 3, "total item count exceeds limit 7"},
		{"duplicates count pre-dedup", "5 5 5 5\n",
			Limits{MaxTotalItems: 3}, 1, "total item count exceeds limit 3"},
	}
	for _, c := range cases {
		_, err := ReadFIMILimits(c.name, strings.NewReader(c.in), c.lim)
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v (%T) is not a *ParseError", c.name, err, err)
			continue
		}
		if pe.Line != c.line || pe.Msg != c.msg || pe.Token != "" {
			t.Errorf("%s: got line %d msg %q token %q, want line %d msg %q empty token",
				c.name, pe.Line, pe.Msg, pe.Token, c.line, c.msg)
		}
	}

	// Inside the limits: identical to the unlimited reader.
	in := "3 1 2\n9 8\n"
	lim := Limits{MaxLineBytes: 64, MaxTransactions: 10, MaxTotalItems: 10}
	got, err := ReadFIMILimits("ok", strings.NewReader(in), lim)
	if err != nil {
		t.Fatalf("in-limits input rejected: %v", err)
	}
	want, _ := ReadFIMI("ok", strings.NewReader(in))
	if got.NumTransactions() != want.NumTransactions() {
		t.Fatalf("limited reader changed the parse: %d vs %d transactions",
			got.NumTransactions(), want.NumTransactions())
	}
	for i := range want.Transactions {
		if !got.Transactions[i].Equal(want.Transactions[i]) {
			t.Fatalf("limited reader changed transaction %d", i)
		}
	}
}

// TestReadFIMILimitsBlankAndOversizeEdge: blank lines do not count
// against MaxTransactions, and a line exactly at MaxLineBytes passes.
func TestReadFIMILimitsBlankAndOversizeEdge(t *testing.T) {
	db, err := ReadFIMILimits("edge", strings.NewReader("\n\n1\n\n2\n"), Limits{MaxTransactions: 2})
	if err != nil || db.NumTransactions() != 2 {
		t.Fatalf("blank lines charged against MaxTransactions: db=%v err=%v", db, err)
	}
	exact := strings.Repeat("1", 8) // 8-byte line
	if _, err := ReadFIMILimits("edge", strings.NewReader(exact+"\n"), Limits{MaxLineBytes: 8}); err != nil {
		t.Fatalf("line exactly at MaxLineBytes rejected: %v", err)
	}
	if _, err := ReadFIMILimits("edge", strings.NewReader(exact+"9\n"), Limits{MaxLineBytes: 8}); err == nil {
		t.Fatal("line one byte over MaxLineBytes accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	db := sampleDB(t)
	var buf bytes.Buffer
	if err := WriteFIMI(&buf, db); err != nil {
		t.Fatalf("WriteFIMI: %v", err)
	}
	back, err := ReadFIMI("sample", &buf)
	if err != nil {
		t.Fatalf("ReadFIMI: %v", err)
	}
	if back.NumTransactions() != db.NumTransactions() {
		t.Fatalf("round trip changed transaction count")
	}
	for i := range db.Transactions {
		if !back.Transactions[i].Equal(db.Transactions[i]) {
			t.Errorf("transaction %d: %v != %v", i, back.Transactions[i], db.Transactions[i])
		}
	}
}

func TestComputeStats(t *testing.T) {
	db := sampleDB(t)
	s := db.ComputeStats()
	if s.NumTransactions != 9 {
		t.Errorf("NumTransactions = %d", s.NumTransactions)
	}
	if s.NumItems != 5 {
		t.Errorf("NumItems = %d, want 5", s.NumItems)
	}
	wantAvg := 23.0 / 9.0
	if s.AvgLength < wantAvg-1e-9 || s.AvgLength > wantAvg+1e-9 {
		t.Errorf("AvgLength = %v, want %v", s.AvgLength, wantAvg)
	}
	if s.MaxItem != 5 {
		t.Errorf("MaxItem = %d", s.MaxItem)
	}
	if s.SizeBytes == 0 {
		t.Error("SizeBytes = 0")
	}
}

func TestAbsoluteSupport(t *testing.T) {
	db := sampleDB(t) // 9 transactions
	cases := []struct {
		rel  float64
		want int
	}{
		{0, 1},
		{-1, 1},
		{0.2, 2}, // 1.8 -> 2
		{1.0 / 3, 3},
		{0.5, 5}, // 4.5 -> 5
		{1, 9},
	}
	for _, c := range cases {
		if got := db.AbsoluteSupport(c.rel); got != c.want {
			t.Errorf("AbsoluteSupport(%v) = %d, want %d", c.rel, got, c.want)
		}
	}
}

// TestAbsoluteSupportBoundaries pins the exact-fraction contract: a
// relative threshold computed as k/|D| must map to exactly k for every
// k, across awkward database sizes (25, 29, 41... are sizes where a
// naive Ceil(rel*n) overshoots to k+1 on one-ulp float error), and a
// threshold a hair above k/|D| must round up to k+1.
func TestAbsoluteSupportBoundaries(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 9, 10, 25, 29, 41, 100, 1000, 2999} {
		db := &DB{Transactions: make([]Transaction, n)}
		for k := 1; k <= n; k++ {
			rel := float64(k) / float64(n)
			if got := db.AbsoluteSupport(rel); got != k {
				t.Errorf("n=%d: AbsoluteSupport(%d/%d) = %d, want %d", n, k, n, got, k)
			}
		}
		// Strictly-above-k thresholds still round up.
		for _, k := range []int{1, n / 2, n - 1} {
			if k < 1 || k >= n {
				continue
			}
			rel := (float64(k) + 0.5) / float64(n)
			if got := db.AbsoluteSupport(rel); got != k+1 {
				t.Errorf("n=%d: AbsoluteSupport((%d+0.5)/%d) = %d, want %d", n, k, n, got, k+1)
			}
		}
	}
}

func TestItemCounts(t *testing.T) {
	db := sampleDB(t)
	counts := db.ItemCounts()
	want := map[itemset.Item]int{1: 6, 2: 7, 3: 6, 4: 2, 5: 2}
	for it, c := range want {
		if counts[it] != c {
			t.Errorf("count[%d] = %d, want %d", it, counts[it], c)
		}
	}
}

func TestRecode(t *testing.T) {
	db := sampleDB(t)
	r := db.Recode(3) // keeps items 1,2,3 (supports 6,7,6); drops 4,5
	if len(r.Items) != 3 {
		t.Fatalf("kept %d items, want 3", len(r.Items))
	}
	for i, want := range []struct {
		orig itemset.Item
		sup  int
	}{{1, 6}, {2, 7}, {3, 6}} {
		if r.Items[i].Original != want.orig || r.Items[i].Support != want.sup {
			t.Errorf("Items[%d] = %+v, want {%d %d}", i, r.Items[i], want.orig, want.sup)
		}
	}
	// Transaction count preserved; items remapped to 0,1,2.
	if r.DB.NumTransactions() != 9 {
		t.Fatalf("recoded has %d transactions", r.DB.NumTransactions())
	}
	if !r.DB.Transactions[0].Equal(itemset.New(0, 1)) { // was {1,2,5} -> {0,1}
		t.Errorf("recoded transaction 0 = %v", r.DB.Transactions[0])
	}
	if !r.DB.Transactions[1].Equal(itemset.New(1)) { // was {2,4} -> {1}
		t.Errorf("recoded transaction 1 = %v", r.DB.Transactions[1])
	}
	// Decode maps back.
	if got := r.Decode(itemset.New(0, 2)); !got.Equal(itemset.New(1, 3)) {
		t.Errorf("Decode = %v", got)
	}
}

func TestRecodeEdgeCases(t *testing.T) {
	db := sampleDB(t)
	// minSup beyond every support: no items survive.
	r := db.Recode(100)
	if len(r.Items) != 0 {
		t.Errorf("Recode(100) kept %d items", len(r.Items))
	}
	// minSup < 1 clamps to 1.
	r = db.Recode(0)
	if r.MinSup != 1 || len(r.Items) != 5 {
		t.Errorf("Recode(0): MinSup=%d items=%d", r.MinSup, len(r.Items))
	}
	// Empty database.
	empty := &DB{Name: "empty"}
	r = empty.Recode(1)
	if len(r.Items) != 0 || r.DB.NumTransactions() != 0 {
		t.Error("Recode of empty DB misbehaves")
	}
	s := empty.ComputeStats()
	if s.AvgLength != 0 || s.Density != 0 {
		t.Error("stats of empty DB should be zero")
	}
}

func TestTidsetOf(t *testing.T) {
	db := sampleDB(t)
	r := db.Recode(3)
	sets := r.TidsetOf()
	if len(sets) != 3 {
		t.Fatalf("TidsetOf returned %d sets", len(sets))
	}
	// item 1 (dense 0) appears in transactions 0,3,4,6,7,8
	if !sets[0].Equal(tidset.New(0, 3, 4, 6, 7, 8)) {
		t.Errorf("tidset of item 1 = %v", sets[0])
	}
	// item 2 (dense 1): 0,1,2,3,5,7,8
	if !sets[1].Equal(tidset.New(0, 1, 2, 3, 5, 7, 8)) {
		t.Errorf("tidset of item 2 = %v", sets[1])
	}
	// Each set's length equals the recorded support.
	for i, s := range sets {
		if s.Support() != r.Items[i].Support {
			t.Errorf("tidset %d support %d != recorded %d", i, s.Support(), r.Items[i].Support)
		}
	}
}

// Property: recoding never changes the support of a surviving item, and
// tidsets are consistent with the horizontal database.
func TestQuickRecodeConsistency(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &DB{Name: "rand"}
		n := 5 + r.Intn(40)
		for i := 0; i < n; i++ {
			k := 1 + r.Intn(6)
			items := make([]itemset.Item, k)
			for j := range items {
				items[j] = itemset.Item(r.Intn(12))
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		minSup := 1 + r.Intn(5)
		rec := db.Recode(minSup)
		raw := db.ItemCounts()
		for _, fi := range rec.Items {
			if raw[fi.Original] != fi.Support || fi.Support < minSup {
				return false
			}
		}
		sets := rec.TidsetOf()
		for i, s := range sets {
			if !s.IsSorted() || s.Support() != rec.Items[i].Support {
				return false
			}
			for _, tid := range s {
				if !rec.DB.Transactions[tid].Contains(itemset.Item(i)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("recode consistency: %v", err)
	}
}

func TestRecodeOrderedByFrequency(t *testing.T) {
	db := sampleDB(t)
	rec := db.RecodeOrdered(2, ByFrequency)
	// Supports ascending: dense code 0 has the rarest surviving item.
	for i := 1; i < len(rec.Items); i++ {
		if rec.Items[i-1].Support > rec.Items[i].Support {
			t.Fatalf("codes not in ascending support order: %+v", rec.Items)
		}
	}
	// Transactions stay sorted in the dense space.
	for tid, tr := range rec.DB.Transactions {
		if !tr.IsSorted() {
			t.Errorf("transaction %d unsorted: %v", tid, tr)
		}
	}
	// Decode returns sorted original codes.
	if len(rec.Items) >= 2 {
		dec := rec.Decode(itemset.New(0, 1))
		if !dec.IsSorted() {
			t.Errorf("decode unsorted: %v", dec)
		}
	}
	// Tidsets remain consistent with supports.
	for i, s := range rec.TidsetOf() {
		if s.Support() != rec.Items[i].Support {
			t.Errorf("tidset %d support %d != %d", i, s.Support(), rec.Items[i].Support)
		}
	}
}
