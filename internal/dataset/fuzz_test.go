package dataset

import (
	"strings"
	"testing"
)

// FuzzReadFIMI checks the reader never panics and that every accepted
// database is well-formed (sorted, deduplicated transactions) and
// round-trips through WriteFIMI.
func FuzzReadFIMI(f *testing.F) {
	f.Add("1 2 3\n4 5\n")
	f.Add("")
	f.Add("  7   7 7\n\n\n9\n")
	f.Add("999999999 0\n")
	f.Add("1 x\n")
	f.Add("-1\n")
	f.Add("\t\r\n 3\r\n")
	f.Add("4294967295\n")           // max uint32 item
	f.Add("4294967296\n")           // one past: out of range
	f.Add("99999999999999999999\n") // far out of range
	f.Add("-0\n")                   // negative zero token
	f.Add("1 -2 3\n")               // negative mid-transaction
	f.Add("2.5\n")                  // non-integer token
	f.Add("+3\n")                   // explicit plus sign
	f.Add("0x10\n")                 // hex prefix
	f.Add("1\x002\n")               // NUL inside a token
	f.Add("7 \t 8\r")               // trailing CR without LF
	f.Add(" \t \r \n")              // whitespace-only lines
	f.Fuzz(func(t *testing.T, input string) {
		db, err := ReadFIMI("fuzz", strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, tr := range db.Transactions {
			if len(tr) == 0 {
				t.Fatal("empty transaction accepted")
			}
			if !tr.IsSorted() {
				t.Fatalf("unsorted transaction: %v", tr)
			}
		}
		var buf strings.Builder
		if err := WriteFIMI(&buf, db); err != nil {
			t.Fatalf("WriteFIMI: %v", err)
		}
		back, err := ReadFIMI("fuzz2", strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.NumTransactions() != db.NumTransactions() {
			t.Fatalf("round trip changed size: %d vs %d", back.NumTransactions(), db.NumTransactions())
		}
		for i := range db.Transactions {
			if !back.Transactions[i].Equal(db.Transactions[i]) {
				t.Fatalf("round trip changed transaction %d", i)
			}
		}
	})
}
