package dataset

import (
	"errors"
	"strings"
	"testing"
)

// FuzzReadFIMI checks the reader never panics and that every accepted
// database is well-formed (sorted, deduplicated transactions) and
// round-trips through WriteFIMI.
func FuzzReadFIMI(f *testing.F) {
	f.Add("1 2 3\n4 5\n")
	f.Add("")
	f.Add("  7   7 7\n\n\n9\n")
	f.Add("999999999 0\n")
	f.Add("1 x\n")
	f.Add("-1\n")
	f.Add("\t\r\n 3\r\n")
	f.Add("4294967295\n")           // max uint32 item
	f.Add("4294967296\n")           // one past: out of range
	f.Add("99999999999999999999\n") // far out of range
	f.Add("-0\n")                   // negative zero token
	f.Add("1 -2 3\n")               // negative mid-transaction
	f.Add("2.5\n")                  // non-integer token
	f.Add("+3\n")                   // explicit plus sign
	f.Add("0x10\n")                 // hex prefix
	f.Add("1\x002\n")               // NUL inside a token
	f.Add("7 \t 8\r")               // trailing CR without LF
	f.Add(" \t \r \n")              // whitespace-only lines
	f.Fuzz(func(t *testing.T, input string) {
		db, err := ReadFIMI("fuzz", strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, tr := range db.Transactions {
			if len(tr) == 0 {
				t.Fatal("empty transaction accepted")
			}
			if !tr.IsSorted() {
				t.Fatalf("unsorted transaction: %v", tr)
			}
		}
		var buf strings.Builder
		if err := WriteFIMI(&buf, db); err != nil {
			t.Fatalf("WriteFIMI: %v", err)
		}
		back, err := ReadFIMI("fuzz2", strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.NumTransactions() != db.NumTransactions() {
			t.Fatalf("round trip changed size: %d vs %d", back.NumTransactions(), db.NumTransactions())
		}
		for i := range db.Transactions {
			if !back.Transactions[i].Equal(db.Transactions[i]) {
				t.Fatalf("round trip changed transaction %d", i)
			}
		}
	})
}

// FuzzReadFIMILimits checks the hardened reader never panics, never
// accepts a database outside its limits, and fails limit breaches with
// a typed *ParseError — the untrusted-upload contract the serving layer
// depends on.
func FuzzReadFIMILimits(f *testing.F) {
	// Seeds around each limit boundary.
	f.Add("1 2 3\n4 5\n", 32, 4, int64(8))
	f.Add(strings.Repeat("7 ", 40)+"\n", 16, 0, int64(0))              // line over MaxLineBytes
	f.Add("1\n2\n3\n4\n5\n", 0, 3, int64(0))                           // transactions over limit
	f.Add("1 2 3 4 5 6 7 8 9 10\n", 0, 0, int64(5))                    // items over limit
	f.Add("5 5 5 5\n", 0, 0, int64(3))                                 // dedup must not evade the item cap
	f.Add("11111111\n", 8, 0, int64(0))                                // line exactly at the cap
	f.Add("\n\n\n9\n", 4, 1, int64(1))                                 // blank lines are free
	f.Add("4294967295 0\n-1\n", 64, 8, int64(16))                      // parse error under limits
	f.Add(strings.Repeat("1\n", 100), 0, 99, int64(0))                 // one past MaxTransactions
	f.Add("1 2\n"+strings.Repeat("3 ", 1000)+"\n", 1024, 10, int64(3)) // item cap binds before line cap
	f.Fuzz(func(t *testing.T, input string, maxLine, maxTrans int, maxItems int64) {
		// Keep limits in a sane range so the fuzzer explores behaviour,
		// not int overflow of the limits themselves.
		if maxLine < 0 || maxTrans < 0 || maxItems < 0 {
			return
		}
		lim := Limits{MaxLineBytes: maxLine, MaxTransactions: maxTrans, MaxTotalItems: maxItems}
		db, err := ReadFIMILimits("fuzz", strings.NewReader(input), lim)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) && strings.Contains(err.Error(), "exceeds") {
				t.Fatalf("limit breach not a *ParseError: %v", err)
			}
			return
		}
		// Accepted: the database must actually be inside the limits.
		if maxTrans > 0 && db.NumTransactions() > maxTrans {
			t.Fatalf("accepted %d transactions over limit %d", db.NumTransactions(), maxTrans)
		}
		var items int64
		for _, tr := range db.Transactions {
			if maxLine > 0 && len(tr)*2-1 > maxLine+1 {
				t.Fatalf("accepted a transaction longer than any legal line")
			}
			items += int64(len(tr))
		}
		if maxItems > 0 && items > maxItems {
			t.Fatalf("accepted %d items over limit %d", items, maxItems)
		}
	})
}
