// Package core defines the shared vocabulary of the mining engines: the
// algorithm/configuration enumeration, run options, and the Result type
// every miner produces. The miners themselves live in internal/apriori,
// internal/eclat and internal/fpgrowth; this package is what they agree
// on, and what the public facade (package fim) re-exports.
package core

import (
	"fmt"
	"slices"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/runctl"
	"repro/internal/sched"
	"repro/internal/vertical"
)

// Algorithm names a mining algorithm.
type Algorithm int

const (
	Apriori Algorithm = iota
	Eclat
	FPGrowth
)

func (a Algorithm) String() string {
	switch a {
	case Apriori:
		return "apriori"
	case Eclat:
		return "eclat"
	case FPGrowth:
		return "fpgrowth"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm maps a name to its Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "apriori":
		return Apriori, nil
	case "eclat":
		return Eclat, nil
	case "fpgrowth":
		return FPGrowth, nil
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", s)
}

// Options configures a mining run.
type Options struct {
	// Representation selects the vertical layout (ignored by FP-growth).
	Representation vertical.Kind
	// Workers is the team size; 0 or 1 runs serially.
	Workers int
	// Schedule overrides the algorithm's default loop schedule
	// (static for Apriori, dynamic chunk 1 for Eclat) when Policy/Chunk
	// are set via HasSchedule.
	Schedule    sched.Schedule
	HasSchedule bool
	// Collector, when non-nil, records the run's parallel structure for
	// reporting and NUMA replay.
	Collector *perf.Collector
	// Observer, when non-nil, receives the run's structured event stream
	// live: level/class boundaries with candidate and frequent counts,
	// live payload bytes, degradations, and per-loop worker load. A nil
	// Observer costs the miners one branch per emit site.
	Observer obs.Observer
	// Metrics, when non-nil, is attached to the miner's worker team and
	// collects per-worker busy time, tasks and chunks for every
	// scheduler loop; the miners forward each finished loop to Observer
	// as a phase_end event.
	Metrics *sched.Metrics
	// Control, when non-nil, is the run-control handle: cooperative
	// cancellation and resource budgets, checked by the scheduler at
	// chunk boundaries and by the miners at level/class boundaries. A
	// stopped run returns its partial Result (Incomplete set) together
	// with the stop cause.
	Control *runctl.Control
	// Prune enables Apriori's subset-based candidate pruning
	// (on by default via DefaultOptions).
	Prune bool
	// LazyMaterialize makes Apriori count candidate supports without
	// allocating payloads, materializing only the frequent survivors
	// (ablation A10). Requires a representation implementing
	// vertical.SupportOnly; ignored otherwise.
	LazyMaterialize bool
	// Batch routes the miners' combine loops through the prefix-blocked
	// batched kernels (vertical.CombineManyInto): one resident parent is
	// combined against its whole sibling run per kernel call, streaming
	// the shared parent once per block instead of once per candidate.
	// On by default via DefaultOptions; Apriori's lazy-materialization
	// counting stays pairwise regardless (CombineSupport has no batched
	// form). Results are identical either way — only the loop structure
	// and the memory traffic change.
	Batch bool
	// EclatDepth selects Eclat's parallel decomposition: 1 parallelizes
	// the literal outer loop of Algorithm 2 (one task per first-level
	// equivalence class — the paper's text reading, whose parallelism is
	// capped by the frequent-item count); k >= 2 flattens the first k−1
	// levels breadth-first and runs one task per frequent k-itemset
	// subtree. 0 uses eclat.DefaultDepth, the shallowest flattening
	// consistent with the speedups the paper reports (see the A4
	// ablation).
	EclatDepth int
}

// DefaultOptions returns the configuration the paper's experiments use:
// the given representation and worker count, pruning on, the algorithm's
// own default schedule.
func DefaultOptions(rep vertical.Kind, workers int) Options {
	return Options{Representation: rep, Workers: workers, Prune: true, Batch: true}
}

// EmitPhases forwards every scheduler loop finished since the last call
// to the observer, one phase_end event per loop, carrying per-worker
// busy time, tasks, chunks, and the max/mean busy-time imbalance. A nil
// observer or metrics makes it a no-op; the miners call it at level
// boundaries.
func EmitPhases(o obs.Observer, m *sched.Metrics) {
	if o == nil || m == nil {
		return
	}
	for _, ps := range m.Drain() {
		e := obs.Event{
			Type:       obs.PhaseEnd,
			Phase:      ps.Name,
			Schedule:   ps.Schedule.String(),
			Candidates: ps.N,
			ElapsedNS:  int64(ps.Wall),
			Imbalance:  ps.Imbalance(),
		}
		for w, ws := range ps.Workers {
			e.Load = append(e.Load, obs.WorkerLoad{
				Worker: w, BusyNS: int64(ws.Busy), Tasks: ws.Tasks, Chunks: ws.Chunks,
				Spawned: ws.Spawned, Stolen: ws.Stolen,
			})
		}
		o.Event(e)
	}
}

// ItemsetCount pairs an itemset with its support.
type ItemsetCount struct {
	Items   itemset.Itemset
	Support int
}

// Result is the output of a mining run. Itemsets are in the dense item
// space of Rec; Decode maps them back to original item codes.
type Result struct {
	// Algorithm and Representation identify the configuration that ran.
	Algorithm      Algorithm
	Representation vertical.Kind
	// MinSup is the absolute support threshold used.
	MinSup int
	// Counts holds every frequent itemset with its support, in dense
	// item codes. Order is unspecified (parallel runs vary); use Sorted
	// for a canonical view.
	Counts []ItemsetCount
	// Rec is the recoded database the run mined.
	Rec *dataset.Recoded
	// MaxK is the size of the largest frequent itemset found.
	MaxK int
	// Incomplete is true when the run stopped before exhausting the
	// search space (cancellation, deadline, budget breach, or contained
	// worker panic). Counts then holds only the itemsets — with correct
	// supports — committed before the stop; StopCause says why.
	Incomplete bool
	// StopCause is the error that ended an incomplete run (nil when the
	// run finished). It matches the error the miner returned.
	StopCause error
	// Degraded is true when the run crossed its memory budget and
	// switched the live payloads to diffsets mid-run
	// (runctl.Budget.DegradeToDiffset) instead of stopping.
	// Representation still names the representation the run started
	// with.
	Degraded bool
}

// Len returns the number of frequent itemsets (all sizes, including 1).
func (r *Result) Len() int { return len(r.Counts) }

// Sorted returns the itemsets in canonical lexicographic order,
// independent of the schedule that produced them.
func (r *Result) Sorted() []ItemsetCount {
	out := make([]ItemsetCount, len(r.Counts))
	copy(out, r.Counts)
	slices.SortFunc(out, func(a, b ItemsetCount) int { return a.Items.Compare(b.Items) })
	return out
}

// Decoded returns the itemsets mapped back to original item codes, in
// canonical order of the original codes (dense order may differ when the
// database was recoded by frequency).
func (r *Result) Decoded() []ItemsetCount {
	out := make([]ItemsetCount, len(r.Counts))
	for i, c := range r.Counts {
		out[i] = ItemsetCount{Items: r.Rec.Decode(c.Items), Support: c.Support}
	}
	slices.SortFunc(out, func(a, b ItemsetCount) int { return a.Items.Compare(b.Items) })
	return out
}

// ByKey returns a support lookup map keyed by Itemset.Key(), for
// cross-checking results between algorithms.
func (r *Result) ByKey() map[string]int {
	m := make(map[string]int, len(r.Counts))
	for _, c := range r.Counts {
		m[c.Items.Key()] = c.Support
	}
	return m
}

// Equal reports whether two results contain exactly the same itemsets
// with the same supports (regardless of order).
func (r *Result) Equal(o *Result) bool {
	if r.Len() != o.Len() {
		return false
	}
	m := r.ByKey()
	for _, c := range o.Counts {
		if s, ok := m[c.Items.Key()]; !ok || s != c.Support {
			return false
		}
	}
	return true
}
