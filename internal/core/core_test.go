package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/vertical"
)

func TestAlgorithmString(t *testing.T) {
	cases := map[Algorithm]string{Apriori: "apriori", Eclat: "eclat", FPGrowth: "fpgrowth"}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
		got, err := ParseAlgorithm(want)
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", want, got, err)
		}
	}
	if Algorithm(9).String() != "Algorithm(9)" {
		t.Error("unknown algorithm string")
	}
	if _, err := ParseAlgorithm("dfs"); err == nil {
		t.Error("ParseAlgorithm accepted unknown name")
	}
}

func TestDefaultOptions(t *testing.T) {
	opt := DefaultOptions(vertical.Diffset, 8)
	if opt.Representation != vertical.Diffset || opt.Workers != 8 || !opt.Prune {
		t.Errorf("DefaultOptions = %+v", opt)
	}
	if opt.HasSchedule {
		t.Error("DefaultOptions should not force a schedule")
	}
}

func testResult(t *testing.T) *Result {
	t.Helper()
	db, err := dataset.ReadFIMI("t", strings.NewReader("1 2\n1 2\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	rec := db.Recode(1)
	return &Result{
		Algorithm: Eclat,
		MinSup:    1,
		Rec:       rec,
		MaxK:      2,
		Counts: []ItemsetCount{
			{Items: itemset.New(1), Support: 3},
			{Items: itemset.New(0, 1), Support: 2},
			{Items: itemset.New(0), Support: 2},
			{Items: itemset.New(2), Support: 1},
		},
	}
}

func TestResultSortedIsCanonical(t *testing.T) {
	res := testResult(t)
	sorted := res.Sorted()
	want := []itemset.Itemset{itemset.New(0), itemset.New(0, 1), itemset.New(1), itemset.New(2)}
	for i := range want {
		if !sorted[i].Items.Equal(want[i]) {
			t.Errorf("sorted[%d] = %v, want %v", i, sorted[i].Items, want[i])
		}
	}
	// Sorted must not mutate the original order.
	if !res.Counts[0].Items.Equal(itemset.New(1)) {
		t.Error("Sorted mutated Counts")
	}
}

func TestResultDecoded(t *testing.T) {
	res := testResult(t)
	dec := res.Decoded()
	// dense 0,1,2 -> original 1,2,3
	if !dec[0].Items.Equal(itemset.New(1)) {
		t.Errorf("decoded[0] = %v", dec[0].Items)
	}
	if !dec[1].Items.Equal(itemset.New(1, 2)) {
		t.Errorf("decoded[1] = %v", dec[1].Items)
	}
}

func TestResultByKeyAndEqual(t *testing.T) {
	res := testResult(t)
	m := res.ByKey()
	if m[itemset.New(0, 1).Key()] != 2 {
		t.Error("ByKey lookup failed")
	}
	other := &Result{Counts: append([]ItemsetCount(nil), res.Counts...), Rec: res.Rec}
	// Shuffle order: equality must ignore order.
	other.Counts[0], other.Counts[3] = other.Counts[3], other.Counts[0]
	if !res.Equal(other) {
		t.Error("order-shuffled results not equal")
	}
	// Different support breaks equality.
	other.Counts[1].Support++
	if res.Equal(other) {
		t.Error("support mismatch not detected")
	}
	other.Counts[1].Support--
	// Missing itemset breaks equality.
	other.Counts = other.Counts[:3]
	if res.Equal(other) {
		t.Error("length mismatch not detected")
	}
}
