package tidset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDeduplicates(t *testing.T) {
	s := New(5, 1, 3, 1, 5)
	if !s.Equal(Set{1, 3, 5}) {
		t.Errorf("New = %v", s)
	}
	if New().Support() != 0 {
		t.Error("empty set has nonzero support")
	}
}

func TestContains(t *testing.T) {
	s := New(2, 4, 9)
	for _, tid := range []TID{2, 4, 9} {
		if !s.Contains(tid) {
			t.Errorf("Contains(%d) = false", tid)
		}
	}
	for _, tid := range []TID{0, 3, 10} {
		if s.Contains(tid) {
			t.Errorf("Contains(%d) = true", tid)
		}
	}
}

func TestIntersectBasic(t *testing.T) {
	cases := []struct{ a, b, want Set }{
		{New(), New(), New()},
		{New(1, 2, 3), New(), New()},
		{New(1, 2, 3), New(2, 3, 4), New(2, 3)},
		{New(1, 3, 5), New(2, 4, 6), New()},
		{New(1, 2, 3), New(1, 2, 3), New(1, 2, 3)},
	}
	for _, c := range cases {
		if got := c.a.Intersect(c.b); !got.Equal(c.want) {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersect(c.a); !got.Equal(c.want) {
			t.Errorf("commuted %v ∩ %v = %v, want %v", c.b, c.a, got, c.want)
		}
		if got := c.a.IntersectSize(c.b); got != c.want.Support() {
			t.Errorf("IntersectSize(%v, %v) = %d, want %d", c.a, c.b, got, c.want.Support())
		}
	}
}

func TestGallopIntersectMatchesMerge(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	// Short set vs long set: forces the galloping path (ratio >= 16).
	long := make([]TID, 0, 4096)
	for i := 0; i < 4096; i++ {
		if r.Intn(3) > 0 {
			long = append(long, TID(i))
		}
	}
	longSet := New(long...)
	for trial := 0; trial < 50; trial++ {
		short := make([]TID, 0, 8)
		for i := 0; i < 8; i++ {
			short = append(short, TID(r.Intn(4200)))
		}
		shortSet := New(short...)
		got := shortSet.Intersect(longSet)
		// Reference by Contains.
		var want Set
		for _, x := range shortSet {
			if longSet.Contains(x) {
				want = append(want, x)
			}
		}
		if !got.Equal(New(want...)) {
			t.Fatalf("gallop intersect mismatch: got %v want %v", got, want)
		}
	}
}

func TestDiff(t *testing.T) {
	cases := []struct{ a, b, want Set }{
		{New(), New(), New()},
		{New(1, 2, 3), New(), New(1, 2, 3)},
		{New(1, 2, 3), New(2), New(1, 3)},
		{New(1, 2, 3), New(1, 2, 3), New()},
		{New(1, 2, 3), New(4, 5), New(1, 2, 3)},
	}
	for _, c := range cases {
		if got := c.a.Diff(c.b); !got.Equal(c.want) {
			t.Errorf("%v \\ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestUnion(t *testing.T) {
	if got := New(1, 3).Union(New(2, 3, 4)); !got.Equal(New(1, 2, 3, 4)) {
		t.Errorf("Union = %v", got)
	}
}

func TestComplement(t *testing.T) {
	s := New(1, 3)
	if got := s.Complement(5); !got.Equal(New(0, 2, 4)) {
		t.Errorf("Complement = %v", got)
	}
	if got := New().Complement(3); !got.Equal(New(0, 1, 2)) {
		t.Errorf("Complement of empty = %v", got)
	}
	if got := New(0, 1, 2).Complement(3); got.Support() != 0 {
		t.Errorf("Complement of full = %v", got)
	}
}

func TestIntoFormsReuseBuffer(t *testing.T) {
	a, b := New(1, 2, 3, 4), New(2, 4, 6)
	buf := make(Set, 0, 8)
	got := a.IntersectInto(b, buf)
	if !got.Equal(New(2, 4)) {
		t.Errorf("IntersectInto = %v", got)
	}
	if cap(got) != cap(buf) {
		t.Error("IntersectInto reallocated despite sufficient capacity")
	}
	got = a.DiffInto(b, buf)
	if !got.Equal(New(1, 3)) {
		t.Errorf("DiffInto = %v", got)
	}
}

// diffsetIdentity checks the tidset/diffset duality the paper's Equation 1
// rests on: for parents PX, PY with diffsets relative to prefix P,
// d(PXY) = d(PY) \ d(PX) equals t(PX) \ t(PY).
func TestDiffsetDuality(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 200
	for trial := 0; trial < 100; trial++ {
		tp := randomSet(r, n)                // t(P)
		tpx := tp.Intersect(randomSet(r, n)) // t(PX) ⊆ t(P)
		tpy := tp.Intersect(randomSet(r, n)) // t(PY) ⊆ t(P)
		dpx := tp.Diff(tpx)                  // d(PX) = t(P) \ t(PX)
		dpy := tp.Diff(tpy)
		dpxy := dpy.Diff(dpx)
		want := tpx.Diff(tpy)
		if !dpxy.Equal(want) {
			t.Fatalf("duality violated: d=%v want %v", dpxy, want)
		}
		// support(PXY) = support(PX) - |d(PXY)|
		if got := tpx.Support() - dpxy.Support(); got != tpx.Intersect(tpy).Support() {
			t.Fatalf("support identity violated: %d vs %d", got, tpx.Intersect(tpy).Support())
		}
	}
}

func randomSet(r *rand.Rand, n int) Set {
	tids := make([]TID, 0, n/2)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			tids = append(tids, TID(i))
		}
	}
	return New(tids...)
}

func TestQuickLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	law := func(sa, sb int64) bool {
		a := randomSet(rand.New(rand.NewSource(sa)), 64)
		b := randomSet(rand.New(rand.NewSource(sb)), 64)
		// inclusion-exclusion
		if a.Intersect(b).Support()+a.Union(b).Support() != a.Support()+b.Support() {
			return false
		}
		// A = (A\B) ∪ (A∩B), disjointly
		d, i := a.Diff(b), a.Intersect(b)
		if d.IntersectSize(i) != 0 {
			return false
		}
		return d.Union(i).Equal(a)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("set laws: %v", err)
	}
	// Complement is an involution and partitions the universe.
	law2 := func(seed int64) bool {
		a := randomSet(rand.New(rand.NewSource(seed)), 64)
		c := a.Complement(64)
		if a.IntersectSize(c) != 0 || a.Support()+c.Support() != 64 {
			return false
		}
		return c.Complement(64).Equal(a)
	}
	if err := quick.Check(law2, cfg); err != nil {
		t.Errorf("complement laws: %v", err)
	}
	// Sortedness is preserved by every operation.
	law3 := func(sa, sb int64) bool {
		a := randomSet(rand.New(rand.NewSource(sa)), 64)
		b := randomSet(rand.New(rand.NewSource(sb)), 64)
		return a.Intersect(b).IsSorted() && a.Diff(b).IsSorted() && a.Union(b).IsSorted()
	}
	if err := quick.Check(law3, cfg); err != nil {
		t.Errorf("sortedness: %v", err)
	}
}

func benchSets(density float64, n int) (Set, Set) {
	r := rand.New(rand.NewSource(3))
	var a, b Set
	for i := 0; i < n; i++ {
		if r.Float64() < density {
			a = append(a, TID(i))
		}
		if r.Float64() < density {
			b = append(b, TID(i))
		}
	}
	return a, b
}

// The Intersect / IntersectInto / gallop trio: same dense inputs for
// the first two, so the only difference is where the result lives —
// the allocating form pays one allocation per combine, the Into form
// reuses the caller's buffer (allocs/op 0 at steady state). The
// skewed-gallop benchmark covers the binary-search path the Into form
// takes when the operand sizes diverge.

func BenchmarkIntersectAlloc(b *testing.B) {
	x, y := benchSets(0.5, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Intersect(y)
	}
}

func BenchmarkIntersectInto(b *testing.B) {
	x, y := benchSets(0.5, 1<<16)
	buf := make(Set, 0, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = x.IntersectInto(y, buf)
	}
}

func BenchmarkDiffAlloc(b *testing.B) {
	x, y := benchSets(0.5, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Diff(y)
	}
}

func BenchmarkDiffDense(b *testing.B) {
	x, y := benchSets(0.5, 1<<16)
	buf := make(Set, 0, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = x.DiffInto(y, buf)
	}
}

func BenchmarkIntersectSkewedGallop(b *testing.B) {
	long, _ := benchSets(0.9, 1<<16)
	short := New(5, 999, 20000, 40000, 65000)
	buf := make(Set, 0, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = short.IntersectInto(long, buf)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(1, 2, 3)
	c := a.Clone()
	c[0] = 9
	if a[0] != 1 {
		t.Error("Clone shares storage")
	}
	if !New().Clone().Equal(New()) {
		t.Error("empty clone")
	}
}

func TestWords(t *testing.T) {
	if New(1, 2, 3).Words() != 3 {
		t.Error("Words")
	}
}

func TestEqualLengthMismatch(t *testing.T) {
	if New(1, 2).Equal(New(1)) {
		t.Error("different lengths equal")
	}
	if New(1, 2).Equal(New(1, 3)) {
		t.Error("different contents equal")
	}
}

func TestIsSortedDetectsViolations(t *testing.T) {
	if (Set{2, 1}).IsSorted() {
		t.Error("unsorted set passes IsSorted")
	}
	if (Set{1, 1}).IsSorted() {
		t.Error("duplicate set passes IsSorted")
	}
}

func TestDiffSizeMatchesDiff(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		a := randomSet(r, 64)
		b := randomSet(r, 64)
		if a.DiffSize(b) != a.Diff(b).Support() {
			t.Fatalf("DiffSize(%v, %v) = %d, want %d", a, b, a.DiffSize(b), a.Diff(b).Support())
		}
	}
	if New(1, 2, 3).DiffSize(New()) != 3 {
		t.Error("DiffSize against empty")
	}
	if New().DiffSize(New(1)) != 0 {
		t.Error("DiffSize of empty")
	}
}
