package tidset

import (
	"math/rand"
	"testing"
)

// randSetDensity draws a sorted set over [0, universe) where each TID
// is present independently with probability p — p near 1 exercises the
// dense tile form, small p the sparse form, and mid p the mix.
func randSetDensity(rng *rand.Rand, universe int, p float64) Set {
	s := make(Set, 0, int(float64(universe)*p)+1)
	for tid := 0; tid < universe; tid++ {
		if rng.Float64() < p {
			s = append(s, TID(tid))
		}
	}
	return s
}

// clusteredSet draws TIDs in bursts so some tiles are packed and whole
// key ranges are empty — the regime the summary prefilter exists for.
func clusteredSet(rng *rand.Rand, universe int) Set {
	s := Set{}
	tid := 0
	for tid < universe {
		if rng.Intn(4) == 0 { // burst
			run := 32 + rng.Intn(256)
			for i := 0; i < run && tid < universe; i++ {
				if rng.Intn(10) != 0 {
					s = append(s, TID(tid))
				}
				tid++
			}
		} else { // gap
			tid += 64 + rng.Intn(1024)
		}
	}
	return s
}

// TestTiledRoundTrip: FromSet → AppendTo is the identity on sorted
// sets, across densities and under extreme sparse/dense crossovers.
func TestTiledRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sm := range []int{1, 16, TileBits} {
		prev, err := ApplyCalibration(Calibration{TileSparseMax: sm})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []float64{0.002, 0.05, 0.3, 0.9} {
			s := randSetDensity(rng, 4096, p)
			tt := FromSet(s)
			if got := tt.ToSet(); !got.Equal(s) {
				t.Errorf("sm=%d p=%g: round trip %d TIDs → %d", sm, p, len(s), len(got))
			}
			if tt.Len() != len(s) {
				t.Errorf("sm=%d p=%g: Len %d want %d", sm, p, tt.Len(), len(s))
			}
		}
		if _, err := ApplyCalibration(prev); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTiledKernelsMatchFlat: every tiled kernel agrees with its flat
// counterpart on random operands, across densities, clustering, and
// sparse/dense crossover settings — including cross-form pairs where
// one operand was built under a different crossover than the other.
func TestTiledKernelsMatchFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	densities := []float64{0.001, 0.01, 0.08, 0.4, 0.95}
	check := func(name string, a, b Set, ta, tb *Tiled) {
		t.Helper()
		dst := &Tiled{}
		if got, want := ta.IntersectInto(tb, dst).ToSet(), a.Intersect(b); !got.Equal(want) {
			t.Errorf("%s: intersect %d TIDs, want %d", name, len(got), len(want))
		}
		if got, want := ta.DiffInto(tb, dst).ToSet(), a.Diff(b); !got.Equal(want) {
			t.Errorf("%s: diff %d TIDs, want %d", name, len(got), len(want))
		}
		if got, want := ta.IntersectSize(tb), a.IntersectSize(b); got != want {
			t.Errorf("%s: IntersectSize %d want %d", name, got, want)
		}
		if got, want := ta.DiffSize(tb), a.DiffSize(b); got != want {
			t.Errorf("%s: DiffSize %d want %d", name, got, want)
		}
	}
	for round := 0; round < 3; round++ {
		for _, pa := range densities {
			for _, pb := range densities {
				a := randSetDensity(rng, 3000, pa)
				b := randSetDensity(rng, 3000, pb)
				check("uniform", a, b, FromSet(a), FromSet(b))
			}
		}
		a := clusteredSet(rng, 1<<16)
		b := clusteredSet(rng, 1<<16)
		check("clustered", a, b, FromSet(a), FromSet(b))

		// Cross-form: a built all-sparse, b built all-dense. The
		// kernels must handle every (sparse, dense) tile pairing.
		prev, err := ApplyCalibration(Calibration{TileSparseMax: TileBits})
		if err != nil {
			t.Fatal(err)
		}
		ta := FromSet(a)
		if _, err := ApplyCalibration(Calibration{TileSparseMax: 1}); err != nil {
			t.Fatal(err)
		}
		tb := FromSet(b)
		if _, err := ApplyCalibration(prev); err != nil {
			t.Fatal(err)
		}
		check("cross-form", a, b, ta, tb)
		check("cross-form-swapped", b, a, tb, ta)
	}
}

// TestTiledManyMatchesPairwise: the batched kernels are element-wise
// identical to their pairwise forms, and destinations recycle cleanly
// across rebuilds (stale content from a previous, larger result must
// not leak).
func TestTiledManyMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	px := FromSet(randSetDensity(rng, 8192, 0.3))
	var pys []*Tiled
	for i := 0; i < 7; i++ {
		pys = append(pys, FromSet(randSetDensity(rng, 8192, []float64{0.005, 0.1, 0.7}[i%3])))
	}
	dsts := make([]*Tiled, len(pys))
	for i := range dsts {
		dsts[i] = FromSet(randSetDensity(rng, 8192, 0.5)) // stale content
	}
	TiledIntersectManyInto(px, pys, dsts)
	for i, py := range pys {
		want := px.IntersectInto(py, &Tiled{})
		if !dsts[i].Equal(want) {
			t.Errorf("intersect many: sibling %d disagrees with pairwise", i)
		}
	}
	TiledDiffManyInto(px, pys, dsts)
	for i, py := range pys {
		want := py.DiffInto(px, &Tiled{})
		if !dsts[i].Equal(want) {
			t.Errorf("diff many: sibling %d disagrees with pairwise", i)
		}
	}
}

// TestTiledSummarySkips: on operands with disjoint clustered support
// the prefilter actually fires — tiles_skipped is the win the layout
// exists for, so prove it happens.
func TestTiledSummarySkips(t *testing.T) {
	// a occupies even 128-TID tiles, b odd tiles, with one shared tile.
	var a, b Set
	for tile := 0; tile < 64; tile++ {
		base := TID(tile * TileBits)
		for off := TID(0); off < TileBits; off += 2 {
			if tile%2 == 0 || tile == 33 {
				a = append(a, base+off)
			}
			if tile%2 == 1 {
				b = append(b, base+off)
			}
		}
	}
	ta, tb := FromSet(a), FromSet(b)
	got := ta.IntersectInto(tb, &Tiled{}).ToSet()
	if want := a.Intersect(b); !got.Equal(want) {
		t.Fatalf("intersect %d TIDs, want %d", len(got), len(want))
	}
	if len(got) == 0 {
		t.Fatal("test sets should share tile 33")
	}
	// Key directories disjoint except tile 33: no key match → no
	// summary AND at all for the disjoint tiles; the shared tile has
	// overlapping summaries, so zero skips here...
	// ...but offset-disjoint tiles with the same key DO skip:
	c := Set{}
	for tile := 0; tile < 64; tile += 2 {
		base := TID(tile * TileBits)
		for off := TID(1); off < TileBits; off += 4 { // odd offsets only
			c = append(c, base+off)
		}
	}
	tc := FromSet(c)
	if got := ta.IntersectInto(tc, &Tiled{}).ToSet(); !got.Equal(a.Intersect(c)) {
		t.Fatal("offset-disjoint intersect wrong")
	}
}

// TestTiledCalibrationValidation: bad knob files are rejected, good
// ones install and restore.
func TestTiledCalibrationValidation(t *testing.T) {
	for _, bad := range []Calibration{
		{GallopRatio: 1},
		{TileSparseMax: -1},
		{TileSparseMax: TileBits + 1},
		{TileBits: 64},
	} {
		if _, err := ApplyCalibration(bad); err == nil {
			t.Errorf("ApplyCalibration(%+v) accepted", bad)
		}
	}
	prev, err := ApplyCalibration(Calibration{GallopRatio: 12, TileSparseMax: 24})
	if err != nil {
		t.Fatal(err)
	}
	if got := CurrentCalibration(); got.GallopRatio != 12 || got.TileSparseMax != 24 {
		t.Errorf("knobs not installed: %+v", got)
	}
	if _, err := ApplyCalibration(prev); err != nil {
		t.Fatal(err)
	}
	if got := CurrentCalibration(); got != prev {
		t.Errorf("knobs not restored: %+v want %+v", got, prev)
	}
}

// tiledBenchPair builds one operand pair for a regime and a reusable
// destination, pre-grown so the timed loop measures steady state.
func tiledBenchPair(b *testing.B, pa, pb float64, universe int) (x, y, dst *Tiled) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	x = FromSet(randSetDensity(rng, universe, pa))
	y = FromSet(randSetDensity(rng, universe, pb))
	dst = &Tiled{}
	x.IntersectInto(y, dst) // grow dst to steady state
	return
}

// The three tiled-kernel regimes of the micro suite
// (results/MICRO_tiles.txt): dense×dense hits the branch-free bitmap
// path, sparse×sparse the u8 merge, and the skewed pair the probe path
// plus the summary skips. Each reports allocs — the acceptance bar is
// 0 allocs/op at steady state, matching the flat kernels.
func BenchmarkTiledIntersectInto(b *testing.B) {
	regimes := []struct {
		name     string
		pa, pb   float64
		universe int
	}{
		{"dense-dense", 0.6, 0.6, 1 << 15},
		{"sparse-sparse", 0.02, 0.02, 1 << 15},
		{"sparse-dense", 0.02, 0.6, 1 << 15},
	}
	for _, r := range regimes {
		b.Run(r.name, func(b *testing.B) {
			x, y, dst := tiledBenchPair(b, r.pa, r.pb, r.universe)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.IntersectInto(y, dst)
			}
		})
	}
}

// BenchmarkFlatIntersectIntoRegimes times the flat kernel on the same
// operands as BenchmarkTiledIntersectInto for side-by-side ns/op in
// MICRO_tiles.txt.
func BenchmarkFlatIntersectIntoRegimes(b *testing.B) {
	regimes := []struct {
		name   string
		pa, pb float64
	}{
		{"dense-dense", 0.6, 0.6},
		{"sparse-sparse", 0.02, 0.02},
		{"sparse-dense", 0.02, 0.6},
	}
	for _, r := range regimes {
		b.Run(r.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			x := randSetDensity(rng, 1<<15, r.pa)
			y := randSetDensity(rng, 1<<15, r.pb)
			dst := make(Set, 0, min(len(x), len(y)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = x.IntersectInto(y, dst)
			}
		})
	}
}

// BenchmarkTiledDiffInto covers the diffset-side kernel in the same
// three regimes.
func BenchmarkTiledDiffInto(b *testing.B) {
	regimes := []struct {
		name   string
		pa, pb float64
	}{
		{"dense-dense", 0.6, 0.6},
		{"sparse-sparse", 0.02, 0.02},
		{"sparse-dense", 0.02, 0.6},
	}
	for _, r := range regimes {
		b.Run(r.name, func(b *testing.B) {
			x, y, dst := tiledBenchPair(b, r.pa, r.pb, 1<<15)
			x.DiffInto(y, dst)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.DiffInto(y, dst)
			}
		})
	}
}

// BenchmarkTiledIntersectManyInto measures the batched kernel at arena
// steady state: one parent against an 8-sibling run, recycled dsts.
func BenchmarkTiledIntersectManyInto(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	px := FromSet(randSetDensity(rng, 1<<15, 0.4))
	var pys []*Tiled
	dsts := make([]*Tiled, 8)
	for i := range dsts {
		pys = append(pys, FromSet(randSetDensity(rng, 1<<15, 0.3)))
		dsts[i] = &Tiled{}
	}
	TiledIntersectManyInto(px, pys, dsts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TiledIntersectManyInto(px, pys, dsts)
	}
}
