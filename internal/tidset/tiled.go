// Tiled is the tile-partitioned tidset layout: the TID universe is cut
// into fixed 128-TID tiles (key = tid >> 7) and a set stores only its
// non-empty tiles, each carrying a 64-bit occupancy summary word and a
// per-tile payload that is either sparse (sorted u8 in-tile offsets) or
// dense (a 128-bit bitmap), chosen by cardinality at tile-build time —
// the roaring-style switch. Intersection then runs in two phases: a
// branch-free AND over summary words that discards whole tiles with
// provably empty intersections, and an in-tile kernel only where the
// prefilter says both sides are populated. This is the layout argument
// of Amossen & Pagh (fixed-width blocks turn data-dependent merges into
// word operations) applied to the paper's candidate-combine loop: the
// flat kernels walk every element of both operands, while the tiled
// kernels touch one summary word per ~128-TID span and skip the
// payload entirely wherever supports don't overlap.
//
// Summary semantics: bit b of a tile's summary covers the two in-tile
// offsets {2b, 2b+1}, and the builders keep summaries exact (bit set
// iff at least one covered TID is present). A zero AND of two summaries
// therefore proves the tiles disjoint — skipping is always sound — and
// a nonzero AND can still be a false positive at TID granularity, which
// the in-tile kernel resolves.
//
// All destructive kernels follow the package's "Into" discipline: they
// rebuild dst from length zero while keeping its backing arrays, so
// arena-recycled destinations reach a steady state with zero
// allocations per combine, matching the flat kernels.
package tidset

import (
	"math/bits"

	"repro/internal/kcount"
)

// Tile geometry. The width is compile-time: in-tile offsets are uint8
// and dense payloads are exactly two 64-bit words, both of which assume
// 128. cmd/calibrate -tiles times simulated 64/256-TID variants to
// justify the choice per host; the sparse/dense crossover
// (TileSparseMax) is the knob that actually moves between hosts.
const (
	// TileBits is the number of TIDs covered by one tile.
	TileBits = 128
	// TileShift converts a TID to its tile key: key = tid >> TileShift.
	TileShift = 7
	tileMask      = TileBits - 1
	tileWordCount = TileBits / 64

	// tileDenseFlag marks a dense (bitmap) tile in the meta word; the
	// low bits hold the tile cardinality (1..128).
	tileDenseFlag = 1 << 15
)

// Tiled is a tile-partitioned tidset. The zero value is an empty set
// ready for use as a kernel destination. Tiles are stored as parallel
// arrays sorted by key, with payloads packed into two shared pools so a
// whole set is six allocations regardless of tile count.
type Tiled struct {
	keys []uint32 // tile keys, strictly ascending
	sums []uint64 // exact occupancy summaries, parallel to keys
	meta []uint16 // cardinality | tileDenseFlag, parallel to keys
	offs []uint32 // payload start in sparse (u8s) or dense (words)

	sparse []uint8  // pooled sparse payloads: sorted in-tile offsets
	dense  []uint64 // pooled dense payloads: tileWordCount words each

	n int // total cardinality, maintained by the append helpers
}

// FromSet builds the tiled form of sorted set s.
func FromSet(s Set) *Tiled {
	t := &Tiled{}
	t.SetFrom(s)
	return t
}

// SetFrom rebuilds t from sorted set s, reusing t's backing arrays.
func (t *Tiled) SetFrom(s Set) *Tiled {
	t.reset()
	sm := TileSparseMax()
	for i := 0; i < len(s); {
		key := s[i] >> TileShift
		j := i + 1
		for j < len(s) && s[j]>>TileShift == key {
			j++
		}
		run := s[i:j]
		if len(run) <= sm {
			var buf [TileBits]uint8
			for k, tid := range run {
				buf[k] = uint8(tid & tileMask)
			}
			t.appendSparseTile(key, buf[:len(run)])
		} else {
			var w0, w1 uint64
			for _, tid := range run {
				if off := tid & tileMask; off < 64 {
					w0 |= 1 << off
				} else {
					w1 |= 1 << (off - 64)
				}
			}
			t.appendWordsTile(key, w0, w1, sm)
		}
		i = j
	}
	return t
}

// Len returns the cardinality |t|.
func (t *Tiled) Len() int { return t.n }

// Tiles returns the number of non-empty tiles.
func (t *Tiled) Tiles() int { return len(t.keys) }

// Bytes returns t's payload footprint: directory plus pooled payloads.
func (t *Tiled) Bytes() int {
	return 4*len(t.keys) + 8*len(t.sums) + 2*len(t.meta) + 4*len(t.offs) +
		len(t.sparse) + 8*len(t.dense)
}

// Words returns the footprint in 4-byte words, the unit the batch
// counters use for parent-traffic accounting (matching Set.Words).
func (t *Tiled) Words() int { return (t.Bytes() + 3) / 4 }

// reset empties t while keeping its backing arrays.
func (t *Tiled) reset() {
	t.keys = t.keys[:0]
	t.sums = t.sums[:0]
	t.meta = t.meta[:0]
	t.offs = t.offs[:0]
	t.sparse = t.sparse[:0]
	t.dense = t.dense[:0]
	t.n = 0
}

// AppendTo appends t's TIDs, ascending, to dst and returns it.
func (t *Tiled) AppendTo(dst Set) Set {
	for i := range t.keys {
		base := TID(t.keys[i]) << TileShift
		o := t.offs[i]
		if t.meta[i]&tileDenseFlag != 0 {
			for w := t.dense[o]; w != 0; w &= w - 1 {
				dst = append(dst, base+TID(bits.TrailingZeros64(w)))
			}
			for w := t.dense[o+1]; w != 0; w &= w - 1 {
				dst = append(dst, base+64+TID(bits.TrailingZeros64(w)))
			}
		} else {
			for _, off := range t.sparse[o : o+uint32(t.meta[i])] {
				dst = append(dst, base+TID(off))
			}
		}
	}
	return dst
}

// ToSet returns t decoded to the flat sorted-set form.
func (t *Tiled) ToSet() Set { return t.AppendTo(make(Set, 0, t.n)) }

// Equal reports whether t and u hold the same TIDs. The comparison is
// logical: a tile stored sparse on one side and dense on the other
// (possible when the two sets were built under different calibrations)
// still compares equal.
func (t *Tiled) Equal(u *Tiled) bool {
	if t.n != u.n || len(t.keys) != len(u.keys) {
		return false
	}
	for i := range t.keys {
		if t.keys[i] != u.keys[i] {
			return false
		}
		a0, a1 := t.tileWordsAt(i)
		b0, b1 := u.tileWordsAt(i)
		if a0 != b0 || a1 != b1 {
			return false
		}
	}
	return true
}

// tileWordsAt returns tile i's membership as a 128-bit bitmap,
// regardless of stored form.
func (t *Tiled) tileWordsAt(i int) (w0, w1 uint64) {
	o := t.offs[i]
	if t.meta[i]&tileDenseFlag != 0 {
		return t.dense[o], t.dense[o+1]
	}
	for _, off := range t.sparse[o : o+uint32(t.meta[i])] {
		if off < 64 {
			w0 |= 1 << off
		} else {
			w1 |= 1 << (off - 64)
		}
	}
	return
}

// evenBits compresses the even-indexed bits of w into the low 32 bits
// (the standard parallel bit-compress cascade).
func evenBits(w uint64) uint32 {
	w &= 0x5555555555555555
	w = (w | w>>1) & 0x3333333333333333
	w = (w | w>>2) & 0x0f0f0f0f0f0f0f0f
	w = (w | w>>4) & 0x00ff00ff00ff00ff
	w = (w | w>>8) & 0x0000ffff0000ffff
	w = (w | w>>16) & 0x00000000ffffffff
	return uint32(w)
}

// summaryOf computes the exact occupancy summary of a bitmap tile: bit
// b of the result is the OR of payload bits 2b and 2b+1.
func summaryOf(w0, w1 uint64) uint64 {
	return uint64(evenBits(w0|w0>>1)) | uint64(evenBits(w1|w1>>1))<<32
}

// appendSparseTile appends a sparse tile (sorted in-tile offsets) with
// an exact summary. Empty tiles are never stored.
func (t *Tiled) appendSparseTile(key uint32, offs []uint8) {
	if len(offs) == 0 {
		return
	}
	var sum uint64
	for _, off := range offs {
		sum |= 1 << (off >> 1)
	}
	t.keys = append(t.keys, key)
	t.sums = append(t.sums, sum)
	t.meta = append(t.meta, uint16(len(offs)))
	t.offs = append(t.offs, uint32(len(t.sparse)))
	t.sparse = append(t.sparse, offs...)
	t.n += len(offs)
}

// appendWordsTile appends a tile given as a 128-bit bitmap, choosing
// the stored form by cardinality against the sparse/dense crossover sm.
func (t *Tiled) appendWordsTile(key uint32, w0, w1 uint64, sm int) {
	card := bits.OnesCount64(w0) + bits.OnesCount64(w1)
	if card == 0 {
		return
	}
	if card <= sm {
		var buf [TileBits]uint8
		k := 0
		for w := w0; w != 0; w &= w - 1 {
			buf[k] = uint8(bits.TrailingZeros64(w))
			k++
		}
		for w := w1; w != 0; w &= w - 1 {
			buf[k] = uint8(64 + bits.TrailingZeros64(w))
			k++
		}
		t.appendSparseTile(key, buf[:k])
		return
	}
	t.keys = append(t.keys, key)
	t.sums = append(t.sums, summaryOf(w0, w1))
	t.meta = append(t.meta, uint16(card)|tileDenseFlag)
	t.offs = append(t.offs, uint32(len(t.dense)))
	t.dense = append(t.dense, w0, w1)
	t.n += card
}

// copyTile appends src's tile i to t verbatim.
func (t *Tiled) copyTile(src *Tiled, i int) {
	m := src.meta[i]
	card := int(m &^ tileDenseFlag)
	t.keys = append(t.keys, src.keys[i])
	t.sums = append(t.sums, src.sums[i])
	t.meta = append(t.meta, m)
	o := src.offs[i]
	if m&tileDenseFlag != 0 {
		t.offs = append(t.offs, uint32(len(t.dense)))
		t.dense = append(t.dense, src.dense[o], src.dense[o+1])
	} else {
		t.offs = append(t.offs, uint32(len(t.sparse)))
		t.sparse = append(t.sparse, src.sparse[o:o+uint32(card)]...)
	}
	t.n += card
}

// IntersectInto rebuilds dst as t ∩ u and returns it. dst must not
// alias t or u (the arena's combine paths guarantee this). Phase one
// merges the two key directories and ANDs summary words; phase two runs
// the sparse/dense in-tile kernel only where the prefilter passed. One
// AddTileKernel charge per call, from loop-local tallies.
func (t *Tiled) IntersectInto(u, dst *Tiled) *Tiled {
	dst.reset()
	sm := TileSparseMax()
	i, j := 0, 0
	summaryANDs, skipped, sparseK, denseK := 0, 0, 0, 0
	for i < len(t.keys) && j < len(u.keys) {
		a, b := t.keys[i], u.keys[j]
		if a < b {
			i++
			continue
		}
		if b < a {
			j++
			continue
		}
		summaryANDs++
		if t.sums[i]&u.sums[j] == 0 {
			skipped++
		} else {
			dst.intersectTile(t, i, u, j, sm, &sparseK, &denseK)
		}
		i++
		j++
	}
	kcount.AddTileKernel(summaryANDs, skipped, sparseK, denseK)
	return dst
}

// intersectTile intersects a's tile i with b's tile j into dst.
func (dst *Tiled) intersectTile(a *Tiled, i int, b *Tiled, j int, sm int, sparseK, denseK *int) {
	key := a.keys[i]
	da := a.meta[i]&tileDenseFlag != 0
	db := b.meta[j]&tileDenseFlag != 0
	switch {
	case da && db:
		*denseK++
		oa, ob := a.offs[i], b.offs[j]
		dst.appendWordsTile(key, a.dense[oa]&b.dense[ob], a.dense[oa+1]&b.dense[ob+1], sm)
	case !da && !db:
		*sparseK++
		sa := a.sparse[a.offs[i] : a.offs[i]+uint32(a.meta[i])]
		sb := b.sparse[b.offs[j] : b.offs[j]+uint32(b.meta[j])]
		var buf [TileBits]uint8
		k, p, q := 0, 0, 0
		for p < len(sa) && q < len(sb) {
			x, y := sa[p], sb[q]
			switch {
			case x < y:
				p++
			case y < x:
				q++
			default:
				buf[k] = x
				k++
				p++
				q++
			}
		}
		dst.appendSparseTile(key, buf[:k])
	default:
		*sparseK++
		var sp []uint8
		var w0, w1 uint64
		if da {
			o := a.offs[i]
			w0, w1 = a.dense[o], a.dense[o+1]
			o = b.offs[j]
			sp = b.sparse[o : o+uint32(b.meta[j])]
		} else {
			o := b.offs[j]
			w0, w1 = b.dense[o], b.dense[o+1]
			o = a.offs[i]
			sp = a.sparse[o : o+uint32(a.meta[i])]
		}
		var buf [TileBits]uint8
		k := 0
		for _, off := range sp {
			if off < 64 {
				if w0>>off&1 != 0 {
					buf[k] = off
					k++
				}
			} else if w1>>(off-64)&1 != 0 {
				buf[k] = off
				k++
			}
		}
		dst.appendSparseTile(key, buf[:k])
	}
}

// DiffInto rebuilds dst as t \ u and returns it. dst must not alias t
// or u. Tiles of t with no key match in u — or a zero summary AND —
// copy through without touching payloads.
func (t *Tiled) DiffInto(u, dst *Tiled) *Tiled {
	dst.reset()
	sm := TileSparseMax()
	i, j := 0, 0
	summaryANDs, skipped, sparseK, denseK := 0, 0, 0, 0
	for i < len(t.keys) {
		if j >= len(u.keys) || t.keys[i] < u.keys[j] {
			dst.copyTile(t, i)
			i++
			continue
		}
		if u.keys[j] < t.keys[i] {
			j++
			continue
		}
		summaryANDs++
		if t.sums[i]&u.sums[j] == 0 {
			skipped++
			dst.copyTile(t, i)
		} else {
			dst.diffTile(t, i, u, j, sm, &sparseK, &denseK)
		}
		i++
		j++
	}
	kcount.AddTileKernel(summaryANDs, skipped, sparseK, denseK)
	return dst
}

// diffTile appends a's tile i minus b's tile j to dst.
func (dst *Tiled) diffTile(a *Tiled, i int, b *Tiled, j int, sm int, sparseK, denseK *int) {
	key := a.keys[i]
	da := a.meta[i]&tileDenseFlag != 0
	db := b.meta[j]&tileDenseFlag != 0
	switch {
	case da && db:
		*denseK++
		oa, ob := a.offs[i], b.offs[j]
		dst.appendWordsTile(key, a.dense[oa]&^b.dense[ob], a.dense[oa+1]&^b.dense[ob+1], sm)
	case !da && !db:
		*sparseK++
		sa := a.sparse[a.offs[i] : a.offs[i]+uint32(a.meta[i])]
		sb := b.sparse[b.offs[j] : b.offs[j]+uint32(b.meta[j])]
		var buf [TileBits]uint8
		k, p, q := 0, 0, 0
		for p < len(sa) && q < len(sb) {
			x, y := sa[p], sb[q]
			switch {
			case x < y:
				buf[k] = x
				k++
				p++
			case y < x:
				q++
			default:
				p++
				q++
			}
		}
		k += copy(buf[k:], sa[p:])
		dst.appendSparseTile(key, buf[:k])
	case !da: // sparse \ dense: keep offsets whose bitmap bit is clear
		*sparseK++
		o := b.offs[j]
		w0, w1 := b.dense[o], b.dense[o+1]
		sa := a.sparse[a.offs[i] : a.offs[i]+uint32(a.meta[i])]
		var buf [TileBits]uint8
		k := 0
		for _, off := range sa {
			if off < 64 {
				if w0>>off&1 == 0 {
					buf[k] = off
					k++
				}
			} else if w1>>(off-64)&1 == 0 {
				buf[k] = off
				k++
			}
		}
		dst.appendSparseTile(key, buf[:k])
	default: // dense \ sparse: clear the subtrahend's bits
		*sparseK++
		o := a.offs[i]
		w0, w1 := a.dense[o], a.dense[o+1]
		for _, off := range b.sparse[b.offs[j] : b.offs[j]+uint32(b.meta[j])] {
			if off < 64 {
				w0 &^= 1 << off
			} else {
				w1 &^= 1 << (off - 64)
			}
		}
		dst.appendWordsTile(key, w0, w1, sm)
	}
}

// IntersectSize returns |t ∩ u| without materializing the result, with
// the same prefilter accounting as IntersectInto.
func (t *Tiled) IntersectSize(u *Tiled) int {
	i, j, n := 0, 0, 0
	summaryANDs, skipped, sparseK, denseK := 0, 0, 0, 0
	for i < len(t.keys) && j < len(u.keys) {
		a, b := t.keys[i], u.keys[j]
		if a < b {
			i++
			continue
		}
		if b < a {
			j++
			continue
		}
		summaryANDs++
		if t.sums[i]&u.sums[j] == 0 {
			skipped++
		} else {
			a0, a1 := t.tileWordsAt(i)
			b0, b1 := u.tileWordsAt(j)
			if t.meta[i]&u.meta[j]&tileDenseFlag != 0 {
				denseK++
			} else {
				sparseK++
			}
			n += bits.OnesCount64(a0&b0) + bits.OnesCount64(a1&b1)
		}
		i++
		j++
	}
	kcount.AddTileKernel(summaryANDs, skipped, sparseK, denseK)
	return n
}

// DiffSize returns |t \ u| without materializing the result.
func (t *Tiled) DiffSize(u *Tiled) int { return t.n - t.IntersectSize(u) }

// TiledIntersectManyInto intersects one resident parent px against
// every sibling in pys, rebuilding dsts[i] (entries must be non-nil,
// non-aliasing). Like the flat IntersectManyInto, the point is parent
// residency: px's directory and payloads stay cache-hot across the
// whole sibling run instead of being re-streamed per pair. Charges one
// batch_calls tick and (m−1)×px.Words() parent_words_saved.
func TiledIntersectManyInto(px *Tiled, pys []*Tiled, dsts []*Tiled) {
	m := len(pys)
	if m == 0 {
		return
	}
	for i, py := range pys {
		px.IntersectInto(py, dsts[i])
	}
	kcount.AddBatch(m, px.Words())
}

// TiledDiffManyInto rebuilds dsts[i] as srcs[i] \ sub for every
// sibling — the diffset combine d(PXY) = d(PY) − d(PX) batched over a
// prefix block with the shared subtrahend resident.
func TiledDiffManyInto(sub *Tiled, srcs []*Tiled, dsts []*Tiled) {
	m := len(srcs)
	if m == 0 {
		return
	}
	for i, src := range srcs {
		src.DiffInto(sub, dsts[i])
	}
	kcount.AddBatch(m, sub.Words())
}

// Poison overwrites every backing array, through its full capacity,
// with garbage. Test-only hook for the aliasing harness: after a
// combine, poisoning one operand must not disturb the result (and vice
// versa), proving the kernels never share backing storage across nodes.
func (t *Tiled) Poison() {
	for i := range t.keys[:cap(t.keys)] {
		t.keys[:cap(t.keys)][i] = 0xdeadbeef
	}
	for i := range t.sums[:cap(t.sums)] {
		t.sums[:cap(t.sums)][i] = ^uint64(0)
	}
	for i := range t.meta[:cap(t.meta)] {
		t.meta[:cap(t.meta)][i] = 0xffff
	}
	for i := range t.offs[:cap(t.offs)] {
		t.offs[:cap(t.offs)][i] = 0xdeadbeef
	}
	for i := range t.sparse[:cap(t.sparse)] {
		t.sparse[:cap(t.sparse)][i] = 0xff
	}
	for i := range t.dense[:cap(t.dense)] {
		t.dense[:cap(t.dense)][i] = ^uint64(0)
	}
}
