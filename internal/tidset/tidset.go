// Package tidset implements sorted transaction-id sets, the "vertical
// tidset" representation of §II-B of the paper. A tidset t(X) lists, in
// ascending order, the ids of every transaction containing itemset X.
// Support counting is intersection: t(PXY) = t(PX) ∩ t(PY), and
// support(PXY) = |t(PXY)|.
//
// The same machinery provides set difference, which is the kernel of the
// diffset representation: d(PXY) = d(PY) − d(PX) (Zaki & Gouda).
//
// All operations come in two forms: an allocating form and an "Into" form
// that appends into a caller-owned buffer, so the miners' hot loops can
// recycle per-worker scratch space without touching the allocator.
package tidset

import (
	"slices"
	"sort"

	"repro/internal/kcount"
)

// TID is a transaction identifier: the 0-based position of a transaction
// in its database.
type TID = uint32

// Set is a sorted, duplicate-free list of transaction ids.
type Set []TID

// New returns a sorted, deduplicated set built from tids.
func New(tids ...TID) Set {
	if len(tids) == 0 {
		return Set{}
	}
	s := make(Set, len(tids))
	copy(s, tids)
	slices.Sort(s)
	w := 1
	for r := 1; r < len(s); r++ {
		if s[r] != s[w-1] {
			s[w] = s[r]
			w++
		}
	}
	return s[:w]
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Support returns the cardinality |s|. Named for its role in mining:
// the support of an itemset is the size of its tidset.
func (s Set) Support() int { return len(s) }

// Contains reports whether tid is a member of s.
func (s Set) Contains(tid TID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= tid })
	return i < len(s) && s[i] == tid
}

// IsSorted reports whether s is strictly ascending (the package invariant).
func (s Set) IsSorted() bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

// Equal reports whether s and t are identical.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	return s.IntersectInto(t, make(Set, 0, min(len(s), len(t))))
}

// IntersectInto appends s ∩ t to dst[:0] and returns it. dst may be nil.
// When one operand is much shorter than the other it switches to a
// galloping (exponential search) strategy, which matters for skewed dense
// data where one parent's tidset is tiny.
func (s Set) IntersectInto(t Set, dst Set) Set {
	dst = dst[:0]
	// Ensure s is the shorter operand.
	if len(s) > len(t) {
		s, t = t, s
	}
	if len(s) == 0 {
		return dst
	}
	if len(t)/len(s) >= gallopRatio() {
		return gallopIntersect(s, t, dst)
	}
	return mergeIntersect(s, t, dst)
}

// mergeIntersect is the linear two-pointer intersection; s must be the
// shorter operand and non-empty.
func mergeIntersect(s, t Set, dst Set) Set {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		a, b := s[i], t[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			dst = append(dst, a)
			i++
			j++
		}
	}
	kcount.AddMergeSteps(i + j)
	return dst
}

// MergeIntersectInto and GallopIntersectInto run one intersection
// strategy unconditionally, bypassing IntersectInto's gallopRatio
// switch. They exist for cmd/calibrate -gallop, which re-times the
// merge-vs-gallop crossover on a new host to validate gallopRatio;
// every other caller should use IntersectInto, which picks for itself.
func MergeIntersectInto(s, t Set, dst Set) Set {
	dst = dst[:0]
	if len(s) > len(t) {
		s, t = t, s
	}
	if len(s) == 0 {
		return dst
	}
	return mergeIntersect(s, t, dst)
}

// GallopIntersectInto is MergeIntersectInto's exponential-search twin.
func GallopIntersectInto(s, t Set, dst Set) Set {
	dst = dst[:0]
	if len(s) > len(t) {
		s, t = t, s
	}
	if len(s) == 0 {
		return dst
	}
	return gallopIntersect(s, t, dst)
}

// gallopIntersect intersects short s against long t by exponential +
// binary search. The kernel counter charges one gallop pick per call
// and one probe sequence per short-side element actually processed;
// the counts come from the loop index, so the disabled path pays
// nothing inside the loop.
func gallopIntersect(s, t Set, dst Set) Set {
	lo := 0
	si := 0
	for ; si < len(s); si++ {
		x := s[si]
		// Exponential probe from lo.
		hi, step := lo, 1
		for hi < len(t) && t[hi] < x {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(t) {
			hi = len(t)
		}
		// Binary search in (lo-1, hi].
		k := lo + sort.Search(hi-lo, func(i int) bool { return t[lo+i] >= x })
		if k < len(t) && t[k] == x {
			dst = append(dst, x)
			lo = k + 1
		} else {
			lo = k
		}
		if lo >= len(t) {
			si++
			break
		}
	}
	kcount.AddGallop(si, si)
	return dst
}

// IntersectManyInto intersects one parent set px against every sibling
// in pys, appending each result into dsts[i][:0] (entries may be nil)
// and storing the grown buffer back into dsts[i]. It is semantically
// identical to len(pys) IntersectInto calls, but the parent is
// amortized across the block: px's bounds are computed once and each
// sibling is first trimmed to the window [px[0], px[last]] — the only
// region that can intersect — so sibling tails outside the parent's
// range are skipped without entering the merge loop. Charges one
// batch_calls tick and (m−1)×len(px) parent_words_saved.
func IntersectManyInto(px Set, pys []Set, dsts []Set) {
	m := len(pys)
	if m == 0 {
		return
	}
	if len(px) == 0 {
		for i := range dsts[:m] {
			dsts[i] = dsts[i][:0]
		}
		kcount.AddBatch(m, 0)
		return
	}
	lo, hi := px[0], px[len(px)-1]
	for i, py := range pys {
		dsts[i] = px.IntersectInto(trim(py, lo, hi), dsts[i])
	}
	kcount.AddBatch(m, len(px))
}

// DiffManyInto appends srcs[i] \ sub to dsts[i][:0] for every sibling.
// This is the diffset combine d(PXY) = d(PY) − d(PX) batched over a
// prefix block: the shared subtrahend sub = d(PX) is trimmed per
// sibling to the window that can actually cancel elements, and its
// re-streaming is charged to the kernel counters once per block
// instead of once per sibling.
func DiffManyInto(sub Set, srcs []Set, dsts []Set) {
	m := len(srcs)
	if m == 0 {
		return
	}
	for i, src := range srcs {
		t := sub
		if len(src) > 0 && len(t) > 0 {
			t = trim(t, src[0], src[len(src)-1])
		}
		dsts[i] = src.DiffInto(t, dsts[i])
	}
	kcount.AddBatch(m, len(sub))
}

// trim returns the sub-slice of s inside the closed window [lo, hi],
// located by binary search. Elements outside the window cannot survive
// an intersection with — or cancel an element of — a set bounded by
// [lo, hi].
func trim(s Set, lo, hi TID) Set {
	a, _ := slices.BinarySearch(s, lo)
	b, _ := slices.BinarySearchFunc(s[a:], hi, func(e, limit TID) int {
		if e <= limit {
			return -1
		}
		return 1
	})
	return s[a : a+b]
}

// Diff returns s \ t as a new set.
func (s Set) Diff(t Set) Set {
	return s.DiffInto(t, make(Set, 0, len(s)))
}

// DiffInto appends s \ t to dst[:0] and returns it.
func (s Set) DiffInto(t Set, dst Set) Set {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		a, b := s[i], t[j]
		switch {
		case a < b:
			dst = append(dst, a)
			i++
		case a > b:
			j++
		default:
			i++
			j++
		}
	}
	kcount.AddMergeSteps(i + j)
	return append(dst, s[i:]...)
}

// DiffSize returns |s \ t| without materializing the difference.
func (s Set) DiffSize(t Set) int {
	n, i, j := 0, 0, 0
	for i < len(s) && j < len(t) {
		a, b := s[i], t[j]
		switch {
		case a < b:
			n++
			i++
		case a > b:
			j++
		default:
			i++
			j++
		}
	}
	kcount.AddMergeSteps(i + j)
	return n + len(s) - i
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	dst := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		a, b := s[i], t[j]
		switch {
		case a < b:
			dst = append(dst, a)
			i++
		case a > b:
			dst = append(dst, b)
			j++
		default:
			dst = append(dst, a)
			i++
			j++
		}
	}
	kcount.AddMergeSteps(i + j)
	dst = append(dst, s[i:]...)
	return append(dst, t[j:]...)
}

// IntersectSize returns |s ∩ t| without materializing the intersection.
func (s Set) IntersectSize(t Set) int {
	if len(s) > len(t) {
		s, t = t, s
	}
	n, i, j := 0, 0, 0
	for i < len(s) && j < len(t) {
		a, b := s[i], t[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			n++
			i++
			j++
		}
	}
	kcount.AddMergeSteps(i + j)
	return n
}

// Complement returns {0..n-1} \ s: the tids absent from s in a universe of
// n transactions. This is how 1-itemset diffsets are seeded: d(x) is the
// complement of t(x) (paper Figure 2(a)).
func (s Set) Complement(n int) Set {
	dst := make(Set, 0, n-len(s))
	j := 0
	for tid := TID(0); tid < TID(n); tid++ {
		if j < len(s) && s[j] == tid {
			j++
			continue
		}
		dst = append(dst, tid)
	}
	return dst
}

// Words returns the memory footprint of s in 4-byte words. Used by the
// perf instrumentation to account NUMA traffic.
func (s Set) Words() int { return len(s) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
