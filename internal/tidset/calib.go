// Per-host kernel calibration. The kernels carry two speed knobs whose
// best values are hardware facts, not algorithm facts: the
// merge-vs-gallop length disparity (gallopRatio) and the tiled layout's
// sparse/dense per-tile crossover (tileSparseMax). `cmd/calibrate`
// measures both on the host and writes them to a small JSON file; the
// binaries load it from the FIM_CALIBRATION env var or a -calibration
// flag, falling back to the compiled-in defaults measured on the
// reference host. Every knob is a pure speed dial — any legal value
// yields identical sets — so a stale or missing calibration file can
// cost time but never correctness.

package tidset

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync/atomic"
)

// Compiled-in defaults. The gallop ratio comes from
// results/CALIBRATE_gallop.txt on the reference host. The tile
// crossover default is the memory-neutral point — a sparse tile of 16
// u8 offsets occupies exactly the 16 bytes of a dense bitmap — which
// favors footprint; hosts that favor speed load the measured crossover
// from calibrate -tiles (results/CALIBRATE_tiles.txt records it much
// lower on the reference host, where the 2-word AND beats the branchy
// u8 merge from small cardinalities on).
const (
	defaultGallopRatio   = 8
	defaultTileSparseMax = 16
)

// defaultNodesetDensityMin is the database fill density (average
// recoded transaction length over the frequent-item count) at or above
// which the nodeset (DiffNodeset) representation beat tiled tidsets on
// the reference host's correlated categorical sweep
// (results/CALIBRATE_nodeset.txt). Density is a proxy, not the cause:
// what nodeset monetizes is co-occurrence — rows sharing long prefixes
// compress into few PPC-tree nodes — and high fill on the real
// categorical datasets comes with exactly that structure, while
// uncorrelated data never reaches this fill at mining supports.
// Advisory: representations are chosen by the caller, never switched
// mid-run, so this knob only informs that choice.
const defaultNodesetDensityMin = 0.55

// The live knobs. Atomics because calibration may be applied by a main
// goroutine while a server is already mining on others; kernels load
// them once per call, never per element.
var (
	gallopRatioV       atomic.Int32
	tileSparseMaxV     atomic.Int32
	nodesetDensityMinV atomic.Uint64 // math.Float64bits
)

func init() {
	gallopRatioV.Store(defaultGallopRatio)
	tileSparseMaxV.Store(defaultTileSparseMax)
	nodesetDensityMinV.Store(math.Float64bits(defaultNodesetDensityMin))
}

// gallopRatio is the length disparity at which intersection switches
// from a linear merge to exponential search over the longer operand.
func gallopRatio() int { return int(gallopRatioV.Load()) }

// TileSparseMax is the per-tile cardinality at or below which a tile is
// stored (and intersected) as sorted u8 offsets rather than a 128-bit
// bitmap. Exported read-only for cmd/calibrate's sweep reporting.
func TileSparseMax() int { return int(tileSparseMaxV.Load()) }

// NodesetDensityMin is the measured density crossover above which the
// nodeset representation is expected to beat tiled tidsets on this
// host. Advisory — consulted when picking a representation, never read
// by the kernels.
func NodesetDensityMin() float64 { return math.Float64frombits(nodesetDensityMinV.Load()) }

// CalibrationEnv names the environment variable holding the path of a
// calibration file to load at startup.
const CalibrationEnv = "FIM_CALIBRATION"

// Calibration is the on-disk knob file. Zero-valued fields mean "keep
// the current setting", so a file may carry just the knobs the host
// sweep actually measured.
type Calibration struct {
	// GallopRatio: intersection switches to galloping when
	// len(long)/len(short) reaches this. Must be ≥ 2.
	GallopRatio int `json:"gallop_ratio,omitempty"`
	// TileBits records the tile width the sweep was run for. The width
	// is a compile-time property of the tiled layout (u8 in-tile
	// offsets and 2-word bitmaps assume 128), so a file asking for a
	// different width is rejected rather than silently misapplied.
	TileBits int `json:"tile_bits,omitempty"`
	// TileSparseMax: tiles with at most this many TIDs use the sparse
	// u8-offset form. Must be in [1, TileBits].
	TileSparseMax int `json:"tile_sparse_max,omitempty"`
	// NodesetDensityMin: the density crossover from calibrate -nodeset —
	// databases at least this dense favor the nodeset representation
	// over tiled tidsets on this host. Advisory; must be in (0, 1].
	NodesetDensityMin float64 `json:"nodeset_density_min,omitempty"`
}

// CurrentCalibration snapshots the live knob values.
func CurrentCalibration() Calibration {
	return Calibration{
		GallopRatio:       gallopRatio(),
		TileBits:          TileBits,
		TileSparseMax:     TileSparseMax(),
		NodesetDensityMin: NodesetDensityMin(),
	}
}

// ApplyCalibration validates c and installs its non-zero knobs,
// returning the previous settings so callers (tests, calibrate sweeps)
// can restore them.
func ApplyCalibration(c Calibration) (prev Calibration, err error) {
	prev = CurrentCalibration()
	if c.GallopRatio != 0 && c.GallopRatio < 2 {
		return prev, fmt.Errorf("tidset: calibration gallop_ratio %d out of range (want ≥ 2)", c.GallopRatio)
	}
	if c.TileBits != 0 && c.TileBits != TileBits {
		return prev, fmt.Errorf("tidset: calibration tile_bits %d does not match this build's tile width %d (the width is compile-time; re-run calibrate -tiles on this build)", c.TileBits, TileBits)
	}
	if c.TileSparseMax != 0 && (c.TileSparseMax < 1 || c.TileSparseMax > TileBits) {
		return prev, fmt.Errorf("tidset: calibration tile_sparse_max %d out of range [1, %d]", c.TileSparseMax, TileBits)
	}
	if c.NodesetDensityMin != 0 && (c.NodesetDensityMin < 0 || c.NodesetDensityMin > 1) {
		return prev, fmt.Errorf("tidset: calibration nodeset_density_min %v out of range (0, 1]", c.NodesetDensityMin)
	}
	if c.GallopRatio != 0 {
		gallopRatioV.Store(int32(c.GallopRatio))
	}
	if c.TileSparseMax != 0 {
		tileSparseMaxV.Store(int32(c.TileSparseMax))
	}
	if c.NodesetDensityMin != 0 {
		nodesetDensityMinV.Store(math.Float64bits(c.NodesetDensityMin))
	}
	return prev, nil
}

// LoadCalibrationFile reads, validates and applies a calibration file.
func LoadCalibrationFile(path string) (Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Calibration{}, fmt.Errorf("tidset: calibration: %w", err)
	}
	var c Calibration
	if err := json.Unmarshal(data, &c); err != nil {
		return Calibration{}, fmt.Errorf("tidset: calibration %s: %w", path, err)
	}
	if _, err := ApplyCalibration(c); err != nil {
		return Calibration{}, fmt.Errorf("%w (from %s)", err, path)
	}
	return c, nil
}

// LoadCalibrationEnv applies the file named by FIM_CALIBRATION if the
// variable is set, returning the path it loaded ("" when unset). Called
// by every binary's main before mining starts.
func LoadCalibrationEnv() (string, error) {
	path := os.Getenv(CalibrationEnv)
	if path == "" {
		return "", nil
	}
	if _, err := LoadCalibrationFile(path); err != nil {
		return path, err
	}
	return path, nil
}

// WriteCalibrationFile writes c as indented JSON — the output side of
// cmd/calibrate's sweep.
func WriteCalibrationFile(path string, c Calibration) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
