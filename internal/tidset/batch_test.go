package tidset

import (
	"math/rand"
	"testing"
)

// sparseSet draws a set with elements spread over a wide range, so the
// batched kernels' bounds-trimming actually cuts tails off.
func sparseSet(r *rand.Rand, n, span int) Set {
	tids := make([]TID, 0, n)
	for i := 0; i < n; i++ {
		tids = append(tids, TID(r.Intn(span)))
	}
	return New(tids...)
}

// TestIntersectManyIntoMatchesPairwise: the batched kernel is m
// pairwise IntersectInto calls, on random blocks of varied density and
// overlap, including empty parents, empty siblings, and nil dst
// buffers.
func TestIntersectManyIntoMatchesPairwise(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		px := sparseSet(r, r.Intn(80), 1+r.Intn(400))
		m := r.Intn(7)
		pys := make([]Set, m)
		dsts := make([]Set, m)
		for i := range pys {
			pys[i] = sparseSet(r, r.Intn(80), 1+r.Intn(400))
			if r.Intn(3) == 0 {
				dsts[i] = make(Set, 0, 8) // pre-owned buffer, like an arena node
			}
		}
		IntersectManyInto(px, pys, dsts)
		for i := range pys {
			if want := px.Intersect(pys[i]); !dsts[i].Equal(want) {
				t.Fatalf("trial %d child %d: got %v, want %v (px=%v py=%v)",
					trial, i, dsts[i], want, px, pys[i])
			}
		}
	}
}

// TestDiffManyIntoMatchesPairwise: batched subtraction of a shared
// subtrahend equals per-sibling DiffInto.
func TestDiffManyIntoMatchesPairwise(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 300; trial++ {
		sub := sparseSet(r, r.Intn(80), 1+r.Intn(400))
		m := r.Intn(7)
		srcs := make([]Set, m)
		dsts := make([]Set, m)
		for i := range srcs {
			srcs[i] = sparseSet(r, r.Intn(80), 1+r.Intn(400))
		}
		DiffManyInto(sub, srcs, dsts)
		for i := range srcs {
			if want := srcs[i].Diff(sub); !dsts[i].Equal(want) {
				t.Fatalf("trial %d child %d: got %v, want %v (sub=%v src=%v)",
					trial, i, dsts[i], want, sub, srcs[i])
			}
		}
	}
}

// byteSets decodes fuzz input into a set: each byte is one candidate
// tid, New dedups and sorts.
func byteSet(b []byte) Set {
	tids := make([]TID, len(b))
	for i, x := range b {
		tids[i] = TID(x)
	}
	return New(tids...)
}

func FuzzIntersectManyInto(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4}, []byte{9})
	f.Add([]byte{}, []byte{0, 255}, []byte{7, 7, 7})
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		px := byteSet(a)
		pys := []Set{byteSet(b), byteSet(c), nil}
		dsts := make([]Set, len(pys))
		IntersectManyInto(px, pys, dsts)
		for i, py := range pys {
			if want := px.Intersect(py); !dsts[i].Equal(want) {
				t.Fatalf("child %d: got %v, want %v", i, dsts[i], want)
			}
		}
	})
}

func FuzzDiffManyInto(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4}, []byte{9})
	f.Add([]byte{200, 1}, []byte{}, []byte{1, 2, 200})
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		sub := byteSet(a)
		srcs := []Set{byteSet(b), byteSet(c), nil}
		dsts := make([]Set, len(srcs))
		DiffManyInto(sub, srcs, dsts)
		for i, src := range srcs {
			if want := src.Diff(sub); !dsts[i].Equal(want) {
				t.Fatalf("child %d: got %v, want %v", i, dsts[i], want)
			}
		}
	})
}

// The batched-vs-pairwise intersection micro-benchmark pair: one
// parent against a block of 16 siblings. The Many form reads the
// parent's bounds once and trims each sibling before merging.

func benchBlock(b *testing.B) (Set, []Set, []Set) {
	b.Helper()
	r := rand.New(rand.NewSource(9))
	px := sparseSet(r, 4000, 1<<16)
	pys := make([]Set, 16)
	dsts := make([]Set, 16)
	for i := range pys {
		pys[i] = sparseSet(r, 4000, 1<<16)
		dsts[i] = make(Set, 0, 4000)
	}
	return px, pys, dsts
}

func BenchmarkIntersectManyInto(b *testing.B) {
	px, pys, dsts := benchBlock(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectManyInto(px, pys, dsts)
	}
}

func BenchmarkIntersectPairwiseBlock(b *testing.B) {
	px, pys, dsts := benchBlock(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pys {
			dsts[j] = px.IntersectInto(pys[j], dsts[j])
		}
	}
}

func BenchmarkDiffManyInto(b *testing.B) {
	sub, srcs, dsts := benchBlock(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiffManyInto(sub, srcs, dsts)
	}
}
