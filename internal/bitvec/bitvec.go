// Package bitvec implements fixed-length packed bit vectors, the "vertical
// bitvector" representation of §II-B of the paper. Each itemset carries a
// bitmask over all transactions; bit t is set iff transaction t contains
// the itemset. Support counting is a bitwise AND followed by a population
// count.
//
// For dense data the bitvector is substantially smaller than the tidset
// and the AND+popcount kernel is branch-free, which is why the paper
// evaluates it as a third representation. Its fixed length is also its
// weakness: candidates deep in the search keep paying for the full
// transaction universe even when their support is tiny — the memory
// pressure behind Apriori-bitvector's scalability collapse (§V-A).
package bitvec

import (
	"math/bits"

	"repro/internal/kcount"
	"repro/internal/tidset"
)

const wordBits = 64

// Vector is a packed bit vector over a fixed universe of N transactions.
// The universe size is carried by the vector's bit length; all binary
// operations require equal lengths.
type Vector struct {
	words []uint64
	n     int // number of valid bits
}

// New returns an all-zero vector over n transactions.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromTIDs builds a vector over n transactions with the given tids set.
func FromTIDs(n int, tids tidset.Set) *Vector {
	v := New(n)
	for _, t := range tids {
		v.Set(t)
	}
	return v
}

// Len returns the universe size (number of transactions).
func (v *Vector) Len() int { return v.n }

// Words returns the memory footprint in 8-byte words, for the perf
// instrumentation's traffic accounting.
func (v *Vector) Words() int { return len(v.words) }

// Set sets bit t. It panics if t is out of range, since that means the
// caller built the vector over the wrong universe.
func (v *Vector) Set(t tidset.TID) {
	if int(t) >= v.n {
		panic("bitvec: Set out of range")
	}
	v.words[t/wordBits] |= 1 << (t % wordBits)
}

// Clear clears bit t.
func (v *Vector) Clear(t tidset.TID) {
	if int(t) >= v.n {
		panic("bitvec: Clear out of range")
	}
	v.words[t/wordBits] &^= 1 << (t % wordBits)
}

// Test reports whether bit t is set.
func (v *Vector) Test(t tidset.TID) bool {
	if int(t) >= v.n {
		return false
	}
	return v.words[t/wordBits]&(1<<(t%wordBits)) != 0
}

// Count returns the number of set bits — the support of the itemset the
// vector represents.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	kcount.AddWordsPopcounted(len(v.words))
	return c
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	w := make([]uint64, len(v.words))
	copy(w, v.words)
	return &Vector{words: w, n: v.n}
}

// Equal reports whether v and u have the same length and bits.
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// And returns v AND u as a new vector.
func (v *Vector) And(u *Vector) *Vector {
	out := New(v.n)
	out.AndInto(v, u)
	return out
}

// AndInto stores a AND b into v (which must have the same length) and
// returns v, allowing per-worker scratch reuse in the mining hot loop.
func (v *Vector) AndInto(a, b *Vector) *Vector {
	checkLen(a, b)
	checkLen(v, a)
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
	kcount.AddWordsANDed(len(v.words))
	return v
}

// AndCount returns popcount(v AND u) without materializing the result.
func (v *Vector) AndCount(u *Vector) int {
	checkLen(v, u)
	c := 0
	for i := range v.words {
		c += bits.OnesCount64(v.words[i] & u.words[i])
	}
	kcount.AddWordsANDed(len(v.words))
	kcount.AddWordsPopcounted(len(v.words))
	return c
}

// andTileWords is the strip width of AndManyInto in 64-bit words:
// 512 words = 4 KiB of parent payload per tile, small enough that a
// tile stays cache-resident while it is ANDed against every child of a
// prefix block.
const andTileWords = 512

// stripSparseMax is the sparse/dense switch of the strip classifier: a
// parent strip with at most this many nonzero words takes the sparse
// path, which ANDs only those word positions for every child (the
// positions fit a stack array, so classification allocates nothing).
// Deep in the search the resident parent's support collapses while its
// vector keeps paying for the full universe — exactly the regime where
// most strips are all-zero or nearly so.
const stripSparseMax = 32

// AndManyInto stores px AND pys[j] into outs[j] and the popcount of
// that result into sups[j], for every j. All vectors must share px's
// length; len(outs) and len(sups) must equal len(pys). The loop is
// strip-mined over word tiles: a tile of the shared parent is loaded
// once and ANDed+popcounted against the matching tile of every child
// before eviction, so the parent streams from memory once per block
// instead of once per child — and the popcount is fused into the same
// pass, where the pairwise AndInto+Count path takes two.
//
// Each parent strip is classified before the children stream, the same
// sparse/dense tile dispatch as the tiled tidset layout: an all-zero
// strip just clears every child's strip (tiles_skipped), a strip with
// ≤ stripSparseMax nonzero words ANDs only those positions
// (tiles_sparse), and only genuinely dense strips stream word-for-word
// (tiles_dense). The words_anded counter records the words actually
// touched, so the saving is visible in the evidence trail.
func AndManyInto(px *Vector, pys, outs []*Vector, sups []int) {
	m := len(pys)
	if m == 0 {
		return
	}
	for j := range pys {
		checkLen(px, pys[j])
		checkLen(px, outs[j])
		sups[j] = 0
	}
	nw := len(px.words)
	tiles, skipped, sparse, dense := 0, 0, 0, 0
	wordsANDed := 0
	var nz [stripSparseMax]int32
	for lo := 0; lo < nw; lo += andTileWords {
		hi := min(lo+andTileWords, nw)
		pw := px.words[lo:hi]
		tiles++

		// Classify the parent strip: positions of its nonzero words,
		// bailing to the dense path past stripSparseMax.
		nnz := 0
		for k, p := range pw {
			if p != 0 {
				if nnz == stripSparseMax {
					nnz = -1
					break
				}
				nz[nnz] = int32(k)
				nnz++
			}
		}
		switch {
		case nnz == 0:
			// Nothing of the parent survives here: every child's out
			// strip is zero, no AND, no popcount. (Out strips must
			// still be written — recycled vectors carry stale bits.)
			skipped++
			for j := range pys {
				clear(outs[j].words[lo:hi])
			}
		case nnz > 0:
			sparse++
			wordsANDed += nnz * m
			for j := range pys {
				yw := pys[j].words[lo:hi]
				ow := outs[j].words[lo:hi]
				clear(ow)
				c := 0
				for _, k := range nz[:nnz] {
					w := pw[k] & yw[k]
					ow[k] = w
					c += bits.OnesCount64(w)
				}
				sups[j] += c
			}
		default:
			dense++
			wordsANDed += len(pw) * m
			for j := range pys {
				yw := pys[j].words[lo:hi]
				ow := outs[j].words[lo:hi]
				c := 0
				for k, p := range pw {
					w := p & yw[k]
					ow[k] = w
					c += bits.OnesCount64(w)
				}
				sups[j] += c
			}
		}
	}
	kcount.AddWordsANDed(wordsANDed)
	kcount.AddWordsPopcounted(wordsANDed)
	kcount.AddTiles(tiles)
	kcount.AddStripKinds(skipped, sparse, dense)
	kcount.AddBatch(m, nw)
}

// AndNot returns v AND NOT u as a new vector (set difference).
func (v *Vector) AndNot(u *Vector) *Vector {
	out := New(v.n)
	out.AndNotInto(v, u)
	return out
}

// AndNotInto stores a AND NOT b into v and returns v.
func (v *Vector) AndNotInto(a, b *Vector) *Vector {
	checkLen(a, b)
	checkLen(v, a)
	for i := range v.words {
		v.words[i] = a.words[i] &^ b.words[i]
	}
	kcount.AddWordsANDed(len(v.words))
	return v
}

// Or returns v OR u as a new vector.
func (v *Vector) Or(u *Vector) *Vector {
	checkLen(v, u)
	out := New(v.n)
	for i := range out.words {
		out.words[i] = v.words[i] | u.words[i]
	}
	return out
}

// Not returns the complement of v within its universe. Bits beyond Len()
// in the last word stay zero, preserving Count correctness.
func (v *Vector) Not() *Vector {
	out := New(v.n)
	for i := range out.words {
		out.words[i] = ^v.words[i]
	}
	out.maskTail()
	return out
}

// maskTail zeroes the padding bits of the final word.
func (v *Vector) maskTail() {
	if r := v.n % wordBits; r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << r) - 1
	}
}

// TIDs returns the set bits as a tidset, ascending.
func (v *Vector) TIDs() tidset.Set {
	out := make(tidset.Set, 0, v.Count())
	for wi, w := range v.words {
		base := tidset.TID(wi * wordBits)
		for w != 0 {
			out = append(out, base+tidset.TID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}

// Range calls f for each set bit in ascending order; f returning false
// stops the iteration early.
func (v *Vector) Range(f func(tidset.TID) bool) {
	for wi, w := range v.words {
		base := tidset.TID(wi * wordBits)
		for w != 0 {
			if !f(base + tidset.TID(bits.TrailingZeros64(w))) {
				return
			}
			w &= w - 1
		}
	}
}

func checkLen(a, b *Vector) {
	if a.n != b.n {
		panic("bitvec: length mismatch")
	}
}
