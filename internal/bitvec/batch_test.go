package bitvec

import (
	"math/rand"
	"testing"
)

// TestAndManyIntoMatchesPairwise: the strip-mined batch kernel equals
// per-child AndInto+Count across universe sizes that exercise zero,
// one, and multiple tiles, with and without a ragged final word.
func TestAndManyIntoMatchesPairwise(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	sizes := []int{0, 1, 63, 64, 65, 1000, andTileWords * 64, andTileWords*64 + 7, 3*andTileWords*64 + 130}
	for _, n := range sizes {
		px := FromTIDs(n, randomTIDs(r, n))
		m := 1 + r.Intn(5)
		pys := make([]*Vector, m)
		outs := make([]*Vector, m)
		sups := make([]int, m)
		for j := range pys {
			pys[j] = FromTIDs(n, randomTIDs(r, n))
			outs[j] = New(n)
			sups[j] = -1 // must be overwritten, not accumulated into
		}
		AndManyInto(px, pys, outs, sups)
		for j := range pys {
			want := px.And(pys[j])
			if !outs[j].Equal(want) {
				t.Fatalf("n=%d child %d: AND payload mismatch", n, j)
			}
			if sups[j] != want.Count() {
				t.Fatalf("n=%d child %d: sup %d, want %d", n, j, sups[j], want.Count())
			}
		}
	}
}

// TestAndManyIntoEmptyBlock: a zero-length block is a no-op.
func TestAndManyIntoEmptyBlock(t *testing.T) {
	px := New(100)
	AndManyInto(px, nil, nil, nil)
}

// TestAndManyIntoLengthMismatch: the batch kernel keeps AndInto's
// universe-length panic.
func TestAndManyIntoLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	AndManyInto(New(100), []*Vector{New(99)}, []*Vector{New(100)}, []int{0})
}

// The batched-vs-pairwise AND micro-benchmark pair over a block of 16
// children. The Many form streams each parent tile once per block and
// fuses the popcount; the pairwise baseline re-reads the parent per
// child and takes a second pass for Count.

func benchVecBlock(b *testing.B) (*Vector, []*Vector, []*Vector, []int) {
	b.Helper()
	r := rand.New(rand.NewSource(5))
	n := 1 << 16
	px := FromTIDs(n, randomTIDs(r, n))
	pys := make([]*Vector, 16)
	outs := make([]*Vector, 16)
	for j := range pys {
		pys[j] = FromTIDs(n, randomTIDs(r, n))
		outs[j] = New(n)
	}
	return px, pys, outs, make([]int, 16)
}

func BenchmarkAndManyInto(b *testing.B) {
	px, pys, outs, sups := benchVecBlock(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndManyInto(px, pys, outs, sups)
	}
}

func BenchmarkAndPairwiseBlock(b *testing.B) {
	px, pys, outs, sups := benchVecBlock(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pys {
			outs[j].AndInto(px, pys[j])
			sups[j] = outs[j].Count()
		}
	}
}
