package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tidset"
)

func TestSetTestClearCount(t *testing.T) {
	v := New(130) // crosses two word boundaries
	tids := []tidset.TID{0, 1, 63, 64, 65, 127, 128, 129}
	for _, x := range tids {
		v.Set(x)
	}
	if got := v.Count(); got != len(tids) {
		t.Fatalf("Count = %d, want %d", got, len(tids))
	}
	for _, x := range tids {
		if !v.Test(x) {
			t.Errorf("Test(%d) = false", x)
		}
	}
	if v.Test(2) || v.Test(66) {
		t.Error("Test reports unset bits")
	}
	v.Clear(64)
	if v.Test(64) || v.Count() != len(tids)-1 {
		t.Error("Clear failed")
	}
	if v.Test(500) {
		t.Error("Test out of range should be false")
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set out of range did not panic")
		}
	}()
	New(10).Set(10)
}

func TestZeroLength(t *testing.T) {
	v := New(0)
	if v.Count() != 0 || v.Len() != 0 {
		t.Error("zero-length vector misbehaves")
	}
	if got := v.Not().Count(); got != 0 {
		t.Errorf("Not of empty = %d bits", got)
	}
}

func TestAndOrAndNot(t *testing.T) {
	a := FromTIDs(100, tidset.New(1, 2, 3, 70))
	b := FromTIDs(100, tidset.New(2, 3, 4, 99))
	if got := a.And(b).TIDs(); !got.Equal(tidset.New(2, 3)) {
		t.Errorf("And = %v", got)
	}
	if got := a.AndCount(b); got != 2 {
		t.Errorf("AndCount = %d", got)
	}
	if got := a.Or(b).TIDs(); !got.Equal(tidset.New(1, 2, 3, 4, 70, 99)) {
		t.Errorf("Or = %v", got)
	}
	if got := a.AndNot(b).TIDs(); !got.Equal(tidset.New(1, 70)) {
		t.Errorf("AndNot = %v", got)
	}
}

func TestNotMasksTail(t *testing.T) {
	v := FromTIDs(70, tidset.New(0, 69))
	n := v.Not()
	if got := n.Count(); got != 68 {
		t.Errorf("Not.Count = %d, want 68", got)
	}
	if n.Test(0) || n.Test(69) {
		t.Error("Not kept original bits")
	}
	// Complement again must return the original.
	if !n.Not().Equal(v) {
		t.Error("double Not is not identity")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("And with mismatched lengths did not panic")
		}
	}()
	New(64).And(New(65))
}

func TestTIDsRoundTrip(t *testing.T) {
	s := tidset.New(3, 64, 65, 190)
	v := FromTIDs(200, s)
	if got := v.TIDs(); !got.Equal(s) {
		t.Errorf("TIDs = %v, want %v", got, s)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	v := FromTIDs(100, tidset.New(1, 50, 99))
	var seen []tidset.TID
	v.Range(func(x tidset.TID) bool {
		seen = append(seen, x)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 50 {
		t.Errorf("Range early stop saw %v", seen)
	}
}

func TestIntoFormsMatchAllocating(t *testing.T) {
	a := FromTIDs(256, tidset.New(0, 100, 200, 255))
	b := FromTIDs(256, tidset.New(100, 255))
	scratch := New(256)
	if !scratch.AndInto(a, b).Equal(a.And(b)) {
		t.Error("AndInto != And")
	}
	if !scratch.AndNotInto(a, b).Equal(a.AndNot(b)) {
		t.Error("AndNotInto != AndNot")
	}
}

func randomTIDs(r *rand.Rand, n int) tidset.Set {
	var s tidset.Set
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s = append(s, tidset.TID(i))
		}
	}
	return s
}

// TestQuickAgreesWithTidset: bitvector ops must agree with tidset ops on
// random universes — the two representations are interchangeable views.
func TestQuickAgreesWithTidset(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	law := func(sa, sb int64, szRaw uint8) bool {
		n := int(szRaw)%150 + 1
		ra, rb := rand.New(rand.NewSource(sa)), rand.New(rand.NewSource(sb))
		ta, tb := randomTIDs(ra, n), randomTIDs(rb, n)
		va, vb := FromTIDs(n, ta), FromTIDs(n, tb)
		if !va.And(vb).TIDs().Equal(ta.Intersect(tb)) {
			return false
		}
		if !va.AndNot(vb).TIDs().Equal(ta.Diff(tb)) {
			return false
		}
		if !va.Or(vb).TIDs().Equal(ta.Union(tb)) {
			return false
		}
		if va.AndCount(vb) != ta.IntersectSize(tb) {
			return false
		}
		return va.Not().TIDs().Equal(ta.Complement(n))
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("bitvec/tidset agreement: %v", err)
	}
}

func BenchmarkAndCount(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	n := 1 << 16
	x := FromTIDs(n, randomTIDs(r, n))
	y := FromTIDs(n, randomTIDs(r, n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.AndCount(y)
	}
}

func BenchmarkAndInto(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	n := 1 << 16
	x := FromTIDs(n, randomTIDs(r, n))
	y := FromTIDs(n, randomTIDs(r, n))
	dst := New(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.AndInto(x, y)
	}
}

func TestCloneAndEqual(t *testing.T) {
	v := FromTIDs(70, tidset.New(1, 69))
	c := v.Clone()
	if !c.Equal(v) {
		t.Error("clone not equal")
	}
	c.Set(5)
	if c.Equal(v) {
		t.Error("clone shares storage")
	}
	if v.Equal(New(71)) {
		t.Error("different lengths reported equal")
	}
}

func TestClearOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Clear out of range did not panic")
		}
	}()
	New(8).Clear(8)
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestRangeFullIteration(t *testing.T) {
	s := tidset.New(0, 63, 64, 127)
	v := FromTIDs(128, s)
	var got tidset.Set
	v.Range(func(x tidset.TID) bool { got = append(got, x); return true })
	if !got.Equal(s) {
		t.Errorf("Range visited %v", got)
	}
}

func TestAndCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AndCount mismatch did not panic")
		}
	}()
	New(8).AndCount(New(9))
}
