// Package perf instruments mining runs. A Collector records, for every
// parallel loop a miner executes (a "phase"), the cost of each iteration
// ("task"): bytes of compute work, bytes read from parent candidate data,
// and bytes allocated for results. The recorded Trace is both a
// performance report (memory-footprint tables, candidate counts) and the
// input to the NUMA machine simulator (package machine), which replays
// the task stream under arbitrary thread counts.
//
// A nil *Collector is valid everywhere and records nothing, so the
// miners' hot loops pay a single nil check when instrumentation is off.
package perf

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sched"
)

// Phase is one parallel loop: n tasks run under a schedule. The cost
// slices are indexed by iteration. Shared marks phases whose parent data
// is globally shared across the machine (Apriori's candidate levels), as
// opposed to worker-private (Eclat's per-class recursion); the machine
// model charges remote-access penalties only to shared reads.
type Phase struct {
	Name     string
	Schedule sched.Schedule
	Shared   bool
	// Serial is the serial (single-threaded) work in bytes surrounding
	// the loop: candidate generation, pruning, commit. It bounds
	// scalability Amdahl-style.
	Serial int64
	// UniqueParent is the payload footprint, in bytes, of the parent
	// pool a single task's reads draw from. For Apriori this is the
	// whole previous level (breadth-first: any task reads any parent —
	// "Apriori must store all candidates for each generation"); for an
	// Eclat subtree task it is just its own equivalence class. The
	// machine model compares it against cache capacity to decide how
	// much of the Remote traffic actually crosses the interconnect: a
	// small working set stays cache-resident after first touch, one far
	// beyond capacity misses on every combine.
	UniqueParent int64
	// Work, Remote, Alloc hold per-task byte counts: total bytes
	// touched, bytes read from parent payloads, bytes allocated.
	Work   []int64
	Remote []int64
	Alloc  []int64
}

// Tasks returns the number of tasks in the phase.
func (p *Phase) Tasks() int {
	if p == nil {
		return 0
	}
	return len(p.Work)
}

// Add accumulates cost onto task i. It is safe for concurrent use by
// distinct i and by repeated calls for the same i from its owning worker.
func (p *Phase) Add(i int, work, remote, alloc int64) {
	if p == nil {
		return
	}
	atomic.AddInt64(&p.Work[i], work)
	atomic.AddInt64(&p.Remote[i], remote)
	atomic.AddInt64(&p.Alloc[i], alloc)
}

// AddSerial accumulates serial work around the loop.
func (p *Phase) AddSerial(bytes int64) {
	if p == nil {
		return
	}
	atomic.AddInt64(&p.Serial, bytes)
}

// TotalWork sums per-task work.
func (p *Phase) TotalWork() int64 { return sum(p.Work) }

// TotalRemote sums per-task remote bytes.
func (p *Phase) TotalRemote() int64 { return sum(p.Remote) }

// TotalAlloc sums per-task allocated bytes.
func (p *Phase) TotalAlloc() int64 { return sum(p.Alloc) }

func sum(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

// Collector accumulates the phases of one mining run.
type Collector struct {
	Phases []*Phase
}

// NewPhase appends a phase of n tasks and returns it. On a nil collector
// it returns nil, which every Phase method tolerates.
func (c *Collector) NewPhase(name string, s sched.Schedule, shared bool, n int) *Phase {
	if c == nil {
		return nil
	}
	p := &Phase{
		Name:     name,
		Schedule: s,
		Shared:   shared,
		Work:     make([]int64, n),
		Remote:   make([]int64, n),
		Alloc:    make([]int64, n),
	}
	c.Phases = append(c.Phases, p)
	return p
}

// TotalWork sums work over all phases, serial included.
func (c *Collector) TotalWork() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for _, p := range c.Phases {
		t += p.TotalWork() + p.Serial
	}
	return t
}

// TotalRemote sums remote bytes over all phases.
func (c *Collector) TotalRemote() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for _, p := range c.Phases {
		t += p.TotalRemote()
	}
	return t
}

// TotalAlloc sums allocated bytes over all phases.
func (c *Collector) TotalAlloc() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for _, p := range c.Phases {
		t += p.TotalAlloc()
	}
	return t
}

// Summary formats a one-line-per-phase report.
func (c *Collector) Summary() string {
	if c == nil {
		return "(no instrumentation)"
	}
	out := ""
	for _, p := range c.Phases {
		out += fmt.Sprintf("%-24s sched=%-10v shared=%-5v tasks=%-8d work=%-12d remote=%-12d alloc=%d\n",
			p.Name, p.Schedule, p.Shared, p.Tasks(), p.TotalWork(), p.TotalRemote(), p.TotalAlloc())
	}
	return out
}
