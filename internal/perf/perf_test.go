package perf

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/sched"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	p := c.NewPhase("x", sched.Schedule{}, true, 10)
	if p != nil {
		t.Fatal("nil collector returned a phase")
	}
	// Every method must tolerate the nil phase.
	p.Add(3, 1, 2, 3)
	p.AddSerial(5)
	if p.Tasks() != 0 {
		t.Error("nil phase has tasks")
	}
	if c.TotalWork() != 0 || c.TotalRemote() != 0 || c.TotalAlloc() != 0 {
		t.Error("nil collector has totals")
	}
	if c.Summary() == "" {
		t.Error("nil collector summary empty")
	}
}

func TestPhaseAccumulation(t *testing.T) {
	c := &Collector{}
	p := c.NewPhase("gen2", sched.Schedule{Policy: sched.Static}, true, 3)
	p.Add(0, 10, 4, 2)
	p.Add(1, 20, 8, 4)
	p.Add(0, 5, 1, 1) // same task twice accumulates
	p.AddSerial(7)
	if p.TotalWork() != 35 || p.TotalRemote() != 13 || p.TotalAlloc() != 7 {
		t.Errorf("totals = %d/%d/%d", p.TotalWork(), p.TotalRemote(), p.TotalAlloc())
	}
	if p.Serial != 7 {
		t.Errorf("serial = %d", p.Serial)
	}
	if p.Work[0] != 15 || p.Work[2] != 0 {
		t.Errorf("per-task work = %v", p.Work)
	}
	if c.TotalWork() != 42 { // includes serial
		t.Errorf("collector total = %d", c.TotalWork())
	}
}

func TestConcurrentAdd(t *testing.T) {
	c := &Collector{}
	p := c.NewPhase("par", sched.Schedule{}, false, 100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.Add(i, 1, 1, 1)
			}
		}()
	}
	wg.Wait()
	if p.TotalWork() != 800 {
		t.Errorf("concurrent total = %d", p.TotalWork())
	}
}

func TestSummaryFormat(t *testing.T) {
	c := &Collector{}
	p := c.NewPhase("apriori/gen2", sched.Schedule{Policy: sched.Dynamic, Chunk: 1}, true, 2)
	p.Add(0, 100, 50, 25)
	s := c.Summary()
	for _, want := range []string{"apriori/gen2", "dynamic,1", "tasks=2", "work=100"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestMultiplePhases(t *testing.T) {
	c := &Collector{}
	a := c.NewPhase("a", sched.Schedule{}, true, 1)
	b := c.NewPhase("b", sched.Schedule{}, false, 1)
	a.Add(0, 5, 2, 1)
	b.Add(0, 7, 3, 2)
	if len(c.Phases) != 2 {
		t.Fatalf("phases = %d", len(c.Phases))
	}
	if c.TotalWork() != 12 || c.TotalRemote() != 5 || c.TotalAlloc() != 3 {
		t.Errorf("totals = %d/%d/%d", c.TotalWork(), c.TotalRemote(), c.TotalAlloc())
	}
}
