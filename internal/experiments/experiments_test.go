package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/vertical"
)

// tinyConfig keeps experiment tests fast: one small dataset, tiny scale.
func tinyConfig(t *testing.T) Config {
	t.Helper()
	chess, err := datasets.Get("chess")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Scale:    0.05,
		Threads:  []int{1, 16, 256},
		Datasets: []datasets.Def{chess},
	}
}

func TestScalabilityTableShape(t *testing.T) {
	cfg := tinyConfig(t)
	tab := Scalability(core.Apriori, vertical.Diffset, cfg)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	row := tab.Rows[0]
	if row.Dataset != "chess" || len(row.Cells) != 3 {
		t.Fatalf("row = %+v", row)
	}
	if row.Itemsets == 0 {
		t.Error("no itemsets mined")
	}
	if row.RealSeconds <= 0 {
		t.Error("no wall clock recorded")
	}
	// Speedup at 1 thread is 1; more threads never slower than 1.
	if row.Cells[0].Speedup < 0.99 || row.Cells[0].Speedup > 1.01 {
		t.Errorf("base speedup = %v", row.Cells[0].Speedup)
	}
	for _, c := range row.Cells[1:] {
		if c.Speedup < 1 {
			t.Errorf("%d threads slower than serial: %v", c.Threads, c.Speedup)
		}
		if c.SimSeconds <= 0 {
			t.Errorf("%d threads: non-positive time", c.Threads)
		}
	}
}

func TestPaperTablesCoverAllFour(t *testing.T) {
	cfg := tinyConfig(t)
	tabs := PaperTables(cfg)
	if len(tabs) != 4 {
		t.Fatalf("tables = %d", len(tabs))
	}
	wantIDs := []string{"table2+fig5", "table3+fig6", "table6+fig7", "table5+fig8"}
	for i, tab := range tabs {
		if tab.ID != wantIDs[i] {
			t.Errorf("table %d id = %q", i, tab.ID)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("table %s empty", tab.ID)
		}
	}
	// The paper's algorithm/representation assignments.
	if tabs[0].Algorithm != core.Apriori || tabs[0].Representation != vertical.Diffset {
		t.Error("table2 config wrong")
	}
	if tabs[1].Algorithm != core.Eclat || tabs[1].Representation != vertical.Tidset {
		t.Error("table3 config wrong")
	}
}

func TestAprioriFlat(t *testing.T) {
	tabs := AprioriFlat(tinyConfig(t))
	if len(tabs) != 2 {
		t.Fatalf("tables = %d", len(tabs))
	}
	if tabs[0].Representation != vertical.Tidset || tabs[1].Representation != vertical.Bitvector {
		t.Error("wrong representations")
	}
}

func TestTableI(t *testing.T) {
	rows := TableI()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Trans != r.PaperTrans {
			t.Errorf("%s: %d transactions, paper %d", r.Name, r.Trans, r.PaperTrans)
		}
		if r.AvgLen <= 0 || r.Items <= 0 {
			t.Errorf("%s: degenerate stats %+v", r.Name, r)
		}
	}
	out := FormatTableI(rows)
	if !strings.Contains(out, "chess") || !strings.Contains(out, "TABLE I") {
		t.Errorf("FormatTableI output:\n%s", out)
	}
}

func TestMemoryFootprintOrdering(t *testing.T) {
	rows := MemoryFootprint(tinyConfig(t))
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	for _, k := range vertical.Kinds() {
		if r.AllocBytes[k] == 0 || r.RemoteBytes[k] == 0 {
			t.Errorf("%v: zero footprint", k)
		}
	}
	// Bitvector is the most compact on tiny chess; diffset below tidset.
	if r.AllocBytes[vertical.Diffset] >= r.AllocBytes[vertical.Tidset] {
		t.Errorf("diffset alloc %d not below tidset %d",
			r.AllocBytes[vertical.Diffset], r.AllocBytes[vertical.Tidset])
	}
	if out := FormatFootprint(rows); !strings.Contains(out, "chess") {
		t.Errorf("FormatFootprint:\n%s", out)
	}
}

func TestScheduleAblation(t *testing.T) {
	rows := ScheduleAblation(tinyConfig(t))
	if len(rows) != 2 { // apriori + eclat for one dataset
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, name := range []string{"static", "dynamic,1", "guided"} {
			if r.Seconds[name] <= 0 {
				t.Errorf("%v %s: non-positive time", r.Algorithm, name)
			}
		}
	}
	if out := FormatSchedule(rows); !strings.Contains(out, "dynamic") {
		t.Errorf("FormatSchedule:\n%s", out)
	}
}

func TestChunkAblation(t *testing.T) {
	rows := ChunkAblation(tinyConfig(t))
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Chunk 1 must not be worse than chunk 16 (the paper's "as small as
	// possible" choice).
	if rows[0].Seconds[1] > rows[0].Seconds[16] {
		t.Errorf("chunk 1 (%v) slower than chunk 16 (%v)", rows[0].Seconds[1], rows[0].Seconds[16])
	}
	if out := FormatChunk(rows); !strings.Contains(out, "chunk=1") {
		t.Errorf("FormatChunk:\n%s", out)
	}
}

func TestDepthAblation(t *testing.T) {
	rows := DepthAblation(tinyConfig(t))
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	for _, depth := range []int{1, 2, 3, 4} {
		if r.Speedup[depth] < 1 {
			t.Errorf("depth %d speedup %v below 1", depth, r.Speedup[depth])
		}
	}
	// Deeper flattening never hurts on dense data.
	if r.Speedup[4] < r.Speedup[1] {
		t.Errorf("depth 4 (%v) worse than depth 1 (%v)", r.Speedup[4], r.Speedup[1])
	}
	if out := FormatDepth(rows); !strings.Contains(out, "depth=4") {
		t.Errorf("FormatDepth:\n%s", out)
	}
}

func TestSparseLimit(t *testing.T) {
	t40, err := datasets.Get("T40I10D100K")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scale: 0.02, Threads: []int{1, 256}, Datasets: []datasets.Def{t40}}
	rows := SparseLimit(cfg)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].FrequentItems == 0 {
		t.Skip("too small at test scale")
	}
	if out := FormatSparse(rows); !strings.Contains(out, "T40I10D100K") {
		t.Errorf("FormatSparse:\n%s", out)
	}
}

func TestTableFormat(t *testing.T) {
	tab := Scalability(core.Eclat, vertical.Diffset, tinyConfig(t))
	tab.ID, tab.Title = "test", "Test table"
	out := tab.Format()
	for _, want := range []string{"TEST", "chess@", "speedup", "256"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.defaults()
	if c.Scale != DefaultScale || len(c.Threads) != len(DefaultThreads) || c.Machine.CoresPerBlade != 16 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestBaselines(t *testing.T) {
	rows := Baselines(tinyConfig(t))
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.VerticalTidset <= 0 || r.VerticalDiffset <= 0 || r.HorizontalScan <= 0 || r.PointerTrie <= 0 {
		t.Errorf("non-positive timings: %+v", r)
	}
	if r.AtomicRemote == 0 {
		t.Error("atomic counting recorded no shared-counter traffic")
	}
	if out := FormatBaselines(rows); !strings.Contains(out, "chess") {
		t.Errorf("FormatBaselines:\n%s", out)
	}
}

func TestHTAblation(t *testing.T) {
	rows := HTAblation(tinyConfig(t))
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	// HT must never help by more than the SMT gain, nor hurt (the model
	// idles the sibling contexts when sharing would be slower).
	gain := r.NoHT / r.WithHT
	if gain < 0.999 || gain > 1.10 {
		t.Errorf("HT gain = %v", gain)
	}
	if out := FormatHT(rows); !strings.Contains(out, "noHT") {
		t.Errorf("FormatHT:\n%s", out)
	}
}

func TestOrderAblation(t *testing.T) {
	rows := OrderAblation(tinyConfig(t))
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.WorkByCode == 0 || r.WorkByFrequency == 0 {
		t.Errorf("zero work recorded: %+v", r)
	}
	// Ascending-frequency order reduces total combine work on dense data.
	if r.WorkByFrequency >= r.WorkByCode {
		t.Errorf("frequency order did not reduce work: %d vs %d", r.WorkByFrequency, r.WorkByCode)
	}
	if out := FormatOrder(rows); !strings.Contains(out, "spdup(freq)") {
		t.Errorf("FormatOrder:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := Scalability(core.Eclat, vertical.Diffset, tinyConfig(t))
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "dataset,support,t1,t16,t256" {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "chess,") {
		t.Errorf("csv row = %q", lines[1])
	}
}

func TestLazyAblation(t *testing.T) {
	rows := LazyAblation(tinyConfig(t))
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.LazyAlloc >= r.EagerAlloc {
		t.Errorf("lazy alloc %d not below eager %d", r.LazyAlloc, r.EagerAlloc)
	}
	if out := FormatLazy(rows); !strings.Contains(out, "saved") {
		t.Errorf("FormatLazy:\n%s", out)
	}
}
