// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) plus the ablations called out in DESIGN.md. Each
// experiment mines a synthetic dataset once per configuration with
// instrumentation on, then replays the recorded trace on the simulated
// Blacklight machine across the paper's thread counts (16…256, plus 1 as
// the speedup base).
//
// The output types carry both the simulated runtime tables (the paper's
// Tables II–V) and the speedup series (Figures 5–8).
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/apriori"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/datasets"
	"repro/internal/eclat"
	"repro/internal/horizontal"
	"repro/internal/machine"
	"repro/internal/perf"
	"repro/internal/ptrie"
	"repro/internal/sched"
	"repro/internal/vertical"
)

// DefaultThreads is the paper's thread axis with a 1-thread speedup base.
var DefaultThreads = []int{1, 16, 32, 64, 128, 256}

// DefaultScale multiplies each dataset's own ExperimentScale (chess and
// mushroom mine at full published size; the large datasets at a fraction
// so the whole matrix finishes in minutes on a laptop-class host — the
// scalability shapes are scale-invariant, documented in EXPERIMENTS.md).
const DefaultScale = 1.0

// Config parameterizes an experiment run.
type Config struct {
	Scale   float64
	Threads []int
	Machine machine.Config
	// Datasets restricts the dataset list (nil = the experiment's
	// default).
	Datasets []datasets.Def
}

// Defaults fills zero fields.
func (c Config) defaults() Config {
	if c.Scale == 0 {
		c.Scale = DefaultScale
	}
	if len(c.Threads) == 0 {
		c.Threads = DefaultThreads
	}
	if c.Machine.CoresPerBlade == 0 {
		c.Machine = machine.Blacklight()
	}
	return c
}

// Cell is one (thread count) entry of a scalability row.
type Cell struct {
	Threads        int
	SimSeconds     float64
	Speedup        float64
	BandwidthBound bool
}

// Row is one dataset's scalability series.
type Row struct {
	Dataset  string
	Support  float64
	Itemsets int
	// RealSeconds is the measured wall-clock of the instrumented serial
	// mining run on this host (not the simulated machine).
	RealSeconds float64
	Cells       []Cell
}

// Table is one paper table/figure pair.
type Table struct {
	ID             string // e.g. "table2+fig5"
	Title          string
	Algorithm      core.Algorithm
	Representation vertical.Kind
	Machine        machine.Config
	Rows           []Row
}

// mustMine unwraps a miner's (result, error) pair. The experiment
// harness never sets a run-control budget or cancellable context, so a
// mining error here is a bug, not an operating condition.
func mustMine(res *core.Result, err error) *core.Result {
	if err != nil {
		panic(fmt.Sprintf("experiments: mining failed: %v", err))
	}
	return res
}

// mineTraced runs one instrumented mining pass and returns the result,
// trace, and real wall-clock.
func mineTraced(rec *dataset.Recoded, minSup int, algo core.Algorithm, rep vertical.Kind) (*core.Result, *perf.Collector, float64) {
	col := &perf.Collector{}
	opt := core.DefaultOptions(rep, 1)
	opt.Collector = col
	start := time.Now()
	var res *core.Result
	switch algo {
	case core.Apriori:
		res = mustMine(apriori.Mine(rec, minSup, opt))
	case core.Eclat:
		res = mustMine(eclat.Mine(rec, minSup, opt))
	default:
		panic(fmt.Sprintf("experiments: unsupported algorithm %v", algo))
	}
	return res, col, time.Since(start).Seconds()
}

// Scalability builds one runtime+speedup table for an algorithm and
// representation over the given datasets — the generator for Tables II–V
// and Figures 5–8.
func Scalability(algo core.Algorithm, rep vertical.Kind, cfg Config) *Table {
	cfg = cfg.defaults()
	defs := cfg.Datasets
	if defs == nil {
		defs = datasets.Dense()
	}
	t := &Table{
		Algorithm:      algo,
		Representation: rep,
		Machine:        cfg.Machine,
	}
	for _, d := range defs {
		db := d.Build(cfg.Scale * d.ExperimentScale)
		rec := db.Recode(db.AbsoluteSupport(d.DefaultSupport))
		res, col, real := mineTraced(rec, rec.MinSup, algo, rep)
		times, speedups := machine.Speedup(col, cfg.Threads, cfg.Machine)
		row := Row{
			Dataset:     d.Name,
			Support:     d.DefaultSupport,
			Itemsets:    res.Len(),
			RealSeconds: real,
		}
		for i := range times {
			row.Cells = append(row.Cells, Cell{
				Threads:        cfg.Threads[i],
				SimSeconds:     times[i].Seconds,
				Speedup:        speedups[i],
				BandwidthBound: times[i].BandwidthBound,
			})
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// PaperTables returns the four headline scalability tables in paper
// order: Table II/Fig 5 (Apriori+diffset), Table III/Fig 6
// (Eclat+tidset), Table VI/Fig 7 (Eclat+bitvector), Table V/Fig 8
// (Eclat+diffset).
func PaperTables(cfg Config) []*Table {
	specs := []struct {
		id, title string
		algo      core.Algorithm
		rep       vertical.Kind
	}{
		{"table2+fig5", "Running time and speedup for Apriori with Diffset", core.Apriori, vertical.Diffset},
		{"table3+fig6", "Running time and speedup for Eclat with Tidset", core.Eclat, vertical.Tidset},
		{"table6+fig7", "Running time and speedup for Eclat with Bitvector", core.Eclat, vertical.Bitvector},
		{"table5+fig8", "Running time and speedup for Eclat with Diffset", core.Eclat, vertical.Diffset},
	}
	var out []*Table
	for _, s := range specs {
		t := Scalability(s.algo, s.rep, cfg)
		t.ID, t.Title = s.id, s.title
		out = append(out, t)
	}
	return out
}

// AprioriFlat reproduces the §V-A negative result: Apriori with tidset
// and bitvector does not scale beyond one blade (16 threads).
func AprioriFlat(cfg Config) []*Table {
	var out []*Table
	for _, rep := range []vertical.Kind{vertical.Tidset, vertical.Bitvector} {
		t := Scalability(core.Apriori, rep, cfg)
		t.ID = "apriori-" + rep.String()
		t.Title = fmt.Sprintf("Apriori with %s (§V-A: not scalable beyond one blade)", rep)
		out = append(out, t)
	}
	return out
}

// TableIRow is one row of the dataset summary (paper Table I).
type TableIRow struct {
	Name        string
	Items       int
	AvgLen      float64
	Trans       int
	SizeKB      int
	PaperItems  int
	PaperAvgLen float64
	PaperTrans  int
}

// TableI computes the dataset summary at full scale (generation is cheap
// even when mining at that scale is not).
func TableI() []TableIRow {
	var rows []TableIRow
	for _, d := range datasets.Dense() {
		st := d.Build(1).ComputeStats()
		rows = append(rows, TableIRow{
			Name:        d.Name,
			Items:       st.NumItems,
			AvgLen:      st.AvgLength,
			Trans:       st.NumTransactions,
			SizeKB:      st.SizeBytes / 1024,
			PaperItems:  d.PaperItems,
			PaperAvgLen: d.PaperAvgLen,
			PaperTrans:  d.PaperTrans,
		})
	}
	return rows
}

// FootprintRow reports, for one dataset, each representation's total
// candidate payload allocation during an Apriori run — ablation A2, the
// §V-A memory-footprint argument.
type FootprintRow struct {
	Dataset    string
	Support    float64
	AllocBytes map[vertical.Kind]int64
	// RemoteBytes is the instrumented parent-read volume per
	// representation (the memory-exchange proxy).
	RemoteBytes map[vertical.Kind]int64
}

// MemoryFootprint runs ablation A2.
func MemoryFootprint(cfg Config) []FootprintRow {
	cfg = cfg.defaults()
	defs := cfg.Datasets
	if defs == nil {
		defs = datasets.Dense()
	}
	var rows []FootprintRow
	for _, d := range defs {
		db := d.Build(cfg.Scale * d.ExperimentScale)
		rec := db.Recode(db.AbsoluteSupport(d.DefaultSupport))
		row := FootprintRow{
			Dataset:     d.Name,
			Support:     d.DefaultSupport,
			AllocBytes:  map[vertical.Kind]int64{},
			RemoteBytes: map[vertical.Kind]int64{},
		}
		for _, rep := range vertical.Kinds() {
			_, col, _ := mineTraced(rec, rec.MinSup, core.Apriori, rep)
			row.AllocBytes[rep] = col.TotalAlloc()
			row.RemoteBytes[rep] = col.TotalRemote()
		}
		rows = append(rows, row)
	}
	return rows
}

// ScheduleRow is one cell of the scheduling ablation A1: simulated time
// of one algorithm/dataset under each loop schedule.
type ScheduleRow struct {
	Dataset   string
	Algorithm core.Algorithm
	Threads   int
	Seconds   map[string]float64 // schedule name -> simulated seconds
}

// ScheduleAblation runs ablation A1: static vs dynamic vs guided for
// both algorithms at the largest thread count.
func ScheduleAblation(cfg Config) []ScheduleRow {
	cfg = cfg.defaults()
	defs := cfg.Datasets
	if defs == nil {
		defs = datasets.Dense()
	}
	threads := cfg.Threads[len(cfg.Threads)-1]
	schedules := []sched.Schedule{
		{Policy: sched.Static},
		{Policy: sched.Dynamic, Chunk: 1},
		{Policy: sched.Guided},
	}
	var rows []ScheduleRow
	for _, d := range defs {
		db := d.Build(cfg.Scale * d.ExperimentScale)
		rec := db.Recode(db.AbsoluteSupport(d.DefaultSupport))
		for _, algo := range []core.Algorithm{core.Apriori, core.Eclat} {
			row := ScheduleRow{Dataset: d.Name, Algorithm: algo, Threads: threads, Seconds: map[string]float64{}}
			rep := vertical.Diffset
			for _, s := range schedules {
				col := &perf.Collector{}
				opt := core.DefaultOptions(rep, 1)
				opt.Collector = col
				opt.Schedule, opt.HasSchedule = s, true
				switch algo {
				case core.Apriori:
					mustMine(apriori.Mine(rec, rec.MinSup, opt))
				case core.Eclat:
					mustMine(eclat.Mine(rec, rec.MinSup, opt))
				}
				rt := machine.Simulate(col, threads, cfg.Machine)
				row.Seconds[s.String()] = rt.Seconds
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// ChunkRow is one cell of ablation A3: Eclat's sensitivity to the
// dynamic chunk size ("we choose the chunksize to as small as possible").
type ChunkRow struct {
	Dataset string
	Threads int
	Seconds map[int]float64 // chunk size -> simulated seconds
}

// ChunkAblation runs ablation A3.
func ChunkAblation(cfg Config) []ChunkRow {
	cfg = cfg.defaults()
	defs := cfg.Datasets
	if defs == nil {
		defs = datasets.Dense()
	}
	threads := cfg.Threads[len(cfg.Threads)-1]
	var rows []ChunkRow
	for _, d := range defs {
		db := d.Build(cfg.Scale * d.ExperimentScale)
		rec := db.Recode(db.AbsoluteSupport(d.DefaultSupport))
		row := ChunkRow{Dataset: d.Name, Threads: threads, Seconds: map[int]float64{}}
		for _, chunk := range []int{1, 2, 4, 8, 16} {
			col := &perf.Collector{}
			opt := core.DefaultOptions(vertical.Diffset, 1)
			opt.Collector = col
			opt.Schedule = sched.Schedule{Policy: sched.Dynamic, Chunk: chunk}
			opt.HasSchedule = true
			mustMine(eclat.Mine(rec, rec.MinSup, opt))
			row.Seconds[chunk] = machine.Simulate(col, threads, cfg.Machine).Seconds
		}
		rows = append(rows, row)
	}
	return rows
}

// DepthRow is one row of ablation A4: Eclat's flattening-depth
// sensitivity (simulated speedup at the largest thread count per depth).
type DepthRow struct {
	Dataset string
	Threads int
	Speedup map[int]float64 // depth -> speedup at Threads
}

// DepthAblation runs ablation A4 over Eclat/diffset.
func DepthAblation(cfg Config) []DepthRow {
	cfg = cfg.defaults()
	defs := cfg.Datasets
	if defs == nil {
		defs = datasets.Dense()
	}
	threads := cfg.Threads[len(cfg.Threads)-1]
	var rows []DepthRow
	for _, d := range defs {
		db := d.Build(cfg.Scale * d.ExperimentScale)
		rec := db.Recode(db.AbsoluteSupport(d.DefaultSupport))
		row := DepthRow{Dataset: d.Name, Threads: threads, Speedup: map[int]float64{}}
		for _, depth := range []int{1, 2, 3, 4} {
			col := &perf.Collector{}
			opt := core.DefaultOptions(vertical.Diffset, 1)
			opt.Collector = col
			opt.EclatDepth = depth
			mustMine(eclat.Mine(rec, rec.MinSup, opt))
			_, sp := machine.Speedup(col, []int{threads}, cfg.Machine)
			row.Speedup[depth] = sp[0]
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatDepth renders ablation A4.
func FormatDepth(rows []DepthRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "A4 — Eclat flattening-depth ablation (simulated speedup at %d threads, diffset)\n", 256)
	fmt.Fprintf(&b, "%-14s %8s %10s %10s %10s %10s\n", "dataset", "threads", "depth=1", "depth=2", "depth=3", "depth=4")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %10.1f %10.1f %10.1f %10.1f\n",
			r.Dataset, r.Threads, r.Speedup[1], r.Speedup[2], r.Speedup[3], r.Speedup[4])
	}
	return b.String()
}

// SparseRow is one row of experiment E6: sparse datasets whose frequent
// item count caps Eclat's first-level parallelism, the paper's reason
// for omitting T40I10D100K and accidents.
type SparseRow struct {
	Dataset       string
	Support       float64
	FrequentItems int
	Cells         []Cell
}

// SparseLimit runs E6 on the two sparse datasets.
func SparseLimit(cfg Config) []SparseRow {
	cfg = cfg.defaults()
	defs := cfg.Datasets
	if defs == nil {
		for _, d := range datasets.All() {
			if !d.Dense {
				defs = append(defs, d)
			}
		}
	}
	var rows []SparseRow
	for _, d := range defs {
		db := d.Build(cfg.Scale * d.ExperimentScale)
		rec := db.Recode(db.AbsoluteSupport(d.DefaultSupport))
		_, col, _ := mineTraced(rec, rec.MinSup, core.Eclat, vertical.Diffset)
		times, speedups := machine.Speedup(col, cfg.Threads, cfg.Machine)
		row := SparseRow{Dataset: d.Name, Support: d.DefaultSupport, FrequentItems: len(rec.Items)}
		for i := range times {
			row.Cells = append(row.Cells, Cell{Threads: cfg.Threads[i], SimSeconds: times[i].Seconds, Speedup: speedups[i]})
		}
		rows = append(rows, row)
	}
	return rows
}

// BaselineRow is one row of ablation A5/A6: serial wall-clock of the
// horizontal baselines against vertical Apriori (the §II-B "order of
// magnitude" claim), plus the atomic-counting penalty signal.
type BaselineRow struct {
	Dataset string
	Support float64
	// Seconds of serial mining on this host per engine.
	VerticalTidset  float64
	VerticalDiffset float64
	HorizontalScan  float64 // per-transaction subset scanning (partial counters)
	PointerTrie     float64 // Bodon-style trie-descent counting
	// AtomicRemote is the shared-counter cache-line traffic the atomic
	// variant records (the §III race-protection cost); partial counting
	// records zero.
	AtomicRemote int64
}

// Baselines runs ablation A5/A6 on the dense datasets at reduced scale
// (horizontal scanning is quadratic-ish and only needs to show its
// order-of-magnitude gap).
func Baselines(cfg Config) []BaselineRow {
	cfg = cfg.defaults()
	defs := cfg.Datasets
	if defs == nil {
		defs = datasets.Dense()
	}
	var rows []BaselineRow
	for _, d := range defs {
		db := d.Build(cfg.Scale * d.ExperimentScale * 0.25)
		rec := db.Recode(db.AbsoluteSupport(d.DefaultSupport))
		row := BaselineRow{Dataset: d.Name, Support: d.DefaultSupport}
		timeIt := func(f func()) float64 {
			start := time.Now()
			f()
			return time.Since(start).Seconds()
		}
		row.VerticalTidset = timeIt(func() { mustMine(apriori.Mine(rec, rec.MinSup, core.DefaultOptions(vertical.Tidset, 1))) })
		row.VerticalDiffset = timeIt(func() { mustMine(apriori.Mine(rec, rec.MinSup, core.DefaultOptions(vertical.Diffset, 1))) })
		row.HorizontalScan = timeIt(func() { horizontal.Mine(rec, rec.MinSup, 1, horizontal.Partial, nil) })
		row.PointerTrie = timeIt(func() { ptrie.Mine(rec, rec.MinSup, 1) })
		col := &perf.Collector{}
		horizontal.Mine(rec, rec.MinSup, 1, horizontal.Atomic, col)
		row.AtomicRemote = col.TotalRemote()
		rows = append(rows, row)
	}
	return rows
}

// FormatBaselines renders ablation A5/A6.
func FormatBaselines(rows []BaselineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "A5/A6 — Horizontal baselines vs vertical Apriori (serial wall-clock on this host)\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %12s %12s %14s\n",
		"dataset@support", "vert/tidset", "vert/diffset", "horiz/scan", "ptrie", "atomicTraffic")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %11.3fs %11.3fs %11.3fs %11.3fs %11.1fMB\n",
			fmt.Sprintf("%s@%g", r.Dataset, r.Support),
			r.VerticalTidset, r.VerticalDiffset, r.HorizontalScan, r.PointerTrie,
			float64(r.AtomicRemote)/(1<<20))
	}
	return b.String()
}

// HTRow is one row of ablation A8: hyperthreading on the simulated
// machine (paper §V: "We did not use hyper thread as it does not improve
// our program performance").
type HTRow struct {
	Dataset string
	NoHT    float64 // seconds at Threads on the base machine
	WithHT  float64 // seconds at 2*Threads with SMT sharing the cores
	Threads int
}

// HTAblation runs ablation A8 over Eclat/diffset.
func HTAblation(cfg Config) []HTRow {
	cfg = cfg.defaults()
	defs := cfg.Datasets
	if defs == nil {
		defs = datasets.Dense()
	}
	threads := cfg.Threads[len(cfg.Threads)-1]
	ht := cfg.Machine.WithHyperthreading(1.05)
	var rows []HTRow
	for _, d := range defs {
		db := d.Build(cfg.Scale * d.ExperimentScale)
		rec := db.Recode(db.AbsoluteSupport(d.DefaultSupport))
		col := &perf.Collector{}
		opt := core.DefaultOptions(vertical.Diffset, 1)
		opt.Collector = col
		mustMine(eclat.Mine(rec, rec.MinSup, opt))
		noHT := machine.Simulate(col, threads, cfg.Machine).Seconds
		// With SMT, a core running a single busy thread still gets full
		// throughput, so the hyperthreaded machine is never slower than
		// idling every second context: take the better of the two.
		shared := machine.Simulate(col, 2*threads, ht).Seconds
		withHT := shared
		if noHT < withHT {
			withHT = noHT
		}
		rows = append(rows, HTRow{
			Dataset: d.Name,
			Threads: threads,
			NoHT:    noHT,
			WithHT:  withHT,
		})
	}
	return rows
}

// FormatHT renders ablation A8.
func FormatHT(rows []HTRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "A8 — Hyperthreading ablation (simulated seconds, Eclat/diffset)\n")
	fmt.Fprintf(&b, "%-14s %10s %14s %14s %8s\n", "dataset", "threads", "noHT", "HT(2x thr)", "gain")
	for _, r := range rows {
		gain := r.NoHT / r.WithHT
		fmt.Fprintf(&b, "%-14s %10d %13.4fs %13.4fs %7.2fx\n", r.Dataset, r.Threads, r.NoHT, r.WithHT, gain)
	}
	return b.String()
}

// OrderRow is one row of ablation A9: the effect of frequency-ordered
// item recoding on Eclat's work and simulated scalability.
type OrderRow struct {
	Dataset string
	Threads int
	// WorkBytes and Speedup per item order.
	WorkByCode      int64
	WorkByFrequency int64
	SpeedupByCode   float64
	SpeedupByFreq   float64
}

// OrderAblation runs ablation A9 over Eclat/diffset.
func OrderAblation(cfg Config) []OrderRow {
	cfg = cfg.defaults()
	defs := cfg.Datasets
	if defs == nil {
		defs = datasets.Dense()
	}
	threads := cfg.Threads[len(cfg.Threads)-1]
	var rows []OrderRow
	for _, d := range defs {
		db := d.Build(cfg.Scale * d.ExperimentScale)
		minSup := db.AbsoluteSupport(d.DefaultSupport)
		row := OrderRow{Dataset: d.Name, Threads: threads}
		for _, order := range []dataset.ItemOrder{dataset.ByCode, dataset.ByFrequency} {
			rec := db.RecodeOrdered(minSup, order)
			col := &perf.Collector{}
			opt := core.DefaultOptions(vertical.Diffset, 1)
			opt.Collector = col
			mustMine(eclat.Mine(rec, minSup, opt))
			_, sp := machine.Speedup(col, []int{threads}, cfg.Machine)
			if order == dataset.ByCode {
				row.WorkByCode, row.SpeedupByCode = col.TotalWork(), sp[0]
			} else {
				row.WorkByFrequency, row.SpeedupByFreq = col.TotalWork(), sp[0]
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatOrder renders ablation A9.
func FormatOrder(rows []OrderRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "A9 — Item-order ablation (Eclat/diffset): original code order vs ascending frequency\n")
	fmt.Fprintf(&b, "%-14s %8s %14s %14s %12s %12s\n", "dataset", "threads", "work(code)", "work(freq)", "spdup(code)", "spdup(freq)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %12.1fMB %12.1fMB %12.1f %12.1f\n",
			r.Dataset, r.Threads,
			float64(r.WorkByCode)/(1<<20), float64(r.WorkByFrequency)/(1<<20),
			r.SpeedupByCode, r.SpeedupByFreq)
	}
	return b.String()
}

// LazyRow is one row of ablation A10: Apriori payload allocation with
// and without lazy materialization.
type LazyRow struct {
	Dataset    string
	Support    float64
	EagerAlloc int64
	LazyAlloc  int64
}

// LazyAblation runs ablation A10 over Apriori/tidset (the representation
// with the heaviest payloads, where pruning-before-allocating pays most).
func LazyAblation(cfg Config) []LazyRow {
	cfg = cfg.defaults()
	defs := cfg.Datasets
	if defs == nil {
		defs = datasets.Dense()
	}
	var rows []LazyRow
	for _, d := range defs {
		db := d.Build(cfg.Scale * d.ExperimentScale)
		rec := db.Recode(db.AbsoluteSupport(d.DefaultSupport))
		row := LazyRow{Dataset: d.Name, Support: d.DefaultSupport}
		for _, lazyOn := range []bool{false, true} {
			col := &perf.Collector{}
			opt := core.DefaultOptions(vertical.Tidset, 1)
			opt.Collector = col
			opt.LazyMaterialize = lazyOn
			mustMine(apriori.Mine(rec, rec.MinSup, opt))
			if lazyOn {
				row.LazyAlloc = col.TotalAlloc()
			} else {
				row.EagerAlloc = col.TotalAlloc()
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatLazy renders ablation A10.
func FormatLazy(rows []LazyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "A10 — Lazy-materialization ablation (Apriori/tidset payload allocation)\n")
	fmt.Fprintf(&b, "%-22s %14s %14s %10s\n", "dataset@support", "eager alloc", "lazy alloc", "saved")
	for _, r := range rows {
		saved := 0.0
		if r.EagerAlloc > 0 {
			saved = 100 * (1 - float64(r.LazyAlloc)/float64(r.EagerAlloc))
		}
		fmt.Fprintf(&b, "%-22s %12.1fMB %12.1fMB %9.1f%%\n",
			fmt.Sprintf("%s@%g", r.Dataset, r.Support),
			float64(r.EagerAlloc)/(1<<20), float64(r.LazyAlloc)/(1<<20), saved)
	}
	return b.String()
}

// --- formatting --------------------------------------------------------

// Format renders the table the way the paper's tables + figures read:
// a runtime block (seconds per thread count) and a speedup block.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s [%v/%v]\n", strings.ToUpper(t.ID), t.Title, t.Algorithm, t.Representation)
	fmt.Fprintf(&b, "machine: %s\n", t.Machine.Describe())
	if len(t.Rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-22s", "dataset@support")
	for _, c := range t.Rows[0].Cells {
		fmt.Fprintf(&b, "%12d", c.Threads)
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s", fmt.Sprintf("%s@%g", r.Dataset, r.Support))
		for _, c := range r.Cells {
			mark := " "
			if c.BandwidthBound {
				mark = "*"
			}
			fmt.Fprintf(&b, "%11.4f%s", c.SimSeconds, mark)
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "speedup (relative to one thread):\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s", fmt.Sprintf("%s@%g", r.Dataset, r.Support))
		for _, c := range r.Cells {
			fmt.Fprintf(&b, "%12.1f", c.Speedup)
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "(* = interconnect bandwidth bound; itemset counts: ")
	for i, r := range t.Rows {
		if i > 0 {
			fmt.Fprintf(&b, ", ")
		}
		fmt.Fprintf(&b, "%s=%d", r.Dataset, r.Itemsets)
	}
	fmt.Fprintf(&b, ")\n")
	return b.String()
}

// CSV renders the table's speedup series as plot-ready CSV: one row per
// dataset, one column per thread count — the data behind the paper's
// figures.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataset,support")
	if len(t.Rows) > 0 {
		for _, c := range t.Rows[0].Cells {
			fmt.Fprintf(&b, ",t%d", c.Threads)
		}
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%g", r.Dataset, r.Support)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, ",%.2f", c.Speedup)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// FormatTableI renders the dataset summary against the published values.
func FormatTableI(rows []TableIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I — Summary of test datasets (synthetic vs published)\n")
	fmt.Fprintf(&b, "%-12s %22s %22s %22s %10s\n", "dataset", "items (ours/paper)", "avg len (ours/paper)", "trans (ours/paper)", "size")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12d / %-7d %12.1f / %-7.1f %12d / %-7d %8dK\n",
			r.Name, r.Items, r.PaperItems, r.AvgLen, r.PaperAvgLen, r.Trans, r.PaperTrans, r.SizeKB)
	}
	return b.String()
}

// FormatFootprint renders ablation A2.
func FormatFootprint(rows []FootprintRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "A2 — Apriori payload allocation and parent-read volume per representation\n")
	fmt.Fprintf(&b, "%-22s %14s %14s %14s   %s\n", "dataset@support", "tidset", "bitvector", "diffset", "(alloc MB | remote MB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s", fmt.Sprintf("%s@%g", r.Dataset, r.Support))
		for _, k := range vertical.Kinds() {
			fmt.Fprintf(&b, " %6.1f|%6.1f", float64(r.AllocBytes[k])/(1<<20), float64(r.RemoteBytes[k])/(1<<20))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// FormatSchedule renders ablation A1.
func FormatSchedule(rows []ScheduleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "A1 — Loop-schedule ablation (simulated seconds, diffset)\n")
	names := []string{"static", "dynamic,1", "guided"}
	fmt.Fprintf(&b, "%-14s %-9s %8s", "dataset", "algo", "threads")
	for _, n := range names {
		fmt.Fprintf(&b, "%12s", n)
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-9v %8d", r.Dataset, r.Algorithm, r.Threads)
		for _, n := range names {
			fmt.Fprintf(&b, "%12.4f", r.Seconds[n])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// FormatChunk renders ablation A3.
func FormatChunk(rows []ChunkRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "A3 — Eclat dynamic chunk-size ablation (simulated seconds)\n")
	var chunks []int
	if len(rows) > 0 {
		for c := range rows[0].Seconds {
			chunks = append(chunks, c)
		}
		sort.Ints(chunks)
	}
	fmt.Fprintf(&b, "%-14s %8s", "dataset", "threads")
	for _, c := range chunks {
		fmt.Fprintf(&b, "%12s", fmt.Sprintf("chunk=%d", c))
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d", r.Dataset, r.Threads)
		for _, c := range chunks {
			fmt.Fprintf(&b, "%12.4f", r.Seconds[c])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// FormatSparse renders experiment E6.
func FormatSparse(rows []SparseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E6 — Sparse datasets: first-level classes cap Eclat speedup (§V note)\n")
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-22s %10s", "dataset@support", "freqItems")
	for _, c := range rows[0].Cells {
		fmt.Fprintf(&b, "%10d", c.Threads)
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10d", fmt.Sprintf("%s@%g", r.Dataset, r.Support), r.FrequentItems)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, "%10.1f", c.Speedup)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
