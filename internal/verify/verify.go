// Package verify provides an independent reference miner and
// cross-checking helpers used by the test suite. The reference miner
// shares no code with the optimized miners: it counts support by scanning
// the horizontal database for every candidate, and explores the search
// space by straightforward item-by-item extension. It is exponential-ish
// and meant for small test databases only.
package verify

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
)

// Reference mines rec exhaustively by horizontal counting. The result is
// in canonical order.
func Reference(rec *dataset.Recoded, minSup int) *core.Result {
	res := &core.Result{Algorithm: core.Algorithm(-1), MinSup: minSup, Rec: rec}
	n := len(rec.Items)
	var extend func(prefix itemset.Itemset, from int)
	extend = func(prefix itemset.Itemset, from int) {
		for it := from; it < n; it++ {
			cand := prefix.Extend(itemset.Item(it))
			sup := horizontalSupport(rec.DB, cand)
			if sup < minSup {
				continue
			}
			res.Counts = append(res.Counts, core.ItemsetCount{Items: cand, Support: sup})
			if len(cand) > res.MaxK {
				res.MaxK = len(cand)
			}
			extend(cand, it+1)
		}
	}
	extend(itemset.New(), 0)
	return res
}

func horizontalSupport(db *dataset.DB, s itemset.Itemset) int {
	c := 0
	for _, tr := range db.Transactions {
		if s.IsSubsetOf(tr) {
			c++
		}
	}
	return c
}

// Diff explains the first few differences between two results, or returns
// "" when they agree. Used to produce actionable test failures.
func Diff(a, b *core.Result) string {
	am, bm := a.ByKey(), b.ByKey()
	msg := ""
	count := 0
	note := func(f string, args ...any) {
		if count < 5 {
			msg += fmt.Sprintf(f, args...)
		}
		count++
	}
	for k, sa := range am {
		sb, ok := bm[k]
		set, _ := itemset.FromKey(k)
		if !ok {
			note("only in A: %v (support %d)\n", set, sa)
		} else if sa != sb {
			note("support mismatch for %v: A=%d B=%d\n", set, sa, sb)
		}
	}
	for k, sb := range bm {
		if _, ok := am[k]; !ok {
			set, _ := itemset.FromKey(k)
			note("only in B: %v (support %d)\n", set, sb)
		}
	}
	if count > 5 {
		msg += fmt.Sprintf("... and %d more differences\n", count-5)
	}
	return msg
}
