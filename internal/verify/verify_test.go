package verify

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
)

func recoded(t *testing.T, text string, minSup int) *dataset.Recoded {
	t.Helper()
	db, err := dataset.ReadFIMI("t", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return db.Recode(minSup)
}

func TestReferenceHandComputed(t *testing.T) {
	rec := recoded(t, "1 2\n1 2\n1 3\n2\n", 2)
	res := Reference(rec, 2)
	want := map[string]int{
		itemset.New(0).Key():    3, // item 1
		itemset.New(1).Key():    3, // item 2
		itemset.New(0, 1).Key(): 2, // {1,2}
	}
	if res.Len() != len(want) {
		t.Fatalf("found %d itemsets: %v", res.Len(), res.Counts)
	}
	got := res.ByKey()
	for k, sup := range want {
		if got[k] != sup {
			set, _ := itemset.FromKey(k)
			t.Errorf("%v support = %d, want %d", set, got[k], sup)
		}
	}
	if res.MaxK != 2 {
		t.Errorf("MaxK = %d", res.MaxK)
	}
}

func TestReferenceEmpty(t *testing.T) {
	rec := (&dataset.DB{}).Recode(1)
	if res := Reference(rec, 1); res.Len() != 0 {
		t.Errorf("empty DB: %d itemsets", res.Len())
	}
}

func TestReferenceCanonicalOrder(t *testing.T) {
	rec := recoded(t, "1 2 3\n1 2 3\n", 1)
	res := Reference(rec, 1)
	for i := 1; i < res.Len(); i++ {
		if res.Counts[i-1].Items.Compare(res.Counts[i].Items) >= 0 {
			t.Fatalf("not canonical at %d: %v then %v", i, res.Counts[i-1].Items, res.Counts[i].Items)
		}
	}
}

func TestDiffReportsAllKindsOfMismatch(t *testing.T) {
	rec := recoded(t, "1 2\n1 2\n", 1)
	a := Reference(rec, 1)
	// Identical results: empty diff.
	if d := Diff(a, a); d != "" {
		t.Errorf("self diff = %q", d)
	}
	// Support mismatch.
	b := &core.Result{Rec: rec, Counts: append([]core.ItemsetCount(nil), a.Counts...)}
	b.Counts[0] = core.ItemsetCount{Items: b.Counts[0].Items, Support: 99}
	if d := Diff(a, b); !strings.Contains(d, "support mismatch") {
		t.Errorf("diff = %q", d)
	}
	// Missing on one side.
	c := &core.Result{Rec: rec, Counts: a.Counts[:1]}
	if d := Diff(a, c); !strings.Contains(d, "only in A") {
		t.Errorf("diff = %q", d)
	}
	if d := Diff(c, a); !strings.Contains(d, "only in B") {
		t.Errorf("diff = %q", d)
	}
}

func TestDiffTruncatesLongReports(t *testing.T) {
	rec := recoded(t, "1 2 3 4 5 6 7 8\n1 2 3 4 5 6 7 8\n", 1)
	full := Reference(rec, 1) // 255 itemsets
	empty := &core.Result{Rec: rec}
	d := Diff(full, empty)
	if !strings.Contains(d, "more differences") {
		t.Errorf("long diff not truncated:\n%s", d)
	}
	if strings.Count(d, "\n") > 10 {
		t.Errorf("diff too long: %d lines", strings.Count(d, "\n"))
	}
}
