// Package horizontal implements Apriori with the traditional horizontal
// support counting that §II-B and §III of the paper use as their foil:
// transactions are scanned generation after generation, and every
// candidate's counter is incremented whenever it is contained in a
// transaction.
//
// The paper makes two claims about this baseline that the package
// reproduces:
//
//   - "Vertical representation generally offers one order of magnitude
//     of performance gain since they reduce the volume of I/O operations
//     and avoid repetitive database scanning" (§II-B) — benchmarked as
//     ablation A5 against internal/apriori.
//   - With transaction-parallel counting, "if multiple [threads] try to
//     increment the support counter for a candidate, race condition is
//     inevitable. In this case, the program needs to use locks, atomic or
//     critical pragma to protect the data" (§III). Both protection
//     strategies are implemented: Atomic (shared counters, contended) and
//     Partial (per-worker counter arrays merged after the loop — the
//     reduction idiom).
package horizontal

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/perf"
	"repro/internal/sched"
	"repro/internal/trie"
)

// Counting selects how parallel workers protect the shared candidate
// counters.
type Counting int

const (
	// Partial gives each worker a private counter array, merged after
	// the parallel loop — no synchronization in the hot path.
	Partial Counting = iota
	// Atomic shares one counter array, incremented atomically — the
	// paper's "locks, atomic or critical pragma" case.
	Atomic
)

func (c Counting) String() string {
	switch c {
	case Partial:
		return "partial"
	case Atomic:
		return "atomic"
	}
	return fmt.Sprintf("Counting(%d)", int(c))
}

// Mine runs horizontal Apriori. The candidate machinery (trie of level
// tables, generation, pruning) is shared with the vertical miner; only
// support counting differs — it re-scans the transaction database every
// generation.
func Mine(rec *dataset.Recoded, minSup int, workers int, counting Counting, col *perf.Collector) *core.Result {
	if minSup < 1 {
		minSup = 1
	}
	team := sched.NewTeam(workers)
	schedule := sched.Schedule{Policy: sched.Static}

	res := &core.Result{
		Algorithm: core.Apriori,
		MinSup:    minSup,
		Rec:       rec,
	}

	tr := trie.NewRoot(itemSupports(rec))
	transactions := rec.DB.Transactions
	nTrans := len(transactions)

	for gen := 1; tr.Levels[len(tr.Levels)-1].Len() != 0; gen++ {
		cands := tr.Generate()
		tr.Prune(cands)
		n := cands.Len()
		if n == 0 {
			break
		}
		// Materialize candidate itemsets once per generation.
		sets := make([]itemset.Itemset, n)
		for i := 0; i < n; i++ {
			sets[i] = tr.ItemsetOf(cands.Level.K-1, cands.Px[i]).Extend(cands.Level.Items[i])
		}

		phase := col.NewPhase(fmt.Sprintf("horizontal/gen%d", gen+1), schedule, true, nTrans)
		// The working set every task scans is the whole candidate list —
		// shared machine-wide, like vertical Apriori's parent pools.
		if phase != nil {
			phase.UniqueParent = int64(n) * int64(cands.Level.K) * 4
		}

		// Transaction-parallel counting.
		switch counting {
		case Atomic:
			counters := make([]int64, n)
			team.For(nTrans, schedule, func(_, t int) {
				tx := transactions[t]
				var work int64
				for c := 0; c < n; c++ {
					work += int64(4 * (len(sets[c]) + 1))
					if sets[c].IsSubsetOf(tx) {
						atomic.AddInt64(&counters[c], 1)
						// Shared-counter increments bounce cache lines
						// between blades: charged as remote traffic.
						phase.Add(t, 64, 64, 0)
					}
				}
				phase.Add(t, work, 0, 0)
			})
			for c := 0; c < n; c++ {
				cands.Level.Supports[c] = int(counters[c])
			}
		case Partial:
			w := team.Workers()
			partial := make([][]int, w)
			for i := range partial {
				partial[i] = make([]int, n)
			}
			team.For(nTrans, schedule, func(worker, t int) {
				tx := transactions[t]
				mine := partial[worker]
				var work int64
				for c := 0; c < n; c++ {
					work += int64(4 * (len(sets[c]) + 1))
					if sets[c].IsSubsetOf(tx) {
						mine[c]++
					}
				}
				phase.Add(t, work, 0, 0)
			})
			for c := 0; c < n; c++ {
				total := 0
				for _, p := range partial {
					total += p[c]
				}
				cands.Level.Supports[c] = total
			}
		default:
			panic(fmt.Sprintf("horizontal: unknown counting mode %v", counting))
		}
		phase.AddSerial(int64(n) * 16)

		tr.Commit(cands, minSup)
	}

	sets, sups := tr.FrequentItemsets()
	res.Counts = make([]core.ItemsetCount, len(sets))
	for i := range sets {
		res.Counts[i] = core.ItemsetCount{Items: sets[i], Support: sups[i]}
		if len(sets[i]) > res.MaxK {
			res.MaxK = len(sets[i])
		}
	}
	return res
}

func itemSupports(rec *dataset.Recoded) []int {
	sups := make([]int, len(rec.Items))
	for i, fi := range rec.Items {
		sups[i] = fi.Support
	}
	return sups
}
