package horizontal

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/apriori"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/perf"
	"repro/internal/verify"
	"repro/internal/vertical"
)

const classic = `1 2 5
2 4
2 3
1 2 4
1 3
2 3
1 3
1 2 3 5
1 2 3
`

func classicRecoded(t *testing.T, minSup int) *dataset.Recoded {
	t.Helper()
	db, err := dataset.ReadFIMI("classic", strings.NewReader(classic))
	if err != nil {
		t.Fatal(err)
	}
	return db.Recode(minSup)
}

func TestMineMatchesReference(t *testing.T) {
	rec := classicRecoded(t, 2)
	ref := verify.Reference(rec, 2)
	for _, mode := range []Counting{Partial, Atomic} {
		for _, workers := range []int{1, 2, 7} {
			res := Mine(rec, 2, workers, mode, nil)
			if !res.Equal(ref) {
				t.Errorf("%v workers=%d:\n%s", mode, workers, verify.Diff(res, ref))
			}
		}
	}
}

func TestMineMatchesVerticalApriori(t *testing.T) {
	rec := classicRecoded(t, 2)
	vert := must(apriori.Mine(rec, 2, core.DefaultOptions(vertical.Tidset, 2)))
	hor := Mine(rec, 2, 2, Partial, nil)
	if !hor.Equal(vert) {
		t.Errorf("horizontal vs vertical:\n%s", verify.Diff(hor, vert))
	}
}

func TestCountingString(t *testing.T) {
	if Partial.String() != "partial" || Atomic.String() != "atomic" {
		t.Error("Counting.String mismatch")
	}
	if Counting(7).String() != "Counting(7)" {
		t.Error("unknown counting string")
	}
}

func TestInstrumentationShapes(t *testing.T) {
	rec := classicRecoded(t, 2)
	colP, colA := &perf.Collector{}, &perf.Collector{}
	Mine(rec, 2, 2, Partial, colP)
	Mine(rec, 2, 2, Atomic, colA)
	if len(colP.Phases) == 0 || len(colA.Phases) == 0 {
		t.Fatal("no phases recorded")
	}
	// Tasks per phase = transactions.
	if colP.Phases[0].Tasks() != rec.DB.NumTransactions() {
		t.Errorf("tasks = %d", colP.Phases[0].Tasks())
	}
	// Atomic counting bounces counter cache lines: remote traffic that
	// the partial-counter version does not pay.
	if colA.TotalRemote() <= colP.TotalRemote() {
		t.Errorf("atomic remote %d not above partial %d", colA.TotalRemote(), colP.TotalRemote())
	}
	if colP.TotalRemote() != 0 {
		t.Errorf("partial counting recorded remote traffic %d", colP.TotalRemote())
	}
}

// A5 precondition: on the classic example, horizontal counting touches
// far more bytes than vertical Apriori — the paper's §II-B argument for
// vertical layouts.
func TestHorizontalScansMoreThanVertical(t *testing.T) {
	rec := classicRecoded(t, 2)
	colH, colV := &perf.Collector{}, &perf.Collector{}
	Mine(rec, 2, 1, Partial, colH)
	opt := core.DefaultOptions(vertical.Tidset, 1)
	opt.Collector = colV
	must(apriori.Mine(rec, 2, opt))
	if colH.TotalWork() <= colV.TotalWork() {
		t.Errorf("horizontal work %d not above vertical %d", colH.TotalWork(), colV.TotalWork())
	}
}

func TestMineEdgeCases(t *testing.T) {
	rec := (&dataset.DB{}).Recode(1)
	if res := Mine(rec, 1, 2, Partial, nil); res.Len() != 0 {
		t.Errorf("empty DB: %d itemsets", res.Len())
	}
	db, _ := dataset.ReadFIMI("t", strings.NewReader("1 2 3\n"))
	rec2 := db.Recode(1)
	if res := Mine(rec2, 1, 3, Atomic, nil); res.Len() != 7 {
		t.Errorf("single transaction: %d itemsets", res.Len())
	}
	if res := Mine(rec2, 0, 1, Partial, nil); res.MinSup != 1 {
		t.Errorf("MinSup = %d", res.MinSup)
	}
}

func TestQuickAgainstReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &dataset.DB{Name: "rand"}
		nTrans := 5 + r.Intn(30)
		nItems := 3 + r.Intn(6)
		for i := 0; i < nTrans; i++ {
			var items []itemset.Item
			for it := 0; it < nItems; it++ {
				if r.Intn(3) > 0 {
					items = append(items, itemset.Item(it))
				}
			}
			if len(items) == 0 {
				items = append(items, 0)
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		minSup := 1 + r.Intn(nTrans/2+1)
		rec := db.Recode(minSup)
		ref := verify.Reference(rec, minSup)
		mode := []Counting{Partial, Atomic}[r.Intn(2)]
		workers := 1 + r.Intn(4)
		return Mine(rec, minSup, workers, mode, nil).Equal(ref)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("horizontal vs reference: %v", err)
	}
}

// must unwraps the vertical miner's (result, error) pair.
func must(res *core.Result, err error) *core.Result {
	if err != nil {
		panic(err)
	}
	return res
}
