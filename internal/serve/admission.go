package serve

import (
	"context"
	"sync"
	"time"
)

// admission implements the service's bounded admission ladder: a fixed
// number of running slots, a bounded queue in front of them, and a
// per-tenant in-flight cap. Every rung fails fast — a full queue sheds
// the request instead of queueing it invisibly, and a tenant over quota
// is rejected before it can consume a queue slot.
type admission struct {
	running   chan struct{} // capacity = concurrent runs
	queued    chan struct{} // capacity = admission queue depth
	perTenant int

	mu      sync.Mutex
	tenants map[string]int

	// ewmaNS tracks recent run durations so shed responses can suggest a
	// meaningful Retry-After instead of a constant.
	ewmaNS int64
}

func newAdmission(workers, queueDepth, perTenant int) *admission {
	return &admission{
		running:   make(chan struct{}, workers),
		queued:    make(chan struct{}, queueDepth),
		perTenant: perTenant,
		tenants:   make(map[string]int),
	}
}

func (a *admission) queueLen() int   { return len(a.queued) }
func (a *admission) runningLen() int { return len(a.running) }

// tenantEnter counts the tenant in if it is under the per-tenant quota;
// the returned leave func must be called exactly once when the request
// finishes.
func (a *admission) tenantEnter(tenant string) (leave func(), ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tenants[tenant] >= a.perTenant {
		return nil, false
	}
	a.tenants[tenant]++
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.tenants[tenant]--
			if a.tenants[tenant] == 0 {
				delete(a.tenants, tenant)
			}
			a.mu.Unlock()
		})
	}, true
}

// acquire climbs the capacity rungs: a running slot immediately if one
// is free, else a queue slot (failing fast with shed=true when the
// queue is full), then a wait for a running slot bounded by ctx and the
// drain signal. release must be called exactly once when acquire
// returns ok.
func (a *admission) acquire(ctx context.Context, drain <-chan struct{}) (release func(), ok, shed bool) {
	select {
	case a.running <- struct{}{}:
		return func() { <-a.running }, true, false
	default:
	}
	select {
	case a.queued <- struct{}{}:
	default:
		return nil, false, true // queue full: shed
	}
	// Queued. Wait for a running slot, abandoning the wait if the client
	// goes away or the server starts draining.
	select {
	case a.running <- struct{}{}:
		<-a.queued
		return func() { <-a.running }, true, false
	case <-ctx.Done():
		<-a.queued
		return nil, false, false
	case <-drain:
		<-a.queued
		return nil, false, false
	}
}

// observe folds a finished run's duration into the Retry-After EWMA.
func (a *admission) observe(d time.Duration) {
	a.mu.Lock()
	if a.ewmaNS == 0 {
		a.ewmaNS = int64(d)
	} else {
		a.ewmaNS = (a.ewmaNS*3 + int64(d)) / 4
	}
	a.mu.Unlock()
}

// retryAfter suggests how long a shed client should back off: roughly
// one recent run duration, clamped to [1s, 60s].
func (a *admission) retryAfter() time.Duration {
	a.mu.Lock()
	e := a.ewmaNS
	a.mu.Unlock()
	d := time.Duration(e)
	if d < time.Second {
		d = time.Second
	}
	if d > 60*time.Second {
		d = 60 * time.Second
	}
	return d
}
