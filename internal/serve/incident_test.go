package serve

// Incident-engine acceptance tests: the deterministic overload soak
// that pages the SLO watchdog and must yield exactly one schema-valid
// incident bundle whose CPU profile carries the offending run's pprof
// labels; the panic- and cooldown-triggered paths; the flight
// recorder's .panic side dump; and ValidateIncident's rejections.
//
// Like the rest of the serve tests these steer run timing through the
// scheduler's process-global fault hook, so none use t.Parallel.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/prof"
	"repro/internal/sched"
)

// panicItemsets marks runs the fault hook should kill with an injected
// worker panic (distinct from sentinelItemsets, which gates).
const panicItemsets = 999999893

// panicSentinelRuns installs a fault hook that panics inside the first
// scheduler chunk of any run carrying the panic sentinel budget.
func panicSentinelRuns(t *testing.T) {
	t.Helper()
	sched.SetFaultHook(func(fc sched.FaultContext) {
		if fc.Control.Budget().MaxItemsets == panicItemsets {
			panic("injected fault: incident test")
		}
	})
	t.Cleanup(func() { sched.SetFaultHook(nil) })
}

// TestIncidentOnSLOPage is the acceptance soak for the incident engine:
// a deterministic overload (one admitted victim run, plugged worker and
// queue, then a flood of sheds) drives the shed burn rate straight from
// ok to page, which must capture exactly one bundle — the cooldown
// suppresses everything after it, including a subsequent worker panic —
// and that bundle's CPU profile must contain samples labeled with the
// victim run's fim_run_id and tenant.
func TestIncidentOnSLOPage(t *testing.T) {
	gate := make(chan struct{})
	gateSentinelRuns(t, gate)
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		PerTenant:  8,
		CacheBytes: -1, // every request must reach admission, not the cache
		// Opt in to the continuous profiler: the bundle must carry the CPU
		// window covering the victim run.
		ProfileWindow:    time.Minute,
		IncidentCooldown: time.Hour,
		IncidentDir:      dir,
	})

	// The victim: the only admitted, completed run before the flood. Its
	// mining work is what the incident's CPU window must attribute.
	resp, victim := postMine(t, ts,
		"dataset=mushroom&support=0.25&algo=eclat&rep=tidset", "",
		map[string]string{"X-Tenant": "prof-victim"})
	if resp.StatusCode != http.StatusOK || victim.RunID == 0 || victim.Incomplete {
		t.Fatalf("victim run: status %d, %+v", resp.StatusCode, victim)
	}

	// Plug the single worker slot and the single queue slot with gated
	// sentinel runs; they stay in flight (no terminal outcome) until the
	// gate opens, so the watchdog's windows hold exactly one admitted
	// outcome when the sheds start.
	var wg sync.WaitGroup
	for _, abssup := range []int{2, 3} {
		wg.Add(1)
		go func(abssup int) {
			defer wg.Done()
			resp, mr := postMine(t, ts,
				fmt.Sprintf("abssup=%d&max-itemsets=%d", abssup, sentinelItemsets),
				uploadFIMI, map[string]string{"X-Tenant": "plug"})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("plug abssup=%d: status %d, %+v", abssup, resp.StatusCode, mr)
			}
		}(abssup)
	}
	waitFor(t, "the worker and queue slots to fill", func() bool {
		return s.adm.runningLen() == 1 && s.adm.queueLen() == 1
	})

	// The flood: distinct problems, all shed. With one admitted outcome
	// on record, every prefix of the flood puts the shed fraction at or
	// above 1/2 — burn >= 0.5/0.05 = 10 = PageBurn in both windows — so
	// the watchdog's next tick transitions ok→page directly, never
	// pausing in warn.
	for i := 0; i < 6; i++ {
		resp, mr := postMine(t, ts, fmt.Sprintf("abssup=%d", 10+i), uploadFIMI, nil)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("flood %d: status %d, %+v (want shed)", i, resp.StatusCode, mr)
		}
	}
	waitFor(t, "the SLO page to capture an incident", func() bool {
		return len(s.incidents.list()) == 1
	})

	// Release the plugs, then prove the cooldown: a contained worker
	// panic — itself an incident trigger — must be suppressed, not
	// bundled.
	close(gate)
	wg.Wait()
	panicSentinelRuns(t)
	resp, mr := postMine(t, ts,
		fmt.Sprintf("abssup=5&max-itemsets=%d", panicItemsets), uploadFIMI, nil)
	if resp.StatusCode != http.StatusInternalServerError || mr.StopReason != "worker-panic" {
		t.Fatalf("injected panic run: status %d, %+v", resp.StatusCode, mr)
	}
	if n := s.incidents.count(); n != 1 {
		t.Fatalf("captured incidents = %d after cooldown-suppressed panic, want 1", n)
	}
	if n := s.met.incidentsSuppressed.Value(); n < 1 {
		t.Fatalf("incidents_suppressed = %d, want >= 1", n)
	}

	// The list endpoint: exactly one incident, reason slo-page.
	var list struct {
		Count     int               `json:"count"`
		Captured  int64             `json:"captured"`
		Incidents []IncidentSummary `json:"incidents"`
	}
	getJSON(t, ts.URL+"/debug/incidents", &list)
	if list.Count != 1 || list.Captured != 1 {
		t.Fatalf("incident list = %+v", list)
	}
	sum := list.Incidents[0]
	if sum.Reason != IncidentSLOPage || sum.SLOState != "page" {
		t.Fatalf("incident summary = %+v, want reason %q in state page", sum, IncidentSLOPage)
	}
	if resp := getJSON(t, fmt.Sprintf("%s/debug/incidents/%d", ts.URL, sum.ID+999), nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown incident id: status %d, want 404", resp.StatusCode)
	}

	// The bundle itself: schema-valid end to end.
	var b IncidentBundle
	getJSON(t, fmt.Sprintf("%s/debug/incidents/%d", ts.URL, sum.ID), &b)
	if err := ValidateIncident(b); err != nil {
		t.Fatalf("ValidateIncident: %v", err)
	}
	if b.Reason != IncidentSLOPage || b.SLO.State != "page" || !strings.Contains(b.Detail, "ok→page") {
		t.Fatalf("bundle = reason %q, slo %+v, detail %q", b.Reason, b.SLO, b.Detail)
	}
	if len(b.Flight.Runs) == 0 {
		t.Fatal("bundle flight dump has no run records")
	}

	// Persistence: the same bundle landed in -incident-dir.
	data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("incident-%d.json", b.ID)))
	if err != nil {
		t.Fatalf("persisted bundle: %v", err)
	}
	var pb IncidentBundle
	if err := json.Unmarshal(data, &pb); err != nil {
		t.Fatalf("persisted bundle: %v", err)
	}
	if err := ValidateIncident(pb); err != nil {
		t.Fatalf("persisted bundle invalid: %v", err)
	}

	// Attribution: the CPU window covering the incident has samples
	// labeled with the victim's run ID, tenant and a mining phase.
	if len(b.CPUProfile) == 0 {
		t.Skipf("no CPU window in bundle (profiler skipped %d windows: held elsewhere in this process)",
			b.ProfilerSkipped)
	}
	lv, err := prof.LabelValues(b.CPUProfile)
	if err != nil {
		t.Fatalf("parsing bundle CPU profile: %v", err)
	}
	if id := strconv.FormatInt(victim.RunID, 10); !lv[prof.LabelRunID][id] {
		t.Errorf("no samples labeled %s=%s; saw %v", prof.LabelRunID, id, lv[prof.LabelRunID])
	}
	if !lv[prof.LabelTenant]["prof-victim"] {
		t.Errorf("no samples labeled %s=prof-victim; saw %v", prof.LabelTenant, lv[prof.LabelTenant])
	}
	if len(lv[prof.LabelPhase]) == 0 {
		t.Errorf("no samples carry a %s label", prof.LabelPhase)
	}
}

// TestIncidentOnWorkerPanic: a contained worker panic outside any
// cooldown captures its own bundle, attributed to the injured run, and
// the bundle validates even with the profiler disabled.
func TestIncidentOnWorkerPanic(t *testing.T) {
	panicSentinelRuns(t)
	s, ts := newTestServer(t, Config{IncidentCooldown: time.Hour})

	resp, mr := postMine(t, ts,
		fmt.Sprintf("abssup=2&max-itemsets=%d", panicItemsets), uploadFIMI, nil)
	if resp.StatusCode != http.StatusInternalServerError || mr.StopReason != "worker-panic" {
		t.Fatalf("panic run: status %d, %+v", resp.StatusCode, mr)
	}

	list := s.incidents.list()
	if len(list) != 1 || list[0].Reason != IncidentWorkerPanic || list[0].RunID != mr.RunID {
		t.Fatalf("incidents after panic = %+v (run %d)", list, mr.RunID)
	}
	if n := s.met.incidents.With(IncidentWorkerPanic).Value(); n != 1 {
		t.Fatalf("fimserve_incidents_total{reason=%q} = %d, want 1", IncidentWorkerPanic, n)
	}

	var b IncidentBundle
	getJSON(t, fmt.Sprintf("%s/debug/incidents/%d", ts.URL, list[0].ID), &b)
	if err := ValidateIncident(b); err != nil {
		t.Fatalf("ValidateIncident: %v", err)
	}
	if !b.ProfilerDisabled || len(b.CPUProfile) != 0 {
		t.Fatalf("profiler-off bundle: disabled=%v, %d profile bytes", b.ProfilerDisabled, len(b.CPUProfile))
	}
	// The flight dump inside the bundle holds the injured run's record.
	found := false
	for _, r := range b.Flight.Runs {
		if r.ID == mr.RunID && r.StopReason == "worker-panic" && r.HTTPStatus == http.StatusInternalServerError {
			found = true
		}
	}
	if !found {
		t.Fatalf("injured run %d not in bundle flight dump: %+v", mr.RunID, b.Flight.Runs)
	}
}

// TestFlightPanicDump: a contained worker panic writes the flight
// recorder to <FlightPath>.panic as a valid dump carrying the injured
// run — the post-mortem survives even if the process never drains.
func TestFlightPanicDump(t *testing.T) {
	panicSentinelRuns(t)
	fp := filepath.Join(t.TempDir(), "flight.json")
	_, ts := newTestServer(t, Config{FlightPath: fp})

	resp, mr := postMine(t, ts,
		fmt.Sprintf("abssup=2&max-itemsets=%d", panicItemsets), uploadFIMI, nil)
	if resp.StatusCode != http.StatusInternalServerError || mr.StopReason != "worker-panic" {
		t.Fatalf("panic run: status %d, %+v", resp.StatusCode, mr)
	}

	data, err := os.ReadFile(fp + ".panic")
	if err != nil {
		t.Fatalf("panic side dump: %v", err)
	}
	var fd FlightDump
	if err := json.Unmarshal(data, &fd); err != nil {
		t.Fatalf("panic side dump: %v", err)
	}
	if fd.Schema != flightSchema || fd.Reason != "panic" || fd.GeneratedUnixNS <= 0 {
		t.Fatalf("panic dump envelope = %+v", fd)
	}
	found := false
	for _, r := range fd.Runs {
		if r.ID == mr.RunID && r.StopReason == "worker-panic" {
			found = true
		}
	}
	if !found {
		t.Fatalf("injured run %d not in panic dump: %+v", mr.RunID, fd.Runs)
	}
}

// TestValidateIncidentRejects: each class of bundle corruption fails
// validation with the check that owns it.
func TestValidateIncidentRejects(t *testing.T) {
	const goodScrape = "# TYPE t_total counter\nt_total 1\n"
	heap, err := prof.HeapProfile()
	if err != nil {
		t.Fatal(err)
	}
	valid := IncidentBundle{
		Schema:          incidentSchema,
		ID:              1,
		Reason:          IncidentWorkerPanic,
		GeneratedUnixNS: 1,
		Flight:          FlightDump{Schema: flightSchema, Reason: "incident", GeneratedUnixNS: 1},
		MetricsBefore:   goodScrape,
		MetricsAt:       goodScrape,
		Goroutines:      string(prof.GoroutineDump()),
		HeapProfile:     heap,
		ProfilerSkipped: 2,
	}
	if err := ValidateIncident(valid); err != nil {
		t.Fatalf("valid bundle rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(b *IncidentBundle)
		want string
	}{
		{"wrong schema", func(b *IncidentBundle) { b.Schema = "fimserve-incident/v0" }, "schema"},
		{"zero id", func(b *IncidentBundle) { b.ID = 0 }, "id"},
		{"unknown reason", func(b *IncidentBundle) { b.Reason = "gremlins" }, "reason"},
		{"missing timestamp", func(b *IncidentBundle) { b.GeneratedUnixNS = 0 }, "generated_unix_ns"},
		{"wrong flight schema", func(b *IncidentBundle) { b.Flight.Schema = "nope" }, "flight"},
		{"wrong flight reason", func(b *IncidentBundle) { b.Flight.Reason = "drain" }, "flight"},
		{"garbage metrics", func(b *IncidentBundle) { b.MetricsAt = "{{{ not a scrape" }, "metrics_at"},
		{"counter went backwards", func(b *IncidentBundle) {
			b.MetricsBefore = "# TYPE t_total counter\nt_total 5\n"
		}, "backwards"},
		{"not a goroutine dump", func(b *IncidentBundle) { b.Goroutines = "hello" }, "goroutine"},
		{"corrupt cpu profile", func(b *IncidentBundle) {
			b.CPUProfile = []byte("not pprof")
			b.CPUProfileStartUnixNS, b.CPUProfileEndUnixNS = 1, 2
		}, "cpu_profile"},
		{"missing cpu profile unexplained", func(b *IncidentBundle) {
			b.ProfilerSkipped, b.ProfilerDisabled = 0, false
		}, "cpu_profile"},
		{"corrupt heap profile", func(b *IncidentBundle) { b.HeapProfile = []byte{0x1f, 0x8b, 0xff} }, "heap_profile"},
	}
	for _, c := range cases {
		b := valid
		c.mut(&b)
		err := ValidateIncident(b)
		if err == nil {
			t.Errorf("%s: validated", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestHealthAndBuildInfoMetrics: the process-health gauges and the
// build-identity series are present and plausible in /metrics.
func TestHealthAndBuildInfoMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sc := scrape(t, ts.URL)

	if v, ok := sc.Value("fimserve_go_goroutines", nil); !ok || v < 1 {
		t.Fatalf("fimserve_go_goroutines = %g (present %v)", v, ok)
	}
	if v, ok := sc.Value("fimserve_go_heap_inuse_bytes", nil); !ok || v <= 0 {
		t.Fatalf("fimserve_go_heap_inuse_bytes = %g (present %v)", v, ok)
	}
	if _, ok := sc.Types["fimserve_go_gc_last_pause_seconds"]; !ok {
		t.Fatal("fimserve_go_gc_last_pause_seconds missing")
	}

	infos := sc.Samples("fimserve_build_info")
	if len(infos) != 1 {
		t.Fatalf("fimserve_build_info series = %+v, want exactly one", infos)
	}
	bi := infos[0]
	if bi.Value != 1 {
		t.Fatalf("fimserve_build_info value = %g, want 1", bi.Value)
	}
	if !strings.HasPrefix(bi.Labels["go_version"], "go1.") {
		t.Fatalf("fimserve_build_info go_version = %q", bi.Labels["go_version"])
	}
	if bi.Labels["commit"] == "" {
		t.Fatal("fimserve_build_info missing commit label")
	}
}
