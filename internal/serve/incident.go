// The incident engine: the piece that closes the detect→diagnose loop.
// PR 7 gave the service a pager (the SLO burn-rate watchdog) and a
// black box (the flight recorder); this subscribes to the pager — and
// to contained worker panics and shared-pool breaches — and on trigger
// assembles everything an operator needs to answer the page into one
// fimserve-incident/v1 bundle: the flight dump, a pair of /metrics
// scrapes bracketing the lead-up, the continuous profiler's CPU window
// covering it, a goroutine dump, a heap profile, and the SLO window
// state. Bundles are cooldown rate-limited (an incident storm produces
// one bundle, not a bundle storm), held in a ring at
// GET /debug/incidents, and optionally persisted to -incident-dir.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/obs/metrics"
	"repro/internal/obs/prof"
)

// incidentSchema versions the bundle format.
const incidentSchema = "fimserve-incident/v1"

// Incident trigger reasons.
const (
	// IncidentSLOWarn / IncidentSLOPage: the SLO watchdog transitioned
	// up into warn / page.
	IncidentSLOWarn = "slo-warn"
	IncidentSLOPage = "slo-page"
	// IncidentWorkerPanic: a mining worker panicked (contained to its
	// run, but a bug worth a diagnosis bundle).
	IncidentWorkerPanic = "worker-panic"
	// IncidentPoolBreach: a run was stopped by the machine-wide shared
	// memory pool — the paper's §V-A footprint wall, hit in production.
	IncidentPoolBreach = "pool-breach"
)

// IncidentBundle is one captured incident: everything assembled at
// trigger time. Profile fields are pprof protobuf bytes (gzipped, as
// the runtime writes them; base64 in JSON).
type IncidentBundle struct {
	Schema          string `json:"schema"`
	ID              int64  `json:"id"`
	Reason          string `json:"reason"`
	Detail          string `json:"detail,omitempty"`
	RunID           int64  `json:"run_id,omitempty"` // offending run, when attributable
	GeneratedUnixNS int64  `json:"generated_unix_ns"`

	SLO    SLOStatus  `json:"slo"`
	Flight FlightDump `json:"flight"`

	// MetricsBefore is the engine's periodic background scrape (the last
	// one before the trigger); MetricsAt is rendered at trigger time.
	// Together they bracket the lead-up, and every counter must be
	// monotone between them.
	MetricsBefore string `json:"metrics_before"`
	MetricsAt     string `json:"metrics_at"`

	// CPUProfile is the continuous profiler's window covering the
	// trigger (cut short at trigger time). Empty when the profiler was
	// disabled (ProfilerDisabled) or its windows were skipped because
	// another holder had the process profiler (ProfilerSkipped counts).
	CPUProfile            []byte `json:"cpu_profile,omitempty"`
	CPUProfileStartUnixNS int64  `json:"cpu_profile_start_unix_ns,omitempty"`
	CPUProfileEndUnixNS   int64  `json:"cpu_profile_end_unix_ns,omitempty"`
	ProfilerSkipped       int64  `json:"profiler_skipped_windows,omitempty"`
	ProfilerDisabled      bool   `json:"profiler_disabled,omitempty"`

	Goroutines  string `json:"goroutines"`
	HeapProfile []byte `json:"heap_profile,omitempty"`
}

// IncidentSummary is the /debug/incidents list entry.
type IncidentSummary struct {
	ID              int64  `json:"id"`
	Reason          string `json:"reason"`
	Detail          string `json:"detail,omitempty"`
	RunID           int64  `json:"run_id,omitempty"`
	GeneratedUnixNS int64  `json:"generated_unix_ns"`
	SLOState        string `json:"slo_state"`
}

// incidentEngine subscribes to the server's failure signals and turns
// them into bundles. now is injectable for tests.
type incidentEngine struct {
	s        *Server
	cooldown time.Duration
	dir      string
	now      func() time.Time

	mu     sync.Mutex
	ring   []IncidentBundle
	next   int
	full   bool
	nextID int64
	lastAt time.Time

	// The background scrape cache: MetricsBefore for the next bundle.
	scrapeMu   sync.Mutex
	lastScrape string
}

func newIncidentEngine(s *Server, cooldown time.Duration, ring int, dir string) *incidentEngine {
	return &incidentEngine{
		s:        s,
		cooldown: cooldown,
		dir:      dir,
		now:      time.Now,
		ring:     make([]IncidentBundle, ring),
	}
}

// run is the engine's background goroutine: it refreshes the
// MetricsBefore scrape cache every 30s (and once at start) so a
// trigger always has a recent "before" to pair with its "at".
func (e *incidentEngine) run(stop <-chan struct{}) {
	e.snapshotScrape()
	t := time.NewTicker(30 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			e.snapshotScrape()
		}
	}
}

func (e *incidentEngine) snapshotScrape() {
	var buf bytes.Buffer
	if err := e.s.met.reg.WriteText(&buf); err != nil {
		return
	}
	e.scrapeMu.Lock()
	e.lastScrape = buf.String()
	e.scrapeMu.Unlock()
}

// trigger fires one incident: if the cooldown allows, assemble and file
// a bundle; otherwise count the suppression. runID is the offending run
// when the trigger is attributable to one (panic, pool breach), zero
// for service-level triggers (SLO transitions).
func (e *incidentEngine) trigger(reason, detail string, runID int64) {
	now := e.now()
	e.mu.Lock()
	if !e.lastAt.IsZero() && now.Sub(e.lastAt) < e.cooldown {
		e.mu.Unlock()
		e.s.met.incidentsSuppressed.Inc()
		return
	}
	// Reserve the slot before the (slow) assembly so concurrent triggers
	// in the same storm are suppressed, not queued.
	e.lastAt = now
	e.nextID++
	id := e.nextID
	e.mu.Unlock()

	b := e.assemble(id, reason, detail, runID, now)

	e.mu.Lock()
	e.ring[e.next] = b
	e.next++
	if e.next == len(e.ring) {
		e.next, e.full = 0, true
	}
	e.mu.Unlock()

	e.s.met.incidents.With(reason).Inc()
	if e.dir != "" {
		e.persist(b)
	}
}

// assemble captures the bundle contents at trigger time.
func (e *incidentEngine) assemble(id int64, reason, detail string, runID int64, now time.Time) IncidentBundle {
	b := IncidentBundle{
		Schema:          incidentSchema,
		ID:              id,
		Reason:          reason,
		Detail:          detail,
		RunID:           runID,
		GeneratedUnixNS: now.UnixNano(),
		SLO:             e.s.slo.current(),
		Flight:          e.s.flight.dump("incident"),
		Goroutines:      string(prof.GoroutineDump()),
	}
	var buf bytes.Buffer
	if err := e.s.met.reg.WriteText(&buf); err == nil {
		b.MetricsAt = buf.String()
	}
	e.scrapeMu.Lock()
	b.MetricsBefore = e.lastScrape
	e.scrapeMu.Unlock()
	if b.MetricsBefore == "" {
		// No background scrape yet: pair the trigger scrape with itself
		// (trivially monotone) rather than shipping an unpaired bundle.
		b.MetricsBefore = b.MetricsAt
	}
	if e.s.prof != nil {
		if w, ok := e.s.prof.Cut(); ok {
			b.CPUProfile = w.Profile
			b.CPUProfileStartUnixNS = w.StartUnixNS
			b.CPUProfileEndUnixNS = w.EndUnixNS
		}
		b.ProfilerSkipped = e.s.prof.Skipped()
	} else {
		b.ProfilerDisabled = true
	}
	if hp, err := prof.HeapProfile(); err == nil {
		b.HeapProfile = hp
	}
	return b
}

// persist writes the bundle to <dir>/incident-<id>.json.
func (e *incidentEngine) persist(b IncidentBundle) {
	if err := os.MkdirAll(e.dir, 0o755); err != nil {
		return
	}
	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		return
	}
	path := filepath.Join(e.dir, fmt.Sprintf("incident-%d.json", b.ID))
	_ = os.WriteFile(path, append(data, '\n'), 0o644)
}

// list snapshots the retained bundles' summaries, oldest first.
func (e *incidentEngine) list() []IncidentSummary {
	e.mu.Lock()
	defer e.mu.Unlock()
	bs := unring(e.ring, e.next, e.full, func(b IncidentBundle) bool { return b.ID == 0 })
	out := make([]IncidentSummary, len(bs))
	for i, b := range bs {
		out[i] = IncidentSummary{
			ID: b.ID, Reason: b.Reason, Detail: b.Detail, RunID: b.RunID,
			GeneratedUnixNS: b.GeneratedUnixNS, SLOState: b.SLO.State,
		}
	}
	return out
}

// get returns a retained bundle by ID.
func (e *incidentEngine) get(id int64) (IncidentBundle, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.ring {
		if e.ring[i].ID == id {
			return e.ring[i], true
		}
	}
	return IncidentBundle{}, false
}

// count returns how many bundles have been captured (not suppressed).
func (e *incidentEngine) count() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.nextID
}

// incidentReasons is the closed set ValidateIncident accepts.
var incidentReasons = map[string]bool{
	IncidentSLOWarn: true, IncidentSLOPage: true,
	IncidentWorkerPanic: true, IncidentPoolBreach: true,
}

// ValidateIncident checks a bundle's schema and internal consistency —
// the obsvalidate -incident class. It verifies the envelope, the flight
// dump, that both metrics scrapes parse and validate with every counter
// monotone from before to at, that the goroutine dump is a goroutine
// dump, and that the CPU and heap profiles parse as pprof protobufs
// (the CPU profile may only be absent when the profiler was disabled
// or reported skipped windows).
func ValidateIncident(b IncidentBundle) error {
	if b.Schema != incidentSchema {
		return fmt.Errorf("schema %q, want %q", b.Schema, incidentSchema)
	}
	if b.ID < 1 {
		return fmt.Errorf("bad incident id %d", b.ID)
	}
	if !incidentReasons[b.Reason] {
		return fmt.Errorf("unknown incident reason %q", b.Reason)
	}
	if b.GeneratedUnixNS <= 0 {
		return errors.New("missing generated_unix_ns")
	}
	if b.Flight.Schema != flightSchema {
		return fmt.Errorf("flight dump schema %q, want %q", b.Flight.Schema, flightSchema)
	}
	if b.Flight.Reason != "incident" {
		return fmt.Errorf("flight dump reason %q, want %q", b.Flight.Reason, "incident")
	}
	before, err := metrics.ParseText(strings.NewReader(b.MetricsBefore))
	if err != nil {
		return fmt.Errorf("metrics_before: %w", err)
	}
	if err := before.Validate(); err != nil {
		return fmt.Errorf("metrics_before: %w", err)
	}
	at, err := metrics.ParseText(strings.NewReader(b.MetricsAt))
	if err != nil {
		return fmt.Errorf("metrics_at: %w", err)
	}
	if err := at.Validate(); err != nil {
		return fmt.Errorf("metrics_at: %w", err)
	}
	if err := metrics.CheckMonotonic(before, at); err != nil {
		return fmt.Errorf("metrics_before → metrics_at: %w", err)
	}
	if !strings.Contains(b.Goroutines, "goroutine ") {
		return errors.New("goroutines field is not a goroutine dump")
	}
	if len(b.CPUProfile) > 0 {
		if err := prof.CheckProfile(b.CPUProfile); err != nil {
			return fmt.Errorf("cpu_profile: %w", err)
		}
		if b.CPUProfileEndUnixNS < b.CPUProfileStartUnixNS || b.CPUProfileStartUnixNS <= 0 {
			return fmt.Errorf("cpu_profile window [%d, %d] not sane",
				b.CPUProfileStartUnixNS, b.CPUProfileEndUnixNS)
		}
	} else if b.ProfilerSkipped == 0 && !b.ProfilerDisabled {
		return errors.New("no cpu_profile, and neither skipped windows nor a disabled profiler to explain it")
	}
	if len(b.HeapProfile) > 0 {
		if err := prof.CheckProfile(b.HeapProfile); err != nil {
			return fmt.Errorf("heap_profile: %w", err)
		}
	}
	return nil
}
