package serve

import (
	"time"

	fim "repro"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
)

// Admission outcome labels, shared by the global admission counter, the
// per-tenant series, and /stats. Every /mine request ends in exactly
// one of these.
const (
	outcomeAdmitted   = "admitted"         // took a worker slot and ran
	outcomeShed       = "shed"             // bounded queue full: 429
	outcomeQuota      = "quota"            // per-tenant cap: 429
	outcomeCoalesced  = "coalesced"        // single-flight follower
	outcomeCacheHit   = "cache_hit"        // exact-threshold cache answer
	outcomeFiltered   = "cache_filter_hit" // lower-minsup entry filtered up
	outcomeAbandoned  = "abandoned"        // client gone / drain while queued
	outcomeDrained    = "drain_rejected"   // 503, server draining
	outcomeBadRequest = "bad_request"      // failed validation, never queued
)

// Histogram bounds. Queue waits are short (a slot frees in one run
// time); run wall and request latency share the general latency scale.
var (
	queueWaitBuckets = []float64{.0005, .001, .005, .01, .05, .1, .5, 1, 5, 10, 30}
	imbalanceBuckets = []float64{1.02, 1.05, 1.1, 1.2, 1.5, 2, 3, 5, 10}
)

// serverMetrics is the serving stack's instrument panel, all registered
// on one per-Server registry served at GET /metrics. The /stats
// endpoint reads the same instruments (stats()), so the two views can
// never disagree.
type serverMetrics struct {
	reg *metrics.Registry

	admission *metrics.CounterVec // fimserve_admission_total{outcome}
	tenant    *metrics.CounterVec // fimserve_tenant_requests_total{tenant,outcome}
	panics    *metrics.Counter    // fimserve_worker_panics_total
	stops     *metrics.CounterVec // fimserve_run_stops_total{reason}

	queueWait  *metrics.Histogram // fimserve_queue_wait_seconds
	runWall    *metrics.Histogram // fimserve_run_wall_seconds
	requestDur *metrics.Histogram // fimserve_request_seconds

	kernel    *metrics.CounterVec // fimserve_kernel_ops_total{op}
	imbalance *metrics.Histogram  // fimserve_sched_imbalance

	sloState *metrics.Gauge    // fimserve_slo_state
	sloBurn  *metrics.GaugeVec // fimserve_slo_burn_rate{slo,window}

	flightSampled *metrics.Counter // fimserve_flight_traces_sampled_total

	incidents           *metrics.CounterVec // fimserve_incidents_total{reason}
	incidentsSuppressed *metrics.Counter    // fimserve_incidents_suppressed_total
}

// newServerMetrics registers the serving stack's families. tenantCap
// bounds the per-tenant label cardinality; past it new tenants fold
// into tenant="other".
func newServerMetrics(s *Server, tenantCap int) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{reg: reg}

	m.admission = reg.CounterVec("fimserve_admission_total",
		"Terminal admission-ladder outcomes of /mine requests.", "outcome")
	for _, o := range []string{outcomeAdmitted, outcomeShed, outcomeQuota,
		outcomeCoalesced, outcomeCacheHit, outcomeFiltered, outcomeAbandoned,
		outcomeDrained, outcomeBadRequest} {
		m.admission.With(o) // materialize now: scrapes differ only in values
	}
	reg.SetSeriesCap(tenantCap)
	m.tenant = reg.CounterVec("fimserve_tenant_requests_total",
		"Per-tenant admission outcomes; overflow tenants fold into \"other\".",
		"tenant", "outcome").Fold("tenant")
	reg.SetSeriesCap(0)
	m.panics = reg.Counter("fimserve_worker_panics_total",
		"Worker panics contained to their run (the 500s).")
	m.stops = reg.CounterVec("fimserve_run_stops_total",
		"Classified stop causes of incomplete runs.", "reason")

	m.queueWait = reg.Histogram("fimserve_queue_wait_seconds",
		"Wait between entering the admission queue and taking a worker slot.",
		queueWaitBuckets)
	m.runWall = reg.Histogram("fimserve_run_wall_seconds",
		"Mining wall time of admitted runs.", nil)
	m.requestDur = reg.Histogram("fimserve_request_seconds",
		"End-to-end /mine latency including queueing, for every terminal outcome.", nil)

	m.kernel = reg.CounterVec("fimserve_kernel_ops_total",
		"Kernel-operation roll-ups from exclusively attributed runs (internal/kcount wire names).",
		"op")
	m.imbalance = reg.Histogram("fimserve_sched_imbalance",
		"Per-scheduler-loop max/mean busy-time imbalance across all runs.",
		imbalanceBuckets)

	m.sloState = reg.Gauge("fimserve_slo_state",
		"SLO watchdog state: 0 ok, 1 warn, 2 page.")
	m.sloBurn = reg.GaugeVec("fimserve_slo_burn_rate",
		"Error-budget burn rate x1000 per SLO and window.", "slo", "window")

	m.flightSampled = reg.Counter("fimserve_flight_traces_sampled_total",
		"Runs that carried a sampled flight-recorder trace timeline.")

	m.incidents = reg.CounterVec("fimserve_incidents_total",
		"Incident bundles captured, by trigger reason.", "reason")
	m.incidentsSuppressed = reg.Counter("fimserve_incidents_suppressed_total",
		"Incident triggers suppressed by the cooldown.")

	registerHealthGauges(reg)
	registerBuildInfo(reg)

	// Live gauges read their owners at scrape time — the same sources
	// /stats and /readyz report.
	reg.GaugeFunc("fimserve_pool_used_bytes",
		"Shared live-payload pool bytes in use across all runs.",
		func() float64 { return float64(s.pool.Used()) })
	reg.GaugeFunc("fimserve_pool_peak_bytes",
		"Shared pool high-water mark.",
		func() float64 { return float64(s.pool.Peak()) })
	reg.GaugeFunc("fimserve_pool_cap_bytes",
		"Shared pool capacity.",
		func() float64 { return float64(s.pool.Cap()) })
	reg.CounterFunc("fimserve_pool_breaches_total",
		"Runs stopped by a shared-pool capacity breach.",
		func() float64 { return float64(s.pool.Breaches()) })
	reg.GaugeFunc("fimserve_queue_depth",
		"Admission queue occupancy.",
		func() float64 { return float64(s.adm.queueLen()) })
	reg.GaugeFunc("fimserve_running",
		"Mining runs currently holding a worker slot.",
		func() float64 { return float64(s.adm.runningLen()) })
	reg.GaugeFunc("fimserve_draining",
		"1 while the server is draining.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	return m
}

// outcome records one terminal admission outcome for tenant.
func (m *serverMetrics) outcome(tenant, outcome string) {
	m.admission.With(outcome).Inc()
	m.tenant.With(tenant, outcome).Inc()
}

// eventTap is the Observer leg that folds a run's event stream into
// the service time series: scheduler imbalance per loop, and kernel
// counter roll-ups when the run's delta was exclusively attributable
// (overlapping instrumented runs drop the kernel_counters event
// upstream, so the roll-up only ever sums clean deltas).
type eventTap struct{ m *serverMetrics }

func (t *eventTap) Event(e obs.Event) {
	switch e.Type {
	case obs.PhaseEnd:
		if e.Imbalance > 0 {
			t.m.imbalance.Observe(e.Imbalance)
		}
	case obs.KernelCounters:
		for op, v := range e.Counters {
			t.m.kernel.With(op).Add(v)
		}
	}
}

// tap returns the observer leg runs attach next to their Broadcast.
func (m *serverMetrics) tap() fim.Observer { return &eventTap{m} }

// observeRun records an admitted run's terminal timings and stop cause.
func (m *serverMetrics) observeRun(wall time.Duration, stopReason string) {
	m.runWall.Observe(wall.Seconds())
	if stopReason != "" {
		m.stops.With(stopReason).Inc()
	}
}

// cacheMetrics is the result cache's view of the registry: the cache
// increments these directly, so /metrics and cache.stats() (hence
// /stats) are the same atomics and can never disagree.
type cacheMetrics struct {
	hits      *metrics.Counter // fimserve_cache_requests_total{outcome="hit"}
	filtered  *metrics.Counter // ...{outcome="filter_hit"}
	misses    *metrics.Counter // ...{outcome="miss"}
	evictions *metrics.Counter // fimserve_cache_evictions_total
	bytes     *metrics.Gauge   // fimserve_cache_bytes
}

func newCacheMetrics(reg *metrics.Registry) *cacheMetrics {
	reqs := reg.CounterVec("fimserve_cache_requests_total",
		"Result-cache lookups by outcome (hit, filter_hit, miss).", "outcome")
	return &cacheMetrics{
		hits:     reqs.With("hit"),
		filtered: reqs.With("filter_hit"),
		misses:   reqs.With("miss"),
		evictions: reg.Counter("fimserve_cache_evictions_total",
			"Result-cache entries evicted by the cost budget."),
		bytes: reg.Gauge("fimserve_cache_bytes",
			"Result-cache payload bytes currently held."),
	}
}
