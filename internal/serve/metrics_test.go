package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	fim "repro"
	"repro/internal/obs/export"
	"repro/internal/obs/metrics"
)

// scrape fetches and parses the /metrics exposition.
func scrape(t *testing.T, url string) *metrics.Scrape {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.TextContentType {
		t.Fatalf("content type %q, want %q", ct, metrics.TextContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := metrics.ParseText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("parsing exposition: %v\n%s", err, body)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	return sc
}

// TestMetricsEndpoint: mining traffic shows up in /metrics as a valid,
// monotone exposition — admission outcomes, run histograms, pool gauges
// — and a second scrape never goes backwards.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantSeries: 2})

	if resp, _ := postMine(t, ts, "abssup=2", uploadFIMI, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("mine failed: %d", resp.StatusCode)
	}
	first := scrape(t, ts.URL)

	if v, ok := first.Value("fimserve_admission_total", map[string]string{"outcome": "admitted"}); !ok || v != 1 {
		t.Fatalf("admitted counter = %v, %v; want 1", v, ok)
	}
	if v, ok := first.Value("fimserve_run_wall_seconds_count", nil); !ok || v != 1 {
		t.Fatalf("run wall count = %v, %v; want 1", v, ok)
	}
	if v, ok := first.Value("fimserve_queue_wait_seconds_count", nil); !ok || v != 1 {
		t.Fatalf("queue wait count = %v, %v; want 1", v, ok)
	}
	if _, ok := first.Value("fimserve_pool_cap_bytes", nil); !ok {
		t.Fatal("pool cap gauge missing")
	}
	// The run's scheduler loops fed the imbalance histogram through the
	// event tap.
	if v, ok := first.Value("fimserve_sched_imbalance_count", nil); !ok || v < 1 {
		t.Fatalf("imbalance observations = %v, %v; want >= 1", v, ok)
	}

	// More traffic between scrapes: a cache hit and two new tenants past
	// the series cap.
	postMine(t, ts, "abssup=2", uploadFIMI, nil) // cache hit
	postMine(t, ts, "abssup=3", uploadFIMI, map[string]string{"X-Tenant": "t-b"})
	postMine(t, ts, "abssup=4", uploadFIMI, map[string]string{"X-Tenant": "t-c"})

	second := scrape(t, ts.URL)
	if err := metrics.CheckMonotonic(first, second); err != nil {
		t.Fatalf("counters went backwards between scrapes: %v", err)
	}
	if v, ok := second.Value("fimserve_cache_requests_total", map[string]string{"outcome": "hit"}); !ok || v != 1 {
		t.Fatalf("cache hit counter = %v, %v; want 1", v, ok)
	}
	// TenantSeries=2: "anon" and "t-b" tuples materialize first;
	// "t-c" arrives past the cap and folds into tenant="other".
	sum := func(sc *metrics.Scrape, tenant string) (total float64) {
		for _, s := range sc.Samples("fimserve_tenant_requests_total") {
			if s.Labels["tenant"] == tenant {
				total += s.Value
			}
		}
		return
	}
	if got := sum(second, metrics.FoldValue); got == 0 {
		t.Fatalf("no folded tenant series; tenants: %v", second.Samples("fimserve_tenant_requests_total"))
	}
}

// TestStatsMatchesMetrics: /stats is a projection of the same registry
// /metrics renders — after arbitrary traffic the two agree exactly.
func TestStatsMatchesMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	postMine(t, ts, "abssup=2", uploadFIMI, nil)
	postMine(t, ts, "abssup=2", uploadFIMI, nil) // cache hit
	postMine(t, ts, "abssup=3", uploadFIMI, nil) // filtered hit
	postMine(t, ts, "", uploadFIMI, nil)         // bad request (no support)

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	sc := scrape(t, ts.URL)

	checks := []struct {
		name   string
		labels map[string]string
		want   int64
	}{
		{"fimserve_admission_total", map[string]string{"outcome": "admitted"}, st.Admitted},
		{"fimserve_admission_total", map[string]string{"outcome": "shed"}, st.Shed},
		{"fimserve_admission_total", map[string]string{"outcome": "quota"}, st.QuotaRejected},
		{"fimserve_admission_total", map[string]string{"outcome": "coalesced"}, st.Deduplicated},
		{"fimserve_worker_panics_total", nil, st.WorkerPanics},
		{"fimserve_cache_requests_total", map[string]string{"outcome": "hit"}, st.CacheHits},
		{"fimserve_cache_requests_total", map[string]string{"outcome": "filter_hit"}, st.CacheFiltered},
		{"fimserve_cache_requests_total", map[string]string{"outcome": "miss"}, st.CacheMisses},
		{"fimserve_cache_bytes", nil, st.CacheBytes},
		{"fimserve_cache_evictions_total", nil, st.CacheEvictions},
		{"fimserve_pool_breaches_total", nil, st.PoolBreaches},
		{"fimserve_pool_cap_bytes", nil, st.PoolCap},
	}
	for _, c := range checks {
		v, ok := sc.Value(c.name, c.labels)
		if !ok || int64(v) != c.want {
			t.Errorf("%s%v: metrics %v (ok=%v), stats %d", c.name, c.labels, v, ok, c.want)
		}
	}
}

// TestRunCorrelationID: the registry run ID flows into the response,
// the run record, and every event on the SSE replay stream.
func TestRunCorrelationID(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, mr := postMine(t, ts, "abssup=2", uploadFIMI, nil)
	if resp.StatusCode != http.StatusOK || mr.RunID == 0 {
		t.Fatalf("mine: status %d, run_id %d", resp.StatusCode, mr.RunID)
	}

	ev, err := http.Get(fmt.Sprintf("%s/runs/%d/events", ts.URL, mr.RunID))
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Body.Close()
	body, err := io.ReadAll(ev.Body) // run finished: replay then EOF
	if err != nil {
		t.Fatal(err)
	}
	tag := fmt.Sprintf(`"run_id":%d`, mr.RunID)
	events := 0
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "data: {") {
			continue
		}
		events++
		if !strings.Contains(line, tag) {
			t.Fatalf("event without run correlation id %d: %s", mr.RunID, line)
		}
	}
	if events == 0 {
		t.Fatalf("no events replayed:\n%s", body)
	}
}

// TestFlightRecorder: terminal runs and sampled timelines land in the
// ring, /debug/flight serves the dump, and drain writes it to disk.
func TestFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.json")
	s, ts := newTestServer(t, Config{FlightSampleEvery: 1, FlightPath: path})

	postMine(t, ts, "abssup=2", uploadFIMI, nil)
	// A different algorithm misses the cache, so a second run executes.
	postMine(t, ts, "abssup=2&algo=apriori", uploadFIMI, map[string]string{"X-Tenant": "t-b"})

	var fd FlightDump
	getJSON(t, ts.URL+"/debug/flight", &fd)
	if fd.Schema != flightSchema || fd.Reason != "request" {
		t.Fatalf("dump header = %+v", fd)
	}
	if len(fd.Runs) != 2 {
		t.Fatalf("dump holds %d runs, want 2: %+v", len(fd.Runs), fd.Runs)
	}
	if len(fd.Traces) != 2 {
		t.Fatalf("dump holds %d traces, want 2 (sample every 1)", len(fd.Traces))
	}
	for _, tr := range fd.Traces {
		if tr.RunID == 0 || len(tr.Spans) == 0 {
			t.Fatalf("empty sampled trace: %+v", tr)
		}
		found := false
		for _, ri := range fd.Runs {
			if ri.ID == tr.RunID {
				found = true
			}
		}
		if !found {
			t.Fatalf("trace run %d not among dumped runs", tr.RunID)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("drain did not write the flight dump: %v", err)
	}
	if !strings.Contains(string(b), flightSchema) || !strings.Contains(string(b), `"reason": "drain"`) {
		t.Fatalf("drain dump missing schema/reason:\n%.400s", b)
	}
}

// TestFlightRingBounds: the run ring holds only the last N records.
func TestFlightRingBounds(t *testing.T) {
	f := newFlightRecorder(3, 2, 1)
	for i := 1; i <= 5; i++ {
		f.record(RunInfo{ID: int64(i)})
	}
	d := f.dump("request")
	if len(d.Runs) != 3 || d.Runs[0].ID != 3 || d.Runs[2].ID != 5 {
		t.Fatalf("ring contents = %+v, want runs 3..5 oldest first", d.Runs)
	}
}

// TestSLOWatchdog: deterministic burn-rate evaluation with an injected
// clock — healthy traffic is ok, a sustained shed burst pages once both
// windows burn, and recovery returns to ok as the windows drain.
func TestSLOWatchdog(t *testing.T) {
	w := newSLOWatchdog(SLOConfig{
		ShedBudget:       0.1,
		LatencyObjective: time.Second,
		LatencyBudget:    0.1,
		ShortWindow:      5 * time.Second,
		LongWindow:       50 * time.Second,
		WarnBurn:         2,
		PageBurn:         5,
	})
	var sec int64
	w.now = func() time.Time { return time.Unix(sec, 0) }

	// 60s of healthy traffic: 10 admitted fast runs per second.
	for ; sec < 60; sec++ {
		for i := 0; i < 10; i++ {
			w.record(outcomeAdmitted, true, 10*time.Millisecond)
		}
	}
	if st, code := w.evaluate(); code != sloOK {
		t.Fatalf("healthy traffic judged %q: %+v", st.State, st)
	}

	// Sustained overload: every request shed. Shed fraction 1.0 against
	// a 0.1 budget is burn 10 — past PageBurn once the long window (50s)
	// is mostly bad.
	for ; sec < 120; sec++ {
		for i := 0; i < 10; i++ {
			w.record(outcomeShed, false, 0)
		}
	}
	st, code := w.evaluate()
	if code != sloPage {
		t.Fatalf("sustained shedding judged %q (want page): %+v", st.State, st)
	}
	if st.ShedBurnShort < 5 || st.ShedBurnLong < 5 {
		t.Fatalf("burns under page threshold: %+v", st)
	}

	// Recovery: the short window clears first (warn or ok), and after a
	// full long window of health the state is ok again.
	for ; sec < 180; sec++ {
		for i := 0; i < 10; i++ {
			w.record(outcomeAdmitted, true, 10*time.Millisecond)
		}
	}
	if st, code := w.evaluate(); code != sloOK {
		t.Fatalf("recovered traffic judged %q: %+v", st.State, st)
	}

	// Latency SLO: admitted runs over the objective burn its budget even
	// with zero shedding.
	for ; sec < 240; sec++ {
		for i := 0; i < 10; i++ {
			w.record(outcomeAdmitted, true, 2*time.Second)
		}
	}
	st, code = w.evaluate()
	if code != sloPage || st.LatencyBurnShort < 5 {
		t.Fatalf("slow runs judged %q (want page): %+v", st.State, st)
	}
}

// TestSLOSurfaced: the watchdog's state appears in /stats and /readyz
// without gating readiness.
func TestSLOSurfaced(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.SLO.State != "ok" {
		t.Fatalf("idle server SLO state %q, want ok", st.SLO.State)
	}
	var rd struct {
		Ready bool      `json:"ready"`
		SLO   SLOStatus `json:"slo"`
	}
	if resp := getJSON(t, ts.URL+"/readyz", &rd); resp.StatusCode != http.StatusOK || !rd.Ready || rd.SLO.State != "ok" {
		t.Fatalf("readyz = %+v", rd)
	}
}

// TestMetricsOverhead is the CI overhead gate: with FIMSERVE_OVERHEAD_GATE=1
// it asserts the metrics event tap costs < 2% wall time on a real
// mining cell. Reps interleave base and tapped runs (min of 5 each) so
// slow machine-state drift — thermal throttling, GC heap growth — lands
// on both sides instead of biasing whichever config runs second.
func TestMetricsOverhead(t *testing.T) {
	if os.Getenv("FIMSERVE_OVERHEAD_GATE") == "" {
		t.Skip("set FIMSERVE_OVERHEAD_GATE=1 to run the overhead gate")
	}
	db, err := fim.Dataset("mushroom", 1)
	if err != nil {
		t.Fatal(err)
	}
	// ProfileWindow -1: this gate isolates the event tap's cost; the
	// continuous profiler has its own gate (prof.TestProfilerOverhead).
	s := New(Config{ProfileWindow: -1})
	// Support 0.2 makes each rep a ~2s mine: long enough that the tap's
	// per-event cost is measurable against it, short enough that 10 reps
	// fit a CI step.
	abs := db.AbsoluteSupport(0.2)

	mineOnce := func(rep int, tapped bool) time.Duration {
		bc := export.NewBroadcast(0)
		opt := fim.Options{Algorithm: fim.Eclat, Workers: 2, Observer: bc}
		if tapped {
			opt.Observer = fim.MultiObserver(bc, s.met.tap())
			opt.RunID = int64(rep + 1)
		}
		start := time.Now()
		if _, err := fim.MineAbsolute(db, abs, opt); err != nil {
			t.Fatal(err)
		}
		d := time.Since(start)
		bc.CloseStream()
		return d
	}

	best := func(a, b time.Duration) time.Duration {
		if b < a {
			return b
		}
		return a
	}
	base, tapped := time.Duration(1<<63-1), time.Duration(1<<63-1)
	for rep := 0; rep < 5; rep++ {
		// Alternate which config goes first within the pair, too.
		if rep%2 == 0 {
			base = best(base, mineOnce(rep, false))
			tapped = best(tapped, mineOnce(rep, true))
		} else {
			tapped = best(tapped, mineOnce(rep, true))
			base = best(base, mineOnce(rep, false))
		}
	}
	ratio := float64(tapped) / float64(base)
	t.Logf("base %v, tapped %v, ratio %.4f", base, tapped, ratio)
	if ratio > 1.02 {
		t.Fatalf("metrics tap overhead %.2f%% exceeds the 2%% gate (base %v, tapped %v)",
			(ratio-1)*100, base, tapped)
	}
}
