// Package serve is the multi-tenant mining service: a long-running HTTP
// daemon that accepts mining requests — a named built-in dataset or a
// FIMI upload, with minsup, algorithm and representation — runs them
// concurrently on a shared bounded worker pool, and streams results and
// progress.
//
// The robustness spine is the point (the paper's premise is one big
// shared-memory machine serving many workloads, and service users won't
// tune knobs): every request descends an admission ladder whose rungs
// each degrade instead of dying —
//
//	cache    — answered from a previous run (possibly a lower-minsup
//	           run filtered up), costing no capacity at all;
//	queue    — a bounded admission queue; when full the request is
//	           shed with 429 + Retry-After instead of growing an
//	           unbounded backlog;
//	quota    — per-tenant in-flight caps so one tenant cannot occupy
//	           the whole machine;
//	budget   — per-request deadlines and memory caps mapped onto
//	           runctl budgets, plus one machine-wide shared memory
//	           pool (runctl.Pool) across all concurrent runs;
//	degrade  — budget breaches end runs with partial results and a
//	           classified StopReason; worker panics are contained to
//	           the one injured run (500) while other tenants' runs
//	           complete untouched.
//
// Graceful drain (SIGTERM) stops admitting, lets in-flight runs finish
// for a grace period, then budget-stops the stragglers so every request
// ends in a result or a classified stop — never a crash.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	fim "repro"
	"repro/internal/dataset"
	"repro/internal/obs/prof"
)

// Config tunes the service. The zero value is unusable; fill what you
// need and let withDefaults supply the rest — the defaults are chosen
// so an untuned daemon degrades safely under overload.
type Config struct {
	// Workers is the number of mining runs executing concurrently (the
	// shared worker-pool width). Default 2.
	Workers int
	// QueueDepth is the admission queue capacity beyond the running
	// slots; request Workers+QueueDepth+1 and the last one is shed with
	// 429. Default 8.
	QueueDepth int
	// PerTenant caps one tenant's in-flight (queued + running)
	// requests. Default 4.
	PerTenant int
	// MineWorkers is the per-run worker team size. Default 2.
	MineWorkers int
	// MaxRunMemory caps any single run's live payload bytes; a request
	// may ask for less, never more. Default 256 MiB.
	MaxRunMemory int64
	// GlobalMemory is the machine-wide shared live-payload budget
	// across all concurrent runs (runctl.Pool). Default 1 GiB.
	GlobalMemory int64
	// MaxRunDuration caps any single run's wall clock; requests may ask
	// for less. Default 60s.
	MaxRunDuration time.Duration
	// MaxUploadBytes caps a FIMI upload body. Default 16 MiB.
	MaxUploadBytes int64
	// UploadLimits bounds what an upload may parse into. Defaults:
	// 1 MiB lines, 1e6 transactions, 5e7 total items.
	UploadLimits dataset.Limits
	// CacheBytes is the result cache's cost budget. Default 64 MiB;
	// negative disables caching.
	CacheBytes int64
	// RecentRuns is how many finished runs /runs remembers. Default 64.
	RecentRuns int
	// ReadyMemFrac is the shared-pool fill fraction past which /readyz
	// reports not-ready. Default 0.9.
	ReadyMemFrac float64
	// DrainGrace is how long Drain lets in-flight runs finish before
	// budget-stopping them. Default 10s.
	DrainGrace time.Duration
	// TenantSeries caps the distinct tenant label values in /metrics;
	// past it new tenants fold into tenant="other". Default 32.
	TenantSeries int
	// FlightRuns and FlightTraces size the flight recorder's rings of
	// terminal run records and sampled span timelines. Defaults 128
	// and 4.
	FlightRuns, FlightTraces int
	// FlightSampleEvery attaches a span recorder to every n-th admitted
	// run for the flight recorder's timeline ring. Default 8.
	FlightSampleEvery int
	// FlightPath, when non-empty, is where the flight recorder dumps on
	// drain (and <FlightPath>.panic on a contained worker panic). The
	// dump is always available at /debug/flight regardless.
	FlightPath string
	// SLO tunes the burn-rate watchdog; zero fields get defaults.
	SLO SLOConfig
	// ProfileWindow is the continuous profiler's window length (one CPU
	// profile per window, ProfileRing retained). Default 60s; negative
	// disables the profiler (incident bundles then ship without a CPU
	// profile).
	ProfileWindow time.Duration
	// ProfileRing is how many completed profile windows are retained.
	// Default 4.
	ProfileRing int
	// IncidentCooldown is the minimum spacing between incident bundles;
	// triggers inside it are counted as suppressed, not captured — an
	// incident storm produces one bundle. Default 5m.
	IncidentCooldown time.Duration
	// IncidentRing is how many incident bundles /debug/incidents
	// retains. Default 16.
	IncidentRing int
	// IncidentDir, when non-empty, persists each bundle to
	// <dir>/incident-<id>.json as it is captured.
	IncidentDir string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.PerTenant <= 0 {
		c.PerTenant = 4
	}
	if c.MineWorkers <= 0 {
		c.MineWorkers = 2
	}
	if c.MaxRunMemory <= 0 {
		c.MaxRunMemory = 256 << 20
	}
	if c.GlobalMemory <= 0 {
		c.GlobalMemory = 1 << 30
	}
	if c.MaxRunDuration <= 0 {
		c.MaxRunDuration = 60 * time.Second
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 16 << 20
	}
	if c.UploadLimits == (dataset.Limits{}) {
		c.UploadLimits = dataset.Limits{
			MaxLineBytes:    1 << 20,
			MaxTransactions: 1_000_000,
			MaxTotalItems:   50_000_000,
		}
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.RecentRuns <= 0 {
		c.RecentRuns = 64
	}
	if c.ReadyMemFrac <= 0 || c.ReadyMemFrac > 1 {
		c.ReadyMemFrac = 0.9
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 10 * time.Second
	}
	if c.TenantSeries <= 0 {
		c.TenantSeries = 32
	}
	if c.FlightRuns <= 0 {
		c.FlightRuns = 128
	}
	if c.FlightTraces <= 0 {
		c.FlightTraces = 4
	}
	if c.FlightSampleEvery <= 0 {
		c.FlightSampleEvery = 8
	}
	if c.ProfileWindow == 0 {
		c.ProfileWindow = time.Minute
	}
	if c.ProfileRing <= 0 {
		c.ProfileRing = 4
	}
	if c.IncidentCooldown <= 0 {
		c.IncidentCooldown = 5 * time.Minute
	}
	if c.IncidentRing <= 0 {
		c.IncidentRing = 16
	}
	c.SLO = c.SLO.withDefaults()
	return c
}

// Server is the mining service. Construct with New, expose Handler on
// any http.Server, and call Drain before exiting.
type Server struct {
	cfg     Config
	pool    *fim.SharedPool
	adm     *admission
	cache   *resultCache
	flights *flightGroup
	reg     *registry
	mux     *http.ServeMux

	// met holds every registered instrument; /metrics renders it and
	// /stats reads it, so the two views share one set of atomics.
	met    *serverMetrics
	flight *flightRecorder
	slo    *sloWatchdog
	// prof is the continuous profiler (nil when disabled); incidents is
	// the engine that turns SLO transitions, worker panics and pool
	// breaches into diagnosis bundles.
	prof      *prof.Continuous
	incidents *incidentEngine

	draining atomic.Bool
	drainCh  chan struct{} // closed when draining starts
	drainOne sync.Once
	dumpOne  sync.Once
	// inflightMu orders inflight.Add against Drain's inflight.Wait: a
	// request registers (Add) and Drain flips the draining flag under
	// the same lock, so once Wait starts no new Add can slip in.
	inflightMu sync.Mutex
	inflight   sync.WaitGroup
}

// New builds a Server from cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    fim.NewSharedPool(cfg.GlobalMemory),
		adm:     newAdmission(cfg.Workers, cfg.QueueDepth, cfg.PerTenant),
		flights: newFlightGroup(),
		reg:     newRegistry(cfg.RecentRuns),
		flight:  newFlightRecorder(cfg.FlightRuns, cfg.FlightTraces, cfg.FlightSampleEvery),
		slo:     newSLOWatchdog(cfg.SLO),
		drainCh: make(chan struct{}),
	}
	s.met = newServerMetrics(s, cfg.TenantSeries)
	s.cache = newResultCache(cfg.CacheBytes, newCacheMetrics(s.met.reg))
	if cfg.ProfileWindow > 0 {
		s.prof = prof.NewContinuous(prof.ContinuousConfig{
			Window: cfg.ProfileWindow,
			Ring:   cfg.ProfileRing,
		})
		s.prof.Start()
	}
	s.incidents = newIncidentEngine(s, cfg.IncidentCooldown, cfg.IncidentRing, cfg.IncidentDir)
	// The watchdog's upward transitions are incident triggers: entering
	// warn or page means the service just started failing its
	// objectives, which is exactly when the evidence should be captured.
	s.slo.onTransition = func(from, to int, st SLOStatus) {
		if to <= from || to == sloOK {
			return
		}
		reason := IncidentSLOWarn
		if to == sloPage {
			reason = IncidentSLOPage
		}
		s.incidents.trigger(reason, fmt.Sprintf(
			"slo %s→%s: shed burn %.1f/%.1f, latency burn %.1f/%.1f (short/long x1)",
			sloStateName(from), sloStateName(to),
			st.ShedBurnShort, st.ShedBurnLong, st.LatencyBurnShort, st.LatencyBurnLong), 0)
	}
	go s.slo.run(s.drainCh, s.met)
	go s.incidents.run(s.drainCh)
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the shared memory pool (tests and stats).
func (s *Server) Pool() *fim.SharedPool { return s.pool }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// beginRequest registers a request with the in-flight group unless the
// server is draining. Callers that get true must call s.inflight.Done()
// when the request completes.
func (s *Server) beginRequest() bool {
	s.inflightMu.Lock()
	defer s.inflightMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Drain gracefully winds the service down: stop admitting (new /mine
// requests get 503, /readyz goes not-ready), let in-flight runs finish
// for the configured grace period, then cancel the stragglers so they
// return partial results with a classified StopReason. It returns when
// every in-flight request has completed, or when ctx expires. Safe to
// call more than once; later calls just wait.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOne.Do(func() {
		s.inflightMu.Lock()
		s.draining.Store(true)
		s.inflightMu.Unlock()
		close(s.drainCh)
		if s.prof != nil {
			// Release the process CPU profiler; retained windows stay
			// readable for a post-drain incident fetch.
			s.prof.Stop()
		}
	})
	// Drop the flight recording on the way out: by the time Drain
	// returns, every in-flight run that was going to finish has been
	// recorded.
	defer func() {
		if s.cfg.FlightPath != "" {
			s.dumpOne.Do(func() { _ = s.flight.writeFile(s.cfg.FlightPath, "drain") })
		}
	}()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	grace := time.NewTimer(s.cfg.DrainGrace)
	defer grace.Stop()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.reg.cancelLive()
		<-done
		return ctx.Err()
	case <-grace.C:
		// Grace expired: stop the stragglers at their next chunk
		// boundary. They unwind with partial results, not a crash.
		s.reg.cancelLive()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats is the server-level aggregate snapshot served at /stats. It is
// a JSON projection of the metrics registry — every counter here reads
// the same atomic the /metrics exposition renders, so the two can never
// disagree.
type Stats struct {
	Admitted       int64     `json:"admitted"`
	Shed           int64     `json:"shed"`
	QuotaRejected  int64     `json:"quota_rejected"`
	Deduplicated   int64     `json:"deduplicated"`
	WorkerPanics   int64     `json:"worker_panics"`
	PoolBreaches   int64     `json:"pool_breaches"`
	CacheHits      int64     `json:"cache_hits"`
	CacheFiltered  int64     `json:"cache_filtered_hits"`
	CacheMisses    int64     `json:"cache_misses"`
	CacheBytes     int64     `json:"cache_bytes"`
	CacheEvictions int64     `json:"cache_evictions"`
	PoolUsed       int64     `json:"pool_used_bytes"`
	PoolPeak       int64     `json:"pool_peak_bytes"`
	PoolCap        int64     `json:"pool_cap_bytes"`
	QueueDepth     int       `json:"queue_depth"`
	QueueCap       int       `json:"queue_cap"`
	Running        int       `json:"running"`
	Draining       bool      `json:"draining"`
	MemFraction    float64   `json:"mem_fraction"`
	SLO            SLOStatus `json:"slo"`
}

// Report is the daemon's terminal audit trail, written by fimserve on
// a drained exit: aggregate stats plus the run records, so an operator
// can answer "what did this instance serve and why did each run end".
type Report struct {
	Schema string    `json:"schema"`
	Stats  Stats     `json:"stats"`
	Live   []RunInfo `json:"live,omitempty"` // empty after a clean drain
	Recent []RunInfo `json:"recent"`
}

// ShutdownReport snapshots the server's terminal state.
func (s *Server) ShutdownReport() Report {
	live, recent := s.reg.list()
	return Report{
		Schema: "fimserve-report/v1",
		Stats:  s.stats(),
		Live:   live,
		Recent: recent,
	}
}

func (s *Server) stats() Stats {
	ch, cf, cm, cb, ce := s.cache.stats()
	return Stats{
		Admitted:       s.met.admission.With(outcomeAdmitted).Value(),
		Shed:           s.met.admission.With(outcomeShed).Value(),
		QuotaRejected:  s.met.admission.With(outcomeQuota).Value(),
		Deduplicated:   s.met.admission.With(outcomeCoalesced).Value(),
		WorkerPanics:   s.met.panics.Value(),
		PoolBreaches:   s.pool.Breaches(),
		CacheHits:      ch,
		CacheFiltered:  cf,
		CacheMisses:    cm,
		CacheBytes:     cb,
		CacheEvictions: ce,
		PoolUsed:       s.pool.Used(),
		PoolPeak:       s.pool.Peak(),
		PoolCap:        s.pool.Cap(),
		QueueDepth:     s.adm.queueLen(),
		QueueCap:       s.cfg.QueueDepth,
		Running:        s.adm.runningLen(),
		Draining:       s.draining.Load(),
		MemFraction:    s.pool.Fraction(),
		SLO:            s.slo.current(),
	}
}
