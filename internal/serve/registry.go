package serve

import (
	"context"
	"slices"
	"sync"
	"time"

	fim "repro"
	"repro/internal/obs/export"
)

// RunInfo is the externally visible record of one admitted request,
// served by /runs and /runs/{id}. Every admitted request ends in
// exactly one terminal state — done with a result, done with a
// classified StopReason, or failed — so an operator can always answer
// "what happened to run N".
type RunInfo struct {
	ID       int64  `json:"id"`
	Tenant   string `json:"tenant"`
	Dataset  string `json:"dataset"`
	Algo     string `json:"algo"`
	Rep      string `json:"rep"`
	AbsSup   int    `json:"min_support_abs"`
	State    string `json:"state"` // queued | running | done
	Started  int64  `json:"started_unix_ns"`
	Finished int64  `json:"finished_unix_ns,omitempty"`

	// Terminal outcome.
	HTTPStatus int    `json:"http_status,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
	Err        string `json:"error,omitempty"`
	Itemsets   int    `json:"itemsets,omitempty"`
	MaxK       int    `json:"max_k,omitempty"`
	Incomplete bool   `json:"incomplete,omitempty"`
	Degraded   bool   `json:"degraded,omitempty"`
	Cached     bool   `json:"cached,omitempty"`
}

// liveRun is the registry's internal handle on an executing run: its
// info, its event broadcast (for /runs/{id}/events), and the context
// cancel that Drain uses to stop it.
type liveRun struct {
	mu     sync.Mutex
	info   RunInfo
	bc     *export.Broadcast
	cancel context.CancelFunc
}

func (lr *liveRun) snapshot() RunInfo {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.info
}

// recentRun is one finished run kept for the /runs history, with its
// event broadcast retained so /runs/{id}/events can still replay the
// full stream after the run ends (the Broadcast is closed, so a late
// subscriber gets the replay and an immediately ended tail).
type recentRun struct {
	info RunInfo
	bc   *export.Broadcast
}

// registry tracks live runs and a bounded ring of recently finished
// ones.
type registry struct {
	mu     sync.Mutex
	nextID int64
	live   map[int64]*liveRun
	recent []recentRun // ring, newest appended
	keep   int
}

func newRegistry(keep int) *registry {
	return &registry{live: make(map[int64]*liveRun), keep: keep}
}

// begin registers a new run in the queued state and returns its handle.
func (r *registry) begin(info RunInfo, bc *export.Broadcast, cancel context.CancelFunc) *liveRun {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	info.ID = r.nextID
	info.State = "queued"
	info.Started = time.Now().UnixNano()
	lr := &liveRun{info: info, bc: bc, cancel: cancel}
	r.live[info.ID] = lr
	return lr
}

// running flips a run to the running state (it has a worker slot).
func (r *registry) running(lr *liveRun) {
	lr.mu.Lock()
	lr.info.State = "running"
	lr.mu.Unlock()
}

// finish moves a run from live to the recent ring with its terminal
// outcome filled in.
func (r *registry) finish(lr *liveRun, fill func(*RunInfo)) RunInfo {
	lr.mu.Lock()
	lr.info.State = "done"
	lr.info.Finished = time.Now().UnixNano()
	fill(&lr.info)
	info := lr.info
	lr.mu.Unlock()

	r.mu.Lock()
	delete(r.live, info.ID)
	r.recent = append(r.recent, recentRun{info: info, bc: lr.bc})
	if len(r.recent) > r.keep {
		r.recent = r.recent[len(r.recent)-r.keep:]
	}
	r.mu.Unlock()
	return info
}

// get returns a run by ID — live first, then the recent ring.
func (r *registry) get(id int64) (RunInfo, *export.Broadcast, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if lr, ok := r.live[id]; ok {
		return lr.snapshot(), lr.bc, true
	}
	for i := len(r.recent) - 1; i >= 0; i-- {
		if r.recent[i].info.ID == id {
			return r.recent[i].info, r.recent[i].bc, true
		}
	}
	return RunInfo{}, nil, false
}

// list snapshots live runs (newest first) followed by recent ones.
func (r *registry) list() (live, recent []RunInfo) {
	r.mu.Lock()
	lrs := make([]*liveRun, 0, len(r.live))
	for _, lr := range r.live {
		lrs = append(lrs, lr)
	}
	recent = make([]RunInfo, len(r.recent))
	for i := range r.recent {
		recent[len(r.recent)-1-i] = r.recent[i].info // newest first
	}
	r.mu.Unlock()
	for _, lr := range lrs {
		live = append(live, lr.snapshot())
	}
	slices.SortFunc(live, func(a, b RunInfo) int { return int(b.ID - a.ID) })
	return live, recent
}

// cancelLive cancels every live run's context — the drain hammer. Each
// run unwinds at its next chunk boundary with a partial result and a
// "canceled" StopReason.
func (r *registry) cancelLive() {
	r.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(r.live))
	for _, lr := range r.live {
		if lr.cancel != nil {
			cancels = append(cancels, lr.cancel)
		}
	}
	r.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// runOutcome is what one executed (or cache-answered) request produced:
// everything the handler needs to write the HTTP response, shared
// verbatim with single-flight followers.
type runOutcome struct {
	status     int
	body       mineResponse
	sets       []fim.ItemsetCount
	stopReason string
	retryAfter time.Duration // > 0 on shed/quota responses
	ran        bool          // held a worker slot (vs rejected pre-admission)
}
