//go:build faultinject

package serve

// Server-level chaos: inject worker panics and budget breaches into
// chosen runs while other tenants' identical-shaped work proceeds. The
// injured run must answer 500 (panic) or 200 + partial (breach); every
// other concurrent run must complete untouched with itemsets identical
// to its serial ground truth. This is the serving layer's blast-radius
// contract: one tenant's disaster is one tenant's disaster.
//
// Gated behind the faultinject tag alongside the rest of the
// fault-injection suite; the hook it drives is compiled in always, the
// tag only marks this as chaos-tier testing.

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	fim "repro"
	"repro/internal/sched"
)

// chaosSentinels mark the runs chosen for injury, matched by the fault
// hook via the run's itemsets budget (large enough never to trip).
const (
	panicSentinel  = 999999893
	breachSentinel = 999999761
)

func TestServerChaosBlastRadius(t *testing.T) {
	defer sched.SetFaultHook(nil)
	var injured sync.Map // one injury per victim run (keyed by its Control)
	sched.SetFaultHook(func(fc sched.FaultContext) {
		switch fc.Control.Budget().MaxItemsets {
		case panicSentinel:
			// Panic exactly once per injured run, at its first chunk.
			if _, dup := injured.LoadOrStore(fc.Control, true); !dup {
				panic("chaos: injected worker fault")
			}
		case breachSentinel:
			// Force a memory-budget breach: one enormous charge, so the
			// next chunk-boundary check stops the run on its per-run cap
			// without starving the shared pool for everyone else.
			if _, dup := injured.LoadOrStore(fc.Control, true); !dup {
				fc.Control.ChargeMem(1 << 40)
			}
		}
	})

	s, ts := newTestServer(t, Config{
		Workers:      4,
		QueueDepth:   16,
		PerTenant:    16,
		MineWorkers:  2,
		GlobalMemory: 8 << 40, // out of the way: per-run budgets are under test
		CacheBytes:   -1,
	})

	db, err := fim.Dataset("chess", 0.2)
	if err != nil {
		t.Fatal(err)
	}

	// Healthy tenants' ground truth, computed serially up front.
	rels := []float64{0.62, 0.64, 0.66, 0.68}
	serial := make([]*fim.Result, len(rels))
	for i, rel := range rels {
		serial[i], err = fim.Mine(db, rel, fim.Options{Algorithm: fim.Eclat, Representation: fim.Tidset})
		if err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 2
	var wg sync.WaitGroup
	for round := 0; round < rounds; round++ {
		// One panic victim, one breach victim, four healthy tenants — all
		// concurrent. Distinct supports per round defeat single-flight.
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			resp, mr := postMine(t, ts,
				fmt.Sprintf("dataset=chess&scale=0.2&support=%g&max-itemsets=%d", 0.55+0.001*float64(round), panicSentinel),
				"", map[string]string{"X-Tenant": "victim-panic"})
			if resp.StatusCode != http.StatusInternalServerError {
				t.Errorf("round %d: panic-injected run answered %d, want 500 (%+v)", round, resp.StatusCode, mr)
				return
			}
			if mr.StopReason != "worker-panic" || mr.Error == "" {
				t.Errorf("round %d: panic-injected run misclassified: %+v", round, mr)
			}
		}(round)
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			resp, mr := postMine(t, ts,
				fmt.Sprintf("dataset=chess&scale=0.2&support=%g&max-itemsets=%d&degrade=off&rep=tidset", 0.57+0.001*float64(round), breachSentinel),
				"", map[string]string{"X-Tenant": "victim-breach"})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("round %d: breach-injected run answered %d, want 200 partial (%+v)", round, resp.StatusCode, mr)
				return
			}
			if !mr.Incomplete || mr.StopReason != "budget:memory" {
				t.Errorf("round %d: breach-injected run misclassified: %+v", round, mr)
			}
		}(round)
		for i, rel := range rels {
			wg.Add(1)
			go func(i int, rel float64) {
				defer wg.Done()
				resp, mr := postMine(t, ts,
					fmt.Sprintf("dataset=chess&scale=0.2&support=%g&rep=tidset", rel),
					"", map[string]string{"X-Tenant": fmt.Sprintf("healthy-%d", i)})
				if resp.StatusCode != http.StatusOK || mr.Incomplete {
					t.Errorf("healthy tenant %d: status %d, %+v", i, resp.StatusCode, mr)
					return
				}
				if mr.Itemsets != serial[i].Len() {
					t.Errorf("healthy tenant %d: %d itemsets beside the chaos, serial found %d",
						i, mr.Itemsets, serial[i].Len())
				}
			}(i, rel)
		}
		wg.Wait()
	}

	// The process is unharmed: panics were contained per-run, counted,
	// and the pool holds no leaked bytes from the injured runs.
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.WorkerPanics != rounds {
		t.Fatalf("worker_panics = %d, want %d", st.WorkerPanics, rounds)
	}
	waitFor(t, "the pool to refund after chaos", func() bool { return s.pool.Used() == 0 })

	// And the server still serves: a fresh healthy request succeeds.
	resp, mr := postMine(t, ts, "abssup=2", uploadFIMI, nil)
	if resp.StatusCode != http.StatusOK || mr.Itemsets == 0 {
		t.Fatalf("post-chaos request: status %d, %+v", resp.StatusCode, mr)
	}
}
