// The SLO burn-rate watchdog: the service's own judgement of whether it
// is meeting its objectives, computed the way an on-call pager would —
// multiwindow error-budget burn rates, not raw counts. Two SLOs are
// tracked: a shed SLO (at most ShedBudget of requests turned away by
// the queue or quota) and a latency SLO (at most LatencyBudget of
// admitted runs slower than LatencyObjective). For each, the burn rate
// is the bad fraction divided by the budget — burn 1.0 means "spending
// the budget exactly as fast as allowed" — and an alert state requires
// the burn to exceed the threshold over BOTH a short and a long window,
// so a single shed spike neither pages nor hides sustained overload.
package serve

import (
	"sync"
	"time"
)

// SLOConfig tunes the burn-rate watchdog. Zero fields get defaults.
type SLOConfig struct {
	// ShedBudget is the allowed fraction of requests shed by the queue
	// or a tenant quota. Default 0.05.
	ShedBudget float64
	// LatencyObjective is the per-run latency objective; an admitted
	// run slower than this spends latency budget. Default 5s.
	LatencyObjective time.Duration
	// LatencyBudget is the allowed fraction of admitted runs over the
	// objective. Default 0.01.
	LatencyBudget float64
	// ShortWindow and LongWindow are the two burn evaluation windows.
	// Defaults 1m and 10m; LongWindow is capped at one hour (the
	// watchdog keeps one-second resolution buckets for the long window).
	ShortWindow, LongWindow time.Duration
	// WarnBurn and PageBurn are the burn-rate thresholds (both windows
	// must exceed one to enter its state). Defaults 2 and 10.
	WarnBurn, PageBurn float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.ShedBudget <= 0 {
		c.ShedBudget = 0.05
	}
	if c.LatencyObjective <= 0 {
		c.LatencyObjective = 5 * time.Second
	}
	if c.LatencyBudget <= 0 {
		c.LatencyBudget = 0.01
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = time.Minute
	}
	if c.LongWindow <= c.ShortWindow {
		c.LongWindow = 10 * c.ShortWindow
	}
	if c.LongWindow > time.Hour {
		c.LongWindow = time.Hour
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 2
	}
	if c.PageBurn <= c.WarnBurn {
		c.PageBurn = 5 * c.WarnBurn
	}
	return c
}

// Watchdog states, also exposed as the fimserve_slo_state gauge.
const (
	sloOK   = 0
	sloWarn = 1
	sloPage = 2
)

func sloStateName(code int) string {
	switch code {
	case sloWarn:
		return "warn"
	case sloPage:
		return "page"
	}
	return "ok"
}

// SLOStatus is the watchdog's current judgement, served in /stats and
// /readyz. Burn rates are unitless multiples of the sustainable rate.
type SLOStatus struct {
	State            string  `json:"state"` // ok | warn | page
	ShedBurnShort    float64 `json:"shed_burn_short"`
	ShedBurnLong     float64 `json:"shed_burn_long"`
	LatencyBurnShort float64 `json:"latency_burn_short"`
	LatencyBurnLong  float64 `json:"latency_burn_long"`
}

// sloBucket is one second of request outcomes.
type sloBucket struct {
	sec      int64 // unix second this bucket currently holds
	total    int64 // terminal /mine outcomes
	shed     int64 // shed or quota-rejected
	admitted int64 // runs that held a worker slot
	slow     int64 // admitted runs over the latency objective
}

// sloWatchdog accumulates per-second outcome buckets and evaluates the
// two SLOs over sliding windows. now is injectable for deterministic
// tests.
type sloWatchdog struct {
	cfg SLOConfig
	now func() time.Time

	// onTransition, when set, is called from publish whenever the state
	// code changes, with the previous and new codes — the incident
	// engine's subscription. Called from the watchdog goroutine.
	onTransition func(from, to int, st SLOStatus)
	lastCode     int

	mu      sync.Mutex
	buckets []sloBucket // ring indexed by unix-second % len
}

func newSLOWatchdog(cfg SLOConfig) *sloWatchdog {
	cfg = cfg.withDefaults()
	n := int(cfg.LongWindow / time.Second)
	if n < 2 {
		n = 2
	}
	return &sloWatchdog{cfg: cfg, now: time.Now, buckets: make([]sloBucket, n)}
}

// bucket returns the ring slot for sec, resetting it if it still holds
// an older second. Callers hold mu.
func (w *sloWatchdog) bucket(sec int64) *sloBucket {
	b := &w.buckets[sec%int64(len(w.buckets))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	return b
}

// record files one terminal request outcome. admitted says the request
// held a worker slot (its duration then counts against the latency
// objective); shed-class outcomes (queue shed, tenant quota) spend
// shed budget.
func (w *sloWatchdog) record(outcome string, admitted bool, dur time.Duration) {
	sec := w.now().Unix()
	w.mu.Lock()
	b := w.bucket(sec)
	b.total++
	if outcome == outcomeShed || outcome == outcomeQuota {
		b.shed++
	}
	if admitted {
		b.admitted++
		if dur > w.cfg.LatencyObjective {
			b.slow++
		}
	}
	w.mu.Unlock()
}

// window sums the buckets covering the last d ending at nowSec.
func (w *sloWatchdog) window(nowSec int64, d time.Duration) (total, shed, admitted, slow int64) {
	lo := nowSec - int64(d/time.Second) + 1
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.sec >= lo && b.sec <= nowSec {
			total += b.total
			shed += b.shed
			admitted += b.admitted
			slow += b.slow
		}
	}
	return
}

func burn(bad, total int64, budget float64) float64 {
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total) / budget
}

// evaluate computes the current status: each SLO's burn over both
// windows, and the combined state (the worst SLO wins; each state
// requires both of its windows over the threshold).
func (w *sloWatchdog) evaluate() (SLOStatus, int) {
	nowSec := w.now().Unix()
	w.mu.Lock()
	tS, shS, adS, slS := w.window(nowSec, w.cfg.ShortWindow)
	tL, shL, adL, slL := w.window(nowSec, w.cfg.LongWindow)
	w.mu.Unlock()

	st := SLOStatus{
		ShedBurnShort:    burn(shS, tS, w.cfg.ShedBudget),
		ShedBurnLong:     burn(shL, tL, w.cfg.ShedBudget),
		LatencyBurnShort: burn(slS, adS, w.cfg.LatencyBudget),
		LatencyBurnLong:  burn(slL, adL, w.cfg.LatencyBudget),
	}
	code := sloOK
	grade := func(short, long float64) int {
		switch {
		case short >= w.cfg.PageBurn && long >= w.cfg.PageBurn:
			return sloPage
		case short >= w.cfg.WarnBurn && long >= w.cfg.WarnBurn:
			return sloWarn
		}
		return sloOK
	}
	if g := grade(st.ShedBurnShort, st.ShedBurnLong); g > code {
		code = g
	}
	if g := grade(st.LatencyBurnShort, st.LatencyBurnLong); g > code {
		code = g
	}
	st.State = sloStateName(code)
	return st, code
}

// current returns a freshly evaluated status (no caching — evaluation
// is a scan over at most an hour of one-second buckets).
func (w *sloWatchdog) current() SLOStatus {
	st, _ := w.evaluate()
	return st
}

// publish evaluates and pushes the state and burn gauges into m, and
// fires the transition callback on state changes (edge-triggered: the
// incident engine wants "we just entered warn/page", not a re-trigger
// per evaluation while the state holds).
func (w *sloWatchdog) publish(m *serverMetrics) SLOStatus {
	st, code := w.evaluate()
	m.sloState.Set(int64(code))
	m.sloBurn.With("shed", "short").Set(int64(st.ShedBurnShort * 1000))
	m.sloBurn.With("shed", "long").Set(int64(st.ShedBurnLong * 1000))
	m.sloBurn.With("latency", "short").Set(int64(st.LatencyBurnShort * 1000))
	m.sloBurn.With("latency", "long").Set(int64(st.LatencyBurnLong * 1000))
	if code != w.lastCode {
		from := w.lastCode
		w.lastCode = code
		if w.onTransition != nil {
			w.onTransition(from, code, st)
		}
	}
	return st
}

// run is the watchdog goroutine: re-evaluate once per second until
// stop closes (drain).
func (w *sloWatchdog) run(stop <-chan struct{}, m *serverMetrics) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.publish(m)
		}
	}
}
