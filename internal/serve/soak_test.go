package serve

// The overload soak: the acceptance scenario for the serving layer.
// With queue capacity K and 4xK concurrent pressure, the server must
// shed the overflow with 429 + Retry-After, keep peak memory inside the
// global budget, return uncorrupted itemsets on every accepted request
// (verified against serial library runs), and drain on shutdown with
// every run ending in a result or a classified stop — never a crash.

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	fim "repro"
	"repro/internal/sched"
)

// soakProblem is one distinct mining problem (its own flight key).
type soakProblem struct {
	query  string
	rel    float64
	algo   fim.Algorithm
	rep    fim.Representation
	serial *fim.Result
}

// soakProblems builds 4xK distinct chess problems across algorithms and
// representations and mines each serially for the ground truth.
func soakProblems(t *testing.T, db *fim.DB, n int) []soakProblem {
	t.Helper()
	algos := []fim.Algorithm{fim.Eclat, fim.Apriori, fim.FPGrowth}
	algoNames := []string{"eclat", "apriori", "fpgrowth"}
	reps := []fim.Representation{fim.Tidset, fim.Diffset, fim.Bitvector, fim.Hybrid}
	repNames := []string{"tidset", "diffset", "bitvector", "hybrid"}
	probs := make([]soakProblem, n)
	for i := range probs {
		// Distinct supports keep every problem's flight key unique even
		// when algorithm and representation repeat.
		rel := 0.62 + 0.002*float64(i)
		a, r := i%len(algos), (i/len(algos))%len(reps)
		probs[i] = soakProblem{
			query: fmt.Sprintf("dataset=chess&scale=0.2&support=%g&algo=%s&rep=%s&limit=0",
				rel, algoNames[a], repNames[r]),
			rel: rel, algo: algos[a], rep: reps[r],
		}
		serial, err := fim.Mine(db, rel, fim.Options{Algorithm: algos[a], Representation: reps[r]})
		if err != nil {
			t.Fatalf("serial ground truth %d: %v", i, err)
		}
		probs[i].serial = serial
	}
	return probs
}

func TestOverloadSoak(t *testing.T) {
	const K = 4 // queue capacity
	gate := make(chan struct{})
	gateSentinelRuns(t, gate)
	s, ts := newTestServer(t, Config{
		Workers:      2,
		QueueDepth:   K,
		PerTenant:    64,
		MineWorkers:  2,
		GlobalMemory: 1 << 30,
		CacheBytes:   -1, // every request exercises admission, not the cache
		DrainGrace:   50 * time.Millisecond,
	})

	db, err := fim.Dataset("chess", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	probs := soakProblems(t, db, 4*K)

	// Phase 1 — plug the workers: two sentinel runs occupy both running
	// slots, blocked at their first chunk boundary until the gate opens.
	var plugged sync.WaitGroup
	for i := 0; i < 2; i++ {
		plugged.Add(1)
		go func(i int) {
			defer plugged.Done()
			resp, mr := postMine(t, ts,
				fmt.Sprintf("abssup=%d&max-itemsets=%d", 2+i, sentinelItemsets),
				uploadFIMI, map[string]string{"X-Tenant": "plug"})
			if resp.StatusCode != http.StatusOK || mr.Incomplete {
				t.Errorf("plug run %d: status %d, %+v", i, resp.StatusCode, mr)
			}
		}(i)
	}
	waitFor(t, "both workers to be plugged", func() bool { return s.adm.runningLen() == 2 })

	// Phase 2 — 4xK distinct problems flood a full server: exactly K fit
	// in the queue, the other 3K are shed with 429 + Retry-After.
	type answer struct {
		prob   int
		status int
		retry  string
		body   mineResponse
	}
	answers := make([]answer, len(probs))
	var flood sync.WaitGroup
	for i, p := range probs {
		flood.Add(1)
		go func(i int, p soakProblem) {
			defer flood.Done()
			resp, mr := postMine(t, ts, p.query, "", map[string]string{"X-Tenant": fmt.Sprintf("t%d", i%4)})
			answers[i] = answer{prob: i, status: resp.StatusCode, retry: resp.Header.Get("Retry-After"), body: mr}
		}(i, p)
	}
	// The flood settles: K requests queued, 3K shed and already answered.
	waitFor(t, "the queue to fill", func() bool { return s.adm.queueLen() == K })
	waitFor(t, "the overflow to shed", func() bool { return s.stats().Shed == int64(3*K) })

	// Phase 3 — open the gate: plugs finish, queued runs execute.
	close(gate)
	flood.Wait()
	plugged.Wait()

	var shed, served int
	for _, a := range answers {
		switch a.status {
		case http.StatusTooManyRequests:
			shed++
			if a.retry == "" {
				t.Errorf("problem %d shed without Retry-After", a.prob)
			}
			if a.body.StopReason != "shed" {
				t.Errorf("problem %d shed with stop_reason %q", a.prob, a.body.StopReason)
			}
		case http.StatusOK:
			served++
			p := probs[a.prob]
			if a.body.Incomplete {
				t.Errorf("problem %d incomplete under no budget pressure: %+v", a.prob, a.body)
				continue
			}
			// No cross-request corruption: the concurrent run's itemsets
			// match the serial ground truth exactly.
			if a.body.Itemsets != p.serial.Len() {
				t.Errorf("problem %d: served %d itemsets, serial found %d", a.prob, a.body.Itemsets, p.serial.Len())
				continue
			}
			want := p.serial.Decoded()
			for j, set := range a.body.Sets {
				if set.Support != want[j].Support {
					t.Errorf("problem %d set %d: support %d, want %d", a.prob, j, set.Support, want[j].Support)
					break
				}
				for k, it := range set.Items {
					if it != uint32(want[j].Items[k]) {
						t.Errorf("problem %d set %d: item %d is %d, want %d", a.prob, j, k, it, want[j].Items[k])
						break
					}
				}
			}
		default:
			t.Errorf("problem %d: unexpected status %d (%+v)", a.prob, a.status, a.body)
		}
	}
	if shed != 3*K || served != K {
		t.Fatalf("flood outcome: %d shed, %d served; want %d and %d", shed, served, 3*K, K)
	}

	// A budget-stopped run under the same load answers 200 + partial.
	resp, mr := postMine(t, ts, "dataset=chess&scale=0.2&support=0.55&max-itemsets=20", "", nil)
	if resp.StatusCode != http.StatusOK || !mr.Incomplete || mr.StopReason != "budget:itemsets" {
		t.Fatalf("budget-stopped run: status %d, %+v", resp.StatusCode, mr)
	}

	// A client that gives up mid-run: the server classifies the stop and
	// stays healthy. (The response never arrives; the registry records it.)
	sched.SetFaultHook(func(fc sched.FaultContext) {
		if fc.Control.Budget().MaxItemsets == sentinelItemsets {
			time.Sleep(2 * time.Millisecond)
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	req, _ := http.NewRequestWithContext(ctx, "POST",
		ts.URL+fmt.Sprintf("/mine?dataset=chess&scale=0.2&support=0.5&max-itemsets=%d", sentinelItemsets),
		strings.NewReader(""))
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	cancel()
	sched.SetFaultHook(nil)
	waitFor(t, "the abandoned run to unwind", func() bool { return s.adm.runningLen() == 0 })

	// Memory: the shared pool stayed within the global budget and ended
	// fully refunded.
	if peak := s.pool.Peak(); peak <= 0 || peak > s.pool.Cap() {
		t.Fatalf("pool peak %d outside (0, %d]", peak, s.pool.Cap())
	}
	waitFor(t, "the pool to refund to zero", func() bool { return s.pool.Used() == 0 })

	// Shutdown: drain completes, and every run the server ever touched
	// is terminal — a result or a classified stop, never a limbo state.
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	rep := s.ShutdownReport()
	if len(rep.Live) != 0 {
		t.Fatalf("%d runs still live after drain: %+v", len(rep.Live), rep.Live)
	}
	for _, r := range rep.Recent {
		switch {
		case r.HTTPStatus == 200 && r.StopReason == "":
		case r.HTTPStatus == 200 && r.Incomplete && r.StopReason != "":
		case r.HTTPStatus == http.StatusTooManyRequests && (r.StopReason == "shed" || r.StopReason == "quota"):
		case r.HTTPStatus == http.StatusServiceUnavailable && r.StopReason == "canceled":
		default:
			t.Errorf("run %d not terminally classified: %+v", r.ID, r)
		}
	}
	if rep.Stats.Shed != int64(3*K) {
		t.Fatalf("report shed = %d, want %d", rep.Stats.Shed, 3*K)
	}
}
