package serve

// Acceptance tests for the serving layer: the admission ladder
// (cache -> queue -> quota -> budget -> degrade), single-flight
// deduplication, SSE event streams, and graceful drain — driven through
// real HTTP requests against an httptest server.
//
// Several tests steer run timing through the scheduler's fault hook,
// which is process-global; none of them use t.Parallel.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	fim "repro"
	"repro/internal/obs/export"
	"repro/internal/obs/metrics"
	"repro/internal/sched"
)

// uploadFIMI is the tiny shared upload dataset: 8 transactions over 4
// items, enough structure for every algorithm to find 2- and
// 3-itemsets.
const uploadFIMI = "1 2 3\n1 2\n1 3\n2 3\n1 2 3\n1 2 3 4\n2 3 4\n1 4\n"

// sentinelItemsets is the budget value the fault hook matches to pick
// out a specific run under test: large enough never to trip the
// itemsets budget, distinctive enough never to occur by accident.
const sentinelItemsets = 999999937

// gateSentinelRuns installs a fault hook that blocks every scheduler
// chunk of runs carrying the sentinel itemsets budget until gate is
// closed. Other runs are untouched.
func gateSentinelRuns(t *testing.T, gate chan struct{}) {
	t.Helper()
	sched.SetFaultHook(func(fc sched.FaultContext) {
		if fc.Control.Budget().MaxItemsets != sentinelItemsets {
			return
		}
		select {
		case <-gate:
		case <-time.After(10 * time.Second):
		}
	})
	t.Cleanup(func() { sched.SetFaultHook(nil) })
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.ProfileWindow == 0 {
		// The process CPU profiler is exclusive; a default-config test
		// server would hold it for the whole test binary. Tests that want
		// the continuous profiler opt in explicitly.
		cfg.ProfileWindow = -1
	}
	s := New(cfg)
	t.Cleanup(func() {
		if s.prof != nil {
			s.prof.Stop()
		}
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postMine(t *testing.T, ts *httptest.Server, query, body string, hdr map[string]string) (*http.Response, mineResponse) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/mine?"+query, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr mineResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatalf("decoding /mine response: %v", err)
	}
	return resp, mr
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestMineUploadCacheAndEvents walks the happy path end to end: an
// uploaded dataset mines once, the identical request is a cache hit, a
// higher threshold is answered by filtering the cached lower-threshold
// run, and the finished run's SSE stream replays a valid event stream.
func TestMineUploadCacheAndEvents(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, mr := postMine(t, ts, "abssup=2&algo=eclat&rep=tidset", uploadFIMI, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine: status %d (%+v)", resp.StatusCode, mr)
	}
	if mr.Cached || mr.Itemsets == 0 || mr.RunID == 0 || mr.Incomplete {
		t.Fatalf("first mine: %+v", mr)
	}

	// Cross-check against a direct library run.
	db, err := fim.ReadFIMI("direct", strings.NewReader(uploadFIMI))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := fim.MineAbsolute(db, 2, fim.Options{Algorithm: fim.Eclat, Representation: fim.Tidset, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mr.Itemsets != direct.Len() {
		t.Fatalf("served %d itemsets, direct run found %d", mr.Itemsets, direct.Len())
	}

	// Identical request: exact cache hit, no new run.
	resp, mr2 := postMine(t, ts, "abssup=2&algo=eclat&rep=tidset", uploadFIMI, nil)
	if resp.StatusCode != http.StatusOK || !mr2.Cached || mr2.Itemsets != mr.Itemsets {
		t.Fatalf("repeat mine not a cache hit: status %d, %+v", resp.StatusCode, mr2)
	}

	// Higher threshold: answered by filtering the cached lower-minsup
	// run, supports exact.
	resp, mr3 := postMine(t, ts, "abssup=4&algo=eclat&rep=tidset", uploadFIMI, nil)
	if resp.StatusCode != http.StatusOK || !mr3.Cached {
		t.Fatalf("higher-minsup request not filtered from cache: status %d, %+v", resp.StatusCode, mr3)
	}
	direct4, err := fim.MineAbsolute(db, 4, fim.Options{Algorithm: fim.Eclat, Representation: fim.Tidset, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mr3.Itemsets != direct4.Len() {
		t.Fatalf("filtered answer has %d itemsets, direct run at minsup 4 found %d", mr3.Itemsets, direct4.Len())
	}
	want := direct4.Decoded()
	if len(mr3.Sets) != len(want) {
		t.Fatalf("filtered answer returned %d sets, want %d", len(mr3.Sets), len(want))
	}
	for i, set := range mr3.Sets {
		if set.Support != want[i].Support || len(set.Items) != len(want[i].Items) {
			t.Fatalf("filtered set %d = %+v, want %+v", i, set, want[i])
		}
	}

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.CacheHits != 1 || st.CacheFiltered != 1 || st.Admitted != 1 {
		t.Fatalf("stats after hit+filtered: %+v", st)
	}

	// The finished run's SSE stream replays a complete, valid stream.
	eresp, err := http.Get(fmt.Sprintf("%s/runs/%d/events", ts.URL, mr.RunID))
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	var data []string
	sc := bufio.NewScanner(eresp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			data = append(data, rest)
		}
	}
	events, err := export.DecodeLines(strings.NewReader(strings.Join(data, "\n")))
	if err != nil {
		t.Fatalf("decoding SSE data lines: %v", err)
	}
	if err := export.ValidateEvents(events); err != nil {
		t.Fatalf("run %d SSE stream invalid: %v", mr.RunID, err)
	}

	// Registry: the run is on the recent list with its terminal record.
	var runs struct{ Live, Recent []RunInfo }
	getJSON(t, ts.URL+"/runs", &runs)
	if len(runs.Live) != 0 || len(runs.Recent) != 1 {
		t.Fatalf("runs = %+v", runs)
	}
	if r := runs.Recent[0]; r.HTTPStatus != 200 || r.State != "done" || r.Itemsets != mr.Itemsets {
		t.Fatalf("recent run record = %+v", r)
	}
	_ = s
}

// TestMineBuiltinDataset mines a built-in by name and cross-checks the
// itemset count against a direct library run.
func TestMineBuiltinDataset(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, mr := postMine(t, ts, "dataset=chess&scale=0.2&support=0.8&algo=apriori&rep=bitvector", "", nil)
	if resp.StatusCode != http.StatusOK || mr.Itemsets == 0 {
		t.Fatalf("builtin mine: status %d, %+v", resp.StatusCode, mr)
	}
	db, err := fim.Dataset("chess", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := fim.Mine(db, 0.8, fim.Options{Algorithm: fim.Apriori, Representation: fim.Bitvector, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mr.Itemsets != direct.Len() {
		t.Fatalf("served %d itemsets, direct run found %d", mr.Itemsets, direct.Len())
	}
	if mr.Dataset != "chess@0.2" {
		t.Fatalf("dataset label = %q", mr.Dataset)
	}
}

// TestMineBadRequests: every malformed request fails fast with 400 and
// a JSON error, before consuming any mining capacity.
func TestMineBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxUploadBytes: 64,
		UploadLimits:   fim.FIMILimits{MaxTransactions: 4},
	})
	cases := []struct {
		name, query, body string
		want              int
	}{
		{"missing support", "dataset=chess", "", http.StatusBadRequest},
		{"bad algo", "dataset=chess&support=0.9&algo=magic", "", http.StatusBadRequest},
		{"bad rep", "dataset=chess&support=0.9&rep=linkedlist", "", http.StatusBadRequest},
		{"unknown dataset", "dataset=nosuch&support=0.9", "", http.StatusBadRequest},
		{"support over 1", "dataset=chess&support=1.5", "", http.StatusBadRequest},
		{"zero abssup", "dataset=chess&abssup=0", "", http.StatusBadRequest},
		{"bad scale", "dataset=chess&scale=-1&support=0.9", "", http.StatusBadRequest},
		{"empty body no dataset", "support=0.5", "", http.StatusBadRequest},
		{"malformed upload", "support=0.5", "1 2\nnope\n", http.StatusBadRequest},
		{"upload over parse limits", "support=0.5", "1\n2\n3\n4\n5\n", http.StatusBadRequest},
		{"upload over byte cap", "support=0.5", strings.Repeat("1 2 3\n", 20), http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, _ := postMine(t, ts, c.query, c.body, nil)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Admitted != 0 {
		t.Fatalf("bad requests consumed capacity: %+v", st)
	}
	_ = s
}

// TestTenantQuota: with a per-tenant quota of 1, a tenant's second
// concurrent request is rejected 429 with Retry-After while another
// tenant still gets in.
func TestTenantQuota(t *testing.T) {
	gate := make(chan struct{})
	gateSentinelRuns(t, gate)
	s, ts := newTestServer(t, Config{Workers: 2, PerTenant: 1})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, mr := postMine(t, ts,
			fmt.Sprintf("abssup=2&max-itemsets=%d", sentinelItemsets),
			uploadFIMI, map[string]string{"X-Tenant": "alice"})
		if resp.StatusCode != http.StatusOK || mr.Incomplete {
			t.Errorf("alice's first run: status %d, %+v", resp.StatusCode, mr)
		}
	}()
	waitFor(t, "alice's run to hold a slot", func() bool { return s.adm.runningLen() == 1 })

	// Second alice request: over quota. A different threshold avoids the
	// single-flight join (which would legitimately share the first run).
	resp, mr := postMine(t, ts, "abssup=3", uploadFIMI, map[string]string{"X-Tenant": "alice"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota request: status %d, %+v", resp.StatusCode, mr)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota rejection missing Retry-After")
	}
	if !strings.Contains(mr.Error, "quota") {
		t.Fatalf("quota rejection error = %q", mr.Error)
	}

	// Bob is unaffected by alice's quota.
	resp, mr = postMine(t, ts, "abssup=3", uploadFIMI, map[string]string{"X-Tenant": "bob"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob's run: status %d, %+v", resp.StatusCode, mr)
	}

	close(gate)
	wg.Wait()
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.QuotaRejected != 1 {
		t.Fatalf("quota_rejected = %d, want 1", st.QuotaRejected)
	}
}

// TestQueueShed: with one worker and a queue of one, the third
// concurrent request is shed with 429 + Retry-After, and /readyz
// reports not-ready while the queue is full.
func TestQueueShed(t *testing.T) {
	gate := make(chan struct{})
	gateSentinelRuns(t, gate)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, PerTenant: 8})

	var wg sync.WaitGroup
	run := func(abssup int, sentinel bool) {
		defer wg.Done()
		q := fmt.Sprintf("abssup=%d", abssup)
		if sentinel {
			q += fmt.Sprintf("&max-itemsets=%d", sentinelItemsets)
		}
		resp, mr := postMine(t, ts, q, uploadFIMI, nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("abssup=%d: status %d, %+v", abssup, resp.StatusCode, mr)
		}
	}
	wg.Add(1)
	go run(2, true) // occupies the single running slot, blocked on the gate
	waitFor(t, "a run to hold the slot", func() bool { return s.adm.runningLen() == 1 })
	wg.Add(1)
	go run(3, false) // occupies the single queue slot
	waitFor(t, "a run to queue", func() bool { return s.adm.queueLen() == 1 })

	if resp := getJSON(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with a full queue: status %d", resp.StatusCode)
	}

	resp, mr := postMine(t, ts, "abssup=4", uploadFIMI, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload request: status %d, %+v", resp.StatusCode, mr)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if mr.StopReason != "shed" {
		t.Fatalf("shed stop_reason = %q", mr.StopReason)
	}

	close(gate)
	wg.Wait()
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Shed != 1 || st.Admitted != 2 {
		t.Fatalf("stats after shed: %+v", st)
	}
	// The shed run is on record with its cause.
	var runs struct{ Live, Recent []RunInfo }
	getJSON(t, ts.URL+"/runs", &runs)
	shedSeen := false
	for _, r := range runs.Recent {
		if r.State == "shed" && r.HTTPStatus == http.StatusTooManyRequests {
			shedSeen = true
		}
	}
	if !shedSeen {
		t.Fatalf("no shed record in recent runs: %+v", runs.Recent)
	}
}

// TestSingleFlight: identical concurrent requests share one mining run;
// both get complete answers, and only one run was admitted.
func TestSingleFlight(t *testing.T) {
	gate := make(chan struct{})
	gateSentinelRuns(t, gate)
	s, ts := newTestServer(t, Config{Workers: 2})

	q := fmt.Sprintf("abssup=2&max-itemsets=%d", sentinelItemsets)
	var wg sync.WaitGroup
	results := make([]mineResponse, 2)
	statuses := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, mr := postMine(t, ts, q, uploadFIMI, nil)
			statuses[i], results[i] = resp.StatusCode, mr
		}(i)
	}
	waitFor(t, "the leader to start running", func() bool { return s.adm.runningLen() == 1 })
	waitFor(t, "the follower to join the flight", func() bool {
		return s.met.admission.With(outcomeCoalesced).Value() == 1
	})
	close(gate)
	wg.Wait()

	for i := 0; i < 2; i++ {
		if statuses[i] != http.StatusOK || results[i].Itemsets == 0 {
			t.Fatalf("request %d: status %d, %+v", i, statuses[i], results[i])
		}
	}
	if results[0].Itemsets != results[1].Itemsets {
		t.Fatalf("deduplicated requests disagree: %d vs %d itemsets", results[0].Itemsets, results[1].Itemsets)
	}
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Admitted != 1 || st.Deduplicated != 1 {
		t.Fatalf("admitted = %d, deduplicated = %d; want 1 and 1 (single-flight)", st.Admitted, st.Deduplicated)
	}
}

// TestDrainGraceful: draining stops admission immediately, flips
// /readyz, budget-stops the straggler after the grace period, and every
// in-flight request ends with a classified partial answer.
func TestDrainGraceful(t *testing.T) {
	gate := make(chan struct{})
	gateSentinelRuns(t, gate)
	s, ts := newTestServer(t, Config{Workers: 1, DrainGrace: 50 * time.Millisecond})

	var wg sync.WaitGroup
	wg.Add(1)
	var drainedStatus int
	var drainedResp mineResponse
	go func() {
		defer wg.Done()
		resp, mr := postMine(t, ts,
			fmt.Sprintf("dataset=chess&scale=0.2&support=0.5&max-itemsets=%d", sentinelItemsets),
			"", nil)
		drainedStatus, drainedResp = resp.StatusCode, mr
	}()
	waitFor(t, "the run to hold the slot", func() bool { return s.adm.runningLen() == 1 })

	drainDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { drainDone <- s.Drain(ctx) }()
	waitFor(t, "draining to start", s.Draining)

	// New work is refused the moment draining starts.
	resp, _ := postMine(t, ts, "abssup=2", uploadFIMI, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mine while draining: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d", resp.StatusCode)
	}

	// Let the grace period lapse so Drain cancels the straggler, then
	// release it; it unwinds at its next chunk boundary.
	time.Sleep(100 * time.Millisecond)
	close(gate)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	if drainedStatus != http.StatusOK {
		t.Fatalf("drained run: status %d, %+v", drainedStatus, drainedResp)
	}
	if !drainedResp.Incomplete || drainedResp.StopReason != "canceled" {
		t.Fatalf("drained run not a classified partial: %+v", drainedResp)
	}

	// The shutdown report carries the drained run's record.
	rep := s.ShutdownReport()
	if rep.Schema != "fimserve-report/v1" || len(rep.Live) != 0 {
		t.Fatalf("shutdown report = %+v", rep)
	}
	found := false
	for _, r := range rep.Recent {
		if r.StopReason == "canceled" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no canceled run in shutdown report: %+v", rep.Recent)
	}
}

// TestCacheEviction: a cache budget smaller than two entries keeps the
// more recently used one.
func TestCacheEviction(t *testing.T) {
	c := newResultCache(400, newCacheMetrics(metrics.NewRegistry()))
	big := make([]fim.ItemsetCount, 8) // entryBytes = 8*24 + 64 = 256
	c.store(cacheKey{dataset: "a"}, 2, big, 1)
	c.store(cacheKey{dataset: "b"}, 2, big, 1)
	if _, _, _, ok := c.lookup(cacheKey{dataset: "b"}, 2); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, _, _, ok := c.lookup(cacheKey{dataset: "a"}, 2); ok {
		t.Fatal("older entry survived a budget that fits only one")
	}
	_, _, _, bytes, evictions := c.stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if bytes > 400 {
		t.Fatalf("cache bytes %d over budget", bytes)
	}
}

// TestCacheDisabled: a negative budget turns the cache off entirely.
func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1, newCacheMetrics(metrics.NewRegistry()))
	c.store(cacheKey{dataset: "a"}, 2, make([]fim.ItemsetCount, 2), 1)
	if _, _, _, ok := c.lookup(cacheKey{dataset: "a"}, 2); ok {
		t.Fatal("disabled cache served a hit")
	}
}

// TestUploadBodyIsHashKeyed: byte-identical uploads share a cache
// entry; different bytes do not.
func TestUploadBodyIsHashKeyed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, mr1 := postMine(t, ts, "abssup=2", uploadFIMI, nil)
	_, mr2 := postMine(t, ts, "abssup=2", uploadFIMI, nil)
	if !mr2.Cached || mr1.Dataset != mr2.Dataset {
		t.Fatalf("identical upload not cache-hit: %+v vs %+v", mr1, mr2)
	}
	_, mr3 := postMine(t, ts, "abssup=2", uploadFIMI+"4\n", nil)
	if mr3.Cached {
		t.Fatalf("different upload bytes served from cache: %+v", mr3)
	}
}
