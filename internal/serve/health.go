// Process-health gauges and build identity for /metrics: before this,
// the exposition described the service (admission, runs, pool) but not
// the process serving it — an operator correlating a latency burn with
// a GC storm or a goroutine leak had to run pprof by hand. These are
// the three signals the incident runbook reaches for first, sampled
// through runtime/metrics with a small cache so scrapes stay cheap.
package serve

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"time"

	"repro/internal/obs/export"
	obsmetrics "repro/internal/obs/metrics"
)

// healthSampler reads the runtime's own metrics, refreshing at most
// once per second — GaugeFunc callbacks run per scrape per family, and
// metrics.Read + ReadMemStats are not free.
type healthSampler struct {
	mu      sync.Mutex
	last    time.Time
	samples []metrics.Sample

	goroutines  float64
	heapInUse   float64
	lastGCPause float64
}

func newHealthSampler() *healthSampler {
	return &healthSampler{samples: []metrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
	}}
}

// refresh re-reads the runtime if the cache is stale. Callers hold mu.
func (h *healthSampler) refresh() {
	now := time.Now()
	if now.Sub(h.last) < time.Second {
		return
	}
	h.last = now
	metrics.Read(h.samples)
	h.goroutines = float64(h.samples[0].Value.Uint64())
	h.heapInUse = float64(h.samples[1].Value.Uint64())
	// runtime/metrics exposes GC pauses only as a cumulative histogram;
	// the most recent pause still lives in MemStats' ring.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.NumGC > 0 {
		h.lastGCPause = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9
	}
}

func (h *healthSampler) read(f func(*healthSampler) float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.refresh()
	return f(h)
}

// registerHealthGauges adds the process-health families to reg.
func registerHealthGauges(reg *obsmetrics.Registry) {
	h := newHealthSampler()
	reg.GaugeFunc("fimserve_go_goroutines",
		"Live goroutines in the serving process.",
		func() float64 { return h.read(func(h *healthSampler) float64 { return h.goroutines }) })
	reg.GaugeFunc("fimserve_go_heap_inuse_bytes",
		"Heap bytes occupied by live objects (runtime/metrics heap/objects).",
		func() float64 { return h.read(func(h *healthSampler) float64 { return h.heapInUse }) })
	reg.GaugeFunc("fimserve_go_gc_last_pause_seconds",
		"Duration of the most recent GC stop-the-world pause.",
		func() float64 { return h.read(func(h *healthSampler) float64 { return h.lastGCPause }) })
}

// registerBuildInfo adds the info-style build identity gauge, value
// fixed at 1 with the identity in labels — the standard pattern for
// joining scrapes to builds. The commit comes from the same Provenance
// stamping fimbench writes into bench files, so a /metrics scrape and a
// bench artifact from one binary carry the same identity.
func registerBuildInfo(reg *obsmetrics.Registry) {
	p := export.CollectProvenance()
	commit := p.GitCommit
	if commit == "" {
		commit = "unknown"
	}
	reg.GaugeVec("fimserve_build_info",
		"Build identity of the serving binary; value is always 1.",
		"commit", "go_version").With(commit, p.GoVersion).Set(1)
}
