package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	fim "repro"
	"repro/internal/core"
	"repro/internal/obs/export"
	"repro/internal/vertical"
)

func (s *Server) routes() {
	s.mux.HandleFunc("POST /mine", s.handleMine)
	s.mux.HandleFunc("GET /runs", s.handleRuns)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRun)
	s.mux.HandleFunc("GET /runs/{id}/events", s.handleRunEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.Handle("GET /metrics", s.met.reg.Handler())
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)
	s.mux.HandleFunc("GET /debug/incidents", s.handleIncidents)
	s.mux.HandleFunc("GET /debug/incidents/{id}", s.handleIncident)
}

// mineRequest is a parsed, validated, budget-clamped /mine request.
type mineRequest struct {
	tenant  string
	dsKey   string // cache identity: "name@scale" or "upload:<hash>"
	dsLabel string
	db      *fim.DB
	absSup  int
	algo    core.Algorithm
	rep     vertical.Kind

	workers     int
	maxMemory   int64
	maxItemsets int64
	maxDuration time.Duration
	degrade     bool
	batch       bool
	limit       int // cap on itemsets echoed in the response body
}

// mineResponse is the /mine response body (and the run detail body).
type mineResponse struct {
	RunID      int64     `json:"run_id,omitempty"`
	Dataset    string    `json:"dataset"`
	Algo       string    `json:"algo"`
	Rep        string    `json:"rep"`
	AbsSup     int       `json:"min_support_abs"`
	Itemsets   int       `json:"itemsets"`
	MaxK       int       `json:"max_k"`
	Incomplete bool      `json:"incomplete,omitempty"`
	Degraded   bool      `json:"degraded,omitempty"`
	StopReason string    `json:"stop_reason,omitempty"`
	Error      string    `json:"error,omitempty"`
	Cached     bool      `json:"cached,omitempty"`
	ElapsedMS  float64   `json:"elapsed_ms"`
	Sets       []jsonSet `json:"sets,omitempty"`
}

type jsonSet struct {
	Items   []uint32 `json:"items"`
	Support int      `json:"support"`
}

func toJSONSets(sets []fim.ItemsetCount, limit int) []jsonSet {
	n := len(sets)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]jsonSet, n)
	for i := 0; i < n; i++ {
		items := make([]uint32, len(sets[i].Items))
		for j, it := range sets[i].Items {
			items[j] = uint32(it)
		}
		out[i] = jsonSet{Items: items, Support: sets[i].Support}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseMine turns an HTTP request into a validated mineRequest,
// building the database (built-in by name, or FIMI upload from the
// body) and clamping every requested budget to the server's maxima —
// a tenant can ask for less than the configured caps, never more.
func (s *Server) parseMine(w http.ResponseWriter, r *http.Request) (*mineRequest, bool) {
	q := r.URL.Query()
	mr := &mineRequest{
		tenant:      r.Header.Get("X-Tenant"),
		workers:     s.cfg.MineWorkers,
		maxMemory:   s.cfg.MaxRunMemory,
		maxDuration: s.cfg.MaxRunDuration,
		degrade:     true,
		batch:       true,
	}
	if mr.tenant == "" {
		mr.tenant = "anon"
	}

	algoName := q.Get("algo")
	if algoName == "" {
		algoName = "eclat"
	}
	algo, err := core.ParseAlgorithm(algoName)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad algo: %v", err)
		return nil, false
	}
	mr.algo = algo
	repName := q.Get("rep")
	if repName == "" {
		repName = "diffset"
	}
	rep, err := vertical.ParseKind(repName)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad rep: %v", err)
		return nil, false
	}
	mr.rep = rep

	// Dataset: a built-in by name (+scale), or a FIMI upload in the body.
	if name := q.Get("dataset"); name != "" {
		scale := 1.0
		if sv := q.Get("scale"); sv != "" {
			scale, err = strconv.ParseFloat(sv, 64)
			if err != nil || scale <= 0 || scale > 4 {
				httpError(w, http.StatusBadRequest, "bad scale %q (want 0 < scale <= 4)", sv)
				return nil, false
			}
		}
		db, err := fim.Dataset(name, scale)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad dataset: %v", err)
			return nil, false
		}
		mr.db = db
		mr.dsKey = fmt.Sprintf("%s@%g", name, scale)
		mr.dsLabel = mr.dsKey
	} else {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				httpError(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", mbe.Limit)
			} else {
				httpError(w, http.StatusBadRequest, "reading upload: %v", err)
			}
			return nil, false
		}
		if len(body) == 0 {
			httpError(w, http.StatusBadRequest, "no dataset: pass ?dataset=<name> or upload FIMI text in the body")
			return nil, false
		}
		sum := sha256.Sum256(body)
		key := "upload:" + hex.EncodeToString(sum[:6])
		db, err := fim.ReadFIMILimits(key, bytes.NewReader(body), s.cfg.UploadLimits)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad upload: %v", err)
			return nil, false
		}
		mr.db = db
		mr.dsKey = key
		mr.dsLabel = key
	}

	// Support threshold: relative (?support=0.4) or absolute (?abssup=120).
	switch {
	case q.Get("abssup") != "":
		abs, err := strconv.Atoi(q.Get("abssup"))
		if err != nil || abs < 1 {
			httpError(w, http.StatusBadRequest, "bad abssup %q", q.Get("abssup"))
			return nil, false
		}
		mr.absSup = abs
	case q.Get("support") != "":
		rel, err := strconv.ParseFloat(q.Get("support"), 64)
		if err != nil || rel <= 0 || rel > 1 {
			httpError(w, http.StatusBadRequest, "bad support %q (want a fraction in (0, 1])", q.Get("support"))
			return nil, false
		}
		mr.absSup = mr.db.AbsoluteSupport(rel)
	default:
		httpError(w, http.StatusBadRequest, "missing support threshold: pass ?support= or ?abssup=")
		return nil, false
	}

	// Tunables, clamped to the server's configured maxima.
	if wv := q.Get("workers"); wv != "" {
		n, err := strconv.Atoi(wv)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad workers %q", wv)
			return nil, false
		}
		if n > 0 && n < mr.workers {
			mr.workers = n
		}
	}
	if mv := q.Get("max-memory-mb"); mv != "" {
		n, err := strconv.ParseInt(mv, 10, 64)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad max-memory-mb %q", mv)
			return nil, false
		}
		if b := n << 20; b < mr.maxMemory {
			mr.maxMemory = b
		}
	}
	if iv := q.Get("max-itemsets"); iv != "" {
		n, err := strconv.ParseInt(iv, 10, 64)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad max-itemsets %q", iv)
			return nil, false
		}
		mr.maxItemsets = n
	}
	if tv := q.Get("timeout"); tv != "" {
		d, err := time.ParseDuration(tv)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "bad timeout %q", tv)
			return nil, false
		}
		if d < mr.maxDuration {
			mr.maxDuration = d
		}
	}
	if q.Get("degrade") == "off" {
		mr.degrade = false
	}
	if q.Get("batch") == "off" {
		mr.batch = false
	}
	if lv := q.Get("limit"); lv != "" {
		n, err := strconv.Atoi(lv)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q", lv)
			return nil, false
		}
		mr.limit = n
	}
	return mr, true
}

// handleMine is the admission ladder end to end: drain gate, parse,
// cache, single-flight, tenant quota, bounded queue (shed with 429 when
// full), then the run itself under per-request budgets, the shared
// memory pool and panic containment.
func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "anon"
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "10")
		httpError(w, http.StatusServiceUnavailable, "draining: not accepting new runs")
		s.finishRequest(tenant, outcomeDrained, false, start)
		return
	}
	mr, ok := s.parseMine(w, r)
	if !ok {
		s.finishRequest(tenant, outcomeBadRequest, false, start)
		return
	}
	ck := cacheKey{dataset: mr.dsKey, algo: mr.algo.String(), rep: mr.rep.String()}

	// Cache first: a hit costs no queue slot, no worker, no pool bytes.
	if sets, maxK, exact, hit := s.cache.lookup(ck, mr.absSup); hit {
		resp := mineResponse{
			Dataset: mr.dsLabel, Algo: ck.algo, Rep: ck.rep,
			AbsSup: mr.absSup, Itemsets: len(sets), MaxK: maxK,
			Cached: true, Sets: toJSONSets(sets, mr.limit),
		}
		writeJSON(w, http.StatusOK, resp)
		oc := outcomeCacheHit
		if !exact {
			oc = outcomeFiltered
		}
		s.finishRequest(mr.tenant, oc, false, start)
		return
	}

	// Register with the drain group before taking a flight slot: a
	// leader that 503'd here without finishing its flight would strand
	// its followers.
	if !s.beginRequest() {
		w.Header().Set("Retry-After", "10")
		httpError(w, http.StatusServiceUnavailable, "draining: not accepting new runs")
		s.finishRequest(mr.tenant, outcomeDrained, false, start)
		return
	}
	defer s.inflight.Done()

	// Single-flight: identical concurrent requests share one run.
	fk := flightKey{cacheKey: ck, absSup: mr.absSup}
	fl, leader, finish := s.flights.join(fk)
	if !leader {
		// Counted at join, not completion: "how many requests were
		// coalesced" is a statement about admission, and callers (tests
		// included) watch it to see the dedup happen.
		s.met.outcome(mr.tenant, outcomeCoalesced)
		select {
		case <-fl.done:
			writeOutcome(w, fl.out, mr.limit)
		case <-r.Context().Done():
			httpError(w, http.StatusServiceUnavailable, "client gone while waiting for shared run")
		}
		d := time.Since(start)
		s.met.requestDur.Observe(d.Seconds())
		s.slo.record(outcomeCoalesced, false, d)
		return
	}

	out := s.runLeader(r, mr, ck)
	finish(out)
	writeOutcome(w, out, mr.limit)
	oc, admitted := leaderOutcome(out)
	s.finishRequest(mr.tenant, oc, admitted, start)
}

// finishRequest records one terminal /mine outcome everywhere it is
// accounted: the admission and per-tenant counters, the request-latency
// histogram, and the SLO watchdog's window buckets.
func (s *Server) finishRequest(tenant, outcome string, admitted bool, start time.Time) {
	d := time.Since(start)
	s.met.requestDur.Observe(d.Seconds())
	s.met.outcome(tenant, outcome)
	s.slo.record(outcome, admitted, d)
}

// leaderOutcome classifies a leader's runOutcome into an admission
// outcome: pre-admission rejections keep their rung's label, everything
// that held a worker slot — complete, degraded or stopped — is
// "admitted".
func leaderOutcome(out *runOutcome) (string, bool) {
	switch out.stopReason {
	case "quota":
		return outcomeQuota, false
	case "shed":
		return outcomeShed, false
	case "canceled":
		if !out.ran {
			return outcomeAbandoned, false
		}
	}
	return outcomeAdmitted, true
}

// writeOutcome renders a shared run outcome onto one response, applying
// this request's own itemset limit and backoff header.
func writeOutcome(w http.ResponseWriter, out *runOutcome, limit int) {
	if out.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int((out.retryAfter+time.Second-1)/time.Second)))
	}
	resp := out.body
	resp.Sets = toJSONSets(out.sets, limit)
	writeJSON(w, out.status, resp)
}

// runLeader executes one admitted mining request: quota, queue, run,
// classification. It always returns an outcome (shared with
// single-flight followers) and always leaves the registry with a
// terminal record.
func (s *Server) runLeader(r *http.Request, mr *mineRequest, ck cacheKey) *runOutcome {
	base := mineResponse{
		Dataset: mr.dsLabel, Algo: ck.algo, Rep: ck.rep, AbsSup: mr.absSup,
	}

	// Tenant quota: one tenant cannot occupy the whole queue.
	leave, ok := s.adm.tenantEnter(mr.tenant)
	if !ok {
		ra := s.adm.retryAfter()
		base.Error = fmt.Sprintf("tenant %q over its quota of %d in-flight requests", mr.tenant, s.cfg.PerTenant)
		return &runOutcome{status: http.StatusTooManyRequests, body: base,
			stopReason: "quota", retryAfter: ra}
	}
	defer leave()

	runCtx, cancelRun := context.WithCancel(r.Context())
	defer cancelRun()
	bc := export.NewBroadcast(0)
	lr := s.reg.begin(RunInfo{
		Tenant: mr.tenant, Dataset: mr.dsLabel,
		Algo: ck.algo, Rep: ck.rep, AbsSup: mr.absSup,
	}, bc, cancelRun)
	base.RunID = lr.snapshot().ID

	// Bounded queue: full means shed now with 429 + Retry-After, not an
	// invisible unbounded backlog.
	qstart := time.Now()
	release, ok, shed := s.adm.acquire(runCtx, s.drainCh)
	if !ok {
		var status int
		var reason string
		if shed {
			status, reason = http.StatusTooManyRequests, "shed"
			base.Error = "admission queue full"
		} else {
			status, reason = http.StatusServiceUnavailable, "canceled"
			base.Error = "abandoned while queued (client gone or server draining)"
		}
		info := s.reg.finish(lr, func(ri *RunInfo) {
			ri.HTTPStatus = status
			ri.StopReason = reason
			ri.Err = base.Error
			ri.State = reason
		})
		s.flight.record(info)
		bc.CloseStream()
		base.StopReason = reason
		return &runOutcome{status: status, body: base, stopReason: reason,
			retryAfter: s.adm.retryAfter()}
	}
	defer release()
	s.met.queueWait.Observe(time.Since(qstart).Seconds())
	s.reg.running(lr)

	// Every n-th admitted run carries a span recorder whose timeline
	// lands in the flight recorder's trace ring.
	tr := s.flight.sample()
	if tr != nil {
		s.met.flightSampled.Inc()
	}

	opt := fim.Options{
		Algorithm:        mr.algo,
		Representation:   mr.rep,
		Workers:          mr.workers,
		Observer:         fim.MultiObserver(bc, s.met.tap()),
		RunID:            base.RunID,
		ProfileLabels:    true,
		Tenant:           mr.tenant,
		SpanTrace:        tr,
		MaxMemoryBytes:   mr.maxMemory,
		MaxItemsets:      mr.maxItemsets,
		MaxDuration:      mr.maxDuration,
		DegradeToDiffset: mr.degrade,
		DisableBatch:     !mr.batch,
		SharedPool:       s.pool,
	}
	start := time.Now()
	res, err := fim.MineAbsoluteContext(runCtx, mr.db, mr.absSup, opt)
	elapsed := time.Since(start)
	s.adm.observe(elapsed)
	bc.CloseStream()

	out := s.classify(mr, ck, base, res, err, elapsed)
	out.ran = true
	s.met.observeRun(elapsed, out.stopReason)
	info := s.reg.finish(lr, func(ri *RunInfo) {
		ri.HTTPStatus = out.status
		ri.StopReason = out.stopReason
		ri.Err = out.body.Error
		ri.Itemsets = out.body.Itemsets
		ri.MaxK = out.body.MaxK
		ri.Incomplete = out.body.Incomplete
		ri.Degraded = out.body.Degraded
	})
	s.flight.record(info)
	s.flight.addTrace(info.ID, tr)
	switch out.stopReason {
	case "worker-panic":
		if s.cfg.FlightPath != "" {
			// A contained panic is exactly what the flight recorder exists
			// for: snapshot now, to a side file the drain dump won't clobber.
			_ = s.flight.writeFile(s.cfg.FlightPath+".panic", "panic")
		}
		s.incidents.trigger(IncidentWorkerPanic, out.body.Error, info.ID)
	case "budget:shared-memory":
		// The machine-wide pool stopped this run: the footprint wall the
		// paper's §V-A predicts, worth a heap profile while it's hot.
		s.incidents.trigger(IncidentPoolBreach, out.body.Error, info.ID)
	}
	return out
}

// handleIncidents lists the retained incident bundles (oldest first).
func (s *Server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	list := s.incidents.list()
	writeJSON(w, http.StatusOK, map[string]any{
		"count":     len(list),
		"captured":  s.incidents.count(),
		"incidents": list,
	})
}

// handleIncident serves one full bundle by ID.
func (s *Server) handleIncident(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad incident id %q", r.PathValue("id"))
		return
	}
	b, ok := s.incidents.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "incident %d not found (the ring keeps the last %d)", id, s.cfg.IncidentRing)
		return
	}
	writeJSON(w, http.StatusOK, b)
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.flight.dump("request"))
}

// classify maps a finished run onto the degrade-don't-die status
// ladder: complete results are 200 and cached; budget stops,
// cancellation and deadlines are 200 with Incomplete and a classified
// stop_reason (a partial answer is an answer); a contained worker
// panic is the one 500 — the injured run fails alone while everyone
// else's requests proceed.
func (s *Server) classify(mr *mineRequest, ck cacheKey, base mineResponse, res *fim.Result, err error, elapsed time.Duration) *runOutcome {
	base.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	var sets []fim.ItemsetCount
	if res != nil {
		sets = res.Decoded()
		base.Itemsets = len(sets)
		base.MaxK = res.MaxK
		base.Incomplete = res.Incomplete
		base.Degraded = res.Degraded
	}
	if err == nil {
		s.cache.store(ck, mr.absSup, sets, base.MaxK)
		return &runOutcome{status: http.StatusOK, body: base, sets: sets}
	}
	reason := fim.StopReason(err)
	base.StopReason = reason
	base.Error = err.Error()
	switch reason {
	case "worker-panic":
		s.met.panics.Inc()
		return &runOutcome{status: http.StatusInternalServerError, body: base, sets: sets, stopReason: reason}
	case "budget:memory", "budget:itemsets", "budget:duration", "budget:shared-memory",
		"canceled", "deadline":
		// Partial results are answers: the supports emitted are exact,
		// Incomplete is set, the reason is classified. Not cacheable.
		base.Incomplete = true
		return &runOutcome{status: http.StatusOK, body: base, sets: sets, stopReason: reason}
	}
	return &runOutcome{status: http.StatusInternalServerError, body: base, sets: sets, stopReason: reason}
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	live, recent := s.reg.list()
	writeJSON(w, http.StatusOK, map[string]any{"live": live, "recent": recent})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad run id %q", r.PathValue("id"))
		return
	}
	info, _, ok := s.reg.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "run %d not found (finished runs are kept for the last %d)", id, s.cfg.RecentRuns)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad run id %q", r.PathValue("id"))
		return
	}
	_, bc, ok := s.reg.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "run %d not found", id)
		return
	}
	if bc == nil {
		httpError(w, http.StatusGone, "run %d finished; its event stream is gone", id)
		return
	}
	export.ServeSSE(w, r, bc)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process serves HTTP. Readiness is /readyz's job.
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readiness struct {
		Ready       bool      `json:"ready"`
		Reason      string    `json:"reason,omitempty"`
		QueueDepth  int       `json:"queue_depth"`
		QueueCap    int       `json:"queue_cap"`
		MemFraction float64   `json:"mem_fraction"`
		SLO         SLOStatus `json:"slo"`
	}
	// The SLO state is surfaced, not gated on: readiness stays a
	// capacity question (draining, queue, memory) so a burn-rate page —
	// which already means "shedding load" — doesn't also yank the
	// instance from rotation and make the overload worse.
	rd := readiness{
		QueueDepth:  s.adm.queueLen(),
		QueueCap:    s.cfg.QueueDepth,
		MemFraction: s.pool.Fraction(),
		SLO:         s.slo.current(),
	}
	switch {
	case s.draining.Load():
		rd.Reason = "draining"
	case rd.QueueDepth >= rd.QueueCap:
		rd.Reason = "admission queue full"
	case rd.MemFraction > s.cfg.ReadyMemFrac:
		rd.Reason = fmt.Sprintf("memory pressure: pool %.0f%% full", rd.MemFraction*100)
	default:
		rd.Ready = true
		writeJSON(w, http.StatusOK, rd)
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, rd)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}
