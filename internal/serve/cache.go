package serve

import (
	"sync"

	fim "repro"
)

// cacheKey identifies a mining problem up to the support threshold: the
// dataset content hash (or built-in name@scale), algorithm and
// representation. The threshold is deliberately NOT part of the key —
// a complete run at absolute support s answers every request at
// support >= s by filtering, so the cache keeps the lowest-support
// complete answer per key and serves the rest from it.
type cacheKey struct {
	dataset string
	algo    string
	rep     string
}

// cacheEntry is one complete mining answer: the decoded itemsets of a
// run at minSupAbs, in canonical order.
type cacheEntry struct {
	minSupAbs int
	sets      []fim.ItemsetCount
	maxK      int
	bytes     int64 // cost accounting
	lastUse   int64 // eviction recency (monotonic sequence, not time)
}

// resultCache is the single-node answer cache with cost-aware eviction:
// entries are charged by payload bytes, and when the budget overflows
// the entry with the highest staleness x size score is evicted first —
// a big stale answer goes before a small one of equal age.
type resultCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	seq     int64
	entries map[cacheKey]*cacheEntry

	// met holds the cache's registry instruments; the cache increments
	// them directly so /metrics and /stats read the same atomics.
	met *cacheMetrics
}

func newResultCache(budget int64, met *cacheMetrics) *resultCache {
	return &resultCache{budget: budget, entries: make(map[cacheKey]*cacheEntry), met: met}
}

func entryBytes(sets []fim.ItemsetCount) int64 {
	var b int64
	for _, c := range sets {
		b += int64(len(c.Items))*4 + 24 // items + slice header/support
	}
	return b + 64
}

// lookup answers a request at absolute support absSup if a complete
// entry at support <= absSup exists. The exact-threshold case is a
// plain hit (exact=true); a lower-threshold entry answers by filtering
// — supports are exact either way because a run at lower minsup finds
// a superset of the itemsets with identical counts.
func (c *resultCache) lookup(k cacheKey, absSup int) (sets []fim.ItemsetCount, maxK int, exact, ok bool) {
	if c.budget < 0 {
		return nil, 0, false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.entries[k]
	if !found || e.minSupAbs > absSup {
		c.met.misses.Inc()
		return nil, 0, false, false
	}
	c.seq++
	e.lastUse = c.seq
	if e.minSupAbs == absSup {
		c.met.hits.Inc()
		return e.sets, e.maxK, true, true
	}
	c.met.filtered.Inc()
	out := make([]fim.ItemsetCount, 0, len(e.sets))
	for _, ic := range e.sets {
		if ic.Support >= absSup {
			out = append(out, ic)
			if len(ic.Items) > maxK {
				maxK = len(ic.Items)
			}
		}
	}
	return out, maxK, false, true
}

// store saves a complete answer. Only a lower (or first) support
// threshold replaces an existing entry: the lowest-minsup answer
// dominates every higher one.
func (c *resultCache) store(k cacheKey, absSup int, sets []fim.ItemsetCount, maxK int) {
	if c.budget < 0 {
		return
	}
	nb := entryBytes(sets)
	if c.budget > 0 && nb > c.budget {
		return // larger than the whole cache: not cacheable
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, found := c.entries[k]; found {
		if old.minSupAbs <= absSup {
			return // existing entry already answers this and more
		}
		c.used -= old.bytes
		delete(c.entries, k)
	}
	c.seq++
	c.entries[k] = &cacheEntry{minSupAbs: absSup, sets: sets, maxK: maxK, bytes: nb, lastUse: c.seq}
	c.used += nb
	c.evict()
	c.met.bytes.Set(c.used)
}

// evict drops highest staleness x size first until within budget.
// Linear scan: the cache holds answers, not objects, so entry counts
// stay small.
func (c *resultCache) evict() {
	if c.budget <= 0 {
		return
	}
	for c.used > c.budget && len(c.entries) > 1 {
		var worstKey cacheKey
		var worstScore float64 = -1
		for k, e := range c.entries {
			score := float64(c.seq-e.lastUse+1) * float64(e.bytes)
			if score > worstScore {
				worstScore, worstKey = score, k
			}
		}
		c.used -= c.entries[worstKey].bytes
		delete(c.entries, worstKey)
		c.met.evictions.Inc()
	}
	// A single over-budget entry is kept (it was admitted under the
	// size gate above, so this only happens after a budget shrink).
}

func (c *resultCache) stats() (hits, filtered, misses, bytes, evictions int64) {
	return c.met.hits.Value(), c.met.filtered.Value(), c.met.misses.Value(),
		c.met.bytes.Value(), c.met.evictions.Value()
}

// flightGroup deduplicates identical in-flight requests (same dataset,
// algorithm, representation AND absolute support): followers wait for
// the leader's outcome instead of re-running the same mining problem
// side by side. Unlike the cache, the flight key includes the
// threshold — a follower must see the exact same answer, status code
// and all.
type flightGroup struct {
	mu      sync.Mutex
	flights map[flightKey]*flight
}

type flightKey struct {
	cacheKey
	absSup int
}

// flight is one in-progress mining request and its eventual outcome.
type flight struct {
	done chan struct{}
	out  *runOutcome
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[flightKey]*flight)}
}

// join returns the in-flight leader for k, or registers the caller as
// leader (leader=true). A leader must call its finish func with the
// outcome exactly once, even on failure.
func (g *flightGroup) join(k flightKey) (f *flight, leader bool, finish func(*runOutcome)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[k]; ok {
		return f, false, nil
	}
	f = &flight{done: make(chan struct{})}
	g.flights[k] = f
	return f, true, func(out *runOutcome) {
		g.mu.Lock()
		delete(g.flights, k)
		g.mu.Unlock()
		f.out = out
		close(f.done)
	}
}
