// The flight recorder: a fixed-size ring of the last N terminal run
// records plus K sampled span timelines, cheap enough to run always-on
// and dumped exactly when an operator needs a post-mortem — on drain,
// on a contained worker panic, and on demand at /debug/flight. Where
// /metrics answers "how is the service doing", the flight dump answers
// "what were the last things it did before it stopped doing them".
package serve

import (
	"encoding/json"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// flightSchema versions the dump format.
const flightSchema = "fimserve-flight/v1"

// flightTrace is one sampled run timeline: the registry run ID it
// correlates to, plus the recorded spans.
type flightTrace struct {
	RunID        int64      `json:"run_id"`
	Workers      int        `json:"workers"`
	DroppedSpans int64      `json:"dropped_spans,omitempty"`
	Spans        []obs.Span `json:"spans"`
}

// FlightDump is the serialized flight-recorder state: the last runs
// (oldest first) and the sampled timelines.
type FlightDump struct {
	Schema          string        `json:"schema"`
	Reason          string        `json:"reason"` // drain | panic | request | incident
	GeneratedUnixNS int64         `json:"generated_unix_ns"`
	Runs            []RunInfo     `json:"runs"`
	Traces          []flightTrace `json:"traces,omitempty"`
}

// flightSpanLimit caps a sampled timeline's retained spans — flight
// traces are post-mortem breadcrumbs, not full Perfetto exports, so
// they stay small enough to dump into one JSON file.
const flightSpanLimit = 1 << 14

// flightRecorder keeps the rings. All methods are safe for concurrent
// use; recording is O(1) with one short critical section.
type flightRecorder struct {
	mu          sync.Mutex
	runs        []RunInfo // ring of terminal run records
	runNext     int
	runFull     bool
	traces      []flightTrace // ring of sampled timelines
	trNext      int
	trFull      bool
	admitted    int64 // admitted runs seen, drives sampling
	sampleEvery int
}

func newFlightRecorder(runs, traces, sampleEvery int) *flightRecorder {
	return &flightRecorder{
		runs:        make([]RunInfo, runs),
		traces:      make([]flightTrace, traces),
		sampleEvery: sampleEvery,
	}
}

// record files one terminal run record into the ring.
func (f *flightRecorder) record(ri RunInfo) {
	f.mu.Lock()
	f.runs[f.runNext] = ri
	f.runNext++
	if f.runNext == len(f.runs) {
		f.runNext, f.runFull = 0, true
	}
	f.mu.Unlock()
}

// sample returns a span recorder for every sampleEvery-th admitted run
// (the first included), nil otherwise. The caller attaches the recorder
// to the run and hands it back via addTrace when the run ends.
func (f *flightRecorder) sample() *obs.TraceRecorder {
	if len(f.traces) == 0 || f.sampleEvery <= 0 {
		return nil
	}
	f.mu.Lock()
	n := f.admitted
	f.admitted++
	f.mu.Unlock()
	if n%int64(f.sampleEvery) != 0 {
		return nil
	}
	tr := obs.NewTraceRecorder()
	tr.SetLimit(flightSpanLimit)
	return tr
}

// addTrace files a completed sampled timeline under its run ID.
func (f *flightRecorder) addTrace(runID int64, tr *obs.TraceRecorder) {
	if tr == nil {
		return
	}
	t := flightTrace{
		RunID:        runID,
		Workers:      tr.Workers(),
		DroppedSpans: tr.Dropped(),
		Spans:        tr.Spans(),
	}
	f.mu.Lock()
	f.traces[f.trNext] = t
	f.trNext++
	if f.trNext == len(f.traces) {
		f.trNext, f.trFull = 0, true
	}
	f.mu.Unlock()
}

// unring copies a ring's occupied entries oldest-first.
func unring[T any](buf []T, next int, full bool, empty func(T) bool) []T {
	var out []T
	if full {
		out = append(out, buf[next:]...)
	}
	for _, v := range buf[:next] {
		if !empty(v) {
			out = append(out, v)
		}
	}
	return out
}

// dump snapshots the recorder state.
func (f *flightRecorder) dump(reason string) FlightDump {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FlightDump{
		Schema:          flightSchema,
		Reason:          reason,
		GeneratedUnixNS: time.Now().UnixNano(),
		Runs:            unring(f.runs, f.runNext, f.runFull, func(r RunInfo) bool { return r.ID == 0 }),
		Traces:          unring(f.traces, f.trNext, f.trFull, func(t flightTrace) bool { return t.RunID == 0 }),
	}
}

// writeFile dumps the recorder state as JSON at path.
func (f *flightRecorder) writeFile(path, reason string) error {
	b, err := json.MarshalIndent(f.dump(reason), "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
