package apriori

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/perf"
	"repro/internal/sched"
	"repro/internal/verify"
	"repro/internal/vertical"
)

const classic = `1 2 5
2 4
2 3
1 2 4
1 3
2 3
1 3
1 2 3 5
1 2 3
`

func classicRecoded(t *testing.T, minSup int) *dataset.Recoded {
	t.Helper()
	db, err := dataset.ReadFIMI("classic", strings.NewReader(classic))
	if err != nil {
		t.Fatal(err)
	}
	return db.Recode(minSup)
}

// The classic Han & Kamber example: minSup 2 yields these frequent sets.
func TestMineClassicExample(t *testing.T) {
	rec := classicRecoded(t, 2)
	res := mine(rec, 2, core.DefaultOptions(vertical.Tidset, 1))
	want := map[string]int{
		"{1}": 6, "{2}": 7, "{3}": 6, "{4}": 2, "{5}": 2,
		"{1, 2}": 4, "{1, 3}": 4, "{1, 5}": 2, "{2, 3}": 4, "{2, 4}": 2, "{2, 5}": 2,
		"{1, 2, 3}": 2, "{1, 2, 5}": 2,
	}
	got := res.Decoded()
	if len(got) != len(want) {
		t.Fatalf("found %d itemsets, want %d: %v", len(got), len(want), got)
	}
	for _, c := range got {
		if want[c.Items.String()] != c.Support {
			t.Errorf("%v support %d, want %d", c.Items, c.Support, want[c.Items.String()])
		}
	}
	if res.MaxK != 3 {
		t.Errorf("MaxK = %d, want 3", res.MaxK)
	}
}

func TestMineAllRepresentationsAgree(t *testing.T) {
	rec := classicRecoded(t, 2)
	ref := verify.Reference(rec, 2)
	for _, kind := range vertical.AllKinds() {
		res := mine(rec, 2, core.DefaultOptions(kind, 1))
		if !res.Equal(ref) {
			t.Errorf("%v disagrees with reference:\n%s", kind, verify.Diff(res, ref))
		}
	}
}

func TestMineParallelMatchesSerial(t *testing.T) {
	rec := classicRecoded(t, 2)
	serial := mine(rec, 2, core.DefaultOptions(vertical.Diffset, 1))
	for _, workers := range []int{2, 3, 8, 64} {
		for _, schedule := range []sched.Schedule{
			{Policy: sched.Static}, {Policy: sched.Dynamic, Chunk: 1}, {Policy: sched.Guided},
		} {
			opt := core.DefaultOptions(vertical.Diffset, workers)
			opt.Schedule, opt.HasSchedule = schedule, true
			res := mine(rec, 2, opt)
			if !res.Equal(serial) {
				t.Errorf("workers=%d %v disagrees with serial:\n%s", workers, schedule, verify.Diff(res, serial))
			}
		}
	}
}

func TestMineWithoutPruning(t *testing.T) {
	rec := classicRecoded(t, 2)
	opt := core.DefaultOptions(vertical.Tidset, 2)
	opt.Prune = false
	res := mine(rec, 2, opt)
	ref := verify.Reference(rec, 2)
	if !res.Equal(ref) {
		t.Errorf("unpruned Apriori wrong:\n%s", verify.Diff(res, ref))
	}
}

func TestMineEdgeCases(t *testing.T) {
	// Threshold above all supports: only the recode survives (nothing).
	db, _ := dataset.ReadFIMI("t", strings.NewReader("1 2\n1 2\n"))
	rec := db.Recode(3)
	res := mine(rec, 3, core.DefaultOptions(vertical.Tidset, 2))
	if res.Len() != 0 {
		t.Errorf("found %d itemsets above max support", res.Len())
	}
	// Single transaction, minSup 1: all subsets frequent.
	db2, _ := dataset.ReadFIMI("t", strings.NewReader("1 2 3\n"))
	rec2 := db2.Recode(1)
	res2 := mine(rec2, 1, core.DefaultOptions(vertical.Diffset, 1))
	if res2.Len() != 7 { // 2^3 - 1
		t.Errorf("single transaction: %d itemsets, want 7", res2.Len())
	}
	// Empty database.
	rec3 := (&dataset.DB{}).Recode(1)
	res3 := mine(rec3, 1, core.DefaultOptions(vertical.Bitvector, 4))
	if res3.Len() != 0 {
		t.Errorf("empty DB produced %d itemsets", res3.Len())
	}
	// minSup below 1 clamps.
	res4 := mine(rec2, 0, core.DefaultOptions(vertical.Tidset, 1))
	if res4.MinSup != 1 {
		t.Errorf("MinSup = %d", res4.MinSup)
	}
}

func TestCollectorRecordsPhases(t *testing.T) {
	rec := classicRecoded(t, 2)
	col := &perf.Collector{}
	opt := core.DefaultOptions(vertical.Tidset, 2)
	opt.Collector = col
	mine(rec, 2, opt)
	if len(col.Phases) < 3 { // roots + gen2 + gen3
		t.Fatalf("recorded %d phases", len(col.Phases))
	}
	gen2 := col.Phases[1]
	if gen2.Name != "apriori/gen2" || !gen2.Shared {
		t.Errorf("phase 1 = %q shared=%v", gen2.Name, gen2.Shared)
	}
	if gen2.TotalWork() == 0 || gen2.TotalRemote() == 0 {
		t.Error("gen2 recorded no work")
	}
	// Apriori phases are shared-parent: remote equals the combine reads,
	// so remote <= work.
	if gen2.TotalRemote() > gen2.TotalWork() {
		t.Error("remote exceeds work")
	}
}

func TestMemoryFootprintOrdering(t *testing.T) {
	// On dense data the diffset payloads of generations >= 2 must be
	// smaller than the tidset payloads (the paper's §V-A argument; the
	// level-1 diffsets are complements and can be large, so roots are
	// excluded as the paper's Figure 2 discussion implies).
	var sb strings.Builder
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		for it := 1; it <= 6; it++ {
			if r.Intn(10) > 0 { // each item present with probability 0.9
				sb.WriteString(" ")
				sb.WriteString([]string{"", "1", "2", "3", "4", "5", "6"}[it])
			}
		}
		sb.WriteString("\n")
	}
	db, err := dataset.ReadFIMI("dense", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	rec := db.Recode(db.AbsoluteSupport(0.5))
	colT, colD := &perf.Collector{}, &perf.Collector{}
	optT := core.DefaultOptions(vertical.Tidset, 1)
	optT.Collector = colT
	optD := core.DefaultOptions(vertical.Diffset, 1)
	optD.Collector = colD
	mine(rec, rec.MinSup, optT)
	mine(rec, rec.MinSup, optD)
	allocAfterRoots := func(c *perf.Collector) int64 {
		var b int64
		for _, p := range c.Phases[1:] {
			b += p.TotalAlloc()
		}
		return b
	}
	dAlloc, tAlloc := allocAfterRoots(colD), allocAfterRoots(colT)
	if dAlloc >= tAlloc {
		t.Errorf("diffset alloc %d not below tidset alloc %d on dense data", dAlloc, tAlloc)
	}
}

// Property: Apriori agrees with the exhaustive reference on random
// databases for every representation and several worker counts.
func TestQuickAgainstReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &dataset.DB{Name: "rand"}
		nTrans := 5 + r.Intn(40)
		nItems := 3 + r.Intn(7)
		for i := 0; i < nTrans; i++ {
			var items []itemset.Item
			for it := 0; it < nItems; it++ {
				if r.Intn(3) > 0 {
					items = append(items, itemset.Item(it))
				}
			}
			if len(items) == 0 {
				items = append(items, 0)
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		minSup := 1 + r.Intn(nTrans/2+1)
		rec := db.Recode(minSup)
		ref := verify.Reference(rec, minSup)
		kind := vertical.Kinds()[r.Intn(3)]
		workers := []int{1, 4}[r.Intn(2)]
		res := mine(rec, minSup, core.DefaultOptions(kind, workers))
		return res.Equal(ref)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("apriori vs reference: %v", err)
	}
}

func TestLazyMaterializeMatchesEager(t *testing.T) {
	rec := classicRecoded(t, 2)
	for _, kind := range vertical.AllKinds() {
		eager := mine(rec, 2, core.DefaultOptions(kind, 2))
		opt := core.DefaultOptions(kind, 2)
		opt.LazyMaterialize = true
		lazy := mine(rec, 2, opt)
		if !lazy.Equal(eager) {
			t.Errorf("%v: lazy disagrees with eager:\n%s", kind, verify.Diff(lazy, eager))
		}
	}
}

func TestLazyMaterializeReducesAllocation(t *testing.T) {
	// A workload with many infrequent candidates: lazy materialization
	// must allocate strictly less payload.
	var sb strings.Builder
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 80; i++ {
		for it := 1; it <= 10; it++ {
			if r.Intn(3) == 0 {
				sb.WriteString(" ")
				sb.WriteString([]string{"", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10"}[it])
			}
		}
		sb.WriteString("\n")
	}
	db, err := dataset.ReadFIMI("sparse", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	rec := db.Recode(db.AbsoluteSupport(0.2))
	colE, colL := &perf.Collector{}, &perf.Collector{}
	optE := core.DefaultOptions(vertical.Tidset, 1)
	optE.Collector = colE
	optL := core.DefaultOptions(vertical.Tidset, 1)
	optL.Collector = colL
	optL.LazyMaterialize = true
	a := mine(rec, rec.MinSup, optE)
	b := mine(rec, rec.MinSup, optL)
	if !a.Equal(b) {
		t.Fatalf("results differ:\n%s", verify.Diff(a, b))
	}
	if colL.TotalAlloc() >= colE.TotalAlloc() {
		t.Errorf("lazy alloc %d not below eager %d", colL.TotalAlloc(), colE.TotalAlloc())
	}
}

// mine wraps Mine for the test call sites that expect an error-free
// run: no budget or cancellation is in play, so an error is a failure.
func mine(rec *dataset.Recoded, minSup int, opt core.Options) *core.Result {
	res, err := Mine(rec, minSup, opt)
	if err != nil {
		panic(err)
	}
	return res
}
