// Batch on/off equivalence for Apriori's counting loop: the
// prefix-blocked path must produce exactly the same frequent itemsets
// and supports as the pairwise loop, with and without pruning, across
// representations and worker counts.
package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/verify"
	"repro/internal/vertical"
)

func TestBatchMatchesPairwise(t *testing.T) {
	rec := classicRecoded(t, 2)
	for _, kind := range vertical.AllKinds() {
		for _, workers := range []int{1, 4} {
			for _, prune := range []bool{true, false} {
				on := core.DefaultOptions(kind, workers)
				on.Prune = prune
				off := on
				off.Batch = false
				a, b := mine(rec, 2, on), mine(rec, 2, off)
				if !a.Equal(b) {
					t.Errorf("%v workers=%d prune=%v: batch != pairwise:\n%s",
						kind, workers, prune, verify.Diff(a, b))
				}
			}
		}
	}
}

func TestQuickBatchMatchesPairwise(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &dataset.DB{Name: "rand"}
		nTrans := 5 + r.Intn(40)
		nItems := 3 + r.Intn(7)
		for i := 0; i < nTrans; i++ {
			var items []itemset.Item
			for it := 0; it < nItems; it++ {
				if r.Intn(3) > 0 {
					items = append(items, itemset.Item(it))
				}
			}
			if len(items) == 0 {
				items = append(items, 0)
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		minSup := 1 + r.Intn(nTrans/2+1)
		rec := db.Recode(minSup)
		on := core.DefaultOptions(vertical.AllKinds()[r.Intn(4)], []int{1, 4}[r.Intn(2)])
		off := on
		off.Batch = false
		return mine(rec, minSup, on).Equal(mine(rec, minSup, off))
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("batch vs pairwise: %v", err)
	}
}
