// Package apriori implements Algorithm 1 of the paper: generational
// (breadth-first) frequent itemset mining over any vertical
// representation (the paper's three plus the hybrid extension), with the
// support-counting loop parallelized by an OpenMP-style worker team
// under static scheduling (§III).
//
// Per generation the miner:
//
//  1. joins sibling pairs of the candidate trie's top level
//     (candidate_generation),
//  2. optionally prunes candidates with an infrequent subset,
//  3. counts every candidate's support in parallel — each iteration
//     combines the candidate's two parent payloads into its own payload,
//     with no shared mutable state ("each thread calculates an
//     independent support and does not have data dependency"),
//  4. commits the frequent survivors as the next trie level
//     (candidate_pruning).
//
// The loop terminates when a generation yields no frequent candidates.
//
// Because every generation retains the payload of every frequent
// candidate, Apriori's working set is the full breadth of a level — the
// memory-footprint property behind its poor tidset/bitvector scalability
// in the paper's evaluation (§V-A).
package apriori

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trie"
	"repro/internal/vertical"
)

// DefaultSchedule is the paper's choice for Apriori's support-counting
// loop: static scheduling ("the static scheduling can partition the
// workload as there [are] enough iterations").
var DefaultSchedule = sched.Schedule{Policy: sched.Static}

// Mine runs Apriori over the recoded database with the given absolute
// minimum support.
//
// When opt.Control is set, the run is cancellable and budgeted: the
// team's counting loops drain at chunk boundaries, the live payload
// footprint of each generation is charged against the memory budget, and
// a breach either stops the run (*runctl.BudgetError) or — under
// DegradeToDiffset on a tidset/bitvector run — rewrites the newest level
// as diffsets relative to each node's generation parent and continues
// under the bounded representation. A stopped run returns the partial
// Result (Incomplete set, supports of everything committed exact)
// together with the stop cause.
func Mine(rec *dataset.Recoded, minSup int, opt core.Options) (*core.Result, error) {
	if minSup < 1 {
		minSup = 1
	}
	rep := vertical.New(opt.Representation)
	schedule := DefaultSchedule
	if opt.HasSchedule {
		schedule = opt.Schedule
	}
	team := sched.NewTeam(opt.Workers)
	col := opt.Collector
	rc := opt.Control
	o := opt.Observer
	met := opt.Metrics
	team.SetMetrics(met)

	res := &core.Result{
		Algorithm:      core.Apriori,
		Representation: opt.Representation,
		MinSup:         minSup,
		Rec:            rec,
	}

	// Generation 1: the recode pass already counted item supports.
	tr := trie.NewRoot(itemSupports(rec))
	nodes := rep.Roots(rec) // payload of each level-1 node, index-aligned with the trie level
	if root := col.NewPhase("apriori/roots", schedule, true, len(nodes)); root != nil {
		for i, n := range nodes {
			root.Add(i, int64(n.Bytes()), 0, int64(n.Bytes()))
		}
	}

	// collect gathers every committed level into res; valid at any stop
	// point because Commit only ever appends whole frequent levels.
	collect := func(err error) (*core.Result, error) {
		sets, sups := tr.FrequentItemsets()
		res.Counts = make([]core.ItemsetCount, len(sets))
		for i := range sets {
			res.Counts[i] = core.ItemsetCount{Items: sets[i], Support: sups[i]}
			if len(sets[i]) > res.MaxK {
				res.MaxK = len(sets[i])
			}
		}
		if err != nil {
			res.Incomplete = true
			res.StopCause = err
		}
		return res, err
	}

	// degrade rewrites the newest level as diffsets (relative to each
	// node's generation parent, so sibling joins stay exact) and switches
	// the representation for the remaining generations.
	degrade := func(gen int, level []vertical.Node, parentOf func(w int) vertical.Node) bool {
		if res.Degraded || !vertical.Degradable(rep.Kind()) {
			return false
		}
		before := vertical.NodesBytes(level)
		for w, n := range level {
			level[w] = vertical.DegradeChild(parentOf(w), n)
		}
		rc.ChargeMem(vertical.NodesBytes(level) - before)
		rep = vertical.New(vertical.Diffset)
		res.Degraded = true
		obs.Emit(o, obs.Event{Type: obs.Degraded, Level: gen,
			Representation: vertical.Diffset.String(), LiveBytes: rc.MemUsed()})
		return true
	}

	// Per-worker arenas for the batched combine path: candidate payloads
	// recycle generation over generation, so once the free lists warm up
	// the counting loop stops touching the allocator.
	arenas := make([]*vertical.Arena, team.Workers())
	for w := range arenas {
		arenas[w] = vertical.NewArena()
	}
	// Roots are seeded from the recoded database and may share backing
	// storage with it, so they are never recycled; every later level is
	// miner-owned and safe to release once retired.
	parentsReleasable := false

	obs.Emit(o, obs.Event{Type: obs.LevelStart, Level: 1, Phase: "apriori/roots",
		Candidates: len(nodes)})
	rc.ChargeMem(MemoryFootprint(nodes))
	if err := rc.AddItemsets(len(nodes)); err != nil {
		return collect(err)
	}
	if rc.OverMemory() {
		if rc.Budget().DegradeToDiffset && !res.Degraded && vertical.Degradable(rep.Kind()) {
			before := MemoryFootprint(nodes)
			for i, n := range nodes {
				nodes[i] = vertical.DegradeRoot(n, rec.Universe)
			}
			rc.ChargeMem(MemoryFootprint(nodes) - before)
			rep = vertical.New(vertical.Diffset)
			res.Degraded = true
			obs.Emit(o, obs.Event{Type: obs.Degraded, Level: 1,
				Representation: vertical.Diffset.String(), LiveBytes: rc.MemUsed()})
		} else if err := rc.CheckMemory(); err != nil {
			return collect(err)
		}
	}
	obs.Emit(o, obs.Event{Type: obs.LevelEnd, Level: 1, Phase: "apriori/roots",
		Frequent: len(nodes), LiveBytes: rc.MemUsed()})

	for gen := 1; tr.Levels[len(tr.Levels)-1].Len() != 0; gen++ {
		if err := rc.Err(); err != nil {
			return collect(err)
		}
		levelStart := time.Now()
		cands := tr.Generate()
		generated := cands.Len()
		pruned := 0
		if opt.Prune {
			// Subset pruning runs on the team: the k-level hash index is
			// built once, the per-candidate checks fan out.
			var err error
			if pruned, err = tr.PruneParallel(cands, team, schedule, rc); err != nil {
				return collect(err)
			}
		}
		n := cands.Len()
		if n == 0 {
			break
		}
		// Deferred payloads (nodeset's lazy 2-itemset lists) materialize
		// once per parent up front: the counting loop shares parents
		// across concurrently counted blocks — a node is x in its own
		// block and y in its elder siblings' — so the in-combine
		// materialization that class-recursive miners rely on would race
		// here. The prepass is itself parallel; each node is touched by
		// exactly one iteration.
		if len(nodes) > 0 {
			if _, ok := nodes[0].(vertical.Preparer); ok {
				used := make([]bool, len(nodes))
				for i := 0; i < n; i++ {
					used[cands.Px[i]] = true
					used[cands.Py[i]] = true
				}
				if err := team.ForCtx(rc, len(nodes), schedule, func(_, i int) {
					if used[i] {
						nodes[i].(vertical.Preparer).Prepare()
					}
				}); err != nil {
					return collect(err)
				}
			}
		}
		phaseName := fmt.Sprintf("apriori/gen%d", gen+1)
		obs.Emit(o, obs.Event{Type: obs.LevelStart, Level: gen + 1, Phase: phaseName,
			Candidates: generated, Pruned: pruned})
		met.Label(phaseName)
		phase := col.NewPhase(phaseName, schedule, true, n)
		// Serial overhead of generation + pruning: proportional to the
		// candidate rows touched.
		phase.AddSerial(int64(n) * 16)
		if phase != nil {
			// The parent pool is the previous level's payloads, shared
			// machine-wide.
			phase.UniqueParent = MemoryFootprint(nodes)
		}

		counter, lazy := rep.(vertical.SupportOnly)
		lazy = lazy && opt.LazyMaterialize
		batch := opt.Batch && !lazy // CombineSupport has no batched form

		// Parallel support counting (Algorithm 1 line 8). The batched
		// path iterates prefix blocks — each iteration keeps one parent
		// px resident and combines it against its entire sibling run in
		// a single kernel call — with the static schedule's contiguous
		// cuts weighted by estimated combine cost so block granularity
		// keeps the paper's balance properties. The pairwise path is the
		// paper's literal per-candidate loop; lazy materialization only
		// computes supports here and allocates the frequent survivors
		// afterwards.
		childNodes := make([]vertical.Node, n)
		var err error
		if batch {
			nBlocks := len(cands.Blocks) - 1
			weights := make([]int64, nBlocks)
			for b := 0; b < nBlocks; b++ {
				lo, hi := cands.Blocks[b], cands.Blocks[b+1]
				w := int64(hi-lo) * int64(nodes[cands.Px[lo]].Bytes())
				for i := lo; i < hi; i++ {
					w += int64(nodes[cands.Py[i]].Bytes())
				}
				weights[b] = w
			}
			err = team.ForWeightedCtx(rc, nBlocks, weights, schedule, func(worker, b int) {
				lo, hi := int(cands.Blocks[b]), int(cands.Blocks[b+1])
				m := hi - lo
				px := nodes[cands.Px[lo]]
				a := arenas[worker]
				pys, out := a.NodeScratch(m)
				for k := 0; k < m; k++ {
					pys[k] = nodes[cands.Py[lo+k]]
				}
				rep.CombineManyInto(px, pys, out, a)
				pxBytes := int64(px.Bytes())
				remoteParent := pxBytes // px streamed once per block
				var mem int64
				for k := 0; k < m; k++ {
					i := lo + k
					child := out[k]
					childNodes[i] = child
					cands.Level.Supports[i] = child.Support()
					cb := int64(child.Bytes())
					mem += cb
					cost := pxBytes + int64(pys[k].Bytes())
					phase.Add(i, cost+cb, remoteParent+int64(pys[k].Bytes()), cb)
					remoteParent = 0
				}
				rc.ChargeMem(mem)
				a.Flush()
			})
		} else {
			err = team.ForCtx(rc, n, schedule, func(_, i int) {
				px := nodes[cands.Px[i]]
				py := nodes[cands.Py[i]]
				cost := int64(vertical.CombineCost(px, py))
				if lazy {
					cands.Level.Supports[i] = counter.CombineSupport(px, py)
					phase.Add(i, cost, cost, 0)
					return
				}
				child := rep.Combine(px, py)
				childNodes[i] = child
				cands.Level.Supports[i] = child.Support()
				rc.ChargeMem(int64(child.Bytes()))
				phase.Add(i, cost+int64(child.Bytes()), cost, int64(child.Bytes()))
			})
		}
		core.EmitPhases(o, met)
		if err != nil {
			return collect(err)
		}

		level, kept := tr.Commit(cands, minSup)
		phase.AddSerial(int64(n) * 8)
		// Carry forward only the frequent payloads, aligned with the new
		// level; lazy runs materialize the survivors here, paying the
		// parent reads a second time but allocating nothing for the
		// pruned candidates.
		next := make([]vertical.Node, level.Len())
		if lazy {
			parents := nodes
			pxs := make([]int32, len(kept))
			pys := make([]int32, len(kept))
			for w, i := range kept {
				pxs[w], pys[w] = cands.Px[i], cands.Py[i]
			}
			matName := fmt.Sprintf("apriori/gen%d-materialize", gen+1)
			met.Label(matName)
			mat := col.NewPhase(matName, schedule, true, len(kept))
			if mat != nil {
				mat.UniqueParent = MemoryFootprint(parents)
			}
			err := team.ForCtx(rc, len(kept), schedule, func(_, w int) {
				px := parents[pxs[w]]
				py := parents[pys[w]]
				child := rep.Combine(px, py)
				next[w] = child
				cost := int64(vertical.CombineCost(px, py))
				rc.ChargeMem(int64(child.Bytes()))
				mat.Add(w, cost+int64(child.Bytes()), cost, int64(child.Bytes()))
			})
			core.EmitPhases(o, met)
			if err != nil {
				return collect(err)
			}
		} else {
			for w, i := range kept {
				next[w] = childNodes[i]
			}
			// Release the infrequent candidates' payloads.
			rc.ChargeMem(vertical.NodesBytes(next) - vertical.NodesBytes(childNodes))
			if batch {
				// Recycle the infrequent children's buffers: nil out the
				// survivors, then release the rest round-robin so every
				// worker's free list warms up, not just worker 0's.
				// Children never alias parents or each other, so the kept
				// payloads are safe.
				for _, i := range kept {
					childNodes[i] = nil
				}
				for j, c := range childNodes {
					arenas[j%len(arenas)].Release(c)
				}
			}
		}
		if err := rc.AddItemsets(level.Len()); err != nil {
			return collect(err)
		}

		// Memory-budget decision point: the new level is materialized
		// and its parents are still live — the generation's peak.
		if rc.OverMemory() {
			parents := nodes
			ok := rc.Budget().DegradeToDiffset && degrade(gen+1, next, func(w int) vertical.Node {
				return parents[cands.Px[kept[w]]]
			})
			if !ok {
				if err := rc.CheckMemory(); err != nil {
					nodes = next
					return collect(err)
				}
			}
		}
		rc.ChargeMem(-MemoryFootprint(nodes)) // retire the parent level
		if batch && parentsReleasable {
			for j, p := range nodes {
				arenas[j%len(arenas)].Release(p)
			}
		}
		parentsReleasable = true // committed levels are miner-owned
		nodes = next
		obs.Emit(o, obs.Event{Type: obs.LevelEnd, Level: gen + 1, Phase: phaseName,
			Candidates: n, Pruned: pruned, Frequent: level.Len(),
			LiveBytes: rc.MemUsed(), ElapsedNS: int64(time.Since(levelStart))})
	}

	return collect(nil)
}

// itemSupports extracts the per-item supports recorded by the recode pass.
func itemSupports(rec *dataset.Recoded) []int {
	sups := make([]int, len(rec.Items))
	for i, fi := range rec.Items {
		sups[i] = fi.Support
	}
	return sups
}

// MemoryFootprint reports the total payload bytes a representation holds
// for one generation's frequent nodes — the quantity §V-A argues makes
// tidset/bitvector Apriori non-scalable. Exposed for the
// memory-footprint ablation (experiment A2).
func MemoryFootprint(nodes []vertical.Node) int64 {
	var b int64
	for _, n := range nodes {
		b += int64(n.Bytes())
	}
	return b
}
