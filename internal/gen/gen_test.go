package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func catCfg(seed int64, nTrans int) CategoricalConfig {
	return CategoricalConfig{
		Name:            "cat",
		Seed:            seed,
		NumTransactions: nTrans,
		Attributes:      []AttrSpec{{2}, {3}, {5}, {2}},
		NumGroups:       2,
		SharedFrac:      0.5,
		ConformistFrac:  0.8,
		WHi:             0.9,
		WLo:             0.4,
		Spread:          1.0,
		NonConfFactor:   0.5,
	}
}

func TestCategoricalShape(t *testing.T) {
	db := Categorical(catCfg(1, 500))
	if len(db.Transactions) != 500 {
		t.Fatalf("transactions = %d", len(db.Transactions))
	}
	// Every transaction has exactly one item per attribute, within the
	// attribute's item range.
	bases := []int{0, 2, 5, 10, 12}
	for _, tr := range db.Transactions {
		if len(tr) != 4 {
			t.Fatalf("transaction length %d, want 4", len(tr))
		}
		for a := 0; a < 4; a++ {
			if int(tr[a]) < bases[a] || int(tr[a]) >= bases[a+1] {
				t.Fatalf("attribute %d item %d out of range [%d,%d)", a, tr[a], bases[a], bases[a+1])
			}
		}
		if !tr.IsSorted() {
			t.Fatal("transaction not sorted")
		}
	}
}

func TestCategoricalDeterministic(t *testing.T) {
	a := Categorical(catCfg(42, 200))
	b := Categorical(catCfg(42, 200))
	for i := range a.Transactions {
		if !a.Transactions[i].Equal(b.Transactions[i]) {
			t.Fatalf("same seed diverged at transaction %d", i)
		}
	}
	c := Categorical(catCfg(43, 200))
	same := true
	for i := range a.Transactions {
		if !a.Transactions[i].Equal(c.Transactions[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestCategoricalDominanceSpectrum(t *testing.T) {
	// Attribute 0 (w = WHi) must have a far more skewed distribution
	// than the last attribute (w = WLo).
	cfg := CategoricalConfig{
		Seed: 7, NumTransactions: 4000,
		Attributes:     []AttrSpec{{4}, {4}, {4}, {4}},
		NumGroups:      1,
		SharedFrac:     1,
		ConformistFrac: 1,
		WHi:            0.95, WLo: 0.3, Spread: 1, NonConfFactor: 1,
	}
	db := Categorical(cfg)
	counts := db.ItemCounts()
	first := float64(counts[0]) / 4000 // attr 0 dominant (item 0)
	last := float64(counts[12]) / 4000 // attr 3 dominant (item 12)
	if first < 0.9 || first > 1.0 {
		t.Errorf("attr 0 dominant support = %v, want ~0.95", first)
	}
	if last < 0.2 || last > 0.4 {
		t.Errorf("attr 3 dominant support = %v, want ~0.3", last)
	}
}

func TestCategoricalCorrelation(t *testing.T) {
	// Conformist mixing must make dominant values positively correlated:
	// P(both attr0 and attr1 dominant) > P(attr0)·P(attr1).
	cfg := CategoricalConfig{
		Seed: 9, NumTransactions: 6000,
		Attributes:     []AttrSpec{{3}, {3}},
		NumGroups:      1,
		SharedFrac:     1,
		ConformistFrac: 0.5,
		WHi:            0.9, WLo: 0.9, Spread: 1, NonConfFactor: 0.3,
	}
	db := Categorical(cfg)
	n := float64(len(db.Transactions))
	var c0, c1, c01 float64
	for _, tr := range db.Transactions {
		d0 := tr[0] == 0
		d1 := tr[1] == 3
		if d0 {
			c0++
		}
		if d1 {
			c1++
		}
		if d0 && d1 {
			c01++
		}
	}
	if c01/n <= (c0/n)*(c1/n)+0.02 {
		t.Errorf("no positive correlation: joint=%.3f marginals=%.3f*%.3f", c01/n, c0/n, c1/n)
	}
}

func TestQuestShape(t *testing.T) {
	cfg := QuestConfig{
		Name: "q", Seed: 5, NumTransactions: 2000,
		AvgTransLen: 10, NumItems: 200, NumPatterns: 50, AvgPatternLen: 4, Corruption: 0.5,
	}
	db := Quest(cfg)
	if len(db.Transactions) != 2000 {
		t.Fatalf("transactions = %d", len(db.Transactions))
	}
	total := 0
	for _, tr := range db.Transactions {
		if len(tr) == 0 {
			t.Fatal("empty transaction")
		}
		if !tr.IsSorted() {
			t.Fatal("unsorted transaction")
		}
		for _, it := range tr {
			if int(it) >= 200 {
				t.Fatalf("item %d out of universe", it)
			}
		}
		total += len(tr)
	}
	avg := float64(total) / 2000
	// Dedup in itemset.New means the average lands at or a bit below the
	// target; it must be in a sane band.
	if avg < 6 || avg > 12 {
		t.Errorf("average transaction length = %v, want ~10", avg)
	}
}

func TestQuestDeterministic(t *testing.T) {
	cfg := QuestConfig{Name: "q", Seed: 11, NumTransactions: 100,
		AvgTransLen: 8, NumItems: 100, NumPatterns: 20, AvgPatternLen: 3, Corruption: 0.5}
	a, b := Quest(cfg), Quest(cfg)
	for i := range a.Transactions {
		if !a.Transactions[i].Equal(b.Transactions[i]) {
			t.Fatalf("same seed diverged at transaction %d", i)
		}
	}
}

func TestQuestSkew(t *testing.T) {
	// Item popularity must be skewed: the most popular decile of items
	// should carry several times the traffic of the least popular decile.
	cfg := QuestConfig{Name: "q", Seed: 13, NumTransactions: 3000,
		AvgTransLen: 12, NumItems: 100, NumPatterns: 100, AvgPatternLen: 4, Corruption: 0.4}
	db := Quest(cfg)
	counts := db.ItemCounts()
	var lo, hi int
	for it, c := range counts {
		if it < 10 {
			hi += c
		}
		if it >= 90 {
			lo += c
		}
	}
	if hi < 3*lo {
		t.Errorf("popularity not skewed: top decile %d vs bottom %d", hi, lo)
	}
}

func TestDropHighSupport(t *testing.T) {
	cfg := catCfg(21, 1000)
	cfg.WHi, cfg.WLo = 0.95, 0.95 // all dominants very frequent
	db := Categorical(cfg)
	out := DropHighSupport(db, 0.8, "star")
	if out.Name != "star" {
		t.Errorf("name = %q", out.Name)
	}
	counts := out.ItemCounts()
	limit := int(0.8 * float64(len(db.Transactions)))
	for it, c := range db.ItemCounts() {
		if c >= limit {
			if _, still := counts[it]; still {
				t.Errorf("item %d (support %d) survived the drop", it, c)
			}
		}
	}
	// Average length must shrink.
	if out.ComputeStats().AvgLength >= db.ComputeStats().AvgLength {
		t.Error("drop did not shorten transactions")
	}
}

func TestDropHighSupportRemovesEmptyTransactions(t *testing.T) {
	cfg := catCfg(3, 200)
	cfg.Attributes = []AttrSpec{{1}} // single always-identical item
	db := Categorical(cfg)
	out := DropHighSupport(db, 0.5, "empty")
	if len(out.Transactions) != 0 {
		t.Errorf("kept %d transactions with no items", len(out.Transactions))
	}
}

func TestExpNeg(t *testing.T) {
	for _, x := range []float64{0, 0.1, 0.5, 1, 2, 5, 10, 40} {
		got := expNeg(x)
		want := math.Exp(-x)
		if math.Abs(got-want) > 1e-6*want+1e-12 {
			t.Errorf("expNeg(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	const n = 20000
	for _, mean := range []float64{1, 4, 10, 40} {
		total := 0
		for i := 0; i < n; i++ {
			total += poisson(r, mean)
		}
		got := float64(total) / n
		if math.Abs(got-mean) > 0.05*mean+0.1 {
			t.Errorf("poisson mean %v: sample mean %v", mean, got)
		}
	}
}

func TestGeometricBounds(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for i := 0; i < 1000; i++ {
		if v := geometric(r, 5); v < 0 || v >= 5 {
			t.Fatalf("geometric out of range: %d", v)
		}
	}
	if geometric(r, 1) != 0 {
		t.Error("geometric(1) != 0")
	}
}

func TestZipfishBounds(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	seen0 := false
	for i := 0; i < 2000; i++ {
		v := zipfish(r, 50)
		if v < 0 || v >= 50 {
			t.Fatalf("zipfish out of range: %d", v)
		}
		if v == 0 {
			seen0 = true
		}
	}
	if !seen0 {
		t.Error("zipfish never produced 0")
	}
	if zipfish(r, 1) != 0 {
		t.Error("zipfish(1) != 0")
	}
}

func TestPow(t *testing.T) {
	cases := []struct{ x, y, want, tol float64 }{
		{0.5, 2, 0.25, 1e-12},
		{0.9, 1, 0.9, 1e-12},
		{0.8, 0, 1, 1e-12},
		{0.7, 3, 0.343, 1e-12},
		{0.6, 0.5, math.Pow(0.6, 0.5), 0.05}, // linear blend is approximate
	}
	for _, c := range cases {
		if got := pow(c.x, c.y); math.Abs(got-c.want) > c.tol {
			t.Errorf("pow(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

// Property: categorical generation is always valid regardless of config.
func TestQuickCategoricalValid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nAttrs := 1 + r.Intn(6)
		attrs := make([]AttrSpec, nAttrs)
		for i := range attrs {
			attrs[i] = AttrSpec{Domain: 1 + r.Intn(6)}
		}
		c := CategoricalConfig{
			Seed: seed, NumTransactions: 50 + r.Intn(100),
			Attributes: attrs, NumGroups: 1 + r.Intn(4),
			SharedFrac: r.Float64(), ConformistFrac: r.Float64(),
			WHi: 0.5 + r.Float64()/2, WLo: r.Float64() / 2,
			Spread: 0.5 + 2*r.Float64(), NonConfFactor: r.Float64(),
		}
		db := Categorical(c)
		if len(db.Transactions) != c.NumTransactions {
			return false
		}
		for _, tr := range db.Transactions {
			if len(tr) != nAttrs || !tr.IsSorted() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("categorical validity: %v", err)
	}
}
