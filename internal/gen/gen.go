// Package gen synthesizes transaction databases with controlled
// statistical shape. The module is offline, so the FIMI-repository
// datasets the paper evaluates (chess, mushroom, pumsb, pumsb_star,
// T40I10D100K, accidents) are reproduced as deterministic synthetic
// equivalents:
//
//   - Categorical emulates UCI-style categorical data (chess, mushroom,
//     pumsb): every transaction has exactly one value per attribute, value
//     distributions are skewed toward a per-attribute dominant value, and
//     a latent group variable correlates attributes so that deep frequent
//     lattices form at high support thresholds — the density structure
//     that makes these datasets "dense" in the FIM literature.
//   - Quest emulates the IBM Quest generator behind the T..I..D..
//     market-basket family: transactions are assembled from a pool of
//     potentially-frequent patterns with corruption, giving sparse data
//     with many items and shallow lattices.
//   - DropHighSupport derives pumsb_star from pumsb: remove every item
//     whose support is at or above a fraction of the database.
//
// All generators are deterministic functions of their seed.
package gen

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

// AttrSpec describes one categorical attribute.
type AttrSpec struct {
	// Domain is the number of distinct values the attribute takes.
	Domain int
}

// CategoricalConfig parameterizes the categorical generator.
//
// Correlation is produced by a two-level mixture. A latent group chooses
// each attribute's dominant value, and a per-row conformity coin decides
// how strongly the row follows its group: conformist rows take attribute
// a's dominant value with probability w_a, non-conformists with
// w_a·NonConfFactor. Because conformist rows agree on many attributes at
// once, the support of a k-set of dominant values decays like
// ConformistFrac·∏w_a — slowly — which is the deep-lattice density of
// UCI categorical data (chess, pumsb) that makes them hard FIM instances
// at high support.
//
// The per-attribute dominance w_a is spread smoothly over [WLo, WHi]
// (attribute 0 strongest), mirroring the smooth item-support spectrum of
// real categorical data; a single shared dominance would make all
// dominant items combinatorially interchangeable and blow the lattice up.
type CategoricalConfig struct {
	Name string
	Seed int64
	// NumTransactions is the number of rows to generate.
	NumTransactions int
	// Attributes lists the per-attribute domains. Each transaction
	// carries exactly one item per attribute, so the average transaction
	// length equals len(Attributes).
	Attributes []AttrSpec
	// NumGroups is the number of latent correlation groups (1 = a single
	// shared dominant profile).
	NumGroups int
	// SharedFrac is the probability that an attribute's dominant value
	// is shared by all groups (census-style globally dominant answers).
	SharedFrac float64
	// ConformistFrac is the fraction of rows drawn tightly around their
	// group profile.
	ConformistFrac float64
	// WHi, WLo bound the per-attribute dominant-value probability;
	// attribute a gets w_a = WLo + (WHi−WLo)·((n−1−a)/(n−1))^Spread.
	WHi, WLo float64
	// Spread shapes the w_a curve: 1 is linear, larger concentrates the
	// strong attributes at the front.
	Spread float64
	// NonConfFactor scales w_a for non-conformist rows (0..1).
	NonConfFactor float64
}

// dominance returns w_a for attribute a of n.
func (cfg CategoricalConfig) dominance(a, n int) float64 {
	if n <= 1 {
		return cfg.WHi
	}
	frac := float64(n-1-a) / float64(n-1)
	return cfg.WLo + (cfg.WHi-cfg.WLo)*pow(frac, cfg.Spread)
}

// pow computes x^y for x in [0,1] and modest y via exp/log-free repeated
// squaring on the integer part and linear blend on the fraction — enough
// precision for shaping a synthetic spectrum.
func pow(x, y float64) float64 {
	if y <= 0 {
		return 1
	}
	out := 1.0
	for ; y >= 1; y-- {
		out *= x
	}
	// Linear blend for the fractional exponent.
	return out * (1 - y + y*x)
}

// Categorical generates a categorical database per cfg.
func Categorical(cfg CategoricalConfig) *dataset.DB {
	r := rand.New(rand.NewSource(cfg.Seed))
	nAttrs := len(cfg.Attributes)
	groups := cfg.NumGroups
	if groups < 1 {
		groups = 1
	}
	// Item coding: attribute a's value v is item base[a]+v.
	base := make([]int, nAttrs+1)
	for a, spec := range cfg.Attributes {
		base[a+1] = base[a] + spec.Domain
	}
	// Per group, per attribute: which value is dominant. With probability
	// SharedFrac an attribute has one globally dominant value (value 0);
	// otherwise each group picks its own.
	dominant := make([][]int, groups)
	for g := range dominant {
		dominant[g] = make([]int, nAttrs)
	}
	for a, spec := range cfg.Attributes {
		if r.Float64() < cfg.SharedFrac {
			continue // all groups keep value 0
		}
		for g := 1; g < groups; g++ {
			dominant[g][a] = r.Intn(spec.Domain)
		}
	}
	// Per-attribute dominance spectrum.
	w := make([]float64, nAttrs)
	for a := range w {
		w[a] = cfg.dominance(a, nAttrs)
	}
	db := &dataset.DB{Name: cfg.Name, Transactions: make([]dataset.Transaction, cfg.NumTransactions)}
	for t := 0; t < cfg.NumTransactions; t++ {
		g := r.Intn(groups)
		conform := 1.0
		if r.Float64() >= cfg.ConformistFrac {
			conform = cfg.NonConfFactor
		}
		tr := make(dataset.Transaction, nAttrs)
		for a, spec := range cfg.Attributes {
			v := dominant[g][a]
			if spec.Domain > 1 && r.Float64() >= w[a]*conform {
				// Non-dominant value: geometric-ish spread over the rest.
				v = (v + 1 + geometric(r, spec.Domain-1)) % spec.Domain
			}
			tr[a] = itemset.Item(base[a] + v)
		}
		// One item per attribute and bases ascend, so tr is sorted.
		db.Transactions[t] = tr
	}
	return db
}

// geometric returns a value in [0, n) with a geometric-ish bias toward 0.
// n must be >= 1.
func geometric(r *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	v := 0
	for v < n-1 && r.Float64() < 0.5 {
		v++
	}
	return v
}

// QuestConfig parameterizes the IBM-Quest-style market-basket generator.
// The conventional name TxxIyyDzzK maps to AvgTransLen=xx,
// AvgPatternLen=yy, NumTransactions=zz*1000.
type QuestConfig struct {
	Name string
	Seed int64
	// NumTransactions is the number of baskets.
	NumTransactions int
	// AvgTransLen is the mean basket size (Poisson).
	AvgTransLen int
	// NumItems is the size of the item universe.
	NumItems int
	// NumPatterns is the size of the potentially-frequent pattern pool
	// (Quest's |L|, classically 2000).
	NumPatterns int
	// AvgPatternLen is the mean pattern size (Poisson, min 1).
	AvgPatternLen int
	// Corruption is the per-pattern probability that an item is dropped
	// when the pattern is planted (Quest's corruption level mean, 0.5
	// classically).
	Corruption float64
}

// Quest generates a sparse market-basket database per cfg.
func Quest(cfg QuestConfig) *dataset.DB {
	r := rand.New(rand.NewSource(cfg.Seed))
	nPat := cfg.NumPatterns
	if nPat < 1 {
		nPat = 1
	}
	// Pattern pool: sizes Poisson(AvgPatternLen), items Zipf-ish skewed
	// so some items are much more popular than others. Pattern weights
	// are exponential, matching Quest.
	patterns := make([]itemset.Itemset, nPat)
	weights := make([]float64, nPat)
	totalW := 0.0
	for p := range patterns {
		size := poisson(r, float64(cfg.AvgPatternLen))
		if size < 1 {
			size = 1
		}
		items := make([]itemset.Item, size)
		for i := range items {
			items[i] = itemset.Item(zipfish(r, cfg.NumItems))
		}
		patterns[p] = itemset.New(items...)
		weights[p] = r.ExpFloat64()
		totalW += weights[p]
	}
	// Cumulative weights for pattern selection.
	cum := make([]float64, nPat)
	acc := 0.0
	for p, w := range weights {
		acc += w / totalW
		cum[p] = acc
	}
	pick := func() itemset.Itemset {
		x := r.Float64()
		lo, hi := 0, nPat-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return patterns[lo]
	}
	db := &dataset.DB{Name: cfg.Name, Transactions: make([]dataset.Transaction, cfg.NumTransactions)}
	for t := 0; t < cfg.NumTransactions; t++ {
		target := poisson(r, float64(cfg.AvgTransLen))
		if target < 1 {
			target = 1
		}
		var items []itemset.Item
		for len(items) < target {
			pat := pick()
			contributed := false
			for _, it := range pat {
				if r.Float64() >= cfg.Corruption {
					items = append(items, it)
					contributed = true
				}
			}
			// Guarantee progress when corruption dropped the whole pattern.
			if !contributed {
				items = append(items, itemset.Item(zipfish(r, cfg.NumItems)))
			}
		}
		db.Transactions[t] = itemset.New(items...)
	}
	return db
}

// poisson samples a Poisson(mean) variate by inversion (mean modest).
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's algorithm; fine for mean up to ~60 as used here.
	l := 1.0
	limit := expNeg(mean)
	k := 0
	for {
		l *= r.Float64()
		if l <= limit {
			return k
		}
		k++
	}
}

// expNeg computes e^-x without importing math (keeps the package's
// dependency surface minimal and deterministic across platforms).
func expNeg(x float64) float64 {
	// e^-x = 1/e^x; compute e^x by scaling-and-squaring of the series.
	n := 0
	for x > 0.5 {
		x /= 2
		n++
	}
	// Taylor for e^x on [0, 0.5].
	term, sum := 1.0, 1.0
	for i := 1; i <= 12; i++ {
		term *= x / float64(i)
		sum += term
	}
	for ; n > 0; n-- {
		sum *= sum
	}
	return 1 / sum
}

// zipfish returns an item in [0, n) with a heavy skew toward low codes,
// approximating the popularity skew of market-basket items.
func zipfish(r *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	// Square of a uniform biases toward 0 with a ~1/sqrt tail weight.
	u := r.Float64()
	return int(u * u * float64(n))
}

// DropHighSupport removes every item whose support is >= frac*|D|,
// then drops transactions that become empty. This is how pumsb_star is
// derived from pumsb ("does not contain any item with a support of 80%
// or more").
func DropHighSupport(db *dataset.DB, frac float64, name string) *dataset.DB {
	limit := int(frac * float64(len(db.Transactions)))
	counts := db.ItemCounts()
	out := &dataset.DB{Name: name}
	for _, tr := range db.Transactions {
		nt := make(dataset.Transaction, 0, len(tr))
		for _, it := range tr {
			if counts[it] < limit {
				nt = append(nt, it)
			}
		}
		if len(nt) > 0 {
			out.Transactions = append(out.Transactions, nt)
		}
	}
	return out
}
