// Package kcount provides process-wide kernel operation counters for
// the vertical-representation hot paths: tidset merge/gallop
// intersection steps, bitvector word ANDs and popcounts, and per-
// representation node materialization. These are the operation-level
// quantities the paper's analysis attributes cost to (§II-B's kernel
// comparison; Zymbler's many-core Apriori study argues scaling cliffs
// from exactly such per-kernel counts), observable on a live run
// instead of inferred from wall time.
//
// Counting is off by default and costs the kernels one atomic load and
// a predictable branch per *kernel call* (never per element): the
// kernels derive their step counts from loop indices they already
// maintain, so the disabled path adds no work inside the merge loops.
// Enable/Disable nest by reference count; counters are process-global,
// so concurrent instrumented runs see each other's operations. Per-run
// reporting goes through BeginRun/RunToken.End, which detects any
// overlap with another instrumented run: the engine reports the
// delta only when it is exclusively attributable to the run (always the
// case for one-shot fimmine/fimbench; under the concurrent server,
// overlapping runs drop the kernel_counters event rather than report
// interleaved numbers).
package kcount

import "sync/atomic"

// Kind indexes the per-representation counters. The values mirror
// vertical.Kind's order; kcount redeclares them (as plain ints) so the
// kernels below vertical in the import graph can use the package too.
const (
	Tidset = iota
	Bitvector
	Diffset
	Hybrid
	Tiled
	Nodeset
	numKinds
)

// kindNames are the wire names used by Stats.Map, matching
// vertical.Kind.String().
var kindNames = [numKinds]string{"tidset", "bitvector", "diffset", "hybrid", "tiled", "nodeset"}

// Stats is a snapshot of the counters. The zero value is empty;
// Sub produces the delta between two snapshots.
type Stats struct {
	// TidsCompared counts merge-loop steps across tidset intersection,
	// difference, union and their count-only forms — the element
	// comparisons of the sorted-set kernels.
	TidsCompared int64
	// MergePicks and GallopPicks count tidset intersections dispatched
	// to the linear merge vs the exponential-search (galloping) path.
	MergePicks  int64
	GallopPicks int64
	// GallopProbes counts elements probed by binary search on the
	// galloping path (one probe sequence per short-side element).
	GallopProbes int64
	// WordsANDed and WordsPopcounted count 64-bit word operations in
	// the bitvector AND and popcount kernels.
	WordsANDed      int64
	WordsPopcounted int64
	// NodesBuilt and BytesMaterialized count, per representation kind,
	// the payload nodes constructed by Combine/Roots and their byte
	// footprint at construction.
	NodesBuilt        [numKinds]int64
	BytesMaterialized [numKinds]int64
	// HybridFlips counts hybrid nodes that chose the diffset form over
	// the tidset form at construction (the dEclat switch-over firing).
	HybridFlips int64
	// ArenaHits and ArenaMisses count scratch-arena node requests that
	// were served from a worker's free list vs. fell through to the Go
	// allocator — the zero-allocation combine path's figure of merit.
	ArenaHits   int64
	ArenaMisses int64
	// BatchCalls counts invocations of the batched (prefix-blocked)
	// combine kernels: one call intersects/subtracts/ANDs a resident
	// parent against an entire sibling run.
	BatchCalls int64
	// ParentWordsSaved counts the parent payload words the batched
	// kernels did NOT re-stream: a batch of m children reads the shared
	// parent once instead of m times, saving (m−1) × parent words. This
	// is the measurable proxy for the paper's §V parent-traffic
	// argument. Units are payload words (4-byte for tidset/diffset,
	// 8-byte for bitvector).
	ParentWordsSaved int64
	// TilesProcessed counts word tiles the strip-mined bitvector batch
	// kernel streamed (one tile ANDed+popcounted against every child of
	// the run before eviction).
	TilesProcessed int64
	// SummaryWordsANDed counts the 64-bit occupancy-summary ANDs of the
	// tiled layout's prefilter phase: one per key-aligned tile pair.
	// Comparing it against TidsCompared/WordsANDed for the same mine
	// shows how much traffic the prefilter stands in front of.
	SummaryWordsANDed int64
	// TilesSkipped counts key-aligned tile pairs whose summary AND came
	// back zero, so the in-tile kernel never ran — the tiled layout's
	// analogue of parent_words_saved. TilesSparse and TilesDense count
	// the pairs that did run, split by which in-tile kernel fired
	// (sparse u8 merge/probe vs. branch-free bitmap AND); the same
	// split is charged by bitvec.AndManyInto's strip classifier.
	TilesSkipped int64
	TilesSparse  int64
	TilesDense   int64
	// NListNodesMerged counts entries touched by the DiffNodeset merge
	// kernels (2-itemset ancestor merges and k-itemset differences) —
	// the nodeset analogue of TidsCompared, except the unit is a PPC
	// tree node, which stands for every transaction sharing its path.
	NListNodesMerged int64
	// PPCNodesBuilt counts prefix-tree nodes assigned pre/post ranks by
	// the PPC encoding pass. Comparing it against the database's
	// transaction-item count shows the tree's co-occurrence compression.
	PPCNodesBuilt int64
}

// Sub returns s − prev, field-wise.
func (s Stats) Sub(prev Stats) Stats {
	d := Stats{
		TidsCompared:     s.TidsCompared - prev.TidsCompared,
		MergePicks:       s.MergePicks - prev.MergePicks,
		GallopPicks:      s.GallopPicks - prev.GallopPicks,
		GallopProbes:     s.GallopProbes - prev.GallopProbes,
		WordsANDed:       s.WordsANDed - prev.WordsANDed,
		WordsPopcounted:  s.WordsPopcounted - prev.WordsPopcounted,
		HybridFlips:      s.HybridFlips - prev.HybridFlips,
		ArenaHits:        s.ArenaHits - prev.ArenaHits,
		ArenaMisses:      s.ArenaMisses - prev.ArenaMisses,
		BatchCalls:       s.BatchCalls - prev.BatchCalls,
		ParentWordsSaved: s.ParentWordsSaved - prev.ParentWordsSaved,
		TilesProcessed:   s.TilesProcessed - prev.TilesProcessed,

		SummaryWordsANDed: s.SummaryWordsANDed - prev.SummaryWordsANDed,
		TilesSkipped:      s.TilesSkipped - prev.TilesSkipped,
		TilesSparse:       s.TilesSparse - prev.TilesSparse,
		TilesDense:        s.TilesDense - prev.TilesDense,
		NListNodesMerged:  s.NListNodesMerged - prev.NListNodesMerged,
		PPCNodesBuilt:     s.PPCNodesBuilt - prev.PPCNodesBuilt,
	}
	for k := 0; k < numKinds; k++ {
		d.NodesBuilt[k] = s.NodesBuilt[k] - prev.NodesBuilt[k]
		d.BytesMaterialized[k] = s.BytesMaterialized[k] - prev.BytesMaterialized[k]
	}
	return d
}

// Map renders the non-zero counters under stable wire names — the
// key set of the kernel_counters event and the run report's
// kernel_counters object.
func (s Stats) Map() map[string]int64 {
	m := map[string]int64{}
	put := func(k string, v int64) {
		if v != 0 {
			m[k] = v
		}
	}
	put("tids_compared", s.TidsCompared)
	put("merge_picks", s.MergePicks)
	put("gallop_picks", s.GallopPicks)
	put("gallop_probes", s.GallopProbes)
	put("words_anded", s.WordsANDed)
	put("words_popcounted", s.WordsPopcounted)
	put("hybrid_flips", s.HybridFlips)
	put("arena_hits", s.ArenaHits)
	put("arena_misses", s.ArenaMisses)
	put("batch_calls", s.BatchCalls)
	put("parent_words_saved", s.ParentWordsSaved)
	put("tiles_processed", s.TilesProcessed)
	put("summary_words_anded", s.SummaryWordsANDed)
	put("tiles_skipped", s.TilesSkipped)
	put("tiles_sparse", s.TilesSparse)
	put("tiles_dense", s.TilesDense)
	put("nlist_nodes_merged", s.NListNodesMerged)
	put("ppc_nodes_built", s.PPCNodesBuilt)
	for k := 0; k < numKinds; k++ {
		put("nodes_built_"+kindNames[k], s.NodesBuilt[k])
		put("bytes_materialized_"+kindNames[k], s.BytesMaterialized[k])
	}
	return m
}

// counters is the process-global accumulator. Fields are atomics so
// worker goroutines add without coordination.
type counters struct {
	tidsCompared    atomic.Int64
	mergePicks      atomic.Int64
	gallopPicks     atomic.Int64
	gallopProbes    atomic.Int64
	wordsANDed      atomic.Int64
	wordsPopcounted atomic.Int64
	hybridFlips     atomic.Int64
	arenaHits       atomic.Int64
	arenaMisses     atomic.Int64
	batchCalls      atomic.Int64
	parentSaved     atomic.Int64
	tilesProcessed  atomic.Int64
	summaryANDed    atomic.Int64
	tilesSkipped    atomic.Int64
	tilesSparse     atomic.Int64
	tilesDense      atomic.Int64
	nlistMerged     atomic.Int64
	ppcNodesBuilt   atomic.Int64
	nodesBuilt      [numKinds]atomic.Int64
	bytesMat        [numKinds]atomic.Int64
}

var (
	global counters
	// refs gates the whole package: the kernels check Enabled() (one
	// atomic load) before touching any counter.
	refs atomic.Int32
	// overlapGen increments every time an instrumented run begins while
	// another is already active. A RunToken compares the generation at
	// its begin and end: if it moved (or the run itself began second),
	// the token's delta mixes operations from several runs.
	overlapGen atomic.Int64
)

// Enable turns counting on. Calls nest; each must be paired with
// Disable.
func Enable() { refs.Add(1) }

// RunToken scopes the counters to one instrumented run: BeginRun
// snapshots the totals and enables counting, End returns the delta and
// whether it is exclusively attributable to this run. Because the
// counters are process-global, two overlapping instrumented runs
// interleave their operations; the token detects any overlap during its
// lifetime instead of silently reporting corrupt per-run numbers.
type RunToken struct {
	base Stats
	gen  int64
	solo bool
}

// BeginRun enables counting for one run and returns its token. Must be
// paired with End.
func BeginRun() RunToken {
	n := refs.Add(1)
	if n > 1 {
		// This run overlaps an already-active one: poison both sides'
		// exclusivity (the earlier run sees the generation move).
		overlapGen.Add(1)
	}
	return RunToken{base: Snapshot(), gen: overlapGen.Load(), solo: n == 1}
}

// End disables this run's counting and returns the counter delta since
// BeginRun. exclusive is true only when no other instrumented run was
// active at any point in between — the delta then attributes exactly
// this run's kernel operations. Callers reporting per-run counters
// should drop (or mark shared) a non-exclusive delta.
func (t RunToken) End() (delta Stats, exclusive bool) {
	s := Snapshot()
	exclusive = t.solo && overlapGen.Load() == t.gen
	Disable()
	return s.Sub(t.base), exclusive
}

// Disable undoes one Enable. An unpaired Disable panics, with the
// count restored first so one caller's bug cannot wedge counting off
// for the rest of the process.
func Disable() {
	if refs.Add(-1) < 0 {
		refs.Add(1)
		panic("kcount: Disable without Enable")
	}
}

// Enabled reports whether any Enable is outstanding — the kernels'
// single-load fast path.
func Enabled() bool { return refs.Load() != 0 }

// Snapshot returns the current totals. Cheap enough to call around
// every instrumented run.
func Snapshot() Stats {
	var s Stats
	s.TidsCompared = global.tidsCompared.Load()
	s.MergePicks = global.mergePicks.Load()
	s.GallopPicks = global.gallopPicks.Load()
	s.GallopProbes = global.gallopProbes.Load()
	s.WordsANDed = global.wordsANDed.Load()
	s.WordsPopcounted = global.wordsPopcounted.Load()
	s.HybridFlips = global.hybridFlips.Load()
	s.ArenaHits = global.arenaHits.Load()
	s.ArenaMisses = global.arenaMisses.Load()
	s.BatchCalls = global.batchCalls.Load()
	s.ParentWordsSaved = global.parentSaved.Load()
	s.TilesProcessed = global.tilesProcessed.Load()
	s.SummaryWordsANDed = global.summaryANDed.Load()
	s.TilesSkipped = global.tilesSkipped.Load()
	s.TilesSparse = global.tilesSparse.Load()
	s.TilesDense = global.tilesDense.Load()
	s.NListNodesMerged = global.nlistMerged.Load()
	s.PPCNodesBuilt = global.ppcNodesBuilt.Load()
	for k := 0; k < numKinds; k++ {
		s.NodesBuilt[k] = global.nodesBuilt[k].Load()
		s.BytesMaterialized[k] = global.bytesMat[k].Load()
	}
	return s
}

// The Add* helpers are the kernels' emit sites. Each is a no-op unless
// counting is enabled; callers pass counts they already computed (loop
// exit indices, slice lengths), never per-element increments.

// AddMergeSteps accounts steps of a sorted-set merge loop (intersect,
// diff, union, and their count-only forms).
func AddMergeSteps(steps int) {
	if Enabled() {
		global.tidsCompared.Add(int64(steps))
		global.mergePicks.Add(1)
	}
}

// AddGallop accounts one galloping intersection: probes binary-search
// sequences (one per short-side element) and steps elements compared.
func AddGallop(probes, steps int) {
	if Enabled() {
		global.gallopPicks.Add(1)
		global.gallopProbes.Add(int64(probes))
		global.tidsCompared.Add(int64(steps))
	}
}

// AddWordsANDed accounts n 64-bit AND operations.
func AddWordsANDed(n int) {
	if Enabled() {
		global.wordsANDed.Add(int64(n))
	}
}

// AddWordsPopcounted accounts n 64-bit popcounts.
func AddWordsPopcounted(n int) {
	if Enabled() {
		global.wordsPopcounted.Add(int64(n))
	}
}

// AddNode accounts one materialized payload node of the given kind and
// byte footprint.
func AddNode(kind, bytes int) {
	if Enabled() && kind >= 0 && kind < numKinds {
		global.nodesBuilt[kind].Add(1)
		global.bytesMat[kind].Add(int64(bytes))
	}
}

// AddHybridFlip accounts one hybrid node that stored the diffset form.
func AddHybridFlip() {
	if Enabled() {
		global.hybridFlips.Add(1)
	}
}

// AddArena accounts a batch of scratch-arena requests: hits served
// from a free list, misses that allocated. Arenas flush their local
// tallies in batches (per released scope), not per request.
func AddArena(hits, misses int64) {
	if Enabled() && (hits != 0 || misses != 0) {
		global.arenaHits.Add(hits)
		global.arenaMisses.Add(misses)
	}
}

// AddBatch accounts one batched combine kernel call over m children of
// a parent of parentWords payload words: the pairwise path would have
// streamed the parent m times, so (m−1) × parentWords words of parent
// traffic were saved.
func AddBatch(m, parentWords int) {
	if Enabled() {
		global.batchCalls.Add(1)
		if m > 1 {
			global.parentSaved.Add(int64(m-1) * int64(parentWords))
		}
	}
}

// AddTiles accounts n word tiles streamed by the strip-mined bitvector
// batch kernel.
func AddTiles(n int) {
	if Enabled() {
		global.tilesProcessed.Add(int64(n))
	}
}

// AddTileKernel accounts one tiled kernel call from loop-local tallies:
// summary prefilter word ANDs, tile pairs the prefilter skipped, and
// tile pairs that ran the sparse vs. dense in-tile kernel. One atomic
// round per kernel call, never per tile.
func AddTileKernel(summaryANDs, skipped, sparse, dense int) {
	if Enabled() {
		if summaryANDs != 0 {
			global.summaryANDed.Add(int64(summaryANDs))
		}
		if skipped != 0 {
			global.tilesSkipped.Add(int64(skipped))
		}
		if sparse != 0 {
			global.tilesSparse.Add(int64(sparse))
		}
		if dense != 0 {
			global.tilesDense.Add(int64(dense))
		}
	}
}

// AddStripKinds accounts the strip-mined bitvector batch kernel's
// sparse/dense classification: strips of the resident parent that were
// entirely zero (children cleared without streaming), handled on the
// sparse nonzero-word path, or streamed densely. Charged once per
// AndManyInto call on the tiles_* counters so the bitvector rep shares
// the tiled layout's evidence trail.
func AddStripKinds(skipped, sparse, dense int) {
	if Enabled() {
		if skipped != 0 {
			global.tilesSkipped.Add(int64(skipped))
		}
		if sparse != 0 {
			global.tilesSparse.Add(int64(sparse))
		}
		if dense != 0 {
			global.tilesDense.Add(int64(dense))
		}
	}
}

// AddNListMerge accounts the entries one DiffNodeset merge kernel call
// touched (loop exit indices, never per-element increments).
func AddNListMerge(steps int) {
	if Enabled() {
		global.nlistMerged.Add(int64(steps))
	}
}

// AddPPCNodes accounts the prefix-tree nodes one PPC encoding pass
// assigned pre/post ranks to.
func AddPPCNodes(n int) {
	if Enabled() {
		global.ppcNodesBuilt.Add(int64(n))
	}
}

// AddNodes accounts n materialized payload nodes of one kind totalling
// bytes — the batched form of AddNode, one atomic round per kernel
// call instead of one per child.
func AddNodes(kind, n, bytes int) {
	if Enabled() && kind >= 0 && kind < numKinds && n > 0 {
		global.nodesBuilt[kind].Add(int64(n))
		global.bytesMat[kind].Add(int64(bytes))
	}
}
