package kcount

import (
	"sync"
	"testing"
)

// TestDisabledNoOp: with no enabler, the Add helpers record nothing.
func TestDisabledNoOp(t *testing.T) {
	if Enabled() {
		t.Fatal("counters enabled at package init")
	}
	before := Snapshot()
	AddMergeSteps(10)
	AddGallop(3, 7)
	AddWordsANDed(5)
	AddWordsPopcounted(5)
	AddNode(Tidset, 64)
	AddHybridFlip()
	if d := Snapshot().Sub(before); len(d.Map()) != 0 {
		t.Fatalf("disabled counters recorded %v", d.Map())
	}
}

// TestEnableRecordsAndSub: enabled counters accumulate, Sub isolates a
// window, and Map emits only the non-zero wire fields.
func TestEnableRecordsAndSub(t *testing.T) {
	Enable()
	defer Disable()
	base := Snapshot()
	AddMergeSteps(10)
	AddMergeSteps(5)
	AddGallop(3, 7)
	AddWordsANDed(4)
	AddWordsPopcounted(6)
	AddNode(Diffset, 128)
	AddNode(Diffset, 32)
	AddNode(Hybrid, 8)
	AddHybridFlip()
	d := Snapshot().Sub(base)
	m := d.Map()
	want := map[string]int64{
		"tids_compared":              15 + 7, // merge steps + gallop steps
		"merge_picks":                2,      // two merge dispatches
		"gallop_picks":               1,      // one gallop dispatch
		"gallop_probes":              3,
		"words_anded":                4,
		"words_popcounted":           6,
		"nodes_built_diffset":        2,
		"bytes_materialized_diffset": 160,
		"nodes_built_hybrid":         1,
		"bytes_materialized_hybrid":  8,
		"hybrid_flips":               1,
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("Map()[%q] = %d, want %d", k, m[k], v)
		}
	}
	for k := range m {
		if _, ok := want[k]; !ok {
			t.Errorf("Map() has unexpected key %q = %d", k, m[k])
		}
	}
}

// TestRefcount: nested enablers keep counting until the last Disable.
func TestRefcount(t *testing.T) {
	Enable()
	Enable()
	Disable()
	if !Enabled() {
		t.Fatal("inner Disable turned counters off under an outer enabler")
	}
	Disable()
	if Enabled() {
		t.Fatal("counters still on after matching Disables")
	}
}

// TestUnpairedDisablePanics: a Disable without an Enable is a bug.
func TestUnpairedDisablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unpaired Disable did not panic")
		}
	}()
	Disable()
}

// TestRunTokenExclusive: a lone instrumented run gets an exclusive
// delta attributing exactly its own operations.
func TestRunTokenExclusive(t *testing.T) {
	tok := BeginRun()
	AddMergeSteps(7)
	AddWordsANDed(3)
	d, excl := tok.End()
	if !excl {
		t.Fatal("lone run's delta not exclusive")
	}
	if d.TidsCompared != 7 || d.WordsANDed != 3 {
		t.Fatalf("delta = %+v, want 7 tids / 3 words", d)
	}
	if Enabled() {
		t.Fatal("counters still enabled after End")
	}
}

// TestRunTokenOverlapPoisonsBoth: two overlapping instrumented runs
// both report non-exclusive deltas, whichever started first.
func TestRunTokenOverlapPoisonsBoth(t *testing.T) {
	a := BeginRun()
	AddMergeSteps(1)
	b := BeginRun() // overlaps a
	AddMergeSteps(1)
	if _, excl := b.End(); excl {
		t.Error("second (overlapping) run claims exclusivity")
	}
	if _, excl := a.End(); excl {
		t.Error("first run claims exclusivity despite overlap")
	}
	// A fresh run after both ended is exclusive again.
	c := BeginRun()
	AddMergeSteps(1)
	if _, excl := c.End(); !excl {
		t.Error("fresh run after overlap not exclusive")
	}
}

// TestRunTokenOverlapEnded: exclusivity is poisoned even when the
// overlapping run ends before the first run does.
func TestRunTokenOverlapEnded(t *testing.T) {
	a := BeginRun()
	b := BeginRun()
	b.End()
	if _, excl := a.End(); excl {
		t.Error("run overlapped by a shorter run claims exclusivity")
	}
}

// TestConcurrentAdds: parallel kernels may add while another goroutine
// snapshots; run with -race this verifies the atomics.
func TestConcurrentAdds(t *testing.T) {
	Enable()
	defer Disable()
	base := Snapshot()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				AddMergeSteps(1)
				AddWordsANDed(2)
				_ = Snapshot()
			}
		}()
	}
	wg.Wait()
	d := Snapshot().Sub(base)
	if d.MergePicks != 8000 || d.WordsANDed != 16000 {
		t.Fatalf("concurrent adds lost updates: merge=%d anded=%d", d.MergePicks, d.WordsANDed)
	}
}
