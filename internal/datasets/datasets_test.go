package datasets

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eclat"
	"repro/internal/verify"
	"repro/internal/vertical"
)

// TestShapesMatchPublished checks, at a reduced scale, that every
// synthetic dataset reproduces the published per-row shape: item-per-
// transaction structure and item universe. Item counts are checked
// loosely because rare values need many rows to appear.
func TestShapesMatchPublished(t *testing.T) {
	for _, d := range All() {
		db := d.Build(0.05)
		st := db.ComputeStats()
		if st.NumTransactions == 0 {
			t.Fatalf("%s: empty build", d.Name)
		}
		// Average length within 15% of the published value (pumsb_star's
		// derivation makes it the loosest).
		lo, hi := d.PaperAvgLen*0.80, d.PaperAvgLen*1.25
		if st.AvgLength < lo || st.AvgLength > hi {
			t.Errorf("%s: avg length %.1f outside [%.1f, %.1f]", d.Name, st.AvgLength, lo, hi)
		}
		// Item universe within 10% above the published count (the Quest
		// datasets use a round item universe; rare values may be missing
		// at small scale). pumsb_star's published count is post-drop.
		if d.Name != "pumsb_star" && float64(st.NumItems) > 1.1*float64(d.PaperItems) {
			t.Errorf("%s: %d items far exceeds published %d", d.Name, st.NumItems, d.PaperItems)
		}
	}
}

func TestScaleControlsTransactions(t *testing.T) {
	d, err := Get("chess")
	if err != nil {
		t.Fatal(err)
	}
	small := d.Build(0.05)
	big := d.Build(0.2)
	if len(big.Transactions) <= len(small.Transactions) {
		t.Errorf("scale did not grow the dataset: %d vs %d", len(small.Transactions), len(big.Transactions))
	}
	// Tiny scales clamp to a workable floor.
	floor := d.Build(0.000001)
	if len(floor.Transactions) < 64 {
		t.Errorf("floor = %d transactions", len(floor.Transactions))
	}
}

func TestBuildsAreDeterministic(t *testing.T) {
	for _, d := range All() {
		a, b := d.Build(0.02), d.Build(0.02)
		if len(a.Transactions) != len(b.Transactions) {
			t.Fatalf("%s: nondeterministic size", d.Name)
		}
		for i := range a.Transactions {
			if !a.Transactions[i].Equal(b.Transactions[i]) {
				t.Fatalf("%s: nondeterministic at transaction %d", d.Name, i)
			}
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("netflix"); err == nil {
		t.Error("Get accepted unknown dataset")
	}
}

func TestDenseSubset(t *testing.T) {
	dense := Dense()
	if len(dense) != 4 {
		t.Fatalf("Dense() = %d datasets, want 4", len(dense))
	}
	want := []string{"chess", "mushroom", "pumsb", "pumsb_star"}
	for i, d := range dense {
		if d.Name != want[i] {
			t.Errorf("Dense()[%d] = %s, want %s", i, d.Name, want[i])
		}
	}
}

// TestDefaultSupportsAreMineable: every dataset at its default support
// must yield a non-trivial but bounded workload at test scale, and the
// miners must agree with the reference on a small slice.
func TestDefaultSupportsAreMineable(t *testing.T) {
	for _, d := range All() {
		db := d.Build(0.02)
		rec := db.Recode(db.AbsoluteSupport(d.DefaultSupport))
		res := must(eclat.Mine(rec, rec.MinSup, core.DefaultOptions(vertical.Diffset, 2)))
		if d.Dense && res.Len() == 0 {
			t.Errorf("%s@%v: no frequent itemsets at test scale", d.Name, d.DefaultSupport)
		}
		if res.Len() > 2_000_000 {
			t.Errorf("%s@%v: workload explosion (%d itemsets)", d.Name, d.DefaultSupport, res.Len())
		}
	}
}

// TestMinersAgreeOnRealisticData cross-checks the miners on a small
// chess build — structured, dense data rather than the uniform random
// databases of the unit tests.
func TestMinersAgreeOnRealisticData(t *testing.T) {
	db := Chess(0.02)
	rec := db.Recode(db.AbsoluteSupport(0.45))
	if len(rec.Items) < 5 {
		t.Skip("scaled dataset too small to be interesting")
	}
	ref := verify.Reference(rec, rec.MinSup)
	for _, kind := range vertical.Kinds() {
		res := must(eclat.Mine(rec, rec.MinSup, core.DefaultOptions(kind, 3)))
		if !res.Equal(ref) {
			t.Errorf("eclat/%v disagrees on chess:\n%s", kind, verify.Diff(res, ref))
		}
	}
}

func TestPumsbStarDropsHeavyItems(t *testing.T) {
	raw := Pumsb(0.05)
	star := PumsbStar(0.05)
	limit := int(0.8 * float64(len(raw.Transactions)))
	for it, c := range star.ItemCounts() {
		if c >= limit {
			t.Errorf("pumsb_star kept item %d with support %d >= %d", it, c, limit)
		}
	}
	if star.ComputeStats().AvgLength >= raw.ComputeStats().AvgLength {
		t.Error("pumsb_star not shorter than pumsb")
	}
}

// must unwraps a miner's (result, error) pair.
func must(res *core.Result, err error) *core.Result {
	if err != nil {
		panic(err)
	}
	return res
}
