// Package datasets provides deterministic synthetic equivalents of the
// six FIMI-repository datasets used in the paper's evaluation (Table I
// plus the two sparse datasets mentioned in §V). The module is offline,
// so the published files are reproduced in shape: transaction count,
// item count, average transaction length, and — via the generators'
// correlation controls — the dense/sparse character that drives miner
// behaviour. Real FIMI files load through dataset.ReadFIMI and can be
// substituted everywhere a Def is used.
//
// Every Def builds at a scale factor: scale 1 reproduces the published
// row counts, smaller scales shrink the transaction count for tests.
package datasets

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gen"
)

// Def describes one reproducible dataset: its published Table I numbers
// and a builder for the synthetic equivalent.
type Def struct {
	Name string
	// Published shape (paper Table I; accidents and T40I10D100K from the
	// FIMI repository, as the paper's Table I omits them).
	PaperItems  int
	PaperAvgLen float64
	PaperTrans  int
	// DefaultSupport is the relative support the paper-style experiments
	// use for this dataset (the paper's dataset@support notation).
	DefaultSupport float64
	// ExperimentScale is the transaction-count fraction the experiment
	// harness mines at: 1 for the small datasets (chess, mushroom run at
	// full published size), below 1 for the large ones so the whole
	// experiment matrix stays laptop-sized. Multiplied by the harness's
	// own scale factor.
	ExperimentScale float64
	// Dense marks the four dense categorical datasets of Table I.
	Dense bool

	build func(scale float64) *dataset.DB
}

// Build generates the dataset at the given scale (fraction of the
// published transaction count, clamped to at least 64 rows).
func (d Def) Build(scale float64) *dataset.DB {
	return d.build(scale)
}

func scaled(n int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	s := int(float64(n) * scale)
	if s < 64 {
		s = 64
	}
	return s
}

// domains returns n copies of d.
func domains(n, d int) []gen.AttrSpec {
	out := make([]gen.AttrSpec, n)
	for i := range out {
		out[i] = gen.AttrSpec{Domain: d}
	}
	return out
}

// Chess emulates the UCI chess (king-rook-vs-king-pawn) dataset:
// 3,196 rows of 37 attributes over 75 items, extremely dense.
func Chess(scale float64) *dataset.DB {
	attrs := append(domains(35, 2), gen.AttrSpec{Domain: 3}, gen.AttrSpec{Domain: 2})
	return gen.Categorical(gen.CategoricalConfig{
		Name:            "chess",
		Seed:            0xC4E55,
		NumTransactions: scaled(3196, scale),
		Attributes:      attrs, // 35*2 + 3 + 2 = 75 items
		NumGroups:       2,
		SharedFrac:      0.6,
		ConformistFrac:  0.85,
		WHi:             0.95,
		WLo:             0.45,
		Spread:          1.5,
		NonConfFactor:   0.5,
	})
}

// Mushroom emulates the UCI mushroom dataset: 8,124 rows of 23
// attributes over 119 items, dense with two strong classes.
func Mushroom(scale float64) *dataset.DB {
	attrs := append(domains(19, 5), domains(4, 6)...) // 19*5 + 4*6 = 119
	return gen.Categorical(gen.CategoricalConfig{
		Name:            "mushroom",
		Seed:            0x3457300,
		NumTransactions: scaled(8124, scale),
		Attributes:      attrs,
		NumGroups:       2, // edible / poisonous
		SharedFrac:      0.7,
		ConformistFrac:  0.85,
		WHi:             0.95,
		WLo:             0.5,
		Spread:          0.8,
		NonConfFactor:   0.5,
	})
}

// Pumsb emulates the PUMS census dataset: 49,046 rows of 74 attributes
// over 2,113 items; very dense at high supports.
func Pumsb(scale float64) *dataset.DB {
	return pumsbRaw(scale)
}

func pumsbRaw(scale float64) *dataset.DB {
	attrs := append(domains(71, 29), domains(3, 18)...) // 71*29 + 3*18 = 2113
	return gen.Categorical(gen.CategoricalConfig{
		Name:            "pumsb",
		Seed:            0x9035B,
		NumTransactions: scaled(49046, scale),
		Attributes:      attrs,
		NumGroups:       3,
		SharedFrac:      0.8,
		ConformistFrac:  0.90,
		WHi:             0.97,
		WLo:             0.25,
		Spread:          0.5,
		NonConfFactor:   0.50,
	})
}

// PumsbStar emulates pumsb_star: pumsb with every item of support >= 80%
// removed, which shortens transactions to ~50 items on average.
func PumsbStar(scale float64) *dataset.DB {
	return gen.DropHighSupport(pumsbRaw(scale), 0.80, "pumsb_star")
}

// T40I10D100K emulates the IBM Quest synthetic dataset of the same name:
// 100,000 sparse baskets, ~1,000 items, average length 40.
func T40I10D100K(scale float64) *dataset.DB {
	return gen.Quest(gen.QuestConfig{
		Name:            "T40I10D100K",
		Seed:            0x74010,
		NumTransactions: scaled(100000, scale),
		AvgTransLen:     40,
		NumItems:        1000,
		NumPatterns:     2000,
		AvgPatternLen:   10,
		Corruption:      0.5,
	})
}

// Accidents emulates the FIMI accidents dataset (340,183 rows, 468
// items, average length 33.8): moderately dense traffic-accident records.
func Accidents(scale float64) *dataset.DB {
	return gen.Quest(gen.QuestConfig{
		Name:            "accidents",
		Seed:            0xACC1D,
		NumTransactions: scaled(340183, scale),
		AvgTransLen:     34,
		NumItems:        468,
		NumPatterns:     500,
		AvgPatternLen:   12,
		Corruption:      0.35,
	})
}

// All returns the dataset definitions in the paper's Table I order,
// followed by the two sparse datasets of §V.
func All() []Def {
	return []Def{
		{Name: "chess", PaperItems: 75, PaperAvgLen: 37, PaperTrans: 3196, DefaultSupport: 0.34, ExperimentScale: 1, Dense: true, build: Chess},
		{Name: "mushroom", PaperItems: 119, PaperAvgLen: 23, PaperTrans: 8124, DefaultSupport: 0.45, ExperimentScale: 1, Dense: true, build: Mushroom},
		{Name: "pumsb", PaperItems: 2113, PaperAvgLen: 74, PaperTrans: 49046, DefaultSupport: 0.65, ExperimentScale: 0.25, Dense: true, build: Pumsb},
		{Name: "pumsb_star", PaperItems: 2088, PaperAvgLen: 50.5, PaperTrans: 49046, DefaultSupport: 0.5, ExperimentScale: 0.25, Dense: true, build: PumsbStar},
		{Name: "T40I10D100K", PaperItems: 942, PaperAvgLen: 39.6, PaperTrans: 100000, DefaultSupport: 0.075, ExperimentScale: 0.25, Dense: false, build: T40I10D100K},
		{Name: "accidents", PaperItems: 468, PaperAvgLen: 33.8, PaperTrans: 340183, DefaultSupport: 0.25, ExperimentScale: 0.1, Dense: false, build: Accidents},
	}
}

// Dense returns only the four Table I datasets the scalability tables use.
func Dense() []Def {
	var out []Def
	for _, d := range All() {
		if d.Dense {
			out = append(out, d)
		}
	}
	return out
}

// Get returns the definition by name.
func Get(name string) (Def, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("datasets: unknown dataset %q", name)
}
