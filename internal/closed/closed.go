// Package closed post-processes mining results into the two standard
// condensed representations: closed frequent itemsets (no superset with
// the same support) and maximal frequent itemsets (no frequent superset
// at all). These are the natural extension of the paper's pipeline —
// Zaki's diffset work (which the paper builds on) was introduced in the
// CHARM closed-itemset line — and they shrink dense-dataset outputs by
// orders of magnitude.
package closed

import (
	"repro/internal/core"
	"repro/internal/itemset"
)

// Closed filters res down to its closed itemsets: those with no proper
// superset of equal support. The filter is exact and runs in
// O(n · k · avg-superset-checks) using a hash index over the itemsets.
func Closed(res *core.Result) []core.ItemsetCount {
	return filter(res, func(c core.ItemsetCount, supers []core.ItemsetCount) bool {
		for _, s := range supers {
			if s.Support == c.Support {
				return false
			}
		}
		return true
	})
}

// Maximal filters res down to its maximal itemsets: those with no
// frequent proper superset.
func Maximal(res *core.Result) []core.ItemsetCount {
	return filter(res, func(c core.ItemsetCount, supers []core.ItemsetCount) bool {
		return len(supers) == 0
	})
}

// filter applies pred to every itemset, passing the one-item-larger
// frequent supersets. It is sufficient to inspect immediate supersets:
// support is anti-monotone, so an equal-support superset of any size
// implies an equal-support immediate superset, and any frequent superset
// implies a frequent immediate superset.
func filter(res *core.Result, pred func(core.ItemsetCount, []core.ItemsetCount) bool) []core.ItemsetCount {
	index := res.ByKey()
	var out []core.ItemsetCount
	for _, c := range res.Sorted() {
		supers := immediateSupersets(c.Items, index, res)
		if pred(c, supers) {
			out = append(out, c)
		}
	}
	return out
}

// immediateSupersets returns the frequent itemsets that extend s by one
// item, looked up via the support index.
func immediateSupersets(s itemset.Itemset, index map[string]int, res *core.Result) []core.ItemsetCount {
	var out []core.ItemsetCount
	n := len(res.Rec.Items)
	for it := 0; it < n; it++ {
		item := itemset.Item(it)
		if s.Contains(item) {
			continue
		}
		super := s.Union(itemset.New(item))
		if sup, ok := index[super.Key()]; ok {
			out = append(out, core.ItemsetCount{Items: super, Support: sup})
		}
	}
	return out
}

// Summary reports the condensation ratio of the two representations,
// used by the representation-tour example and the docs.
type Summary struct {
	All     int
	Closed  int
	Maximal int
}

// Summarize computes the condensation summary of a result.
func Summarize(res *core.Result) Summary {
	return Summary{
		All:     res.Len(),
		Closed:  len(Closed(res)),
		Maximal: len(Maximal(res)),
	}
}
