package closed

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eclat"
	"repro/internal/itemset"
	"repro/internal/vertical"
)

func mined(t *testing.T, text string, minSup int) *core.Result {
	t.Helper()
	db, err := dataset.ReadFIMI("t", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	rec := db.Recode(minSup)
	return must(eclat.Mine(rec, minSup, core.DefaultOptions(vertical.Tidset, 1)))
}

func keys(cs []core.ItemsetCount) map[string]int {
	m := make(map[string]int, len(cs))
	for _, c := range cs {
		m[c.Items.Key()] = c.Support
	}
	return m
}

func TestClosedBasic(t *testing.T) {
	// Items 1 and 2 always co-occur: {1}, {2} have the same support as
	// {1,2}, so only {1,2} is closed among them. Item 3 appears alone
	// once more, so {3} is closed.
	res := mined(t, "1 2 3\n1 2 3\n1 2\n3\n", 2)
	cl := keys(Closed(res))
	// dense: 1->0, 2->1, 3->2
	if _, ok := cl[itemset.New(0).Key()]; ok {
		t.Error("{1} reported closed despite equal-support superset")
	}
	if _, ok := cl[itemset.New(0, 1).Key()]; !ok {
		t.Error("{1,2} not reported closed")
	}
	if _, ok := cl[itemset.New(2).Key()]; !ok {
		t.Error("{3} not reported closed")
	}
}

func TestMaximalBasic(t *testing.T) {
	res := mined(t, "1 2 3\n1 2 3\n1 2\n3\n", 2)
	mx := keys(Maximal(res))
	// {1,2,3} has support 2: frequent and maximal; everything else has a
	// frequent superset.
	if len(mx) != 1 {
		t.Fatalf("maximal = %v", mx)
	}
	if _, ok := mx[itemset.New(0, 1, 2).Key()]; !ok {
		t.Error("{1,2,3} not maximal")
	}
}

func TestSummarizeOrdering(t *testing.T) {
	res := mined(t, "1 2 3\n1 2 3\n1 2\n1 3\n2 3\n", 2)
	s := Summarize(res)
	if s.Maximal > s.Closed || s.Closed > s.All {
		t.Errorf("condensation violated: %+v", s)
	}
	if s.All == 0 {
		t.Error("empty result")
	}
}

func TestEmptyResult(t *testing.T) {
	res := mined(t, "1\n2\n", 2)
	if len(Closed(res)) != 0 || len(Maximal(res)) != 0 {
		t.Error("non-empty condensation of empty result")
	}
}

// Properties against brute-force definitions.
func TestQuickDefinitions(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &dataset.DB{Name: "rand"}
		for i := 0; i < 10+r.Intn(25); i++ {
			var items []itemset.Item
			for it := 0; it < 5; it++ {
				if r.Intn(2) == 0 {
					items = append(items, itemset.Item(it))
				}
			}
			if len(items) == 0 {
				items = append(items, 0)
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		minSup := 2 + r.Intn(3)
		rec := db.Recode(minSup)
		res := must(eclat.Mine(rec, minSup, core.DefaultOptions(vertical.Diffset, 1)))
		all := res.Counts
		closedGot := keys(Closed(res))
		maxGot := keys(Maximal(res))
		// Brute force both definitions over all frequent itemsets.
		for _, c := range all {
			isClosed, isMaximal := true, true
			for _, o := range all {
				if len(o.Items) <= len(c.Items) || !c.Items.IsSubsetOf(o.Items) {
					continue
				}
				isMaximal = false
				if o.Support == c.Support {
					isClosed = false
				}
			}
			if _, ok := closedGot[c.Items.Key()]; ok != isClosed {
				return false
			}
			if _, ok := maxGot[c.Items.Key()]; ok != isMaximal {
				return false
			}
		}
		// Maximal ⊆ Closed ⊆ All.
		for k := range maxGot {
			if _, ok := closedGot[k]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("closed/maximal definitions: %v", err)
	}
}

// must unwraps the miner's (result, error) pair.
func must(res *core.Result, err error) *core.Result {
	if err != nil {
		panic(err)
	}
	return res
}
