package ptrie

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/verify"
)

const classic = `1 2 5
2 4
2 3
1 2 4
1 3
2 3
1 3
1 2 3 5
1 2 3
`

func classicRecoded(t *testing.T, minSup int) *dataset.Recoded {
	t.Helper()
	db, err := dataset.ReadFIMI("classic", strings.NewReader(classic))
	if err != nil {
		t.Fatal(err)
	}
	return db.Recode(minSup)
}

func TestTrieStructure(t *testing.T) {
	tr := New([]int{5, 6, 7})
	for i := 0; i < 3; i++ {
		if !tr.Contains(itemset.New(itemset.Item(i))) {
			t.Errorf("root child %d missing", i)
		}
	}
	if tr.Contains(itemset.New(3)) || tr.Contains(itemset.New(0, 1)) {
		t.Error("Contains reports absent nodes")
	}
	n := tr.Generate()
	if n != 3 { // C(3,2)
		t.Fatalf("generated %d candidates", n)
	}
	// All pairs now present as (uncounted) candidates.
	for _, pair := range []itemset.Itemset{itemset.New(0, 1), itemset.New(0, 2), itemset.New(1, 2)} {
		if !tr.Contains(pair) {
			t.Errorf("candidate %v missing", pair)
		}
	}
}

func TestCountAndCommit(t *testing.T) {
	tr := New([]int{3, 3, 3})
	n := tr.Generate()
	counters := make([]int64, n)
	// Transactions: {0,1} twice, {0,1,2} once.
	tr.CountInto(itemset.New(0, 1), counters)
	tr.CountInto(itemset.New(0, 1), counters)
	tr.CountInto(itemset.New(0, 1, 2), counters)
	kept := tr.Commit(counters, 2)
	if kept != 1 {
		t.Fatalf("kept %d candidates", kept)
	}
	freq := tr.Frequent()
	found := false
	for _, c := range freq {
		if c.Items.Equal(itemset.New(0, 1)) {
			found = true
			if c.Support != 3 {
				t.Errorf("{0,1} support = %d", c.Support)
			}
		}
		if c.Items.Equal(itemset.New(0, 2)) || c.Items.Equal(itemset.New(1, 2)) {
			t.Errorf("infrequent %v survived", c.Items)
		}
	}
	if !found {
		t.Error("{0,1} missing from Frequent")
	}
}

func TestSubsetPruningInGenerate(t *testing.T) {
	// Keep {0,1},{0,2} but not {1,2}: the 3-candidate {0,1,2} must be
	// pruned by the missing subset.
	tr := New([]int{3, 3, 3})
	n := tr.Generate()
	counters := make([]int64, n)
	for i := 0; i < 2; i++ {
		tr.CountInto(itemset.New(0, 1), counters)
		tr.CountInto(itemset.New(0, 2), counters)
	}
	tr.Commit(counters, 2)
	if got := tr.Generate(); got != 0 {
		t.Errorf("generated %d level-3 candidates, want 0 (subset pruning)", got)
	}
}

func TestMineMatchesReference(t *testing.T) {
	rec := classicRecoded(t, 2)
	ref := verify.Reference(rec, 2)
	for _, workers := range []int{1, 2, 5} {
		res := Mine(rec, 2, workers)
		if !res.Equal(ref) {
			t.Errorf("workers=%d:\n%s", workers, verify.Diff(res, ref))
		}
	}
}

func TestMineEdgeCases(t *testing.T) {
	rec := (&dataset.DB{}).Recode(1)
	if res := Mine(rec, 1, 2); res.Len() != 0 {
		t.Errorf("empty DB: %d itemsets", res.Len())
	}
	db, _ := dataset.ReadFIMI("t", strings.NewReader("1 2 3 4\n1 2 3 4\n"))
	rec2 := db.Recode(2)
	if res := Mine(rec2, 2, 2); res.Len() != 15 {
		t.Errorf("full lattice: %d itemsets, want 15", res.Len())
	}
}

func TestQuickAgainstReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &dataset.DB{Name: "rand"}
		nTrans := 5 + r.Intn(30)
		nItems := 3 + r.Intn(6)
		for i := 0; i < nTrans; i++ {
			var items []itemset.Item
			for it := 0; it < nItems; it++ {
				if r.Intn(3) > 0 {
					items = append(items, itemset.Item(it))
				}
			}
			if len(items) == 0 {
				items = append(items, 0)
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		minSup := 1 + r.Intn(nTrans/2+1)
		rec := db.Recode(minSup)
		ref := verify.Reference(rec, minSup)
		return Mine(rec, minSup, 1+r.Intn(4)).Equal(ref)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("ptrie vs reference: %v", err)
	}
}
