// Package ptrie implements the classic pointer-linked candidate trie of
// Bodon's Apriori line of work (the paper's references [1]–[4]): "the
// trie data structure is most often used to represent candidate
// itemsets". The paper replaces it with flat per-level tables to suit
// OpenMP (package trie); this package keeps the original form so the two
// can be compared (ablation A6) and cross-checked.
//
// Support counting is the trie-descent method: each transaction walks
// the trie once, incrementing the counter of every candidate leaf it
// reaches — the horizontal counting style that made tries popular before
// vertical layouts took over.
package ptrie

import (
	"slices"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/sched"
)

// childCmp orders children by item, for the binary searches below.
func childCmp(c *node, it itemset.Item) int {
	switch {
	case c.item < it:
		return -1
	case c.item > it:
		return 1
	}
	return 0
}

// node is one trie node; the path from the root spells an itemset.
type node struct {
	item     itemset.Item
	children []*node // ordered by item
	// leaf is the counter slot index at the current candidate depth,
	// -1 for interior or non-candidate nodes.
	leaf int32
	// support is filled in when the node's level is counted and kept.
	support int
}

// find returns the child with the given item, or nil.
func (n *node) find(it itemset.Item) *node {
	if i, ok := slices.BinarySearchFunc(n.children, it, childCmp); ok {
		return n.children[i]
	}
	return nil
}

// insert adds (or returns) the child with the given item, keeping order.
func (n *node) insert(it itemset.Item) *node {
	i, ok := slices.BinarySearchFunc(n.children, it, childCmp)
	if ok {
		return n.children[i]
	}
	c := &node{item: it, leaf: -1}
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
	return c
}

// Trie is a candidate trie with its current candidate depth.
type Trie struct {
	root   node
	depth  int
	leaves []*node // candidate nodes at the current depth, by slot index
}

// New builds a depth-1 trie over the frequent items 0..n-1 with their
// supports.
func New(supports []int) *Trie {
	t := &Trie{depth: 1}
	for i, s := range supports {
		c := t.root.insert(itemset.Item(i))
		c.support = s
	}
	return t
}

// Contains reports whether the itemset is a node of the trie.
func (t *Trie) Contains(s itemset.Itemset) bool {
	n := &t.root
	for _, it := range s {
		if n = n.find(it); n == nil {
			return false
		}
	}
	return true
}

// Generate grows depth-(k+1) candidates under every depth-k node by
// joining sibling pairs, pruning candidates with an infrequent k-subset
// (checked directly against the trie). It returns the number of
// candidates created; their counter slots are assigned densely.
func (t *Trie) Generate() int {
	t.leaves = t.leaves[:0]
	prefix := make(itemset.Itemset, 0, t.depth+1)
	t.generateAt(&t.root, prefix, 1)
	t.depth++
	return len(t.leaves)
}

// generateAt walks to depth-(t.depth-1) nodes and joins their children.
func (t *Trie) generateAt(n *node, prefix itemset.Itemset, level int) {
	if level == t.depth {
		// n's children are the depth-t.depth frequent nodes; join pairs.
		for i := 0; i < len(n.children); i++ {
			for j := i + 1; j < len(n.children); j++ {
				a, b := n.children[i], n.children[j]
				cand := append(append(prefix.Clone(), a.item), b.item)
				if !t.allSubsetsFrequent(cand) {
					continue
				}
				leaf := a.insert(b.item)
				leaf.leaf = int32(len(t.leaves))
				t.leaves = append(t.leaves, leaf)
			}
		}
		return
	}
	for _, c := range n.children {
		t.generateAt(c, append(prefix, c.item), level+1)
	}
}

// allSubsetsFrequent applies the Apriori property via trie lookups.
func (t *Trie) allSubsetsFrequent(cand itemset.Itemset) bool {
	ok := true
	cand.AllButOne(func(sub itemset.Itemset) {
		if ok && !t.Contains(sub) {
			ok = false
		}
	})
	return ok
}

// CountInto walks one transaction through the trie, incrementing the
// counter slot of every candidate leaf reached. counters must have at
// least Generate()'s return value slots. This is Bodon's counting step;
// per-worker counter arrays make it parallel without synchronization.
func (t *Trie) CountInto(tx itemset.Itemset, counters []int64) {
	t.countAt(&t.root, tx, 1, counters)
}

func (t *Trie) countAt(n *node, tx itemset.Itemset, level int, counters []int64) {
	// Need depth-t.depth descendants: stop early if the transaction is
	// too short to complete the path.
	for i, it := range tx {
		c := n.find(it)
		if c == nil {
			continue
		}
		if level == t.depth {
			if c.leaf >= 0 {
				counters[c.leaf]++
			}
			continue
		}
		if len(tx)-i-1 >= t.depth-level {
			t.countAt(c, tx[i+1:], level+1, counters)
		}
	}
}

// Commit records the counted supports and removes infrequent candidate
// leaves. It returns the number of frequent candidates kept.
func (t *Trie) Commit(counters []int64, minSup int) int {
	kept := 0
	for _, leaf := range t.leaves {
		leaf.support = int(counters[leaf.leaf])
		if leaf.support >= minSup {
			kept++
		}
	}
	t.pruneInfrequent(&t.root, 1, minSup)
	t.leaves = t.leaves[:0]
	return kept
}

// pruneInfrequent removes depth-t.depth leaves below minSup.
func (t *Trie) pruneInfrequent(n *node, level int, minSup int) {
	if level == t.depth {
		w := 0
		for _, c := range n.children {
			if c.leaf < 0 || c.support >= minSup {
				c.leaf = -1
				n.children[w] = c
				w++
			}
		}
		n.children = n.children[:w]
		return
	}
	for _, c := range n.children {
		t.pruneInfrequent(c, level+1, minSup)
	}
}

// Frequent enumerates every itemset in the trie with its support.
func (t *Trie) Frequent() []core.ItemsetCount {
	var out []core.ItemsetCount
	var walk func(n *node, prefix itemset.Itemset)
	walk = func(n *node, prefix itemset.Itemset) {
		for _, c := range n.children {
			cur := append(prefix, c.item)
			out = append(out, core.ItemsetCount{Items: cur.Clone(), Support: c.support})
			walk(c, cur)
		}
	}
	walk(&t.root, make(itemset.Itemset, 0, t.depth))
	return out
}

// Mine runs Apriori with the pointer trie: trie-descent support counting
// over the horizontal database, parallel over transactions with
// per-worker counters.
func Mine(rec *dataset.Recoded, minSup int, workers int) *core.Result {
	if minSup < 1 {
		minSup = 1
	}
	res := &core.Result{Algorithm: core.Apriori, MinSup: minSup, Rec: rec}
	sups := make([]int, len(rec.Items))
	for i, fi := range rec.Items {
		sups[i] = fi.Support
	}
	t := New(sups)
	team := sched.NewTeam(workers)
	transactions := rec.DB.Transactions
	for {
		n := t.Generate()
		if n == 0 {
			break
		}
		w := team.Workers()
		partial := make([][]int64, w)
		for i := range partial {
			partial[i] = make([]int64, n)
		}
		team.For(len(transactions), sched.Schedule{Policy: sched.Static}, func(worker, i int) {
			t.CountInto(transactions[i], partial[worker])
		})
		total := make([]int64, n)
		for _, p := range partial {
			for c, v := range p {
				total[c] += v
			}
		}
		if t.Commit(total, minSup) == 0 {
			break
		}
	}
	res.Counts = t.Frequent()
	for _, c := range res.Counts {
		if len(c.Items) > res.MaxK {
			res.MaxK = len(c.Items)
		}
	}
	return res
}
