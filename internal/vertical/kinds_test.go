package vertical

// The exhaustive-kind coverage gate (satellite of the nodeset PR):
// several switches in this package and its callers are written over
// Kind or over node types without a default that fails, so a newly
// added kind could silently fall through — combining without arena
// recycling, never degrading, or dropping its kernel counters. This
// test walks AllKinds(), the single canonical slice every new kind
// must join, and fails loudly for any kind missing from New, ParseKind
// and String, the Roots/Combine/CombineManyInto contract, the arena
// Release switch, the degrade tables, or kcount's kind mirror.

import (
	"strings"
	"testing"

	"repro/internal/kcount"
)

func TestAllKindsCoverage(t *testing.T) {
	rec := exampleRecoded(t, 1)
	ref := New(Tidset)
	refRoots := ref.Roots(rec)
	refPair := ref.Combine(refRoots[0], refRoots[1])
	refTriple := ref.Combine(refPair, ref.Combine(refRoots[0], refRoots[2]))

	seen := map[Kind]bool{}
	for _, kind := range AllKinds() {
		if seen[kind] {
			t.Fatalf("%v appears twice in AllKinds", kind)
		}
		seen[kind] = true

		// Identity plumbing: String, ParseKind, New.
		name := kind.String()
		if strings.HasPrefix(name, "Kind(") {
			t.Fatalf("kind %d has no String name", int(kind))
		}
		parsed, err := ParseKind(name)
		if err != nil || parsed != kind {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", name, parsed, err, kind)
		}
		rep := New(kind)
		if rep.Kind() != kind {
			t.Fatalf("New(%v).Kind() = %v", kind, rep.Kind())
		}

		// Mining contract: Roots, Combine and the batched combine agree
		// with the tidset reference on supports, two levels deep.
		roots := rep.Roots(rec)
		if len(roots) != len(rec.Items) {
			t.Fatalf("%v: %d roots, want %d", kind, len(roots), len(rec.Items))
		}
		pair := rep.Combine(roots[0], roots[1])
		if pair.Support() != refPair.Support() {
			t.Fatalf("%v: pair support %d, want %d", kind, pair.Support(), refPair.Support())
		}
		sib := rep.Combine(roots[0], roots[2])
		triple := rep.Combine(pair, sib)
		if triple.Support() != refTriple.Support() {
			t.Fatalf("%v: triple support %d, want %d", kind, triple.Support(), refTriple.Support())
		}
		pys := []Node{roots[1], roots[2], roots[3]}
		out := make([]Node, len(pys))
		rep.CombineManyInto(roots[0], pys, out, nil)
		for i, py := range pys {
			if want := rep.Combine(roots[0], py).Support(); out[i].Support() != want {
				t.Fatalf("%v: batched child %d support %d, want %d", kind, i, out[i].Support(), want)
			}
		}

		// Arena coverage: a kind with an IntoCombiner must also be
		// accepted by the Release switch, or recycling silently never
		// happens for it.
		if ic, ok := rep.(IntoCombiner); ok {
			a := NewArena()
			a.Release(ic.CombineInto(a, roots[0], roots[1]))
			c := ic.CombineInto(a, roots[0], roots[2])
			if a.hits != 1 {
				t.Fatalf("%v: Release/CombineInto recycled nothing (hits=%d) — kind missing from the Release switch?", kind, a.hits)
			}
			if want := rep.Combine(roots[0], roots[2]).Support(); c.Support() != want {
				t.Fatalf("%v: recycled combine support %d, want %d", kind, c.Support(), want)
			}
		}

		// Degrade coverage: Degradable(kind) must agree with the
		// DegradeChild/DegradeRoot type switches, and the degraded
		// diffsets must preserve supports and continue combining
		// exactly (the degraded pair and sibling recombine to the
		// reference triple support).
		dc := DegradeChild(roots[0], pair)
		dr := DegradeRoot(roots[0], rec.Universe)
		if Degradable(kind) != (dc != nil) || Degradable(kind) != (dr != nil) {
			t.Fatalf("%v: Degradable=%v but DegradeChild=%v DegradeRoot=%v — kind missing from a degrade switch?",
				kind, Degradable(kind), dc != nil, dr != nil)
		}
		if dc != nil {
			if dc.Support() != pair.Support() {
				t.Fatalf("%v: degraded child support %d, want %d", kind, dc.Support(), pair.Support())
			}
			if dr.Support() != roots[0].Support() {
				t.Fatalf("%v: degraded root support %d, want %d", kind, dr.Support(), roots[0].Support())
			}
			ds := DegradeChild(roots[0], sib).(*DiffsetNode)
			dTriple := New(Diffset).Combine(dc, ds)
			if dTriple.Support() != refTriple.Support() {
				t.Fatalf("%v: post-degrade combine support %d, want %d", kind, dTriple.Support(), refTriple.Support())
			}
		}

		// kcount mirror: Combine must charge the kind's own counter
		// under the matching wire name (vertical.Kind and kcount's kind
		// indices are maintained in parallel).
		tok := kcount.BeginRun()
		rep.Combine(roots[0], roots[1])
		delta, _ := tok.End()
		if delta.Map()["nodes_built_"+name] == 0 {
			t.Fatalf("%v: Combine charged no nodes_built_%s — kcount kind mirror out of sync?", kind, name)
		}
	}
}
