// Package vertical implements the three vertical transaction
// representations of §II-B of the paper — tidset, bitvector, and diffset —
// behind a single Representation interface that both miners (Apriori and
// Eclat) program against.
//
// A Node is the per-itemset payload: whatever the representation needs to
// compute the support of children. The only structural operation the
// miners perform is Combine(PX, PY) → PXY, where PX and PY are k-itemsets
// sharing a (k−1)-prefix P and PX's last item precedes PY's:
//
//	tidset:    t(PXY) = t(PX) ∩ t(PY),        support = |t(PXY)|
//	bitvector: b(PXY) = b(PX) AND b(PY),      support = popcount
//	diffset:   d(PXY) = d(PY) − d(PX),        support = support(PX) − |d(PXY)|
//
// The diffset rule is Equation 1 of the paper (after Zaki & Gouda); the
// operand order in Combine therefore matters for diffsets and the miners
// are careful to pass the smaller-last-item parent first.
package vertical

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/kcount"
	"repro/internal/tidset"
)

// Kind selects a vertical representation: the paper's three plus the
// Hybrid extension (hybrid.go).
type Kind int

const (
	Tidset Kind = iota
	Bitvector
	Diffset
)

// String returns the paper's name for the representation.
func (k Kind) String() string {
	switch k {
	case Tidset:
		return "tidset"
	case Bitvector:
		return "bitvector"
	case Diffset:
		return "diffset"
	case Hybrid:
		return "hybrid"
	case Tiled:
		return "tiled"
	case Nodeset:
		return "nodeset"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists the paper's three representations, in the paper's order.
func Kinds() []Kind { return []Kind{Tidset, Bitvector, Diffset} }

// AllKinds is the canonical list of every representation the package
// implements: the paper's three plus the Hybrid extension (hybrid.go),
// the Tiled layout (tiled.go) and the Nodeset representation
// (nodesetrep.go). Adding a Kind means adding it here; kinds_test.go
// walks this slice and fails any kind missing from New, ParseKind,
// String, the arena/batch paths or the degrade tables, so the
// non-exhaustive switches below cannot silently skip a new entry.
func AllKinds() []Kind { return []Kind{Tidset, Bitvector, Diffset, Hybrid, Tiled, Nodeset} }

// ParseKind maps a name ("tidset", "bitvector", "diffset") to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "tidset":
		return Tidset, nil
	case "bitvector":
		return Bitvector, nil
	case "diffset":
		return Diffset, nil
	case "hybrid":
		return Hybrid, nil
	case "tiled":
		return Tiled, nil
	case "nodeset":
		return Nodeset, nil
	}
	return 0, fmt.Errorf("vertical: unknown representation %q", s)
}

// Node is the per-itemset payload of one representation.
type Node interface {
	// Support returns the number of transactions containing the itemset.
	Support() int
	// Bytes returns the payload's memory footprint, the quantity the
	// perf instrumentation uses as its NUMA-traffic proxy. Reading a
	// parent during Combine moves this many bytes.
	Bytes() int
}

// Preparer is implemented by nodes that defer part of their payload
// past construction (the nodeset representation's lazy 2-itemset
// lists); Prepare forces the deferred work and is a no-op otherwise.
// Deferral is single-owner: class-recursive miners never race on it
// because every combine touching a node runs in the task that owns its
// class, but level-synchronous miners share parents across blocks
// counted in parallel, so they must Prepare every parent exactly once
// before fanning a level out.
type Preparer interface{ Prepare() }

// Representation builds and combines Nodes of one Kind.
type Representation interface {
	Kind() Kind
	// Roots builds the level-1 node for every frequent item of rec,
	// indexed by dense item code.
	Roots(rec *dataset.Recoded) []Node
	// Combine produces the node for candidate PXY from the nodes of PX
	// and PY, where PX's last item orders before PY's. The result's
	// Support is the candidate's support.
	Combine(px, py Node) Node
	// CombineManyInto combines one parent px against every sibling of a
	// prefix block, storing child i in out[i] (len(out) must be at
	// least len(pys)). Semantically identical to len(pys) Combine
	// calls, but the batched kernels stream the shared parent once per
	// block (batch.go); node storage recycles through arena when one is
	// supplied — nil is allowed and falls back to fresh allocation.
	CombineManyInto(px Node, pys []Node, out []Node, arena *Arena)
}

// New returns the Representation for kind.
func New(kind Kind) Representation {
	switch kind {
	case Tidset:
		return tidsetRep{}
	case Bitvector:
		return bitvectorRep{}
	case Diffset:
		return diffsetRep{}
	case Hybrid:
		return hybridRep{}
	case Tiled:
		return tiledRep{}
	case Nodeset:
		return nodesetRep{}
	}
	panic(fmt.Sprintf("vertical: unknown kind %d", int(kind)))
}

// --- tidset -----------------------------------------------------------

// TidsetNode carries t(X) for one itemset.
type TidsetNode struct {
	TIDs tidset.Set
}

func (n *TidsetNode) Support() int { return len(n.TIDs) }
func (n *TidsetNode) Bytes() int   { return 4 * len(n.TIDs) }

type tidsetRep struct{}

func (tidsetRep) Kind() Kind { return Tidset }

func (tidsetRep) Roots(rec *dataset.Recoded) []Node {
	sets := rec.TidsetOf()
	nodes := make([]Node, len(sets))
	for i, s := range sets {
		nodes[i] = &TidsetNode{TIDs: s}
		kcount.AddNode(kcount.Tidset, 4*len(s))
	}
	return nodes
}

func (tidsetRep) Combine(px, py Node) Node {
	a, b := px.(*TidsetNode), py.(*TidsetNode)
	n := &TidsetNode{TIDs: a.TIDs.Intersect(b.TIDs)}
	kcount.AddNode(kcount.Tidset, n.Bytes())
	return n
}

// --- bitvector --------------------------------------------------------

// BitvectorNode carries the transaction bitmask and a cached popcount.
type BitvectorNode struct {
	Bits *bitvec.Vector
	sup  int
}

func (n *BitvectorNode) Support() int { return n.sup }
func (n *BitvectorNode) Bytes() int   { return 8 * n.Bits.Words() }

type bitvectorRep struct{}

func (bitvectorRep) Kind() Kind { return Bitvector }

func (bitvectorRep) Roots(rec *dataset.Recoded) []Node {
	n := rec.DB.NumTransactions()
	sets := rec.TidsetOf()
	nodes := make([]Node, len(sets))
	for i, s := range sets {
		nodes[i] = &BitvectorNode{Bits: bitvec.FromTIDs(n, s), sup: len(s)}
		kcount.AddNode(kcount.Bitvector, nodes[i].Bytes())
	}
	return nodes
}

func (bitvectorRep) Combine(px, py Node) Node {
	a, b := px.(*BitvectorNode), py.(*BitvectorNode)
	v := a.Bits.And(b.Bits)
	n := &BitvectorNode{Bits: v, sup: v.Count()}
	kcount.AddNode(kcount.Bitvector, n.Bytes())
	return n
}

// --- diffset ----------------------------------------------------------

// DiffsetNode carries d(X) and the itemset's support, which the diffset
// alone cannot reproduce (support(PXY) = support(PX) − |d(PXY)|).
type DiffsetNode struct {
	Diff tidset.Set
	sup  int
}

// NewDiffsetNode builds a node from an explicit diffset and support.
// Exposed for tests and for the closed-itemset extension.
func NewDiffsetNode(d tidset.Set, support int) *DiffsetNode {
	return &DiffsetNode{Diff: d, sup: support}
}

func (n *DiffsetNode) Support() int { return n.sup }
func (n *DiffsetNode) Bytes() int   { return 4 * len(n.Diff) }

type diffsetRep struct{}

func (diffsetRep) Kind() Kind { return Diffset }

// Roots seeds level-1 diffsets as the complement of each item's tidset
// within the transaction universe (paper Figure 2(a)): d(x) = D − t(x),
// support(x) = |D| − |d(x)|.
func (diffsetRep) Roots(rec *dataset.Recoded) []Node {
	n := rec.DB.NumTransactions()
	sets := rec.TidsetOf()
	nodes := make([]Node, len(sets))
	for i, s := range sets {
		nodes[i] = &DiffsetNode{Diff: s.Complement(n), sup: len(s)}
		kcount.AddNode(kcount.Diffset, nodes[i].Bytes())
	}
	return nodes
}

func (diffsetRep) Combine(px, py Node) Node {
	a, b := px.(*DiffsetNode), py.(*DiffsetNode)
	d := b.Diff.Diff(a.Diff) // d(PXY) = d(PY) − d(PX)
	kcount.AddNode(kcount.Diffset, 4*len(d))
	return &DiffsetNode{Diff: d, sup: a.sup - len(d)}
}

// SupportOnly is implemented by representations that can compute a
// candidate's support without materializing its payload — the kernel of
// Apriori's lazy-materialization optimization (core.Options
// LazyMaterialize, ablation A10): infrequent candidates are pruned
// before their sets are ever allocated.
type SupportOnly interface {
	// CombineSupport returns Combine(px, py).Support() without
	// allocating the child payload.
	CombineSupport(px, py Node) int
}

func (tidsetRep) CombineSupport(px, py Node) int {
	return px.(*TidsetNode).TIDs.IntersectSize(py.(*TidsetNode).TIDs)
}

func (bitvectorRep) CombineSupport(px, py Node) int {
	return px.(*BitvectorNode).Bits.AndCount(py.(*BitvectorNode).Bits)
}

func (diffsetRep) CombineSupport(px, py Node) int {
	a, b := px.(*DiffsetNode), py.(*DiffsetNode)
	return a.sup - b.Diff.DiffSize(a.Diff)
}

// Degradable reports whether a run over kind can degrade to diffsets
// mid-run when its memory budget is crossed. Diffset needs no cure and
// Hybrid already switches per node, so the representations that can
// blow past one blade (§V-A) qualify: the paper's tidset and
// bitvector, the tiled layout (footprint tracks the tidset's), and
// the nodeset representation, whose interval table materializes exact
// relabeled diffsets.
func Degradable(kind Kind) bool {
	return kind == Tidset || kind == Bitvector || kind == Tiled || kind == Nodeset
}

// DegradeChild converts a tidset or bitvector node into the equivalent
// DiffsetNode relative to its generation parent: d(X) = t(parent) −
// t(X), the standard diffset layout, so subsequent sibling Combines
// under diffsetRep are exact. Returns nil for kinds Degradable rejects.
//
// This is the engine's adaptive application of the paper's own remedy:
// when the breadth-first payload footprint crosses the run's memory
// budget, a level of tidsets/bitvectors is rewritten in place as
// diffsets and the run continues under the bounded representation.
func DegradeChild(parent, child Node) Node {
	switch c := child.(type) {
	case *TidsetNode:
		p := parent.(*TidsetNode)
		return &DiffsetNode{Diff: p.TIDs.Diff(c.TIDs), sup: len(c.TIDs)}
	case *BitvectorNode:
		p := parent.(*BitvectorNode)
		return &DiffsetNode{Diff: p.Bits.AndNot(c.Bits).TIDs(), sup: c.sup}
	case *TiledNode:
		p := parent.(*TiledNode)
		d := p.T.DiffInto(c.T, &tidset.Tiled{})
		return &DiffsetNode{Diff: d.AppendTo(nil), sup: c.T.Len()}
	case *NodesetNode:
		// The DiffNodeset already IS d(X) = t(PX) − t(X), with tree
		// nodes standing for runs of relabeled transactions; expanding
		// the intervals yields the exact diffset (parent unused). Every
		// live node of a level degrades together, so the relabeled TID
		// space is globally consistent for all later diffset combines.
		return &DiffsetNode{Diff: c.diffTIDs(), sup: c.sup}
	}
	return nil
}

// DegradeRoot converts a level-1 tidset or bitvector node into diffset
// form relative to the transaction universe, d(x) = D − t(x), matching
// diffsetRep.Roots. Returns nil for kinds Degradable rejects.
func DegradeRoot(n Node, universe int) Node {
	switch c := n.(type) {
	case *TidsetNode:
		return &DiffsetNode{Diff: c.TIDs.Complement(universe), sup: len(c.TIDs)}
	case *BitvectorNode:
		return &DiffsetNode{Diff: c.Bits.Not().TIDs(), sup: c.sup}
	case *TiledNode:
		return &DiffsetNode{Diff: c.T.ToSet().Complement(universe), sup: c.T.Len()}
	case *NodesetNode:
		// d(x) = D − t(x) over the relabeled universe: transactions the
		// frequent-item filter emptied never entered the tree, so they
		// occupy the label range above Encoding.Total and fall into the
		// complement of every item, exactly as in the original space.
		return &DiffsetNode{Diff: c.rootTIDs().Complement(universe), sup: c.sup}
	}
	return nil
}

// NodesBytes sums the payload footprint of a node slice (nil entries
// allowed), the quantity the run-control memory budget accounts.
func NodesBytes(nodes []Node) int64 {
	var b int64
	for _, n := range nodes {
		if n != nil {
			b += int64(n.Bytes())
		}
	}
	return b
}

// CombineCost returns the number of bytes Combine reads from its parents:
// the quantity charged as communication when a parent lives on a remote
// NUMA node. It is simply the sum of the parents' footprints.
func CombineCost(px, py Node) int { return px.Bytes() + py.Bytes() }
