package vertical

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/nodeset"
	"repro/internal/tidset"
)

// payload returns a defensive copy of a node's logical content, for
// comparing before/after mutation.
func payload(n Node) []tidset.TID {
	switch c := n.(type) {
	case *TidsetNode:
		return append([]tidset.TID(nil), c.TIDs...)
	case *DiffsetNode:
		return append([]tidset.TID(nil), c.Diff...)
	case *BitvectorNode:
		return c.Bits.TIDs()
	case *TiledNode:
		return c.T.ToSet()
	case *NodesetNode:
		// The logical content is the relabeled TID set the lists stand
		// for — what the degrade shim materializes.
		if c.root {
			return c.rootTIDs()
		}
		return c.diffTIDs()
	}
	panic(fmt.Sprintf("unknown node %T", n))
}

func samePayload(a, b []tidset.TID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scribble overwrites a node's backing memory — the full capacity of a
// set-backed node, not just its length, so an empty child whose buffer
// secretly aliases a parent's array is caught too.
func scribble(n Node) {
	switch c := n.(type) {
	case *TidsetNode:
		s := c.TIDs[:cap(c.TIDs)]
		for i := range s {
			s[i] = ^tidset.TID(0)
		}
	case *DiffsetNode:
		s := c.Diff[:cap(c.Diff)]
		for i := range s {
			s[i] = ^tidset.TID(0)
		}
	case *BitvectorNode:
		for i := 0; i < c.Bits.Len(); i++ {
			if i%2 == 0 {
				c.Bits.Set(tidset.TID(i))
			} else {
				c.Bits.Clear(tidset.TID(i))
			}
		}
	case *TiledNode:
		c.T.Poison()
	case *NodesetNode:
		s := c.DN[:cap(c.DN)]
		for i := range s {
			s[i] = nodeset.Entry{Pre: ^uint32(0), Count: ^uint32(0)}
		}
	}
}

// intoKinds are the kinds with an IntoCombiner: the paper's three plus
// the tiled layout and the nodeset representation (hybrid deliberately
// has none).
func intoKinds() []Kind { return append(Kinds(), Tiled, Nodeset) }

func randomRecoded(t testing.TB, rng *rand.Rand, items, txns int) *dataset.Recoded {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < txns; i++ {
		wrote := false
		for it := 1; it <= items; it++ {
			if rng.Intn(2) == 0 {
				if wrote {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "%d", it)
				wrote = true
			}
		}
		if !wrote {
			fmt.Fprintf(&sb, "%d", 1+rng.Intn(items))
		}
		sb.WriteByte('\n')
	}
	db, err := dataset.ReadFIMI("random", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return db.Recode(1)
}

// TestCombineIntoMatchesCombine: CombineWith through an arena is
// semantically identical to the allocating Combine — same support and
// same logical set — across representations, pairs, and a second
// level, with released nodes recycled in between.
func TestCombineIntoMatchesCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rec := randomRecoded(t, rng, 8, 60)
	for _, kind := range AllKinds() {
		rep := New(kind)
		roots := rep.Roots(rec)
		a := NewArena()
		for i := 0; i < len(roots); i++ {
			for j := i + 1; j < len(roots); j++ {
				want := rep.Combine(roots[i], roots[j])
				got := CombineWith(rep, a, roots[i], roots[j])
				if got.Support() != want.Support() {
					t.Fatalf("%v {%d,%d}: support %d, want %d", kind, i, j, got.Support(), want.Support())
				}
				if kind != Hybrid && !samePayload(payload(got), payload(want)) {
					t.Fatalf("%v {%d,%d}: payload %v, want %v", kind, i, j, payload(got), payload(want))
				}
				// Recycle the child so later combines exercise arena hits.
				if kind != Hybrid {
					a.Release(got)
				}
			}
		}
	}
}

// TestCombineIntoNeverAliasesParents is the aliasing property of the
// arena doc comment: a CombineInto result must not share backing
// memory with its live parents. Scribbling over the child's full
// buffer capacity must leave both parents' payloads untouched, and
// vice versa — including children recycled through Release, whose
// buffers migrated through the free list.
func TestCombineIntoNeverAliasesParents(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rec := randomRecoded(t, rng, 7, 50)
	for _, kind := range intoKinds() {
		rep := New(kind).(IntoCombiner)
		a := NewArena()
		for round := 0; round < 3; round++ { // round > 0 uses recycled buffers
			var released []Node
			for i := 0; i < 6; i++ {
				for j := i + 1; j < 6; j++ {
					// Direction 1: scribbling the child leaves the parents
					// intact. Fresh roots per pair, since scribble destroys.
					roots := New(kind).Roots(rec)
					px, py := roots[i], roots[j]
					pxBefore, pyBefore := payload(px), payload(py)
					child := rep.CombineInto(a, px, py)
					scribble(child)
					if !samePayload(payload(px), pxBefore) {
						t.Fatalf("%v round %d {%d,%d}: mutating child corrupted px", kind, round, i, j)
					}
					if !samePayload(payload(py), pyBefore) {
						t.Fatalf("%v round %d {%d,%d}: mutating child corrupted py", kind, round, i, j)
					}
					released = append(released, child)

					// Direction 2: scribbling the parents leaves the child
					// intact.
					roots = New(kind).Roots(rec)
					px, py = roots[i], roots[j]
					child = rep.CombineInto(a, px, py)
					childBefore := payload(child)
					scribble(px)
					scribble(py)
					if !samePayload(payload(child), childBefore) {
						t.Fatalf("%v round %d {%d,%d}: mutating parents corrupted child", kind, round, i, j)
					}
					released = append(released, child)
				}
			}
			for _, n := range released {
				a.Release(n)
			}
		}
	}
}

// TestArenaHitMissAccounting: first combine misses (empty free list),
// a released node turns the next combine into a hit, and Flush resets
// the local tallies.
func TestArenaHitMissAccounting(t *testing.T) {
	rec := exampleRecoded(t, 1)
	for _, kind := range intoKinds() {
		rep := New(kind).(IntoCombiner)
		roots := New(kind).Roots(rec)
		a := NewArena()
		c1 := rep.CombineInto(a, roots[0], roots[1])
		if a.hits != 0 || a.misses != 1 {
			t.Fatalf("%v: after first combine hits=%d misses=%d, want 0/1", kind, a.hits, a.misses)
		}
		want := New(kind).Combine(roots[0], roots[2]).Support()
		a.Release(c1)
		c2 := rep.CombineInto(a, roots[0], roots[2])
		if a.hits != 1 || a.misses != 1 {
			t.Fatalf("%v: after recycled combine hits=%d misses=%d, want 1/1", kind, a.hits, a.misses)
		}
		if c2.Support() != want {
			t.Fatalf("%v: recycled node support = %d, want %d", kind, c2.Support(), want)
		}
		a.Flush()
		if a.hits != 0 || a.misses != 0 {
			t.Errorf("%v: Flush left hits=%d misses=%d", kind, a.hits, a.misses)
		}
	}
}

// TestArenaBitvecLengthMismatch: a recycled bitvector of the wrong
// universe length is dropped (a miss), never handed out.
func TestArenaBitvecLengthMismatch(t *testing.T) {
	rec := exampleRecoded(t, 1)
	rep := New(Bitvector).(IntoCombiner)
	roots := New(Bitvector).Roots(rec)
	a := NewArena()
	a.Release(&BitvectorNode{Bits: bitvec.New(3)})
	c := rep.CombineInto(a, roots[0], roots[1])
	if a.hits != 0 || a.misses != 1 {
		t.Fatalf("hits=%d misses=%d, want the mismatched node dropped as a miss", a.hits, a.misses)
	}
	want := New(Bitvector).Combine(roots[0], roots[1])
	if c.Support() != want.Support() || !samePayload(payload(c), payload(want)) {
		t.Fatal("combine after mismatched release is wrong")
	}
}

// TestArenaNilSafe: nil arenas and nil nodes are ignored everywhere,
// and CombineWith without an arena is the plain Combine.
func TestArenaNilSafe(t *testing.T) {
	var a *Arena
	a.Release(nil)
	a.Flush()
	NewArena().Release(nil)
	rec := exampleRecoded(t, 1)
	rep := New(Diffset)
	roots := rep.Roots(rec)
	got := CombineWith(rep, nil, roots[0], roots[1])
	want := rep.Combine(roots[0], roots[1])
	if got.Support() != want.Support() || !samePayload(payload(got), payload(want)) {
		t.Fatal("CombineWith(nil arena) diverges from Combine")
	}
}

// TestArenaFreeListCapped: releasing more nodes than arenaMaxFree
// drops the excess instead of growing without bound.
func TestArenaFreeListCapped(t *testing.T) {
	a := NewArena()
	for i := 0; i < arenaMaxFree+10; i++ {
		a.Release(&DiffsetNode{})
	}
	if len(a.diffsets) != arenaMaxFree {
		t.Fatalf("free list length %d, want the %d cap", len(a.diffsets), arenaMaxFree)
	}
}

// The combine micro-benchmark pair: the allocating Combine against the
// arena-recycling CombineInto at steady state (child released every
// iteration, so after the first miss every node is a hit). allocs/op
// is the headline column — CombineInto must report fewer.

func benchCombineRoots(b *testing.B, kind Kind) (Representation, []Node) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	rec := randomRecoded(b, rng, 12, 4000)
	rep := New(kind)
	return rep, rep.Roots(rec)
}

func BenchmarkCombine(b *testing.B) {
	for _, kind := range intoKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			rep, roots := benchCombineRoots(b, kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep.Combine(roots[i%4], roots[4+i%4])
			}
		})
	}
}

func BenchmarkCombineInto(b *testing.B) {
	for _, kind := range intoKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			rep, roots := benchCombineRoots(b, kind)
			a := NewArena()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Release(CombineWith(rep, a, roots[i%4], roots[4+i%4]))
			}
		})
	}
}
