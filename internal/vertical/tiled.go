// The tiled representation: the tidset semantics (t(PXY) = t(PX) ∩
// t(PY), support = cardinality) over the tile-partitioned layout of
// tidset.Tiled — 128-TID tiles with exact occupancy summaries and a
// per-tile sparse/dense payload switch. It is a full Representation
// peer: it implements SupportOnly, IntoCombiner and CombineManyInto,
// so lazy materialization, the recycling arena and the prefix-blocked
// batch path all ride for free, and it is Degradable like the other
// unbounded layouts. Everything above vertical (Eclat, Apriori, the
// hybrid degrade machinery, runctl budgets) is layout-oblivious.

package vertical

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/kcount"
	"repro/internal/tidset"
)

// Tiled is the tile-partitioned tidset layout (an extension beyond the
// paper's three representations, like Hybrid).
const Tiled Kind = 4

// WithLayout resolves a layout selector against a representation: the
// cmd-layer "-layout tiled|flat" flag maps onto Kinds rather than a
// separate Options field, because the tiled layout IS the tidset
// representation under a different memory layout. "" keeps k; "flat"
// maps Tiled back to Tidset; "tiled" maps Tidset (or Tiled) to Tiled
// and rejects representations that have no tiled form.
func WithLayout(k Kind, layout string) (Kind, error) {
	switch layout {
	case "":
		return k, nil
	case "flat":
		if k == Tiled {
			return Tidset, nil
		}
		return k, nil
	case "tiled":
		switch k {
		case Tidset, Tiled:
			return Tiled, nil
		}
		return 0, fmt.Errorf("vertical: layout %q applies to the tidset representation, not %v", layout, k)
	}
	return 0, fmt.Errorf("vertical: unknown layout %q (want tiled or flat)", layout)
}

// TiledNode carries t(X) in tiled form for one itemset.
type TiledNode struct {
	T *tidset.Tiled
}

func (n *TiledNode) Support() int { return n.T.Len() }
func (n *TiledNode) Bytes() int   { return n.T.Bytes() }

type tiledRep struct{}

func (tiledRep) Kind() Kind { return Tiled }

func (tiledRep) Roots(rec *dataset.Recoded) []Node {
	sets := rec.TidsetOf()
	nodes := make([]Node, len(sets))
	for i, s := range sets {
		nodes[i] = &TiledNode{T: tidset.FromSet(s)}
		kcount.AddNode(kcount.Tiled, nodes[i].Bytes())
	}
	return nodes
}

func (tiledRep) Combine(px, py Node) Node {
	a, b := px.(*TiledNode), py.(*TiledNode)
	n := &TiledNode{T: a.T.IntersectInto(b.T, &tidset.Tiled{})}
	kcount.AddNode(kcount.Tiled, n.Bytes())
	return n
}

func (tiledRep) CombineSupport(px, py Node) int {
	return px.(*TiledNode).T.IntersectSize(py.(*TiledNode).T)
}

// getTiled pops a recycled tiled node (backing arrays truncated,
// capacity kept) or allocates one. Nil-safe like its siblings.
func (a *Arena) getTiled() *TiledNode {
	if a == nil {
		return &TiledNode{T: &tidset.Tiled{}}
	}
	if n := len(a.tileds); n > 0 {
		nd := a.tileds[n-1]
		a.tileds[n-1] = nil
		a.tileds = a.tileds[:n-1]
		a.hits++
		return nd
	}
	a.misses++
	return &TiledNode{T: &tidset.Tiled{}}
}

func (tiledRep) CombineInto(a *Arena, px, py Node) Node {
	x, y := px.(*TiledNode), py.(*TiledNode)
	n := a.getTiled()
	// No presizing needed: IntersectInto rebuilds from length zero and
	// the recycled arrays keep their high-water capacity.
	x.T.IntersectInto(y.T, n.T)
	kcount.AddNode(kcount.Tiled, n.Bytes())
	return n
}

// scratchTileds returns two length-m *Tiled slices for the batched
// kernel's sibling views and destinations, arena-owned like
// scratchSets.
func (a *Arena) scratchTileds(m int) (srcs, dsts []*tidset.Tiled) {
	if a == nil {
		return make([]*tidset.Tiled, m), make([]*tidset.Tiled, m)
	}
	if cap(a.batchTiledSrc) < m {
		a.batchTiledSrc = make([]*tidset.Tiled, m)
		a.batchTiledDst = make([]*tidset.Tiled, m)
	}
	return a.batchTiledSrc[:m], a.batchTiledDst[:m]
}

func (tiledRep) CombineManyInto(px Node, pys []Node, out []Node, a *Arena) {
	m := len(pys)
	if m == 0 {
		return
	}
	x := px.(*TiledNode)
	srcs, dsts := a.scratchTileds(m)
	for i, py := range pys {
		srcs[i] = py.(*TiledNode).T
		nd := a.getTiled()
		dsts[i] = nd.T
		out[i] = nd
	}
	tidset.TiledIntersectManyInto(x.T, srcs, dsts)
	bytes := 0
	for i := range dsts {
		bytes += out[i].Bytes()
	}
	kcount.AddNodes(kcount.Tiled, m, bytes)
}
