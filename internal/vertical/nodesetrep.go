// The nodeset representation: Deng's DiffNodesets (PAPERS.md,
// arXiv:1507.01345) as a full Representation peer. Roots build the
// PPC-encoded prefix tree once and hand each item its N-list; level-2
// combines run the ancestor merge over two N-lists; deeper combines
// are plain sorted differences of DiffNodesets — the diffset
// recurrence d(PXY) = d(PY) − d(PX) with tree nodes in place of
// transactions, which is why the miners' combine order, the arena free
// lists, the prefix-blocked batch path and lazy materialization all
// apply unchanged. The co-occurrence compression of the tree makes the
// lists (and every merge over them) shorter than the equivalent
// tidset/diffset work on dense databases.
//
// Mid-run degrade is exact, not approximate: the PPC pass assigns
// every tree node a contiguous interval of relabeled TIDs, so a
// DiffNodeset materializes to precisely d(X) = t(PX) − t(X) in the
// relabeled space, and a whole level converts to DiffsetNodes whose
// subsequent combines are exact (the relabeling is a bijection on
// transactions, so supports — the only observable — are unchanged).

package vertical

import (
	"repro/internal/dataset"
	"repro/internal/kcount"
	"repro/internal/nodeset"
	"repro/internal/tidset"
)

// Nodeset is the PPC-tree-encoded DiffNodeset representation (an
// extension beyond the paper's three, like Hybrid and Tiled).
const Nodeset Kind = 5

// NodesetNode carries one itemset's node list: level-1 roots hold the
// item's N-list (pre/post/count triples), deeper nodes hold the
// DiffNodeset DN(X) = NL(parent) − NL(X). Both reference nodes of the
// per-run Encoding that Roots built.
//
// A 2-itemset child born while the encoding carries the pair-support
// matrix is deferred: its support comes from the O(1) matrix lookup
// and lx/ly hold the parents' N-lists in place of a materialized DN.
// The ancestor merge runs only if the child is later used as a parent
// (or degraded) — candidates that die against minsup, and the last
// members of exhausted classes, never pay for a list at all. Deferral
// is single-owner: in class-recursive miners a level-2 node belongs to
// exactly one equivalence class whose combines run within one task;
// level-synchronous miners restore the discipline with a Prepare
// prepass at each level boundary.
type NodesetNode struct {
	Enc    *nodeset.Encoding
	L1     []nodeset.L1Entry // level-1 N-list; nil below the roots
	DN     nodeset.List      // DiffNodeset; nil at the roots
	lx, ly []nodeset.L1Entry // deferred 2-itemset parents; nil once materialized
	code   int               // dense item code; meaningful at roots only
	sup    int
	root   bool
	// unbilled marks a node born deferred: the miners charged it to the
	// memory budget at zero bytes (no list existed), so Bytes must keep
	// reporting zero after a later materialize — the miners' retirement
	// pass re-reads Bytes, and an asymmetric answer would drive the
	// live-bytes books negative. The materialized list is class-
	// transient arena scratch; kcount's bytes_materialized_nodeset
	// carries its true size.
	unbilled bool
}

func (n *NodesetNode) Support() int { return n.sup }

// materialize runs the deferred ancestor merge, reusing whatever DN
// capacity the node carries from the arena. No-op on eager nodes. The
// node and its bytes hit the kcount tallies here, not at deferral —
// nodes_built and bytes_materialized report lists that exist.
func (n *NodesetNode) materialize() {
	if n.lx == nil {
		return
	}
	n.DN, _ = nodeset.DiffL1Into(n.lx, n.ly, n.DN)
	n.lx, n.ly = nil, nil
	kcount.AddNodes(kcount.Nodeset, 0, nodeset.EntryBytes*len(n.DN))
}

// Prepare implements Preparer: level-synchronous miners call it on
// every parent of a level before counting blocks in parallel, because
// one node serves as x in its own block and as y in its elder
// siblings' — concurrent tasks that would otherwise both run the
// deferred merge.
func (n *NodesetNode) Prepare() { n.materialize() }

// Bytes is the node's own list footprint. The per-run Encoding (the
// N-list arena and the degrade interval table) is shared by every node
// of the run and accounted by the roots' N-lists, which alias it.
func (n *NodesetNode) Bytes() int {
	if n.root {
		return nodeset.L1EntryBytes * len(n.L1)
	}
	if n.unbilled {
		return 0
	}
	return nodeset.EntryBytes * len(n.DN)
}

type nodesetRep struct{}

func (nodesetRep) Kind() Kind { return Nodeset }

func (nodesetRep) Roots(rec *dataset.Recoded) []Node {
	enc := nodeset.Build(rec)
	nodes := make([]Node, len(rec.Items))
	for i := range rec.Items {
		n := &NodesetNode{Enc: enc, L1: enc.NLists[i], code: i, sup: rec.Items[i].Support, root: true}
		nodes[i] = n
		kcount.AddNode(kcount.Nodeset, n.Bytes())
	}
	return nodes
}

// levels panics when a combine crosses levels. The miners only combine
// equivalence-class siblings, so both parents are roots (N-list form)
// or both are deeper (DiffNodeset form); a mixed pair would silently
// read a nil list, so it is rejected loudly instead.
func levels(a, b *NodesetNode) bool {
	if a.root != b.root {
		panic("vertical: nodeset combine across tree levels (parents must be class siblings)")
	}
	return a.root
}

func (nodesetRep) Combine(px, py Node) Node {
	a, b := px.(*NodesetNode), py.(*NodesetNode)
	n := &NodesetNode{Enc: a.Enc}
	var sum int
	if levels(a, b) {
		if sup, ok := a.Enc.PairSupport(a.code, b.code); ok {
			n.sup = sup
			n.lx, n.ly = a.L1, b.L1
			n.unbilled = true
			kcount.AddNode(kcount.Nodeset, 0)
			return n
		}
		n.DN, sum = nodeset.DiffL1Into(a.L1, b.L1, nil)
	} else {
		a.materialize()
		b.materialize()
		n.DN, sum = nodeset.DiffInto(b.DN, a.DN, nil) // DN(PXY) = DN(PY) − DN(PX)
	}
	n.sup = a.sup - sum
	kcount.AddNode(kcount.Nodeset, n.Bytes())
	return n
}

func (nodesetRep) CombineSupport(px, py Node) int {
	a, b := px.(*NodesetNode), py.(*NodesetNode)
	if levels(a, b) {
		if sup, ok := a.Enc.PairSupport(a.code, b.code); ok {
			return sup
		}
		return a.sup - nodeset.DiffL1Size(a.L1, b.L1)
	}
	a.materialize()
	b.materialize()
	return a.sup - nodeset.DiffSize(b.DN, a.DN)
}

// getNodeset pops a recycled nodeset node (list truncated, capacity
// kept) or allocates one. Nil-safe like its siblings. Recycled nodes
// may have been roots; the root form is reset so the node can carry a
// DiffNodeset.
func (a *Arena) getNodeset() *NodesetNode {
	if a == nil {
		return &NodesetNode{}
	}
	if n := len(a.nodesets); n > 0 {
		nd := a.nodesets[n-1]
		a.nodesets[n-1] = nil
		a.nodesets = a.nodesets[:n-1]
		nd.L1, nd.root = nil, false
		nd.lx, nd.ly = nil, nil
		nd.unbilled = false
		a.hits++
		return nd
	}
	a.misses++
	return &NodesetNode{}
}

func (nodesetRep) CombineInto(a *Arena, px, py Node) Node {
	x, y := px.(*NodesetNode), py.(*NodesetNode)
	n := a.getNodeset()
	n.Enc = x.Enc
	var sum int
	if levels(x, y) {
		if sup, ok := x.Enc.PairSupport(x.code, y.code); ok {
			n.sup = sup
			n.lx, n.ly = x.L1, y.L1
			n.DN = n.DN[:0]
			n.unbilled = true
			kcount.AddNode(kcount.Nodeset, 0)
			return n
		}
		// Presize: DN(xy) ⊆ N(x).
		if cap(n.DN) < len(x.L1) {
			n.DN = make(nodeset.List, 0, len(x.L1))
		}
		n.DN, sum = nodeset.DiffL1Into(x.L1, y.L1, n.DN)
	} else {
		x.materialize()
		y.materialize()
		// Presize: |DN(PY) − DN(PX)| ≤ |DN(PY)|.
		if cap(n.DN) < len(y.DN) {
			n.DN = make(nodeset.List, 0, len(y.DN))
		}
		n.DN, sum = nodeset.DiffInto(y.DN, x.DN, n.DN)
	}
	n.sup = x.sup - sum
	kcount.AddNode(kcount.Nodeset, n.Bytes())
	return n
}

// scratchNodesets returns the batched kernel's per-call slices: sibling
// N-list views, sibling DiffNodeset views, destination lists and count
// sums, arena-owned like scratchSets.
func (a *Arena) scratchNodesets(m int) (l1s [][]nodeset.L1Entry, srcs, dsts []nodeset.List, sums []int) {
	if a == nil {
		return make([][]nodeset.L1Entry, m), make([]nodeset.List, m), make([]nodeset.List, m), make([]int, m)
	}
	if cap(a.batchNLL1) < m {
		a.batchNLL1 = make([][]nodeset.L1Entry, m)
		a.batchNLSrc = make([]nodeset.List, m)
		a.batchNLDst = make([]nodeset.List, m)
		a.batchNLSum = make([]int, m)
	}
	return a.batchNLL1[:m], a.batchNLSrc[:m], a.batchNLDst[:m], a.batchNLSum[:m]
}

func (nodesetRep) CombineManyInto(px Node, pys []Node, out []Node, a *Arena) {
	m := len(pys)
	if m == 0 {
		return
	}
	x := px.(*NodesetNode)
	atRoots := levels(x, pys[0].(*NodesetNode))
	if atRoots && x.Enc.HasPairs() {
		// Deferred level-2 block: supports come from the pair matrix,
		// lists only if a child is later extended.
		for i, py := range pys {
			y := py.(*NodesetNode)
			nd := a.getNodeset()
			nd.Enc = x.Enc
			nd.sup, _ = x.Enc.PairSupport(x.code, y.code)
			nd.lx, nd.ly = x.L1, y.L1
			nd.DN = nd.DN[:0]
			nd.unbilled = true
			out[i] = nd
		}
		kcount.AddNodes(kcount.Nodeset, m, 0)
		return
	}
	l1s, srcs, dsts, sums := a.scratchNodesets(m)
	if !atRoots {
		x.materialize()
	}
	for i, py := range pys {
		y := py.(*NodesetNode)
		nd := a.getNodeset()
		nd.Enc = x.Enc
		if atRoots {
			l1s[i] = y.L1
			if cap(nd.DN) < len(x.L1) {
				nd.DN = make(nodeset.List, 0, len(x.L1))
			}
		} else {
			y.materialize()
			srcs[i] = y.DN
			if cap(nd.DN) < len(y.DN) {
				nd.DN = make(nodeset.List, 0, len(y.DN))
			}
		}
		dsts[i] = nd.DN
		out[i] = nd
	}
	if atRoots {
		nodeset.DiffL1ManyInto(x.L1, l1s, dsts, sums)
	} else {
		nodeset.DiffManyInto(x.DN, srcs, dsts, sums)
	}
	bytes := 0
	for i := range dsts {
		nd := out[i].(*NodesetNode)
		nd.DN = dsts[i]
		nd.sup = x.sup - sums[i]
		bytes += nd.Bytes()
	}
	kcount.AddNodes(kcount.Nodeset, m, bytes)
}

// diffTIDs materializes a DiffNodeset to its relabeled TID set via the
// encoding's interval table: entries are sorted by pre-order rank and
// an antichain's intervals are disjoint and ascending, so the
// expansion is already a sorted set. This is the exact bridge from the
// nodeset representation to the diffset one: trans(DN(X)) = t(PX) −
// t(X) in the relabeled transaction space.
func (n *NodesetNode) diffTIDs() tidset.Set {
	n.materialize()
	out := make(tidset.Set, 0, n.DN.CountSum())
	for _, e := range n.DN {
		lo := n.Enc.Lo[e.Pre]
		for k := uint32(0); k < e.Count; k++ {
			out = append(out, tidset.TID(lo+k))
		}
	}
	return out
}

// rootTIDs materializes a root's N-list to the item's relabeled
// tidset.
func (n *NodesetNode) rootTIDs() tidset.Set {
	sup := 0
	for _, e := range n.L1 {
		sup += int(e.Count)
	}
	out := make(tidset.Set, 0, sup)
	for _, e := range n.L1 {
		lo := n.Enc.Lo[e.Pre]
		for k := uint32(0); k < e.Count; k++ {
			out = append(out, tidset.TID(lo+k))
		}
	}
	return out
}
