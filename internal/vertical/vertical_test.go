package vertical

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

// paperDB is the 6-item example of the paper's Figure 2 discussion:
// items A..F mapped to 1..6. With threshold 3 only A, C, E are frequent
// (supports 4, 5, 4), and d(AC) = {3}, support(AC) = 3.
const paperExample = `1 3 4 5
1 2 3 5
3 5
1 3 4
1 2 3 5
2 3 5
1 2 5 6
`

// Note: the paper's figures are not fully reproduced in the available
// text; this database is constructed so that the documented identities
// (diffset subtraction, support arithmetic) are exercised on paper-scale
// data. The identities themselves are checked for all representations.

func exampleRecoded(t *testing.T, minSup int) *dataset.Recoded {
	t.Helper()
	db, err := dataset.ReadFIMI("paper", strings.NewReader(paperExample))
	if err != nil {
		t.Fatal(err)
	}
	return db.Recode(minSup)
}

func TestKindString(t *testing.T) {
	if Tidset.String() != "tidset" || Bitvector.String() != "bitvector" || Diffset.String() != "diffset" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind string")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("horizontal"); err == nil {
		t.Error("ParseKind accepted unknown name")
	}
}

func TestRootsSupportsAgree(t *testing.T) {
	rec := exampleRecoded(t, 3)
	for _, kind := range Kinds() {
		rep := New(kind)
		roots := rep.Roots(rec)
		if len(roots) != len(rec.Items) {
			t.Fatalf("%v: %d roots, want %d", kind, len(roots), len(rec.Items))
		}
		for i, n := range roots {
			if n.Support() != rec.Items[i].Support {
				t.Errorf("%v root %d support = %d, want %d", kind, i, n.Support(), rec.Items[i].Support)
			}
		}
	}
}

// TestCombineAgreesAcrossRepresentations: every pair and triple combined
// under each representation must report the same support — and that
// support must equal a direct horizontal count.
func TestCombineAgreesAcrossRepresentations(t *testing.T) {
	rec := exampleRecoded(t, 1)
	n := len(rec.Items)
	horizontalSupport := func(s itemset.Itemset) int {
		c := 0
		for _, tr := range rec.DB.Transactions {
			if s.IsSubsetOf(tr) {
				c++
			}
		}
		return c
	}
	for _, kind := range Kinds() {
		rep := New(kind)
		roots := rep.Roots(rec)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pair := rep.Combine(roots[i], roots[j])
				want := horizontalSupport(itemset.New(itemset.Item(i), itemset.Item(j)))
				if pair.Support() != want {
					t.Errorf("%v support({%d,%d}) = %d, want %d", kind, i, j, pair.Support(), want)
				}
				for k := j + 1; k < n; k++ {
					pik := rep.Combine(roots[i], roots[k])
					triple := rep.Combine(pair, pik)
					want := horizontalSupport(itemset.New(itemset.Item(i), itemset.Item(j), itemset.Item(k)))
					if triple.Support() != want {
						t.Errorf("%v support({%d,%d,%d}) = %d, want %d", kind, i, j, k, triple.Support(), want)
					}
				}
			}
		}
	}
}

func TestDiffsetPaperIdentities(t *testing.T) {
	rec := exampleRecoded(t, 1)
	rep := New(Diffset)
	tidRep := New(Tidset)
	droots := rep.Roots(rec)
	troots := tidRep.Roots(rec)
	nTrans := rec.DB.NumTransactions()
	// d(x) is the complement of t(x).
	for i := range droots {
		d := droots[i].(*DiffsetNode)
		tt := troots[i].(*TidsetNode)
		if !d.Diff.Equal(tt.TIDs.Complement(nTrans)) {
			t.Errorf("item %d: diffset != complement of tidset", i)
		}
		if d.Support() != nTrans-len(d.Diff) {
			t.Errorf("item %d: support identity broken", i)
		}
	}
	// After one combine: d(XY) = t(X) − t(Y) (duality), and the support
	// matches the tidset intersection.
	for i := 0; i < len(droots); i++ {
		for j := i + 1; j < len(droots); j++ {
			dxy := rep.Combine(droots[i], droots[j]).(*DiffsetNode)
			tx := troots[i].(*TidsetNode).TIDs
			ty := troots[j].(*TidsetNode).TIDs
			if !dxy.Diff.Equal(tx.Diff(ty)) {
				t.Errorf("d(%d,%d) != t(%d)−t(%d)", i, j, i, j)
			}
			if dxy.Support() != tx.IntersectSize(ty) {
				t.Errorf("support(%d,%d) = %d, want %d", i, j, dxy.Support(), tx.IntersectSize(ty))
			}
		}
	}
}

// TestDiffsetShrinks: on dense data, diffsets after the first combine are
// no larger than the prefix tidset — the paper's memory argument.
func TestDiffsetFootprintSmallerOnDenseData(t *testing.T) {
	rec := exampleRecoded(t, 3)
	dRoots := New(Diffset).Roots(rec)
	tRoots := New(Tidset).Roots(rec)
	var dBytes, tBytes int
	for i := range dRoots {
		for j := i + 1; j < len(dRoots); j++ {
			dBytes += New(Diffset).Combine(dRoots[i], dRoots[j]).Bytes()
			tBytes += New(Tidset).Combine(tRoots[i], tRoots[j]).Bytes()
		}
	}
	if dBytes >= tBytes {
		t.Errorf("2-itemset diffsets (%dB) not smaller than tidsets (%dB) on dense data", dBytes, tBytes)
	}
}

func TestBytesAccounting(t *testing.T) {
	rec := exampleRecoded(t, 1)
	tn := New(Tidset).Roots(rec)[0].(*TidsetNode)
	if tn.Bytes() != 4*len(tn.TIDs) {
		t.Error("tidset Bytes mismatch")
	}
	bn := New(Bitvector).Roots(rec)[0].(*BitvectorNode)
	if bn.Bytes() != 8*bn.Bits.Words() {
		t.Error("bitvector Bytes mismatch")
	}
	if got := CombineCost(tn, tn); got != 2*tn.Bytes() {
		t.Errorf("CombineCost = %d", got)
	}
}

// Property test: on random databases, all three representations agree on
// the support of arbitrary combine chains.
func TestQuickRepresentationAgreement(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &dataset.DB{Name: "rand"}
		nTrans := 10 + r.Intn(60)
		nItems := 4 + r.Intn(6)
		for i := 0; i < nTrans; i++ {
			var items []itemset.Item
			for it := 0; it < nItems; it++ {
				if r.Intn(3) > 0 {
					items = append(items, itemset.Item(it))
				}
			}
			if len(items) == 0 {
				items = append(items, itemset.Item(r.Intn(nItems)))
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		rec := db.Recode(1)
		reps := []Representation{New(Tidset), New(Bitvector), New(Diffset)}
		roots := make([][]Node, len(reps))
		for i, rep := range reps {
			roots[i] = rep.Roots(rec)
		}
		n := len(rec.Items)
		if n < 3 {
			return true
		}
		// Random descending-combine chain: {a}, then {a,b}, {a,b,c}...
		// following the sibling-join discipline (same prefix).
		a := r.Intn(n - 2)
		b := a + 1 + r.Intn(n-a-2)
		c := b + 1 + r.Intn(n-b-1)
		var sups [3]int
		for i, rep := range reps {
			ab := rep.Combine(roots[i][a], roots[i][b])
			ac := rep.Combine(roots[i][a], roots[i][c])
			abc := rep.Combine(ab, ac)
			sups[i] = abc.Support()
		}
		return sups[0] == sups[1] && sups[1] == sups[2]
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("representation agreement: %v", err)
	}
}

// Support counting never goes negative, even on empty-diffset chains.
func TestDiffsetEmptyChain(t *testing.T) {
	db := &dataset.DB{Name: "tiny"}
	// Two identical transactions over items 0,1,2: every subset has
	// support 2, every diffset is empty.
	db.Transactions = []dataset.Transaction{itemset.New(0, 1, 2), itemset.New(0, 1, 2)}
	rec := db.Recode(1)
	rep := New(Diffset)
	roots := rep.Roots(rec)
	ab := rep.Combine(roots[0], roots[1])
	ac := rep.Combine(roots[0], roots[2])
	abc := rep.Combine(ab, ac)
	if abc.Support() != 2 {
		t.Errorf("support = %d, want 2", abc.Support())
	}
	if abc.Bytes() != 0 {
		t.Errorf("empty diffset has %d bytes", abc.Bytes())
	}
}

func TestTidsetSingleTransaction(t *testing.T) {
	db := &dataset.DB{Transactions: []dataset.Transaction{itemset.New(0, 1)}}
	rec := db.Recode(1)
	for _, kind := range Kinds() {
		rep := New(kind)
		roots := rep.Roots(rec)
		pair := rep.Combine(roots[0], roots[1])
		if pair.Support() != 1 {
			t.Errorf("%v: support = %d, want 1", kind, pair.Support())
		}
	}
}

// TestCombineSupportMatchesCombine: the count-only kernels must agree
// with full materialization for every representation, including hybrid
// with mixed node forms.
func TestCombineSupportMatchesCombine(t *testing.T) {
	rec := exampleRecoded(t, 1)
	for _, kind := range AllKinds() {
		rep := New(kind)
		counter, ok := rep.(SupportOnly)
		if !ok {
			t.Fatalf("%v does not implement SupportOnly", kind)
		}
		roots := rep.Roots(rec)
		n := len(roots)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := rep.Combine(roots[i], roots[j]).Support()
				if got := counter.CombineSupport(roots[i], roots[j]); got != want {
					t.Errorf("%v CombineSupport(%d,%d) = %d, want %d", kind, i, j, got, want)
				}
				// One level deeper (exercises hybrid's diffset forms).
				for k := j + 1; k < n; k++ {
					pij := rep.Combine(roots[i], roots[j])
					pik := rep.Combine(roots[i], roots[k])
					want := rep.Combine(pij, pik).Support()
					if got := counter.CombineSupport(pij, pik); got != want {
						t.Errorf("%v deep CombineSupport = %d, want %d", kind, got, want)
					}
				}
			}
		}
	}
}
