// Scratch arenas and allocation-free combine. Eclat's depth-first hot
// loop creates and discards one payload node per candidate; with the
// plain Combine every one of them is a fresh allocation, and at high
// thread counts the allocator (and the garbage it leaves behind)
// becomes the bottleneck — the effect Zymbler's many-core Apriori
// study pins on non-vectorized, allocation-heavy kernels. An Arena is
// a per-worker free list of nodes: CombineInto takes the child's node
// and backing storage from the arena when it can (a hit) and falls
// through to the allocator when it cannot (a miss), and Release
// returns a node whose subtree is fully mined. Hits and misses are
// tallied locally and flushed to kcount in batches.
//
// Ownership discipline: a node released to an arena must have no live
// children in flight — the miners release a class's atoms only after
// the recursion over that class returns. CombineInto never aliases its
// parents' storage (the Into kernels write a disjoint destination
// buffer), which arena_test.go checks as a property.

package vertical

import (
	"repro/internal/bitvec"
	"repro/internal/kcount"
	"repro/internal/nodeset"
	"repro/internal/tidset"
)

// arenaMaxFree caps each per-type free list so a briefly-deep
// recursion cannot pin an unbounded node pool for the rest of the run.
const arenaMaxFree = 1 << 14

// Arena is a single-worker recycling store of payload nodes. It is NOT
// safe for concurrent use: each worker owns one. Nodes released into
// an arena may have been allocated by another worker's arena (a stolen
// subtree releases its class wherever it ran); buffers simply migrate.
type Arena struct {
	tidsets  []*TidsetNode
	diffsets []*DiffsetNode
	bitvecs  []*BitvectorNode
	tileds   []*TiledNode
	nodesets []*NodesetNode
	hits     int64
	misses   int64

	// Batched-combine scratch (batch.go), reused across CombineManyInto
	// calls so the block loop never allocates slice headers. Safe
	// because an arena is single-worker and every call fully overwrites
	// the first m entries before reading them.
	batchSrc      []tidset.Set
	batchDst      []tidset.Set
	batchVec      []*bitvec.Vector
	batchOut      []*bitvec.Vector
	batchSup      []int
	batchTiledSrc []*tidset.Tiled
	batchTiledDst []*tidset.Tiled
	batchNLL1     [][]nodeset.L1Entry
	batchNLSrc    []nodeset.List
	batchNLDst    []nodeset.List
	batchNLSum    []int
	nodePys       []Node
	nodeOut       []Node
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Release returns a node to the arena for reuse. The caller must hold
// the only live reference to the node's payload (its subtree is fully
// mined). Unknown node kinds and nil are ignored. Nil-safe.
func (a *Arena) Release(n Node) {
	if a == nil || n == nil {
		return
	}
	switch c := n.(type) {
	case *TidsetNode:
		if len(a.tidsets) < arenaMaxFree {
			a.tidsets = append(a.tidsets, c)
		}
	case *DiffsetNode:
		if len(a.diffsets) < arenaMaxFree {
			a.diffsets = append(a.diffsets, c)
		}
	case *BitvectorNode:
		if len(a.bitvecs) < arenaMaxFree {
			a.bitvecs = append(a.bitvecs, c)
		}
	case *TiledNode:
		if len(a.tileds) < arenaMaxFree {
			a.tileds = append(a.tileds, c)
		}
	case *NodesetNode:
		if len(a.nodesets) < arenaMaxFree {
			a.nodesets = append(a.nodesets, c)
		}
	}
}

// Flush folds the arena's local hit/miss tallies into the process-wide
// kernel counters. The miners call it at task boundaries so the hot
// loop never touches an atomic. Nil-safe.
func (a *Arena) Flush() {
	if a == nil {
		return
	}
	kcount.AddArena(a.hits, a.misses)
	a.hits, a.misses = 0, 0
}

// getTidset pops a recycled tidset node (buffer truncated, capacity
// kept) or allocates one. Nil-safe: the batched combines accept a nil
// arena (tests, callers without per-worker state) and simply allocate.
func (a *Arena) getTidset() *TidsetNode {
	if a == nil {
		return &TidsetNode{}
	}
	if n := len(a.tidsets); n > 0 {
		nd := a.tidsets[n-1]
		a.tidsets[n-1] = nil
		a.tidsets = a.tidsets[:n-1]
		a.hits++
		return nd
	}
	a.misses++
	return &TidsetNode{}
}

func (a *Arena) getDiffset() *DiffsetNode {
	if a == nil {
		return &DiffsetNode{}
	}
	if n := len(a.diffsets); n > 0 {
		nd := a.diffsets[n-1]
		a.diffsets[n-1] = nil
		a.diffsets = a.diffsets[:n-1]
		a.hits++
		return nd
	}
	a.misses++
	return &DiffsetNode{}
}

// getBitvec pops a recycled bitvector node over a universe of n bits.
// Recycled vectors keep their length for the whole run (one mining run
// has one transaction universe), so a length mismatch — possible only
// if one arena serves runs over different databases — is treated as a
// miss and the mismatched node is dropped.
func (a *Arena) getBitvec(nbits int) *BitvectorNode {
	if a == nil {
		return &BitvectorNode{Bits: bitvec.New(nbits)}
	}
	for len(a.bitvecs) > 0 {
		i := len(a.bitvecs) - 1
		nd := a.bitvecs[i]
		a.bitvecs[i] = nil
		a.bitvecs = a.bitvecs[:i]
		if nd.Bits.Len() == nbits {
			a.hits++
			return nd
		}
	}
	a.misses++
	return &BitvectorNode{Bits: bitvec.New(nbits)}
}

// IntoCombiner is implemented by representations whose Combine can
// recycle arena storage. CombineInto(a, px, py) is semantically
// identical to Combine(px, py) — same support, same logical set — but
// the child's node and backing buffer come from a when possible. The
// result never shares backing memory with px or py.
type IntoCombiner interface {
	CombineInto(a *Arena, px, py Node) Node
}

// CombineWith dispatches to rep's CombineInto when it has one and an
// arena is supplied, else to the allocating Combine. This is the
// single combine entry point of the miners' recursion hot loops.
func CombineWith(rep Representation, a *Arena, px, py Node) Node {
	if a != nil {
		if ic, ok := rep.(IntoCombiner); ok {
			return ic.CombineInto(a, px, py)
		}
	}
	return rep.Combine(px, py)
}

func (tidsetRep) CombineInto(a *Arena, px, py Node) Node {
	x, y := px.(*TidsetNode), py.(*TidsetNode)
	n := a.getTidset()
	// Presize to the intersection's upper bound so an undersized recycled
	// buffer doesn't re-grow (copying per doubling) inside the merge loop.
	if bound := min(len(x.TIDs), len(y.TIDs)); cap(n.TIDs) < bound {
		n.TIDs = make(tidset.Set, 0, bound)
	}
	n.TIDs = x.TIDs.IntersectInto(y.TIDs, n.TIDs)
	kcount.AddNode(kcount.Tidset, n.Bytes())
	return n
}

func (diffsetRep) CombineInto(a *Arena, px, py Node) Node {
	x, y := px.(*DiffsetNode), py.(*DiffsetNode)
	n := a.getDiffset()
	if cap(n.Diff) < len(y.Diff) { // |d(PY) − d(PX)| ≤ |d(PY)|
		n.Diff = make(tidset.Set, 0, len(y.Diff))
	}
	n.Diff = y.Diff.DiffInto(x.Diff, n.Diff) // d(PXY) = d(PY) − d(PX)
	n.sup = x.sup - len(n.Diff)
	kcount.AddNode(kcount.Diffset, n.Bytes())
	return n
}

func (bitvectorRep) CombineInto(a *Arena, px, py Node) Node {
	x, y := px.(*BitvectorNode), py.(*BitvectorNode)
	n := a.getBitvec(x.Bits.Len())
	n.Bits.AndInto(x.Bits, y.Bits)
	n.sup = n.Bits.Count()
	kcount.AddNode(kcount.Bitvector, n.Bytes())
	return n
}

// hybridRep deliberately has no CombineInto: a hybrid node flips
// between tidset and diffset form per combine, so recycled storage
// would have to be re-typed per call; the flip bookkeeping costs more
// than the allocation it saves. CombineWith falls back to Combine.
