package vertical

import (
	"repro/internal/dataset"
	"repro/internal/kcount"
	"repro/internal/tidset"
)

// Hybrid is a fourth representation beyond the paper's three: Zaki &
// Gouda's actual dEclat recommendation. Level-1 nodes are tidsets (their
// diffsets — complements — are large); each Combine then stores
// whichever of the child's tidset or diffset is smaller, switching
// representation on a per-node basis as the search deepens. On dense
// data this keeps the early levels cheap and the deep levels tiny, and
// is benchmarked as extension ablation A7.
const Hybrid Kind = 3

// HybridNode stores either t(X) or d(X) (relative to the parent PX it
// was combined under), whichever was smaller at construction.
type HybridNode struct {
	set    tidset.Set
	isDiff bool
	sup    int
}

// IsDiffset reports which form the node stores (exposed for tests and
// the representation-tour example).
func (n *HybridNode) IsDiffset() bool { return n.isDiff }

func (n *HybridNode) Support() int { return n.sup }
func (n *HybridNode) Bytes() int   { return 4 * len(n.set) }

type hybridRep struct{}

func (hybridRep) Kind() Kind { return Hybrid }

// Roots builds level-1 nodes as tidsets: at the root, diffsets are
// complements and almost always larger.
func (hybridRep) Roots(rec *dataset.Recoded) []Node {
	sets := rec.TidsetOf()
	nodes := make([]Node, len(sets))
	for i, s := range sets {
		nodes[i] = &HybridNode{set: s, sup: len(s)}
		kcount.AddNode(kcount.Hybrid, 4*len(s))
	}
	return nodes
}

// Combine merges PX and PY (sharing prefix P, PX's last item first)
// using whichever identities their stored forms allow:
//
//	t,t: t(PXY) = t(PX) ∩ t(PY)
//	t,d: t(PXY) = t(PX) \ d(PY)      (since t(PY) = t(P) \ d(PY), t(PX) ⊆ t(P))
//	d,t: t(PXY) = t(PY) \ d(PX)
//	d,d: d(PXY) = d(PY) \ d(PX), support = support(PX) − |d(PXY)|
//
// When the child's tidset is materialized, the smaller of it and its
// diffset relative to PX (d = t(PX) \ t(PXY), available only in the t,t
// case) is kept.
func (hybridRep) Combine(px, py Node) Node {
	a, b := px.(*HybridNode), py.(*HybridNode)
	n := func(h *HybridNode) Node {
		kcount.AddNode(kcount.Hybrid, h.Bytes())
		return h
	}
	switch {
	case !a.isDiff && !b.isDiff:
		t := a.set.Intersect(b.set)
		// Diffset relative to PX: what PX has that the child lost.
		if d := len(a.set) - len(t); d < len(t) {
			// The dEclat switch-over: a tidset lineage turning diffset.
			kcount.AddHybridFlip()
			return n(&HybridNode{set: a.set.Diff(t), isDiff: true, sup: len(t)})
		}
		return n(&HybridNode{set: t, sup: len(t)})
	case !a.isDiff && b.isDiff:
		t := a.set.Diff(b.set)
		return n(&HybridNode{set: t, sup: len(t)})
	case a.isDiff && !b.isDiff:
		t := b.set.Diff(a.set)
		return n(&HybridNode{set: t, sup: len(t)})
	default:
		d := b.set.Diff(a.set)
		return n(&HybridNode{set: d, isDiff: true, sup: a.sup - len(d)})
	}
}

// CombineSupport computes the candidate's support without materializing
// its payload, using the count-only forms of the four hybrid cases.
func (hybridRep) CombineSupport(px, py Node) int {
	a, b := px.(*HybridNode), py.(*HybridNode)
	switch {
	case !a.isDiff && !b.isDiff:
		return a.set.IntersectSize(b.set)
	case !a.isDiff && b.isDiff:
		return a.set.DiffSize(b.set)
	case a.isDiff && !b.isDiff:
		return b.set.DiffSize(a.set)
	default:
		return a.sup - b.set.DiffSize(a.set)
	}
}
