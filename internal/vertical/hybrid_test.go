package vertical

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

func TestHybridKindPlumbing(t *testing.T) {
	if Hybrid.String() != "hybrid" {
		t.Error("Hybrid name")
	}
	k, err := ParseKind("hybrid")
	if err != nil || k != Hybrid {
		t.Error("ParseKind(hybrid)")
	}
	if New(Hybrid).Kind() != Hybrid {
		t.Error("New(Hybrid).Kind")
	}
	if len(AllKinds()) != 6 {
		t.Error("AllKinds length")
	}
	// Kinds stays the paper's three.
	if len(Kinds()) != 3 {
		t.Error("Kinds length")
	}
}

func TestHybridRootsAreTidsets(t *testing.T) {
	rec := exampleRecoded(t, 1)
	for _, n := range New(Hybrid).Roots(rec) {
		if n.(*HybridNode).IsDiffset() {
			t.Error("hybrid root stored as diffset")
		}
	}
}

// TestHybridAgreesWithTidset: the hybrid representation must compute the
// same supports as the plain tidset representation over arbitrary
// combine trees, regardless of which form each node happens to store.
func TestHybridAgreesWithTidset(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &dataset.DB{Name: "rand"}
		nTrans := 10 + r.Intn(50)
		nItems := 4 + r.Intn(5)
		for i := 0; i < nTrans; i++ {
			var items []itemset.Item
			for it := 0; it < nItems; it++ {
				// Dense-ish data so the diffset branch triggers often.
				if r.Intn(4) > 0 {
					items = append(items, itemset.Item(it))
				}
			}
			if len(items) == 0 {
				items = append(items, 0)
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		rec := db.Recode(1)
		h, td := New(Hybrid), New(Tidset)
		hr, tr := h.Roots(rec), td.Roots(rec)
		n := len(rec.Items)
		if n < 4 {
			return true
		}
		// Chain: combine siblings at three levels, checking supports.
		// Level 2: (0,1), (0,2), (0,3).
		h01, t01 := h.Combine(hr[0], hr[1]), td.Combine(tr[0], tr[1])
		h02, t02 := h.Combine(hr[0], hr[2]), td.Combine(tr[0], tr[2])
		h03, t03 := h.Combine(hr[0], hr[3]), td.Combine(tr[0], tr[3])
		if h01.Support() != t01.Support() || h02.Support() != t02.Support() || h03.Support() != t03.Support() {
			return false
		}
		// Level 3 siblings under (0,1): (0,1,2), (0,1,3).
		h012, t012 := h.Combine(h01, h02), td.Combine(t01, t02)
		h013, t013 := h.Combine(h01, h03), td.Combine(t01, t03)
		if h012.Support() != t012.Support() || h013.Support() != t013.Support() {
			return false
		}
		// Level 4: (0,1,2,3).
		h0123, t0123 := h.Combine(h012, h013), td.Combine(t012, t013)
		return h0123.Support() == t0123.Support()
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("hybrid vs tidset: %v", err)
	}
}

// TestHybridSwitchesOnDenseData: on highly correlated data, combines must
// actually produce diffset-form nodes (otherwise the hybrid is pointless)
// and the stored form must always be the smaller one in the t,t case.
func TestHybridSwitchesOnDenseData(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 20; i++ {
		sb.WriteString("1 2 3\n")
	}
	sb.WriteString("1 2\n1 3\n")
	db, err := dataset.ReadFIMI("dense", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	rec := db.Recode(1)
	h := New(Hybrid)
	roots := h.Roots(rec)
	// {1,2} has support 21 of 22; t(1)=22, diffset rel {1} = 1 element.
	n12 := h.Combine(roots[0], roots[1]).(*HybridNode)
	if !n12.IsDiffset() {
		t.Error("dense combine did not switch to diffset")
	}
	if n12.Support() != 21 {
		t.Errorf("support = %d, want 21", n12.Support())
	}
	if n12.Bytes() != 4 { // one tid in the diffset
		t.Errorf("diffset bytes = %d, want 4", n12.Bytes())
	}
}

// TestHybridSmallerThanBothOnDenseData: over a dense run, hybrid's total
// payload must be no larger than pure tidset and pure diffset.
func TestHybridFootprint(t *testing.T) {
	var sb strings.Builder
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		for it := 1; it <= 6; it++ {
			if r.Intn(10) > 0 {
				sb.WriteString(" ")
				sb.WriteByte(byte('0' + it))
			}
		}
		sb.WriteString("\n")
	}
	db, err := dataset.ReadFIMI("dense", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	rec := db.Recode(1)
	totalBytes := func(kind Kind) int {
		rep := New(kind)
		roots := rep.Roots(rec)
		total := 0
		// Sum over all sibling pair-and-triple combines under item 0.
		var pairs []Node
		for j := 1; j < len(roots); j++ {
			c := rep.Combine(roots[0], roots[j])
			pairs = append(pairs, c)
			total += c.Bytes()
		}
		for j := 1; j < len(pairs); j++ {
			total += rep.Combine(pairs[0], pairs[j]).Bytes()
		}
		return total
	}
	hybrid := totalBytes(Hybrid)
	tid := totalBytes(Tidset)
	diff := totalBytes(Diffset)
	if hybrid > tid || hybrid > diff {
		t.Errorf("hybrid payload %d exceeds tidset %d or diffset %d", hybrid, tid, diff)
	}
}
