package vertical

import (
	"math/rand"
	"testing"

	"repro/internal/tidset"
)

// TestCombineManyIntoMatchesCombine: the batched block combine is
// semantically m pairwise Combines — same supports, same payloads —
// for every representation (hybrid checked by support only: its node
// form is a per-child choice), with both a nil arena and a recycling
// arena whose buffers go through Release between blocks.
func TestCombineManyIntoMatchesCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	rec := randomRecoded(t, rng, 8, 60)
	for _, kind := range AllKinds() {
		for _, arena := range []*Arena{nil, NewArena()} {
			rep := New(kind)
			roots := rep.Roots(rec)
			for i := 0; i < len(roots)-1; i++ {
				pys := roots[i+1:]
				out := make([]Node, len(pys))
				rep.CombineManyInto(roots[i], pys, out, arena)
				for j, py := range pys {
					want := rep.Combine(roots[i], py)
					if out[j].Support() != want.Support() {
						t.Fatalf("%v block %d child %d: support %d, want %d",
							kind, i, j, out[j].Support(), want.Support())
					}
					if kind != Hybrid && !samePayload(payload(out[j]), payload(want)) {
						t.Fatalf("%v block %d child %d: payload %v, want %v",
							kind, i, j, payload(out[j]), payload(want))
					}
				}
				if kind != Hybrid {
					for _, n := range out {
						arena.Release(n) // nil-safe; recycles buffers for the next block
					}
				}
			}
		}
	}
}

// TestCombineManyIntoNeverAliases extends the arena aliasing property
// to batched outputs: scribbling over any batched child's full buffer
// capacity must leave the shared parent, every sibling parent, and
// every sibling output untouched — and scribbling the parents must
// leave the children untouched. Three rounds, so rounds past the first
// run on buffers recycled through the free list.
func TestCombineManyIntoNeverAliases(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rec := randomRecoded(t, rng, 7, 50)
	for _, kind := range intoKinds() {
		rep := New(kind)
		a := NewArena()
		for round := 0; round < 3; round++ {
			// Direction 1: scribbling child j leaves parents and sibling
			// outputs intact.
			roots := New(kind).Roots(rec)
			px, pys := roots[0], roots[1:]
			parentsBefore := make([][]tidset.TID, len(roots))
			for i, r := range roots {
				parentsBefore[i] = payload(r)
			}
			out := make([]Node, len(pys))
			rep.CombineManyInto(px, pys, out, a)
			sibsBefore := make([][]tidset.TID, len(out))
			for j, n := range out {
				sibsBefore[j] = payload(n)
			}
			scribble(out[0])
			for i, r := range roots {
				if !samePayload(payload(r), parentsBefore[i]) {
					t.Fatalf("%v round %d: scribbling a child corrupted parent %d", kind, round, i)
				}
			}
			for j := 1; j < len(out); j++ {
				if !samePayload(payload(out[j]), sibsBefore[j]) {
					t.Fatalf("%v round %d: scribbling child 0 corrupted sibling %d", kind, round, j)
				}
			}
			for _, n := range out {
				a.Release(n)
			}

			// Direction 2: scribbling every parent leaves the children
			// intact.
			roots = New(kind).Roots(rec)
			px, pys = roots[0], roots[1:]
			out = make([]Node, len(pys))
			rep.CombineManyInto(px, pys, out, a)
			childBefore := make([][]tidset.TID, len(out))
			for j, n := range out {
				childBefore[j] = payload(n)
			}
			for _, r := range roots {
				scribble(r)
			}
			for j, n := range out {
				if !samePayload(payload(n), childBefore[j]) {
					t.Fatalf("%v round %d: scribbling parents corrupted child %d", kind, round, j)
				}
			}
			for _, n := range out {
				a.Release(n)
			}
		}
	}
}

// TestTiledLayoutMatchesFlat: the tiled layout is semantically the
// tidset representation — every pairwise and batched combine over
// tiled nodes yields exactly the flat kernels' sets and supports, at
// depth 1 and again one level down, with arena recycling in between.
// This is the vertical-level leg of the tiled×flat equivalence
// harness (the miner-level legs cross workers/depths/schedules).
func TestTiledLayoutMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for round := 0; round < 3; round++ {
		rec := randomRecoded(t, rng, 8, 80)
		flat, tiled := New(Tidset), New(Tiled)
		fRoots, tRoots := flat.Roots(rec), tiled.Roots(rec)
		if len(fRoots) != len(tRoots) {
			t.Fatal("root count disagrees across layouts")
		}
		a := NewArena()
		for i := range fRoots {
			if !samePayload(payload(fRoots[i]), payload(tRoots[i])) {
				t.Fatalf("root %d decodes differently across layouts", i)
			}
		}
		// Batched level 2 under both layouts, then pairwise level 3
		// from the batched children.
		px, pys := fRoots[0], fRoots[1:]
		tx, tys := tRoots[0], tRoots[1:]
		fOut := make([]Node, len(pys))
		tOut := make([]Node, len(tys))
		flat.CombineManyInto(px, pys, fOut, a)
		tiled.CombineManyInto(tx, tys, tOut, a)
		for j := range fOut {
			if fOut[j].Support() != tOut[j].Support() {
				t.Fatalf("round %d child %d: support %d (flat) vs %d (tiled)",
					round, j, fOut[j].Support(), tOut[j].Support())
			}
			if !samePayload(payload(fOut[j]), payload(tOut[j])) {
				t.Fatalf("round %d child %d: layouts decode different sets", round, j)
			}
		}
		for j := 1; j < len(fOut); j++ {
			f3 := CombineWith(flat, a, fOut[0], fOut[j])
			t3 := CombineWith(tiled, a, tOut[0], tOut[j])
			if f3.Support() != t3.Support() || !samePayload(payload(f3), payload(t3)) {
				t.Fatalf("round %d depth-3 pair %d: layouts disagree", round, j)
			}
			a.Release(f3)
			a.Release(t3)
		}
		for j := range fOut {
			a.Release(fOut[j])
			a.Release(tOut[j])
		}
	}
}

// The block-combine micro-benchmark pair: one parent against its whole
// sibling run, batched vs pairwise CombineInto, both at arena steady
// state. The batched form is the per-block inner loop of the miners.

func BenchmarkCombineManyInto(b *testing.B) {
	for _, kind := range intoKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			rep, roots := benchCombineRoots(b, kind)
			px, pys := roots[0], roots[1:]
			out := make([]Node, len(pys))
			a := NewArena()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep.CombineManyInto(px, pys, out, a)
				for _, n := range out {
					a.Release(n)
				}
			}
		})
	}
}

func BenchmarkCombinePairwiseBlock(b *testing.B) {
	for _, kind := range intoKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			rep, roots := benchCombineRoots(b, kind)
			ic := rep.(IntoCombiner)
			px, pys := roots[0], roots[1:]
			out := make([]Node, len(pys))
			a := NewArena()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, py := range pys {
					out[j] = ic.CombineInto(a, px, py)
				}
				for _, n := range out {
					a.Release(n)
				}
			}
		})
	}
}
