// Batched (prefix-blocked) combine. Candidates sharing a prefix PX are
// contiguous both in the Apriori candidate trie and in Eclat's
// equivalence classes, yet the pairwise Combine streams the shared
// parent's payload once per sibling. CombineManyInto amortizes it:
// one resident parent is combined against an entire sibling run in a
// single kernel call (tidset.IntersectManyInto, tidset.DiffManyInto,
// bitvec.AndManyInto), which is the cache-blocked batching of Amossen
// & Pagh applied to the paper's §V parent-traffic bottleneck. The
// parent_words_saved counter records the words of parent payload NOT
// re-streamed relative to the pairwise path.
//
// The aliasing and ownership discipline is exactly CombineInto's:
// results never share backing memory with px or any pys element, and
// arena storage recycles node buffers when an arena is supplied. A nil
// arena allocates fresh nodes (and fresh scratch), so the batched path
// is usable without per-worker state.

package vertical

import (
	"repro/internal/bitvec"
	"repro/internal/kcount"
	"repro/internal/tidset"
)

// scratchSets returns two length-m Set slices for the set-backed batch
// kernels' source views and destination buffers. Arena-owned so the
// block loop never allocates; a nil arena gets fresh slices.
func (a *Arena) scratchSets(m int) (srcs, dsts []tidset.Set) {
	if a == nil {
		return make([]tidset.Set, m), make([]tidset.Set, m)
	}
	if cap(a.batchSrc) < m {
		a.batchSrc = make([]tidset.Set, m)
		a.batchDst = make([]tidset.Set, m)
	}
	return a.batchSrc[:m], a.batchDst[:m]
}

// NodeScratch returns two length-m node slices owned by the arena, for
// callers gathering a sibling run ahead of CombineManyInto: the pys
// argument and the out destination. Contents are unspecified; callers
// must overwrite [:m] before reading. A nil arena gets fresh slices.
func (a *Arena) NodeScratch(m int) (pys, out []Node) {
	if a == nil {
		return make([]Node, m), make([]Node, m)
	}
	if cap(a.nodePys) < m {
		a.nodePys = make([]Node, m)
		a.nodeOut = make([]Node, m)
	}
	return a.nodePys[:m], a.nodeOut[:m]
}

// scratchVecs is scratchSets' bitvector analogue, plus the per-child
// support accumulator AndManyInto fills.
func (a *Arena) scratchVecs(m int) (pys, outs []*bitvec.Vector, sups []int) {
	if a == nil {
		return make([]*bitvec.Vector, m), make([]*bitvec.Vector, m), make([]int, m)
	}
	if cap(a.batchVec) < m {
		a.batchVec = make([]*bitvec.Vector, m)
		a.batchOut = make([]*bitvec.Vector, m)
		a.batchSup = make([]int, m)
	}
	return a.batchVec[:m], a.batchOut[:m], a.batchSup[:m]
}

func (tidsetRep) CombineManyInto(px Node, pys []Node, out []Node, a *Arena) {
	m := len(pys)
	if m == 0 {
		return
	}
	x := px.(*TidsetNode)
	srcs, dsts := a.scratchSets(m)
	for i, py := range pys {
		y := py.(*TidsetNode)
		srcs[i] = y.TIDs
		nd := a.getTidset()
		// Presize to the intersection's upper bound: an undersized
		// recycled buffer would re-grow inside the merge loop, paying a
		// copy per doubling — dearer than one right-sized allocation.
		if bound := min(len(x.TIDs), len(y.TIDs)); cap(nd.TIDs) < bound {
			nd.TIDs = make(tidset.Set, 0, bound)
		}
		dsts[i] = nd.TIDs
		out[i] = nd
	}
	tidset.IntersectManyInto(x.TIDs, srcs, dsts)
	bytes := 0
	for i := range dsts {
		nd := out[i].(*TidsetNode)
		nd.TIDs = dsts[i]
		bytes += nd.Bytes()
	}
	kcount.AddNodes(kcount.Tidset, m, bytes)
}

func (diffsetRep) CombineManyInto(px Node, pys []Node, out []Node, a *Arena) {
	m := len(pys)
	if m == 0 {
		return
	}
	x := px.(*DiffsetNode)
	srcs, dsts := a.scratchSets(m)
	for i, py := range pys {
		y := py.(*DiffsetNode)
		srcs[i] = y.Diff
		nd := a.getDiffset()
		// Presize: d(PY) − d(PX) is at most |d(PY)| elements.
		if cap(nd.Diff) < len(y.Diff) {
			nd.Diff = make(tidset.Set, 0, len(y.Diff))
		}
		dsts[i] = nd.Diff
		out[i] = nd
	}
	tidset.DiffManyInto(x.Diff, srcs, dsts) // d(PXY) = d(PY) − d(PX)
	bytes := 0
	for i := range dsts {
		nd := out[i].(*DiffsetNode)
		nd.Diff = dsts[i]
		nd.sup = x.sup - len(nd.Diff)
		bytes += nd.Bytes()
	}
	kcount.AddNodes(kcount.Diffset, m, bytes)
}

func (bitvectorRep) CombineManyInto(px Node, pys []Node, out []Node, a *Arena) {
	m := len(pys)
	if m == 0 {
		return
	}
	x := px.(*BitvectorNode)
	vys, vouts, sups := a.scratchVecs(m)
	for i, py := range pys {
		vys[i] = py.(*BitvectorNode).Bits
		nd := a.getBitvec(x.Bits.Len())
		vouts[i] = nd.Bits
		out[i] = nd
	}
	bitvec.AndManyInto(x.Bits, vys, vouts, sups)
	bytes := 0
	for i := range sups {
		nd := out[i].(*BitvectorNode)
		nd.sup = sups[i]
		bytes += nd.Bytes()
	}
	kcount.AddNodes(kcount.Bitvector, m, bytes)
}

// hybridRep batches by falling back to pairwise Combine: a hybrid node
// flips between tidset and diffset form per child, so there is no
// shared-parent kernel to amortize — and no batch counters are
// charged, since no parent words are actually saved.
func (h hybridRep) CombineManyInto(px Node, pys []Node, out []Node, _ *Arena) {
	for i, py := range pys {
		out[i] = h.Combine(px, py)
	}
}
