//go:build faultinject

package sched

// Environment-driven fault injection, compiled only under the
// `faultinject` build tag: binaries built with -tags faultinject arm the
// chunk-boundary hook from the SCHED_FAULT environment variable, so an
// operator can rehearse worker failures in a staging binary without
// writing code. Release builds (no tag) do not contain this installer.
//
// SCHED_FAULT grammar (comma-separated directives):
//
//	panic:<seq>        panic at the <seq>-th chunk boundary
//	delay:<seq>:<ms>   sleep <ms> milliseconds at the <seq>-th boundary
//	cancel:<seq>       stop the run (context.Canceled) at the <seq>-th boundary
//
// Example: SCHED_FAULT=delay:3:50,panic:10

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

func init() {
	plan := os.Getenv("SCHED_FAULT")
	if plan == "" {
		return
	}
	hook, err := ParseFaultPlan(plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sched: ignoring SCHED_FAULT: %v\n", err)
		return
	}
	SetFaultHook(hook)
}

// ParseFaultPlan compiles a SCHED_FAULT directive string into a fault
// hook. Exposed for the tag-gated tests.
func ParseFaultPlan(plan string) (func(FaultContext), error) {
	type action struct {
		kind  string
		delay time.Duration
	}
	actions := map[int64]action{}
	for _, dir := range strings.Split(plan, ",") {
		parts := strings.Split(strings.TrimSpace(dir), ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("bad directive %q", dir)
		}
		seq, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil || seq < 1 {
			return nil, fmt.Errorf("bad chunk sequence in %q", dir)
		}
		switch parts[0] {
		case "panic", "cancel":
			if len(parts) != 2 {
				return nil, fmt.Errorf("bad directive %q", dir)
			}
			actions[seq] = action{kind: parts[0]}
		case "delay":
			if len(parts) != 3 {
				return nil, fmt.Errorf("bad directive %q", dir)
			}
			ms, err := strconv.Atoi(parts[2])
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("bad delay in %q", dir)
			}
			actions[seq] = action{kind: "delay", delay: time.Duration(ms) * time.Millisecond}
		default:
			return nil, fmt.Errorf("unknown fault kind in %q", dir)
		}
	}
	return func(fc FaultContext) {
		a, ok := actions[fc.Seq]
		if !ok {
			return
		}
		switch a.kind {
		case "panic":
			panic(fmt.Sprintf("sched: injected fault at chunk %d [%d,%d) worker %d", fc.Seq, fc.Lo, fc.Hi, fc.Worker))
		case "delay":
			time.Sleep(a.delay)
		case "cancel":
			fc.Control.Stop(context.Canceled)
		}
	}, nil
}
