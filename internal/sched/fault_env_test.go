//go:build faultinject

package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runctl"
)

// TestParseFaultPlanRejectsGarbage: malformed plans fail loudly instead
// of silently arming a partial hook.
func TestParseFaultPlanRejectsGarbage(t *testing.T) {
	for _, plan := range []string{
		"",
		"panic",
		"panic:",
		"panic:0",
		"panic:-3",
		"panic:x",
		"panic:2:extra",
		"delay:1",
		"delay:1:x",
		"delay:1:-5",
		"cancel:1:9",
		"teleport:4",
	} {
		if _, err := ParseFaultPlan(plan); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted garbage", plan)
		}
	}
}

// TestParseFaultPlanPanic: an armed panic directive fires at exactly its
// chunk sequence and is contained like any worker panic.
func TestParseFaultPlanPanic(t *testing.T) {
	defer SetFaultHook(nil)
	hook, err := ParseFaultPlan("panic:3")
	if err != nil {
		t.Fatal(err)
	}
	SetFaultHook(hook)
	rc := runctl.New(context.Background(), runctl.Budget{})
	defer rc.Close()
	loopErr := NewTeam(2).ForCtx(rc, 100, Schedule{Policy: Dynamic, Chunk: 5}, func(_, i int) {})
	var perr *runctl.WorkerPanicError
	if !errors.As(loopErr, &perr) {
		t.Fatalf("err = %v, want *runctl.WorkerPanicError", loopErr)
	}
}

// TestParseFaultPlanCancelAndDelay: a combined plan delays one chunk and
// cancels at a later one.
func TestParseFaultPlanCancelAndDelay(t *testing.T) {
	defer SetFaultHook(nil)
	hook, err := ParseFaultPlan(" delay:1:5 , cancel:4 ")
	if err != nil {
		t.Fatal(err)
	}
	SetFaultHook(hook)
	rc := runctl.New(context.Background(), runctl.Budget{})
	defer rc.Close()
	var ran atomic.Int64
	start := time.Now()
	loopErr := NewTeam(1).ForCtx(rc, 100, Schedule{Policy: Dynamic, Chunk: 5}, func(_, i int) { ran.Add(1) })
	if !errors.Is(loopErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", loopErr)
	}
	if ran.Load() >= 100 {
		t.Error("loop ran to completion despite cancel directive")
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("delay directive did not sleep")
	}
}
