package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func allSchedules() []Schedule {
	return []Schedule{
		{Static, 0}, {Static, 1}, {Static, 3}, {Static, 100},
		{Dynamic, 0}, {Dynamic, 1}, {Dynamic, 7},
		{Guided, 0}, {Guided, 2},
	}
}

// drainChunker collects every range a chunker deals out, simulating p
// workers that alternate pulls.
func drainChunker(c Chunker, p int) [][2]int {
	var out [][2]int
	active := make([]bool, p)
	for i := range active {
		active[i] = true
	}
	remaining := p
	for w := 0; remaining > 0; w = (w + 1) % p {
		if !active[w] {
			continue
		}
		lo, hi, ok := c.Next(w)
		if !ok {
			active[w] = false
			remaining--
			continue
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// TestChunkerCoverage: every schedule must cover [0,n) exactly once.
func TestChunkerCoverage(t *testing.T) {
	for _, s := range allSchedules() {
		for _, n := range []int{0, 1, 5, 16, 97, 256} {
			for _, p := range []int{1, 2, 3, 8, 16, 300} {
				seen := make([]int, n)
				for _, ch := range drainChunker(NewChunker(n, p, s), p) {
					if ch[0] < 0 || ch[1] > n || ch[0] >= ch[1] {
						t.Fatalf("%v n=%d p=%d: bad chunk %v", s, n, p, ch)
					}
					for i := ch[0]; i < ch[1]; i++ {
						seen[i]++
					}
				}
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("%v n=%d p=%d: iteration %d covered %d times", s, n, p, i, c)
					}
				}
			}
		}
	}
}

func TestStaticBlocksAreContiguousAndBalanced(t *testing.T) {
	c := newStaticChunker(10, 3, 0)
	want := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	for w, exp := range want {
		lo, hi, ok := c.Next(w)
		if !ok || lo != exp[0] || hi != exp[1] {
			t.Errorf("worker %d got [%d,%d) ok=%v, want %v", w, lo, hi, ok, exp)
		}
		if _, _, ok := c.Next(w); ok {
			t.Errorf("worker %d got a second block under static,0", w)
		}
	}
}

func TestStaticChunkRoundRobin(t *testing.T) {
	c := newStaticChunker(7, 2, 2)
	// chunks: [0,2)[2,4)[4,6)[6,7) dealt w0,w1,w0,w1
	got0 := [][2]int{}
	for {
		lo, hi, ok := c.Next(0)
		if !ok {
			break
		}
		got0 = append(got0, [2]int{lo, hi})
	}
	if len(got0) != 2 || got0[0] != [2]int{0, 2} || got0[1] != [2]int{4, 6} {
		t.Errorf("worker 0 chunks = %v", got0)
	}
}

func TestDynamicChunkSizes(t *testing.T) {
	c := NewChunker(10, 4, Schedule{Dynamic, 3})
	var sizes []int
	for {
		lo, hi, ok := c.Next(0)
		if !ok {
			break
		}
		sizes = append(sizes, hi-lo)
	}
	want := []int{3, 3, 3, 1}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("chunk %d size = %d, want %d", i, sizes[i], want[i])
		}
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	c := NewChunker(100, 4, Schedule{Guided, 1})
	var sizes []int
	for {
		lo, hi, ok := c.Next(0)
		if !ok {
			break
		}
		sizes = append(sizes, hi-lo)
	}
	// First chunk is ceil(100/4)=25; sizes must be non-increasing down to 1.
	if sizes[0] != 25 {
		t.Errorf("first guided chunk = %d, want 25", sizes[0])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Errorf("guided chunks grew: %v", sizes)
		}
	}
}

func TestGuidedRespectsMinChunk(t *testing.T) {
	c := NewChunker(40, 8, Schedule{Guided, 6})
	for {
		lo, hi, ok := c.Next(0)
		if !ok {
			break
		}
		if hi-lo < 6 && hi != 40 {
			t.Errorf("guided dealt %d < minChunk before the tail", hi-lo)
		}
	}
}

func TestTeamForExecutesEachIterationOnce(t *testing.T) {
	for _, s := range allSchedules() {
		for _, workers := range []int{1, 2, 4, 16} {
			team := NewTeam(workers)
			const n = 500
			counts := make([]int64, n)
			team.For(n, s, func(_, i int) {
				atomic.AddInt64(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("%v workers=%d: iteration %d ran %d times", s, workers, i, c)
				}
			}
		}
	}
}

func TestTeamForChunks(t *testing.T) {
	team := NewTeam(3)
	const n = 100
	counts := make([]int64, n)
	team.ForChunks(n, Schedule{Dynamic, 5}, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt64(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

func TestTeamForZeroIterations(t *testing.T) {
	ran := false
	NewTeam(4).For(0, Schedule{Dynamic, 1}, func(_, _ int) { ran = true })
	if ran {
		t.Error("body ran for n=0")
	}
}

func TestTeamClampsWorkers(t *testing.T) {
	if NewTeam(0).Workers() != 1 || NewTeam(-5).Workers() != 1 {
		t.Error("NewTeam did not clamp to 1")
	}
}

// TestDynamicBalancesSkewedWork: with wildly uneven task costs, dynamic
// scheduling must keep worker finish times closer than a static split —
// the paper's reason for choosing dynamic in Eclat.
func TestDynamicBalancesSkewedWork(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const n = 64
	cost := make([]time.Duration, n)
	for i := range cost {
		cost[i] = 100 * time.Microsecond
	}
	cost[0] = 10 * time.Millisecond // one huge task at the front
	run := func(s Schedule) time.Duration {
		team := NewTeam(4)
		start := time.Now()
		team.For(n, s, func(_, i int) {
			busyWait(cost[i])
		})
		return time.Since(start)
	}
	// Static assigns the big task plus a quarter of the rest to worker 0;
	// dynamic gives worker 0 only the big task while others drain the rest.
	stat := run(Schedule{Static, 0})
	dyn := run(Schedule{Dynamic, 1})
	if dyn > stat*2 {
		t.Errorf("dynamic (%v) much slower than static (%v) on skewed work", dyn, stat)
	}
}

func busyWait(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// Property: coverage holds for random (n, p, schedule) combinations.
func TestQuickChunkerCoverage(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(300)
		p := 1 + r.Intn(32)
		s := Schedule{Policy(r.Intn(3)), r.Intn(5)}
		seen := make([]int, n)
		for _, ch := range drainChunker(NewChunker(n, p, s), p) {
			for i := ch[0]; i < ch[1]; i++ {
				seen[i]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("chunker coverage: %v", err)
	}
}

// Chunkers must be safe under concurrent pulls.
func TestChunkerConcurrentSafety(t *testing.T) {
	for _, s := range allSchedules() {
		const n, p = 10000, 8
		c := NewChunker(n, p, s)
		seen := make([]int64, n)
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					lo, hi, ok := c.Next(w)
					if !ok {
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt64(&seen[i], 1)
					}
				}
			}(w)
		}
		wg.Wait()
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("%v: iteration %d seen %d times", s, i, v)
			}
		}
	}
}

func BenchmarkForDynamic(b *testing.B) {
	team := NewTeam(4)
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team.For(1024, Schedule{Dynamic, 8}, func(_, i int) {
			atomic.AddInt64(&sink, int64(i))
		})
	}
}

func BenchmarkForStatic(b *testing.B) {
	team := NewTeam(4)
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team.For(1024, Schedule{Static, 0}, func(_, i int) {
			atomic.AddInt64(&sink, int64(i))
		})
	}
}

func TestPolicyStrings(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Error("policy names")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy name")
	}
	if Steal.String() != "steal" {
		t.Error("steal policy name")
	}
	for _, name := range []string{"static", "dynamic", "guided", "steal"} {
		p, err := ParsePolicy(name)
		if err != nil || p.String() != name {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParsePolicy("work-stealing"); err == nil {
		t.Error("ParsePolicy accepted unknown name")
	}
	if got := (Schedule{Dynamic, 4}).String(); got != "dynamic,4" {
		t.Errorf("Schedule.String = %q", got)
	}
	if got := (Schedule{Static, 0}).String(); got != "static" {
		t.Errorf("Schedule.String = %q", got)
	}
}

func TestNewChunkerPanics(t *testing.T) {
	cases := []func(){
		func() { NewChunker(-1, 2, Schedule{}) },
		func() { NewChunker(5, 0, Schedule{}) },
		func() { NewChunker(5, 2, Schedule{Policy: Policy(9)}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestForChunksSingleWorkerAndZero(t *testing.T) {
	team := NewTeam(1)
	calls := 0
	team.ForChunks(10, Schedule{Policy: Static}, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 10 {
			t.Errorf("single-worker chunk = (%d, %d, %d)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
	team.ForChunks(0, Schedule{Policy: Static}, func(int, int, int) { t.Error("ran for n=0") })
}

func TestForSingleWorkerSequential(t *testing.T) {
	team := NewTeam(1)
	var order []int
	team.For(5, Schedule{Policy: Dynamic, Chunk: 2}, func(_, i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker ran out of order: %v", order)
		}
	}
}
