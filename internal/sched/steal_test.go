package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runctl"
)

// spawnTree recursively spawns a binary tree of depth levels below the
// current task, counting every execution and every spawn. The owner
// runs its own subtasks depth-first; idle workers steal — either way
// each spawned task must run exactly once.
func spawnTree(depth int, sp SpawnFunc, executed, spawned *atomic.Int64) {
	executed.Add(1)
	if depth == 0 {
		return
	}
	for k := 0; k < 2; k++ {
		spawned.Add(1)
		sp(func(_ int, sp SpawnFunc) {
			spawnTree(depth-1, sp, executed, spawned)
		})
	}
}

// TestForTreeUnevenHammer is the -race deque hammer: skewed synthetic
// trees (root i spawns a binary tree of depth i%5, so a few roots carry
// almost all the work) across team sizes, asserting full coverage and
// the Metrics invariant TotalTasks == n + TotalSpawned with
// TotalStolen bounded by TotalSpawned.
func TestForTreeUnevenHammer(t *testing.T) {
	const n = 24
	for _, workers := range []int{1, 2, 4, 8} {
		team := NewTeam(workers)
		met := NewMetrics()
		team.SetMetrics(met)
		var executed, spawned atomic.Int64
		var rootRuns [n]atomic.Int32
		err := team.ForTreeCtx(nil, n, func(_, root int, sp SpawnFunc) {
			rootRuns[root].Add(1)
			spawnTree(root%5, sp, &executed, &spawned)
		})
		if err != nil {
			t.Fatalf("x%d: err = %v", workers, err)
		}
		for i := range rootRuns {
			if c := rootRuns[i].Load(); c != 1 {
				t.Fatalf("x%d: root %d ran %d times", workers, i, c)
			}
		}
		ps := met.Last()
		if ps == nil || ps.Schedule.Policy != Steal {
			t.Fatalf("x%d: last phase = %+v, want a steal-schedule record", workers, ps)
		}
		// Every body call (roots included) counts one task; spawnTree
		// counts executions of spawned tasks plus the n root calls.
		wantTasks := int64(n) + spawned.Load()
		if got := ps.TotalTasks(); got != wantTasks {
			t.Errorf("x%d: TotalTasks = %d, want n + spawned = %d", workers, got, wantTasks)
		}
		if got := ps.TotalSpawned(); got != spawned.Load() {
			t.Errorf("x%d: TotalSpawned = %d, want %d", workers, got, spawned.Load())
		}
		if ps.TotalTasks() != int64(ps.N)+ps.TotalSpawned() {
			t.Errorf("x%d: metrics invariant broken: tasks=%d n=%d spawned=%d",
				workers, ps.TotalTasks(), ps.N, ps.TotalSpawned())
		}
		if st := ps.TotalStolen(); st > ps.TotalSpawned() {
			t.Errorf("x%d: TotalStolen = %d exceeds TotalSpawned = %d", workers, st, ps.TotalSpawned())
		}
		if workers == 1 && ps.TotalStolen() != 0 {
			t.Errorf("serial team stole %d tasks", ps.TotalStolen())
		}
	}
}

// TestForTreeConcurrentLoops runs many ForTree loops on one team at
// once (meaningful under -race): the team holds no per-loop state, so
// loops must not interfere.
func TestForTreeConcurrentLoops(t *testing.T) {
	team := NewTeam(4)
	const loops, n = 8, 64
	var wg sync.WaitGroup
	errs := make(chan string, loops)
	for l := 0; l < loops; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			var hits [n]atomic.Int32
			team.ForTree(n, func(_, root int, sp SpawnFunc) {
				if root%3 == 0 {
					sp(func(int, SpawnFunc) {}) // exercise the deques too
				}
				hits[root].Add(1)
			})
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					errs <- fmt.Sprintf("loop %d: root %d ran %d times", l, i, c)
					return
				}
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestForTreeStealIsObserved forces a deterministic steal: the single
// root spawns one subtask and then blocks until it has started. The
// owner is stuck inside the root body, so only a thief can run the
// subtask. The steal must show up in WorkerStats.Stolen and as a
// StolenSpanSuffix-marked span.
func TestForTreeStealIsObserved(t *testing.T) {
	team := NewTeam(4)
	met := NewMetrics()
	team.SetMetrics(met)
	tr := &recordingTracer{}
	met.SetTracer(tr)
	met.Label("steal-proof")
	started := make(chan struct{})
	err := team.ForTreeCtx(nil, 1, func(_, _ int, sp SpawnFunc) {
		sp(func(int, SpawnFunc) { close(started) })
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			panic("spawned task was never stolen")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := met.Last()
	if ps.TotalSpawned() != 1 || ps.TotalStolen() != 1 {
		t.Fatalf("spawned=%d stolen=%d, want 1 and 1", ps.TotalSpawned(), ps.TotalStolen())
	}
	var marked int
	for _, s := range tr.spans() {
		if strings.HasSuffix(s.name, StolenSpanSuffix) {
			marked++
			if !strings.HasPrefix(s.name, "steal-proof") {
				t.Errorf("stolen span name = %q, want the loop label prefix", s.name)
			}
		}
	}
	if marked != 1 {
		t.Errorf("%d stolen-marked spans, want 1 (spans: %+v)", marked, tr.spans())
	}
}

// recordingTracer captures chunk spans for assertions.
type recordingTracer struct {
	mu  sync.Mutex
	got []tracedSpan
}

type tracedSpan struct {
	name   string
	worker int
	lo, hi int
}

func (r *recordingTracer) ChunkSpan(phase string, worker, lo, hi int, tasks int64, start time.Time, dur time.Duration) {
	r.mu.Lock()
	r.got = append(r.got, tracedSpan{name: phase, worker: worker, lo: lo, hi: hi})
	r.mu.Unlock()
}

func (r *recordingTracer) spans() []tracedSpan {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]tracedSpan(nil), r.got...)
}

// TestForTreeSpanIDsUnique: root tasks use their root index as span id
// and spawned tasks draw fresh ids past the root range, so no two
// tasks of one loop share an id.
func TestForTreeSpanIDsUnique(t *testing.T) {
	team := NewTeam(3)
	met := NewMetrics()
	team.SetMetrics(met)
	tr := &recordingTracer{}
	met.SetTracer(tr)
	const n = 10
	team.ForTree(n, func(_, root int, sp SpawnFunc) {
		if root%2 == 0 {
			sp(func(int, SpawnFunc) {})
		}
	})
	seen := map[int]bool{}
	for _, s := range tr.spans() {
		if s.hi != s.lo+1 {
			t.Errorf("tree span [%d,%d) is not a single task", s.lo, s.hi)
		}
		if seen[s.lo] {
			t.Errorf("span id %d recorded twice", s.lo)
		}
		seen[s.lo] = true
	}
	if len(seen) != n+n/2 {
		t.Errorf("recorded %d spans, want %d", len(seen), n+n/2)
	}
}

// TestForTreeCancel: a stop raised mid-loop drains the workers without
// running the remaining roots, and the stop cause comes back.
func TestForTreeCancel(t *testing.T) {
	team := NewTeam(2)
	rc := runctl.New(context.Background(), runctl.Budget{})
	defer rc.Close()
	var ran atomic.Int64
	err := team.ForTreeCtx(rc, 10000, func(_, _ int, sp SpawnFunc) {
		if ran.Add(1) == 5 {
			rc.Stop(context.Canceled)
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The stop fired at 5; each worker may have had one task in flight.
	if total := ran.Load(); total > 5+int64(team.Workers()) {
		t.Errorf("%d tasks ran after stop at 5", total)
	}
}

// TestForTreeCancelledBeforeLoop: a pre-cancelled control runs nothing.
func TestForTreeCancelledBeforeLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rc := runctl.New(ctx, runctl.Budget{})
	defer rc.Close()
	for !rc.Stopped() {
		time.Sleep(time.Millisecond)
	}
	var ran atomic.Int64
	err := NewTeam(4).ForTreeCtx(rc, 100, func(_, _ int, sp SpawnFunc) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("pre-cancelled tree loop ran %d tasks", ran.Load())
	}
}

// TestForTreePanicContained: a panic in a root body or in a spawned
// task is contained and returned as *runctl.WorkerPanicError, and the
// run control stops so sibling loops drain.
func TestForTreePanicContained(t *testing.T) {
	for _, inSpawned := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			team := NewTeam(workers)
			rc := runctl.New(context.Background(), runctl.Budget{})
			err := team.ForTreeCtx(rc, 50, func(_, root int, sp SpawnFunc) {
				if root != 17 {
					return
				}
				if inSpawned {
					sp(func(int, SpawnFunc) { panic("tree boom") })
				} else {
					panic("tree boom")
				}
			})
			rc.Close()
			var perr *runctl.WorkerPanicError
			if !errors.As(err, &perr) {
				t.Fatalf("spawned=%v x%d: err = %v, want *runctl.WorkerPanicError", inSpawned, workers, err)
			}
			if perr.Value != "tree boom" {
				t.Errorf("spawned=%v x%d: panic value = %v", inSpawned, workers, perr.Value)
			}
			if !rc.Stopped() {
				t.Errorf("spawned=%v x%d: control not stopped after panic", inSpawned, workers)
			}
		}
	}
}

// TestForTreePanicRethrown: the no-control ForTree re-raises the
// contained panic like For does.
func TestForTreePanicRethrown(t *testing.T) {
	defer func() {
		if _, ok := recover().(*runctl.WorkerPanicError); !ok {
			t.Fatal("ForTree did not re-raise *runctl.WorkerPanicError")
		}
	}()
	NewTeam(2).ForTree(10, func(_, root int, sp SpawnFunc) {
		if root == 3 {
			panic("rethrown")
		}
	})
	t.Fatal("ForTree returned instead of panicking")
}

// TestForTreeFaultHookFires: the chunk-boundary fault hook fires at
// tree-task boundaries too, so the miner-level fault-injection suite
// covers steal mode unchanged.
func TestForTreeFaultHookFires(t *testing.T) {
	defer SetFaultHook(nil)
	SetFaultHook(func(fc FaultContext) {
		if fc.Seq == 3 {
			fc.Control.Stop(context.Canceled)
		}
	})
	rc := runctl.New(context.Background(), runctl.Budget{})
	defer rc.Close()
	var ran atomic.Int64
	err := NewTeam(1).ForTreeCtx(rc, 1000, func(_, _ int, sp SpawnFunc) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() >= 1000 {
		t.Error("tree loop ran to completion despite injected cancel")
	}
}

// TestForTreeZeroAndSerial: n == 0 is a no-op; a one-worker team runs
// everything inline, spawned tasks included, in depth-first order.
func TestForTreeZeroAndSerial(t *testing.T) {
	if err := NewTeam(4).ForTreeCtx(nil, 0, func(int, int, SpawnFunc) {
		t.Error("body ran for n == 0")
	}); err != nil {
		t.Fatal(err)
	}
	var order []int
	NewTeam(1).ForTree(3, func(_, root int, sp SpawnFunc) {
		order = append(order, root)
		sp(func(int, SpawnFunc) { order = append(order, 100+root) })
	})
	// The owner pops its own deque before claiming the next root:
	// each spawned task runs right after its parent body returns.
	want := []int{0, 100, 1, 101, 2, 102}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestStealChunkerFallsBackToDynamic: flat loops under the steal
// policy use the dynamic chunker (chunk 1 unless overridden), matching
// the paper's dynamic,1 baseline.
func TestStealChunkerFallsBackToDynamic(t *testing.T) {
	ch := NewChunker(10, 2, Schedule{Policy: Steal})
	lo, hi, ok := ch.Next(0)
	if !ok || hi-lo != 1 {
		t.Fatalf("steal chunker dealt [%d,%d) ok=%v, want single-iteration chunks", lo, hi, ok)
	}
	ch = NewChunker(10, 2, Schedule{Policy: Steal, Chunk: 4})
	if lo, hi, ok = ch.Next(0); !ok || hi-lo != 4 {
		t.Fatalf("steal chunker with chunk 4 dealt [%d,%d) ok=%v", lo, hi, ok)
	}
	var hits [100]atomic.Int32
	NewTeam(4).For(100, Schedule{Policy: Steal}, func(_, i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("flat steal loop: iteration %d ran %d times", i, hits[i].Load())
		}
	}
}
