package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runctl"
)

// schedules covers every policy with and without an explicit chunk.
var robustSchedules = []Schedule{
	{Policy: Static},
	{Policy: Static, Chunk: 3},
	{Policy: Dynamic, Chunk: 1},
	{Policy: Dynamic, Chunk: 7},
	{Policy: Guided},
}

// TestForConcurrent runs many For loops on the same Team from many
// goroutines at once. The Team holds no per-loop state, so this must be
// race-free (meaningful under -race) and every loop must cover its full
// iteration space exactly once.
func TestForConcurrent(t *testing.T) {
	team := NewTeam(4)
	const loops, n = 16, 1000
	var wg sync.WaitGroup
	errs := make(chan string, loops)
	for l := 0; l < loops; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			s := robustSchedules[l%len(robustSchedules)]
			var hits [n]atomic.Int32
			team.For(n, s, func(_, i int) { hits[i].Add(1) })
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					errs <- fmt.Sprintf("loop %d (%v): iteration %d ran %d times", l, s, i, c)
					return
				}
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestForCtxPanicContained proves a panic in the body does not crash the
// process: the team drains, the sibling workers stop, and the caller
// receives a *runctl.WorkerPanicError carrying the panic value and a
// stack trace.
func TestForCtxPanicContained(t *testing.T) {
	for _, s := range robustSchedules {
		for _, workers := range []int{1, 4} {
			team := NewTeam(workers)
			rc := runctl.New(context.Background(), runctl.Budget{})
			var ran atomic.Int32
			err := team.ForCtx(rc, 500, s, func(_, i int) {
				if i == 137 {
					panic("boom at 137")
				}
				ran.Add(1)
			})
			rc.Close()
			var perr *runctl.WorkerPanicError
			if !errors.As(err, &perr) {
				t.Fatalf("%v x%d: err = %v, want *runctl.WorkerPanicError", s, workers, err)
			}
			if perr.Value != "boom at 137" {
				t.Errorf("%v x%d: panic value = %v", s, workers, perr.Value)
			}
			if len(perr.Stack) == 0 || !strings.Contains(string(perr.Stack), "robust_test") {
				t.Errorf("%v x%d: stack trace missing or foreign", s, workers)
			}
			if perr.Worker < 0 || perr.Worker >= workers {
				t.Errorf("%v x%d: worker index %d out of range", s, workers, perr.Worker)
			}
			// The panic must also have stopped the run's control, so
			// nested loops sharing rc drain too.
			if !rc.Stopped() {
				t.Errorf("%v x%d: control not stopped after panic", s, workers)
			}
		}
	}
}

// TestForPanicRethrown: the no-control For re-raises the contained panic
// as *runctl.WorkerPanicError on the caller's goroutine.
func TestForPanicRethrown(t *testing.T) {
	team := NewTeam(2)
	defer func() {
		r := recover()
		if _, ok := r.(*runctl.WorkerPanicError); !ok {
			t.Fatalf("recovered %T (%v), want *runctl.WorkerPanicError", r, r)
		}
	}()
	team.For(100, Schedule{Policy: Dynamic, Chunk: 1}, func(_, i int) {
		if i == 50 {
			panic("rethrown")
		}
	})
	t.Fatal("For returned instead of panicking")
}

// TestForCtxCancelMidChunk raises the stop flag while workers are inside
// a single huge static chunk, and asserts the loop unwinds within the
// cancellation stride rather than running the chunk to completion. The
// flag is raised synchronously via Stop (the same flag a cancelled
// context's watcher raises) so the bound is deterministic.
func TestForCtxCancelMidChunk(t *testing.T) {
	team := NewTeam(2)
	rc := runctl.New(context.Background(), runctl.Budget{})
	defer rc.Close()

	const n = 1 << 20 // two chunks of half a million iterations each
	var ran atomic.Int64
	const stopAt = 1000
	err := team.ForCtx(rc, n, Schedule{Policy: Static}, func(_, i int) {
		if ran.Add(1) == stopAt {
			rc.Stop(context.Canceled)
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// After Stop returns the flag is visible; each worker finishes at
	// most its current stride plus one more it may already have raced
	// into — a tiny fraction of the 2^20 iterations.
	if total := ran.Load(); total > stopAt+int64(team.Workers())*2*cancelStride {
		t.Errorf("ran %d iterations after stop at %d (stride %d)", total, stopAt, cancelStride)
	}
}

// TestForCtxCancelledBeforeLoop: a pre-cancelled control runs zero
// iterations.
func TestForCtxCancelledBeforeLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rc := runctl.New(ctx, runctl.Budget{})
	defer rc.Close()
	// The AfterFunc watcher runs asynchronously; wait for the flag.
	for !rc.Stopped() {
		time.Sleep(time.Millisecond)
	}
	var ran atomic.Int64
	err := NewTeam(4).ForCtx(rc, 1000, Schedule{Policy: Dynamic, Chunk: 1}, func(_, i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("pre-cancelled loop ran %d iterations", ran.Load())
	}
}

// TestForChunksCtxCancel: chunk-granular loops drain at the next chunk
// hand-out after a stop.
func TestForChunksCtxCancel(t *testing.T) {
	team := NewTeam(2)
	rc := runctl.New(context.Background(), runctl.Budget{})
	defer rc.Close()
	var chunks atomic.Int64
	err := team.ForChunksCtx(rc, 10000, Schedule{Policy: Dynamic, Chunk: 10}, func(_, lo, hi int) {
		if chunks.Add(1) == 3 {
			rc.Stop(context.Canceled)
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 3 chunks triggered the stop; each worker may have had one more in
	// flight.
	if c := chunks.Load(); c > 3+int64(team.Workers()) {
		t.Errorf("%d chunks ran after stop at 3", c)
	}
}

// TestFaultHookPanic injects a panic via the chunk-boundary hook and
// asserts containment — the mechanism the miner-level fault tests rely
// on.
func TestFaultHookPanic(t *testing.T) {
	defer SetFaultHook(nil)
	SetFaultHook(func(fc FaultContext) {
		if fc.Seq == 2 {
			panic("injected")
		}
	})
	rc := runctl.New(context.Background(), runctl.Budget{})
	defer rc.Close()
	err := NewTeam(2).ForCtx(rc, 100, Schedule{Policy: Dynamic, Chunk: 5}, func(_, i int) {})
	var perr *runctl.WorkerPanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *runctl.WorkerPanicError", err)
	}
	if perr.Value != "injected" {
		t.Errorf("panic value = %v", perr.Value)
	}
}

// TestFaultHookCancel injects a stop via the hook's Control handle.
func TestFaultHookCancel(t *testing.T) {
	defer SetFaultHook(nil)
	SetFaultHook(func(fc FaultContext) {
		if fc.Seq == 3 {
			fc.Control.Stop(context.Canceled)
		}
	})
	rc := runctl.New(context.Background(), runctl.Budget{})
	defer rc.Close()
	var ran atomic.Int64
	err := NewTeam(1).ForCtx(rc, 1000, Schedule{Policy: Dynamic, Chunk: 1}, func(_, i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() >= 1000 {
		t.Error("loop ran to completion despite injected cancel")
	}
}

// TestForCtxNilControl: a nil *Control must behave exactly like For —
// full coverage, no error — while keeping panic containment.
func TestForCtxNilControl(t *testing.T) {
	var hits [100]atomic.Int32
	err := NewTeam(3).ForCtx(nil, 100, Schedule{Policy: Guided}, func(_, i int) { hits[i].Add(1) })
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d times", i, hits[i].Load())
		}
	}
	err = NewTeam(3).ForCtx(nil, 100, Schedule{Policy: Guided}, func(_, i int) { panic("nil-rc") })
	var perr *runctl.WorkerPanicError
	if !errors.As(err, &perr) {
		t.Fatalf("nil-control panic: err = %v, want *runctl.WorkerPanicError", err)
	}
}
