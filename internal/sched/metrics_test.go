package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

// countChunks drives a fresh Chunker serially and returns the total
// chunk count it hands out. Chunk grant sizes depend only on the
// remaining-iteration state for every policy (static partitions are
// per-worker, dynamic grants are fixed-size, guided sizes are a pure
// function of the remaining count), so this matches what any concurrent
// execution claims in aggregate.
func countChunks(n, p int, s Schedule) int64 {
	ch := NewChunker(n, p, s)
	var total int64
	if s.Policy == Static {
		for w := 0; w < p; w++ {
			for {
				if _, _, ok := ch.Next(w); !ok {
					break
				}
				total++
			}
		}
		return total
	}
	for {
		if _, _, ok := ch.Next(0); !ok {
			break
		}
		total++
	}
	return total
}

// staticWorkerTasks returns each worker's iteration total under a
// static partition, which is deterministic per worker.
func staticWorkerTasks(n, p int, s Schedule) []int64 {
	ch := NewChunker(n, p, s)
	tasks := make([]int64, p)
	for w := 0; w < p; w++ {
		for {
			lo, hi, ok := ch.Next(w)
			if !ok {
				break
			}
			tasks[w] += int64(hi - lo)
		}
	}
	return tasks
}

// TestMetricsCountersSumForCtx: with a Metrics attached, a completed
// ForCtx loop records exactly N tasks and the chunker's exact chunk
// count, summed across per-worker counters, for every policy.
func TestMetricsCountersSumForCtx(t *testing.T) {
	const n = 1000
	const workers = 4
	for _, s := range []Schedule{
		{Policy: Static},
		{Policy: Static, Chunk: 7},
		{Policy: Dynamic, Chunk: 1},
		{Policy: Dynamic, Chunk: 16},
		{Policy: Guided},
		{Policy: Guided, Chunk: 8},
	} {
		t.Run(s.String(), func(t *testing.T) {
			team := NewTeam(workers)
			m := NewMetrics()
			team.SetMetrics(m)
			m.Label("loop-under-test")
			touched := make([]atomic.Int32, n)
			if err := team.ForCtx(nil, n, s, func(w, i int) {
				touched[i].Add(1)
			}); err != nil {
				t.Fatal(err)
			}
			for i := range touched {
				if c := touched[i].Load(); c != 1 {
					t.Fatalf("iteration %d executed %d times", i, c)
				}
			}
			ps := m.Last()
			if ps == nil {
				t.Fatal("no phase recorded")
			}
			if ps.Name != "loop-under-test" {
				t.Errorf("Name = %q, want loop-under-test", ps.Name)
			}
			if ps.N != n {
				t.Errorf("N = %d, want %d", ps.N, n)
			}
			if len(ps.Workers) != workers {
				t.Errorf("Workers = %d, want %d", len(ps.Workers), workers)
			}
			if got := ps.TotalTasks(); got != n {
				t.Errorf("TotalTasks = %d, want %d", got, n)
			}
			if want := countChunks(n, workers, s); ps.TotalChunks() != want {
				t.Errorf("TotalChunks = %d, want %d", ps.TotalChunks(), want)
			}
			if ps.Imbalance() < 1 {
				t.Errorf("Imbalance = %v, want >= 1", ps.Imbalance())
			}
			if s.Policy == Static {
				want := staticWorkerTasks(n, workers, s)
				for w, ws := range ps.Workers {
					if ws.Tasks != want[w] {
						t.Errorf("worker %d Tasks = %d, want %d", w, ws.Tasks, want[w])
					}
				}
			}
		})
	}
}

// TestMetricsCountersSumForChunksCtx: the chunk-granular loop accounts
// hi-lo tasks per claimed chunk; the sums match the same invariants.
func TestMetricsCountersSumForChunksCtx(t *testing.T) {
	const n = 777
	const workers = 3
	for _, s := range []Schedule{
		{Policy: Static},
		{Policy: Dynamic, Chunk: 10},
		{Policy: Guided, Chunk: 4},
	} {
		t.Run(s.String(), func(t *testing.T) {
			team := NewTeam(workers)
			m := NewMetrics()
			team.SetMetrics(m)
			touched := make([]atomic.Int32, n)
			if err := team.ForChunksCtx(nil, n, s, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					touched[i].Add(1)
				}
			}); err != nil {
				t.Fatal(err)
			}
			for i := range touched {
				if c := touched[i].Load(); c != 1 {
					t.Fatalf("iteration %d executed %d times", i, c)
				}
			}
			ps := m.Last()
			if ps == nil {
				t.Fatal("no phase recorded")
			}
			if got := ps.TotalTasks(); got != n {
				t.Errorf("TotalTasks = %d, want %d", got, n)
			}
			if want := countChunks(n, workers, s); ps.TotalChunks() != want {
				t.Errorf("TotalChunks = %d, want %d", ps.TotalChunks(), want)
			}
		})
	}
}

// TestMetricsSerialTeam: a one-worker team records everything on worker
// 0, and a team clamped by a tiny loop sizes Workers to the clamp.
func TestMetricsSerialTeam(t *testing.T) {
	team := NewTeam(8)
	m := NewMetrics()
	team.SetMetrics(m)
	if err := team.ForCtx(nil, 3, Schedule{Policy: Dynamic, Chunk: 1}, func(w, i int) {}); err != nil {
		t.Fatal(err)
	}
	ps := m.Last()
	if len(ps.Workers) != 3 {
		t.Errorf("Workers = %d, want clamp to 3", len(ps.Workers))
	}
	if ps.TotalTasks() != 3 {
		t.Errorf("TotalTasks = %d, want 3", ps.TotalTasks())
	}
}

// TestMetricsDrainExactlyOnce: Drain hands each finished loop out once,
// in order, so phase_end forwarding cannot duplicate.
func TestMetricsDrainExactlyOnce(t *testing.T) {
	team := NewTeam(2)
	m := NewMetrics()
	team.SetMetrics(m)
	m.Label("a")
	team.For(10, Schedule{Policy: Static}, func(w, i int) {})
	first := m.Drain()
	if len(first) != 1 || first[0].Name != "a" {
		t.Fatalf("first Drain = %v", first)
	}
	if again := m.Drain(); len(again) != 0 {
		t.Fatalf("second Drain returned %d phases", len(again))
	}
	m.Label("b")
	team.For(10, Schedule{Policy: Static}, func(w, i int) {})
	second := m.Drain()
	if len(second) != 1 || second[0].Name != "b" {
		t.Fatalf("Drain after second loop = %v", second)
	}
	if got := len(m.Phases()); got != 2 {
		t.Errorf("Phases = %d records, want 2 (Drain must not discard)", got)
	}
}

// TestMetricsUnlabeledLoops get sequential default names.
func TestMetricsUnlabeledLoops(t *testing.T) {
	team := NewTeam(2)
	m := NewMetrics()
	team.SetMetrics(m)
	team.For(4, Schedule{Policy: Static}, func(w, i int) {})
	team.For(4, Schedule{Policy: Static}, func(w, i int) {})
	ph := m.Phases()
	if ph[0].Name != "loop1" || ph[1].Name != "loop2" {
		t.Errorf("default names = %q, %q", ph[0].Name, ph[1].Name)
	}
}

// TestPhaseStatsImbalance: the figure of merit is max/mean busy time,
// 1.0 for an idle or perfectly balanced loop.
func TestPhaseStatsImbalance(t *testing.T) {
	ps := &PhaseStats{Workers: []WorkerStats{
		{Busy: 300 * time.Millisecond},
		{Busy: 100 * time.Millisecond},
	}}
	if got := ps.Imbalance(); got != 1.5 {
		t.Errorf("Imbalance = %v, want 1.5", got)
	}
	if got := (&PhaseStats{Workers: make([]WorkerStats, 4)}).Imbalance(); got != 1.0 {
		t.Errorf("idle Imbalance = %v, want 1.0", got)
	}
}

// TestNilMetricsSafe: every Metrics entry point is nil-safe, matching
// the nil-Observer contract.
func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.Label("x")
	if m.Phases() != nil || m.Last() != nil || m.Drain() != nil {
		t.Error("nil Metrics returned non-nil data")
	}
	team := NewTeam(2)
	team.SetMetrics(nil)
	team.For(10, Schedule{Policy: Static}, func(w, i int) {}) // must not panic
}
