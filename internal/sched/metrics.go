// Per-worker load metrics for the scheduler: when a Metrics is attached
// to a Team, every ForCtx/ForChunksCtx loop records, per worker, the
// busy time spent executing chunk bodies, the iterations executed, and
// the chunks claimed. The max/mean busy-time ratio per loop is the
// paper's load-imbalance quantity (§IV's argument for dynamic chunk-1
// scheduling on Eclat's skewed classes), measured on real hardware
// instead of replayed in the machine simulator.
//
// A nil *Metrics is valid everywhere and records nothing; the worker
// loop pays one nil check per chunk when metrics are off.

package sched

import (
	"fmt"
	"sync"
	"time"
)

// WorkerStats is one worker's share of one loop.
type WorkerStats struct {
	// Busy is the time spent executing chunk bodies (hand-out waits and
	// stop checks between chunks excluded).
	Busy time.Duration
	// Tasks is the number of iterations the worker executed.
	Tasks int64
	// Chunks is the number of chunks the worker claimed.
	Chunks int64
	// Spawned is the number of stealable subtasks the worker enqueued
	// during a work-stealing loop (ForTreeCtx); zero in chunked loops.
	Spawned int64
	// Stolen is the number of tasks the worker executed after taking
	// them from another worker's deque; zero in chunked loops.
	Stolen int64
}

// PhaseStats is the record of one scheduler loop: its label, schedule,
// iteration count, wall time, and per-worker load. Workers is indexed by
// team-local worker id and sized to the workers that actually ran (the
// team size clamped to the iteration count).
type PhaseStats struct {
	Name     string
	Schedule Schedule
	// N is the loop's iteration count.
	N int
	// Wall is the loop's start-to-finish time on the coordinator.
	Wall    time.Duration
	Workers []WorkerStats
}

// TotalTasks sums iterations executed across workers. On a loop that ran
// to completion it equals N; on a stopped loop it is the work done.
func (p *PhaseStats) TotalTasks() int64 {
	var t int64
	for _, w := range p.Workers {
		t += w.Tasks
	}
	return t
}

// TotalChunks sums chunks claimed across workers.
func (p *PhaseStats) TotalChunks() int64 {
	var t int64
	for _, w := range p.Workers {
		t += w.Chunks
	}
	return t
}

// TotalSpawned sums the stealable subtasks enqueued across workers
// (zero for chunked loops). On a work-stealing loop that ran to
// completion, TotalTasks == N + TotalSpawned.
func (p *PhaseStats) TotalSpawned() int64 {
	var t int64
	for _, w := range p.Workers {
		t += w.Spawned
	}
	return t
}

// TotalStolen sums the tasks executed after a steal across workers.
func (p *PhaseStats) TotalStolen() int64 {
	var t int64
	for _, w := range p.Workers {
		t += w.Stolen
	}
	return t
}

// MaxBusy returns the busiest worker's busy time.
func (p *PhaseStats) MaxBusy() time.Duration {
	var mx time.Duration
	for _, w := range p.Workers {
		if w.Busy > mx {
			mx = w.Busy
		}
	}
	return mx
}

// MeanBusy returns the mean busy time over the loop's workers.
func (p *PhaseStats) MeanBusy() time.Duration {
	if len(p.Workers) == 0 {
		return 0
	}
	var t time.Duration
	for _, w := range p.Workers {
		t += w.Busy
	}
	return t / time.Duration(len(p.Workers))
}

// Imbalance is the load-balance figure of merit: max busy time over mean
// busy time. 1.0 is a perfectly balanced loop; the static-vs-dynamic
// schedule ablation is the spread of this number. A loop with no
// measurable busy time reports 1.0.
func (p *PhaseStats) Imbalance() float64 {
	mean := p.MeanBusy()
	if mean <= 0 {
		return 1.0
	}
	return float64(p.MaxBusy()) / float64(mean)
}

// ChunkTracer receives one call per executed scheduler chunk, from the
// worker goroutine that ran it, with the same start time and busy
// duration the load metrics account — the hook behind the span
// timeline (obs.TraceRecorder implements it). Implementations must be
// safe for concurrent use and must not block for long.
type ChunkTracer interface {
	ChunkSpan(phase string, worker, lo, hi int, tasks int64, start time.Time, dur time.Duration)
}

// Metrics accumulates the PhaseStats of a run's loops. Attach one to a
// Team with SetMetrics; label the next loop with Label. Safe for
// concurrent use, though the miners run their loops sequentially.
type Metrics struct {
	mu      sync.Mutex
	pending string
	phases  []*PhaseStats
	drained int
	tracer  ChunkTracer
}

// NewMetrics returns an empty Metrics.
func NewMetrics() *Metrics { return &Metrics{} }

// SetTracer attaches a chunk-span sink: every executed chunk of every
// subsequent loop is forwarded to t with its phase label, worker,
// iteration range and timing. nil detaches. Nil-safe.
func (m *Metrics) SetTracer(t ChunkTracer) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.tracer = t
	m.mu.Unlock()
}

// Label names the next loop recorded; unlabeled loops get "loop<k>".
// Nil-safe.
func (m *Metrics) Label(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.pending = name
	m.mu.Unlock()
}

// Phases returns the recorded loops so far (shared records, copied
// slice).
func (m *Metrics) Phases() []*PhaseStats {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*PhaseStats, len(m.phases))
	copy(out, m.phases)
	return out
}

// Last returns the most recently finished loop, or nil.
func (m *Metrics) Last() *PhaseStats {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.phases) == 0 {
		return nil
	}
	return m.phases[len(m.phases)-1]
}

// Drain returns the loops finished since the previous Drain, for sinks
// that forward each loop exactly once (the miners' phase_end events).
func (m *Metrics) Drain() []*PhaseStats {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.phases[m.drained:]
	m.drained = len(m.phases)
	return out
}

// phaseRec is one loop's in-flight record. Workers write their own
// WorkerStats slot (distinct indices, no atomics; the coordinator's
// wg.Wait orders the writes before finish publishes the record). The
// tracer reference is captured at begin so SetTracer mid-loop cannot
// race the workers.
type phaseRec struct {
	ps     *PhaseStats
	start  time.Time
	tracer ChunkTracer
}

// begin opens a loop record of n iterations on p workers, consuming the
// pending label. Returns nil on a nil Metrics.
func (m *Metrics) begin(n, p int, s Schedule) *phaseRec {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	name := m.pending
	m.pending = ""
	if name == "" {
		name = fmt.Sprintf("loop%d", len(m.phases)+1)
	}
	tracer := m.tracer
	m.mu.Unlock()
	return &phaseRec{
		ps:     &PhaseStats{Name: name, Schedule: s, N: n, Workers: make([]WorkerStats, p)},
		start:  time.Now(),
		tracer: tracer,
	}
}

// finish stamps the wall time and publishes the record.
func (r *phaseRec) finish(m *Metrics) {
	if r == nil {
		return
	}
	r.ps.Wall = time.Since(r.start)
	m.mu.Lock()
	m.phases = append(m.phases, r.ps)
	m.mu.Unlock()
}

// addChunk accounts one executed chunk [lo, hi) for worker w, started
// at t0, and forwards it to the chunk tracer when one is attached. The
// same busy duration feeds both sinks, so span totals and load metrics
// agree by construction.
func (r *phaseRec) addChunk(w, lo, hi int, tasks int64, t0 time.Time, busy time.Duration) {
	ws := &r.ps.Workers[w]
	ws.Busy += busy
	ws.Tasks += tasks
	ws.Chunks++
	if r.tracer != nil {
		r.tracer.ChunkSpan(r.ps.Name, w, lo, hi, tasks, t0, busy)
	}
}

// StolenSpanSuffix marks a stolen task's span name, so stolen subtrees
// are visually distinct from locally-run ones in an exported timeline.
const StolenSpanSuffix = " [stolen]"

// addTask accounts one executed tree task (ForTreeCtx) for worker w.
// id is the task's unique span id — the root index for root tasks, a
// fresh id past the root range for spawned ones. Stolen tasks carry
// StolenSpanSuffix on their span so imbalance repair is visible in the
// trace.
func (r *phaseRec) addTask(w, id int, stolen bool, t0 time.Time, busy time.Duration) {
	ws := &r.ps.Workers[w]
	ws.Busy += busy
	ws.Tasks++
	ws.Chunks++
	if stolen {
		ws.Stolen++
	}
	if r.tracer != nil {
		name := r.ps.Name
		if stolen {
			name += StolenSpanSuffix
		}
		r.tracer.ChunkSpan(name, w, id, id+1, 1, t0, busy)
	}
}

// addSpawn accounts one stealable subtask enqueued by worker w.
func (r *phaseRec) addSpawn(w int) {
	r.ps.Workers[w].Spawned++
}
