package sched

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// drain collects every range a chunker deals to worker w.
func drain(c Chunker, w int) [][2]int {
	var out [][2]int
	for {
		lo, hi, ok := c.Next(w)
		if !ok {
			return out
		}
		out = append(out, [2]int{lo, hi})
	}
}

// TestWeightedStaticCoversExactly: the weighted partition is a
// disjoint, in-order, contiguous cover of [0, n) for random weights
// (including zero-weight iterations).
func TestWeightedStaticCoversExactly(t *testing.T) {
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40)
		p := 1 + r.Intn(8)
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = int64(r.Intn(100))
		}
		c := newWeightedStaticChunker(n, p, weights)
		next := 0
		for w := 0; w < p; w++ {
			for _, ch := range drain(c, w) {
				if ch[0] != next || ch[1] <= ch[0] {
					return false
				}
				next = ch[1]
			}
		}
		return next == n
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("weighted static partition: %v", err)
	}
}

// TestWeightedStaticBalances: one enormous iteration gets a worker to
// itself; the equal-count split would have packed it with half the
// loop.
func TestWeightedStaticBalances(t *testing.T) {
	weights := make([]int64, 10)
	for i := range weights {
		weights[i] = 1
	}
	weights[0] = 1000
	c := newWeightedStaticChunker(10, 2, weights)
	w0 := drain(c, 0)
	if len(w0) != 1 || w0[0] != [2]int{0, 1} {
		t.Fatalf("worker 0 got %v, want only the heavy iteration [0,1)", w0)
	}
	w1 := drain(c, 1)
	if len(w1) != 1 || w1[0] != [2]int{1, 10} {
		t.Fatalf("worker 1 got %v, want the light tail [1,10)", w1)
	}
}

// TestWeightedStaticZeroTotal: all-zero weights degrade to the equal
// split rather than giving one worker everything.
func TestWeightedStaticZeroTotal(t *testing.T) {
	c := newWeightedStaticChunker(8, 2, make([]int64, 8))
	if w0 := drain(c, 0); len(w0) != 1 || w0[0] != [2]int{0, 4} {
		t.Fatalf("worker 0 got %v, want the equal split [0,4)", w0)
	}
}

// TestForWeightedCtxRunsAll: every iteration runs exactly once, under
// every schedule (non-static ones ignore the weights), with mismatched
// weight lengths degrading to the unweighted loop.
func TestForWeightedCtxRunsAll(t *testing.T) {
	for _, s := range []Schedule{
		{Policy: Static},
		{Policy: Static, Chunk: 2},
		{Policy: Dynamic},
		{Policy: Guided},
		{Policy: Steal},
	} {
		for _, weights := range [][]int64{nil, {5, 1, 1, 9, 0, 3, 3, 2, 1, 7}} {
			const n = 10
			team := NewTeam(3)
			var counts [n]int64
			err := team.ForWeightedCtx(nil, n, weights, s, func(_, i int) {
				atomic.AddInt64(&counts[i], 1)
			})
			if err != nil {
				t.Fatalf("%v weights=%v: %v", s, weights, err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("%v weights=%v: iteration %d ran %d times", s, weights, i, c)
				}
			}
		}
	}
}
